// Package ges is a high-performance embedded graph database with a
// factorized query executor — a from-scratch reproduction of Huawei's Graph
// Engine Service (GES, SIGMOD-Companion '25).
//
// GES stores label property graphs in compact adjacency arrays and executes
// Cypher queries over a factorized intermediate representation (f-Blocks
// arranged in f-Trees), which keeps multi-hop traversal intermediates
// exponentially smaller than classical flat tuple tables. Operator fusion
// (vertex-expand, filter-pushdown, aggregate-project-top) removes the
// de-factoring cost of blocking operators. Concurrency control is MV2PL:
// writers declare their write sets and lock vertices two-phase; readers run
// on immutable snapshots and never block.
//
// Quick start:
//
//	db := ges.Open(ges.Fused)
//	db.DefineVertexType("Person", ges.Prop{Name: "name", Type: ges.String})
//	db.DefineEdgeType("KNOWS")
//	db.AddVertex("Person", 1, ges.Props{"name": "ada"})
//	db.AddVertex("Person", 2, ges.Props{"name": "bob"})
//	db.AddEdge("KNOWS", "Person", 1, "Person", 2, nil)
//	res, err := db.Query(`MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1
//	                      RETURN f.name`)
package ges

import (
	"fmt"
	"io"
	"os"
	"sync"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/cypher"
	"ges/internal/exec"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/txn"
	"ges/internal/vector"
)

// Mode selects the execution engine variant.
type Mode int

// Engine variants (the paper's ablation lineup, §6.1). Fused is the
// production configuration.
const (
	// Flat executes every operator over fully materialized tuple blocks —
	// the classical baseline.
	Flat Mode = iota
	// Factorized executes natively over the factorized representation.
	Factorized
	// Fused adds the operator-fusion rewrites to Factorized.
	Fused
)

func (m Mode) internal() exec.Mode {
	switch m {
	case Flat:
		return exec.ModeFlat
	case Factorized:
		return exec.ModeFactorized
	default:
		return exec.ModeFused
	}
}

// Type is a property value type.
type Type int

// Property types.
const (
	Int64 Type = iota
	Float64
	String
	Bool
	Date // days since the Unix epoch
)

func (t Type) kind() vector.Kind {
	switch t {
	case Int64:
		return vector.KindInt64
	case Float64:
		return vector.KindFloat64
	case String:
		return vector.KindString
	case Bool:
		return vector.KindBool
	default:
		return vector.KindDate
	}
}

// Prop declares one property of a vertex or edge type.
type Prop struct {
	Name string
	Type Type
}

// Props carries property values by name.
type Props map[string]any

// DB is an embedded GES instance. Schema definition and bulk loading run
// single-goroutine; after the first query (or explicit Seal) the base graph
// freezes and all further writes flow through MV2PL transactions, so reads
// and writes may proceed concurrently from any number of goroutines.
type DB struct {
	cat      *catalog.Catalog
	graph    *storage.Graph
	mode     exec.Mode
	parallel int

	mu     sync.Mutex
	sealed bool
	mgr    *txn.Manager
}

// Open creates an empty database using the given engine variant.
func Open(mode Mode) *DB {
	cat := catalog.New()
	return &DB{cat: cat, graph: storage.NewGraph(cat), mode: mode.internal()}
}

// DefineVertexType registers a vertex label and its property schema.
func (db *DB) DefineVertexType(name string, props ...Prop) error {
	defs := make([]catalog.PropDef, len(props))
	for i, p := range props {
		defs[i] = catalog.PropDef{Name: p.Name, Kind: p.Type.kind()}
	}
	_, err := db.cat.AddLabel(name, defs...)
	return err
}

// DefineEdgeType registers an edge type and its (edge-)property schema.
func (db *DB) DefineEdgeType(name string, props ...Prop) error {
	defs := make([]catalog.PropDef, len(props))
	for i, p := range props {
		defs[i] = catalog.PropDef{Name: p.Name, Kind: p.Type.kind()}
	}
	_, err := db.cat.AddEdgeType(name, defs...)
	return err
}

// propRow orders a Props map per the schema.
func propRow(defs []catalog.PropDef, props Props) ([]vector.Value, error) {
	row := make([]vector.Value, len(defs))
	for i, d := range defs {
		v, ok := props[d.Name]
		if !ok {
			row[i] = vector.Value{Kind: d.Kind}
			continue
		}
		val, err := toValue(v, d.Kind)
		if err != nil {
			return nil, fmt.Errorf("ges: property %q: %w", d.Name, err)
		}
		row[i] = val
	}
	for name := range props {
		found := false
		for _, d := range defs {
			if d.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("ges: property %q is not in the schema", name)
		}
	}
	return row, nil
}

func toValue(v any, k vector.Kind) (vector.Value, error) {
	switch x := v.(type) {
	case int:
		return vector.Value{Kind: k, I: int64(x)}, nil
	case int64:
		return vector.Value{Kind: k, I: x}, nil
	case float64:
		if k == vector.KindFloat64 {
			return vector.Float64(x), nil
		}
		return vector.Value{Kind: k, I: int64(x)}, nil
	case string:
		if k != vector.KindString {
			return vector.Value{}, fmt.Errorf("string given for %s column", k)
		}
		return vector.String_(x), nil
	case bool:
		return vector.Bool(x), nil
	default:
		return vector.Value{}, fmt.Errorf("unsupported value type %T", v)
	}
}

// AddVertex inserts a vertex with a caller-chosen unique (per label) id.
// Before sealing this writes the base graph directly; afterwards it runs as
// a transaction.
func (db *DB) AddVertex(label string, id int64, props Props) error {
	l, ok := db.cat.Label(label)
	if !ok {
		return fmt.Errorf("ges: unknown label %q", label)
	}
	row, err := propRow(db.cat.LabelProps(l), props)
	if err != nil {
		return err
	}
	db.mu.Lock()
	sealed, mgr := db.sealed, db.mgr
	db.mu.Unlock()
	if !sealed {
		_, err := db.graph.AddVertex(l, id, row...)
		return err
	}
	tx := mgr.Begin(nil)
	if _, err := tx.AddVertex(l, id, row...); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// AddEdge inserts a directed edge between two vertices addressed by label
// and id.
func (db *DB) AddEdge(etype, srcLabel string, srcID int64, dstLabel string, dstID int64, props Props) error {
	et, ok := db.cat.EdgeType(etype)
	if !ok {
		return fmt.Errorf("ges: unknown edge type %q", etype)
	}
	row, err := propRow(db.cat.EdgeTypeProps(et), props)
	if err != nil {
		return err
	}
	sl, ok := db.cat.Label(srcLabel)
	if !ok {
		return fmt.Errorf("ges: unknown label %q", srcLabel)
	}
	dl, ok := db.cat.Label(dstLabel)
	if !ok {
		return fmt.Errorf("ges: unknown label %q", dstLabel)
	}
	db.mu.Lock()
	sealed, mgr := db.sealed, db.mgr
	db.mu.Unlock()

	view := db.view()
	src, ok := view.VertexByExt(sl, srcID)
	if !ok {
		return fmt.Errorf("ges: no %s vertex with id %d", srcLabel, srcID)
	}
	dst, ok := view.VertexByExt(dl, dstID)
	if !ok {
		return fmt.Errorf("ges: no %s vertex with id %d", dstLabel, dstID)
	}
	if !sealed {
		return db.graph.AddEdge(et, src, dst, row...)
	}
	tx := mgr.Begin([]vector.VID{src, dst})
	if err := tx.AddEdge(et, src, dst, row...); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Seal freezes the base graph: subsequent writes run as MV2PL transactions
// and queries read consistent snapshots. The first Query seals implicitly.
func (db *DB) Seal() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.sealed {
		db.sealed = true
		db.mgr = txn.NewManager(db.graph)
	}
}

// view returns the read view: the base graph before sealing, the latest
// snapshot afterwards.
func (db *DB) view() storage.View {
	db.mu.Lock()
	sealed, mgr := db.sealed, db.mgr
	db.mu.Unlock()
	if sealed {
		return mgr.Snapshot()
	}
	return db.graph
}

// Result is a query result table.
type Result struct {
	Columns []string
	Rows    [][]any
	// Stats carries execution metadata.
	Stats struct {
		PeakIntermediateBytes int
		DurationNanos         int64
	}
}

// Query compiles and executes a Cypher query, sealing the database on first
// use.
func (db *DB) Query(src string) (*Result, error) {
	db.Seal()
	p, err := cypher.Compile(src, db.cat)
	if err != nil {
		return nil, err
	}
	return db.runPlan(p)
}

// Explain returns the (fused, when applicable) physical plan of a query as
// a string, without executing it.
func (db *DB) Explain(src string) (string, error) {
	p, err := cypher.Compile(src, db.cat)
	if err != nil {
		return "", err
	}
	if db.mode == exec.ModeFused {
		p = plan.Fuse(p)
	}
	return p.String(), nil
}

func (db *DB) runPlan(p plan.Plan) (*Result, error) {
	eng := exec.New(db.mode)
	eng.Parallel = db.parallel
	res, err := eng.Run(db.view(), p)
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: res.Block.Names}
	out.Rows = blockRows(res.Block)
	out.Stats.PeakIntermediateBytes = res.PeakMem
	out.Stats.DurationNanos = res.Duration.Nanoseconds()
	return out, nil
}

func blockRows(fb *core.FlatBlock) [][]any {
	rows := make([][]any, fb.NumRows())
	for i, row := range fb.Rows {
		r := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case vector.KindInt64, vector.KindDate, vector.KindVID:
				r[j] = v.I
			case vector.KindFloat64:
				r[j] = v.F
			case vector.KindString:
				r[j] = v.S
			case vector.KindBool:
				r[j] = v.I != 0
			default:
				r[j] = nil
			}
		}
		rows[i] = r
	}
	return rows
}

// SetMode switches the engine variant for subsequent queries (queries in
// flight keep the variant they started with).
func (db *DB) SetMode(mode Mode) { db.mode = mode.internal() }

// SetParallelism sets the intra-query parallelism degree: expansion
// operators over large intermediate blocks shard their work across this
// many goroutines. Values <= 1 (the default) run sequentially. Results are
// identical either way.
func (db *DB) SetParallelism(n int) { db.parallel = n }

// Stats reports database-level gauges.
func (db *DB) Stats() (vertices, edges, bytes int) {
	return db.graph.NumVertices(), db.graph.NumEdges(), db.graph.MemBytes()
}

// Save writes a snapshot of the database (catalog + base graph) to w. The
// database should be quiesced: transactional overlays committed after
// sealing are not included in the snapshot.
func (db *DB) Save(w io.Writer) error {
	return db.graph.Save(w)
}

// SaveFile writes a snapshot to a file.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load opens a database from a snapshot produced by Save.
func Load(r io.Reader, mode Mode) (*DB, error) {
	g, cat, err := storage.Load(r)
	if err != nil {
		return nil, err
	}
	return &DB{cat: cat, graph: g, mode: mode.internal()}, nil
}

// LoadFile opens a database from a snapshot file.
func LoadFile(path string, mode Mode) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, mode)
}
