// Package catalog interns the symbolic names of a label property graph —
// vertex labels, edge types, and property keys — into small dense integer
// IDs used throughout storage and execution. GES adopts the LPG model (§2.1)
// where vertices and edges carry labels and key-value properties.
package catalog

import (
	"fmt"
	"sync"

	"ges/internal/vector"
)

// LabelID identifies a vertex label.
type LabelID uint16

// EdgeTypeID identifies an edge type (relationship label).
type EdgeTypeID uint16

// PropID identifies a property key within a label's schema.
type PropID uint16

// Direction selects which adjacency of an edge type is traversed.
type Direction uint8

// Adjacency directions. Both is resolved by storage as the union of Out and
// In at expansion time.
const (
	Out Direction = iota
	In
	Both
)

// String returns a short arrow rendering of the direction.
func (d Direction) String() string {
	switch d {
	case Out:
		return "->"
	case In:
		return "<-"
	default:
		return "--"
	}
}

// Reverse returns the opposite direction; Both is its own reverse.
func (d Direction) Reverse() Direction {
	switch d {
	case Out:
		return In
	case In:
		return Out
	default:
		return Both
	}
}

// PropDef describes one property of a label or edge type.
type PropDef struct {
	Name string
	Kind vector.Kind
}

// Catalog is the shared name-interning table of a database instance. It is
// safe for concurrent readers with at most one concurrent writer phase
// (schema definition happens before query execution).
type Catalog struct {
	mu sync.RWMutex

	labels     []string
	labelByStr map[string]LabelID
	labelProps [][]PropDef

	edgeTypes     []string
	edgeTypeByStr map[string]EdgeTypeID
	edgeProps     [][]PropDef

	// version counts schema mutations; plan caches key on it so compiled
	// plans never outlive the schema they were bound against.
	version uint64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		labelByStr:    make(map[string]LabelID),
		edgeTypeByStr: make(map[string]EdgeTypeID),
	}
}

// Must unwraps an (ID, error) registration result, panicking on error. It
// exists for static schema definitions (test fixtures, the LDBC schema)
// where a registration failure is a programming error, so call sites stay
// declarative without silently discarding errors.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// AddLabel registers a vertex label with its property schema and returns its
// ID. Registering an existing label returns the existing ID and an error if
// the schema differs.
func (c *Catalog) AddLabel(name string, props ...PropDef) (LabelID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.labelByStr[name]; ok {
		return id, fmt.Errorf("catalog: label %q already defined", name)
	}
	id := LabelID(len(c.labels))
	c.labels = append(c.labels, name)
	c.labelProps = append(c.labelProps, append([]PropDef(nil), props...))
	c.labelByStr[name] = id
	c.version++
	return id, nil
}

// AddEdgeType registers an edge type with its (possibly empty) edge-property
// schema and returns its ID.
func (c *Catalog) AddEdgeType(name string, props ...PropDef) (EdgeTypeID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.edgeTypeByStr[name]; ok {
		return id, fmt.Errorf("catalog: edge type %q already defined", name)
	}
	id := EdgeTypeID(len(c.edgeTypes))
	c.edgeTypes = append(c.edgeTypes, name)
	c.edgeProps = append(c.edgeProps, append([]PropDef(nil), props...))
	c.edgeTypeByStr[name] = id
	c.version++
	return id, nil
}

// Version returns the schema version: a counter bumped by every successful
// label or edge-type registration. Cached compiled plans are keyed on it.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Label resolves a label name; ok is false when undefined.
func (c *Catalog) Label(name string) (LabelID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.labelByStr[name]
	return id, ok
}

// EdgeType resolves an edge-type name.
func (c *Catalog) EdgeType(name string) (EdgeTypeID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.edgeTypeByStr[name]
	return id, ok
}

// LabelName returns the name of a label ID.
func (c *Catalog) LabelName(id LabelID) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if int(id) >= len(c.labels) {
		return fmt.Sprintf("label(%d)", id)
	}
	return c.labels[id]
}

// EdgeTypeName returns the name of an edge-type ID.
func (c *Catalog) EdgeTypeName(id EdgeTypeID) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if int(id) >= len(c.edgeTypes) {
		return fmt.Sprintf("edgetype(%d)", id)
	}
	return c.edgeTypes[id]
}

// NumLabels returns the number of registered labels.
func (c *Catalog) NumLabels() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.labels)
}

// NumEdgeTypes returns the number of registered edge types.
func (c *Catalog) NumEdgeTypes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.edgeTypes)
}

// LabelProps returns the property schema of a label.
func (c *Catalog) LabelProps(id LabelID) []PropDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.labelProps[id]
}

// EdgeTypeProps returns the property schema of an edge type.
func (c *Catalog) EdgeTypeProps(id EdgeTypeID) []PropDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.edgeProps[id]
}

// PropIndex resolves a property name within a label's schema.
func (c *Catalog) PropIndex(label LabelID, prop string) (PropID, vector.Kind, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, p := range c.labelProps[label] {
		if p.Name == prop {
			return PropID(i), p.Kind, true
		}
	}
	return 0, vector.KindInvalid, false
}

// EdgePropIndex resolves a property name within an edge type's schema.
func (c *Catalog) EdgePropIndex(et EdgeTypeID, prop string) (PropID, vector.Kind, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, p := range c.edgeProps[et] {
		if p.Name == prop {
			return PropID(i), p.Kind, true
		}
	}
	return 0, vector.KindInvalid, false
}
