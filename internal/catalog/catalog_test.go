package catalog

import (
	"sync"
	"testing"

	"ges/internal/vector"
)

func TestLabelRegistration(t *testing.T) {
	c := New()
	p, err := c.AddLabel("Person",
		PropDef{Name: "name", Kind: vector.KindString},
		PropDef{Name: "age", Kind: vector.KindInt64})
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.AddLabel("Post")
	if err != nil {
		t.Fatal(err)
	}
	if p == q {
		t.Fatal("distinct labels share an id")
	}
	if got, ok := c.Label("Person"); !ok || got != p {
		t.Fatalf("Label lookup = %d, %v", got, ok)
	}
	if _, ok := c.Label("Ghost"); ok {
		t.Fatal("phantom label")
	}
	if c.LabelName(p) != "Person" {
		t.Fatalf("LabelName = %q", c.LabelName(p))
	}
	if c.NumLabels() != 2 {
		t.Fatalf("NumLabels = %d", c.NumLabels())
	}
	if _, err := c.AddLabel("Person"); err == nil {
		t.Fatal("duplicate label must error")
	}
}

func TestPropResolution(t *testing.T) {
	c := New()
	p, _ := c.AddLabel("Person",
		PropDef{Name: "name", Kind: vector.KindString},
		PropDef{Name: "age", Kind: vector.KindInt64})
	pid, kind, ok := c.PropIndex(p, "age")
	if !ok || pid != 1 || kind != vector.KindInt64 {
		t.Fatalf("PropIndex(age) = %d %s %v", pid, kind, ok)
	}
	if _, _, ok := c.PropIndex(p, "ghost"); ok {
		t.Fatal("phantom property")
	}
	if got := c.LabelProps(p); len(got) != 2 || got[0].Name != "name" {
		t.Fatalf("LabelProps = %v", got)
	}
}

func TestEdgeTypeRegistration(t *testing.T) {
	c := New()
	k, err := c.AddEdgeType("KNOWS", PropDef{Name: "since", Kind: vector.KindDate})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c.EdgeType("KNOWS"); !ok || got != k {
		t.Fatal("EdgeType lookup failed")
	}
	if c.EdgeTypeName(k) != "KNOWS" {
		t.Fatalf("EdgeTypeName = %q", c.EdgeTypeName(k))
	}
	pid, kind, ok := c.EdgePropIndex(k, "since")
	if !ok || pid != 0 || kind != vector.KindDate {
		t.Fatalf("EdgePropIndex = %d %s %v", pid, kind, ok)
	}
	if _, _, ok := c.EdgePropIndex(k, "nope"); ok {
		t.Fatal("phantom edge property")
	}
	if c.NumEdgeTypes() != 1 {
		t.Fatalf("NumEdgeTypes = %d", c.NumEdgeTypes())
	}
	if _, err := c.AddEdgeType("KNOWS"); err == nil {
		t.Fatal("duplicate edge type must error")
	}
}

func TestOutOfRangeNames(t *testing.T) {
	c := New()
	if got := c.LabelName(99); got == "" {
		t.Fatal("out-of-range label name should render something")
	}
	if got := c.EdgeTypeName(99); got == "" {
		t.Fatal("out-of-range edge type name should render something")
	}
}

func TestDirectionHelpers(t *testing.T) {
	if Out.Reverse() != In || In.Reverse() != Out || Both.Reverse() != Both {
		t.Fatal("Reverse wrong")
	}
	if Out.String() != "->" || In.String() != "<-" || Both.String() != "--" {
		t.Fatal("direction rendering wrong")
	}
}

func TestConcurrentReads(t *testing.T) {
	c := New()
	p, _ := c.AddLabel("Person", PropDef{Name: "x", Kind: vector.KindInt64})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if _, ok := c.Label("Person"); !ok {
					t.Error("lost label")
					return
				}
				c.LabelProps(p)
				c.LabelName(p)
			}
		}()
	}
	wg.Wait()
}
