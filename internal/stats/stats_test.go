package stats

import (
	"testing"
	"time"

	"ges/internal/catalog"
)

func TestLogCellAndBounds(t *testing.T) {
	cases := []struct{ d, cell int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5},
	}
	for _, c := range cases {
		if got := logCell(c.d); got != c.cell {
			t.Errorf("logCell(%d) = %d, want %d", c.d, got, c.cell)
		}
		lo, hi := cellBounds(logCell(c.d))
		if c.d < lo || c.d > hi {
			t.Errorf("degree %d outside its cell bounds [%d,%d]", c.d, lo, hi)
		}
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	// 800 sources of degree 1, 100 of degree 4, 8 of degree 100: the heavy
	// cell must not merge with the tail, and bucket counts must sum back.
	var b Builder
	b = *NewBuilder(1)
	k := FamKey{Dir: catalog.Out}
	for i := 0; i < 800; i++ {
		b.AddDegree(k, 1)
	}
	for i := 0; i < 100; i++ {
		b.AddDegree(k, 4)
	}
	for i := 0; i < 8; i++ {
		b.AddDegree(k, 100)
	}
	s := b.Finish(time.Millisecond)
	fam := s.Families[k]
	if fam.Sources != 908 || fam.MaxDegree != 100 {
		t.Fatalf("sources/max = %d/%d, want 908/100", fam.Sources, fam.MaxDegree)
	}
	if fam.Edges != 800+400+800 {
		t.Fatalf("edges = %d, want 2000", fam.Edges)
	}
	h := fam.Hist
	if h.Sources() != 908 {
		t.Fatalf("histogram sources = %d, want 908", h.Sources())
	}
	if len(h.Buckets) < 2 || len(h.Buckets) > histDepth {
		t.Fatalf("bucket count = %d, want 2..%d", len(h.Buckets), histDepth)
	}
	for i, bk := range h.Buckets {
		if bk.Lo > bk.Hi || bk.Count <= 0 {
			t.Fatalf("bucket %d malformed: %+v", i, bk)
		}
		if i > 0 && bk.Lo <= h.Buckets[i-1].Hi {
			t.Fatalf("bucket %d overlaps previous: %+v after %+v", i, bk, h.Buckets[i-1])
		}
	}
}

func TestFracAtLeastAndQuantile(t *testing.T) {
	b := NewBuilder(1)
	k := FamKey{Dir: catalog.Out}
	for i := 0; i < 90; i++ {
		b.AddDegree(k, 1)
	}
	for i := 0; i < 10; i++ {
		b.AddDegree(k, 64)
	}
	h := b.Finish(0).Families[k].Hist

	if got := h.FracAtLeast(1); got != 1 {
		t.Fatalf("FracAtLeast(1) = %g, want 1", got)
	}
	// Exactly the 10 heavy sources have degree >= 33 (cell (32,64]).
	if got := h.FracAtLeast(64); got <= 0 || got > 0.2 {
		t.Fatalf("FracAtLeast(64) = %g, want ~0.1", got)
	}
	if got := h.FracAtLeast(1000); got != 0 {
		t.Fatalf("FracAtLeast(1000) = %g, want 0", got)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("median degree bound = %d, want 1", q)
	}
	if q := h.Quantile(0.99); q < 33 {
		t.Fatalf("p99 degree bound = %d, want >= 33", q)
	}
	if h.Quantile(0.5) > h.Quantile(0.9) || h.Quantile(0.9) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Sources() != 0 || h.FracAtLeast(1) != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must estimate zeros")
	}
}

func TestBuilderSnapshotTotals(t *testing.T) {
	b := NewBuilder(7)
	b.Label(0, 100)
	b.Label(1, 50)
	out := FamKey{Src: 0, Et: 0, Dst: 1, Dir: catalog.Out}
	in := FamKey{Src: 1, Et: 0, Dst: 0, Dir: catalog.In}
	b.AddDegree(out, 3)
	b.AddDegree(out, 0) // ignored
	b.AddDegree(in, 2)
	b.AddDegree(in, 1)
	s := b.Finish(2 * time.Millisecond)

	if s.Epoch != 7 || s.Build != 2*time.Millisecond {
		t.Fatalf("epoch/build = %d/%v", s.Epoch, s.Build)
	}
	if s.Vertices != 150 || s.Label(0) != 100 || s.Label(1) != 50 {
		t.Fatalf("vertices/labels = %d/%d/%d", s.Vertices, s.Label(0), s.Label(1))
	}
	// Only Out-direction families count toward the directed edge total.
	if s.Edges != 3 {
		t.Fatalf("edges = %d, want 3 (Out only)", s.Edges)
	}
	if f, ok := s.Family(in); !ok || f.Sources != 2 || f.Edges != 3 {
		t.Fatalf("in family = %+v, %v", f, ok)
	}
	keys := s.FamKeys()
	if len(keys) != 2 || keys[0] != out || keys[1] != in {
		t.Fatalf("FamKeys order = %v", keys)
	}
}

func TestNilSnapshotAccessors(t *testing.T) {
	var s *Snapshot
	if s.Label(0) != 0 {
		t.Fatal("nil Label")
	}
	if _, ok := s.Family(FamKey{}); ok {
		t.Fatal("nil Family")
	}
	if _, ok := s.Column(ColKey{}); ok {
		t.Fatal("nil Column")
	}
	if s.FamKeys() != nil {
		t.Fatal("nil FamKeys")
	}
}
