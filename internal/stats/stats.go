// Package stats holds the statistics snapshot the planner reads: per-family
// degree histograms, label cardinalities and per-column selectivity
// summaries, all derived in one pass over the sealed CSR at
// Graph.SealCSR() time (§10 of DESIGN.md).
//
// A Snapshot follows the same ownership discipline as the CSR image it is
// built from: it is assembled privately through a Builder, sealed by
// Finish, and published behind an atomic pointer in internal/storage.
// After publication nothing may mutate it — any base-graph mutation
// invalidates the pointer and the next seal rebuilds from scratch. geslint
// rule R6 enforces the no-write-outside-stats part statically.
package stats

import (
	"sort"
	"time"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// FamKey identifies one adjacency family: edges of type Et seen from
// Src-labeled vertices toward Dst-labeled vertices in direction Dir. It
// mirrors storage.AdjKey (not imported to keep stats dependency-free).
type FamKey struct {
	Src catalog.LabelID
	Et  catalog.EdgeTypeID
	Dst catalog.LabelID
	Dir catalog.Direction
}

// Family summarizes one adjacency family's degree distribution.
type Family struct {
	// Edges is the total neighbor count over all sources (directed).
	Edges int
	// Sources is the number of vertices with degree >= 1.
	Sources int
	// MaxDegree is the largest per-source degree.
	MaxDegree int
	// Hist is the equi-depth histogram over log2-degree.
	Hist Histogram
}

// ColKey identifies one vertex property column by label and property name.
type ColKey struct {
	Label catalog.LabelID
	Prop  string
}

// Column summarizes one property column for selectivity estimation: value
// bounds for ordered kinds (rolled up from the zone map) and a distinct
// count for dictionary-encoded strings.
type Column struct {
	Kind vector.Kind
	Rows int
	// MinI/MaxI bound int64 and date columns; MinF/MaxF bound float64
	// columns. Meaningless when Rows == 0.
	MinI, MaxI int64
	MinF, MaxF float64
	// Distinct is the number of distinct values (exact for dict-encoded
	// strings — the dictionary size; 0 when unknown).
	Distinct int
}

// Snapshot is one immutable statistics image of a sealed base graph.
type Snapshot struct {
	// Epoch increments on every rebuild; the service folds it into plan
	// cache keys so a re-seal (e.g. after Compact) invalidates plans
	// shaped for stale cardinalities.
	Epoch uint64
	// Build is how long the one-pass derivation took.
	Build time.Duration

	Vertices int
	Edges    int

	Labels   map[catalog.LabelID]int
	Families map[FamKey]Family
	Columns  map[ColKey]Column
}

// Label returns the cardinality of a label (0 if unseen).
func (s *Snapshot) Label(l catalog.LabelID) int {
	if s == nil {
		return 0
	}
	return s.Labels[l]
}

// Family returns the summary of one adjacency family.
func (s *Snapshot) Family(k FamKey) (Family, bool) {
	if s == nil {
		return Family{}, false
	}
	f, ok := s.Families[k]
	return f, ok
}

// Column returns the summary of one property column.
func (s *Snapshot) Column(k ColKey) (Column, bool) {
	if s == nil {
		return Column{}, false
	}
	c, ok := s.Columns[k]
	return c, ok
}

// histDepth is the number of equi-depth buckets a Histogram targets.
const histDepth = 8

// Bucket is one equi-depth histogram bucket: Count sources have degree in
// [Lo, Hi].
type Bucket struct {
	Lo, Hi int
	Count  int
}

// Histogram is an equi-depth summary of a degree distribution at
// log2-degree resolution: degrees are first folded into power-of-two cells
// (1, 2, 3-4, 5-8, ...), then the cumulative distribution is split into up
// to histDepth buckets of roughly equal source count. Zero-degree vertices
// are not represented — they produce no expansion work.
type Histogram struct {
	Buckets []Bucket
}

// logCell returns the log2-degree cell of d (d >= 1): cell c covers degrees
// (2^(c-1), 2^c], so cell 0 = {1}, cell 1 = {2}, cell 2 = {3,4}, ...
func logCell(d int) int {
	c := 0
	for 1<<c < d {
		c++
	}
	return c
}

// cellBounds returns the degree range covered by cell c.
func cellBounds(c int) (lo, hi int) {
	if c == 0 {
		return 1, 1
	}
	return 1<<(c-1) + 1, 1 << c
}

// buildHistogram folds the per-cell source counts into equi-depth buckets.
func buildHistogram(cells []int, sources int) Histogram {
	var h Histogram
	if sources == 0 {
		return h
	}
	target := (sources + histDepth - 1) / histDepth
	cur := Bucket{Lo: -1}
	for c, n := range cells {
		if n == 0 {
			continue
		}
		lo, hi := cellBounds(c)
		if cur.Lo < 0 {
			cur.Lo = lo
		}
		cur.Hi = hi
		cur.Count += n
		if cur.Count >= target {
			h.Buckets = append(h.Buckets, cur)
			cur = Bucket{Lo: -1}
		}
	}
	if cur.Lo >= 0 {
		h.Buckets = append(h.Buckets, cur)
	}
	return h
}

// Sources returns the total source count the histogram covers.
func (h Histogram) Sources() int {
	n := 0
	for _, b := range h.Buckets {
		n += b.Count
	}
	return n
}

// FracAtLeast estimates the fraction of sources with degree >= d, assuming
// a uniform spread within each bucket's degree range.
func (h Histogram) FracAtLeast(d int) float64 {
	total := h.Sources()
	if total == 0 {
		return 0
	}
	n := 0.0
	for _, b := range h.Buckets {
		switch {
		case b.Lo >= d:
			n += float64(b.Count)
		case b.Hi >= d:
			span := float64(b.Hi - b.Lo + 1)
			n += float64(b.Count) * float64(b.Hi-d+1) / span
		}
	}
	return n / float64(total)
}

// Quantile returns the smallest degree bound that covers at least fraction
// q of sources (0 for an empty histogram).
func (h Histogram) Quantile(q float64) int {
	total := h.Sources()
	if total == 0 {
		return 0
	}
	want := q * float64(total)
	acc := 0.0
	for _, b := range h.Buckets {
		acc += float64(b.Count)
		if acc >= want {
			return b.Hi
		}
	}
	return h.Buckets[len(h.Buckets)-1].Hi
}

// SummarizeColumn rolls a property column's zone map (ordered kinds) or
// dictionary (strings) into the single-column summary the cost model reads.
// It lives here, not in the caller, so geslint R6 can hold that stats types
// are only ever written inside this package.
func SummarizeColumn(c *vector.Column) Column {
	s := Column{Kind: c.Kind, Rows: c.Len()}
	switch c.Kind {
	case vector.KindInt64, vector.KindDate:
		if zm := c.ZoneMap(); zm != nil && zm.Zones() > 0 {
			s.MinI, s.MaxI = zm.IntBounds(0)
			for zi := 1; zi < zm.Zones(); zi++ {
				lo, hi := zm.IntBounds(zi)
				if lo < s.MinI {
					s.MinI = lo
				}
				if hi > s.MaxI {
					s.MaxI = hi
				}
			}
		}
	case vector.KindFloat64:
		if zm := c.ZoneMap(); zm != nil && zm.Zones() > 0 {
			s.MinF, s.MaxF = zm.FloatBounds(0)
			for zi := 1; zi < zm.Zones(); zi++ {
				lo, hi := zm.FloatBounds(zi)
				if lo < s.MinF {
					s.MinF = lo
				}
				if hi > s.MaxF {
					s.MaxF = hi
				}
			}
		}
	case vector.KindString:
		if d := c.Dict(); d != nil {
			s.Distinct = d.Len()
		}
	}
	return s
}

// Builder accumulates a Snapshot. It is single-writer; Finish seals the
// result and the builder must not be reused.
type Builder struct {
	snap *Snapshot
	acc  map[FamKey]*FamilyAcc
}

// FamilyAcc accumulates one adjacency family's degree distribution. It is
// exported (unlike the Builder's internal use of it) so the storage layer's
// reseal path can fold a freshly rebuilt family into an existing snapshot
// via Rebase — the accumulation lives here, not in the caller, so geslint
// R6 can hold that stats types are only ever written inside this package.
type FamilyAcc struct {
	cells   []int
	edges   int
	sources int
	max     int
}

// Add folds one source vertex's degree in. Zero degrees are ignored.
func (a *FamilyAcc) Add(d int) {
	if d <= 0 {
		return
	}
	c := logCell(d)
	for len(a.cells) <= c {
		a.cells = append(a.cells, 0)
	}
	a.cells[c]++
	a.edges += d
	a.sources++
	if d > a.max {
		a.max = d
	}
}

// Family seals the accumulated distribution into a Family summary.
func (a *FamilyAcc) Family() Family {
	return Family{
		Edges:     a.edges,
		Sources:   a.sources,
		MaxDegree: a.max,
		Hist:      buildHistogram(a.cells, a.sources),
	}
}

// Rebase derives a snapshot from s with one family's summary replaced and
// a fresh epoch — how a background reseal keeps statistics published under
// sustained writes instead of dropping them. The label and column maps are
// shared with s (immutable after publication); the family map is copied.
func Rebase(s *Snapshot, epoch uint64, k FamKey, f Family) *Snapshot {
	ns := &Snapshot{
		Epoch:    epoch,
		Build:    s.Build,
		Vertices: s.Vertices,
		Labels:   s.Labels,
		Columns:  s.Columns,
		Families: make(map[FamKey]Family, len(s.Families)+1),
	}
	for fk, ff := range s.Families {
		ns.Families[fk] = ff
	}
	ns.Families[k] = f
	for fk, ff := range ns.Families {
		if fk.Dir == catalog.Out {
			ns.Edges += ff.Edges
		}
	}
	return ns
}

// NewBuilder starts a snapshot at the given epoch.
func NewBuilder(epoch uint64) *Builder {
	return &Builder{
		snap: &Snapshot{
			Epoch:    epoch,
			Labels:   make(map[catalog.LabelID]int),
			Families: make(map[FamKey]Family),
			Columns:  make(map[ColKey]Column),
		},
		acc: make(map[FamKey]*FamilyAcc),
	}
}

// Label records the cardinality of a label.
func (b *Builder) Label(l catalog.LabelID, card int) {
	b.snap.Labels[l] = card
	b.snap.Vertices += card
}

// Column records one property column summary.
func (b *Builder) Column(k ColKey, c Column) { b.snap.Columns[k] = c }

// AddDegree folds one source vertex's degree into a family accumulator.
// Zero degrees are ignored.
func (b *Builder) AddDegree(k FamKey, d int) {
	a := b.acc[k]
	if a == nil {
		if d <= 0 {
			return
		}
		a = &FamilyAcc{}
		b.acc[k] = a
	}
	a.Add(d)
}

// Finish seals the snapshot. The builder must not be used afterwards.
func (b *Builder) Finish(build time.Duration) *Snapshot {
	for k, a := range b.acc {
		b.snap.Families[k] = a.Family()
		if k.Dir == catalog.Out {
			b.snap.Edges += a.edges
		}
	}
	b.snap.Build = build
	s := b.snap
	b.snap, b.acc = nil, nil
	return s
}

// FamKeys returns the snapshot's family keys in deterministic order (for
// observability endpoints and tests).
func (s *Snapshot) FamKeys() []FamKey {
	if s == nil {
		return nil
	}
	ks := make([]FamKey, 0, len(s.Families))
	for k := range s.Families {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Et != b.Et {
			return a.Et < b.Et
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Dir < b.Dir
	})
	return ks
}
