package volcano

import (
	"sort"

	"ges/internal/core"
	"ges/internal/op"
	"ges/internal/storage"
	"ges/internal/vector"
)

// newAggIter drains the child and groups it; with keys/limit set it also
// applies the top-k (interpreting a fused AggregateProjectTop plan).
func newAggIter(e *Engine, in iter, groupBy []string, aggs []op.AggSpec, keys []op.SortKey, limit int) (iter, error) {
	fb := core.NewFlatBlock(in.schema(), in.kinds())
	for {
		row, ok, err := in.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		fb.Append(row)
	}
	grouped, err := op.HashAggregateBlock(fb, groupBy, aggs)
	if err != nil {
		return nil, err
	}
	rows := grouped.Rows
	if len(keys) > 0 {
		idx := make([]sortKeyed, len(keys))
		for i, k := range keys {
			pos := grouped.ColIndex(k.Col)
			if pos < 0 {
				return nil, &opError{msg: "no sort column " + k.Col}
			}
			idx[i] = sortKeyed{pos: pos, desc: k.Desc}
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for _, k := range idx {
				c := vector.Compare(rows[a][k.pos], rows[b][k.pos])
				if c == 0 {
					continue
				}
				if k.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return &sliceIter{names: grouped.Names, ks: grouped.Kinds, rows: rows}, nil
}

// newJoinIter builds the right side with a recursive volcano run, hashes it,
// and streams the probe side.
func newJoinIter(e *Engine, view storage.View, in iter, spec *op.HashJoin) (iter, error) {
	rightIt, err := e.build(view, spec.Right)
	if err != nil {
		return nil, err
	}
	rIdx := make([]int, len(spec.RightKeys))
	for i, k := range spec.RightKeys {
		if rIdx[i], err = colIndex(rightIt, k); err != nil {
			return nil, err
		}
	}
	table := map[string][][]vector.Value{}
	for {
		row, ok, err := rightIt.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		key := make([]vector.Value, len(rIdx))
		for i, j := range rIdx {
			key[i] = row[j]
		}
		k := volKey(key)
		table[k] = append(table[k], row)
	}
	lIdx := make([]int, len(spec.LeftKeys))
	for i, k := range spec.LeftKeys {
		if lIdx[i], err = colIndex(in, k); err != nil {
			return nil, err
		}
	}

	names := in.schema()
	ks := in.kinds()
	if spec.Type == op.Inner || spec.Type == op.LeftOuter {
		names = append(append([]string(nil), names...), rightIt.schema()...)
		ks = append(append([]vector.Kind(nil), ks...), rightIt.kinds()...)
	}
	nullRight := make([]vector.Value, len(rightIt.schema()))
	for i, k := range rightIt.kinds() {
		nullRight[i] = vector.Value{Kind: k}
	}
	return &joinIter{
		in: in, names: names, ks: ks, table: table, lIdx: lIdx,
		jt: spec.Type, nullRight: nullRight,
	}, nil
}

type joinIter struct {
	in        iter
	names     []string
	ks        []vector.Kind
	table     map[string][][]vector.Value
	lIdx      []int
	jt        op.JoinType
	nullRight []vector.Value

	curLeft []vector.Value
	matches [][]vector.Value
	pos     int
}

func (it *joinIter) schema() []string     { return it.names }
func (it *joinIter) kinds() []vector.Kind { return it.ks }

func (it *joinIter) next() ([]vector.Value, bool, error) {
	for {
		if it.curLeft != nil && it.pos < len(it.matches) {
			r := it.matches[it.pos]
			it.pos++
			out := make([]vector.Value, 0, len(it.names))
			out = append(out, it.curLeft...)
			out = append(out, r...)
			return out, true, nil
		}
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := make([]vector.Value, len(it.lIdx))
		for i, j := range it.lIdx {
			key[i] = row[j]
		}
		matches := it.table[volKey(key)]
		switch it.jt {
		case op.LeftSemi:
			if len(matches) > 0 {
				return row, true, nil
			}
		case op.LeftAnti:
			if len(matches) == 0 {
				return row, true, nil
			}
		case op.Inner:
			it.curLeft, it.matches, it.pos = row, matches, 0
		case op.LeftOuter:
			if len(matches) == 0 {
				matches = [][]vector.Value{it.nullRight}
			}
			it.curLeft, it.matches, it.pos = row, matches, 0
		}
	}
}
