package volcano

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ges/internal/catalog"
	"ges/internal/expr"
	"ges/internal/op"
	"ges/internal/storage"
	"ges/internal/vector"
)

// expandIter streams (row × neighbor) pairs one at a time — the canonical
// tuple-at-a-time Expand.
type expandIter struct {
	view storage.View
	in   iter
	spec *op.Expand

	names []string
	ks    []vector.Kind

	fromIdx int
	epIdx   []int
	epKind  []vector.Kind
	ctx     *op.Ctx

	curRow []vector.Value
	segs   []storage.Segment
	segPos int
	offPos int
}

func newExpandIter(view storage.View, in iter, spec *op.Expand) (iter, error) {
	fromIdx, err := colIndex(in, spec.From)
	if err != nil {
		return nil, err
	}
	it := &expandIter{view: view, in: in, spec: spec, fromIdx: fromIdx,
		ctx: &op.Ctx{View: view}}
	it.names = append(append([]string(nil), in.schema()...), spec.To)
	it.ks = append(append([]vector.Kind(nil), in.kinds()...), vector.KindVID)
	cat := view.Catalog()
	for _, ep := range spec.EdgeProps {
		pid, kind, ok := cat.EdgePropIndex(spec.Et, ep.Prop)
		if !ok {
			return nil, errNoEdgeProp(cat, spec.Et, ep.Prop)
		}
		it.epIdx = append(it.epIdx, int(pid))
		it.epKind = append(it.epKind, kind)
		it.names = append(it.names, ep.As)
		it.ks = append(it.ks, kind)
	}
	return it, nil
}

func errNoEdgeProp(cat *catalog.Catalog, et catalog.EdgeTypeID, prop string) error {
	return &opError{msg: "edge type " + cat.EdgeTypeName(et) + " has no property " + prop}
}

type opError struct{ msg string }

func (e *opError) Error() string { return "volcano: " + e.msg }

func (it *expandIter) schema() []string     { return it.names }
func (it *expandIter) kinds() []vector.Kind { return it.ks }

func (it *expandIter) next() ([]vector.Value, bool, error) {
	for {
		// Advance within the current row's neighbor stream.
		for it.curRow != nil && it.segPos < len(it.segs) {
			seg := it.segs[it.segPos]
			if it.offPos >= len(seg.VIDs) {
				it.segPos++
				it.offPos = 0
				continue
			}
			k := it.offPos
			it.offPos++
			v := seg.VIDs[k]
			if it.spec.VertexPred != nil && !it.spec.VertexPred.Test(it.ctx, v) {
				continue
			}
			props := make([]vector.Value, len(it.epIdx))
			for p, si := range it.epIdx {
				switch it.epKind[p] {
				case vector.KindInt64:
					props[p] = vector.Int64(seg.PropI64[si][k])
				case vector.KindDate:
					props[p] = vector.Date(seg.PropI64[si][k])
				case vector.KindFloat64:
					props[p] = vector.Float64(seg.PropF64[si][k])
				case vector.KindString:
					props[p] = vector.String_(seg.PropStr[si][k])
				}
			}
			if it.spec.EdgePropPred != nil && !it.spec.EdgePropPred(props) {
				continue
			}
			out := make([]vector.Value, 0, len(it.names))
			out = append(out, it.curRow...)
			out = append(out, vector.VIDValue(v))
			out = append(out, props...)
			return out, true, nil
		}
		// Pull the next input row.
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.curRow = row
		src := row[it.fromIdx].AsVID()
		it.segs = it.view.Neighbors(it.segs[:0], src, it.spec.Et, it.spec.Dir,
			it.spec.DstLabel, len(it.epIdx) > 0)
		it.segPos, it.offPos = 0, 0
	}
}

// varExpandIter runs the bounded traversal per input row, buffering that
// row's frontier (tuple-at-a-time across rows).
type varExpandIter struct {
	view storage.View
	in   iter
	spec *op.VarLengthExpand

	names   []string
	ks      []vector.Kind
	fromIdx int
	ctx     *op.Ctx

	curRow []vector.Value
	queue  []vector.VID
	pos    int
}

func newVarExpandIter(view storage.View, in iter, spec *op.VarLengthExpand) (iter, error) {
	fromIdx, err := colIndex(in, spec.From)
	if err != nil {
		return nil, err
	}
	return &varExpandIter{
		view: view, in: in, spec: spec, fromIdx: fromIdx,
		ctx:   &op.Ctx{View: view},
		names: append(append([]string(nil), in.schema()...), spec.To),
		ks:    append(append([]vector.Kind(nil), in.kinds()...), vector.KindVID),
	}, nil
}

// newExpandIntoIter filters tuples by closing-edge existence, one row at a
// time — the Volcano counterpart of the GES intersection semi-join.
func newExpandIntoIter(view storage.View, in iter, spec *op.ExpandInto) (iter, error) {
	fromIdx, err := colIndex(in, spec.From)
	if err != nil {
		return nil, err
	}
	toIdx, err := colIndex(in, spec.To)
	if err != nil {
		return nil, err
	}
	return &mapIter{
		in: in, names: in.schema(), ks: in.kinds(),
		fn: func(row []vector.Value) ([]vector.Value, bool) {
			src, want := row[fromIdx].AsVID(), row[toIdx].AsVID()
			for _, seg := range view.Neighbors(nil, src, spec.Et, spec.Dir, spec.DstLabel, false) {
				for _, v := range seg.VIDs {
					if v == want {
						return row, true
					}
				}
			}
			return nil, false
		},
	}, nil
}

func (it *varExpandIter) schema() []string     { return it.names }
func (it *varExpandIter) kinds() []vector.Kind { return it.ks }

func (it *varExpandIter) next() ([]vector.Value, bool, error) {
	for {
		if it.curRow != nil && it.pos < len(it.queue) {
			v := it.queue[it.pos]
			it.pos++
			out := make([]vector.Value, 0, len(it.names))
			out = append(out, it.curRow...)
			out = append(out, vector.VIDValue(v))
			return out, true, nil
		}
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.curRow = row
		it.queue = it.queue[:0]
		it.pos = 0
		spec := *it.spec
		collect := &op.VarLengthExpand{
			From: spec.From, To: spec.To, Et: spec.Et, Dir: spec.Dir,
			DstLabel: spec.DstLabel, MinHops: spec.MinHops, MaxHops: spec.MaxHops,
			Distinct: spec.Distinct, VertexPred: spec.VertexPred,
		}
		collect.Traverse(it.ctx, row[it.fromIdx].AsVID(), func(v vector.VID) {
			it.queue = append(it.queue, v)
		})
	}
}

// projectIter appends fetched vertex properties per row.
type projectIter struct {
	in    iter
	names []string
	ks    []vector.Kind
	plans []projPlan
}

type projPlan struct {
	varIdx int
	extID  bool
	get    func(vector.VID) vector.Value
}

func newProjectIter(view storage.View, in iter, spec *op.ProjectProps) (iter, error) {
	it := &projectIter{in: in,
		names: append([]string(nil), in.schema()...),
		ks:    append([]vector.Kind(nil), in.kinds()...),
	}
	for _, s := range spec.Specs {
		vi, err := colIndex(in, s.Var)
		if err != nil {
			return nil, err
		}
		p := projPlan{varIdx: vi, extID: s.ExtID}
		if s.ExtID {
			p.get = func(v vector.VID) vector.Value { return vector.Int64(view.ExtID(v)) }
			it.ks = append(it.ks, vector.KindInt64)
		} else {
			g, kind, err := op.NewPropReader(view, s.Prop)
			if err != nil {
				return nil, err
			}
			p.get = g
			it.ks = append(it.ks, kind)
		}
		it.names = append(it.names, s.As)
		it.plans = append(it.plans, p)
	}
	return it, nil
}

func (it *projectIter) schema() []string     { return it.names }
func (it *projectIter) kinds() []vector.Kind { return it.ks }

func (it *projectIter) next() ([]vector.Value, bool, error) {
	row, ok, err := it.in.next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make([]vector.Value, 0, len(it.names))
	out = append(out, row...)
	for _, p := range it.plans {
		out = append(out, p.get(row[p.varIdx].AsVID()))
	}
	return out, true, nil
}

// newProjectExprIter appends one computed column per row.
func newProjectExprIter(in iter, spec *op.ProjectExpr) (iter, error) {
	cur := new([]vector.Value)
	get, err := bindRow(spec.Expr, in, cur)
	if err != nil {
		return nil, err
	}
	return &mapIter{
		in:    in,
		names: append(append([]string(nil), in.schema()...), spec.As),
		ks:    append(append([]vector.Kind(nil), in.kinds()...), spec.Kind),
		fn: func(row []vector.Value) ([]vector.Value, bool) {
			*cur = row
			out := make([]vector.Value, 0, len(row)+1)
			out = append(out, row...)
			out = append(out, get(0))
			return out, true
		},
	}, nil
}

// newFilterIter drops rows failing the predicate.
func newFilterIter(in iter, pred expr.Expr) (iter, error) {
	cur := new([]vector.Value)
	get, err := bindRow(pred, in, cur)
	if err != nil {
		return nil, err
	}
	return &mapIter{
		in: in, names: in.schema(), ks: in.kinds(),
		fn: func(row []vector.Value) ([]vector.Value, bool) {
			*cur = row
			if !get(0).AsBool() {
				return nil, false
			}
			return row, true
		},
	}, nil
}

// mapIter applies a per-row transform/filter.
type mapIter struct {
	in    iter
	names []string
	ks    []vector.Kind
	fn    func([]vector.Value) ([]vector.Value, bool)
}

func (it *mapIter) schema() []string     { return it.names }
func (it *mapIter) kinds() []vector.Kind { return it.ks }
func (it *mapIter) next() ([]vector.Value, bool, error) {
	for {
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		if out, keep := it.fn(row); keep {
			return out, true, nil
		}
	}
}

// limitIter implements LIMIT/SKIP.
type limitIter struct {
	in      iter
	skip, n int
	skipped int
	emitted int
}

func (it *limitIter) schema() []string     { return it.in.schema() }
func (it *limitIter) kinds() []vector.Kind { return it.in.kinds() }
func (it *limitIter) next() ([]vector.Value, bool, error) {
	for it.skipped < it.skip {
		_, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.skipped++
	}
	if it.emitted >= it.n {
		return nil, false, nil
	}
	row, ok, err := it.in.next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.emitted++
	return row, true, nil
}

// newDistinctIter streams rows, dropping duplicates over the key columns.
func newDistinctIter(in iter, cols []string) (iter, error) {
	idx := make([]int, 0, len(cols))
	names, ks := in.schema(), in.kinds()
	if cols != nil {
		names = append([]string(nil), cols...)
		var kk []vector.Kind
		for _, c := range cols {
			i, err := colIndex(in, c)
			if err != nil {
				return nil, err
			}
			idx = append(idx, i)
			kk = append(kk, in.kinds()[i])
		}
		ks = kk
	}
	seen := map[string]bool{}
	return &mapIter{
		in: in, names: names, ks: ks,
		fn: func(row []vector.Value) ([]vector.Value, bool) {
			out := row
			if cols != nil {
				out = make([]vector.Value, len(idx))
				for k, i := range idx {
					out[k] = row[i]
				}
			}
			key := volKey(out)
			if seen[key] {
				return nil, false
			}
			seen[key] = true
			return out, true
		},
	}, nil
}

// newNarrowIter projects the schema down to the named columns.
func newNarrowIter(in iter, cols []string) (iter, error) {
	idx := make([]int, len(cols))
	ks := make([]vector.Kind, len(cols))
	for k, c := range cols {
		i, err := colIndex(in, c)
		if err != nil {
			return nil, err
		}
		idx[k] = i
		ks[k] = in.kinds()[i]
	}
	return &mapIter{
		in: in, names: append([]string(nil), cols...), ks: ks,
		fn: func(row []vector.Value) ([]vector.Value, bool) {
			out := make([]vector.Value, len(idx))
			for k, i := range idx {
				out[k] = row[i]
			}
			return out, true
		},
	}, nil
}

// volKey builds a collision-safe key for a row.
func volKey(row []vector.Value) string {
	var sb strings.Builder
	for _, v := range row {
		s := v.String()
		sb.WriteString(strconv.Itoa(len(s)))
		sb.WriteByte(':')
		sb.WriteString(s)
	}
	return sb.String()
}

// sortHeapRow pairs a row with sort keys for the bounded heap.
type sortKeyed struct {
	pos  int
	desc bool
}

// newSortIter drains the child, sorts (optionally bounded top-k), then
// streams.
func newSortIter(e *Engine, in iter, spec *op.OrderBy) (iter, error) {
	names, ks := in.schema(), in.kinds()
	keys := make([]sortKeyed, len(spec.Keys))
	for i, k := range spec.Keys {
		idx, err := colIndex(in, k.Col)
		if err != nil {
			return nil, err
		}
		keys[i] = sortKeyed{pos: idx, desc: k.Desc}
	}
	var rows [][]vector.Value
	for {
		row, ok, err := in.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	less := func(a, b []vector.Value) bool {
		for _, k := range keys {
			c := vector.Compare(a[k.pos], b[k.pos])
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	if spec.Limit > 0 && len(rows) > spec.Limit {
		rows = rows[:spec.Limit]
	}
	out := &sliceIter{names: names, ks: ks, rows: rows}
	if spec.Cols != nil {
		return newNarrowIter(out, spec.Cols)
	}
	return out, nil
}

// bindRow compiles an expression against the iterator's schema, reading
// from the row currently pointed at by cur.
func bindRow(e expr.Expr, in iter, cur *[]vector.Value) (expr.Getter, error) {
	return expr.Bind(e, rowBinding{names: in.schema(), cur: cur})
}

// intersectIter produces the n-way adjacency intersection one tuple at a
// time: per input row it walks side 0's adjacency and keeps neighbors
// present in every other side's adjacency — scalar lookups, per-row hash
// sets, no batching, no galloping (the Volcano counterpart of the WCOJ
// expand).
type intersectIter struct {
	view storage.View
	in   iter
	spec *op.ExpandIntersect

	names []string
	ks    []vector.Kind
	idxs  []int // input column per side

	curRow []vector.Value
	queue  []vector.VID
	pos    int
}

func newExpandIntersectIter(view storage.View, in iter, spec *op.ExpandIntersect) (iter, error) {
	if len(spec.Sides) < 2 {
		return nil, fmt.Errorf("expand-intersect needs >= 2 sides, got %d", len(spec.Sides))
	}
	idxs := make([]int, len(spec.Sides))
	for i, s := range spec.Sides {
		idx, err := colIndex(in, s.Var)
		if err != nil {
			return nil, err
		}
		idxs[i] = idx
	}
	return &intersectIter{
		view: view, in: in, spec: spec, idxs: idxs,
		names: append(append([]string(nil), in.schema()...), spec.To),
		ks:    append(append([]vector.Kind(nil), in.kinds()...), vector.KindVID),
	}, nil
}

func (it *intersectIter) schema() []string     { return it.names }
func (it *intersectIter) kinds() []vector.Kind { return it.ks }

func (it *intersectIter) next() ([]vector.Value, bool, error) {
	for {
		if it.curRow != nil && it.pos < len(it.queue) {
			v := it.queue[it.pos]
			it.pos++
			out := make([]vector.Value, 0, len(it.names))
			out = append(out, it.curRow...)
			out = append(out, vector.VIDValue(v))
			return out, true, nil
		}
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.curRow = row
		it.queue = it.queue[:0]
		it.pos = 0
		// Membership sets for the probe sides, rebuilt per row.
		sets := make([]map[vector.VID]struct{}, len(it.spec.Sides)-1)
		empty := false
		for p, s := range it.spec.Sides[1:] {
			src := row[it.idxs[p+1]].AsVID()
			set := map[vector.VID]struct{}{}
			for _, seg := range it.view.Neighbors(nil, src, s.Et, s.Dir, s.DstLabel, false) {
				for _, v := range seg.VIDs {
					set[v] = struct{}{}
				}
			}
			if len(set) == 0 {
				empty = true
				break
			}
			sets[p] = set
		}
		if empty {
			continue
		}
		s0 := it.spec.Sides[0]
		for _, seg := range it.view.Neighbors(nil, row[it.idxs[0]].AsVID(), s0.Et, s0.Dir, s0.DstLabel, false) {
			for _, v := range seg.VIDs {
				keep := true
				for _, set := range sets {
					if _, ok := set[v]; !ok {
						keep = false
						break
					}
				}
				if keep {
					it.queue = append(it.queue, v)
				}
			}
		}
	}
}
