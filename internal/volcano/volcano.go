// Package volcano is the competitor-architecture stand-in used by the
// cross-system experiments (Figure 15, Table 4): a classical tuple-at-a-time
// iterator engine in the style of Neo4j's runtime and textbook Volcano
// executors. It interprets the very same physical plans as the GES engine,
// so result sets are directly comparable, but every operator pulls one boxed
// row at a time through an iterator chain — no batching, no factorization,
// no columnar access. See DESIGN.md §3 for why this substitution isolates
// the architectural variable the paper's cross-system tables measure.
package volcano

import (
	"fmt"
	"time"

	"ges/internal/core"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Engine is a tuple-at-a-time executor. It satisfies the same Run contract
// as exec.Engine.
type Engine struct {
	// MaxRows bounds materializing operators (0 = unlimited).
	MaxRows int
}

// New returns a volcano engine.
func New() *Engine { return &Engine{} }

// Run interprets the plan and returns all result rows as a flat block.
func (e *Engine) Run(view storage.View, p plan.Plan) (*exec.Result, error) {
	start := time.Now()
	it, err := e.build(view, p)
	if err != nil {
		return nil, err
	}
	out := core.NewFlatBlock(it.schema(), it.kinds())
	for {
		row, ok, err := it.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out.Append(row)
		if e.MaxRows > 0 && out.NumRows() > e.MaxRows {
			return nil, fmt.Errorf("volcano: result exceeds row limit %d", e.MaxRows)
		}
	}
	return &exec.Result{Block: out, Duration: time.Since(start), PeakMem: out.MemBytes()}, nil
}

// iter is the classic Volcano interface, compressed: next returns the next
// row, a validity flag, and an error.
type iter interface {
	schema() []string
	kinds() []vector.Kind
	next() ([]vector.Value, bool, error)
}

// build chains iterators for the plan.
func (e *Engine) build(view storage.View, p plan.Plan) (iter, error) {
	var cur iter
	for _, o := range p {
		var err error
		cur, err = e.buildOp(view, cur, o)
		if err != nil {
			return nil, fmt.Errorf("volcano: %s: %w", o.Name(), err)
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("volcano: empty plan")
	}
	return cur, nil
}

func (e *Engine) buildOp(view storage.View, in iter, o op.Operator) (iter, error) {
	switch n := o.(type) {
	case *op.NodeByIdSeek:
		var rows [][]vector.Value
		if v, ok := view.VertexByExt(n.Label, n.ExtID); ok {
			rows = append(rows, []vector.Value{vector.VIDValue(v)})
		}
		return &sliceIter{names: []string{n.Var}, ks: []vector.Kind{vector.KindVID}, rows: rows}, nil
	case *op.MultiSeek:
		var rows [][]vector.Value
		for _, ext := range n.ExtIDs {
			if v, ok := view.VertexByExt(n.Label, ext); ok {
				rows = append(rows, []vector.Value{vector.VIDValue(v)})
			}
		}
		return &sliceIter{names: []string{n.Var}, ks: []vector.Kind{vector.KindVID}, rows: rows}, nil
	case *op.NodeScan:
		vs := view.ScanLabel(n.Label)
		rows := make([][]vector.Value, len(vs))
		for i, v := range vs {
			rows[i] = []vector.Value{vector.VIDValue(v)}
		}
		return &sliceIter{names: []string{n.Var}, ks: []vector.Kind{vector.KindVID}, rows: rows}, nil
	case *op.SeekExpand:
		var rows [][]vector.Value
		if src, ok := view.VertexByExt(n.Label, n.ExtID); ok {
			for _, seg := range view.Neighbors(nil, src, n.Et, n.Dir, n.DstLabel, false) {
				for _, v := range seg.VIDs {
					rows = append(rows, []vector.Value{vector.VIDValue(v)})
				}
			}
		}
		return &sliceIter{names: []string{n.To}, ks: []vector.Kind{vector.KindVID}, rows: rows}, nil
	case *op.Expand:
		return newExpandIter(view, in, n)
	case *op.VarLengthExpand:
		return newVarExpandIter(view, in, n)
	case *op.ExpandInto:
		return newExpandIntoIter(view, in, n)
	case *op.ExpandIntersect:
		return newExpandIntersectIter(view, in, n)
	case *op.ProjectProps:
		return newProjectIter(view, in, n)
	case *op.ProjectExpr:
		return newProjectExprIter(in, n)
	case *op.Filter:
		return newFilterIter(in, n.Pred)
	case *op.OrderBy:
		return newSortIter(e, in, n)
	case *op.Limit:
		return &limitIter{in: in, skip: n.Skip, n: n.N}, nil
	case *op.Distinct:
		return newDistinctIter(in, n.Cols)
	case *op.Aggregate:
		return newAggIter(e, in, n.GroupBy, n.Aggs, nil, 0)
	case *op.AggregateProjectTop:
		return newAggIter(e, in, n.GroupBy, n.Aggs, n.Keys, n.Limit)
	case *op.HashJoin:
		return newJoinIter(e, view, in, n)
	case *op.Defactor:
		if n.Cols == nil {
			return in, nil
		}
		return newNarrowIter(in, n.Cols)
	case *op.Rename:
		names := append([]string(nil), in.schema()...)
		for i, name := range names {
			for j, from := range n.From {
				if from == name {
					names[i] = n.To[j]
				}
			}
		}
		return &renameIter{in: in, names: names}, nil
	default:
		return nil, fmt.Errorf("unsupported operator %T", o)
	}
}

// renameIter relabels the schema without touching rows.
type renameIter struct {
	in    iter
	names []string
}

func (it *renameIter) schema() []string                    { return it.names }
func (it *renameIter) kinds() []vector.Kind                { return it.in.kinds() }
func (it *renameIter) next() ([]vector.Value, bool, error) { return it.in.next() }

// colIndex resolves a column name in an iterator schema.
func colIndex(it iter, name string) (int, error) {
	for i, n := range it.schema() {
		if n == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("volcano: no column %q in %v", name, it.schema())
}

// rowBinding adapts the expression compiler to per-row evaluation.
type rowBinding struct {
	names []string
	cur   *[]vector.Value
}

func (b rowBinding) Bind(name string) (expr.Getter, error) {
	for i, n := range b.names {
		if n == name {
			idx := i
			cur := b.cur
			return func(int) vector.Value { return (*cur)[idx] }, nil
		}
	}
	return nil, fmt.Errorf("volcano: no column %q", name)
}

// sliceIter emits a pre-materialized row list.
type sliceIter struct {
	names []string
	ks    []vector.Kind
	rows  [][]vector.Value
	pos   int
}

func (s *sliceIter) schema() []string     { return s.names }
func (s *sliceIter) kinds() []vector.Kind { return s.ks }
func (s *sliceIter) next() ([]vector.Value, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	s.pos++
	return s.rows[s.pos-1], true, nil
}
