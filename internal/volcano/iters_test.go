package volcano_test

import (
	"reflect"
	"testing"

	"ges/internal/catalog"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/testgraph"
	"ges/internal/volcano"
)

// runBoth executes the same plan on volcano and the factorized engine and
// requires identical results — a harness for iterator unit coverage.
func runBoth(t *testing.T, p plan.Plan) []string {
	t.Helper()
	f := testgraph.New()
	a, err := volcano.New().Run(f.Graph, p)
	if err != nil {
		t.Fatalf("volcano: %v", err)
	}
	b, err := exec.New(exec.ModeFactorized).Run(f.Graph, p)
	if err != nil {
		t.Fatalf("ges: %v", err)
	}
	got, want := rows(a.Block), rows(b.Block)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engines disagree:\n volcano %v\n ges     %v", got, want)
	}
	return got
}

func TestVolcanoLimitSkip(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	out := runBoth(t, plan.Plan{
		&op.NodeScan{Var: "p", Label: s.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "p", As: "id", ExtID: true}}},
		&op.OrderBy{Keys: []op.SortKey{{Col: "id"}}},
		&op.Limit{N: 3, Skip: 4},
	})
	if len(out) != 3 {
		t.Fatalf("rows = %v", out)
	}
}

func TestVolcanoDistinctAndNarrow(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	out := runBoth(t, plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.Expand{From: "p", To: "a", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.Expand{From: "a", To: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "b", As: "b.id", ExtID: true}}},
		&op.Distinct{Cols: []string{"b.id"}},
		&op.OrderBy{Keys: []op.SortKey{{Col: "b.id"}}},
	})
	if len(out) != 4 { // {100, 104, 105, 106}
		t.Fatalf("distinct 2-hop = %v", out)
	}
}

func TestVolcanoFilterAndExpr(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	runBoth(t, plan.Plan{
		&op.NodeScan{Var: "m", Label: s.Post},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "m", Prop: "length", As: "len"}}},
		&op.Filter{Pred: expr.Gt(expr.C("len"), expr.LInt(120))},
		&op.ProjectExpr{Expr: expr.Arith{Op: expr.Mul, L: expr.C("len"), R: expr.LInt(2)}, As: "dbl", Kind: 1},
		&op.OrderBy{Keys: []op.SortKey{{Col: "dbl", Desc: true}}},
	})
}

func TestVolcanoEdgePropsAndMultiSeek(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	runBoth(t, plan.Plan{
		&op.MultiSeek{Var: "p", Label: s.Person, ExtIDs: []int64{100, 101, 999}},
		&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person,
			EdgeProps: []op.EdgeProj{{Prop: "creationDate", As: "since"}}},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
		&op.OrderBy{Keys: []op.SortKey{{Col: "since", Desc: true}, {Col: "f.id"}}},
	})
}

func TestVolcanoVarLengthAndAggregate(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	out := runBoth(t, plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.VarLengthExpand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out,
			DstLabel: s.Person, MinHops: 1, MaxHops: 2, Distinct: true},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", Prop: "lastName", As: "ln"}}},
		&op.Aggregate{GroupBy: []string{"ln"}, Aggs: []op.AggSpec{{Func: op.Count, As: "n"}}},
	})
	if len(out) != 1 {
		t.Fatalf("groups = %v", out)
	}
}

func TestVolcanoUnknownColumnErrors(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	_, err := volcano.New().Run(f.Graph, plan.Plan{
		&op.NodeScan{Var: "p", Label: s.Person},
		&op.Expand{From: "ghost", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
	})
	if err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestVolcanoMaxRows(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	e := volcano.New()
	e.MaxRows = 2
	_, err := e.Run(f.Graph, plan.Plan{&op.NodeScan{Var: "p", Label: s.Person}})
	if err == nil {
		t.Fatal("row limit not enforced")
	}
}

func TestVolcanoEmptyPlan(t *testing.T) {
	f := testgraph.New()
	if _, err := volcano.New().Run(f.Graph, nil); err == nil {
		t.Fatal("empty plan must fail")
	}
}
