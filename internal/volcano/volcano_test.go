package volcano_test

import (
	"reflect"
	"strings"
	"testing"

	"ges/internal/core"
	"ges/internal/cypher"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
	"ges/internal/plan"
	"ges/internal/volcano"
)

func rows(fb *core.FlatBlock) []string {
	if fb == nil {
		return nil
	}
	out := make([]string, fb.NumRows())
	for i, row := range fb.Rows {
		var sb strings.Builder
		for _, v := range row {
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		out[i] = sb.String()
	}
	return out
}

// TestVolcanoAgreesWithGES runs every read query on both the tuple-at-a-time
// interpreter and the fused GES engine; identical plans must yield identical
// results. This validates the cross-system comparison's fairness claim: the
// engines differ only in execution architecture.
func TestVolcanoAgreesWithGES(t *testing.T) {
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ges := queries.NewRunner(ds, exec.ModeFused, nil)
	vol := queries.NewRunnerWith(ds, volcano.New(), nil)

	for _, q := range queries.All() {
		if q.Kind == queries.IU {
			continue
		}
		q := q
		t.Run(q.Name, func(t *testing.T) {
			pg1 := ds.NewParamGen(9)
			pg2 := ds.NewParamGen(9)
			for trial := 0; trial < 5; trial++ {
				params := q.GenParams(ds, pg1)
				params2 := q.GenParams(ds, pg2)
				a, _, err := ges.Execute(q, params)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := vol.Execute(q, params2)
				if err != nil {
					t.Fatal(err)
				}
				// Unordered queries may legally emit different orders only
				// when no ORDER BY is present; all our read plans are
				// ordered or tiny, so compare directly.
				if !reflect.DeepEqual(rows(a), rows(b)) {
					t.Fatalf("trial %d: volcano disagrees:\n ges %v\n vol %v", trial, rows(a), rows(b))
				}
			}
		})
	}
}

// TestVolcanoIsSlowerOnHeavyQueries sanity-checks the performance ordering
// the cross-system experiment depends on, using IC9 which fans out widely.
func TestVolcanoIsSlowerOnHeavyQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ges := queries.NewRunner(ds, exec.ModeFused, nil)
	vol := queries.NewRunnerWith(ds, volcano.New(), nil)
	q, _ := queries.ByName("IC9")

	timeOf := func(r *queries.Runner) (total int64) {
		pg := ds.NewParamGen(21)
		for trial := 0; trial < 10; trial++ {
			params := q.GenParams(ds, pg)
			_, res, err := r.Execute(q, params)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Duration.Nanoseconds()
		}
		return total
	}
	g := timeOf(ges)
	v := timeOf(vol)
	if v <= g {
		t.Logf("note: volcano (%d ns) not slower than fused GES (%d ns) on this tiny dataset", v, g)
	}
}

// TestVolcanoRunsFusedPlans checks the interpreter also accepts fused
// operator shapes (SeekExpand, AggregateProjectTop, Rename), matching the
// fused GES engine's results on compiled Cypher.
func TestVolcanoRunsFusedPlans(t *testing.T) {
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.03, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	src := `MATCH (p:Person)-[:KNOWS]->(f)
	        WHERE id(p) = 3
	        RETURN COUNT(*) AS n ORDER BY n DESC LIMIT 1`
	p, err := cypher.Compile(src, ds.H.Cat)
	if err != nil {
		t.Fatal(err)
	}
	fused := plan.Fuse(p)
	a, err := volcano.New().Run(ds.Graph, fused)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exec.New(exec.ModeFused).Run(ds.Graph, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows(a.Block), rows(b.Block)) {
		t.Fatalf("volcano on fused plan diverges: %v vs %v", rows(a.Block), rows(b.Block))
	}
}
