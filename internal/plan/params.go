package plan

import (
	"ges/internal/expr"
	"ges/internal/op"
	"ges/internal/vector"
)

// BindParams returns the plan with every parameter placeholder replaced by
// the matching literal from params. Operators without parameters are shared
// with the input plan; operators carrying placeholders are shallow-copied,
// so a cached plan skeleton can be re-bound concurrently by many requests.
// It runs once per execution (Engine.Run), before fusion, so the fused
// predicates and the vectorized filter fast paths only ever see constants.
func BindParams(p Plan, params []vector.Value) Plan {
	out := make(Plan, len(p))
	for i, o := range p {
		out[i] = bindOpParams(o, params)
	}
	return out
}

func bindOpParams(o op.Operator, params []vector.Value) op.Operator {
	switch n := o.(type) {
	case *op.Filter:
		if expr.HasParams(n.Pred) {
			c := *n
			c.Pred = expr.SubstParams(n.Pred, params)
			return &c
		}
	case *op.ProjectExpr:
		if expr.HasParams(n.Expr) {
			c := *n
			c.Expr = expr.SubstParams(n.Expr, params)
			return &c
		}
	case *op.NodeByIdSeek:
		if n.ExtParam > 0 && n.ExtParam <= len(params) {
			c := *n
			c.ExtID = params[n.ExtParam-1].I
			c.ExtParam = 0
			return &c
		}
	}
	return o
}
