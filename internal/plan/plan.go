// Package plan represents physical execution plans — linear chains of
// operators — and implements the optimizer's operator-fusion rewrite rules
// of §4.3: VertexExpand (seek+expand), FilterPushDown (project+filter folded
// into the expand), and AggregateProjectTop (aggregate+order-by+limit).
package plan

import (
	"strings"

	"ges/internal/op"
)

// Plan is a linear physical plan, executed front to back.
type Plan []op.Operator

// String renders the operator chain.
func (p Plan) String() string {
	names := make([]string, len(p))
	for i, o := range p {
		names[i] = o.Name()
	}
	return strings.Join(names, " -> ")
}

// wildcard marks operators that implicitly reference every column.
const wildcard = "*"

// refs returns the column names an operator reads from its input. The
// wildcard means "everything" (full de-factor, full-schema sorts).
func refs(o op.Operator) []string {
	switch n := o.(type) {
	case *op.Expand:
		return []string{n.From}
	case *op.VarLengthExpand:
		return []string{n.From}
	case *op.ExpandInto:
		return []string{n.From, n.To}
	case *op.ExpandIntersect:
		var out []string
		for _, s := range n.Sides {
			out = append(out, s.Var)
		}
		return out
	case *op.ProjectProps:
		var out []string
		for _, s := range n.Specs {
			out = append(out, s.Var)
		}
		return out
	case *op.ProjectExpr:
		return n.Expr.Columns(nil)
	case *op.Filter:
		return n.Pred.Columns(nil)
	case *op.OrderBy:
		var out []string
		if n.Cols == nil {
			out = append(out, wildcard)
		} else {
			out = append(out, n.Cols...)
		}
		for _, k := range n.Keys {
			out = append(out, k.Col)
		}
		return out
	case *op.Aggregate:
		out := append([]string(nil), n.GroupBy...)
		for _, a := range n.Aggs {
			if a.Arg != "" {
				out = append(out, a.Arg)
			}
		}
		return out
	case *op.AggregateProjectTop:
		out := append([]string(nil), n.GroupBy...)
		for _, a := range n.Aggs {
			if a.Arg != "" {
				out = append(out, a.Arg)
			}
		}
		for _, k := range n.Keys {
			out = append(out, k.Col)
		}
		return out
	case *op.HashJoin:
		return append([]string{}, n.LeftKeys...)
	case *op.Distinct:
		if n.Cols == nil {
			return []string{wildcard}
		}
		return n.Cols
	case *op.Defactor:
		if n.Cols == nil {
			return []string{wildcard}
		}
		return n.Cols
	case *op.Limit:
		return nil
	default:
		// Unknown operators are assumed to read everything.
		return []string{wildcard}
	}
}

// referencedLater reports whether any operator in rest reads col (or reads
// everything).
func referencedLater(rest Plan, col string) bool {
	for _, o := range rest {
		for _, r := range refs(o) {
			if r == wildcard || r == col {
				return true
			}
		}
	}
	return false
}

// anyReferencedLater reports whether any of cols is read by rest.
func anyReferencedLater(rest Plan, cols []string) bool {
	for _, c := range cols {
		if referencedLater(rest, c) {
			return true
		}
	}
	return false
}
