package plan

import (
	"strings"
	"testing"

	"ges/internal/catalog"
	"ges/internal/expr"
	"ges/internal/op"
)

func TestFuseSeekExpand(t *testing.T) {
	p := Plan{
		&op.NodeByIdSeek{Var: "p", Label: 0, ExtID: 1},
		&op.Expand{From: "p", To: "f", Et: 0, Dir: catalog.Out, DstLabel: 1},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
	}
	fused := Fuse(p)
	if len(fused) != 2 {
		t.Fatalf("fused plan = %s", fused)
	}
	if _, ok := fused[0].(*op.SeekExpand); !ok {
		t.Fatalf("first op = %T, want SeekExpand", fused[0])
	}
	// Original untouched.
	if _, ok := p[0].(*op.NodeByIdSeek); !ok {
		t.Fatal("Fuse mutated its input")
	}
}

func TestFuseSeekExpandBlockedByLaterReference(t *testing.T) {
	p := Plan{
		&op.NodeByIdSeek{Var: "p", Label: 0, ExtID: 1},
		&op.Expand{From: "p", To: "f", Et: 0, Dir: catalog.Out, DstLabel: 1},
		// References the seek variable: fusion must not fire.
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "p", As: "p.id", ExtID: true}}},
	}
	fused := Fuse(p)
	if _, ok := fused[0].(*op.NodeByIdSeek); !ok {
		t.Fatalf("fusion fired despite later reference: %s", fused)
	}
}

func TestFuseSeekExpandBlockedByWildcard(t *testing.T) {
	p := Plan{
		&op.NodeByIdSeek{Var: "p", Label: 0, ExtID: 1},
		&op.Expand{From: "p", To: "f", Et: 0, Dir: catalog.Out, DstLabel: 1},
		&op.Defactor{}, // full-schema defactor keeps p in the output
	}
	fused := Fuse(p)
	if _, ok := fused[0].(*op.NodeByIdSeek); !ok {
		t.Fatalf("fusion fired under wildcard output: %s", fused)
	}
}

func TestFuseAggregateProjectTop(t *testing.T) {
	agg := &op.Aggregate{GroupBy: []string{"g"}, Aggs: []op.AggSpec{{Func: op.Count, As: "c"}}}
	cases := []struct {
		name string
		tail Plan
	}{
		{"orderby-with-limit", Plan{agg, &op.OrderBy{Keys: []op.SortKey{{Col: "c", Desc: true}}, Limit: 5}}},
		{"orderby-then-limit", Plan{agg, &op.OrderBy{Keys: []op.SortKey{{Col: "c", Desc: true}}}, &op.Limit{N: 5}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fused := Fuse(c.tail)
			if len(fused) != 1 {
				t.Fatalf("plan = %s", fused)
			}
			apt, ok := fused[0].(*op.AggregateProjectTop)
			if !ok {
				t.Fatalf("op = %T", fused[0])
			}
			if apt.Limit != 5 || len(apt.Keys) != 1 {
				t.Fatalf("fused params = %+v", apt)
			}
		})
	}
}

func TestFuseFilterPushDown(t *testing.T) {
	p := Plan{
		&op.NodeByIdSeek{Var: "p", Label: 0, ExtID: 1},
		&op.Expand{From: "p", To: "f", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", Prop: "age", As: "f.age"}}},
		&op.Filter{Pred: expr.Gt(expr.C("f.age"), expr.LInt(30))},
		&op.Defactor{Cols: []string{"f.age"}},
	}
	fused := Fuse(p)
	s := fused.String()
	if strings.Contains(s, "Filter") {
		t.Fatalf("filter survived fusion: %s", s)
	}
	if !strings.Contains(s, "Expand(fused-filter)") {
		t.Fatalf("expand did not absorb the filter: %s", s)
	}
	// Projection output still referenced by Defactor: must survive.
	if !strings.Contains(s, "Project") {
		t.Fatalf("needed projection dropped: %s", s)
	}
}

func TestFuseFilterPushDownDropsDeadProjection(t *testing.T) {
	p := Plan{
		&op.NodeByIdSeek{Var: "p", Label: 0, ExtID: 1},
		&op.Expand{From: "p", To: "f", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", Prop: "age", As: "f.age"}}},
		&op.Filter{Pred: expr.Gt(expr.C("f.age"), expr.LInt(30))},
		&op.Defactor{Cols: []string{"f"}}, // projection output unused downstream
	}
	fused := Fuse(p)
	s := fused.String()
	if strings.Contains(s, "Project") {
		t.Fatalf("dead projection survived: %s", s)
	}
}

func TestFuseFilterPushDownBlockedByForeignColumn(t *testing.T) {
	p := Plan{
		&op.NodeByIdSeek{Var: "p", Label: 0, ExtID: 1},
		&op.Expand{From: "p", To: "f", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", Prop: "age", As: "f.age"}}},
		// Predicate touches a column the projection did not produce.
		&op.Filter{Pred: expr.Gt(expr.C("other"), expr.LInt(30))},
	}
	fused := Fuse(p)
	if !strings.Contains(fused.String(), "Filter") {
		t.Fatalf("fusion fired on foreign column: %s", fused)
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{
		&op.NodeByIdSeek{Var: "p"},
		&op.Limit{N: 1},
	}
	if got := p.String(); got != "NodeByIdSeek -> Limit" {
		t.Fatalf("String = %q", got)
	}
}
