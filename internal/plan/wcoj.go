// WCOJ lowering: rewrite Expand + consecutive ExpandInto closures over the
// expanded variable into one op.ExpandIntersect. The binder emits cyclic
// subpatterns as "expand to the new vertex, then close each remaining edge
// with ExpandInto"; when two or more edges constrain the same new vertex
// (diamonds, 4-cycles, k-cliques), that chain either de-factors into a flat
// hash join (sibling owners) or filters a fully expanded candidate set —
// both strictly worse than intersecting the k sorted CSR adjacency runs
// directly. See DESIGN.md §4, "ExpandIntersect / WCOJ lowering".
package plan

import "ges/internal/op"

// LowerWCOJ returns the plan with every maximal Expand + ExpandInto… chain
// over one new vertex fused into an ExpandIntersect. The Expand keeps its
// role as side 0 (the base), so the intersection enumerates exactly the
// candidates the classical chain would have expanded — same rows, same
// multiplicity — and the vertex elimination order stays the binder's MATCH
// order; per-row probe ordering inside the operator supplies the cheap
// degree heuristic. Expands carrying fused predicates or edge-property
// projections are left alone, as are closures not touching the new vertex.
func LowerWCOJ(p Plan) Plan {
	out := make(Plan, 0, len(p))
	for i := 0; i < len(p); i++ {
		ex, ok := p[i].(*op.Expand)
		if !ok || !plainExpand(ex) {
			out = append(out, p[i])
			continue
		}
		sides := []op.IntersectSide{{Var: ex.From, Et: ex.Et, Dir: ex.Dir, DstLabel: ex.DstLabel}}
		j := i + 1
		for ; j < len(p); j++ {
			into, ok := p[j].(*op.ExpandInto)
			if !ok {
				break
			}
			s, ok := sideOfInto(into, ex.To)
			if !ok {
				break
			}
			sides = append(sides, s)
		}
		if len(sides) < 2 {
			out = append(out, ex)
			continue
		}
		out = append(out, &op.ExpandIntersect{To: ex.To, Sides: sides})
		i = j - 1
	}
	return out
}

// plainExpand reports whether the expand is a pure adjacency enumeration —
// no fused predicates, no edge-property projection — and therefore exactly
// reproducible as an intersection base.
func plainExpand(ex *op.Expand) bool {
	return ex.VertexPred == nil && ex.EdgePropPred == nil && len(ex.EdgeProps) == 0
}

// sideOfInto converts an ExpandInto closing an edge against the new vertex
// to an intersection side. The side direction always points from the bound
// variable toward to, so a closure written (to)-[e]->(x) probes x's reversed
// adjacency. Self-loop closures (both endpoints == to) stay residual.
func sideOfInto(into *op.ExpandInto, to string) (op.IntersectSide, bool) {
	switch {
	case into.From != to && into.To == to:
		return op.IntersectSide{Var: into.From, Et: into.Et, Dir: into.Dir,
			DstLabel: into.DstLabel, SrcLabel: into.SrcLabel}, true
	case into.From == to && into.To != to:
		return op.IntersectSide{Var: into.To, Et: into.Et, Dir: into.Dir.Reverse(),
			DstLabel: into.SrcLabel, SrcLabel: into.DstLabel}, true
	default:
		return op.IntersectSide{}, false
	}
}
