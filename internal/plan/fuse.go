package plan

import (
	"ges/internal/op"
)

// Fuse applies the operator-fusion rewrite rules until a fixpoint. The input
// plan is not modified.
func Fuse(p Plan) Plan {
	out := append(Plan(nil), p...)
	for {
		next, changed := fuseOnce(out)
		if !changed {
			return next
		}
		out = next
	}
}

func fuseOnce(p Plan) (Plan, bool) {
	// FilterPushDown runs first: it matches on a plain Expand, which the
	// SeekExpand rule would otherwise consume.
	if q, ok := fuseFilterPushDown(p); ok {
		return q, true
	}
	if q, ok := fuseSeekExpand(p); ok {
		return q, true
	}
	if q, ok := fuseAggregateProjectTop(p); ok {
		return q, true
	}
	return p, false
}

// fuseSeekExpand rewrites [NodeByIdSeek v, Expand from v] into the fused
// SeekExpand when the seek variable is never referenced downstream — the
// paper's VertexExpand fusion.
func fuseSeekExpand(p Plan) (Plan, bool) {
	for i := 0; i+1 < len(p); i++ {
		seek, ok := p[i].(*op.NodeByIdSeek)
		if !ok {
			continue
		}
		ex, ok := p[i+1].(*op.Expand)
		if !ok || ex.From != seek.Var {
			continue
		}
		// Only plain expands fuse; predicate-carrying expands keep their
		// own shape.
		if ex.VertexPred != nil || ex.EdgePropPred != nil || len(ex.EdgeProps) > 0 {
			continue
		}
		if referencedLater(p[i+2:], seek.Var) {
			continue
		}
		fused := &op.SeekExpand{
			Label:    seek.Label,
			ExtID:    seek.ExtID,
			To:       ex.To,
			Et:       ex.Et,
			Dir:      ex.Dir,
			DstLabel: ex.DstLabel,
		}
		q := append(Plan(nil), p[:i]...)
		q = append(q, fused)
		q = append(q, p[i+2:]...)
		return q, true
	}
	return p, false
}

// fuseFilterPushDown rewrites [Expand →v, ProjectProps(v.*), Filter(pred
// over those projections)] so the predicate evaluates inside the Expand and
// rejected neighbors are never materialized. The projection survives only if
// a later operator still reads its columns.
func fuseFilterPushDown(p Plan) (Plan, bool) {
	for i := 0; i+2 < len(p); i++ {
		ex, ok := p[i].(*op.Expand)
		if !ok || ex.VertexPred != nil {
			continue
		}
		proj, ok := p[i+1].(*op.ProjectProps)
		if !ok {
			continue
		}
		flt, ok := p[i+2].(*op.Filter)
		if !ok {
			continue
		}
		// Every projected spec must target the expand output variable.
		propOf := make(map[string]string, len(proj.Specs))
		allOnTo := true
		for _, s := range proj.Specs {
			if s.Var != ex.To {
				allOnTo = false
				break
			}
			if s.ExtID {
				propOf[s.As] = op.ExtIDProp
			} else {
				propOf[s.As] = s.Prop
			}
		}
		if !allOnTo {
			continue
		}
		// The predicate must reference only projected columns.
		predOK := true
		for _, c := range flt.Pred.Columns(nil) {
			if _, ok := propOf[c]; !ok {
				predOK = false
				break
			}
		}
		if !predOK {
			continue
		}
		rewritten := op.RewriteCols(flt.Pred, propOf)
		fusedExpand := *ex
		fusedExpand.VertexPred = op.VertexPropPred(rewritten, propOf)

		q := append(Plan(nil), p[:i]...)
		q = append(q, &fusedExpand)
		// Keep the projection only when its outputs are still consumed.
		var projected []string
		for _, s := range proj.Specs {
			projected = append(projected, s.As)
		}
		if anyReferencedLater(p[i+3:], projected) {
			q = append(q, proj)
		}
		q = append(q, p[i+3:]...)
		return q, true
	}
	return p, false
}

// fuseAggregateProjectTop rewrites [Aggregate, OrderBy(limit k)] and
// [Aggregate, OrderBy, Limit] into the single fused operator.
func fuseAggregateProjectTop(p Plan) (Plan, bool) {
	for i := 0; i+1 < len(p); i++ {
		agg, ok := p[i].(*op.Aggregate)
		if !ok {
			continue
		}
		ob, ok := p[i+1].(*op.OrderBy)
		if !ok {
			continue
		}
		limit := ob.Limit
		consumed := 2
		if limit == 0 && i+2 < len(p) {
			if lm, ok := p[i+2].(*op.Limit); ok && lm.Skip == 0 {
				limit = lm.N
				consumed = 3
			}
		}
		fused := &op.AggregateProjectTop{
			GroupBy: agg.GroupBy,
			Aggs:    agg.Aggs,
			Keys:    ob.Keys,
			Limit:   limit,
		}
		q := append(Plan(nil), p[:i]...)
		q = append(q, fused)
		// The fused operator emits groupBy ++ aggregate columns; a sort
		// that narrowed or reordered its output keeps doing so via an
		// explicit projection.
		if ob.Cols != nil && !sameCols(ob.Cols, aggOutput(agg)) {
			q = append(q, &op.Defactor{Cols: ob.Cols})
		}
		q = append(q, p[i+consumed:]...)
		return q, true
	}
	return p, false
}

// aggOutput lists the column names an Aggregate emits, in order.
func aggOutput(a *op.Aggregate) []string {
	out := append([]string(nil), a.GroupBy...)
	for _, s := range a.Aggs {
		out = append(out, s.As)
	}
	return out
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
