// Cost model over the statistics snapshot internal/storage derives at
// SealCSR() time. The cypher binder consults it to pick the scan anchor,
// orient each Expand, order the frontier and shape the f-Tree root; the
// formulas are documented in DESIGN.md §10.
//
// Every method tolerates a nil receiver — a nil *CostModel means "no
// statistics" and callers fall back to the syntactic plan, so the planner
// degrades rather than fails when the snapshot is invalidated.
package plan

import (
	"ges/internal/catalog"
	"ges/internal/stats"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Default selectivities when the snapshot has no usable column summary.
const (
	defaultEqSel    = 0.1
	defaultRangeSel = 1.0 / 3
	defaultStrSel   = 0.25
)

// CostModel estimates cardinalities from a sealed statistics snapshot.
type CostModel struct {
	s *stats.Snapshot
}

// NewCostModel wraps a snapshot; a nil snapshot yields a nil model.
func NewCostModel(s *stats.Snapshot) *CostModel {
	if s == nil {
		return nil
	}
	return &CostModel{s: s}
}

// Snapshot exposes the underlying statistics (nil for a nil model).
func (c *CostModel) Snapshot() *stats.Snapshot {
	if c == nil {
		return nil
	}
	return c.s
}

// LabelCard estimates the number of vertices carrying a label. The
// wildcard (storage.AnyLabel, which the binder never produces for scans)
// and unseen labels estimate as the full vertex count.
func (c *CostModel) LabelCard(l catalog.LabelID) float64 {
	if c == nil {
		return 1
	}
	if n, ok := c.s.Labels[l]; ok {
		return float64(n)
	}
	return float64(c.s.Vertices)
}

// FanOut estimates the average number of neighbors a src-labeled vertex
// reaches over (et, dir) toward dst — total family edges over the source
// label's cardinality, so zero-degree vertices dilute the average exactly
// as they dilute an Expand's output. Both sums the two directions; a
// wildcard dst sums every family with the (src, et, dir) prefix.
func (c *CostModel) FanOut(src catalog.LabelID, et catalog.EdgeTypeID, dir catalog.Direction, dst catalog.LabelID) float64 {
	if c == nil {
		return 1
	}
	if dir == catalog.Both {
		return c.FanOut(src, et, catalog.Out, dst) + c.FanOut(src, et, catalog.In, dst)
	}
	card := c.LabelCard(src)
	if card == 0 {
		return 0
	}
	edges := 0
	for k, f := range c.s.Families {
		if k.Src == src && k.Et == et && k.Dir == dir && (dst == k.Dst || dst == storage.AnyLabel) {
			edges += f.Edges
		}
	}
	return float64(edges) / card
}

// EqSel estimates the selectivity of `prop = value` on a label: the
// reciprocal of the distinct count for dict-encoded strings, the
// reciprocal of the value span for bounded integers, else a default.
func (c *CostModel) EqSel(label catalog.LabelID, prop string) float64 {
	if c == nil {
		return defaultEqSel
	}
	col, ok := c.s.Columns[stats.ColKey{Label: label, Prop: prop}]
	if !ok || col.Rows == 0 {
		return defaultEqSel
	}
	floor := 1 / float64(col.Rows)
	if col.Distinct > 0 {
		return clampSel(1/float64(col.Distinct), floor)
	}
	switch col.Kind {
	case vector.KindInt64, vector.KindDate:
		if span := col.MaxI - col.MinI + 1; span > 0 {
			return clampSel(1/float64(span), floor)
		}
	}
	return defaultEqSel
}

// RangeSel estimates the selectivity of an open range `prop < v` /
// `prop >= v` etc. by uniform interpolation over the column's bounds.
// op is one of "<", "<=", ">", ">=".
func (c *CostModel) RangeSel(label catalog.LabelID, prop string, op string, v vector.Value) float64 {
	if c == nil {
		return defaultRangeSel
	}
	col, ok := c.s.Columns[stats.ColKey{Label: label, Prop: prop}]
	if !ok || col.Rows == 0 {
		return defaultRangeSel
	}
	var lo, hi, x float64
	switch col.Kind {
	case vector.KindInt64, vector.KindDate:
		if v.Kind != vector.KindInt64 && v.Kind != vector.KindDate {
			return defaultRangeSel
		}
		lo, hi, x = float64(col.MinI), float64(col.MaxI), float64(v.I)
	case vector.KindFloat64:
		if v.Kind != vector.KindFloat64 {
			return defaultRangeSel
		}
		lo, hi, x = col.MinF, col.MaxF, v.F
	default:
		return defaultRangeSel
	}
	if hi <= lo {
		return defaultRangeSel
	}
	below := (x - lo) / (hi - lo)
	if below < 0 {
		below = 0
	} else if below > 1 {
		below = 1
	}
	switch op {
	case "<", "<=":
		return clampSel(below, 0)
	case ">", ">=":
		return clampSel(1-below, 0)
	}
	return defaultRangeSel
}

// StrSel is the default selectivity for CONTAINS / STARTS WITH / ENDS WITH
// predicates, which the snapshot cannot summarize.
func (c *CostModel) StrSel() float64 { return defaultStrSel }

// InSel estimates the selectivity of `prop IN [v1..vn]` as n equality
// matches.
func (c *CostModel) InSel(label catalog.LabelID, prop string, n int) float64 {
	return clampSel(float64(n)*c.EqSel(label, prop), 0)
}

// DegreeQuantile returns the degree at quantile q of a family's histogram
// (0 when the family is unseen) — the skew measure exported via /stats.
func (c *CostModel) DegreeQuantile(k stats.FamKey, q float64) int {
	if c == nil {
		return 0
	}
	f, ok := c.s.Families[k]
	if !ok {
		return 0
	}
	return f.Hist.Quantile(q)
}

func clampSel(s, floor float64) float64 {
	if s < floor {
		s = floor
	}
	if s > 1 {
		return 1
	}
	return s
}

// Estimate is the binder's cardinality estimate for a compiled plan —
// surfaced through the service so estimator drift (estimated vs actual
// rows) is observable in production.
type Estimate struct {
	// Rows is the estimated result cardinality before aggregation.
	Rows float64
	// CostBased reports whether statistics drove the plan shape (false
	// for the syntactic fallback).
	CostBased bool
	// Anchor is the variable the plan's first scan/seek binds.
	Anchor string
}
