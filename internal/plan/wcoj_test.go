package plan

import (
	"testing"

	"ges/internal/catalog"
	"ges/internal/op"
)

func TestLowerWCOJFusesDiamond(t *testing.T) {
	p := Plan{
		&op.NodeScan{Var: "a", Label: 0},
		&op.Expand{From: "a", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.Expand{From: "b", To: "d", Et: 0, Dir: catalog.Out, DstLabel: 0},
		// Binder output for the second branch a→c→d: expand then close.
		&op.Expand{From: "a", To: "c", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.ExpandInto{From: "c", To: "d", Et: 0, Dir: catalog.Out, DstLabel: 0, SrcLabel: 0},
	}
	low := LowerWCOJ(p)
	if len(low) != 4 {
		t.Fatalf("lowered plan = %s", low)
	}
	ix, ok := low[3].(*op.ExpandIntersect)
	if !ok {
		t.Fatalf("last op = %T, want ExpandIntersect", low[3])
	}
	if ix.To != "c" || len(ix.Sides) != 2 {
		t.Fatalf("intersect = %+v", ix)
	}
	if ix.Sides[0].Var != "a" || ix.Sides[0].Dir != catalog.Out {
		t.Fatalf("side 0 = %+v, want base a/Out", ix.Sides[0])
	}
	// The closure (c)-[:Out]->(d) probes d's reversed adjacency.
	if ix.Sides[1].Var != "d" || ix.Sides[1].Dir != catalog.In {
		t.Fatalf("side 1 = %+v, want d/In", ix.Sides[1])
	}
}

func TestLowerWCOJCollectsConsecutiveClosures(t *testing.T) {
	// Triangle-closing chain: Expand b→c, then close c→a — the Into's To is
	// the new vertex, so the side keeps its direction.
	p := Plan{
		&op.NodeScan{Var: "a", Label: 0},
		&op.Expand{From: "a", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.Expand{From: "b", To: "c", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.ExpandInto{From: "c", To: "a", Et: 0, Dir: catalog.Out, DstLabel: 0, SrcLabel: 0},
	}
	low := LowerWCOJ(p)
	if len(low) != 3 {
		t.Fatalf("lowered plan = %s", low)
	}
	ix, ok := low[2].(*op.ExpandIntersect)
	if !ok {
		t.Fatalf("last op = %T, want ExpandIntersect", low[2])
	}
	if ix.To != "c" {
		t.Fatalf("To = %q", ix.To)
	}
	// Closure (c)->(a) becomes the reversed probe on a.
	if ix.Sides[1].Var != "a" || ix.Sides[1].Dir != catalog.In {
		t.Fatalf("side 1 = %+v, want a/In", ix.Sides[1])
	}
}

func TestLowerWCOJFourClique(t *testing.T) {
	// a→b, then c closing against {b,a}, then d closing against {c,a,b}.
	p := Plan{
		&op.NodeScan{Var: "a", Label: 0},
		&op.Expand{From: "a", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.Expand{From: "b", To: "c", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.ExpandInto{From: "a", To: "c", Et: 0, Dir: catalog.Out, DstLabel: 0, SrcLabel: 0},
		&op.Expand{From: "c", To: "d", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.ExpandInto{From: "a", To: "d", Et: 0, Dir: catalog.Out, DstLabel: 0, SrcLabel: 0},
		&op.ExpandInto{From: "b", To: "d", Et: 0, Dir: catalog.Out, DstLabel: 0, SrcLabel: 0},
	}
	low := LowerWCOJ(p)
	if len(low) != 4 {
		t.Fatalf("lowered plan = %s", low)
	}
	c, ok := low[2].(*op.ExpandIntersect)
	if !ok || c.To != "c" || len(c.Sides) != 2 {
		t.Fatalf("op 2 = %s", low)
	}
	d, ok := low[3].(*op.ExpandIntersect)
	if !ok || d.To != "d" || len(d.Sides) != 3 {
		t.Fatalf("op 3 = %s", low)
	}
}

func TestLowerWCOJLeavesNonCyclicAlone(t *testing.T) {
	p := Plan{
		&op.NodeScan{Var: "a", Label: 0},
		&op.Expand{From: "a", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.Expand{From: "b", To: "c", Et: 0, Dir: catalog.Out, DstLabel: 0},
	}
	low := LowerWCOJ(p)
	if len(low) != 3 {
		t.Fatalf("plan changed: %s", low)
	}
	// Single closure after an unrelated filter stays an ExpandInto.
	p2 := Plan{
		&op.NodeScan{Var: "a", Label: 0},
		&op.Expand{From: "a", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.ExpandInto{From: "x", To: "y", Et: 0, Dir: catalog.Out, DstLabel: 0, SrcLabel: 0},
	}
	low2 := LowerWCOJ(p2)
	if len(low2) != 3 {
		t.Fatalf("unrelated closure fused: %s", low2)
	}
}

func TestLowerWCOJSkipsFusedExpands(t *testing.T) {
	pred := op.VertexPropPred(nil, nil)
	p := Plan{
		&op.NodeScan{Var: "a", Label: 0},
		&op.Expand{From: "a", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0, VertexPred: pred},
		&op.ExpandInto{From: "a", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0, SrcLabel: 0},
	}
	low := LowerWCOJ(p)
	if len(low) != 3 {
		t.Fatalf("fused-predicate expand was lowered: %s", low)
	}
}

func TestLowerWCOJSelfLoopStaysResidual(t *testing.T) {
	p := Plan{
		&op.NodeScan{Var: "a", Label: 0},
		&op.Expand{From: "a", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0},
		&op.ExpandInto{From: "a", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0, SrcLabel: 0},
		&op.ExpandInto{From: "b", To: "b", Et: 0, Dir: catalog.Out, DstLabel: 0, SrcLabel: 0},
	}
	low := LowerWCOJ(p)
	if len(low) != 3 {
		t.Fatalf("lowered plan = %s", low)
	}
	if _, ok := low[1].(*op.ExpandIntersect); !ok {
		t.Fatalf("op 1 = %T, want ExpandIntersect", low[1])
	}
	if _, ok := low[2].(*op.ExpandInto); !ok {
		t.Fatalf("self-loop closure = %T, want residual ExpandInto", low[2])
	}
}
