package lint

import (
	"fmt"
	"path/filepath"
	"strings"
)

// R7: kernel purity. A function annotated //geslint:kernel is a batch inner
// loop that must run allocation-free, lock-free, and spawn-free —
// *transitively*, through every module-internal call. The check is a pure
// summary query: closeImpurity has already propagated the first offending
// site (an allocation, a mutex acquisition, a go statement, or a call whose
// effects cannot be analyzed — dynamic dispatch or a non-allowlisted
// external package) through the call graph to a fixed point, so the
// diagnostic can name both the root site and the call chain that reaches
// it. Individual sites are waived with //geslint:alloc-ok <why> on or above
// the offending line; the waiver is visible in the callee's summary, so one
// justified amortized-growth append does not poison every kernel above it.

// checkKernels reports every annotated kernel whose summary is impure.
func (a *Analysis) checkKernels() {
	for _, fi := range a.funcOrder {
		if !fi.Kernel || fi.impure == nil {
			continue
		}
		imp := fi.impure
		p := a.mod.Fset.Position(imp.Pos)
		loc := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		via := ""
		if len(imp.Via) > 0 {
			via = " via " + strings.Join(imp.Via, " -> ")
		}
		a.report(fi.Decl.Pos(), "R7",
			"kernel %s is not transitively allocation/lock/spawn-free: %s at %s%s; fix the site or annotate it //geslint:alloc-ok <why>",
			funcLabel(fi.Fn), imp.What, loc, via)
	}
}
