package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// The eleven invariant rules geslint enforces over the engine:
//
//	R1  no scalar storage reads in internal/op. View.Prop / View.ExtID must
//	    go through the vectorized gather path; files implementing the
//	    deliberate scalar fallback opt out with //geslint:scalar-ok.
//	    View.Neighbors must go through the batched expand kernel
//	    (View.NeighborsBatch); because every operator keeps a deliberate
//	    scalar branch for the NoCSR ablation, the opt-out is line-scope only —
//	    //geslint:scalar-ok on or above the call — so a file-level directive
//	    cannot silently exempt new per-source adjacency loops.
//	R2  lock acquisition in internal/storage and internal/txn must follow the
//	    partial order declared by //geslint:lockorder A < B comments; both
//	    inversions and undeclared nestings are findings. Acquire sets come
//	    from the interprocedural summaries, so nesting hidden behind a helper
//	    in another package is still seen.
//	R3  selection vectors (core.Node.Sel) are written only by internal/core
//	    and the operators sanctioned by name in selWriters (filter.go, and
//	    expandinto.go whose in-place closure narrows the child selection);
//	    //geslint:selwrite-ok opts a file out.
//	R4  f-Block columns are never appended to outside internal/core — growing
//	    a column breaks the equal-cardinality invariant (I1) behind the
//	    block's back.
//	R5  internal/{op,exec,service,driver,bench} spawn goroutines only through
//	    internal/sched; a raw go statement escapes the scheduler's budget.
//	    //geslint:go-ok on or above the line opts a single statement out.
//	R6  statistics snapshots follow the CSR image's ownership discipline:
//	    once published behind the atomic pointer they are immutable, so the
//	    fields, maps and histogram buckets of internal/stats value types
//	    (Snapshot, Family, Column, Histogram, Bucket) are written only
//	    inside internal/stats, where the Builder assembles them privately.
//	    The rule is deliberately copy-conservative — mutating even a
//	    by-value copy of a Family is flagged, because its Histogram shares
//	    bucket storage with the published snapshot. //geslint:statswrite-ok
//	    opts a file out. Sites are collected during summary construction.
//	R7  functions annotated //geslint:kernel are transitively allocation-,
//	    lock-, and spawn-free with no unanalyzable calls; individual sites
//	    are waived by //geslint:alloc-ok <why> on or above the line.
//	R8  values reachable from a sealed snapshot (internal/stats Snapshot, a
//	    zero-copy storage.Batch run, a shared scan column) must not escape
//	    into struct fields, package variables, channels, or goroutines that
//	    outlive the morsel, outside types annotated //geslint:snapshot-owner
//	    <why>. Escapes through module-internal calls are caught via the
//	    retention summaries; //geslint:retain-ok <why> waives a line.
//	R9  struct fields annotated //geslint:atomicptr are read only through
//	    atomic Load and published (Store/Swap/CompareAndSwap) only inside
//	    functions annotated //geslint:seal <why>.
//	R10 errors returned by module-internal functions are never silently
//	    discarded — neither by a bare call statement nor a blank assign —
//	    outside lines annotated //geslint:err-ok <why>.
//	R11 transient pooled buffers follow the acquire/release discipline:
//	    outside internal/storage, every storage Arena/Pool Get* call must be
//	    discharged by the acquiring function — a matching Put* (found through
//	    the local alias taint), or an ownership hand-off (returned, stored
//	    into a container, sent on a channel, or passed to a callee that
//	    transitively releases or retains it, closed over the discharge and
//	    retention summaries). //geslint:leak-ok <why> waives a line. Arena
//	    Own* calls are exempt: Release returns them wholesale.

// selWriters are the internal/op files sanctioned by name to write selection
// vectors (R3): the Filter operator, and ExpandInto, whose intersection
// closure narrows the child node's selection in place instead of copying the
// tree through a Filter. New operators must earn a named entry here — a
// file-scope directive would also exempt future unrelated writes in the file.
var selWriters = map[string]bool{
	"filter.go":     true,
	"expandinto.go": true,
}

// bitsetWrites are the vector.Bitset mutators R3 polices.
var bitsetWrites = map[string]bool{
	"Set": true, "Clear": true, "SetTo": true, "SetAll": true, "ClearAll": true,
	"ClearRange": true, "And": true, "Append": true, "Resize": true,
}

// columnAppends are the vector.Column cardinality-changing mutators R4
// polices.
var columnAppends = map[string]bool{
	"Append": true, "AppendVID": true, "AppendInt64": true, "AppendFloat64": true,
	"AppendString": true, "AppendBool": true, "AppendSegment": true,
	"Extend": true, "Grow": true,
}

// goScope lists the module-relative package prefixes R5 covers. internal/sched
// is deliberately absent: it is the sanctioned spawn point.
var goScope = []string{"internal/op", "internal/exec", "internal/service",
	"internal/driver", "internal/bench"}

// Analysis holds the module-wide analysis state: the lock order, the
// per-function summaries and their deterministic order, the annotated
// snapshot-owner types and atomic-pointer fields, and the findings.
type Analysis struct {
	mod       *Module
	order     *lockOrder
	funcs     map[*types.Func]*FuncInfo
	funcOrder []*FuncInfo
	sealDecls map[*ast.FuncDecl]bool
	owners    map[types.Object]string // snapshot-owner types -> justification
	atomics   map[types.Object]bool   // atomicptr-annotated fields
	diags     []Diag
}

// Analyze builds the interprocedural substrate for a loaded module: markers,
// per-function summaries, and the fixed-point closures over the call graph.
func Analyze(mod *Module) *Analysis {
	a := &Analysis{
		mod:       mod,
		order:     collectLockOrder(mod),
		funcs:     map[*types.Func]*FuncInfo{},
		sealDecls: map[*ast.FuncDecl]bool{},
		owners:    map[types.Object]string{},
		atomics:   map[types.Object]bool{},
	}
	a.collectMarkers()
	a.buildSummaries()
	for _, fi := range a.funcOrder {
		if fi.Seal {
			a.sealDecls[fi.Decl] = true
		}
	}
	a.closeAcquires()
	a.closeRetains()
	a.closeImpurity()
	return a
}

// Run applies every rule and returns the sorted findings.
func (a *Analysis) Run() []Diag {
	a.diags = nil
	a.checkJustifications()
	for _, pkg := range a.mod.Pkgs {
		rel := pkg.Rel
		for _, f := range pkg.Files {
			dirs := fileDirectives(f)
			if hasPrefix(rel, "internal/op") {
				a.checkScalarProps(pkg, f, dirs["scalar-ok"])
			}
			if rel != "internal/core" && !dirs["selwrite-ok"] {
				a.checkSelWrites(pkg, f)
			}
			if rel != "internal/core" {
				a.checkColumnAppends(pkg, f)
			}
			for _, scope := range goScope {
				if hasPrefix(rel, scope) {
					a.checkGoStmts(pkg, f)
					break
				}
			}
			a.checkAtomicPtr(pkg, f)
		}
		if rel == "internal/storage" || rel == "internal/txn" {
			a.checkLockOrder(pkg)
		}
	}
	a.checkStatsSummaries()
	a.checkKernels()
	a.checkSnapshotLifetime()
	a.checkErrDiscards()
	a.checkPoolDiscipline()
	sortDiags(a.diags)
	return a.diags
}

// Run is the one-call entry point: analyze the module and apply every rule.
func Run(mod *Module) []Diag {
	return Analyze(mod).Run()
}

func (a *Analysis) report(pos token.Pos, rule, format string, args ...any) {
	a.diags = append(a.diags, diagAt(a.mod.Root, a.mod.Fset.Position(pos), rule, format, args...))
}

func hasPrefix(rel, scope string) bool {
	return rel == scope || strings.HasPrefix(rel, scope+"/")
}

// relOf maps a types.Package to its module-relative path ("" for the module
// root package, the full path for out-of-module packages).
func (a *Analysis) relOf(p *types.Package) string {
	if p == nil {
		return ""
	}
	pp := p.Path()
	if pp == a.mod.Path {
		return ""
	}
	if strings.HasPrefix(pp, a.mod.Path+"/") {
		return pp[len(a.mod.Path)+1:]
	}
	return pp
}

// namedOf peels pointers and returns the underlying named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isType reports whether t (possibly behind pointers) is the named type
// rel.name of this module.
func (a *Analysis) isType(t types.Type, rel, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return a.relOf(n.Obj().Pkg()) == rel && n.Obj().Name() == name
}

// methodCall decomposes a call of the form recv.Method(...) into its pieces,
// using the type-checker's selection record. ok is false for plain function
// and package-qualified calls.
func methodCall(pkg *Package, call *ast.CallExpr) (recv ast.Expr, obj *types.Func, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil, nil, false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn {
		return nil, nil, false
	}
	return sel.X, fn, true
}

// collectMarkers gathers the declaration-scope annotations rules key on:
// //geslint:snapshot-owner on type declarations (R8) and //geslint:atomicptr
// on struct fields (R9). Kernel and seal markers live on FuncInfo.
func (a *Analysis) collectMarkers() {
	fset := a.mod.Fset
	for _, pkg := range a.mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					docPos := token.NoPos
					if ts.Doc != nil {
						docPos = ts.Doc.Pos()
					} else if gd.Doc != nil {
						docPos = gd.Doc.Pos()
					}
					if r := declDirective(fset, f, "snapshot-owner", docPos, ts.Pos()); r != nil && *r != "" {
						if obj := pkg.Info.Defs[ts.Name]; obj != nil {
							a.owners[obj] = *r
						}
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !fieldHasDirective(field, "atomicptr") {
							continue
						}
						for _, name := range field.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								a.atomics[obj] = true
							}
						}
					}
				}
			}
		}
	}
}

// fieldHasDirective reports an atomicptr-style directive in a struct field's
// doc or trailing same-line comment.
func fieldHasDirective(field *ast.Field, name string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == name {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------- R1

// checkScalarProps flags scalar storage reads resolved to internal/storage:
// View.Prop / View.ExtID (the per-row calls the §5 vectorized gather path
// exists to batch away) and View.Neighbors (the per-source call the batched
// expand kernel replaces). fileOK is the file-scope scalar-ok directive; it
// exempts Prop/ExtID only. Neighbors accepts just the line-scope form — a
// //geslint:scalar-ok comment on or directly above the call — so each
// deliberate scalar adjacency loop stays individually annotated.
func (a *Analysis) checkScalarProps(pkg *Package, f *ast.File, fileOK bool) {
	okLines := directiveLines(a.mod.Fset, f, "scalar-ok")
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, fn, ok := methodCall(pkg, call)
		if !ok {
			return true
		}
		name := fn.Name()
		if (name != "Prop" && name != "ExtID" && name != "Neighbors") ||
			a.relOf(fn.Pkg()) != "internal/storage" {
			return true
		}
		line := a.mod.Fset.Position(call.Pos()).Line
		if okLines[line] || okLines[line-1] {
			return true
		}
		if name == "Neighbors" {
			a.report(call.Pos(), "R1",
				"scalar %s.Neighbors call in internal/op bypasses the batched expand kernel; use View.NeighborsBatch or annotate the line //geslint:scalar-ok",
				recvTypeName(pkg, call))
			return true
		}
		if fileOK {
			return true
		}
		a.report(call.Pos(), "R1",
			"scalar %s.%s call in internal/op bypasses the vectorized gather path; batch with GatherProps/GatherExtIDs or annotate the file //geslint:scalar-ok",
			recvTypeName(pkg, call), name)
		return true
	})
}

// recvTypeName renders the receiver's named type for diagnostics.
func recvTypeName(pkg *Package, call *ast.CallExpr) string {
	sel := call.Fun.(*ast.SelectorExpr)
	if n := namedOf(pkg.Info.TypeOf(sel.X)); n != nil {
		return n.Obj().Name()
	}
	return "View"
}

// ---------------------------------------------------------------- R3 / R4

// isSelField matches `<expr>.Sel` where <expr> is a core.Node.
func (a *Analysis) isSelField(pkg *Package, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sel" {
		return false
	}
	return a.isType(pkg.Info.TypeOf(sel.X), "internal/core", "Node")
}

// checkSelWrites flags Bitset mutators applied to a selection vector
// (core.Node.Sel, directly or through a local alias) outside the sanctioned
// writers.
func (a *Analysis) checkSelWrites(pkg *Package, f *ast.File) {
	fname := a.mod.Fset.Position(f.Pos()).Filename
	if pkg.Rel == "internal/op" && selWriters[filepath.Base(fname)] {
		return
	}
	isSel := func(e ast.Expr) bool { return a.isSelField(pkg, e) }
	tainted := taintedObjs(pkg, f, isSel)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, fn, ok := methodCall(pkg, call)
		if !ok || !bitsetWrites[fn.Name()] {
			return true
		}
		if a.relOf(fn.Pkg()) != "internal/vector" || namedOf(pkg.Info.TypeOf(recv)) == nil ||
			!a.isType(pkg.Info.TypeOf(recv), "internal/vector", "Bitset") {
			return true
		}
		selRecv := isSel(recv)
		if !selRecv {
			if id, isID := recv.(*ast.Ident); isID {
				selRecv = tainted[pkg.Info.ObjectOf(id)]
			}
		}
		if selRecv {
			a.report(call.Pos(), "R3",
				"selection-vector write %s outside internal/core and the sanctioned internal/op writers (filter.go, expandinto.go); route through Filter or annotate the file //geslint:selwrite-ok",
				fn.Name())
		}
		return true
	})
}

// isBlockColumn matches expressions yielding a column owned by an f-Block:
// b.Column(i), b.ColumnByName(n), b.Columns()[i].
func (a *Analysis) isBlockColumn(pkg *Package, e ast.Expr) bool {
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ix.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	recv, fn, ok := methodCall(pkg, call)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "Column", "ColumnByName", "Columns":
	default:
		return false
	}
	return a.isType(pkg.Info.TypeOf(recv), "internal/core", "FBlock")
}

// checkColumnAppends flags cardinality-changing Column mutators applied to a
// column reached through an f-Block accessor — the runtime counterpart is
// invariant I1 in core.(*FTree).Invariants.
func (a *Analysis) checkColumnAppends(pkg *Package, f *ast.File) {
	isBlockCol := func(e ast.Expr) bool { return a.isBlockColumn(pkg, e) }
	tainted := taintedObjs(pkg, f, isBlockCol)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, fn, ok := methodCall(pkg, call)
		if !ok || !columnAppends[fn.Name()] {
			return true
		}
		if !a.isType(pkg.Info.TypeOf(recv), "internal/vector", "Column") {
			return true
		}
		bad := isBlockCol(recv)
		if !bad {
			if id, isID := recv.(*ast.Ident); isID {
				bad = tainted[pkg.Info.ObjectOf(id)]
			}
		}
		if bad {
			a.report(call.Pos(), "R4",
				"%s on an f-Block column outside internal/core breaks the equal-cardinality invariant (I1); build columns before AddColumn",
				fn.Name())
		}
		return true
	})
}

// ---------------------------------------------------------------- R6

// isStatsValue reports whether e's type (possibly behind pointers) is a
// named type of internal/stats.
func (a *Analysis) isStatsValue(pkg *Package, e ast.Expr) bool {
	n := namedOf(pkg.Info.TypeOf(e))
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return a.relOf(n.Obj().Pkg()) == "internal/stats"
}

// checkStatsSummaries is R6 as a summary query: the write sites were
// collected during summary construction (sharing the single AST pass), and
// the rule just filters them by package and file directive.
func (a *Analysis) checkStatsSummaries() {
	for _, fi := range a.funcOrder {
		if fi.Pkg.Rel == "internal/stats" || len(fi.StatsWrites) == 0 {
			continue
		}
		if fileDirectives(fi.File)["statswrite-ok"] {
			continue
		}
		for _, pos := range fi.StatsWrites {
			a.report(pos, "R6",
				"write through an internal/stats value in %s; published snapshots are immutable — assemble through stats.Builder or annotate the file //geslint:statswrite-ok",
				fi.Pkg.Rel)
		}
	}
}

// ---------------------------------------------------------------- R5

// checkGoStmts flags raw go statements in packages that must spawn through
// internal/sched.
func (a *Analysis) checkGoStmts(pkg *Package, f *ast.File) {
	okLines := directiveLines(a.mod.Fset, f, "go-ok")
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		line := a.mod.Fset.Position(g.Pos()).Line
		if okLines[line] || okLines[line-1] {
			return true
		}
		a.report(g.Pos(), "R5",
			"raw go statement in %s; spawn through internal/sched so workers stay within the scheduler budget, or annotate //geslint:go-ok",
			pkg.Rel)
		return true
	})
}
