package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// R11: pool discipline. The size-classed pool (§5) only amortizes
// allocation when every transiently acquired buffer comes back: a
// storage.Arena / storage.Pool Get* call whose result is dropped on the
// floor silently degrades the pool into a plain allocator (and, for
// arena-scoped Gets, inflates the arena's live-byte accounting until
// Release). So in every package outside internal/storage — which owns the
// pool and its internals — each transient acquire must be discharged by
// the acquiring function:
//
//   - a matching Put* (GetVIDs pairs with PutVIDs, the column getters with
//     PutColumn, and so on), found through the local alias taint so
//     reslices, appends, and closure captures don't hide the pairing;
//   - an ownership hand-off: returning the buffer, storing it into a
//     struct field / slice / map (the container's lifecycle now owns it —
//     morsel scratch structs released by the RunMorselsScratch done hook
//     are the canonical case), sending it on a channel, or passing it to a
//     module-internal callee that (transitively) releases or retains it,
//     closed over the discharge and retention summaries;
//   - or a //geslint:leak-ok <why> waiver on or above the Get.
//
// Arena.Own* calls are deliberately out of scope: owned structures are
// query-lifetime by contract and returned wholesale by Arena.Release.
//
// Known false negatives, accepted by design (mirroring R8): a hand-off to
// a callee that merely drops the buffer, and a Put on one path while
// another path leaks. Both keep the rule quiet enough to run clean on the
// real module; the -tags gesassert poison discipline catches the dynamic
// counterparts at runtime.

// poolPairs maps the transient acquire methods of storage.Pool and
// storage.Arena to the release method that discharges them.
var poolPairs = map[string]string{
	"GetVIDs":   "PutVIDs",
	"GetRanges": "PutRanges",
	"GetVals":   "PutVals",
	"GetBatch":  "PutBatch",
	"GetChunk":  "PutChunk",
	"GetFBlock": "PutFBlock",
	"GetFTree":  "PutFTree",
	"GetBitset": "PutBitset",
	"GetArena":  "PutArena",
	// The three column getters share one release path.
	"GetColumn":        "PutColumn",
	"GetLazyVIDColumn": "PutColumn",
	"GetDictColumn":    "PutColumn",
}

// poolPuts is the release-method name set of poolPairs.
var poolPuts = func() map[string]bool {
	out := map[string]bool{}
	for _, put := range poolPairs {
		out[put] = true
	}
	return out
}()

// isPoolRecv reports whether e is a storage.Arena or storage.Pool value —
// the two receivers whose Get*/Put* methods R11 polices.
func (a *Analysis) isPoolRecv(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	return a.isType(t, "internal/storage", "Arena") ||
		a.isType(t, "internal/storage", "Pool")
}

// callArgs returns call's arguments receiver-first, aligned with the
// callee's Params summary (the same shape CallSite.Args carries).
func callArgs(pkg *Package, call *ast.CallExpr) []ast.Expr {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
	}
	return call.Args
}

// closeReturnMasks computes, to a fixed point, each function's pass-through
// mask: the parameters whose labels may flow into its return values. The
// fill-style helpers of the expand operators (take a pooled buffer, append
// into it, return the same backing) keep their argument's obligation alive
// on the result this way, so `srcs := fill(arena.GetVIDs(n)); Put(srcs)` is
// recognized as a pairing. Locals assigned from pass-through calls and then
// returned are a known false negative (the per-function environments are not
// re-solved under the hook); the expression-level chain covers the module.
func (a *Analysis) closeReturnMasks() map[*FuncInfo]uint64 {
	ret := map[*FuncInfo]uint64{}
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcOrder {
			env := &maskEnv{pkg: fi.Pkg, objs: fi.env.objs}
			env.src = a.passthroughSrc(fi.Pkg, env, ret)
			mask := ret[fi]
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // a closure's returns are not the function's
				}
				if r, ok := n.(*ast.ReturnStmt); ok {
					for _, res := range r.Results {
						mask |= env.exprMask(res)
					}
				}
				return true
			})
			if mask != ret[fi] {
				ret[fi] = mask
				changed = true
			}
		}
	}
	return ret
}

// passthroughSrc is the label hook applying return masks at call sites: a
// module call whose callee passes parameter j through to its results carries
// argument j's labels on its result.
func (a *Analysis) passthroughSrc(pkg *Package, env *maskEnv, ret map[*FuncInfo]uint64) func(ast.Expr) uint64 {
	return func(e ast.Expr) uint64 {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return 0
		}
		fn := calleeFunc(pkg, call)
		if fn == nil {
			return 0
		}
		callee := a.funcs[fn]
		if callee == nil || ret[callee] == 0 {
			return 0
		}
		var out uint64
		for j, arg := range callArgs(pkg, call) {
			if j < 63 && ret[callee]&(1<<uint(j)) != 0 {
				out |= env.exprMask(arg)
			}
		}
		return out
	}
}

// closePoolDischarges computes, to a fixed point over the call graph, which
// parameters each function discharges: a param-derived value handed to a
// Put* call, or passed on to a callee that discharges or retains it. The
// per-function R11 check consults this map so a Get handed to a helper that
// releases it is not a finding.
func (a *Analysis) closePoolDischarges() map[*FuncInfo][]bool {
	dis := map[*FuncInfo][]bool{}
	for _, fi := range a.funcOrder {
		d := make([]bool, len(fi.Params))
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, fn, ok := methodCall(fi.Pkg, call)
			if !ok || !poolPuts[fn.Name()] || len(call.Args) == 0 ||
				!a.isPoolRecv(fi.Pkg, recv) {
				return true
			}
			m := fi.env.exprMask(call.Args[0])
			for i := range fi.Params {
				if i < 63 && m&(1<<uint(i)) != 0 {
					d[i] = true
				}
			}
			return true
		})
		dis[fi] = d
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcOrder {
			for _, c := range fi.Calls {
				callee := a.funcs[c.Callee]
				if callee == nil {
					continue
				}
				cd := dis[callee]
				for j, arg := range c.Args {
					takes := j < len(cd) && cd[j] ||
						j < len(callee.Retains) && callee.Retains[j]
					if !takes {
						continue
					}
					m := fi.env.exprMask(arg)
					for i := range fi.Params {
						if i < 63 && m&(1<<uint(i)) != 0 && !dis[fi][i] {
							dis[fi][i] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return dis
}

// poolObligation is one transient acquire site awaiting discharge.
type poolObligation struct {
	pos token.Pos
	bit uint64
	get string // acquire method name
	put string // matching release method name
}

// checkPoolDiscipline runs R11 over every summarized function outside the
// pool-owner package. Each Get site gets one taint label bit; the bit is
// discharged when a labelled value reaches a matching Put, a return, a
// container store, a channel send, or a callee that discharges or retains
// it.
func (a *Analysis) checkPoolDiscipline() {
	fset := a.mod.Fset
	discharges := a.closePoolDischarges()
	retMasks := a.closeReturnMasks()
	for _, fi := range a.funcOrder {
		if fi.Pkg.Rel == "internal/storage" {
			continue
		}
		// Pass 1: assign one label bit per transient acquire site.
		var obs []poolObligation
		bitFor := map[*ast.CallExpr]uint64{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, fn, ok := methodCall(fi.Pkg, call)
			if !ok {
				return true
			}
			put, isGet := poolPairs[fn.Name()]
			if !isGet || !a.isPoolRecv(fi.Pkg, recv) {
				return true
			}
			if len(obs) >= 62 {
				return true // label budget; excess sites go unchecked
			}
			bit := uint64(1) << uint(len(obs))
			bitFor[call] = bit
			obs = append(obs, poolObligation{pos: call.Pos(), bit: bit,
				get: fn.Name(), put: put})
			return true
		})
		if len(obs) == 0 {
			continue
		}
		env := &maskEnv{pkg: fi.Pkg, objs: map[types.Object]uint64{}}
		passthrough := a.passthroughSrc(fi.Pkg, env, retMasks)
		env.src = func(e ast.Expr) uint64 {
			if call, ok := e.(*ast.CallExpr); ok {
				if bit := bitFor[call]; bit != 0 {
					return bit
				}
			}
			// Obligations survive fill-style helpers that return their buffer
			// argument's backing array.
			return passthrough(e)
		}
		env.solve(fi.Decl.Body)

		// Pass 2: collect discharges.
		var discharged uint64
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				recv, fn, ok := methodCall(fi.Pkg, x)
				if !ok || !poolPuts[fn.Name()] || len(x.Args) == 0 ||
					!a.isPoolRecv(fi.Pkg, recv) {
					return true
				}
				m := env.exprMask(x.Args[0])
				for _, ob := range obs {
					if m&ob.bit != 0 && fn.Name() == ob.put {
						discharged |= ob.bit
					}
				}
			case *ast.ReturnStmt:
				// Ownership transfers to the caller.
				for _, r := range x.Results {
					discharged |= env.exprMask(r)
				}
			case *ast.AssignStmt:
				// A store through a field, index, or pointer hands the buffer
				// to the container's lifecycle (morsel scratch structs).
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, lhs := range x.Lhs {
					switch ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						discharged |= env.exprMask(x.Rhs[i])
					}
				}
			case *ast.SendStmt:
				discharged |= env.exprMask(x.Value)
			}
			return true
		})
		// Interprocedural hand-offs: a labelled argument flowing into a
		// parameter the callee discharges or retains.
		for _, c := range fi.Calls {
			callee := a.funcs[c.Callee]
			if callee == nil {
				continue
			}
			cd := discharges[callee]
			for j, arg := range c.Args {
				takes := j < len(cd) && cd[j] ||
					j < len(callee.Retains) && callee.Retains[j]
				if takes {
					discharged |= env.exprMask(arg)
				}
			}
		}

		okLines := lineReasons(fset, fi.File, "leak-ok")
		for _, ob := range obs {
			if discharged&ob.bit != 0 {
				continue
			}
			if waivedAt(okLines, fset.Position(ob.pos).Line) {
				continue
			}
			a.report(ob.pos, "R11",
				"%s acquires a transient pooled buffer that no path releases or hands off; pair it with %s, transfer ownership, or annotate //geslint:leak-ok <why>",
				ob.get, ob.put)
		}
	}
}
