package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	ImportPath string // full import path ("ges/internal/op")
	Rel        string // module-relative path ("internal/op")
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Module is the fully loaded module: every non-test package, parsed with
// comments and type-checked from source using only the standard library —
// geslint deliberately avoids x/tools so it builds anywhere the toolchain
// does.
type Module struct {
	Root string // absolute module root (directory holding go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

var modulePathRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// findModuleRoot walks upward from dir to the directory holding go.mod.
func findModuleRoot(dir string) (root, modpath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			m := modulePathRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("geslint: %s/go.mod has no module directive", dir)
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("geslint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// loader resolves imports for the module: module-internal packages are
// type-checked from source recursively (memoized); everything else — the
// standard library — is delegated to the stdlib source importer, which works
// on toolchains that no longer ship precompiled export data.
type loader struct {
	root    string
	modpath string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // import path -> loaded (nil while in flight)
	order   []string            // load completion order (dependencies first)
}

func newLoader(root, modpath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		modpath: modpath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
	}
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modpath || strings.HasPrefix(path, ld.modpath+"/") {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks one module-internal package (memoized).
func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("geslint: import cycle through %s", path)
		}
		return pkg, nil
	}
	ld.pkgs[path] = nil // cycle marker

	rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.modpath), "/")
	dir := filepath.Join(ld.root, filepath.FromSlash(rel))
	// build.ImportDir applies the build constraints of the default context:
	// _test files, other-platform files, and files behind custom tags (the
	// gesassert pair) are resolved exactly as a release `go build` would.
	bpkg, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("geslint: %s: %w", path, err)
	}

	pkg := &Package{ImportPath: path, Rel: rel, Dir: dir}
	for _, name := range bpkg.GoFiles {
		f, perr := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		pkg.Files = append(pkg.Files, f)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld, FakeImportC: true}
	tpkg, err := conf.Check(path, ld.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("geslint: type-check %s: %w", path, err)
	}
	pkg.Types = tpkg
	ld.pkgs[path] = pkg
	ld.order = append(ld.order, path)
	return pkg, nil
}

// skipDir reports whether a directory subtree is outside the analysis scope.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// loadModule loads every non-test package of the module rooted at (or above)
// dir. Directories without buildable Go files are skipped silently.
func LoadModule(dir string) (*Module, error) {
	root, modpath, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modpath)

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, d := range dirs {
		bpkg, berr := build.Default.ImportDir(d, 0)
		if berr != nil || len(bpkg.GoFiles) == 0 {
			continue // no buildable non-test Go files here
		}
		rel, _ := filepath.Rel(root, d)
		path := modpath
		if rel != "." {
			path = modpath + "/" + filepath.ToSlash(rel)
		}
		if _, err := ld.load(path); err != nil {
			return nil, err
		}
	}

	mod := &Module{Root: root, Path: modpath, Fset: ld.fset}
	for _, path := range ld.order {
		mod.Pkgs = append(mod.Pkgs, ld.pkgs[path])
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].ImportPath < mod.Pkgs[j].ImportPath })
	return mod, nil
}
