package lint

import (
	"go/ast"
	"go/types"
)

// R8: snapshot lifetime. A sealed CSR image or statistics snapshot is
// immutable until the next seal swaps it out — at which point anything
// still aliasing the old image reads stale (or, for shared Batch columns,
// concurrently re-packed) memory. So values *derived from* a snapshot
// source — a zero-copy storage.Batch run (VIDs/Runs/Prop* fields, Run
// calls), a Segment served from CSR memory, a shared scan column
// (ShareScanColumn / its ShareAs rename), or a *stats.Snapshot — must stay
// morsel-scoped: they may not escape into package-level variables, struct
// fields reachable from the caller, channels, or goroutines.
//
// Escapes are found by running the labelled-taint engine per function with
// one extra label bit (snapMask) seeded by the source expressions above,
// and closing over the retention summaries for the interprocedural half:
// passing a snapshot-derived argument into a parameter the callee
// (transitively) retains is the same escape one call later.
//
// Sanctioned retention: types annotated //geslint:snapshot-owner <why> may
// hold snapshot-derived values in their fields (the f-Block that carries
// shared scan columns for one morsel, for example), and a line annotated
// //geslint:retain-ok <why> waives a single site. The packages that build
// and own the sealed structures (internal/storage, internal/stats,
// internal/txn) are exempt wholesale — they are the owners the rule
// protects everyone else from interfering with.
//
// Known false negatives, accepted by design: escapes via return values
// (the taint engine treats call results as fresh unless they are
// themselves sources), and stores into purely local structs that later
// escape. Both keep the rule quiet enough to run clean on the real module.

// snapMask is the label bit marking snapshot-derived values; parameter
// labels use the low bits.
const snapMask uint64 = 1 << 63

// snapshotOwnerPkgs are exempt from R8: they build, seal, and invalidate
// the snapshots, so retaining references is their job.
var snapshotOwnerPkgs = map[string]bool{
	"internal/storage": true,
	"internal/stats":   true,
	"internal/txn":     true,
}

// snapshotSrc is the label hook marking snapshot source expressions.
func (a *Analysis) snapshotSrc(pkg *Package, env *maskEnv) func(ast.Expr) uint64 {
	return func(e ast.Expr) uint64 {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if s := pkg.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
				switch x.Sel.Name {
				case "VIDs", "Runs", "PropI64", "PropF64", "PropStr":
					t := pkg.Info.TypeOf(x.X)
					if a.isType(t, "internal/storage", "Batch") ||
						a.isType(t, "internal/storage", "Segment") {
						return snapMask
					}
				}
			}
		case *ast.CallExpr:
			if a.isType(pkg.Info.TypeOf(x), "internal/stats", "Snapshot") {
				return snapMask
			}
			if recv, fn, ok := methodCall(pkg, x); ok {
				switch fn.Name() {
				case "Run":
					if a.isType(pkg.Info.TypeOf(recv), "internal/storage", "Batch") {
						return snapMask
					}
				case "ShareScanColumn":
					return snapMask
				case "ShareAs":
					// A renamed shared column aliases the same storage.
					if a.isType(pkg.Info.TypeOf(recv), "internal/vector", "Column") {
						return env.exprMask(recv)
					}
				}
			}
		}
		return 0
	}
}

// checkSnapshotLifetime runs R8 over every summarized function outside the
// owner packages.
func (a *Analysis) checkSnapshotLifetime() {
	fset := a.mod.Fset
	for _, fi := range a.funcOrder {
		if snapshotOwnerPkgs[fi.Pkg.Rel] {
			continue
		}
		env := &maskEnv{pkg: fi.Pkg, objs: make(map[types.Object]uint64, len(fi.env.objs))}
		for obj, m := range fi.env.objs {
			env.objs[obj] = m
		}
		env.src = a.snapshotSrc(fi.Pkg, env)
		env.solve(fi.Decl.Body)
		okLines := lineReasons(fset, fi.File, "retain-ok")

		for _, esc := range a.scanEscapes(fi.Pkg, fi.Decl.Body, env) {
			// A snapshot-derived root is a local alias shuffle, not an escape.
			if esc.mask&snapMask == 0 || esc.rootMask&snapMask != 0 {
				continue
			}
			if waivedAt(okLines, fset.Position(esc.pos).Line) {
				continue
			}
			a.report(esc.pos, "R8",
				"snapshot-derived value %s and may outlive the morsel (use-after-reseal); copy it out, hold it in a //geslint:snapshot-owner type, or annotate //geslint:retain-ok <why>",
				esc.desc)
		}

		// Interprocedural half: snapshot-derived arguments flowing into
		// parameters the callee transitively retains.
		for _, c := range fi.Calls {
			callee := a.funcs[c.Callee]
			if callee == nil {
				continue
			}
			for j, arg := range c.Args {
				if j >= len(callee.Retains) || !callee.Retains[j] {
					continue
				}
				if _, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
					continue // call-synchronous closures (RunMorsels); async is R5's beat
				}
				if env.exprMask(arg)&snapMask == 0 {
					continue
				}
				if waivedAt(okLines, fset.Position(arg.Pos()).Line) {
					continue
				}
				a.report(arg.Pos(), "R8",
					"snapshot-derived value passed to %s, which retains parameter %q beyond the call; copy it out or annotate //geslint:retain-ok <why>",
					funcLabel(c.Callee), callee.Params[j].Name())
			}
		}
	}
}
