package lint

import (
	"go/ast"
	"sort"
)

// R2: lock-order checking. Lock sites are named "TypeName.fieldName" (the
// struct type owning the mutex field, peeling pointers and index
// expressions, so every stripe of a striped lock table shares one name).
// //geslint:lockorder A < B comments declare that A may be held while
// acquiring B; the relation is closed transitively. A function acquiring B
// while holding A is flagged when the declared order says B < A (inversion)
// or when no declared path connects them (undeclared nesting). Acquisitions
// are tracked by a linear in-order scan per function — a deliberate
// approximation (branches are treated sequentially) that favors false
// negatives over false positives. Calls made while holding a lock check the
// callee's transitive acquire set from the interprocedural summaries, so
// nesting hidden behind a helper — even one declared in another package —
// is still seen.

// lockOrder is the declared partial order over lock names.
type lockOrder struct {
	edges map[string]map[string]bool // a -> set of b with a < b declared
}

// collectLockOrder gathers //geslint:lockorder declarations module-wide.
func collectLockOrder(mod *Module) *lockOrder {
	o := &lockOrder{edges: map[string]map[string]bool{}}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := directiveRe.FindStringSubmatch(c.Text)
					if m == nil || m[1] != "lockorder" {
						continue
					}
					if lm := lockOrderRe.FindStringSubmatch(m[2]); lm != nil {
						if o.edges[lm[1]] == nil {
							o.edges[lm[1]] = map[string]bool{}
						}
						o.edges[lm[1]][lm[2]] = true
					}
				}
			}
		}
	}
	return o
}

// before reports whether a < b is declared (transitively).
func (o *lockOrder) before(a, b string) bool {
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(cur string) bool {
		if seen[cur] {
			return false
		}
		seen[cur] = true
		for next := range o.edges[cur] {
			if next == b || walk(next) {
				return true
			}
		}
		return false
	}
	return walk(a)
}

// mutexOp decomposes a call into a sync.Mutex / sync.RWMutex lock operation:
// the operation name (Lock/RLock/Unlock/RUnlock) and the lock's derived
// name. ok is false for every other call.
func (a *Analysis) mutexOp(pkg *Package, call *ast.CallExpr) (op, lock string, ok bool) {
	recv, fn, ok := methodCall(pkg, call)
	if !ok {
		return "", "", false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	n := namedOf(pkg.Info.TypeOf(recv))
	if n == nil || (n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), a.lockName(pkg, recv), true
	}
	return "", "", false
}

// lockName derives the stable name of a mutex expression: the named type of
// the enclosing struct plus the field name. Index expressions are peeled so
// striped locks share one name; bare identifiers (local mutexes) name
// themselves.
func (a *Analysis) lockName(pkg *Package, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return a.lockName(pkg, x.X)
	case *ast.IndexExpr:
		return a.lockName(pkg, x.X)
	case *ast.SelectorExpr:
		if n := namedOf(pkg.Info.TypeOf(x.X)); n != nil {
			return n.Obj().Name() + "." + x.Sel.Name
		}
		return a.lockName(pkg, x.X) + "." + x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return "?"
}

// checkLockOrder runs R2 over one package. The per-function acquire sets
// come from the interprocedural summaries (already closed module-wide by
// closeAcquires), replacing the old same-package-only fixpoint.
func (a *Analysis) checkLockOrder(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.scanHeldLocks(pkg, fd)
		}
	}
}

// scanHeldLocks walks one function body in source order, maintaining the
// stack of held locks and checking every new acquisition — direct or through
// a resolved callee's transitive acquire set — against the declared order.
func (a *Analysis) scanHeldLocks(pkg *Package, fd *ast.FuncDecl) {
	var held []string
	heldHas := func(lock string) bool {
		for _, h := range held {
			if h == lock {
				return true
			}
		}
		return false
	}
	check := func(pos ast.Node, lock, via string) {
		for _, h := range held {
			if h == lock {
				continue // striped / re-entrant by index: not ordered against itself
			}
			if a.order.before(lock, h) {
				a.report(pos.Pos(), "R2",
					"acquiring %s%s while holding %s inverts the declared lock order (%s < %s)",
					lock, via, h, lock, h)
			} else if !a.order.before(h, lock) {
				a.report(pos.Pos(), "R2",
					"acquiring %s%s while holding %s: nesting not declared; add //geslint:lockorder %s < %s if intended",
					lock, via, h, h, lock)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to the end of the
			// function: skip the call so the held stack is not popped early.
			if op, _, ok := a.mutexOp(pkg, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				return false
			}
		case *ast.FuncLit:
			// Closure bodies run at an unknown time relative to this scan;
			// they are analyzed when encountered, against the current held
			// set, which matches the common immediate-invocation pattern.
			return true
		case *ast.CallExpr:
			if op, lock, ok := a.mutexOp(pkg, s); ok {
				switch op {
				case "Lock", "RLock":
					check(s, lock, "")
					held = append(held, lock)
				case "Unlock", "RUnlock":
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == lock {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return false
			}
			if len(held) == 0 {
				return true
			}
			if callee := calleeFunc(pkg, s); callee != nil {
				ci := a.funcs[callee]
				if ci == nil {
					return true
				}
				locks := make([]string, 0, len(ci.Acquires))
				for lock := range ci.Acquires {
					if !heldHas(lock) {
						locks = append(locks, lock)
					}
				}
				sort.Strings(locks)
				for _, lock := range locks {
					check(s, lock, " (via "+callee.Name()+")")
				}
			}
		}
		return true
	})
}
