package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The interprocedural substrate: every declared function in the module gets
// one FuncInfo summary — its allocation, lock, spawn, opaque-call, error-
// discard and stats-write sites, its resolved module-internal call sites,
// the lock names it acquires, and which of its parameters it retains in
// memory that outlives the call. Summaries are collected in one AST pass
// per function and then closed to a fixed point over the module-wide call
// graph (transitive purity for R7, transitive acquire sets for R2,
// transitive parameter retention for R8), so each rule is a cheap query
// instead of a bespoke whole-module walk.

// Site is one recorded fact location inside a function body.
type Site struct {
	Pos    token.Pos
	What   string
	Waived bool // a justified line-scope directive waives the site
}

// CallSite is one call resolved to a module-internal function. Args is
// receiver-first, aligned with the callee's Params.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
	Args   []ast.Expr
}

// Impurity explains why a function is transitively not kernel-pure: the
// root offending site and the call chain that reaches it.
type Impurity struct {
	What string
	Pos  token.Pos
	Via  []string // call chain toward the site, outermost callee first
}

// FuncInfo is the summary of one declared function or method.
type FuncInfo struct {
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
	Fn   *types.Func

	Kernel bool // //geslint:kernel — must be transitively pure (R7)
	Seal   bool // //geslint:seal — sanctioned atomic publication site (R9)

	Allocs []Site // allocation sites (waivable //geslint:alloc-ok)
	Locks  []Site // mutex acquisitions
	Spawns []Site // go statements
	Opaque []Site // calls whose effects cannot be analyzed

	Calls    []CallSite
	Acquires map[string]bool // lock names, closed transitively (R2)

	StatsWrites []token.Pos // writes through internal/stats values (R6)
	ErrDiscards []Site      // silently discarded errors (R10)

	Params  []*types.Var // receiver-first
	Retains []bool       // param escapes into long-lived memory (R8)

	env    *maskEnv // parameter-label environment, kept for call-site queries
	impure *Impurity
}

// Pure reports whether the function is transitively allocation-, lock- and
// spawn-free with no opaque calls.
func (fi *FuncInfo) Pure() bool { return fi.impure == nil }

// Impure returns the impurity witness, or nil for pure functions.
func (fi *FuncInfo) Impure() *Impurity { return fi.impure }

// pureExternal lists the non-module packages whose calls are accepted
// inside kernels: atomic loads/stores and pure arithmetic never allocate,
// lock, or spawn. Everything else outside the module is opaque.
var pureExternal = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

// funcLabel renders Type.Method or Func for diagnostics.
func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// isModuleFunc reports whether fn is declared inside the analyzed module.
func (a *Analysis) isModuleFunc(fn *types.Func) bool {
	p := fn.Pkg()
	if p == nil {
		return false
	}
	return p.Path() == a.mod.Path || strings.HasPrefix(p.Path(), a.mod.Path+"/")
}

// calleeFunc resolves a call expression to its static callee, across
// package boundaries. nil means the callee is dynamic (function value,
// interface method dispatch) or not a function at all.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[fun]; s != nil {
			if s.Kind() == types.MethodVal || s.Kind() == types.MethodExpr {
				if fn, ok := s.Obj().(*types.Func); ok {
					if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() != nil {
						if _, iface := sig.Recv().Type().Underlying().(*types.Interface); iface {
							return nil // interface dispatch is dynamic
						}
					}
					return fn
				}
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}

// buildSummaries walks every declared function once, collecting direct
// facts. mod.Pkgs is sorted and files/decls are in source order, so
// funcOrder — and with it every fixed point below — is deterministic.
func (a *Analysis) buildSummaries() {
	for _, pkg := range a.mod.Pkgs {
		for _, f := range pkg.Files {
			fctx := &fileCtx{
				allocOK: lineReasons(a.mod.Fset, f, "alloc-ok"),
				errOK:   lineReasons(a.mod.Fset, f, "err-ok"),
				statsTaint: taintedObjs(pkg, f, func(e ast.Expr) bool {
					sel, ok := e.(*ast.SelectorExpr)
					return ok && a.isStatsValue(pkg, sel.X)
				}),
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.ObjectOf(fd.Name).(*types.Func)
				if !ok {
					continue
				}
				fi := a.summarize(pkg, f, fd, fn, fctx)
				a.funcs[fn] = fi
				a.funcOrder = append(a.funcOrder, fi)
			}
		}
	}
}

// fileCtx carries the per-file precomputed state every summary in the file
// shares: waiver lines and the file-scope stats-alias taint (R6 keeps its
// original file-scope aliasing semantics).
type fileCtx struct {
	allocOK    map[int]string
	errOK      map[int]string
	statsTaint map[types.Object]bool
}

// summarize collects one function's direct facts in a single AST pass.
func (a *Analysis) summarize(pkg *Package, f *ast.File, fd *ast.FuncDecl, fn *types.Func, fctx *fileCtx) *FuncInfo {
	fset := a.mod.Fset
	fi := &FuncInfo{Pkg: pkg, File: f, Decl: fd, Fn: fn, Acquires: map[string]bool{}}
	docPos := token.NoPos
	if fd.Doc != nil {
		docPos = fd.Doc.Pos()
	}
	fi.Kernel = declDirective(fset, f, "kernel", docPos, fd.Pos()) != nil
	if r := declDirective(fset, f, "seal", docPos, fd.Pos()); r != nil && *r != "" {
		fi.Seal = true
	}

	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		fi.Params = append(fi.Params, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		fi.Params = append(fi.Params, sig.Params().At(i))
	}
	fi.Retains = make([]bool, len(fi.Params))

	// Parameter-label environment: bit i marks values derived from param i.
	fi.env = &maskEnv{pkg: pkg, objs: map[types.Object]uint64{}}
	for i, p := range fi.Params {
		if i >= 63 {
			break
		}
		if hasRefs(p.Type()) {
			fi.env.objs[p] = 1 << uint(i)
		}
	}
	fi.env.solve(fd.Body)

	site := func(pos token.Pos, what string, waivers map[int]string) Site {
		return Site{Pos: pos, What: what,
			Waived: waivers != nil && waivedAt(waivers, fset.Position(pos).Line)}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			fi.Spawns = append(fi.Spawns, site(x.Pos(), "go statement", nil))
		case *ast.FuncLit:
			fi.Allocs = append(fi.Allocs, site(x.Pos(), "closure allocation", fctx.allocOK))
		case *ast.CompositeLit:
			switch pkg.Info.TypeOf(x).Underlying().(type) {
			case *types.Slice, *types.Map:
				fi.Allocs = append(fi.Allocs, site(x.Pos(), "composite literal allocation", fctx.allocOK))
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, lit := x.X.(*ast.CompositeLit); lit {
					fi.Allocs = append(fi.Allocs, site(x.Pos(), "heap literal (&T{...})", fctx.allocOK))
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if b, ok := pkg.Info.TypeOf(x).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					fi.Allocs = append(fi.Allocs, site(x.Pos(), "string concatenation", fctx.allocOK))
				}
			}
		case *ast.CallExpr:
			a.summarizeCall(pkg, fi, x, fctx, site)
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if a.statsWriteTarget(pkg, fctx.statsTaint, lhs) {
					fi.StatsWrites = append(fi.StatsWrites, lhs.Pos())
				}
			}
			a.blankErrDiscards(pkg, fi, x, fctx, site)
		case *ast.IncDecStmt:
			if a.statsWriteTarget(pkg, fctx.statsTaint, x.X) {
				fi.StatsWrites = append(fi.StatsWrites, x.X.Pos())
			}
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				a.bareErrDiscard(pkg, fi, call, fctx, site)
			}
		case *ast.DeferStmt:
			a.bareErrDiscard(pkg, fi, x.Call, fctx, site)
		}
		return true
	})

	// Direct parameter retention: a parameter-derived value stored into
	// caller-visible or package-level memory escapes the call.
	for _, esc := range a.scanEscapes(pkg, fd.Body, fi.env) {
		retained := esc.mask &^ esc.rootMask // self-stores don't retain the root
		for i := range fi.Params {
			if i < 63 && retained&(1<<uint(i)) != 0 {
				fi.Retains[i] = true
			}
		}
	}
	return fi
}

// summarizeCall classifies one call expression: conversion, builtin, mutex
// operation, resolved module call, allowlisted external, or opaque.
func (a *Analysis) summarizeCall(pkg *Package, fi *FuncInfo, call *ast.CallExpr, fctx *fileCtx, site func(token.Pos, string, map[int]string) Site) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && stringBytesConv(pkg.Info.TypeOf(call.Args[0]), tv.Type) {
			fi.Allocs = append(fi.Allocs, site(call.Pos(), "string/[]byte conversion", fctx.allocOK))
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				fi.Allocs = append(fi.Allocs, site(call.Pos(), b.Name(), fctx.allocOK))
			}
			return
		}
	}
	if op, lock, ok := a.mutexOp(pkg, call); ok {
		if op == "Lock" || op == "RLock" {
			fi.Locks = append(fi.Locks, site(call.Pos(), op+" of "+lock, nil))
			fi.Acquires[lock] = true
		}
		return
	}
	fn := calleeFunc(pkg, call)
	if fn == nil {
		fi.Opaque = append(fi.Opaque,
			site(call.Pos(), "dynamic call (function value or interface method)", fctx.allocOK))
		return
	}
	if a.isModuleFunc(fn) {
		args := call.Args
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				args = append([]ast.Expr{sel.X}, call.Args...)
			}
		}
		fi.Calls = append(fi.Calls, CallSite{Callee: fn, Pos: call.Pos(), Args: args})
		return
	}
	if fn.Pkg() != nil && !pureExternal[fn.Pkg().Path()] {
		fi.Opaque = append(fi.Opaque,
			site(call.Pos(), "call to "+fn.Pkg().Path()+"."+funcLabel(fn), fctx.allocOK))
	}
}

// stringBytesConv reports the conversions that copy their operand: string
// <-> []byte / []rune.
func stringBytesConv(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteSlice(to)) || (isByteSlice(from) && isStr(to))
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// callErrResults returns the callee and the positions of error-typed
// results when call resolves to a module-internal function returning one.
func (a *Analysis) callErrResults(pkg *Package, call *ast.CallExpr) (*types.Func, []int) {
	fn := calleeFunc(pkg, call)
	if fn == nil || !a.isModuleFunc(fn) {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	var errIdx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			errIdx = append(errIdx, i)
		}
	}
	return fn, errIdx
}

// bareErrDiscard flags `f()` / `defer f()` statements that drop a module
// function's error result on the floor (R10).
func (a *Analysis) bareErrDiscard(pkg *Package, fi *FuncInfo, call *ast.CallExpr, fctx *fileCtx, site func(token.Pos, string, map[int]string) Site) {
	fn, errIdx := a.callErrResults(pkg, call)
	if len(errIdx) == 0 {
		return
	}
	fi.ErrDiscards = append(fi.ErrDiscards,
		site(call.Pos(), "error from "+funcLabel(fn)+" discarded by bare call", fctx.errOK))
}

// blankErrDiscards flags `_ = f()` and `v, _ := g()` assignments that blank
// a module function's error result (R10).
func (a *Analysis) blankErrDiscards(pkg *Package, fi *FuncInfo, as *ast.AssignStmt, fctx *fileCtx, site func(token.Pos, string, map[int]string) Site) {
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if !isBlank(lhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, errIdx := a.callErrResults(pkg, call)
			if len(errIdx) == 0 {
				continue
			}
			fi.ErrDiscards = append(fi.ErrDiscards,
				site(as.Pos(), "error from "+funcLabel(fn)+" assigned to _", fctx.errOK))
		}
		return
	}
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, errIdx := a.callErrResults(pkg, call)
	for _, i := range errIdx {
		if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
			fi.ErrDiscards = append(fi.ErrDiscards,
				site(as.Pos(), "error from "+funcLabel(fn)+" assigned to _", fctx.errOK))
			return
		}
	}
}

// statsWriteTarget peels a write target down to the expression that makes
// it a statistics write (R6), if any: a field of an internal/stats value or
// an index through a tainted alias of one.
func (a *Analysis) statsWriteTarget(pkg *Package, tainted map[types.Object]bool, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			if id, ok := x.X.(*ast.Ident); ok && tainted[pkg.Info.ObjectOf(id)] {
				return true
			}
			e = x.X
		case *ast.SelectorExpr:
			if a.isStatsValue(pkg, x.X) {
				return true
			}
			e = x.X
		default:
			return false
		}
	}
}

// ---------------------------------------------------------------- closures

// closeAcquires propagates lock-acquire sets over the module-wide call
// graph to a fixed point, so R2 sees nesting hidden behind helpers in any
// package.
func (a *Analysis) closeAcquires() {
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcOrder {
			for _, c := range fi.Calls {
				callee := a.funcs[c.Callee]
				if callee == nil || callee == fi {
					continue
				}
				for lock := range callee.Acquires {
					if !fi.Acquires[lock] {
						fi.Acquires[lock] = true
						changed = true
					}
				}
			}
		}
	}
}

// closeRetains propagates parameter retention through call sites: passing a
// parameter-derived value into a retaining parameter retains it here too.
func (a *Analysis) closeRetains() {
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcOrder {
			for _, c := range fi.Calls {
				callee := a.funcs[c.Callee]
				if callee == nil {
					continue
				}
				for j, arg := range c.Args {
					if j >= len(callee.Retains) || !callee.Retains[j] {
						continue
					}
					if _, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
						continue // call-synchronous closure arguments (see R8 notes)
					}
					mask := fi.env.exprMask(arg)
					for i := range fi.Params {
						if i < 63 && mask&(1<<uint(i)) != 0 && !fi.Retains[i] {
							fi.Retains[i] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// closeImpurity computes transitive purity: a function is impure when it
// has an unwaived direct site or calls an impure (or unanalyzable)
// function. Deterministic because funcOrder and call order are.
func (a *Analysis) closeImpurity() {
	firstDirect := func(fi *FuncInfo) *Impurity {
		best := func(sites []Site) *Site {
			for i := range sites {
				if !sites[i].Waived {
					return &sites[i]
				}
			}
			return nil
		}
		var first *Site
		for _, group := range [][]Site{fi.Allocs, fi.Locks, fi.Spawns, fi.Opaque} {
			if s := best(group); s != nil && (first == nil || s.Pos < first.Pos) {
				first = s
			}
		}
		if first == nil {
			return nil
		}
		return &Impurity{What: first.What, Pos: first.Pos}
	}
	for _, fi := range a.funcOrder {
		fi.impure = firstDirect(fi)
		if fi.impure != nil {
			continue
		}
		// Module-internal callees without a body summary (none exist today,
		// but interface methods resolved to module packages would land
		// here) are unanalyzable.
		for _, c := range fi.Calls {
			if a.funcs[c.Callee] == nil {
				fi.impure = &Impurity{
					What: fmt.Sprintf("call to %s (no analyzable body)", funcLabel(c.Callee)),
					Pos:  c.Pos,
				}
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcOrder {
			if fi.impure != nil {
				continue
			}
			for _, c := range fi.Calls {
				callee := a.funcs[c.Callee]
				if callee == nil || callee.impure == nil {
					continue
				}
				via := append([]string{funcLabel(c.Callee)}, callee.impure.Via...)
				if len(via) > 8 {
					via = via[:8]
				}
				fi.impure = &Impurity{What: callee.impure.What, Pos: callee.impure.Pos, Via: via}
				changed = true
				break
			}
		}
	}
}
