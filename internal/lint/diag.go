package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// Diag is one analyzer finding. File is relative to the module root so
// output is stable across checkouts (and so the fixture self-test can match
// positions exactly).
type Diag struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// diagAt builds a Diag from a token position, relativizing the filename.
func diagAt(root string, pos token.Position, rule, format string, args ...any) Diag {
	file := pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	return Diag{File: file, Line: pos.Line, Col: pos.Column, Rule: rule,
		Msg: fmt.Sprintf(format, args...)}
}

// sortDiags orders findings by file, line, column, rule — deterministic
// output regardless of package load order.
func sortDiags(ds []Diag) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// writeText prints one finding per line in the classic file:line:col form.
func WriteText(w io.Writer, ds []Diag) {
	for _, d := range ds {
		fmt.Fprintln(w, d)
	}
}

// writeJSON prints the findings as a JSON array (-json), one object per
// finding, for machine consumption in CI annotations.
func WriteJSON(w io.Writer, ds []Diag) error {
	if ds == nil {
		ds = []Diag{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}
