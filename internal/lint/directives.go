package lint

import (
	"go/ast"
	"go/token"
	"regexp"
)

// Directive grammar: `//geslint:<name> <argument...>`. Three attachment
// scopes exist, resolved purely by position:
//
//   - file scope: anywhere in the file (scalar-ok, selwrite-ok,
//     statswrite-ok);
//   - line scope: on, or on the line directly above, the statement it
//     waives (scalar-ok for Neighbors, go-ok, alloc-ok, retain-ok, err-ok,
//     leak-ok);
//   - declaration scope: inside the doc comment of (or on the line directly
//     above) a func, type, or struct field (kernel, seal, snapshot-owner,
//     atomicptr), or in the declaration's same-line comment.
//
// Opt-outs that silence an interprocedural rule must say why: alloc-ok,
// retain-ok, err-ok, leak-ok, seal, and snapshot-owner require a non-empty
// justification argument, enforced by checkJustifications. A bare directive
// is inert (the site it would waive is still reported) and is itself a
// finding, so an opt-out can never silently rot into a blanket exemption.
var directiveRe = regexp.MustCompile(`^//geslint:([a-z-]+)\s*(.*?)\s*$`)
var lockOrderRe = regexp.MustCompile(`^(\S+)\s*<\s*(\S+)$`)

// needsReason maps the directives whose argument is a mandatory one-line
// justification to the rule that owns them (for the finding's rule tag).
var needsReason = map[string]string{
	"alloc-ok":       "R7",
	"retain-ok":      "R8",
	"snapshot-owner": "R8",
	"seal":           "R9",
	"err-ok":         "R10",
	"leak-ok":        "R11",
}

// fileDirectives collects the file-scope geslint directives of a file.
func fileDirectives(f *ast.File) map[string]bool {
	out := map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if m := directiveRe.FindStringSubmatch(c.Text); m != nil {
				out[m[1]] = true
			}
		}
	}
	return out
}

// directiveLines maps source lines carrying the named line-scope directive.
func directiveLines(fset *token.FileSet, f *ast.File, name string) map[int]bool {
	out := map[int]bool{}
	for line := range lineReasons(fset, f, name) {
		out[line] = true
	}
	return out
}

// lineReasons maps source lines carrying the named directive to its
// argument text (the justification; possibly empty).
func lineReasons(fset *token.FileSet, f *ast.File, name string) map[int]string {
	out := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == name {
				out[fset.Position(c.Pos()).Line] = m[2]
			}
		}
	}
	return out
}

// waivedAt reports whether a site at the given line is waived by a
// justified directive on that line or the line above. Unjustified
// directives do not waive (checkJustifications flags them separately).
func waivedAt(lines map[int]string, line int) bool {
	if r, ok := lines[line]; ok && r != "" {
		return true
	}
	if r, ok := lines[line-1]; ok && r != "" {
		return true
	}
	return false
}

// declDirective returns the argument of the named directive attached to a
// declaration spanning [declPos, endPos]: a directive line within the doc
// comment range, on the line directly above the declaration, or on the
// declaration's own line. nil means the directive is absent.
func declDirective(fset *token.FileSet, f *ast.File, name string, docPos, declPos token.Pos) *string {
	declLine := fset.Position(declPos).Line
	lo := declLine - 1
	if docPos.IsValid() {
		lo = fset.Position(docPos).Line
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil || m[1] != name {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if line >= lo && line <= declLine {
				arg := m[2]
				return &arg
			}
		}
	}
	return nil
}

// checkJustifications flags every reason-requiring directive that carries
// no justification text. The finding lands on the directive's own line
// under the owning rule, and the directive stays inert until justified.
func (a *Analysis) checkJustifications() {
	for _, pkg := range a.mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := directiveRe.FindStringSubmatch(c.Text)
					if m == nil || m[2] != "" {
						continue
					}
					if rule, ok := needsReason[m[1]]; ok {
						a.report(c.Pos(), rule,
							"//geslint:%s requires a one-line justification; a bare opt-out does not waive anything",
							m[1])
					}
				}
			}
		}
	}
}
