package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"
)

// wantRe matches the fixture expectation markers: `// want R3`.
var wantRe = regexp.MustCompile(`//\s*want\s+(R\d+)\b`)

// wantBelowRe marks the NEXT line as expected. It exists for findings that
// land on a directive's own line (an unjustified opt-out), where an inline
// marker would be parsed as the directive's justification and defeat the
// case it fixes.
var wantBelowRe = regexp.MustCompile(`//\s*want-below\s+(R\d+)\b`)

// fixtureWants scans the fixture module for `// want Rn` markers and returns
// them as "file:line:rule" keys (file relative to the fixture root).
func fixtureWants(t *testing.T, root string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, werr error) error {
		if werr != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return werr
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, _ := filepath.Rel(root, path)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), i+1, m[1])] = true
			}
			for _, m := range wantBelowRe.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), i+2, m[1])] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestRulesOnFixtureModule loads the miniature module under testdata/src —
// stub packages published under the real import paths — and checks the
// analyzer's findings against the `// want Rn` markers exactly: every marked
// line must be found (one positive case per rule) and nothing else may be
// flagged (the negative cases).
func TestRulesOnFixtureModule(t *testing.T) {
	root := filepath.Join("testdata", "src")
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "ges" {
		t.Fatalf("fixture module path = %q, want ges", mod.Path)
	}
	diags := Run(mod)

	got := map[string]bool{}
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Rule)] = true
	}
	want := fixtureWants(t, root)

	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	for _, k := range missing {
		t.Errorf("expected finding not reported: %s", k)
	}
	for _, k := range extra {
		t.Errorf("unexpected finding: %s", k)
	}

	// Every rule must have at least one positive case in the fixture, so a
	// rule silently dying cannot pass the test.
	for _, rule := range []string{"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11"} {
		found := false
		for k := range want {
			if strings.HasSuffix(k, ":"+rule) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture has no positive case for %s", rule)
		}
	}
}

// TestSelfClean runs the analyzer over the real module: after the deliberate
// exceptions were annotated, `geslint ./...` must be clean — the same gate
// CI enforces. It doubles as the analysis-latency smoke: loading,
// summarizing, and closing the whole module must finish well under the 30s
// budget CI asserts.
func TestSelfClean(t *testing.T) {
	start := time.Now()
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod)
	elapsed := time.Since(start)
	for _, d := range diags {
		t.Errorf("module not clean: %s", d)
	}
	if elapsed > 30*time.Second {
		t.Errorf("whole-module analysis took %v, budget is 30s", elapsed)
	}
}

// TestSummaryConvergence pins the interprocedural fixed points on the
// recursive fixture functions: a pure mutual-recursion cycle must converge
// without being marked impure, and impurity entering a cycle must propagate
// out of it with the call chain intact.
func TestSummaryConvergence(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(mod)
	byName := map[string]*FuncInfo{}
	for _, fi := range a.funcOrder {
		if fi.Pkg.Rel == "internal/vector" {
			byName[fi.Fn.Name()] = fi
		}
	}
	for _, name := range []string{"KEvenSteps", "KOddSteps"} {
		fi := byName[name]
		if fi == nil {
			t.Fatalf("fixture function %s not summarized", name)
		}
		if !fi.Pure() {
			t.Errorf("%s: pure recursive cycle marked impure: %+v", name, fi.Impure())
		}
	}
	fi := byName["KBadCycle"]
	if fi == nil {
		t.Fatal("fixture function KBadCycle not summarized")
	}
	imp := fi.Impure()
	if imp == nil {
		t.Fatal("KBadCycle: impurity did not propagate out of the recursive cycle")
	}
	if imp.What != "make" {
		t.Errorf("KBadCycle impurity = %q, want the root make site", imp.What)
	}
	if len(imp.Via) == 0 || imp.Via[0] != "badPing" {
		t.Errorf("KBadCycle impurity chain = %v, want it to enter through badPing", imp.Via)
	}
}

// TestJSONOutput checks the -json encoding: an empty run emits a JSON array
// (not null), and findings round-trip with all fields.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty findings encode as %q, want []", got)
	}

	in := []Diag{{File: "internal/op/x.go", Line: 3, Col: 7, Rule: "R5", Msg: "raw go statement"}}
	buf.Reset()
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Diag
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round-trip = %+v, want %+v", out, in)
	}
	if !strings.Contains(buf.String(), `"rule": "R5"`) {
		t.Fatalf("JSON missing rule field: %s", buf.String())
	}
}
