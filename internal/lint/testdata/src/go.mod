module ges

go 1.22
