// Package sched is the sanctioned goroutine spawn point: R5 does not cover
// it, so the raw go statement below must not be flagged.
package sched

// Run spawns fn on a worker goroutine.
func Run(fn func()) {
	go fn()
}
