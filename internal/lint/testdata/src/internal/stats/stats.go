// Package stats is the fixture stub for R6: a statistics snapshot whose
// fields may only be written inside this package.
package stats

// Snapshot is an immutable-once-published statistics image.
type Snapshot struct {
	Vertices int
	Labels   map[uint16]int
	Families map[uint16]Family
}

// Family summarizes one adjacency family.
type Family struct {
	Edges int
	Hist  Histogram
}

// Histogram is an equi-depth degree summary.
type Histogram struct{ Buckets []Bucket }

// Bucket is one histogram bucket.
type Bucket struct{ Lo, Hi, Count int }

// Builder-style writes inside internal/stats are sanctioned (negative case).
func (s *Snapshot) seal(label uint16, card int) {
	s.Vertices += card
	s.Labels[label] = card
}
