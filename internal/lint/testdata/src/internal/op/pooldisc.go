// Pool-discipline fixtures (R11): transient Arena/Pool Get* acquires must
// be discharged — a matching Put*, an ownership hand-off, or a justified
// //geslint:leak-ok waiver. Positive cases drop a buffer on the floor, leak
// on one function while pairing on another, and carry a bare (unjustified)
// waiver; negative cases cover the deferred pair, alias shuffles, returns,
// container stores, hand-offs through a releasing helper, and the justified
// waiver.
package op

import (
	"ges/internal/storage"
	"ges/internal/vector"
)

// LeakDropped acquires a buffer no path releases or hands off.
func LeakDropped(a *storage.Arena) int {
	buf := a.GetVIDs(8) // want R11
	return len(buf)
}

// LeakArena checks the pool-level pairing: an arena checked out of the
// shared pool must go back (the engine's per-query bracket).
func LeakArena(p *storage.Pool) {
	ar := p.GetArena(false) // want R11
	ar.GetVals(0)           // want R11
}

// LeakBareWaiver carries a waiver with no justification: the directive is
// itself a finding and the acquire stays flagged.
func LeakBareWaiver(a *storage.Arena) {
	// want-below R11
	//geslint:leak-ok
	buf := a.GetVIDs(4) // want R11
	_ = buf
}

// OKDeferredPair releases through the canonical defer, after the alias has
// been resliced and appended through (the taint must follow it).
func OKDeferredPair(a *storage.Arena) int {
	buf := a.GetVIDs(8)
	defer a.PutVIDs(buf)
	buf = append(buf, 1, 2, 3)
	buf = buf[1:]
	return len(buf)
}

// OKClosurePair releases inside a deferred closure — the morsel-scratch
// bracket shape.
func OKClosurePair(a *storage.Arena) {
	vals := a.GetVals(4)
	defer func() { a.PutVals(vals) }()
	vals = append(vals, vector.Value{})
}

// OKReturned transfers ownership to the caller.
func OKReturned(a *storage.Arena) []vector.VID {
	return a.GetVIDs(16)
}

// scratch is a container whose lifecycle owns its buffers (released by the
// scheduler's done hook in the real module).
type scratch struct {
	vids []vector.VID
}

// OKContainerStore hands the buffer to a container's lifecycle.
func OKContainerStore(a *storage.Arena, sc *scratch) {
	sc.vids = a.GetVIDs(32)
}

// releaseVIDs is the helper OKViaHelper discharges through.
func releaseVIDs(a *storage.Arena, buf []vector.VID) {
	a.PutVIDs(buf)
}

// OKViaHelper discharges interprocedurally: the buffer flows into a callee
// that releases it.
func OKViaHelper(a *storage.Arena) {
	buf := a.GetVIDs(8)
	releaseVIDs(a, buf)
}

// fill is a pass-through helper: it returns its buffer argument's backing
// array, so the acquire obligation rides along on the result.
func fill(buf []vector.VID) []vector.VID {
	return append(buf[:0], 7)
}

// OKPassThrough pairs through a fill-style helper — the expand operators'
// expandSrcs shape.
func OKPassThrough(a *storage.Arena) {
	srcs := fill(a.GetVIDs(4))
	a.PutVIDs(srcs)
}

// OKWaivedLeak drops a buffer deliberately, under a justified waiver.
func OKWaivedLeak(a *storage.Arena) {
	//geslint:leak-ok fixture: deliberate one-shot acquire, justified
	buf := a.GetVIDs(4)
	_ = buf
}
