// Error-discipline fixtures (R10): errors returned by module-internal
// functions are never silently discarded. Positive cases cover the bare
// call, the deferred call, the blank assignment, and the tuple blank;
// negative cases cover handling, a justified err-ok waiver, and an
// external callee (out of scope by design).
package op

import "fmt"

// flush is the module-internal error source the R10 cases call.
func flush() error { return nil }

// open returns a value alongside its error.
func open(name string) (int, error) { return len(name), nil }

// BadBare drops the error of a bare call.
func BadBare() {
	flush() // want R10
}

// BadDefer drops the error of a deferred call.
func BadDefer() {
	defer flush() // want R10
}

// BadBlank blanks the error explicitly.
func BadBlank() {
	_ = flush() // want R10
}

// BadTuple blanks the error half of a tuple assignment.
func BadTuple() int {
	v, _ := open("x") // want R10
	return v
}

// OKHandled propagates both error forms (R10 negative).
func OKHandled() (int, error) {
	if err := flush(); err != nil {
		return 0, err
	}
	v, err := open("x")
	if err != nil {
		return 0, err
	}
	return v, nil
}

// OKErrWaived discards deliberately, with a justification (R10 negative).
func OKErrWaived() {
	//geslint:err-ok fixture: best-effort flush on the cleanup path
	_ = flush()
}

// OKExternal calls an external error-returning function — the rule polices
// the module's own contracts only (R10 negative).
func OKExternal() {
	fmt.Println("fixture")
}
