// Negative fixture cases: the same shapes as bad.go, made legitimate by
// directives or by operating on non-protected values. None of these lines
// may be flagged.
//
//geslint:scalar-ok
package op

import (
	"ges/internal/storage"
	"ges/internal/vector"
)

// OKScalar is permitted by the file-level scalar-ok directive (R1 negative).
func OKScalar(v storage.View, id vector.VID) vector.Value {
	return v.Prop(id, 0)
}

// OKScalarNeighbors is permitted by the line-level scalar-ok directive —
// Neighbors ignores the file-level form (R1 negative).
func OKScalarNeighbors(v storage.View, src vector.VID) []storage.Segment {
	//geslint:scalar-ok
	return v.Neighbors(nil, src, 0, 0, 0, false)
}

// OKSpawn is permitted by the line-level go-ok directive (R5 negative).
func OKSpawn() {
	done := make(chan struct{})
	//geslint:go-ok
	go func() { close(done) }()
	<-done
}

// OKScratchBitset writes a bitset that is not a selection vector (R3
// negative: taint starts at core.Node.Sel, not at every Bitset).
func OKScratchBitset(n int) *vector.Bitset {
	b := vector.NewBitset(n)
	b.Set(0)
	return b
}

// OKFreshColumn appends to a column no f-Block owns yet (R4 negative).
func OKFreshColumn() *vector.Column {
	c := vector.NewColumn("x", 0)
	c.AppendInt64(1)
	return c
}
