// Package op holds the positive fixture cases: one deliberate violation per
// rule (R1, R3, R4, R5), marked with `// want Rn` comments the self-test
// matches against geslint's findings.
package op

import (
	"ges/internal/core"
	"ges/internal/storage"
	"ges/internal/vector"
)

// BadScalarProp reads a property one row at a time through the view.
func BadScalarProp(v storage.View, id vector.VID) vector.Value {
	return v.Prop(id, 0) // want R1
}

// BadScalarExt resolves an external ID one row at a time.
func BadScalarExt(v storage.View, id vector.VID) int64 {
	return v.ExtID(id) // want R1
}

// BadScalarNeighbors expands adjacency one source at a time instead of going
// through the batched kernel.
func BadScalarNeighbors(v storage.View, src vector.VID) []storage.Segment {
	return v.Neighbors(nil, src, 0, 0, 0, false) // want R1
}

// BadSelWrite mutates a selection vector outside filter.go — directly and
// through a local alias.
func BadSelWrite(n *core.Node) {
	n.Sel.Clear(0) // want R3
	sel := n.Sel
	sel.Set(1) // want R3
}

// BadAppend grows f-Block columns behind the block's back, through each
// accessor form.
func BadAppend(b *core.FBlock) {
	b.Column(0).AppendInt64(7) // want R4
	c := b.ColumnByName("x")
	c.Append(vector.Value{}) // want R4
	b.Columns()[0].Extend(c) // want R4
}

// BadSpawn launches a goroutine without going through internal/sched.
func BadSpawn() {
	done := make(chan struct{})
	go func() { close(done) }() // want R5
	<-done
}
