package op

import "ges/internal/core"

// CloseCycle narrows the child selection in place while closing a cyclic
// pattern edge (R3 negative: internal/op/expandinto.go is sanctioned by
// name, no file directive needed).
func CloseCycle(n *core.Node) {
	n.Sel.Clear(7)
	alias := n.Sel
	alias.ClearRange(1, 4)
}
