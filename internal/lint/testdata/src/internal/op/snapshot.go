// Snapshot-lifetime fixtures (R8): values derived from a sealed snapshot —
// a zero-copy storage.Batch run, a shared scan column, the published
// *stats.Snapshot — must stay morsel-scoped. Positive cases escape into a
// package-level variable, caller-owned struct fields, a channel, a
// goroutine, and (interprocedurally) a callee that retains its parameter;
// negative cases cover local alias shuffles, a sanctioned snapshot-owner
// type, and a justified retain-ok waiver.
package op

import (
	"ges/internal/stats"
	"ges/internal/storage"
	"ges/internal/vector"
)

// snapSink, statsSink, and colSink are the package-level escape targets the
// positive cases store into.
var (
	snapSink  []vector.VID
	statsSink *stats.Snapshot
	colSink   *vector.Column
)

// Holder is an ordinary long-lived struct — not a snapshot owner.
type Holder struct {
	Keep []vector.VID
}

// LeakGlobal parks a zero-copy batch run in a package-level variable.
func LeakGlobal(b *storage.Batch) {
	snapSink = b.VIDs // want R8
}

// LeakField parks a batch run in caller-owned memory.
func LeakField(h *Holder, b *storage.Batch) {
	h.Keep = b.VIDs // want R8
}

// Morsel carries shared scan state for exactly one morsel.
//
//geslint:snapshot-owner fixture: dropped with the expand state at morsel end
type Morsel struct {
	View []vector.VID
}

// OKOwnerField stores into a sanctioned snapshot-owner type (R8 negative).
func OKOwnerField(m *Morsel, b *storage.Batch) {
	m.View = b.Run(0)
}

// LeakChan sends a batch run to another goroutine's mailbox.
func LeakChan(b *storage.Batch, ch chan []vector.VID) {
	ch <- b.VIDs // want R8
}

// consume is the goroutine body for LeakGo.
func consume(run []vector.VID) {}

// LeakGo hands a batch run to a goroutine that outlives the morsel (the
// go-ok directive settles R5; the escape is still R8's).
func LeakGo(b *storage.Batch) {
	//geslint:go-ok
	go consume(b.VIDs) // want R8
}

// keepRun parks its run argument in the holder — it retains parameter run.
func keepRun(h *Holder, run []vector.VID) {
	h.Keep = run
}

// LeakViaCallee reaches the same escape through the retention summary:
// passing a batch run to a callee that parks it is an escape one call
// later.
func LeakViaCallee(h *Holder, b *storage.Batch) {
	keepRun(h, b.VIDs) // want R8
}

// OKLocal shuffles batch-derived aliases locally without escaping (R8
// negative: a snapshot-derived root is not an escape target).
func OKLocal(b *storage.Batch) int {
	run := b.VIDs
	run = run[1:]
	total := 0
	for _, v := range run {
		total += int(v)
	}
	return total
}

// OKWaived parks a run deliberately, under a justified waiver (R8 negative).
func OKWaived(b *storage.Batch) {
	//geslint:retain-ok fixture: deliberate retention, justified
	snapSink = b.VIDs
}

// LeakStats parks the published statistics snapshot (call-typed source).
func LeakStats() {
	statsSink = storage.Stats() // want R8
}

// LeakShared parks a zero-copy shared scan view of a column.
func LeakShared(c *vector.Column) {
	colSink = c.ShareScanColumn() // want R8
}

// BadStatsWrite mutates a published snapshot in place — R6, the write-side
// complement of R8's lifetime discipline.
func BadStatsWrite(s *stats.Snapshot) {
	s.Vertices = 0 // want R6
}
