// The file-level scalar-ok directive exempts Prop and ExtID but deliberately
// not Neighbors: each scalar adjacency loop must carry its own line-level
// annotation, so a blanket opt-out cannot hide a new per-source expand.
//
//geslint:scalar-ok
package op

import (
	"ges/internal/storage"
	"ges/internal/vector"
)

// FileScopedProp is exempt via the file directive (R1 negative).
func FileScopedProp(v storage.View, id vector.VID) vector.Value {
	return v.Prop(id, 0)
}

// FileScopedNeighbors lacks a line-level annotation, so the file directive
// does not save it.
func FileScopedNeighbors(v storage.View, src vector.VID) []storage.Segment {
	return v.Neighbors(nil, src, 0, 0, 0, false) // want R1
}
