package op

import "ges/internal/core"

// ApplyFilter writes selection vectors from the one operator file allowed to
// (R3 negative: internal/op/filter.go is the sanctioned writer).
func ApplyFilter(n *core.Node) {
	n.Sel.Clear(3)
	n.Sel.ClearRange(0, 2)
}
