// Package plan is the fixture consumer for R6: it may read statistics
// snapshots but never write through them.
package plan

import "ges/internal/stats"

// Card only reads the snapshot (negative case).
func Card(s *stats.Snapshot, l uint16) int {
	return s.Labels[l] + s.Vertices + len(s.Families[l].Hist.Buckets)
}

// Mutate exercises every write shape R6 polices.
func Mutate(s *stats.Snapshot, l uint16) {
	s.Vertices = 9     // want R6
	s.Labels[l] = 3    // want R6
	f := s.Families[l] // a copy — but its Histogram shares bucket storage
	f.Hist.Buckets[0].Count++ // want R6
	m := s.Labels
	m[l] = 4 // want R6
}
