// Package core stubs the factorized representation: Node with a selection
// vector and FBlock with column accessors, under the real import path.
package core

import "ges/internal/vector"

// Node is one f-Tree node.
type Node struct {
	Block *FBlock
	Sel   *vector.Bitset
}

// FBlock is a factorized block of equal-cardinality columns.
type FBlock struct {
	cols []*vector.Column
}

// NewFBlock builds a block over the given columns.
func NewFBlock(cols ...*vector.Column) *FBlock { return &FBlock{cols: cols} }

// Column returns the i-th column.
func (b *FBlock) Column(i int) *vector.Column { return b.cols[i] }

// ColumnByName returns the named column or nil.
func (b *FBlock) ColumnByName(name string) *vector.Column {
	for _, c := range b.cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Columns returns the column slice.
func (b *FBlock) Columns() []*vector.Column { return b.cols }

// AddColumn appends a column; core is the sanctioned writer, so the appends
// inside this package must NOT be flagged by R4.
func (b *FBlock) AddColumn(c *vector.Column) {
	b.cols = append(b.cols, c)
}

// Renumber exercises core's own right to write selection vectors (R3
// negative case) and grow block columns (R4 negative case).
func (b *FBlock) Renumber(n *Node) {
	n.Sel.Set(0)
	b.Column(0).AppendInt64(0)
}
