// Atomic-publication fixtures (R9): a field annotated //geslint:atomicptr
// is read only through an immediate Load and published only inside a
// declared //geslint:seal site. internal/storage is exempt from R8, not
// from R9 — publication discipline binds the owner packages too.
package storage

import "sync/atomic"

// img is a sealed image published behind an atomic pointer.
type img struct{ n int }

// publisher owns the published pointer.
type publisher struct {
	snap atomic.Pointer[img] //geslint:atomicptr
}

// OKLoad reads through an immediate Load (R9 negative).
func (p *publisher) OKLoad() int {
	if s := p.snap.Load(); s != nil {
		return s.n
	}
	return 0
}

// sealImg publishes a new image at the declared seal site (R9 negative).
//
//geslint:seal fixture: the one sanctioned publication point
func (p *publisher) sealImg(s *img) {
	p.snap.Store(s)
}

// BadStore publishes outside a seal site.
func (p *publisher) BadStore(s *img) {
	p.snap.Store(s) // want R9
}

// BadSwap swaps outside a seal site.
func (p *publisher) BadSwap(s *img) *img {
	return p.snap.Swap(s) // want R9
}

// BadAlias leaks the atomic cell itself, hiding future accesses from the
// analysis.
func (p *publisher) BadAlias() *atomic.Pointer[img] {
	return &p.snap // want R9
}

// ---------------------------------------------------------------------------
// Delta-overlay fixtures: an image paired with a mutable delta is still
// published through the same atomicptr discipline — draining the delta does
// not exempt the swap from R9.
// ---------------------------------------------------------------------------

// deltaImg is a sealed image carrying a mutable overlay, as the delta-overlay
// CSR does.
type deltaImg struct {
	n     int
	delta []int
}

// overlayOwner owns the published image+delta pair.
type overlayOwner struct {
	snap atomic.Pointer[deltaImg] //geslint:atomicptr
}

// resealOK rebuilds the image (empty delta) and swaps it in at a declared
// seal site (R9 negative).
//
//geslint:seal fixture: reseal publishes the rebuilt image with a fresh delta
func (o *overlayOwner) resealOK(n int) {
	o.snap.Store(&deltaImg{n: n})
}

// BadDeltaPublish drains the delta into a rebuilt image but publishes it
// outside any declared seal site.
func (o *overlayOwner) BadDeltaPublish() {
	s := o.snap.Load()
	if s == nil {
		return
	}
	o.snap.Store(&deltaImg{n: s.n + len(s.delta)}) // want R9
}
