// Package storage stubs the read surface operators program against.
package storage

import (
	"ges/internal/stats"
	"ges/internal/vector"
)

// Segment is one contiguous slice of a vertex's adjacency.
type Segment struct {
	VIDs []vector.VID
}

// View is the per-query read interface; Prop, ExtID, and Neighbors are the
// scalar reads R1 polices inside internal/op.
type View interface {
	Prop(v vector.VID, pid int32) vector.Value
	ExtID(v vector.VID) int64
	Neighbors(buf []Segment, v vector.VID, et int32, dir int32, dstLabel int32, withProps bool) []Segment
}

// Batch is the zero-copy adjacency batch stub: its fields alias sealed CSR
// memory, so values derived from them are R8 snapshot sources.
type Batch struct {
	VIDs []vector.VID
	Runs []Segment
}

// Run returns one run of the batch, aliasing sealed memory (R8 source).
func (b *Batch) Run(i int) []vector.VID { return b.Runs[i].VIDs }

// Stats returns the published statistics snapshot (R8 call-typed source).
func Stats() *stats.Snapshot { return nil }

// Pool is the size-classed buffer pool stub (R11 acquire/release surface).
type Pool struct{}

// GetVIDs acquires a transient VID buffer (R11 obligation).
func (p *Pool) GetVIDs(n int) []vector.VID { return make([]vector.VID, 0, n) }

// PutVIDs releases a transient VID buffer (R11 discharge).
func (p *Pool) PutVIDs(buf []vector.VID) {}

// GetArena acquires a query arena (R11 obligation).
func (p *Pool) GetArena(noRecycle bool) *Arena { return &Arena{} }

// PutArena releases a query arena wholesale (R11 discharge).
func (p *Pool) PutArena(a *Arena) {}

// Arena brackets one query's transient buffers over the shared pool.
type Arena struct{}

// GetVIDs acquires a transient VID buffer (R11 obligation).
func (a *Arena) GetVIDs(n int) []vector.VID { return make([]vector.VID, 0, n) }

// PutVIDs releases a transient VID buffer (R11 discharge).
func (a *Arena) PutVIDs(buf []vector.VID) {}

// GetVals acquires a transient value buffer (R11 obligation).
func (a *Arena) GetVals(n int) []vector.Value { return make([]vector.Value, 0, n) }

// PutVals releases a transient value buffer (R11 discharge).
func (a *Arena) PutVals(buf []vector.Value) {}
