// Package storage stubs the read surface operators program against.
package storage

import (
	"ges/internal/stats"
	"ges/internal/vector"
)

// Segment is one contiguous slice of a vertex's adjacency.
type Segment struct {
	VIDs []vector.VID
}

// View is the per-query read interface; Prop, ExtID, and Neighbors are the
// scalar reads R1 polices inside internal/op.
type View interface {
	Prop(v vector.VID, pid int32) vector.Value
	ExtID(v vector.VID) int64
	Neighbors(buf []Segment, v vector.VID, et int32, dir int32, dstLabel int32, withProps bool) []Segment
}

// Batch is the zero-copy adjacency batch stub: its fields alias sealed CSR
// memory, so values derived from them are R8 snapshot sources.
type Batch struct {
	VIDs []vector.VID
	Runs []Segment
}

// Run returns one run of the batch, aliasing sealed memory (R8 source).
func (b *Batch) Run(i int) []vector.VID { return b.Runs[i].VIDs }

// Stats returns the published statistics snapshot (R8 call-typed source).
func Stats() *stats.Snapshot { return nil }
