// Kernel-purity fixtures (R7): annotated kernels must be transitively
// allocation-, lock-, and spawn-free. The positive cases reach an impure
// site through a helper, a mutual-recursion cycle, a mutex, and an
// unanalyzable dynamic call; the negative cases cover allowlisted external
// packages, pure recursion, and a justified alloc-ok waiver. The recursive
// pairs double as the fixed-point convergence fixture for
// TestSummaryConvergence.
package vector

import (
	"math/bits"
	"sync"
)

// pureStep is a pure helper kernels may call freely.
func pureStep(x int) int { return x*2 + 1 }

// allocHelper grows a scratch buffer — an allocation one call away.
func allocHelper(n int) int {
	buf := make([]int, n)
	return len(buf)
}

// KPure calls only allowlisted externals (math/bits) and a pure module
// helper (R7 negative).
//
//geslint:kernel
func KPure(xs []uint64) int {
	total := 0
	for _, x := range xs {
		total += bits.OnesCount64(x)
	}
	return pureStep(total)
}

// KBadAlloc reaches an allocation through a helper; the finding names the
// root site and the call chain.
//
//geslint:kernel
func KBadAlloc(n int) int { // want R7
	return allocHelper(n)
}

// KWaivedAlloc amortizes growth under a justified waiver; the waiver is
// visible in the summary, so the kernel stays pure (R7 negative).
//
//geslint:kernel
func KWaivedAlloc(dst []int, v int) []int {
	//geslint:alloc-ok fixture: amortized append growth, accepted by design
	return append(dst, v)
}

// guard owns the mutex KBadLock takes.
type guard struct{ mu sync.Mutex }

// KBadLock acquires a mutex inside a kernel; locks are never waivable.
//
//geslint:kernel
func (g *guard) KBadLock() int { // want R7
	g.mu.Lock()
	g.mu.Unlock()
	return 0
}

// KBadDynamic calls through a function value — unanalyzable, so impure.
//
//geslint:kernel
func KBadDynamic(f func(int) int, x int) int { // want R7
	return f(x)
}

// KEvenSteps and KOddSteps are mutually recursive and pure: the summary
// fixed point must converge without marking either impure (R7 negative).
//
//geslint:kernel
func KEvenSteps(n int) int {
	if n <= 0 {
		return 0
	}
	return KOddSteps(n - 1)
}

// KOddSteps is the other half of the pure cycle.
//
//geslint:kernel
func KOddSteps(n int) int {
	if n <= 0 {
		return 1
	}
	return KEvenSteps(n - 1)
}

// badPing and badPong form an impure cycle: badPong allocates, so impurity
// must propagate around the cycle and out to the kernel entering it.
func badPing(n int) []int {
	if n <= 0 {
		return nil
	}
	return badPong(n - 1)
}

func badPong(n int) []int {
	out := make([]int, 1)
	if n > 0 {
		out = badPing(n - 1)
	}
	return out
}

// KBadCycle enters the impure cycle.
//
//geslint:kernel
func KBadCycle(n int) int { // want R7
	return len(badPing(n))
}

// KBareWaiver shows a bare opt-out: the directive is itself a finding and
// does not waive the allocation it sits above. The function is not a
// kernel, so the unwaived site is otherwise harmless.
func KBareWaiver(n int) []int {
	// want-below R7
	//geslint:alloc-ok
	return make([]int, n)
}
