// Package vector stubs the real module's vector types: just enough surface
// for the rule fixtures to type-check under the same import paths.
package vector

// VID is a vertex identifier.
type VID uint32

// Kind tags a Value.
type Kind uint8

// Value is one scalar cell.
type Value struct {
	Kind Kind
	I    int64
}

// Bitset is a packed bit vector (the selection-vector representation).
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an all-set bitset of n bits.
func NewBitset(n int) *Bitset { return &Bitset{words: make([]uint64, (n+63)/64), n: n} }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// ClearRange clears bits [lo,hi).
func (b *Bitset) ClearRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		b.Clear(i)
	}
}

// Column is one attribute vector.
type Column struct {
	Name string
	i64  []int64
}

// NewColumn returns an empty column.
func NewColumn(name string, k Kind) *Column { return &Column{Name: name} }

// Len returns the row count.
func (c *Column) Len() int { return len(c.i64) }

// Append appends one value.
func (c *Column) Append(v Value) { c.i64 = append(c.i64, v.I) }

// AppendInt64 appends one int64.
func (c *Column) AppendInt64(v int64) { c.i64 = append(c.i64, v) }

// Extend appends all of src.
func (c *Column) Extend(src *Column) { c.i64 = append(c.i64, src.i64...) }

// ShareScanColumn returns a zero-copy scan view of the column — an R8
// snapshot source in the fixture, matching the real module's shared-column
// hand-off.
func (c *Column) ShareScanColumn() *Column { return c }
