// Package txn fixtures for R2: one declared lock pair, one correctly
// ordered function (negative), one inversion and one undeclared nesting
// (positives), plus a nesting hidden behind a same-package callee.
package txn

import "sync"

// Mgr owns two locks with a declared order: a is acquired before b.
//
//geslint:lockorder Mgr.a < Mgr.b
type Mgr struct {
	a sync.Mutex
	b sync.RWMutex
}

// other owns a lock with no declared relation to Mgr's.
type other struct {
	mu sync.Mutex
}

// Good nests in the declared order (R2 negative).
func (m *Mgr) Good() {
	m.a.Lock()
	defer m.a.Unlock()
	m.b.Lock()
	m.b.Unlock()
}

// SequentialNotNested releases before re-acquiring, so no order applies
// (R2 negative).
func (m *Mgr) SequentialNotNested() {
	m.b.Lock()
	m.b.Unlock()
	m.a.Lock()
	m.a.Unlock()
}

// Inverted acquires b first, then a — against the declared order.
func (m *Mgr) Inverted() {
	m.b.Lock()
	defer m.b.Unlock()
	m.a.Lock() // want R2
	m.a.Unlock()
}

// Undeclared nests a pair with no declared relation.
func (m *Mgr) Undeclared(o *other) {
	m.a.Lock()
	o.mu.Lock() // want R2
	o.mu.Unlock()
	m.a.Unlock()
}

// lockB is a helper acquiring b; its acquire set propagates to callers.
func (m *Mgr) lockB() {
	m.b.Lock()
	m.b.Unlock()
}

// ViaCallee nests other.mu → Mgr.b through the helper: the relation is
// undeclared, and the finding lands on the call site.
func (m *Mgr) ViaCallee(o *other) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m.lockB() // want R2
}
