package lint

// R10: error discipline. Errors returned by module-internal functions must
// not be silently discarded — neither by a bare call statement (`f()`,
// `defer f()`) nor by blanking the result (`_ = f()`, `v, _ := g()`). The
// sites were collected during summary construction; a line annotated
// //geslint:err-ok <why> (on or directly above) waives its site. Calls into
// external packages are deliberately out of scope: the rule polices the
// engine's own error contracts, not the stdlib's.

// checkErrDiscards reports every unwaived discard site.
func (a *Analysis) checkErrDiscards() {
	for _, fi := range a.funcOrder {
		for _, s := range fi.ErrDiscards {
			if s.Waived {
				continue
			}
			a.report(s.Pos, "R10",
				"%s; handle the error or annotate the line //geslint:err-ok <why>", s.What)
		}
	}
}
