package lint

import (
	"go/ast"
	"go/types"
)

// R9: atomic publication. A struct field annotated //geslint:atomicptr is a
// sealed image published behind an atomic pointer (the CSR snapshot, the
// statistics snapshot). Every access to such a field must be an immediate
// atomic method call: reads go through Load, and publications
// (Store/Swap/CompareAndSwap) are legal only inside functions annotated
// //geslint:seal <why> — the declared seal sites. Anything else — copying
// the field, taking its address, passing it around — hides a read or write
// from the analysis and is a finding. The check is purely syntactic over
// the resolved field objects collected by collectMarkers, using a parent
// stack so "immediate receiver of an atomic call" is exact.

var atomicWrites = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true,
}

// checkAtomicPtr walks one file looking for accesses to atomicptr fields.
func (a *Analysis) checkAtomicPtr(pkg *Package, f *ast.File) {
	if len(a.atomics) == 0 {
		return
	}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal && a.atomics[s.Obj()] {
				a.checkAtomicUse(sel, stack)
			}
		}
		stack = append(stack, n)
		return true
	})
}

// checkAtomicUse classifies one access to an annotated field given the
// parent stack (top is the field selector's parent).
func (a *Analysis) checkAtomicUse(sel *ast.SelectorExpr, stack []ast.Node) {
	field := sel.Sel.Name
	if len(stack) >= 2 {
		if psel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && psel.X == sel {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == psel {
				method := psel.Sel.Name
				if method == "Load" {
					return
				}
				if atomicWrites[method] {
					if fd := enclosingFuncDecl(stack); fd != nil && a.sealDecls[fd] {
						return
					}
					a.report(sel.Pos(), "R9",
						"%s of atomic field %s outside a declared seal site; publications belong in a function annotated //geslint:seal <why>",
						method, field)
					return
				}
			}
		}
	}
	a.report(sel.Pos(), "R9",
		"field %s is published behind an atomic pointer (//geslint:atomicptr); access it only as an immediate %s.Load() read or Store/Swap/CompareAndSwap at a //geslint:seal site",
		field, field)
}

// enclosingFuncDecl returns the innermost function declaration on the stack.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}
