package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The shared local-dataflow engine behind R3, R4, R6 (boolean alias taint)
// and R7–R8 (labelled masks: which parameters or snapshot sources a value
// derives from). Both are flow-insensitive fixed points over a function or
// file body: an object becomes tainted when it is ever assigned a derived
// expression, and derivation follows the aliasing structure of Go values —
// indexing, slicing, field selection, address-of, and the aliasing half of
// append — while stopping at value copies of pointer-free data.

// taintedObjs computes the objects assigned (transitively, to a fixpoint)
// from expressions matched by src — the simple local-alias taint R3 and R4
// use to catch `sel := node.Sel; sel.Clear(i)`. root may be a file or a
// single function body.
func taintedObjs(pkg *Package, root ast.Node, src func(ast.Expr) bool) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	isSrc := func(e ast.Expr) bool {
		if src(e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			return tainted[pkg.Info.ObjectOf(id)]
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(root, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isSrc(as.Rhs[i]) {
					continue
				}
				if obj := pkg.Info.ObjectOf(id); obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// hasRefs reports whether values of t can alias other memory: basic types
// and pointer-free aggregates are value-copied by assignment, so taint does
// not flow through them.
func hasRefs(t types.Type) bool {
	return hasRefsDepth(t, 0)
}

func hasRefsDepth(t types.Type, depth int) bool {
	if depth > 8 || t == nil {
		return true // give up conservatively on deep or unknown types
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return hasRefsDepth(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasRefsDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	default:
		// Pointers, slices, maps, chans, funcs, interfaces, type params.
		return true
	}
}

// maskEnv is one function's labelled-taint state: each tracked object maps
// to the bitmask of labels (parameters, snapshot sources) its value may
// derive from.
type maskEnv struct {
	pkg  *Package
	objs map[types.Object]uint64
	// src assigns label bits to source expressions directly (beyond plain
	// identifier lookups); nil when only seed objects carry labels.
	src func(ast.Expr) uint64
}

// exprMask computes the labels an expression's value may carry. Derivation
// follows aliasing: indexing, slicing, field selection, dereference,
// address-of, parenthesization, and the aliasing arguments of append.
// Calls produce fresh values (mask 0) unless the src hook claims them, and
// pointer-free values never carry labels. Function literals carry the
// labels of everything they capture.
func (m *maskEnv) exprMask(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	var mask uint64
	if m.src != nil {
		mask |= m.src(e)
	}
	switch x := e.(type) {
	case *ast.Ident:
		mask |= m.objs[m.pkg.Info.ObjectOf(x)]
	case *ast.ParenExpr:
		mask |= m.exprMask(x.X)
	case *ast.StarExpr:
		mask |= m.exprMask(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			mask |= m.exprMask(x.X)
		}
	case *ast.IndexExpr:
		mask |= m.exprMask(x.X)
	case *ast.SliceExpr:
		mask |= m.exprMask(x.X)
	case *ast.SelectorExpr:
		// A field of a derived struct is derived; a qualified identifier or
		// method value is not.
		if sel := m.pkg.Info.Selections[x]; sel == nil || sel.Kind() == types.FieldVal {
			mask |= m.exprMask(x.X)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			mask |= m.exprMask(el)
		}
	case *ast.CallExpr:
		mask |= m.appendMask(x)
	case *ast.FuncLit:
		mask |= m.captureMask(x)
	case *ast.TypeAssertExpr:
		mask |= m.exprMask(x.X)
	}
	if mask != 0 && !hasRefs(m.pkg.Info.TypeOf(e)) {
		return 0 // value copies of pointer-free data drop the labels
	}
	return mask
}

// appendMask handles the one builtin whose result aliases its arguments:
// append shares arg 0's backing array and, for single-element forms, the
// appended reference values themselves. A spread (`append(a, b...)`) copies
// b's elements, which aliases only when the elements are reference-like.
func (m *maskEnv) appendMask(call *ast.CallExpr) uint64 {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return 0
	}
	if b, ok := m.pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return 0
	}
	var mask uint64
	for i, arg := range call.Args {
		if i > 0 && call.Ellipsis != token.NoPos && i == len(call.Args)-1 {
			// Spread: element values are copied out of arg's backing array.
			if t, ok := m.pkg.Info.TypeOf(arg).Underlying().(*types.Slice); ok && !hasRefs(t.Elem()) {
				continue
			}
		}
		mask |= m.exprMask(arg)
	}
	return mask
}

// captureMask is the union of labels over every outer-scope object a
// function literal references: a closure over a derived value carries the
// value wherever the closure goes.
func (m *maskEnv) captureMask(fl *ast.FuncLit) uint64 {
	var mask uint64
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			mask |= m.objs[m.pkg.Info.ObjectOf(id)]
		}
		return true
	})
	return mask
}

// solve closes the environment over the body's assignments: an object
// assigned a labelled expression carries the label from then on
// (flow-insensitively), including through := declarations and range
// statements over labelled collections.
func (m *maskEnv) solve(body ast.Node) {
	add := func(id *ast.Ident, mask uint64) bool {
		if mask == 0 || id == nil {
			return false
		}
		obj := m.pkg.Info.ObjectOf(id)
		if obj == nil || m.objs[obj]&mask == mask {
			return false
		}
		m.objs[obj] |= mask
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if add(id, m.exprMask(st.Rhs[i])) {
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				// Ranging over a labelled slice/map of reference elements
				// hands out labelled values.
				mask := m.exprMask(st.X)
				if id, ok := st.Value.(*ast.Ident); ok && mask != 0 {
					if add(id, mask) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// peelTarget decomposes an assignment target into the named types of every
// struct whose field the store writes through, and the root expression the
// chain hangs off. `sh.segs[i] = v` peels to ([shardType], sh).
func peelTarget(pkg *Package, e ast.Expr) (owners []*types.Named, root ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel := pkg.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
				if n := namedOf(pkg.Info.TypeOf(x.X)); n != nil {
					owners = append(owners, n)
				}
			}
			e = x.X
		default:
			return owners, e
		}
	}
}

// escape is one store that moves a labelled value into memory outliving
// the enclosing call.
type escape struct {
	pos      token.Pos
	mask     uint64 // labels carried by the stored value
	rootMask uint64 // labels carried by the target's root (self-stores)
	desc     string
}

// scanEscapes reports every store in body that moves a labelled value into
// long-lived memory: package-level variables, struct fields reachable from
// the function's parameters (caller-owned memory), channel sends, and go
// statements. Stores into fields of types annotated //geslint:snapshot-owner
// are sanctioned and skipped; stores into purely local structures are
// invisible to callers and skipped (a deliberate false-negative: locals
// that escape via return are not tracked).
func (a *Analysis) scanEscapes(pkg *Package, body ast.Node, env *maskEnv) []escape {
	var out []escape
	outlives := func(root ast.Expr) (bool, uint64) {
		id, ok := root.(*ast.Ident)
		if !ok {
			return false, 0
		}
		obj := pkg.Info.ObjectOf(id)
		if obj == nil {
			return false, 0
		}
		if v, isVar := obj.(*types.Var); isVar && v.Parent() == pkg.Types.Scope() {
			return true, 0 // package-level variable
		}
		if m := env.objs[obj]; m != 0 {
			return true, m // parameter-derived: caller-owned memory
		}
		return false, 0
	}
	sanctioned := func(owners []*types.Named) bool {
		for _, n := range owners {
			if _, ok := a.owners[n.Obj()]; ok {
				return true
			}
		}
		return false
	}
	store := func(lhs, rhs ast.Expr, desc string) {
		mask := env.exprMask(rhs)
		if mask == 0 {
			return
		}
		owners, root := peelTarget(pkg, lhs)
		ok, rootMask := outlives(root)
		if !ok || sanctioned(owners) {
			return
		}
		out = append(out, escape{pos: rhs.Pos(), mask: mask, rootMask: rootMask, desc: desc})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					desc := "stored into caller-visible memory"
					if _, root := peelTarget(pkg, lhs); root != nil {
						if id, ok := root.(*ast.Ident); ok {
							if v, isVar := pkg.Info.ObjectOf(id).(*types.Var); isVar && v.Parent() == pkg.Types.Scope() {
								desc = "stored into package-level variable " + id.Name
							}
						}
					}
					store(lhs, st.Rhs[i], desc)
				}
			}
		case *ast.SendStmt:
			if mask := env.exprMask(st.Value); mask != 0 {
				out = append(out, escape{pos: st.Value.Pos(), mask: mask, desc: "sent on a channel"})
			}
		case *ast.GoStmt:
			var mask uint64
			if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
				mask |= env.captureMask(fl)
			}
			for _, arg := range st.Call.Args {
				mask |= env.exprMask(arg)
			}
			if mask != 0 {
				out = append(out, escape{pos: st.Pos(), mask: mask, desc: "handed to a goroutine"})
			}
		}
		return true
	})
	return out
}
