// Package exec drives physical plans through the GES execution engine
// (§2.1, Execution Engine). It implements the three engine variants the
// paper evaluates — GES (flat), GES_f (factorized) and GES_f* (factorized
// with operator fusion) — plus per-operator timing, peak intermediate-result
// memory accounting (Table 2, Figure 3), and the worker-pool runtime for
// inter-query parallelism (Figure 13).
package exec

import (
	"fmt"
	"time"

	"ges/internal/core"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/sched"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Mode selects the engine variant.
type Mode int

// Engine variants of the paper's ablation study (§6.1).
const (
	// ModeFlat is the baseline GES: every operator consumes and produces
	// fully materialized flat tuple blocks.
	ModeFlat Mode = iota
	// ModeFactorized is GES_f: operators run natively over the f-Tree,
	// de-factoring only when blocking logic demands it.
	ModeFactorized
	// ModeFused is GES_f*: ModeFactorized plus the operator-fusion rewrite
	// rules.
	ModeFused
)

// String returns the paper's name for the variant.
func (m Mode) String() string {
	switch m {
	case ModeFlat:
		return "GES"
	case ModeFactorized:
		return "GES_f"
	case ModeFused:
		return "GES_f*"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// OpStat records one operator's contribution to a query execution.
type OpStat struct {
	Name     string
	Duration time.Duration
	OutRows  int // logical rows of the produced chunk (tuple count)
	MemBytes int // accounted size of the produced chunk
}

// Result is a completed query execution.
type Result struct {
	Block    *core.FlatBlock
	OpStats  []OpStat
	PeakMem  int
	Duration time.Duration

	// Vectorized-gather instrumentation (§5): batch gathers issued,
	// zero-copy column shares, and zone-map outcomes (zones pruned vs zones
	// examined across all zone-mapped filters of the query).
	Gathers     int64
	SharedCols  int64
	ZonesPruned int64
	ZonesTotal  int64
}

// Engine executes plans against a storage view in one of the three variant
// modes.
type Engine struct {
	Mode Mode
	Pool *storage.Pool
	// MaxRows bounds defensive materialization (0 = unlimited).
	MaxRows int
	// CollectStats enables per-operator timing and sizing; benchmarks that
	// only need end-to-end latency leave it off to avoid perturbation.
	CollectStats bool
	// Parallel sets the intra-query parallelism degree for expansion
	// operators (<= 1 = sequential).
	Parallel int
	// Sched is the worker pool intra-query morsels run on; nil uses the
	// process-wide scheduler.
	Sched *sched.Scheduler
	// NoGather / NoDictCmp / NoZoneMap disable the vectorized property
	// gather path, dictionary-code comparisons, and zone-map skipping — the
	// §5 ablation knobs. Results are byte-identical either way.
	NoGather  bool
	NoDictCmp bool
	NoZoneMap bool
	// NoCSR / NoIntersect disable the batched CSR expand kernel and the
	// intersection-based cyclic join — the CSR ablation knobs. Results are
	// byte-identical either way.
	NoCSR       bool
	NoIntersect bool
	// NoWCOJ makes ExpandIntersect run its de-fused classical plan (Expand +
	// per-side ExpandInto) instead of the worst-case-optimal k-way
	// intersection — the WCOJ ablation knob. Results are identical.
	NoWCOJ bool
	// NoRecycle disables executor memory recycling: Run still brackets the
	// query with an arena, but every scratch request falls through to plain
	// allocation and nothing returns to the pool — the §5 memory-pool
	// ablation knob. Results are byte-identical either way.
	NoRecycle bool
	// NoCost makes the cypher binder emit today's syntactic plan instead
	// of consulting the statistics-driven cost model — the planner
	// ablation knob. Plans differ in shape but results are identical. The
	// knob lives on the engine for gesbench/Config conformity; it is read
	// by the compile helpers, not by Run.
	NoCost bool
	// Params is the per-execution parameter vector for plans compiled
	// from normalized query text ($k placeholders). Bound once per Run via
	// plan.BindParams, before fusion, so every downstream operator and
	// vectorized fast path sees plain literals.
	Params []vector.Value
}

// New returns an engine in the given mode with a fresh memory pool.
func New(mode Mode) *Engine {
	return &Engine{Mode: mode, Pool: storage.NewPool()}
}

// Run executes the plan and returns the flat result block.
func (e *Engine) Run(view storage.View, p plan.Plan) (*Result, error) {
	if len(e.Params) > 0 {
		p = plan.BindParams(p, e.Params)
	}
	if e.Mode == ModeFused {
		p = plan.Fuse(p)
	}
	// The arena brackets plan execution: operators draw all scratch from
	// it, and once the result is flattened into row values (which alias no
	// arena memory) everything goes back to the engine's shared pool in one
	// wholesale release — even on error paths. The arena struct itself is
	// recycled too, so its ownership-tracking slices keep their capacity
	// across queries.
	arena := e.Pool.GetArena(e.NoRecycle)
	defer e.Pool.PutArena(arena)
	ctx := &op.Ctx{View: view, Pool: e.Pool, Arena: arena, MaxRows: e.MaxRows, Parallel: e.Parallel, Sched: e.Sched,
		NoGather: e.NoGather, NoDictCmp: e.NoDictCmp, NoZoneMap: e.NoZoneMap,
		NoCSR: e.NoCSR, NoIntersect: e.NoIntersect, NoWCOJ: e.NoWCOJ}
	start := time.Now()

	var ch *core.Chunk
	var err error
	res := &Result{}
	for i, o := range p {
		var opStart time.Time
		if e.CollectStats {
			opStart = time.Now()
		}
		ch, err = o.Execute(ctx, ch)
		if err != nil {
			return nil, fmt.Errorf("exec: %s (op %d): %w", o.Name(), i, err)
		}
		// The flat baseline materializes after every operator, exactly like
		// a classical tuple-pipeline engine.
		if e.Mode == ModeFlat && !ch.IsFlat() {
			fb, ferr := flatten(ctx, ch)
			if ferr != nil {
				return nil, fmt.Errorf("exec: %s (op %d): %w", o.Name(), i, ferr)
			}
			ch = ctx.FlatChunk(fb)
		}
		ctx.Observe(ch)
		// Debug builds (-tags gesassert) re-verify the factorized
		// representation between every pair of operators.
		if core.AssertEnabled && ch != nil && ch.FT != nil {
			core.CheckFTree(ch.FT)
		}
		if e.CollectStats {
			res.OpStats = append(res.OpStats, OpStat{
				Name:     o.Name(),
				Duration: time.Since(opStart),
				OutRows:  chunkRows(ch),
				MemBytes: ch.MemBytes(),
			})
		}
	}
	if ch == nil {
		return nil, fmt.Errorf("exec: empty plan")
	}
	if !ch.IsFlat() {
		fb, ferr := flatten(ctx, ch)
		if ferr != nil {
			return nil, ferr
		}
		ch = ctx.FlatChunk(fb)
		ctx.Observe(ch)
	}
	res.Block = ch.Flat
	res.PeakMem = ctx.PeakMem
	res.Duration = time.Since(start)
	res.Gathers = ctx.Gather.Gathers.Load()
	res.SharedCols = ctx.Gather.SharedCols.Load()
	res.ZonesPruned = ctx.Gather.ZonesPruned.Load()
	res.ZonesTotal = ctx.Gather.ZonesTotal.Load()
	return res, nil
}

func flatten(ctx *op.Ctx, ch *core.Chunk) (*core.FlatBlock, error) {
	fb, err := op.DefactorAll(ctx, ch.FT)
	if err != nil {
		return nil, err
	}
	if ctx.MaxRows > 0 && fb.NumRows() > ctx.MaxRows {
		return nil, fmt.Errorf("exec: materialization of %d rows exceeds limit %d", fb.NumRows(), ctx.MaxRows)
	}
	return fb, nil
}

func chunkRows(ch *core.Chunk) int {
	if ch.IsFlat() {
		return ch.Flat.NumRows()
	}
	return int(ch.FT.CountTuples())
}
