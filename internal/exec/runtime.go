package exec

import "ges/internal/sched"

// Runtime manages query workload parallelism (§2.1, Runtime): submitted
// tasks run on the process-wide morsel scheduler with a bounded in-flight
// degree — the knob behind the paper's scalability experiment (Figure 13).
// Inter-query tasks and intra-query morsels draw from one worker budget, so
// stacking drivers never over-subscribes the machine. Workers=1 degenerates
// to sequential execution.
type Runtime struct {
	g *sched.Group
}

// NewRuntime returns a runtime admitting up to workers concurrent tasks
// (minimum 1). depth is retained for compatibility; admission is bounded by
// the in-flight limit.
func NewRuntime(workers, depth int) *Runtime {
	_ = depth
	return &Runtime{g: sched.Global().NewGroup(workers)}
}

// Submit enqueues a task, blocking while the in-flight limit is reached
// (closed-loop admission control).
func (r *Runtime) Submit(task func()) { r.g.Go(task) }

// Close waits for all submitted tasks to finish. It is idempotent; the
// underlying worker pool is process-wide and keeps running.
func (r *Runtime) Close() { r.g.Wait() }
