package exec

import "sync"

// Runtime manages query workload parallelism (§2.1, Runtime): a fixed pool
// of workers drains a task queue, giving inter-query parallel execution with
// a configurable degree — the knob behind the paper's scalability experiment
// (Figure 13). Workers=1 degenerates to sequential execution.
type Runtime struct {
	queue chan func()
	wg    sync.WaitGroup
	once  sync.Once
}

// NewRuntime starts a runtime with the given worker count (minimum 1) and
// queue depth.
func NewRuntime(workers, depth int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = workers * 2
	}
	r := &Runtime{queue: make(chan func(), depth)}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer r.wg.Done()
			for task := range r.queue {
				task()
			}
		}()
	}
	return r
}

// Submit enqueues a task, blocking while the queue is full (closed-loop
// admission control).
func (r *Runtime) Submit(task func()) { r.queue <- task }

// Close stops admission and waits for all queued tasks to finish. It is
// idempotent.
func (r *Runtime) Close() {
	r.once.Do(func() { close(r.queue) })
	r.wg.Wait()
}
