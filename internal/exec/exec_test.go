package exec_test

import (
	"strings"
	"sync/atomic"
	"testing"

	"ges/internal/catalog"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/testgraph"
)

func TestModeNames(t *testing.T) {
	if exec.ModeFlat.String() != "GES" ||
		exec.ModeFactorized.String() != "GES_f" ||
		exec.ModeFused.String() != "GES_f*" {
		t.Fatal("mode names must match the paper's variant names")
	}
}

func paperPlan(f *testgraph.Fixture) plan.Plan {
	s := f.Schema
	return plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.VarLengthExpand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out,
			DstLabel: s.Person, MinHops: 1, MaxHops: 2, Distinct: true},
		&op.Expand{From: "f", To: "msg", Et: s.HasCreator, Dir: catalog.In, DstLabel: storage.AnyLabel},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "msg", Prop: "length", As: "msg.len"}}},
		&op.Filter{Pred: expr.Gt(expr.C("msg.len"), expr.LInt(125))},
		&op.OrderBy{Keys: []op.SortKey{{Col: "msg.len", Desc: true}}, Limit: 2},
	}
}

func TestCollectStatsProducesOperatorBreakdown(t *testing.T) {
	f := testgraph.New()
	e := exec.New(exec.ModeFlat)
	e.CollectStats = true
	res, err := e.Run(f.Graph, paperPlan(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OpStats) != 6 {
		t.Fatalf("op stats = %d entries, want 6", len(res.OpStats))
	}
	names := make([]string, len(res.OpStats))
	for i, s := range res.OpStats {
		names[i] = s.Name
		if s.OutRows < 0 {
			t.Fatalf("negative rows for %s", s.Name)
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "Expand") || !strings.Contains(joined, "Filter") {
		t.Fatalf("breakdown misses operators: %v", names)
	}
	if res.PeakMem <= 0 {
		t.Fatal("peak memory not tracked")
	}
}

func TestFlatModeMaterializesEverywhere(t *testing.T) {
	f := testgraph.New()
	e := exec.New(exec.ModeFlat)
	e.CollectStats = true
	res, err := e.Run(f.Graph, paperPlan(f))
	if err != nil {
		t.Fatal(err)
	}
	// In flat mode the chunk after every operator is a flat block whose
	// accounted bytes grow with the two-hop expansion; in factorized mode
	// the same plan's peak should be no larger.
	ef := exec.New(exec.ModeFactorized)
	ef.CollectStats = true
	resF, err := ef.Run(f.Graph, paperPlan(f))
	if err != nil {
		t.Fatal(err)
	}
	if res.Block.NumRows() != resF.Block.NumRows() {
		t.Fatalf("modes disagree: %d vs %d rows", res.Block.NumRows(), resF.Block.NumRows())
	}
}

func TestMaxRowsGuard(t *testing.T) {
	f := testgraph.New()
	e := exec.New(exec.ModeFlat)
	e.MaxRows = 3
	_, err := e.Run(f.Graph, plan.Plan{
		&op.NodeScan{Var: "p", Label: f.Schema.Person},
		&op.Expand{From: "p", To: "f", Et: f.Schema.Knows, Dir: catalog.Out, DstLabel: f.Schema.Person},
	})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("row limit not enforced: %v", err)
	}
}

func TestEmptyPlanErrors(t *testing.T) {
	f := testgraph.New()
	if _, err := exec.New(exec.ModeFused).Run(f.Graph, nil); err == nil {
		t.Fatal("empty plan must fail")
	}
}

func TestRuntimeWorkerPool(t *testing.T) {
	r := exec.NewRuntime(4, 8)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		r.Submit(func() { n.Add(1) })
	}
	r.Close()
	if n.Load() != 100 {
		t.Fatalf("tasks run = %d", n.Load())
	}
	// Close is idempotent.
	r.Close()
}

func TestRuntimeMinimumWorkers(t *testing.T) {
	r := exec.NewRuntime(0, 0)
	done := make(chan struct{})
	r.Submit(func() { close(done) })
	<-done
	r.Close()
}

// TestFusedModeRewritesPlans verifies the engine applies the fusion rules
// itself: the executed operator names must include the fused operators even
// though the submitted plan is unfused.
func TestFusedModeRewritesPlans(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	unfused := plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.Expand{From: "p", To: "fr", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "fr", As: "fr.id", ExtID: true}}},
		&op.Aggregate{GroupBy: nil, Aggs: []op.AggSpec{{Func: op.Count, As: "n"}}},
		&op.OrderBy{Keys: []op.SortKey{{Col: "n", Desc: true}}, Limit: 1},
	}
	e := exec.New(exec.ModeFused)
	e.CollectStats = true
	res, err := e.Run(f.Graph, unfused)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range res.OpStats {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "SeekExpand(fused)") ||
		!strings.Contains(joined, "AggregateProjectTop(fused)") {
		t.Fatalf("fused engine did not rewrite the plan: %v", names)
	}
	// The same plan on the factorized engine keeps its original shape.
	e2 := exec.New(exec.ModeFactorized)
	e2.CollectStats = true
	res2, err := e2.Run(f.Graph, unfused)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res2.OpStats {
		if strings.Contains(s.Name, "fused") {
			t.Fatalf("factorized engine fused unexpectedly: %v", s.Name)
		}
	}
	if res.Block.Rows[0][0].I != res2.Block.Rows[0][0].I {
		t.Fatal("fused and unfused results differ")
	}
}
