package storage

import (
	"testing"

	"ges/internal/catalog"
	"ges/internal/stats"
	"ges/internal/vector"
)

// statsGraph builds a small sealed two-label graph: 3 persons, 2 cities,
// LIVES_IN edges with fan-out 2/1/0.
func statsGraph(t *testing.T) (*Graph, catalog.LabelID, catalog.LabelID, catalog.EdgeTypeID) {
	t.Helper()
	g, person, city, livesIn := twoLabelGraph(t)
	p1, _ := g.AddVertex(person, 1, vector.String_("a"), vector.Int64(30))
	p2, _ := g.AddVertex(person, 2, vector.String_("b"), vector.Int64(40))
	if _, err := g.AddVertex(person, 3, vector.String_("c"), vector.Int64(50)); err != nil {
		t.Fatal(err)
	}
	c1, _ := g.AddVertex(city, 100, vector.String_("rome"))
	c2, _ := g.AddVertex(city, 101, vector.String_("oslo"))
	for _, e := range [][2]vector.VID{{p1, c1}, {p1, c2}, {p2, c1}} {
		if err := g.AddEdge(livesIn, e[0], e[1], vector.Date(10)); err != nil {
			t.Fatal(err)
		}
	}
	g.SealCSR()
	return g, person, city, livesIn
}

func TestSealPublishesStats(t *testing.T) {
	g, person, city, livesIn := statsGraph(t)
	s := g.Stats()
	if s == nil {
		t.Fatal("no snapshot after SealCSR")
	}
	if s.Epoch == 0 || g.StatsEpoch() != s.Epoch {
		t.Fatalf("epoch = %d, StatsEpoch = %d", s.Epoch, g.StatsEpoch())
	}
	if s.Label(person) != 3 || s.Label(city) != 2 || s.Vertices != 5 {
		t.Fatalf("label cards = %d/%d, vertices = %d", s.Label(person), s.Label(city), s.Vertices)
	}
	out := stats.FamKey{Src: person, Et: livesIn, Dst: city, Dir: catalog.Out}
	f, ok := s.Family(out)
	if !ok {
		t.Fatalf("missing family %+v; have %v", out, s.FamKeys())
	}
	if f.Edges != 3 || f.Sources != 2 || f.MaxDegree != 2 {
		t.Fatalf("out family = %+v, want edges 3, sources 2, max 2", f)
	}

	// Column summaries: age bounds from the zone map, name distincts from
	// the dictionary.
	age, ok := s.Column(stats.ColKey{Label: person, Prop: "age"})
	if !ok || age.MinI != 30 || age.MaxI != 50 || age.Rows != 3 {
		t.Fatalf("age column = %+v, %v", age, ok)
	}
	// The dictionary pre-seeds the empty string, so 3 names yield >= 3
	// distincts without encoding the exact dictionary layout here.
	name, ok := s.Column(stats.ColKey{Label: person, Prop: "name"})
	if !ok || name.Distinct < 3 || name.Distinct > 4 {
		t.Fatalf("name column = %+v, %v", name, ok)
	}
}

func TestOverlayMutationKeepsStatsPublished(t *testing.T) {
	g, person, _, _ := statsGraph(t)
	epoch := g.StatsEpoch()
	if _, err := g.AddVertex(person, 4); err != nil {
		t.Fatal(err)
	}
	// Sealed-phase mutations keep the snapshot published (it goes stale, it
	// does not go nil) so the planner never loses its cost model mid-stream.
	s := g.Stats()
	if s == nil || g.StatsEpoch() != epoch {
		t.Fatalf("snapshot dropped by overlay mutation: stats=%v epoch=%d want %d", s, g.StatsEpoch(), epoch)
	}
	if got := g.Overlay().StatsStale; got == 0 {
		t.Fatal("overlay mutation must bump the staleness counter")
	}
	// A full re-seal refreshes the snapshot under a strictly higher epoch.
	g.SealCSR()
	s = g.Stats()
	if s == nil || s.Epoch <= epoch {
		t.Fatalf("re-seal epoch = %v, want > %d", s, epoch)
	}
	if s.Label(person) != 4 {
		t.Fatalf("re-sealed person card = %d, want 4", s.Label(person))
	}
	if got := g.Overlay().StatsStale; got != 0 {
		t.Fatalf("re-seal must clear staleness, got %d", got)
	}
}

func TestBulkMutationInvalidatesStats(t *testing.T) {
	// Before the first SealCSR the graph is in bulk-load phase: there is no
	// overlay, so mutations keep the old contract of clearing the snapshot.
	g, person, city, livesIn := twoLabelGraph(t)
	p1, _ := g.AddVertex(person, 1, vector.String_("a"), vector.Int64(30))
	c1, _ := g.AddVertex(city, 100, vector.String_("rome"))
	if err := g.AddEdge(livesIn, p1, c1, vector.Date(10)); err != nil {
		t.Fatal(err)
	}
	if g.Stats() != nil || g.StatsEpoch() != 0 {
		t.Fatal("bulk-phase graph must have no snapshot")
	}
	// -no-overlay keeps the invalidation contract even after sealing.
	g.SealCSR()
	g.SetOverlayDisabled(true)
	g.SetProp(p1, 1, vector.Int64(31))
	if g.Stats() != nil {
		t.Fatal("-no-overlay SetProp must drop the snapshot")
	}
	g.SealCSR()
	if !g.DeleteEdge(livesIn, p1, c1) {
		t.Fatal("DeleteEdge failed")
	}
	if g.Stats() != nil {
		t.Fatal("-no-overlay DeleteEdge must drop the snapshot")
	}
}

func TestResealRebasesStats(t *testing.T) {
	g, person, city, livesIn := statsGraph(t)
	epoch := g.StatsEpoch()
	p3, _ := g.VertexByExt(person, 3)
	c2, _ := g.VertexByExt(city, 101)
	// Force an inline reseal on the very first overlay write.
	g.SetResealPolicy(1e-9, 1)
	if err := g.AddEdge(livesIn, p3, c2, vector.Date(20)); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s == nil {
		t.Fatal("snapshot missing after reseal")
	}
	if s.Epoch <= epoch {
		t.Fatalf("reseal must bump the epoch: got %d want > %d", s.Epoch, epoch)
	}
	out := stats.FamKey{Src: person, Et: livesIn, Dst: city, Dir: catalog.Out}
	f, ok := s.Family(out)
	if !ok {
		t.Fatalf("missing family %+v after rebase", out)
	}
	if f.Edges != 4 || f.Sources != 3 {
		t.Fatalf("rebased out family = %+v, want edges 4, sources 3", f)
	}
	if n := g.Overlay().Reseals; n == 0 {
		t.Fatal("reseal counter must advance")
	}
}
