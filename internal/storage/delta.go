// Delta overlay: the small mutable side of a sealed CSR image, the piece
// that lets the sealed read paths survive sustained incremental updates
// (§5's tombstone-and-regrow design under MV2PL). Every image sealCSR
// builds carries an adjDelta; while it is empty the image serves exactly as
// before (zero-copy shared batches, sorted runs). An AddEdge lands in a
// per-source copy-on-write insert run, a DeleteEdge tombstones one sealed
// neighbor position (or retracts a delta insert), and readers merge the two
// sides with a per-source two-cursor walk that preserves the ascending-VID
// order — so galloping intersection and the WCOJ path keep engaging instead
// of falling back to hash sets. When the delta outgrows the reseal policy,
// graph.go rebuilds just that family's image off the read path and swaps a
// fresh (empty-delta) one in atomically.
//
// Concurrency contract: all mutators hold AdjList.wmu, so delta writes are
// serialized; readers never lock it. Published deltaRuns are immutable —
// an insert or retraction replaces the run wholesale under adjDelta.mu,
// which readers take only in read mode and only to look the run up.
// Tombstone words are atomics: a reader observes each set bit or not,
// either way seeing a consistent point-in-time view of its source's run.
package storage

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// adjDelta overlays one sealed csr image: per-source sorted insert runs plus
// a tombstone bitmap over the image's neighbor positions. It is paired 1:1
// with its image (csr.delta) and published with it, so a reader that loaded
// an image always merges against the matching delta.
//
//geslint:snapshot-owner paired 1:1 with its sealed image and published behind the same atomic pointer; mutated only under AdjList.wmu through atomics and copy-on-write runs
type adjDelta struct {
	mu  sync.RWMutex                // guards the ins map (readers: lookup only)
	ins map[vector.VID]*deltaRun    // per-source insert runs, copy-on-write

	// tombs is a fixed-size bitmap over the sealed image's neighbor
	// positions: bit set = entry deleted. Written only under AdjList.wmu
	// (Load|Store read-modify-write is race-free there); read lock-free.
	tombs []atomic.Uint64

	nIns   atomic.Int64 // live delta insert entries
	nTombs atomic.Int64 // tombstoned sealed positions

	propKinds []vector.Kind // shared with the owning family's schema
}

// newAdjDelta sizes an empty delta for an image of sealedLen neighbors.
func newAdjDelta(sealedLen int, kinds []vector.Kind) *adjDelta {
	return &adjDelta{
		ins:       make(map[vector.VID]*deltaRun),
		tombs:     make([]atomic.Uint64, (sealedLen+63)/64),
		propKinds: kinds,
	}
}

// isEmpty reports whether the delta holds no inserts and no tombstones —
// the gate for the zero-copy shared batch path.
func (d *adjDelta) isEmpty() bool { return d.nIns.Load() == 0 && d.nTombs.Load() == 0 }

// depth is the total overlay entry count (inserts plus tombstones).
func (d *adjDelta) depth() int64 { return d.nIns.Load() + d.nTombs.Load() }

// runOf returns src's published insert run, or nil.
func (d *adjDelta) runOf(src vector.VID) *deltaRun {
	if d.nIns.Load() == 0 {
		return nil
	}
	d.mu.RLock()
	r := d.ins[src]
	d.mu.RUnlock()
	return r
}

// tombstoned reports whether sealed neighbor position pos is deleted.
func (d *adjDelta) tombstoned(pos int) bool {
	return d.tombs[pos>>6].Load()&(1<<uint(pos&63)) != 0
}

// setTombstone marks sealed position pos dead. The Load|Store
// read-modify-write is safe because tombstone words are written only under
// AdjList.wmu (atomic.Uint64.Or would need a newer Go than the module
// targets).
func (d *adjDelta) setTombstone(pos int) {
	w := &d.tombs[pos>>6]
	w.Store(w.Load() | 1<<uint(pos&63))
}

// tombsInRange counts tombstoned positions in [lo, hi).
func (d *adjDelta) tombsInRange(lo, hi int) int {
	n := 0
	for pos := lo; pos < hi; {
		end := (pos | 63) + 1
		if end > hi {
			end = hi
		}
		mask := ^uint64(0) << uint(pos&63)
		if r := end & 63; r != 0 {
			mask &= 1<<uint(r) - 1
		}
		n += bits.OnesCount64(d.tombs[pos>>6].Load() & mask)
		pos = end
	}
	return n
}

// insert records one appended edge src→dst (props ordered per the edge
// schema) by replacing src's run with its copy-on-write successor. Caller
// holds AdjList.wmu.
func (d *adjDelta) insert(src, dst vector.VID, props []vector.Value) {
	nr := d.ins[src].withInsert(dst, props, d.propKinds) // bare read is safe: wmu serializes all map writers
	d.mu.Lock()
	d.ins[src] = nr
	d.mu.Unlock()
	d.nIns.Add(1)
}

// remove hides one occurrence of src→dst from the merged view: the first
// non-tombstoned sealed position when one exists (sealed entries die by
// tombstone), otherwise the earliest delta insert (inserts die by
// copy-on-write retraction). Returns the removed occurrence's property
// tuple so the caller can mirror the removal in the live arrays — keeping
// the live multiset, which the next reseal rebuilds from, in lockstep with
// what readers see. Caller holds AdjList.wmu.
func (d *adjDelta) remove(c *csr, src, dst vector.VID) ([]vector.Value, bool) {
	if int(src) < len(c.offsets)-1 {
		lo, hi := int(c.offsets[src]), int(c.offsets[src+1])
		run := c.neighbors[lo:hi]
		at := sort.Search(len(run), func(i int) bool { return run[i] >= dst })
		for pos := lo + at; pos < hi && c.neighbors[pos] == dst; pos++ {
			if d.tombstoned(pos) {
				continue
			}
			d.setTombstone(pos)
			d.nTombs.Add(1)
			return c.propsAt(pos), true
		}
	}
	old := d.ins[src] // bare read is safe: wmu serializes all map writers
	if old == nil {
		return nil, false
	}
	nr, tuple, ok := old.withRemove(dst, d.propKinds)
	if !ok {
		return nil, false
	}
	d.mu.Lock()
	if nr == nil {
		delete(d.ins, src)
	} else {
		d.ins[src] = nr
	}
	d.mu.Unlock()
	d.nIns.Add(-1)
	return tuple, true
}

// memBytes approximates the delta's resident size.
func (d *adjDelta) memBytes() int {
	n := len(d.tombs) * 8
	d.mu.RLock()
	for _, r := range d.ins {
		n += 48 + len(r.dsts)*4
		for p, k := range d.propKinds {
			switch k {
			case vector.KindInt64, vector.KindDate:
				n += len(r.propI64[p]) * 8
			case vector.KindFloat64:
				n += len(r.propF64[p]) * 8
			case vector.KindString:
				n += len(r.propStr[p]) * 16
				for _, s := range r.propStr[p] {
					n += len(s)
				}
			}
		}
	}
	d.mu.RUnlock()
	return n
}

// deltaRun is one source's overlay insert run: destinations sorted ascending
// (insertion order among equal VIDs, matching the stable reseal sort) with
// edge-property columns aligned element-for-element, indexed by schema
// position like csr.prop*.
//
//geslint:snapshot-owner immutable once published in adjDelta.ins; mutation replaces the run wholesale under AdjList.wmu
type deltaRun struct {
	dsts    []vector.VID
	propI64 [][]int64
	propF64 [][]float64
	propStr [][]string
}

// withInsert returns the run's successor with dst inserted after any equal
// destinations (stable: delta entries keep insertion order on ties, which
// is exactly where the reseal's stable sort puts them). A nil receiver
// yields a one-entry run.
func (r *deltaRun) withInsert(dst vector.VID, props []vector.Value, kinds []vector.Kind) *deltaRun {
	n, at := 0, 0
	if r != nil {
		n = len(r.dsts)
		at = sort.Search(n, func(i int) bool { return r.dsts[i] > dst })
	}
	nr := &deltaRun{dsts: make([]vector.VID, n+1)}
	if r != nil {
		copy(nr.dsts[:at], r.dsts[:at])
		copy(nr.dsts[at+1:], r.dsts[at:])
	}
	nr.dsts[at] = dst
	if len(kinds) == 0 {
		return nr
	}
	nr.propI64 = make([][]int64, len(kinds))
	nr.propF64 = make([][]float64, len(kinds))
	nr.propStr = make([][]string, len(kinds))
	for p, k := range kinds {
		var v vector.Value
		if p < len(props) {
			v = props[p]
		}
		switch k {
		case vector.KindInt64, vector.KindDate:
			col := make([]int64, n+1)
			if r != nil {
				copy(col[:at], r.propI64[p][:at])
				copy(col[at+1:], r.propI64[p][at:])
			}
			col[at] = v.I
			nr.propI64[p] = col
		case vector.KindFloat64:
			col := make([]float64, n+1)
			if r != nil {
				copy(col[:at], r.propF64[p][:at])
				copy(col[at+1:], r.propF64[p][at:])
			}
			col[at] = v.F
			nr.propF64[p] = col
		case vector.KindString:
			col := make([]string, n+1)
			if r != nil {
				copy(col[:at], r.propStr[p][:at])
				copy(col[at+1:], r.propStr[p][at:])
			}
			col[at] = v.S
			nr.propStr[p] = col
		}
	}
	return nr
}

// withRemove returns the run's successor with the earliest occurrence of
// dst retracted, plus that occurrence's property tuple. ok=false when dst
// is absent; a nil successor means the run emptied.
func (r *deltaRun) withRemove(dst vector.VID, kinds []vector.Kind) (*deltaRun, []vector.Value, bool) {
	at := sort.Search(len(r.dsts), func(i int) bool { return r.dsts[i] >= dst })
	if at == len(r.dsts) || r.dsts[at] != dst {
		return r, nil, false
	}
	tuple := r.tupleAt(at, kinds)
	n := len(r.dsts)
	if n == 1 {
		return nil, tuple, true
	}
	nr := &deltaRun{dsts: make([]vector.VID, n-1)}
	copy(nr.dsts[:at], r.dsts[:at])
	copy(nr.dsts[at:], r.dsts[at+1:])
	if len(kinds) == 0 {
		return nr, tuple, true
	}
	nr.propI64 = make([][]int64, len(kinds))
	nr.propF64 = make([][]float64, len(kinds))
	nr.propStr = make([][]string, len(kinds))
	for p, k := range kinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			col := make([]int64, n-1)
			copy(col[:at], r.propI64[p][:at])
			copy(col[at:], r.propI64[p][at+1:])
			nr.propI64[p] = col
		case vector.KindFloat64:
			col := make([]float64, n-1)
			copy(col[:at], r.propF64[p][:at])
			copy(col[at:], r.propF64[p][at+1:])
			nr.propF64[p] = col
		case vector.KindString:
			col := make([]string, n-1)
			copy(col[:at], r.propStr[p][:at])
			copy(col[at:], r.propStr[p][at+1:])
			nr.propStr[p] = col
		}
	}
	return nr, tuple, true
}

// tupleAt materializes entry j's property tuple, one Value per schema
// position.
func (r *deltaRun) tupleAt(j int, kinds []vector.Kind) []vector.Value {
	if len(kinds) == 0 {
		return nil
	}
	tuple := make([]vector.Value, len(kinds))
	for p, k := range kinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			tuple[p] = vector.Value{Kind: k, I: r.propI64[p][j]}
		case vector.KindFloat64:
			tuple[p] = vector.Value{Kind: k, F: r.propF64[p][j]}
		case vector.KindString:
			tuple[p] = vector.Value{Kind: k, S: r.propStr[p][j]}
		}
	}
	return tuple
}

// propsAt materializes sealed position pos's property tuple, one Value per
// schema position.
func (c *csr) propsAt(pos int) []vector.Value {
	if len(c.propKinds) == 0 {
		return nil
	}
	tuple := make([]vector.Value, len(c.propKinds))
	for p, k := range c.propKinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			tuple[p] = vector.Value{Kind: k, I: c.propI64[p][pos]}
		case vector.KindFloat64:
			tuple[p] = vector.Value{Kind: k, F: c.propF64[p][pos]}
		case vector.KindString:
			tuple[p] = vector.Value{Kind: k, S: c.propStr[p][pos]}
		}
	}
	return tuple
}

// viewDegree is src's degree in the merged view: sealed entries minus
// tombstones plus delta inserts.
func (c *csr) viewDegree(src vector.VID) int {
	lo, hi := 0, 0
	if int(src) < len(c.offsets)-1 {
		lo, hi = int(c.offsets[src]), int(c.offsets[src+1])
	}
	n := hi - lo
	d := c.delta
	if !d.isEmpty() {
		n -= d.tombsInRange(lo, hi)
		if r := d.runOf(src); r != nil {
			n += len(r.dsts)
		}
	}
	return n
}

// viewDegree is the overlay-aware Degree: the merged view when a sealed
// image is published, the live slot otherwise.
func (a *AdjList) viewDegree(src vector.VID) int {
	if c := a.snap.Load(); c != nil {
		return c.viewDegree(src)
	}
	return a.degree(src)
}

// runMerger packs per-source two-cursor merges of sealed and delta runs
// back to back into owned buffers — the delta-overlay analogue of the
// shared CSR batch. Ties between a sealed entry and a delta insert emit the
// sealed entry first, matching where the reseal's stable sort would place
// them, so a merged read is byte-identical to a read after a quiesced
// reseal.
type runMerger struct {
	c         *csr
	withProps bool
	vids      []vector.VID
	pi64      [][]int64
	pf64      [][]float64
	pstr      [][]string
}

func (m *runMerger) init() {
	if !m.withProps {
		return
	}
	n := len(m.c.propKinds)
	m.pi64 = make([][]int64, n)
	m.pf64 = make([][]float64, n)
	m.pstr = make([][]string, n)
}

func (m *runMerger) emitSealed(pos int) {
	m.vids = append(m.vids, m.c.neighbors[pos])
	if !m.withProps {
		return
	}
	for p, k := range m.c.propKinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			m.pi64[p] = append(m.pi64[p], m.c.propI64[p][pos])
		case vector.KindFloat64:
			m.pf64[p] = append(m.pf64[p], m.c.propF64[p][pos])
		case vector.KindString:
			m.pstr[p] = append(m.pstr[p], m.c.propStr[p][pos])
		}
	}
}

func (m *runMerger) emitDelta(r *deltaRun, j int) {
	m.vids = append(m.vids, r.dsts[j])
	if !m.withProps {
		return
	}
	for p, k := range m.c.propKinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			m.pi64[p] = append(m.pi64[p], r.propI64[p][j])
		case vector.KindFloat64:
			m.pf64[p] = append(m.pf64[p], r.propF64[p][j])
		case vector.KindString:
			m.pstr[p] = append(m.pstr[p], r.propStr[p][j])
		}
	}
}

// merge appends src's merged run: sealed positions (skipping tombstones)
// interleaved with the delta insert run, ascending by VID, sealed first on
// ties.
func (m *runMerger) merge(src vector.VID) {
	c := m.c
	d := c.delta
	lo, hi := 0, 0
	if int(src) < len(c.offsets)-1 {
		lo, hi = int(c.offsets[src]), int(c.offsets[src+1])
	}
	r := d.runOf(src)
	rn := 0
	if r != nil {
		rn = len(r.dsts)
	}
	i, j := lo, 0
	for {
		for i < hi && d.tombstoned(i) {
			i++
		}
		if i >= hi && j >= rn {
			return
		}
		if j >= rn || (i < hi && c.neighbors[i] <= r.dsts[j]) {
			m.emitSealed(i)
			i++
		} else {
			m.emitDelta(r, j)
			j++
		}
	}
}

// mergedSegment builds the owned merged Segment of src's run. Sorted holds
// by construction; ok=false when the merged run is empty.
func (c *csr) mergedSegment(src vector.VID, withProps bool) (Segment, bool) {
	m := runMerger{c: c, withProps: withProps}
	m.init()
	m.merge(src)
	if len(m.vids) == 0 {
		return Segment{}, false
	}
	seg := Segment{VIDs: m.vids, Sorted: true}
	if withProps {
		for p, k := range c.propKinds {
			switch k {
			case vector.KindInt64, vector.KindDate:
				seg.PropI64 = append(seg.PropI64, m.pi64[p])
				seg.PropF64 = append(seg.PropF64, nil)
				seg.PropStr = append(seg.PropStr, nil)
			case vector.KindFloat64:
				seg.PropI64 = append(seg.PropI64, nil)
				seg.PropF64 = append(seg.PropF64, m.pf64[p])
				seg.PropStr = append(seg.PropStr, nil)
			case vector.KindString:
				seg.PropI64 = append(seg.PropI64, nil)
				seg.PropF64 = append(seg.PropF64, nil)
				seg.PropStr = append(seg.PropStr, m.pstr[p])
			}
		}
	}
	return seg, true
}

// mergedBatch is the owned-buffer batch path for a sealed family with a
// live delta: one merged run per source, packed back to back, Sorted
// preserved so intersection joins keep galloping. Returns false on mixed
// source labels — the reference path handles those.
func (c *csr) mergedBatch(g *Graph, srcs []vector.VID, label catalog.LabelID, withProps bool, out *Batch) bool {
	for _, s := range srcs {
		if s != vector.NilVID && g.labelOf[s] != label {
			return false
		}
	}
	out.reset(len(srcs))
	m := runMerger{c: c, withProps: withProps}
	m.init()
	for i, s := range srcs {
		start := int32(len(m.vids))
		if s != vector.NilVID {
			m.merge(s)
		}
		out.Runs[i] = NeighborRun{Start: start, End: int32(len(m.vids))}
	}
	out.VIDs = m.vids
	if withProps {
		out.PropI64, out.PropF64, out.PropStr = m.pi64, m.pf64, m.pstr
	}
	out.Sorted = true
	return true
}
