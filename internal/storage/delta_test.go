package storage

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// overlayGraph builds a sealed two-label graph sized for concurrency tests:
// nPersons persons, nCities cities, and a deterministic ~half-dense LIVES_IN
// edge set. Edge props are f(src,dst) so duplicate (src,dst) occurrences
// always carry identical tuples — the regime where overlay reads are
// byte-identical to a reseal (see the delta.go package doc).
func overlayGraph(t *testing.T, nPersons, nCities int) (*Graph, []vector.VID, []vector.VID, catalog.LabelID, catalog.EdgeTypeID) {
	t.Helper()
	g, person, city, livesIn := twoLabelGraph(t)
	var ps, cs []vector.VID
	for i := 0; i < nPersons; i++ {
		v, err := g.AddVertex(person, int64(1000+i), vector.String_("p"), vector.Int64(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, v)
	}
	for i := 0; i < nCities; i++ {
		v, err := g.AddVertex(city, int64(9000+i), vector.String_("c"))
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, v)
	}
	for pi, p := range ps {
		for ci, c := range cs {
			if (pi*7+ci*3)%2 == 0 {
				if err := g.AddEdge(livesIn, p, c, edgeProp(p, c)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g.CompactAdjacency()
	g.SealCSR()
	return g, ps, cs, city, livesIn
}

// edgeProp derives the single LIVES_IN date prop deterministically from the
// endpoints, so re-adding an edge reproduces the prior tuple exactly.
func edgeProp(src, dst vector.VID) vector.Value {
	return vector.Date(int64(src)*100000 + int64(dst))
}

// readImage captures everything a reader can observe for the given sources —
// batched runs with props, scalar segments, and view degrees — as one
// comparable value.
type readImage struct {
	Runs    [][]vector.VID
	Props   [][]int64
	Scalar  [][]vector.VID
	Degrees []int
}

func captureImage(g *Graph, srcs []vector.VID, et catalog.EdgeTypeID, dstLabel catalog.LabelID) readImage {
	var img readImage
	var b Batch
	g.NeighborsBatch(srcs, et, catalog.Out, dstLabel, true, &b)
	for i := range b.Runs {
		r := b.Runs[i]
		img.Runs = append(img.Runs, append([]vector.VID(nil), b.Run(i)...))
		if len(b.PropI64) > 0 && b.PropI64[0] != nil {
			img.Props = append(img.Props, append([]int64(nil), b.PropI64[0][r.Start:r.End]...))
		}
	}
	for _, src := range srcs {
		img.Scalar = append(img.Scalar, append([]vector.VID(nil),
			flattenSegs(g.Neighbors(nil, src, et, catalog.Out, dstLabel, false))...))
		img.Degrees = append(img.Degrees, g.Degree(src, et, catalog.Out, dstLabel))
	}
	return img
}

func TestOverlayDeleteThenReadd(t *testing.T) {
	g, ps, cs, city, livesIn := overlayGraph(t, 8, 4)
	src, dst := ps[0], cs[0] // (0*7+0*3)%2==0: edge exists
	if !g.DeleteEdge(livesIn, src, dst) {
		t.Fatal("DeleteEdge failed")
	}
	if err := g.AddEdge(livesIn, src, dst, edgeProp(src, dst)); err != nil {
		t.Fatal(err)
	}
	// One occurrence, present, with the original prop tuple.
	segs := g.Neighbors(nil, src, livesIn, catalog.Out, city, true)
	count := 0
	for _, s := range segs {
		for k, d := range s.VIDs {
			if d == dst {
				count++
				if got, want := s.PropI64[0][k], int64(src)*100000+int64(dst); got != want {
					t.Fatalf("re-added edge prop = %d, want %d", got, want)
				}
			}
		}
	}
	if count != 1 {
		t.Fatalf("delete-then-readd left %d occurrences, want 1", count)
	}
	// Byte-identical to the quiesced reseal.
	before := captureImage(g, ps, livesIn, city)
	g.CompactAdjacency()
	g.SealCSR()
	after := captureImage(g, ps, livesIn, city)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("overlay image diverges from resealed image after delete-then-readd")
	}
}

func TestOverlayDeleteRetractsInsert(t *testing.T) {
	g, ps, cs, city, livesIn := overlayGraph(t, 8, 4)
	src, dst := ps[0], cs[1] // (0*7+1*3)%2==1: edge absent from the sealed image
	if err := g.AddEdge(livesIn, src, dst, edgeProp(src, dst)); err != nil {
		t.Fatal(err)
	}
	if !g.DeleteEdge(livesIn, src, dst) {
		t.Fatal("delete of a delta insert failed")
	}
	for _, d := range flattenSegs(g.Neighbors(nil, src, livesIn, catalog.Out, city, false)) {
		if d == dst {
			t.Fatal("retracted insert still visible")
		}
	}
	if g.DeleteEdge(livesIn, src, dst) {
		t.Fatal("second delete of the same edge must fail")
	}
	before := captureImage(g, ps, livesIn, city)
	g.CompactAdjacency()
	g.SealCSR()
	if after := captureImage(g, ps, livesIn, city); !reflect.DeepEqual(before, after) {
		t.Fatal("overlay image diverges from resealed image after insert retraction")
	}
}

// mutate applies one deterministic mutation step. Steps cycle through
// duplicate-tolerant adds, deletes (of sealed or delta entries alike), and
// explicit delete-then-readd pairs.
func mutate(g *Graph, rng *rand.Rand, ps, cs []vector.VID, livesIn catalog.EdgeTypeID) {
	src := ps[rng.Intn(len(ps))]
	dst := cs[rng.Intn(len(cs))]
	switch rng.Intn(4) {
	case 0, 1:
		_ = g.AddEdge(livesIn, src, dst, edgeProp(src, dst))
	case 2:
		g.DeleteEdge(livesIn, src, dst)
	default:
		if g.DeleteEdge(livesIn, src, dst) {
			_ = g.AddEdge(livesIn, src, dst, edgeProp(src, dst))
		}
	}
}

// TestOverlayConcurrentReadersMatchReseal is the overlay's core concurrency
// contract, meant for -race: reader worker counts 1/2/4/8 expand batches
// while a writer streams edge mutations through the overlay, with the reseal
// policy cranked low enough that images swap mid-run. Readers assert the
// sorted-run invariant on every expansion; after the writer quiesces, the
// overlay read image must be byte-identical to a full reseal.
func TestOverlayConcurrentReadersMatchReseal(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		t.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(t *testing.T) {
			g, ps, cs, city, livesIn := overlayGraph(t, 48, 12)
			// Reseal aggressively so readers race image swaps (inline: the
			// writer goroutine performs the swap while readers are loading).
			g.SetResealPolicy(0.01, 8)

			var done atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var b Batch
					for !done.Load() {
						g.NeighborsBatch(ps, livesIn, catalog.Out, city, true, &b)
						if len(b.Runs) != len(ps) {
							t.Errorf("reader saw %d runs for %d srcs", len(b.Runs), len(ps))
							return
						}
						if !b.Sorted {
							t.Error("reader saw an unsorted batch during overlay writes")
							return
						}
						for i := range b.Runs {
							run := b.Run(i)
							if !sort.SliceIsSorted(run, func(x, y int) bool { return run[x] < run[y] }) {
								t.Errorf("reader saw unsorted run for src %d: %v", ps[i], run)
								return
							}
						}
					}
				}()
			}

			rng := rand.New(rand.NewSource(int64(workers)))
			for i := 0; i < 4000; i++ {
				mutate(g, rng, ps, cs, livesIn)
			}
			done.Store(true)
			wg.Wait()
			if t.Failed() {
				return
			}
			if g.Overlay().Reseals == 0 {
				t.Fatal("policy should have forced mid-run reseals")
			}

			before := captureImage(g, ps, livesIn, city)
			g.CompactAdjacency()
			g.SealCSR()
			after := captureImage(g, ps, livesIn, city)
			if !reflect.DeepEqual(before, after) {
				t.Fatal("overlay reads diverge from the quiesced reseal")
			}
		})
	}
}

// TestOverlayBackgroundResealSwap drives reseals through an asynchronous
// submit (a private goroutine per task, tracked so the test can quiesce) so
// the image swap genuinely overlaps reader loads and writer mutations.
func TestOverlayBackgroundResealSwap(t *testing.T) {
	g, ps, cs, city, livesIn := overlayGraph(t, 32, 8)
	var pending sync.WaitGroup
	g.SetResealSubmit(func(task func()) bool {
		pending.Add(1)
		go func() { defer pending.Done(); task() }()
		return true
	})
	g.SetResealPolicy(0.01, 8)

	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b Batch
			for !done.Load() {
				g.NeighborsBatch(ps, livesIn, catalog.Out, city, true, &b)
				if !b.Sorted {
					t.Error("unsorted batch during background reseal")
					return
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 4000; i++ {
		mutate(g, rng, ps, cs, livesIn)
	}
	done.Store(true)
	wg.Wait()
	pending.Wait() // quiesce in-flight reseals before comparing
	if t.Failed() {
		return
	}
	if g.Overlay().Reseals == 0 {
		t.Fatal("no background reseal ran")
	}

	before := captureImage(g, ps, livesIn, city)
	g.CompactAdjacency()
	g.SealCSR()
	if after := captureImage(g, ps, livesIn, city); !reflect.DeepEqual(before, after) {
		t.Fatal("background-resealed overlay diverges from the quiesced reseal")
	}
}

// TestCompactResealsInvalidatedFamilies covers the Compact maintenance fix:
// after overlay-disabled mutations drop a family's image, CompactAdjacency
// schedules the reseal path, so post-Compact reads are sealed and sorted —
// never the unsorted live-slot fallback.
func TestCompactResealsInvalidatedFamilies(t *testing.T) {
	g, ps, cs, city, livesIn := overlayGraph(t, 16, 4)
	g.SetOverlayDisabled(true)
	// Invalidate images the pre-overlay way, leaving dead slots behind.
	for _, p := range ps[:8] {
		g.DeleteEdge(livesIn, p, cs[0])
	}
	if g.CSRSealed() {
		t.Fatal("overlay-disabled deletes must invalidate")
	}
	g.CompactAdjacency()
	if !g.CSRSealed() {
		t.Fatal("CompactAdjacency must reseal invalidated families")
	}
	var b Batch
	g.NeighborsBatch(ps, livesIn, catalog.Out, city, false, &b)
	if !b.Sorted {
		t.Fatal("post-Compact batch must be Sorted")
	}
	batchMatchesScalar(t, g, ps, livesIn, catalog.Out, city, true)
}

// TestOverlayMixedDirections exercises the In direction and Both through the
// overlay, cross-checked against the scalar reference path.
func TestOverlayMixedDirections(t *testing.T) {
	g, ps, cs, city, livesIn := overlayGraph(t, 12, 6)
	person := g.LabelOf(ps[0])
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		mutate(g, rng, ps, cs, livesIn)
	}
	batchMatchesScalar(t, g, ps, livesIn, catalog.Out, city, true)
	batchMatchesScalar(t, g, cs, livesIn, catalog.In, person, true)
	batchMatchesScalar(t, g, ps, livesIn, catalog.Both, city, false)
	batchMatchesScalar(t, g, ps, livesIn, catalog.Out, AnyLabel, false)
	_ = city
}
