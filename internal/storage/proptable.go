package storage

import (
	"ges/internal/catalog"
	"ges/internal/vector"
)

// propTable is the columnar vertex property table of one label (§5): each
// row corresponds to a vertex of that label, each column to a property.
type propTable struct {
	defs  []catalog.PropDef
	cols  []*vector.Column
	vids  []vector.VID // row -> global VID
	ext   []int64      // row -> external identifier
	byExt map[int64]vector.VID
}

func newPropTable(defs []catalog.PropDef) *propTable {
	t := &propTable{defs: defs, byExt: make(map[int64]vector.VID)}
	for _, d := range defs {
		c := vector.NewColumn(d.Name, d.Kind)
		// Storage columns carry the layout upgrades of the gather path:
		// strings are dictionary-encoded, ordered scalars get zone maps.
		switch d.Kind {
		case vector.KindString:
			c.EnableDict()
		case vector.KindInt64, vector.KindDate, vector.KindFloat64:
			c.EnableZoneMap()
		}
		t.cols = append(t.cols, c)
	}
	return t
}

// addRow appends a vertex row and returns its per-label row index.
func (t *propTable) addRow(vid vector.VID, extID int64, props []vector.Value) uint32 {
	row := uint32(len(t.vids))
	t.vids = append(t.vids, vid)
	t.ext = append(t.ext, extID)
	t.byExt[extID] = vid
	for i := range t.cols {
		var v vector.Value
		if i < len(props) {
			v = props[i]
		}
		t.cols[i].Append(normalize(v, t.defs[i].Kind))
	}
	return row
}

// normalize coerces the zero Value into the column's kind so missing
// properties store as typed zeros.
func normalize(v vector.Value, k vector.Kind) vector.Value {
	if v.Kind == vector.KindInvalid {
		return vector.Value{Kind: k}
	}
	return v
}

// get returns the value of property p at row.
func (t *propTable) get(row uint32, p catalog.PropID) vector.Value {
	return t.cols[p].Get(int(row))
}

// set overwrites property p at row (used by the single-writer path and by
// transaction commit application). Dict codes are interned and zone maps
// widened by Column.Set.
func (t *propTable) set(row uint32, p catalog.PropID, v vector.Value) {
	t.cols[p].Set(int(row), normalize(v, t.defs[p].Kind))
}

func (t *propTable) memBytes() int {
	n := len(t.vids)*4 + len(t.ext)*8 + len(t.byExt)*16
	for _, c := range t.cols {
		n += c.MemBytes()
		if d := c.Dict(); d != nil {
			n += d.MemBytes()
		}
		if zm := c.ZoneMap(); zm != nil {
			n += zm.MemBytes()
		}
	}
	return n
}
