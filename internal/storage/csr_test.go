package storage

import (
	"reflect"
	"sort"
	"testing"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// csrGraph builds a two-label graph with deliberately unsorted insert order
// so sealing has real work to do: persons 0..9 (ext 100..109), cities 0..2
// (ext 500..502), LIVES_IN edges with a `since` date prop.
func csrGraph(t *testing.T) (*Graph, []vector.VID, []vector.VID, catalog.LabelID, catalog.LabelID, catalog.EdgeTypeID) {
	t.Helper()
	g, person, city, livesIn := twoLabelGraph(t)
	var ps, cs []vector.VID
	for i := 0; i < 10; i++ {
		v, err := g.AddVertex(person, int64(100+i), vector.String_("p"), vector.Int64(int64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, v)
	}
	for i := 0; i < 3; i++ {
		v, err := g.AddVertex(city, int64(500+i), vector.String_("c"))
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, v)
	}
	// Descending destination order per source, so pre-seal adjacency is
	// reverse-sorted.
	for pi := range ps {
		for ci := len(cs) - 1; ci >= 0; ci-- {
			if (pi+ci)%2 == 0 {
				if err := g.AddEdge(livesIn, ps[pi], cs[ci], vector.Date(int64(1000*pi+ci))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g, ps, cs, person, city, livesIn
}

// flattenSegs concatenates scalar segments in order.
func flattenSegs(segs []Segment) []vector.VID {
	var out []vector.VID
	for _, s := range segs {
		out = append(out, s.VIDs...)
	}
	return out
}

// flattenBatch concatenates batch runs in order.
func flattenBatch(b *Batch) []vector.VID {
	var out []vector.VID
	for i := range b.Runs {
		out = append(out, b.Run(i)...)
	}
	return out
}

func TestSealCSRSortsNeighbors(t *testing.T) {
	g, ps, _, _, city, livesIn := csrGraph(t)
	before := map[vector.VID][]vector.VID{}
	for _, p := range ps {
		before[p] = append([]vector.VID(nil), flattenSegs(g.Neighbors(nil, p, livesIn, catalog.Out, city, false))...)
	}
	if g.CSRSealed() {
		t.Fatal("graph sealed before SealCSR")
	}
	if n := g.SealCSR(); n == 0 {
		t.Fatal("SealCSR sealed no families")
	}
	if !g.CSRSealed() {
		t.Fatal("CSRSealed false after SealCSR")
	}
	for _, p := range ps {
		segs := g.Neighbors(nil, p, livesIn, catalog.Out, city, false)
		after := flattenSegs(segs)
		if !sort.SliceIsSorted(after, func(i, j int) bool { return after[i] < after[j] }) {
			t.Fatalf("src %d: sealed neighbors not sorted: %v", p, after)
		}
		for _, s := range segs {
			if !s.Sorted {
				t.Fatalf("src %d: sealed segment not flagged Sorted", p)
			}
		}
		want := append([]vector.VID(nil), before[p]...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !reflect.DeepEqual(after, want) {
			t.Fatalf("src %d: sealed neighbor set changed: got %v want %v", p, after, want)
		}
	}
}

func TestSealCSRKeepsEdgePropsAligned(t *testing.T) {
	g, ps, cs, _, city, livesIn := csrGraph(t)
	// Record (dst, since) pairs per source before sealing.
	type edge struct {
		dst   vector.VID
		since int64
	}
	want := map[vector.VID][]edge{}
	for _, p := range ps {
		for _, s := range g.Neighbors(nil, p, livesIn, catalog.Out, city, true) {
			for k, d := range s.VIDs {
				want[p] = append(want[p], edge{dst: d, since: s.PropI64[0][k]})
			}
		}
	}
	g.SealCSR()
	for _, p := range ps {
		var got []edge
		for _, s := range g.Neighbors(nil, p, livesIn, catalog.Out, city, true) {
			for k, d := range s.VIDs {
				got = append(got, edge{dst: d, since: s.PropI64[0][k]})
			}
		}
		w := append([]edge(nil), want[p]...)
		sort.Slice(w, func(i, j int) bool { return w[i].dst < w[j].dst })
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("src %d: props misaligned after seal: got %v want %v", p, got, w)
		}
	}
	_ = cs
}

// batchMatchesScalar asserts the NeighborsBatch byte-identity contract for
// one parameterization.
func batchMatchesScalar(t *testing.T, v View, srcs []vector.VID, et catalog.EdgeTypeID,
	dir catalog.Direction, dstLabel catalog.LabelID, withProps bool) {
	t.Helper()
	var b Batch
	v.NeighborsBatch(srcs, et, dir, dstLabel, withProps, &b)
	if len(b.Runs) != len(srcs) {
		t.Fatalf("got %d runs for %d srcs", len(b.Runs), len(srcs))
	}
	for i, src := range srcs {
		var want []vector.VID
		var wantProps [][]int64
		if src != vector.NilVID {
			for _, s := range v.Neighbors(nil, src, et, dir, dstLabel, withProps) {
				want = append(want, s.VIDs...)
				for pi, col := range s.PropI64 {
					if len(wantProps) <= pi {
						wantProps = append(wantProps, nil)
					}
					if col != nil {
						wantProps[pi] = append(wantProps[pi], col...)
					}
				}
			}
		}
		got := b.Run(i)
		if len(got) != len(want) {
			t.Fatalf("src %d (dir=%v dst=%v): run length %d want %d", src, dir, dstLabel, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("src %d: run[%d] = %d want %d", src, k, got[k], want[k])
			}
		}
		if withProps {
			r := b.Runs[i]
			for pi := range wantProps {
				for k := range want {
					if b.PropI64[pi] == nil {
						t.Fatalf("src %d: batch missing i64 prop column %d", src, pi)
					}
					if got, w := b.PropI64[pi][int(r.Start)+k], wantProps[pi][k]; got != w {
						t.Fatalf("src %d: prop[%d][%d] = %d want %d", src, pi, k, got, w)
					}
				}
			}
		}
	}
}

func TestNeighborsBatchMatchesScalar(t *testing.T) {
	g, ps, cs, person, city, livesIn := csrGraph(t)
	srcs := append(append([]vector.VID{vector.NilVID}, ps...), vector.NilVID)

	for _, sealed := range []bool{false, true} {
		if sealed {
			g.CompactAdjacency()
			g.SealCSR()
		}
		name := map[bool]string{false: "unsealed", true: "sealed"}[sealed]
		t.Run(name, func(t *testing.T) {
			batchMatchesScalar(t, g, srcs, livesIn, catalog.Out, city, false)
			batchMatchesScalar(t, g, srcs, livesIn, catalog.Out, city, true)
			batchMatchesScalar(t, g, srcs, livesIn, catalog.Out, AnyLabel, false)
			batchMatchesScalar(t, g, srcs, livesIn, catalog.Both, city, false)
			batchMatchesScalar(t, g, cs, livesIn, catalog.In, person, true)
			// Mixed-label source list bails to the reference path.
			mixed := append(append([]vector.VID(nil), ps[:3]...), cs...)
			batchMatchesScalar(t, g, mixed, livesIn, catalog.Out, city, false)
			// Empty src list.
			batchMatchesScalar(t, g, nil, livesIn, catalog.Out, city, false)
		})
	}
}

func TestNeighborsBatchSharedZeroCopy(t *testing.T) {
	g, ps, _, _, city, livesIn := csrGraph(t)
	g.SealCSR()
	var b Batch
	g.NeighborsBatch(ps, livesIn, catalog.Out, city, false, &b)
	if !b.Shared {
		t.Fatal("sealed single-family batch should share the CSR array")
	}
	if !b.Sorted {
		t.Fatal("shared batch should be Sorted")
	}
	// Unsealed path must not claim sharing.
	g2, ps2, _, _, city2, livesIn2 := csrGraph(t)
	var b2 Batch
	g2.NeighborsBatch(ps2, livesIn2, catalog.Out, city2, false, &b2)
	if b2.Shared {
		t.Fatal("unsealed batch must not be Shared")
	}
	_ = city2
}

func TestCSRPersistsAcrossMutation(t *testing.T) {
	g, ps, cs, _, city, livesIn := csrGraph(t)
	g.SealCSR()
	if !g.CSRSealed() {
		t.Fatal("not sealed")
	}
	// Removing an edge lands in the delta overlay: the snapshot stays
	// published and reads reflect the delete immediately.
	if !g.DeleteEdge(livesIn, ps[0], cs[0]) {
		t.Fatal("DeleteEdge failed")
	}
	if !g.CSRSealed() {
		t.Fatal("snapshot must persist across DeleteEdge")
	}
	for _, d := range flattenSegs(g.Neighbors(nil, ps[0], livesIn, catalog.Out, city, false)) {
		if d == cs[0] {
			t.Fatal("deleted edge still visible through the overlay")
		}
	}
	srcs := append([]vector.VID(nil), ps...)
	batchMatchesScalar(t, g, srcs, livesIn, catalog.Out, city, true)

	// Adding an edge keeps the snapshot too, and the merged batch stays
	// sorted (never Shared while the delta is live).
	if err := g.AddEdge(livesIn, ps[0], cs[0], vector.Date(7)); err != nil {
		t.Fatal(err)
	}
	if !g.CSRSealed() {
		t.Fatal("snapshot must persist across AddEdge")
	}
	var b Batch
	g.NeighborsBatch(srcs, livesIn, catalog.Out, city, true, &b)
	if !b.Sorted || b.Shared {
		t.Fatalf("overlay batch Sorted=%v Shared=%v, want Sorted, not Shared", b.Sorted, b.Shared)
	}
	batchMatchesScalar(t, g, srcs, livesIn, catalog.Out, city, true)

	// A quiesced re-seal after compaction must agree with what the overlay
	// already served.
	g.CompactAdjacency()
	g.SealCSR()
	batchMatchesScalar(t, g, srcs, livesIn, catalog.Out, city, true)

	// The -no-overlay ablation restores invalidate-wholesale.
	g2, ps2, cs2, _, _, livesIn2 := csrGraph(t)
	g2.SetOverlayDisabled(true)
	g2.SealCSR()
	if !g2.DeleteEdge(livesIn2, ps2[0], cs2[0]) {
		t.Fatal("DeleteEdge failed")
	}
	if g2.CSRSealed() {
		t.Fatal("-no-overlay mutation must invalidate the snapshot")
	}
}

func TestNeighborsBatchEmptyFamily(t *testing.T) {
	g, person, city, livesIn := twoLabelGraph(t)
	var ps []vector.VID
	for i := 0; i < 4; i++ {
		v, err := g.AddVertex(person, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, v)
	}
	// No edges at all: the LIVES_IN family does not even exist.
	var b Batch
	g.NeighborsBatch(ps, livesIn, catalog.Out, city, false, &b)
	if len(b.Runs) != len(ps) {
		t.Fatalf("runs = %d", len(b.Runs))
	}
	for i := range b.Runs {
		if len(b.Run(i)) != 0 {
			t.Fatalf("expected empty run %d", i)
		}
	}
	if !b.Sorted {
		t.Fatal("all-empty batch is trivially sorted")
	}
	g.SealCSR() // zero families: must not panic
	batchMatchesScalar(t, g, ps, livesIn, catalog.Out, city, false)
}

func TestMemBytesAccountsCSR(t *testing.T) {
	g, _, _, _, _, _ := csrGraph(t)
	before := g.MemBytes()
	if before <= 0 {
		t.Fatal("MemBytes must be positive")
	}
	g.SealCSR()
	after := g.MemBytes()
	if after <= before {
		t.Fatalf("MemBytes must grow after sealing: before=%d after=%d", before, after)
	}
}
