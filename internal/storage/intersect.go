// Per-row k-way adjacency intersection over NeighborsBatch fan-outs — the
// batch-level kernel behind op.ExpandIntersect. Each side of a multiway
// cyclic join contributes one Batch (one adjacency run per owner row); the
// Intersector reduces row i to the vertices present in every side's run.
//
// Side 0 (the base) defines the output: its run is enumerated in storage
// order with multiplicity, filtered by membership in the remaining sides
// (the probes). When every batch is CSR-sorted the reduction is a leapfrog
// merge with galloping seeks (vector.IntersectSorted); sorted probes under
// an unsorted base answer through monotone cursors; unsorted probes
// (overlay segments, merged families, the scalar reference path) answer
// through per-source hash sets. All paths are byte-identical — the sorted
// kernels are pure speedups, never semantic changes.
package storage

import "ges/internal/vector"

// Intersector computes per-row k-way intersections over one base batch and
// k-1 probe batches. It is single-goroutine state; parallel callers use one
// Intersector per morsel.
type Intersector struct {
	base      *Batch
	probes    []*Batch
	probeSrcs [][]vector.VID
	intersect bool
	allSorted bool

	runs    [][]vector.VID     // scratch: probe runs for the leapfrog path
	order   []int              // scratch: per-row probe evaluation order
	cursors []vector.RunCursor // per probe, reloaded per row
	useCur  []bool             // per probe: cursor (sorted) vs hash set
	sets    []probeSet
}

// probeSet caches the membership set built for one probe side's current
// source vertex. Owner rows repeat along a deep f-Tree node, so consecutive
// rows usually reuse the cached set instead of rebuilding it.
type probeSet struct {
	src   vector.VID
	valid bool
	set   map[vector.VID]struct{}
}

// Reset points the intersector at freshly filled batches, all covering the
// same row range. probeSrcs[p] is the source column probes[p] was filled
// from, used to key the per-source set cache. intersect=false forces the
// hash-set path for every probe (the NoIntersect ablation).
func (x *Intersector) Reset(base *Batch, probes []*Batch, probeSrcs [][]vector.VID, intersect bool) {
	x.base, x.probes, x.probeSrcs, x.intersect = base, probes, probeSrcs, intersect
	x.allSorted = intersect && base.Sorted
	for _, p := range probes {
		if !p.Sorted {
			x.allSorted = false
		}
	}
	if cap(x.cursors) < len(probes) {
		x.cursors = make([]vector.RunCursor, len(probes))
		x.useCur = make([]bool, len(probes))
		x.sets = make([]probeSet, len(probes))
	} else {
		x.cursors = x.cursors[:len(probes)]
		x.useCur = x.useCur[:len(probes)]
		x.sets = x.sets[:len(probes)]
		for i := range x.sets {
			x.sets[i].valid = false
		}
	}
}

// Row appends to dst the intersection for row i: the base run in order,
// filtered to elements present in every probe run. Duplicates in the base
// emit duplicates; duplicates in probes do not multiply.
//
//geslint:kernel
func (x *Intersector) Row(dst []vector.VID, i int) []vector.VID {
	b := x.base.Run(i)
	if len(b) == 0 {
		return dst
	}
	for _, p := range x.probes {
		if p.Runs[i].Start == p.Runs[i].End {
			return dst
		}
	}
	// Cheap per-row cardinality heuristic read off the CSR runs: evaluate
	// probes in ascending run-length (degree) order so the most selective
	// side short-circuits first. Conjunction commutes, so this is a pure
	// evaluation-order change — results are unchanged.
	x.order = x.order[:0]
	for pi := range x.probes {
		//geslint:alloc-ok per-row probe-order scratch, k entries; capacity stabilizes after the first row
		x.order = append(x.order, pi)
	}
	for a := 1; a < len(x.order); a++ {
		for c := a; c > 0 && runLen(x.probes[x.order[c]], i) < runLen(x.probes[x.order[c-1]], i); c-- {
			x.order[c], x.order[c-1] = x.order[c-1], x.order[c]
		}
	}
	if x.allSorted {
		x.runs = x.runs[:0]
		for _, pi := range x.order {
			//geslint:alloc-ok leapfrog run-list scratch, k entries; capacity stabilizes after the first row
			x.runs = append(x.runs, x.probes[pi].Run(i))
		}
		return vector.IntersectSorted(dst, b, x.runs)
	}
	// Mixed path: enumerate the base in order; each sorted probe answers
	// through a monotone galloping cursor, each unsorted one through its
	// cached per-source hash set.
	for pi, p := range x.probes {
		if x.intersect && p.Sorted {
			x.useCur[pi] = true
			x.cursors[pi].Reset(p.Run(i))
		} else {
			x.useCur[pi] = false
			x.loadSet(pi, i)
		}
	}
outer:
	for _, v := range b {
		for _, pi := range x.order {
			if x.useCur[pi] {
				if !x.cursors[pi].Contains(v) {
					continue outer
				}
			} else if _, ok := x.sets[pi].set[v]; !ok {
				continue outer
			}
		}
		//geslint:alloc-ok append into the caller-owned dst buffer; capacity stabilizes after the first rows
		dst = append(dst, v)
	}
	return dst
}

// runLen is the adjacency degree of probe p's source at row i.
func runLen(p *Batch, i int) int {
	r := p.Runs[i]
	return int(r.End - r.Start)
}

// loadSet materializes probe pi's run for row i into a hash set, reusing the
// cached set when the source vertex repeats.
func (x *Intersector) loadSet(pi, i int) {
	src := x.probeSrcs[pi][i]
	s := &x.sets[pi]
	if s.valid && s.src == src {
		return
	}
	run := x.probes[pi].Run(i)
	s.src, s.valid = src, true
	//geslint:alloc-ok hash-set fallback for unsorted runs; rebuilt only when the probe's source vertex changes
	s.set = make(map[vector.VID]struct{}, len(run))
	for _, v := range run {
		s.set[v] = struct{}{}
	}
}
