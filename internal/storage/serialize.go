package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// Snapshot format: a compact varint-based binary encoding of the catalog
// and the base graph. It exists so a bulk-loaded (or generated) graph can be
// persisted and reopened without re-running ingestion — the GES service's
// cold-start path.
//
//	magic "GESSNAP1"
//	catalog: labels (name + prop defs), edge types (name + prop defs)
//	vertices: per label: count, then per vertex (extID, property values)
//	edges: per Out-direction adjacency family: src/dst label, edge type,
//	       entry count, then (src, dst, edge property values)*
const snapshotMagic = "GESSNAP1"

type snapWriter struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (s *snapWriter) uvarint(v uint64) {
	if s.err != nil {
		return
	}
	n := binary.PutUvarint(s.buf[:], v)
	_, s.err = s.w.Write(s.buf[:n])
}

func (s *snapWriter) varint(v int64) {
	if s.err != nil {
		return
	}
	n := binary.PutVarint(s.buf[:], v)
	_, s.err = s.w.Write(s.buf[:n])
}

func (s *snapWriter) str(v string) {
	s.uvarint(uint64(len(v)))
	if s.err == nil {
		_, s.err = s.w.WriteString(v)
	}
}

func (s *snapWriter) value(v vector.Value, k vector.Kind) {
	switch k {
	case vector.KindInt64, vector.KindDate, vector.KindBool:
		s.varint(v.I)
	case vector.KindFloat64:
		s.uvarint(math.Float64bits(v.F))
	case vector.KindString:
		s.str(v.S)
	default:
		s.err = fmt.Errorf("storage: cannot serialize kind %s", k)
	}
}

type snapReader struct {
	r   *bufio.Reader
	err error
}

func (s *snapReader) uvarint() uint64 {
	if s.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(s.r)
	s.err = err
	return v
}

func (s *snapReader) varint() int64 {
	if s.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(s.r)
	s.err = err
	return v
}

func (s *snapReader) str() string {
	n := s.uvarint()
	if s.err != nil {
		return ""
	}
	if n > 1<<30 {
		s.err = fmt.Errorf("storage: implausible string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	_, s.err = io.ReadFull(s.r, buf)
	return string(buf)
}

func (s *snapReader) value(k vector.Kind) vector.Value {
	switch k {
	case vector.KindInt64, vector.KindDate, vector.KindBool:
		return vector.Value{Kind: k, I: s.varint()}
	case vector.KindFloat64:
		return vector.Float64(math.Float64frombits(s.uvarint()))
	case vector.KindString:
		return vector.String_(s.str())
	default:
		s.err = fmt.Errorf("storage: cannot deserialize kind %s", k)
		return vector.Value{}
	}
}

// Save writes the catalog and the base graph as a snapshot. Transactional
// overlays are not included: callers persist a quiesced (or freshly loaded)
// graph.
func (g *Graph) Save(w io.Writer) error {
	sw := &snapWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := sw.w.WriteString(snapshotMagic); err != nil {
		return err
	}
	cat := g.cat

	// Catalog.
	sw.uvarint(uint64(cat.NumLabels()))
	for l := 0; l < cat.NumLabels(); l++ {
		id := catalog.LabelID(l)
		sw.str(cat.LabelName(id))
		defs := cat.LabelProps(id)
		sw.uvarint(uint64(len(defs)))
		for _, d := range defs {
			sw.str(d.Name)
			sw.uvarint(uint64(d.Kind))
		}
	}
	sw.uvarint(uint64(cat.NumEdgeTypes()))
	for e := 0; e < cat.NumEdgeTypes(); e++ {
		id := catalog.EdgeTypeID(e)
		sw.str(cat.EdgeTypeName(id))
		defs := cat.EdgeTypeProps(id)
		sw.uvarint(uint64(len(defs)))
		for _, d := range defs {
			sw.str(d.Name)
			sw.uvarint(uint64(d.Kind))
		}
	}

	// Vertices, per label, in VID order within the label.
	for l := 0; l < cat.NumLabels(); l++ {
		id := catalog.LabelID(l)
		defs := cat.LabelProps(id)
		vids := g.ScanLabel(id)
		sw.uvarint(uint64(len(vids)))
		for _, v := range vids {
			sw.varint(g.ExtID(v))
			for p := range defs {
				sw.value(g.Prop(v, catalog.PropID(p)), defs[p].Kind)
			}
		}
	}

	// Edges: every Out-direction family once (the In direction is rebuilt).
	type famDump struct {
		key  AdjKey
		list *AdjList
	}
	var fams []famDump
	for key, list := range g.fams.Load().adj {
		if key.Dir == catalog.Out {
			fams = append(fams, famDump{key, list})
		}
	}
	// Deterministic order.
	for i := 0; i < len(fams); i++ {
		for j := i + 1; j < len(fams); j++ {
			a, b := fams[i].key, fams[j].key
			if b.Src < a.Src || (b.Src == a.Src && (b.Et < a.Et || (b.Et == a.Et && b.Dst < a.Dst))) {
				fams[i], fams[j] = fams[j], fams[i]
			}
		}
	}
	sw.uvarint(uint64(len(fams)))
	for _, f := range fams {
		sw.uvarint(uint64(f.key.Src))
		sw.uvarint(uint64(f.key.Et))
		sw.uvarint(uint64(f.key.Dst))
		defs := cat.EdgeTypeProps(f.key.Et)
		sw.uvarint(uint64(f.list.edgeCount()))
		for src := range f.list.meta {
			srcVID := vector.VID(src)
			ns := f.list.neighbors(srcVID)
			for i, dst := range ns {
				sw.varint(g.ExtID(srcVID))
				sw.varint(g.ExtID(dst))
				for p, d := range defs {
					var v vector.Value
					switch d.Kind {
					case vector.KindInt64, vector.KindDate:
						v = vector.Value{Kind: d.Kind, I: f.list.edgePropI64(srcVID, p)[i]}
					case vector.KindFloat64:
						v = vector.Float64(f.list.edgePropF64(srcVID, p)[i])
					case vector.KindString:
						v = vector.String_(f.list.edgePropStr(srcVID, p)[i])
					}
					sw.value(v, d.Kind)
				}
			}
		}
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// Load reads a snapshot, returning a freshly built graph and its catalog.
func Load(r io.Reader) (*Graph, *catalog.Catalog, error) {
	sr := &snapReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(sr.r, magic); err != nil {
		return nil, nil, fmt.Errorf("storage: reading snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, nil, fmt.Errorf("storage: not a GES snapshot (magic %q)", magic)
	}

	cat := catalog.New()
	nLabels := int(sr.uvarint())
	for l := 0; l < nLabels && sr.err == nil; l++ {
		name := sr.str()
		nProps := int(sr.uvarint())
		defs := make([]catalog.PropDef, nProps)
		for p := 0; p < nProps; p++ {
			defs[p] = catalog.PropDef{Name: sr.str(), Kind: vector.Kind(sr.uvarint())}
		}
		if sr.err == nil {
			if _, err := cat.AddLabel(name, defs...); err != nil {
				return nil, nil, err
			}
		}
	}
	nEts := int(sr.uvarint())
	for e := 0; e < nEts && sr.err == nil; e++ {
		name := sr.str()
		nProps := int(sr.uvarint())
		defs := make([]catalog.PropDef, nProps)
		for p := 0; p < nProps; p++ {
			defs[p] = catalog.PropDef{Name: sr.str(), Kind: vector.Kind(sr.uvarint())}
		}
		if sr.err == nil {
			if _, err := cat.AddEdgeType(name, defs...); err != nil {
				return nil, nil, err
			}
		}
	}

	g := NewGraph(cat)
	for l := 0; l < nLabels && sr.err == nil; l++ {
		id := catalog.LabelID(l)
		defs := cat.LabelProps(id)
		n := int(sr.uvarint())
		for i := 0; i < n && sr.err == nil; i++ {
			ext := sr.varint()
			props := make([]vector.Value, len(defs))
			for p := range defs {
				props[p] = sr.value(defs[p].Kind)
			}
			if sr.err == nil {
				if _, err := g.AddVertex(id, ext, props...); err != nil {
					return nil, nil, err
				}
			}
		}
	}

	nFams := int(sr.uvarint())
	for f := 0; f < nFams && sr.err == nil; f++ {
		srcLabel := catalog.LabelID(sr.uvarint())
		et := catalog.EdgeTypeID(sr.uvarint())
		dstLabel := catalog.LabelID(sr.uvarint())
		defs := cat.EdgeTypeProps(et)
		n := int(sr.uvarint())
		for i := 0; i < n && sr.err == nil; i++ {
			srcExt := sr.varint()
			dstExt := sr.varint()
			props := make([]vector.Value, len(defs))
			for p := range defs {
				props[p] = sr.value(defs[p].Kind)
			}
			if sr.err != nil {
				break
			}
			src, ok := g.VertexByExt(srcLabel, srcExt)
			if !ok {
				return nil, nil, fmt.Errorf("storage: snapshot references unknown vertex %d", srcExt)
			}
			dst, ok := g.VertexByExt(dstLabel, dstExt)
			if !ok {
				return nil, nil, fmt.Errorf("storage: snapshot references unknown vertex %d", dstExt)
			}
			if err := g.AddEdge(et, src, dst, props...); err != nil {
				return nil, nil, err
			}
		}
	}
	if sr.err != nil {
		return nil, nil, fmt.Errorf("storage: corrupt snapshot: %w", sr.err)
	}
	return g, cat, nil
}
