package storage

import (
	"sync"
	"sync/atomic"

	"ges/internal/vector"
)

// Pool is the size-classed memory pool of §5: the copy-on-write transaction
// path and snapshot merging frequently need short-lived neighbor buffers,
// and routing them through the pool avoids hammering the allocator.
type Pool struct {
	classes [numClasses]sync.Pool
	gets    atomic.Int64
	puts    atomic.Int64
}

const numClasses = 16 // class i holds buffers of capacity 8<<i, up to 256Ki

// NewPool returns a ready memory pool.
func NewPool() *Pool { return &Pool{} }

// classFor returns the smallest size class whose capacity fits n, or -1 when
// n exceeds the largest class (callers then allocate directly).
func classFor(n int) int {
	c, capa := 0, 8
	for capa < n {
		capa <<= 1
		c++
	}
	if c >= numClasses {
		return -1
	}
	return c
}

// GetVIDs returns a zero-length VID buffer with capacity at least n.
func (p *Pool) GetVIDs(n int) []vector.VID {
	p.gets.Add(1)
	c := classFor(n)
	if c < 0 {
		return make([]vector.VID, 0, n)
	}
	if v := p.classes[c].Get(); v != nil {
		return v.(*vidBuf).s[:0]
	}
	return make([]vector.VID, 0, 8<<uint(c))
}

// PutVIDs returns a buffer obtained from GetVIDs to the pool.
func (p *Pool) PutVIDs(buf []vector.VID) {
	p.puts.Add(1)
	c := classFor(cap(buf))
	if c < 0 {
		return
	}
	// Append growth may leave the capacity between classes; demote the
	// buffer to the class it fully satisfies.
	if cap(buf) < 8<<uint(c) {
		c--
		if c < 0 {
			return
		}
	}
	p.classes[c].Put(&vidBuf{s: buf[:0]})
}

// vidBuf boxes a slice so sync.Pool stores a pointer-shaped value.
type vidBuf struct{ s []vector.VID }

// Stats returns cumulative Get/Put counts (instrumentation for tests).
func (p *Pool) Stats() (gets, puts int64) { return p.gets.Load(), p.puts.Load() }
