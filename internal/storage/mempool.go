package storage

import (
	"sync"
	"sync/atomic"

	"ges/internal/core"
	"ges/internal/vector"
)

// Pool is the size-classed memory pool of §5. Originally it recycled only
// the copy-on-write transaction path's neighbor buffers; it now serves as
// the process-wide arena parent for every executor scratch shape — VID
// buffers, index vectors, boxed-value rows, f-Block columns, selection
// bitsets, f-Trees and adjacency batches — with per-class get/put/hit
// counters feeding the /stats memory section.
//
// All methods are safe for concurrent use; per-query ownership bracketing
// lives in Arena (arena.go).
type Pool struct {
	vids   slicePool[vector.VID]
	ranges slicePool[core.Range]
	vals   slicePool[vector.Value]

	cols    objPool[vector.Column]
	bits    objPool[vector.Bitset]
	trees   objPool[core.FTree]
	batches objPool[Batch]
	blocks  objPool[core.FBlock]
	chunks  objPool[core.Chunk]
	arenas  objPool[Arena]

	// live approximates the bytes currently checked out of the slice pools
	// (capacity × element size); the /stats memory section reports it as
	// live arena bytes.
	live atomic.Int64
}

const numClasses = 16 // class i holds buffers of capacity 8<<i, up to 256Ki

// Element sizes for live-byte accounting (struct layouts on 64-bit targets).
const (
	vidSize   = 4
	rangeSize = 8
	valueSize = 40
)

// Poison sentinels for the -tags gesassert release discipline. The values
// are deliberately improbable so a legitimately all-sentinel buffer is
// effectively impossible.
var (
	poisonVID   = vector.VID(0xDEADBEEF)
	poisonRange = core.Range{Start: -0x21524111, End: -0x21524111}
	poisonValue = vector.Value{Kind: vector.Kind(0xEE), I: -0x21524111_21524111, F: -6.51e151, S: "\xde\xad"}
)

// NewPool returns a ready memory pool.
func NewPool() *Pool {
	p := &Pool{}
	p.vids.poison, p.vids.elemSize = poisonVID, vidSize
	p.ranges.poison, p.ranges.elemSize = poisonRange, rangeSize
	p.vals.poison, p.vals.elemSize = poisonValue, valueSize
	p.vids.live, p.ranges.live, p.vals.live = &p.live, &p.live, &p.live
	return p
}

// classFor returns the smallest size class whose capacity fits n, or -1 when
// n exceeds the largest class (callers then allocate directly).
func classFor(n int) int {
	c, capa := 0, 8
	for capa < n {
		capa <<= 1
		c++
	}
	if c >= numClasses {
		return -1
	}
	return c
}

// slicePool recycles buffers of one element type across the size classes.
type slicePool[T comparable] struct {
	classes [numClasses]sync.Pool
	boxes   sync.Pool // emptied sliceBoxes, so puts don't allocate a box each
	gets    [numClasses]atomic.Int64
	hits    [numClasses]atomic.Int64
	puts    [numClasses]atomic.Int64
	big     atomic.Int64 // oversize requests served by make, never pooled

	poison   T
	elemSize int
	live     *atomic.Int64
}

// sliceBox boxes a slice so sync.Pool stores a pointer-shaped value.
type sliceBox[T any] struct{ s []T }

// get returns a zero-length buffer with capacity at least n. The full
// capacity is zeroed, so stale contents from a previous owner are never
// observable — even to callers that reslice past len (the GetVIDs stale-VID
// fix).
func (p *slicePool[T]) get(n int) []T {
	c := classFor(n)
	if c < 0 {
		p.big.Add(1)
		return make([]T, 0, n)
	}
	p.gets[c].Add(1)
	if p.live != nil {
		p.live.Add(int64((8 << uint(c)) * p.elemSize))
	}
	if v := p.classes[c].Get(); v != nil {
		p.hits[c].Add(1)
		box := v.(*sliceBox[T])
		s := box.s[:cap(box.s)]
		box.s = nil
		p.boxes.Put(box)
		checkPoison(s, p.poison)
		clear(s)
		return s[:0]
	}
	return make([]T, 0, 8<<uint(c))
}

// put returns a buffer obtained from get to the pool. Append growth may
// leave the capacity between classes; the buffer is demoted to the class it
// fully satisfies.
func (p *slicePool[T]) put(buf []T) {
	c := classFor(cap(buf))
	if c < 0 {
		return
	}
	if cap(buf) < 8<<uint(c) {
		c--
		if c < 0 {
			return
		}
	}
	p.puts[c].Add(1)
	if p.live != nil {
		p.live.Add(-int64((8 << uint(c)) * p.elemSize))
	}
	s := buf[:cap(buf)]
	applyPoison(s, p.poison)
	box, _ := p.boxes.Get().(*sliceBox[T])
	if box == nil {
		box = new(sliceBox[T])
	}
	box.s = s[:0]
	p.classes[c].Put(box)
}

func (p *slicePool[T]) stats() (gets, hits, puts int64) {
	for c := 0; c < numClasses; c++ {
		gets += p.gets[c].Load()
		hits += p.hits[c].Load()
		puts += p.puts[c].Load()
	}
	return gets + p.big.Load(), hits, puts
}

// applyPoison stamps a released buffer with the sentinel in assert builds
// (-tags gesassert). A second Put of the same buffer finds the stamp intact
// and panics — the poison-on-release discipline check. Release builds
// compile both helpers away (AssertEnabled is a false constant).
func applyPoison[T comparable](s []T, poison T) {
	if !core.AssertEnabled || len(s) == 0 {
		return
	}
	if s[0] == poison {
		all := true
		for _, v := range s[1:] {
			if v != poison {
				all = false
				break
			}
		}
		if all {
			panic("storage: pool double release: buffer already carries the release sentinel")
		}
	}
	for i := range s {
		s[i] = poison
	}
}

// checkPoison verifies a recycled buffer still carries the release sentinel
// in assert builds: a caller that kept writing through a buffer after Put
// breaks the stamp and is caught the next time the buffer is handed out.
func checkPoison[T comparable](s []T, poison T) {
	if !core.AssertEnabled {
		return
	}
	for _, v := range s {
		if v != poison {
			panic("storage: pool use after release: recycled buffer was written through after Put")
		}
	}
}

// objPool recycles pointer-shaped executor objects (columns, bitsets,
// f-Trees, batches) with get/hit/put counters.
type objPool[T any] struct {
	p    sync.Pool
	gets atomic.Int64
	hits atomic.Int64
	puts atomic.Int64
}

func (p *objPool[T]) get() *T {
	p.gets.Add(1)
	if v := p.p.Get(); v != nil {
		p.hits.Add(1)
		return v.(*T)
	}
	return new(T)
}

func (p *objPool[T]) put(v *T) {
	p.puts.Add(1)
	p.p.Put(v)
}

func (p *objPool[T]) stats() ObjStat {
	return ObjStat{Gets: p.gets.Load(), Hits: p.hits.Load(), Puts: p.puts.Load()}
}

// GetVIDs returns a zero-length VID buffer with capacity at least n, its
// full capacity zeroed.
func (p *Pool) GetVIDs(n int) []vector.VID { return p.vids.get(n) }

// PutVIDs returns a buffer obtained from GetVIDs to the pool.
func (p *Pool) PutVIDs(buf []vector.VID) { p.vids.put(buf) }

// GetRanges returns a zero-length index-vector buffer with capacity at
// least n, its full capacity zeroed.
func (p *Pool) GetRanges(n int) []core.Range { return p.ranges.get(n) }

// PutRanges returns a buffer obtained from GetRanges to the pool.
func (p *Pool) PutRanges(buf []core.Range) { p.ranges.put(buf) }

// GetVals returns a zero-length boxed-value buffer with capacity at least n,
// its full capacity zeroed.
func (p *Pool) GetVals(n int) []vector.Value { return p.vals.get(n) }

// PutVals returns a buffer obtained from GetVals to the pool.
func (p *Pool) PutVals(buf []vector.Value) { p.vals.put(buf) }

// GetColumn returns an empty column of the given identity, recycling a
// previously released column's backing capacity when one is available.
func (p *Pool) GetColumn(name string, kind vector.Kind) *vector.Column {
	c := p.cols.get()
	c.Reinit(name, kind)
	return c
}

// GetLazyVIDColumn is GetColumn for the lazy segmented VID representation.
func (p *Pool) GetLazyVIDColumn(name string) *vector.Column {
	c := p.cols.get()
	c.ReinitLazyVID(name)
	return c
}

// GetDictColumn is GetColumn for a dictionary-encoded string column over d.
func (p *Pool) GetDictColumn(name string, d *vector.Dict) *vector.Column {
	c := p.cols.get()
	c.ReinitDict(name, d)
	return c
}

// PutColumn returns a column to the pool. The caller must not retain any
// reference to it or to its backing slices.
func (p *Pool) PutColumn(c *vector.Column) {
	if c == nil {
		return
	}
	c.Reinit("", vector.KindInvalid)
	p.cols.put(c)
}

// GetBitset returns an n-bit selection vector, every bit set (valid=true) or
// clear, recycling word storage when available.
func (p *Pool) GetBitset(n int, valid bool) *vector.Bitset {
	b := p.bits.get()
	b.Reinit(n, valid)
	return b
}

// PutBitset returns a bitset to the pool.
func (p *Pool) PutBitset(b *vector.Bitset) {
	if b == nil {
		return
	}
	p.bits.put(b)
}

// GetFTree returns a root-only f-Tree over rootBlock with all rows valid —
// NewFTree semantics. A recycled tree arrives with its retired node registry
// intact, so regrowing it reuses the previous query's Node structs and
// selection-vector storage (§5, pre-allocated reusable f-Trees).
func (p *Pool) GetFTree(rootBlock *core.FBlock) *core.FTree {
	t := p.trees.get()
	if t.Root == nil {
		// Fresh allocation from new(FTree): give it a root the Reset
		// contract requires.
		*t = *core.NewFTree(rootBlock)
		return t
	}
	t.Reset(rootBlock)
	return t
}

// PutFTree returns a tree to the pool. Its block and index references are
// dropped at the next GetFTree's Reset; until then the inert pooled tree may
// briefly pin them, which is bounded by pool size.
func (p *Pool) PutFTree(t *core.FTree) {
	if t == nil {
		return
	}
	p.trees.put(t)
}

// GetFBlock returns an empty f-Block, recycling a retired block's
// column-pointer slice when one is pooled; the caller attaches columns via
// AddColumn. Taking no column slice keeps call-site variadic arguments
// non-escaping (they would otherwise heap-allocate per call).
func (p *Pool) GetFBlock() *core.FBlock {
	return p.blocks.get()
}

// PutFBlock drops a block's column references and returns it to the pool.
func (p *Pool) PutFBlock(b *core.FBlock) {
	if b == nil {
		return
	}
	b.Drop()
	p.blocks.put(b)
}

// GetChunk returns an empty operator-result wrapper.
func (p *Pool) GetChunk() *core.Chunk {
	return p.chunks.get()
}

// PutChunk drops a chunk's representation references and returns it to the
// pool.
func (p *Pool) PutChunk(c *core.Chunk) {
	if c == nil {
		return
	}
	c.FT, c.Flat = nil, nil
	p.chunks.put(c)
}

// GetArena returns a query arena over this pool, recycling a released
// arena's ownership-tracking slices when one is pooled — so steady-state
// query execution allocates neither the arena struct nor its bookkeeping.
// A nil pool yields a fresh non-recycling arena (NewArena semantics).
func (p *Pool) GetArena(noRecycle bool) *Arena {
	if p == nil {
		return NewArena(nil, true)
	}
	a := p.arenas.get()
	a.pool = p
	a.noRecycle = noRecycle
	return a
}

// PutArena releases every structure the arena still owns and returns the
// arena itself — tracking-slice capacity intact — to the pool. Safe on nil
// and on arenas created by NewArena over this pool.
func (p *Pool) PutArena(a *Arena) {
	if a == nil {
		return
	}
	a.Release()
	if p == nil || a.pool != p {
		return
	}
	a.noRecycle = false
	p.arenas.put(a)
}

// GetBatch returns an empty adjacency batch whose internal slices retain
// capacity from previous use; NeighborsBatch overwrites them in place.
func (p *Pool) GetBatch() *Batch { return p.batches.get() }

// PutBatch returns a batch to the pool. Shared batches alias storage-owned
// snapshot memory, so their views are dropped rather than recycled — a
// pooled batch must never pin a snapshot alive.
func (p *Pool) PutBatch(b *Batch) {
	if b == nil {
		return
	}
	if b.Shared {
		*b = Batch{Runs: b.Runs[:0]}
	} else {
		b.VIDs = b.VIDs[:0]
		b.Runs = b.Runs[:0]
		for i := range b.PropStr {
			clear(b.PropStr[i])
		}
		b.PropI64, b.PropF64, b.PropStr = b.PropI64[:0], b.PropF64[:0], b.PropStr[:0]
		b.Sorted = false
	}
	p.batches.put(b)
}

// Stats returns cumulative Get/Put counts across every pooled shape
// (instrumentation for tests and coarse monitoring).
func (p *Pool) Stats() (gets, puts int64) {
	s := p.DetailedStats()
	return s.Gets, s.Puts
}

// ClassStat is one size class's cumulative slice-pool counters, aggregated
// across the element types.
type ClassStat struct {
	Cap  int   `json:"cap"`
	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
	Puts int64 `json:"puts"`
}

// ObjStat is the counter triple of one object pool.
type ObjStat struct {
	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
	Puts int64 `json:"puts"`
}

// PoolStats is the full counter snapshot the /stats memory section and the
// mem experiment report.
type PoolStats struct {
	Gets      int64       `json:"gets"`
	Hits      int64       `json:"hits"`
	Puts      int64       `json:"puts"`
	LiveBytes int64       `json:"liveBytes"`
	Classes   []ClassStat `json:"classes,omitempty"`
	Columns   ObjStat     `json:"columns"`
	Bitsets   ObjStat     `json:"bitsets"`
	Trees     ObjStat     `json:"ftrees"`
	Batches   ObjStat     `json:"batches"`
	Blocks    ObjStat     `json:"fblocks"`
	Chunks    ObjStat     `json:"chunks"`
	Arenas    ObjStat     `json:"arenas"`
}

// HitRate returns hits/gets, or 0 before any traffic.
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// DetailedStats snapshots every pool counter. Classes lists only size
// classes that saw traffic.
func (p *Pool) DetailedStats() PoolStats {
	var s PoolStats
	for c := 0; c < numClasses; c++ {
		cs := ClassStat{Cap: 8 << uint(c)}
		for _, sp := range []*struct{ g, h, pu *atomic.Int64 }{
			{&p.vids.gets[c], &p.vids.hits[c], &p.vids.puts[c]},
			{&p.ranges.gets[c], &p.ranges.hits[c], &p.ranges.puts[c]},
			{&p.vals.gets[c], &p.vals.hits[c], &p.vals.puts[c]},
		} {
			cs.Gets += sp.g.Load()
			cs.Hits += sp.h.Load()
			cs.Puts += sp.pu.Load()
		}
		if cs.Gets > 0 || cs.Puts > 0 {
			s.Classes = append(s.Classes, cs)
		}
		s.Gets += cs.Gets
		s.Hits += cs.Hits
		s.Puts += cs.Puts
	}
	s.Gets += p.vids.big.Load() + p.ranges.big.Load() + p.vals.big.Load()
	s.Columns = p.cols.stats()
	s.Bitsets = p.bits.stats()
	s.Trees = p.trees.stats()
	s.Batches = p.batches.stats()
	s.Blocks = p.blocks.stats()
	s.Chunks = p.chunks.stats()
	s.Arenas = p.arenas.stats()
	for _, o := range []ObjStat{s.Columns, s.Bitsets, s.Trees, s.Batches, s.Blocks, s.Chunks, s.Arenas} {
		s.Gets += o.Gets
		s.Hits += o.Hits
		s.Puts += o.Puts
	}
	s.LiveBytes = p.live.Load()
	return s
}
