//go:build gesassert

package storage

import (
	"testing"

	"ges/internal/vector"
)

// TestAssertDoublePutPanics checks the poison-on-release discipline of
// -tags gesassert builds: putting the same buffer twice finds the release
// sentinel intact and panics instead of silently double-pooling it (which
// would hand one buffer to two owners).
func TestAssertDoublePutPanics(t *testing.T) {
	p := NewPool()
	buf := p.GetVIDs(32)
	p.PutVIDs(buf)
	defer func() {
		if recover() == nil {
			t.Fatal("double PutVIDs did not panic under -tags gesassert")
		}
	}()
	p.PutVIDs(buf)
}

// TestAssertUseAfterReleasePanics checks the companion half: a caller that
// keeps writing through a buffer after Put breaks the sentinel and is caught
// the next time the pool hands that buffer out.
func TestAssertUseAfterReleasePanics(t *testing.T) {
	p := NewPool()
	buf := p.GetVIDs(32)
	p.PutVIDs(buf)
	buf = buf[:1]
	buf[0] = 42 // illegal write-after-release
	defer func() {
		if recover() == nil {
			t.Fatal("use-after-release was not detected on the next Get")
		}
	}()
	// The same goroutine's next Get drains sync.Pool's private slot, so the
	// tampered buffer comes straight back and checkPoison fires.
	p.GetVIDs(32)
}

// TestAssertCleanCycleQuiet checks the discipline's false-positive guard: a
// legal get/use/put/get cycle must not trip either panic.
func TestAssertCleanCycleQuiet(t *testing.T) {
	p := NewPool()
	for i := 0; i < 100; i++ {
		buf := p.GetVIDs(64)
		for k := 0; k < 64; k++ {
			buf = append(buf, vector.VID(k))
		}
		p.PutVIDs(buf)
	}
}
