package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// knowsGraph builds a single-label random digraph: n persons (ext 100+i),
// KNOWS edges with deliberately descending insert order so the pre-seal
// adjacency is unsorted.
func knowsGraph(t *testing.T, n int, prob float64, seed int64) (*Graph, []vector.VID, catalog.LabelID, catalog.EdgeTypeID) {
	t.Helper()
	cat := catalog.New()
	person, err := cat.AddLabel("Person")
	if err != nil {
		t.Fatal(err)
	}
	knows, err := cat.AddEdgeType("KNOWS")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(cat)
	vs := make([]vector.VID, n)
	for i := 0; i < n; i++ {
		v, err := g.AddVertex(person, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		vs[i] = v
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for j := n - 1; j >= 0; j-- {
			if i != j && rng.Float64() < prob {
				if err := g.AddEdge(knows, vs[i], vs[j]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g, vs, person, knows
}

// naiveRowIntersect filters the scalar base adjacency of srcs[0] by
// membership in every other source's adjacency.
func naiveRowIntersect(v View, srcs []vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, lbl catalog.LabelID) []vector.VID {
	member := func(src, cand vector.VID) bool {
		for _, s := range v.Neighbors(nil, src, et, dir, lbl, false) {
			for _, w := range s.VIDs {
				if w == cand {
					return true
				}
			}
		}
		return false
	}
	var out []vector.VID
	for _, s := range v.Neighbors(nil, srcs[0], et, dir, lbl, false) {
		for _, cand := range s.VIDs {
			ok := true
			for _, src := range srcs[1:] {
				if !member(src, cand) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, cand)
			}
		}
	}
	return out
}

// TestIntersectorMatchesScalar sweeps sealed × scalar-fill × intersect-knob
// combinations over random 2-way and 3-way fan-outs and checks every path
// yields the scalar reference byte for byte.
func TestIntersectorMatchesScalar(t *testing.T) {
	for _, sealed := range []bool{false, true} {
		for _, scalarFill := range []bool{false, true} {
			for _, intersect := range []bool{false, true} {
				for _, k := range []int{2, 3} {
					name := fmt.Sprintf("sealed=%v/scalar=%v/intersect=%v/k=%d", sealed, scalarFill, intersect, k)
					t.Run(name, func(t *testing.T) {
						g, vs, person, knows := knowsGraph(t, 24, 0.3, 7)
						if sealed {
							g.SealCSR()
						}
						rng := rand.New(rand.NewSource(11))
						const rows = 40
						srcs := make([][]vector.VID, k)
						for side := range srcs {
							srcs[side] = make([]vector.VID, rows)
							for i := 0; i < rows; i++ {
								if side == 0 && i%13 == 0 {
									srcs[side][i] = vector.NilVID // invalid row
									continue
								}
								srcs[side][i] = vs[rng.Intn(len(vs))]
							}
						}
						fill := func(s []vector.VID, out *Batch) {
							if scalarFill {
								AppendNeighborsBatch(g, s, knows, catalog.Out, person, false, out)
							} else {
								g.NeighborsBatch(s, knows, catalog.Out, person, false, out)
							}
						}
						base := new(Batch)
						fill(srcs[0], base)
						probes := make([]*Batch, k-1)
						for p := range probes {
							probes[p] = new(Batch)
							fill(srcs[p+1], probes[p])
						}
						var x Intersector
						x.Reset(base, probes, srcs[1:], intersect)
						for i := 0; i < rows; i++ {
							got := x.Row(nil, i)
							var want []vector.VID
							if srcs[0][i] != vector.NilVID {
								rowSrcs := make([]vector.VID, k)
								for side := range srcs {
									rowSrcs[side] = srcs[side][i]
								}
								want = naiveRowIntersect(g, rowSrcs, knows, catalog.Out, person)
							}
							if fmt.Sprint(got) != fmt.Sprint(want) && !(len(got) == 0 && len(want) == 0) {
								t.Fatalf("row %d: got %v, want %v", i, got, want)
							}
						}
					})
				}
			}
		}
	}
}

// TestIntersectorSetCacheReuse drives repeated owner rows through the hash
// fallback and checks results stay correct when the cached set is reused.
func TestIntersectorSetCacheReuse(t *testing.T) {
	g, vs, person, knows := knowsGraph(t, 12, 0.4, 3)
	// Unsealed → unsorted probes → hash sets even with intersect=true.
	rows := 20
	base0, probe0 := vs[1], vs[2]
	baseSrcs := make([]vector.VID, rows)
	probeSrcs := make([]vector.VID, rows)
	for i := range baseSrcs {
		baseSrcs[i] = base0
		probeSrcs[i] = probe0 // same owner every row: set built once
	}
	base, probe := new(Batch), new(Batch)
	g.NeighborsBatch(baseSrcs, knows, catalog.Out, person, false, base)
	g.NeighborsBatch(probeSrcs, knows, catalog.Out, person, false, probe)
	var x Intersector
	x.Reset(base, []*Batch{probe}, [][]vector.VID{probeSrcs}, true)
	want := fmt.Sprint(naiveRowIntersect(g, []vector.VID{base0, probe0}, knows, catalog.Out, person))
	for i := 0; i < rows; i++ {
		if got := fmt.Sprint(x.Row(nil, i)); got != want && !(got == "[]" && want == "[]") {
			t.Fatalf("row %d: got %v, want %v", i, got, want)
		}
	}
}
