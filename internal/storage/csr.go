package storage

// CSR adjacency snapshots: an immutable, read-optimized image of one
// adjacency family, sealed from the AdjList at bulk-load finish. The layout
// is the classic compressed sparse row form — offsets[v] .. offsets[v+1]
// delimit v's neighbor run inside one dense array — with two additions the
// executor exploits:
//
//   - neighbor runs are sorted by destination VID, so cyclic pattern edges
//     close by merge/galloping intersection instead of hash probes, and
//   - edge-property columns are permuted alongside the neighbors, so the
//     aligned-run contract of Segment holds unchanged.
//
// The snapshot hangs off the AdjList behind an atomic pointer. Each image
// carries a delta overlay (delta.go): once SealCSR has run, edge mutations
// land in the delta instead of invalidating the image, readers merge the
// two sides without losing the sorted-run contract, and a background reseal
// (graph.go) swaps in a rebuilt image — one atomic store, concurrent
// readers keep whichever image they already loaded. Only the -no-overlay
// ablation and pre-seal bulk loading still publish nil (readers fall back
// to the live slot layout).

import (
	"sort"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// csr is the sealed image of one adjacency family.
type csr struct {
	// offsets has len(meta)+1 entries: vertex v's neighbors occupy
	// neighbors[offsets[v]:offsets[v+1]], sorted ascending by VID.
	offsets   []uint32
	neighbors []vector.VID

	// Edge-property columns aligned with neighbors, permuted by the same
	// per-run sort. Indexed like AdjList.prop*: one entry per schema
	// position, only the slice matching propKinds[p] populated.
	propKinds []vector.Kind
	propI64   [][]int64
	propF64   [][]float64
	propStr   [][]string

	// delta is the image's mutable overlay (delta.go), allocated empty at
	// seal time. Pairing it with the image — rather than the AdjList —
	// means one snap.Load() hands a reader both sides consistently.
	delta *adjDelta
}

// sealCSR builds the sorted CSR image of the family's current live entries.
// The per-run sort is stable so entries sharing a destination keep their
// slot order — the order the delta overlay's sealed-first tie break
// reproduces, which keeps merged reads byte-identical to a reseal. Caller
// holds wmu (or is the single bulk writer).
func (a *AdjList) sealCSR() *csr {
	total := 0
	for i := range a.meta {
		total += int(a.meta[i].len)
	}
	c := &csr{
		offsets:   make([]uint32, len(a.meta)+1),
		neighbors: make([]vector.VID, total),
		propKinds: a.propKinds,
	}
	hasProps := len(a.propKinds) > 0
	if hasProps {
		c.propI64 = make([][]int64, len(a.propKinds))
		c.propF64 = make([][]float64, len(a.propKinds))
		c.propStr = make([][]string, len(a.propKinds))
		for p, k := range a.propKinds {
			switch k {
			case vector.KindInt64, vector.KindDate:
				c.propI64[p] = make([]int64, total)
			case vector.KindFloat64:
				c.propF64[p] = make([]float64, total)
			case vector.KindString:
				c.propStr[p] = make([]string, total)
			}
		}
	}
	off := uint32(0)
	var perm []int
	for i := range a.meta {
		c.offsets[i] = off
		m := a.meta[i]
		if m.len == 0 {
			continue
		}
		src := a.arr[m.off : m.off+m.len]
		dst := c.neighbors[off : off+m.len]
		if !hasProps {
			copy(dst, src)
			sort.SliceStable(dst, func(x, y int) bool { return dst[x] < dst[y] })
		} else {
			// Sort a permutation so the property columns move with their
			// neighbors.
			perm = perm[:0]
			for j := 0; j < int(m.len); j++ {
				perm = append(perm, j)
			}
			sort.SliceStable(perm, func(x, y int) bool { return src[perm[x]] < src[perm[y]] })
			for j, pj := range perm {
				dst[j] = src[pj]
				at := int(off) + j
				from := int(m.off) + pj
				for p, k := range a.propKinds {
					switch k {
					case vector.KindInt64, vector.KindDate:
						c.propI64[p][at] = a.propI64[p][from]
					case vector.KindFloat64:
						c.propF64[p][at] = a.propF64[p][from]
					case vector.KindString:
						c.propStr[p][at] = a.propStr[p][from]
					}
				}
			}
		}
		off += m.len
	}
	c.offsets[len(a.meta)] = off
	c.delta = newAdjDelta(total, a.propKinds)
	return c
}

// run returns src's sorted neighbor run (nil when src has none).
func (c *csr) run(src vector.VID) []vector.VID {
	if int(src) >= len(c.offsets)-1 {
		return nil
	}
	lo, hi := c.offsets[src], c.offsets[src+1]
	return c.neighbors[lo:hi:hi]
}

// segment builds the Segment view of src's run, Sorted by construction.
func (c *csr) segment(src vector.VID, withProps bool) (Segment, bool) {
	if int(src) >= len(c.offsets)-1 {
		return Segment{}, false
	}
	lo, hi := c.offsets[src], c.offsets[src+1]
	if lo == hi {
		return Segment{}, false
	}
	seg := Segment{VIDs: c.neighbors[lo:hi:hi], Sorted: true}
	if withProps {
		for p, k := range c.propKinds {
			switch k {
			case vector.KindInt64, vector.KindDate:
				seg.PropI64 = append(seg.PropI64, c.propI64[p][lo:hi:hi])
				seg.PropF64 = append(seg.PropF64, nil)
				seg.PropStr = append(seg.PropStr, nil)
			case vector.KindFloat64:
				seg.PropI64 = append(seg.PropI64, nil)
				seg.PropF64 = append(seg.PropF64, c.propF64[p][lo:hi:hi])
				seg.PropStr = append(seg.PropStr, nil)
			case vector.KindString:
				seg.PropI64 = append(seg.PropI64, nil)
				seg.PropF64 = append(seg.PropF64, nil)
				seg.PropStr = append(seg.PropStr, c.propStr[p][lo:hi:hi])
			}
		}
	}
	return seg, true
}

// memBytes approximates the snapshot's resident size.
func (c *csr) memBytes() int {
	n := len(c.offsets)*4 + len(c.neighbors)*4
	for p, k := range c.propKinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			n += len(c.propI64[p]) * 8
		case vector.KindFloat64:
			n += len(c.propF64[p]) * 8
		case vector.KindString:
			n += len(c.propStr[p]) * 16
			for _, s := range c.propStr[p] {
				n += len(s)
			}
		}
	}
	return n
}

// Seal (re)builds the family's CSR snapshot (with a fresh empty delta) and
// publishes it atomically. Used by the bulk path and by background reseals;
// concurrent readers keep serving from whichever image (or the live slots)
// they already resolved.
//
//geslint:seal publishes the freshly built CSR image
func (a *AdjList) Seal() {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	a.snap.Store(a.sealCSR())
}

// Sealed reports whether a current CSR snapshot is published.
func (a *AdjList) Sealed() bool { return a.snap.Load() != nil }

// SealCSR seals every adjacency family into a sorted CSR snapshot. Call it
// at bulk-load finish (after CompactAdjacency) and again after any
// single-writer maintenance pass; each family swaps in atomically. It also
// opens the overlay phase: subsequent edge mutations land in per-image
// deltas instead of invalidating the images. Returns the number of
// families sealed.
func (g *Graph) SealCSR() int {
	n := 0
	for _, l := range g.fams.Load().adj {
		l.Seal()
		n++
	}
	g.sealedPhase.Store(true)
	// The statistics snapshot is derived from the same sealed image, in
	// the same single-writer pass, and swaps in under the same discipline.
	g.sealStats()
	return n
}

// CSRSealed reports whether every adjacency family currently serves from a
// CSR snapshot (true for an edgeless graph).
func (g *Graph) CSRSealed() bool {
	for _, l := range g.fams.Load().adj {
		if !l.Sealed() {
			return false
		}
	}
	return true
}

// NeighborRun delimits one source's rows inside a Batch: Batch.VIDs[Start:End]
// (and the aligned Prop* rows) are that source's neighbors.
type NeighborRun struct {
	Start, End int32
}

// Len returns the run's neighbor count.
func (r NeighborRun) Len() int { return int(r.End - r.Start) }

// Batch is the result of one batched neighbor expansion: Runs is aligned
// with the request's source slice (empty run for NilVID or isolated
// sources), and every run's rows live in VIDs with edge properties aligned
// element-for-element.
//
// Two storage modes exist. When Shared is set, VIDs and the Prop* columns
// reference storage-owned CSR arrays directly (zero copy — never mutate)
// and Runs index into them; otherwise they are buffers owned by the Batch,
// packed back to back in run order. Either way a consumer may retain
// sub-slices (lazy columns do): owned buffers are replaced, not recycled,
// by the next fill.
type Batch struct {
	VIDs []vector.VID
	Runs []NeighborRun

	// Shared marks VIDs/Prop* as views of storage-owned memory.
	Shared bool
	// Sorted guarantees every run is ascending by VID — the precondition
	// for intersection-based joins. Cleared whenever a run merges multiple
	// families or includes transaction-overlay entries.
	Sorted bool

	// Edge-property columns aligned with VIDs (populated when requested),
	// indexed by schema position like Segment.Prop*.
	PropI64 [][]int64
	PropF64 [][]float64
	PropStr [][]string
}

// Run returns the neighbors of request row i.
//
//geslint:kernel
func (b *Batch) Run(i int) []vector.VID {
	r := b.Runs[i]
	return b.VIDs[r.Start:r.End]
}

// reset prepares the batch for refilling with n runs. Owned buffers are
// dropped rather than reused: consumers may retain sub-slices of the
// previous fill.
func (b *Batch) reset(n int) {
	b.VIDs = nil
	b.PropI64, b.PropF64, b.PropStr = nil, nil, nil
	b.Shared, b.Sorted = false, false
	if cap(b.Runs) < n {
		//geslint:alloc-ok Runs buffer reallocated only on growth; steady-state batches reuse capacity
		b.Runs = make([]NeighborRun, n)
	} else {
		b.Runs = b.Runs[:n]
	}
}

// NeighborsBatch implements View: one call resolves the neighbors of every
// source, filling out's runs aligned with srcs. NilVID sources produce empty
// runs, so callers can pass invalid parent rows without re-aligning.
//
// The fast path engages when the request maps to a single sealed family
// (one direction, concrete dstLabel, uniform source label): runs are pure
// prefix-sum lookups into the shared CSR arrays — no per-source map lookup,
// no copying — and Sorted is guaranteed. A sealed family with a non-empty
// delta takes the owned merged-batch path (delta.go), which still
// guarantees Sorted. Everything else (AnyLabel fan-out, Both, unsealed
// families, mixed source labels) takes the copying reference path, which
// preserves exactly the scalar Neighbors segment order.
func (g *Graph) NeighborsBatch(srcs []vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID, withProps bool, out *Batch) {
	if dir != catalog.Both && dstLabel != AnyLabel {
		switch st, c, label := g.csrBatch(srcs, et, dir, dstLabel, withProps, out); st {
		case csrServed:
			return
		case csrDelta:
			if c.mergedBatch(g, srcs, label, withProps, out) {
				return
			}
		}
	}
	AppendNeighborsBatch(g, srcs, et, dir, dstLabel, withProps, out)
}

// csrBatch outcomes: the request was served from the shared CSR arrays, the
// sealed image has a live delta the caller must merge, or no single sealed
// family matched and the reference path must answer.
const (
	csrServed = iota
	csrDelta
	csrFallback
)

// csrBatch attempts the zero-copy CSR fast path.
//
//geslint:kernel
func (g *Graph) csrBatch(srcs []vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID, withProps bool, out *Batch) (int, *csr, catalog.LabelID) {
	// Resolve the single family off the first live source's label; bail to
	// the general path when source labels mix.
	var label catalog.LabelID
	first := -1
	for i, s := range srcs {
		if s != vector.NilVID {
			label = g.labelOf[s]
			first = i
			break
		}
	}
	if first < 0 {
		// All-NilVID request: empty runs, trivially sorted.
		out.reset(len(srcs))
		for i := range out.Runs {
			out.Runs[i] = NeighborRun{}
		}
		out.Sorted = true
		return csrServed, nil, label
	}
	l, ok := g.fams.Load().adj[AdjKey{Src: label, Et: et, Dst: dstLabel, Dir: dir}]
	if !ok {
		// No family for this label: verify uniformity, then emit empty runs.
		for _, s := range srcs[first:] {
			if s != vector.NilVID && g.labelOf[s] != label {
				return csrFallback, nil, label
			}
		}
		out.reset(len(srcs))
		for i := range out.Runs {
			out.Runs[i] = NeighborRun{}
		}
		out.Sorted = true
		return csrServed, nil, label
	}
	c := l.snap.Load()
	if c == nil {
		return csrFallback, nil, label
	}
	if !c.delta.isEmpty() {
		// Live overlay: the caller merges sealed and delta runs into owned
		// buffers (Sorted still holds).
		return csrDelta, c, label
	}
	out.reset(len(srcs))
	last := vector.VID(len(c.offsets) - 1)
	for i, s := range srcs {
		if s == vector.NilVID {
			out.Runs[i] = NeighborRun{}
			continue
		}
		if g.labelOf[s] != label {
			return csrFallback, nil, label
		}
		if s >= last {
			out.Runs[i] = NeighborRun{}
			continue
		}
		out.Runs[i] = NeighborRun{Start: int32(c.offsets[s]), End: int32(c.offsets[s+1])}
	}
	out.VIDs = c.neighbors
	out.Shared, out.Sorted = true, true
	if withProps {
		out.PropI64, out.PropF64, out.PropStr = c.propI64, c.propF64, c.propStr
	}
	return csrServed, nil, label
}

// AppendNeighborsBatch is the reference implementation of the batched
// neighbor API: per-source scalar Neighbors calls appended back to back into
// out's owned buffers. It defines the batch/scalar equivalence contract —
// run i holds exactly the concatenation of Neighbors(srcs[i])'s segments, in
// segment order — and any View can use it to satisfy NeighborsBatch.
func AppendNeighborsBatch(v View, srcs []vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID, withProps bool, out *Batch) {
	out.reset(len(srcs))
	nProps := 0
	var kinds []catalog.PropDef
	if withProps {
		kinds = v.Catalog().EdgeTypeProps(et)
		nProps = len(kinds)
		out.PropI64 = make([][]int64, nProps)
		out.PropF64 = make([][]float64, nProps)
		out.PropStr = make([][]string, nProps)
	}
	sorted := true
	var segBuf []Segment
	total := int32(0)
	for i, s := range srcs {
		start := total
		if s != vector.NilVID {
			segBuf = v.Neighbors(segBuf[:0], s, et, dir, dstLabel, withProps)
			for _, seg := range segBuf {
				out.VIDs = append(out.VIDs, seg.VIDs...)
				for p := 0; p < nProps; p++ {
					switch kinds[p].Kind {
					case vector.KindInt64, vector.KindDate:
						out.PropI64[p] = append(out.PropI64[p], seg.PropI64[p]...)
					case vector.KindFloat64:
						out.PropF64[p] = append(out.PropF64[p], seg.PropF64[p]...)
					case vector.KindString:
						out.PropStr[p] = append(out.PropStr[p], seg.PropStr[p]...)
					}
				}
				total += int32(len(seg.VIDs))
			}
			// A run stays sorted only as a single sorted segment; merged
			// families and overlay entries void the guarantee.
			if len(segBuf) > 1 || (len(segBuf) == 1 && !segBuf[0].Sorted) {
				sorted = false
			}
		}
		out.Runs[i] = NeighborRun{Start: start, End: total}
	}
	out.Sorted = sorted
}
