package storage_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"ges/internal/catalog"
	"ges/internal/ldbc"
	"ges/internal/storage"
	"ges/internal/testgraph"
	"ges/internal/vector"
)

func TestSnapshotRoundTripFixture(t *testing.T) {
	f := testgraph.New()
	var buf bytes.Buffer
	if err := f.Graph.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, cat2, err := storage.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, f.Graph, g2, cat2)
}

func TestSnapshotRoundTripLDBC(t *testing.T) {
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Graph.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, cat2, err := storage.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, ds.Graph, g2, cat2)
}

// assertGraphsEqual compares two graphs structurally: label censuses, every
// vertex's properties, and every vertex's out-neighbor multiset (by external
// ID) with edge properties.
func assertGraphsEqual(t *testing.T, a, b *storage.Graph, catB *catalog.Catalog) {
	t.Helper()
	catA := a.Catalog()
	if catA.NumLabels() != catB.NumLabels() || catA.NumEdgeTypes() != catB.NumEdgeTypes() {
		t.Fatalf("catalog shape differs: %d/%d labels, %d/%d edge types",
			catA.NumLabels(), catB.NumLabels(), catA.NumEdgeTypes(), catB.NumEdgeTypes())
	}
	if a.NumVertices() != b.NumVertices() {
		t.Fatalf("vertex counts differ: %d vs %d", a.NumVertices(), b.NumVertices())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for l := 0; l < catA.NumLabels(); l++ {
		id := catalog.LabelID(l)
		if catA.LabelName(id) != catB.LabelName(id) {
			t.Fatalf("label %d name differs", l)
		}
		defs := catA.LabelProps(id)
		for _, va := range a.ScanLabel(id) {
			ext := a.ExtID(va)
			vb, ok := b.VertexByExt(id, ext)
			if !ok {
				t.Fatalf("vertex %s/%d missing after reload", catA.LabelName(id), ext)
			}
			for p := range defs {
				pa := a.Prop(va, catalog.PropID(p))
				pb := b.Prop(vb, catalog.PropID(p))
				if !vector.Equal(pa, pb) {
					t.Fatalf("vertex %s/%d prop %s differs: %v vs %v",
						catA.LabelName(id), ext, defs[p].Name, pa, pb)
				}
			}
			// Out-neighborhood per edge type.
			for e := 0; e < catA.NumEdgeTypes(); e++ {
				et := catalog.EdgeTypeID(e)
				na := neighborExtIDs(a, va, et)
				nb := neighborExtIDs(b, vb, et)
				if strings.Join(na, ",") != strings.Join(nb, ",") {
					t.Fatalf("vertex %s/%d %s-neighbors differ:\n%v\n%v",
						catA.LabelName(id), ext, catA.EdgeTypeName(et), na, nb)
				}
			}
		}
	}
}

func neighborExtIDs(g *storage.Graph, v vector.VID, et catalog.EdgeTypeID) []string {
	var out []string
	for _, seg := range g.Neighbors(nil, v, et, catalog.Out, storage.AnyLabel, true) {
		for i, n := range seg.VIDs {
			key := []byte{}
			key = append(key, []byte(itos(g.ExtID(n)))...)
			for p := range seg.PropI64 {
				switch {
				case seg.PropI64[p] != nil:
					key = append(key, ':')
					key = append(key, []byte(itos(seg.PropI64[p][i]))...)
				case seg.PropF64[p] != nil:
					key = append(key, ':', 'f')
				case seg.PropStr[p] != nil:
					key = append(key, ':')
					key = append(key, []byte(seg.PropStr[p][i])...)
				}
			}
			out = append(out, string(key))
		}
	}
	sort.Strings(out)
	return out
}

func itos(v int64) string {
	var b [24]byte
	return string(appendInt(b[:0], v))
}

func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := storage.Load(bytes.NewBufferString("not a snapshot at all")); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, _, err := storage.Load(bytes.NewBufferString("GESSNAP1")); err == nil {
		t.Fatal("truncated snapshot must be rejected")
	}
	// Truncation mid-body.
	f := testgraph.New()
	var buf bytes.Buffer
	if err := f.Graph.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, _, err := storage.Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot must be rejected")
	}
}
