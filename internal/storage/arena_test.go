package storage

import (
	"testing"

	"ges/internal/core"
	"ges/internal/vector"
)

// TestZeroOnGetRegression pins the stale-VID fix: a recycled buffer must be
// zeroed across its FULL capacity, so even a caller that (incorrectly)
// reslices past len can never observe a previous owner's contents.
func TestZeroOnGetRegression(t *testing.T) {
	p := NewPool()
	buf := p.GetVIDs(64)
	for i := 0; i < 64; i++ {
		buf = append(buf, vector.VID(i+1))
	}
	p.PutVIDs(buf)
	got := p.GetVIDs(64)
	full := got[:cap(got)]
	for i, v := range full {
		if v != 0 {
			t.Fatalf("stale VID %d at index %d after recycle (capacity must be zeroed on get)", v, i)
		}
	}
	// Same contract for the other pooled element types.
	rg := p.GetRanges(16)
	rg = append(rg, core.Range{Start: 1, End: 2})
	p.PutRanges(rg)
	rg = p.GetRanges(16)
	for i, r := range rg[:cap(rg)] {
		if r != (core.Range{}) {
			t.Fatalf("stale Range %+v at index %d after recycle", r, i)
		}
	}
	vals := p.GetVals(8)
	vals = append(vals[:0], vector.Int64(9))
	p.PutVals(vals)
	vals = p.GetVals(8)
	for i, v := range vals[:cap(vals)] {
		if v != (vector.Value{}) {
			t.Fatalf("stale Value %+v at index %d after recycle", v, i)
		}
	}
}

// TestArenaReleaseIdempotent checks the wholesale-release contract: every
// Own*-scoped structure returns to the pool exactly once, and a second
// Release finds nothing to do.
func TestArenaReleaseIdempotent(t *testing.T) {
	p := NewPool()
	a := NewArena(p, false)
	a.OwnRanges(32)
	a.OwnVals(8)
	a.OwnColumn("c", vector.KindInt64)
	a.OwnLazyVIDColumn("l")
	a.OwnBitset(100, true)
	a.OwnFTree(core.NewFBlock())
	a.OwnBatch()
	b := a.OwnFBlock()
	b.AddColumn(vector.NewColumn("x", vector.KindVID))
	a.OwnChunk(nil, nil)

	_, putsBefore := p.Stats()
	a.Release()
	_, puts := p.Stats()
	if n := puts - putsBefore; n != 9 {
		t.Fatalf("Release returned %d structures, want 9", n)
	}
	a.Release() // idempotent: nothing left to return
	if _, again := p.Stats(); again != puts {
		t.Fatalf("second Release returned structures: puts %d -> %d", puts, again)
	}
}

// TestNilArenaAllocates checks the nil-arena and NoRecycle fallbacks: every
// getter must still hand out working memory, every put must be a no-op, and
// nothing may touch a pool.
func TestNilArenaAllocates(t *testing.T) {
	var a *Arena
	if s := a.OwnRanges(4); len(s) != 4 {
		t.Fatalf("nil arena OwnRanges len %d", len(s))
	}
	if c := a.OwnColumn("c", vector.KindInt64); c == nil {
		t.Fatal("nil arena OwnColumn returned nil")
	}
	if b := a.GetVIDs(8); cap(b) < 8 {
		t.Fatalf("nil arena GetVIDs cap %d", cap(b))
	}
	a.PutVIDs(nil)
	a.Release()
	ch := a.OwnChunk(nil, nil)
	if ch == nil {
		t.Fatal("nil arena OwnChunk returned nil")
	}
	blk := a.OwnFBlock()
	if blk == nil {
		t.Fatal("nil arena OwnFBlock returned nil")
	}

	nr := NewArena(NewPool(), true) // NoRecycle: arena present, pooling off
	nr.OwnRanges(4)
	nr.Release()
	if gets, puts := nr.pool.Stats(); gets != 0 || puts != 0 {
		t.Fatalf("NoRecycle arena touched the pool: gets=%d puts=%d", gets, puts)
	}
}

// TestPoolArenaRecycling checks that released arenas themselves recycle:
// the second GetArena must reuse the first arena's struct and tracking
// slices rather than allocating fresh ones.
func TestPoolArenaRecycling(t *testing.T) {
	p := NewPool()
	a := p.GetArena(false)
	a.OwnRanges(8)
	p.PutArena(a)
	b := p.GetArena(false)
	if b != a {
		t.Fatal("GetArena did not reuse the released arena")
	}
	if len(b.ranges) != 0 {
		t.Fatalf("recycled arena arrived with %d tracked ranges", len(b.ranges))
	}
	b.OwnRanges(8)
	p.PutArena(b)

	// A foreign arena (different pool) must not be adopted.
	other := NewArena(NewPool(), false)
	other.OwnRanges(8)
	p.PutArena(other) // must release other's memory but not pool the arena
	if c := p.GetArena(false); c == other {
		t.Fatal("PutArena adopted an arena owned by another pool")
	}
}

// TestChunkAndFBlockPooling checks the operator-wrapper recycling added for
// the per-query steady state: chunks and blocks drop their references on Put
// so a pooled wrapper never pins a tree, block, or column alive.
func TestChunkAndFBlockPooling(t *testing.T) {
	p := NewPool()
	ft := core.NewFTree(core.NewFBlock())
	c := p.GetChunk()
	c.FT = ft
	p.PutChunk(c)
	c2 := p.GetChunk()
	if c2.FT != nil || c2.Flat != nil {
		t.Fatal("pooled chunk retained representation references")
	}

	col := vector.NewColumn("v", vector.KindVID)
	b := p.GetFBlock()
	b.AddColumn(col)
	p.PutFBlock(b)
	b2 := p.GetFBlock()
	if b2.NumCols() != 0 {
		t.Fatalf("pooled f-Block arrived with %d columns", b2.NumCols())
	}
}
