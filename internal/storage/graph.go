package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ges/internal/catalog"
	"ges/internal/stats"
	"ges/internal/vector"
)

// AnyLabel is the wildcard destination label: Neighbors probes every
// adjacency family of the (srcLabel, edgeType, direction) prefix. Queries
// over supertypes (e.g. LDBC "Message" = Post ∪ Comment) rely on this.
const AnyLabel = catalog.LabelID(0xFFFF)

// Segment is one contiguous run of neighbors handed to the executor's
// pointer-based join: VIDs is a view into storage-owned memory (never copy,
// never mutate), and the Prop* slices — populated only when requested — are
// the edge-property runs aligned element-for-element with VIDs.
type Segment struct {
	VIDs    []vector.VID
	PropI64 [][]int64
	PropF64 [][]float64
	PropStr [][]string

	// Sorted guarantees VIDs is ascending — true when the segment serves
	// from a sealed CSR snapshot. Intersection joins require it; consumers
	// that don't care ignore it.
	Sorted bool
}

// View is the read interface the executor runs against. The base *Graph
// implements it directly; transactional snapshots implement it by merging
// the immutable base with committed overlays (§5, Concurrency Control).
type View interface {
	// Catalog returns the shared name catalog.
	Catalog() *catalog.Catalog
	// LabelOf returns the label of vertex v.
	LabelOf(v vector.VID) catalog.LabelID
	// ExtID returns the external 64-bit identifier of vertex v.
	ExtID(v vector.VID) int64
	// VertexByExt resolves an external identifier within a label.
	VertexByExt(label catalog.LabelID, ext int64) (vector.VID, bool)
	// Prop returns property p of vertex v, where p indexes the schema of
	// v's label.
	Prop(v vector.VID, p catalog.PropID) vector.Value
	// GatherProps bulk-fetches property pid for every selected row whose
	// vertex carries the given label, writing values into the matching rows
	// of out (pre-sized to len(vids)); other rows are left untouched.
	GatherProps(vids []vector.VID, label catalog.LabelID, pid catalog.PropID, sel *vector.Bitset, out *vector.Column)
	// GatherExtIDs bulk-fetches external identifiers for selected rows into
	// out (pre-sized to len(vids)).
	GatherExtIDs(vids []vector.VID, sel *vector.Bitset, out []int64)
	// Neighbors appends the neighbor segments of src over edge type et in
	// direction dir toward dstLabel (or AnyLabel) to buf and returns it.
	// withProps populates the aligned edge-property runs.
	Neighbors(buf []Segment, src vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID, withProps bool) []Segment
	// NeighborsBatch resolves the neighbors of every source in one call,
	// filling out with one run per source (aligned with srcs; NilVID
	// sources yield empty runs). Run i holds exactly the concatenation of
	// Neighbors(srcs[i])'s segments — the batched and scalar paths are
	// byte-identical — and out.Sorted reports whether every run is
	// ascending by VID (the precondition for intersection joins).
	NeighborsBatch(srcs []vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID, withProps bool, out *Batch)
	// Degree returns the total neighbor count that Neighbors would yield.
	Degree(src vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID) int
	// ScanLabel returns all vertices of a label. The result is shared and
	// must not be mutated.
	ScanLabel(label catalog.LabelID) []vector.VID
	// NumVertices returns the number of vertices visible in this view.
	NumVertices() int
}

// Graph is the base storage. Bulk loading (AddVertex / AddEdge) is
// single-writer; after SealCSR, *edge* mutations may run concurrently with
// readers — they land in per-image delta overlays (delta.go) while the
// sealed CSR images stay published — and everything else (vertex inserts,
// property writes) remains single-writer by contract. Transactional
// mutation flows through the transaction layer's overlays and never
// touches the base.
type Graph struct {
	cat *catalog.Catalog

	labelOf []catalog.LabelID
	rowOf   []uint32
	extOf   []int64

	tables []*propTable // per label

	// fams is the immutable family directory, republished copy-on-write
	// (under famMu) when a mutation first touches a (src,et,dst,dir)
	// combination — so a rare sealed-phase family creation is one atomic
	// swap that concurrent readers never observe mid-update.
	fams  atomic.Pointer[famTable] //geslint:atomicptr
	famMu sync.Mutex

	edgeCount atomic.Int64

	// sealedPhase turns true at the first SealCSR and marks the switch
	// from bulk loading to the overlay write path.
	sealedPhase atomic.Bool

	// overlayOff restores the pre-overlay behavior (every mutation
	// invalidates the CSR and statistics wholesale) — the -no-overlay
	// ablation. Set before concurrent readers start.
	overlayOff bool

	// resealFrac/resealMin gate the background reseal: a family rebuilds
	// once its delta holds at least resealMin entries and more than
	// resealFrac of its sealed entry count. resealSubmit, when set, runs
	// the rebuild off the mutating goroutine (internal/sched); nil or a
	// false return reseals inline.
	resealFrac   float64
	resealMin    int
	resealSubmit func(task func()) bool

	resealCount atomic.Int64 // background reseals completed
	resealNanos atomic.Int64 // total wall time spent resealing

	// statsSnap is the planner's statistics snapshot (stats.go): rebuilt
	// by SealCSR, rebased (fresh epoch, one family's summary replaced) by
	// background reseals, and cleared only by bulk-phase or
	// overlay-disabled mutations. statsEpoch outlives invalidations so
	// every publication uses a fresh epoch; statsMu serializes the
	// publishers. statsStale counts mutations since the last publication.
	statsSnap  atomic.Pointer[stats.Snapshot] //geslint:atomicptr
	statsEpoch atomic.Uint64
	statsMu    sync.Mutex
	statsStale atomic.Int64
}

// famTable is one immutable snapshot of the family directory: the per-key
// adjacency families and the (src,et,dir) index AnyLabel probes fan out
// over.
//
//geslint:snapshot-owner immutable after publication; family creation swaps in a copied table under famMu
type famTable struct {
	adj    map[AdjKey]*AdjList
	famIdx map[famKey][]famEntry
}

type famKey struct {
	src catalog.LabelID
	et  catalog.EdgeTypeID
	dir catalog.Direction
}

type famEntry struct {
	dst  catalog.LabelID
	list *AdjList
}

// DefaultResealFraction is the delta share of a family's sealed entries
// above which a background reseal is scheduled.
const DefaultResealFraction = 1.0 / 16

// DefaultResealMinDelta floors the reseal trigger so small families don't
// rebuild on every mutation.
const DefaultResealMinDelta = 64

// NewGraph returns an empty base graph over the catalog.
//
//geslint:seal constructor publishes the initial empty family directory
func NewGraph(cat *catalog.Catalog) *Graph {
	g := &Graph{
		cat:        cat,
		resealFrac: DefaultResealFraction,
		resealMin:  DefaultResealMinDelta,
	}
	g.fams.Store(&famTable{
		adj:    make(map[AdjKey]*AdjList),
		famIdx: make(map[famKey][]famEntry),
	})
	return g
}

// SetOverlayDisabled turns the delta overlay off: mutations after SealCSR
// invalidate the per-family CSR images and the statistics snapshot
// wholesale — the pre-overlay behavior, kept as the -no-overlay ablation.
// Set before concurrent readers start; with the overlay off, mutations and
// reads must not overlap.
func (g *Graph) SetOverlayDisabled(off bool) { g.overlayOff = off }

// SetResealPolicy overrides the background-reseal trigger: a family reseals
// once its delta holds at least minDelta entries and more than frac times
// its sealed entry count. Non-positive arguments keep the defaults. Set
// before concurrent readers start.
func (g *Graph) SetResealPolicy(frac float64, minDelta int) {
	if frac > 0 {
		g.resealFrac = frac
	}
	if minDelta > 0 {
		g.resealMin = minDelta
	}
}

// SetResealSubmit injects the executor background reseals run on (the
// scheduler's non-blocking submit); nil, or a false return when the pool is
// saturated, reseals inline on the mutating goroutine. Set before
// concurrent readers start.
func (g *Graph) SetResealSubmit(submit func(task func()) bool) { g.resealSubmit = submit }

// overlayEnabled reports whether edge mutations take the delta-overlay
// write path.
func (g *Graph) overlayEnabled() bool { return !g.overlayOff && g.sealedPhase.Load() }

// Catalog returns the graph's catalog.
func (g *Graph) Catalog() *catalog.Catalog { return g.cat }

// AddVertex inserts a vertex with an external identifier and property values
// ordered per the label's schema, returning its dense VID.
func (g *Graph) AddVertex(label catalog.LabelID, extID int64, props ...vector.Value) (vector.VID, error) {
	if int(label) >= g.cat.NumLabels() {
		return vector.NilVID, fmt.Errorf("storage: unknown label %d", label)
	}
	for len(g.tables) <= int(label) {
		g.tables = append(g.tables, newPropTable(g.cat.LabelProps(catalog.LabelID(len(g.tables)))))
	}
	t := g.tables[label]
	if _, dup := t.byExt[extID]; dup {
		return vector.NilVID, fmt.Errorf("storage: duplicate external id %d for label %s", extID, g.cat.LabelName(label))
	}
	vid := vector.VID(len(g.labelOf))
	row := t.addRow(vid, extID, props)
	g.labelOf = append(g.labelOf, label)
	g.rowOf = append(g.rowOf, row)
	g.extOf = append(g.extOf, extID)
	g.noteMutation()
	return vid, nil
}

// AddEdge inserts a directed edge src→dst of type et with edge-property
// values ordered per the edge type's schema. Both the forward (Out) and
// reverse (In) adjacency families are maintained. After SealCSR (overlay
// enabled) the insert lands in the sealed images' deltas and may run
// concurrently with readers.
func (g *Graph) AddEdge(et catalog.EdgeTypeID, src, dst vector.VID, props ...vector.Value) error {
	if int(src) >= len(g.labelOf) || int(dst) >= len(g.labelOf) {
		return fmt.Errorf("storage: AddEdge with unknown vertex (src=%d dst=%d)", src, dst)
	}
	sl, dl := g.labelOf[src], g.labelOf[dst]
	outKey := AdjKey{Src: sl, Et: et, Dst: dl, Dir: catalog.Out}
	inKey := AdjKey{Src: dl, Et: et, Dst: sl, Dir: catalog.In}
	lo, li := g.family(outKey), g.family(inKey)
	overlay := g.overlayEnabled()
	lo.insert(src, dst, props, overlay)
	li.insert(dst, src, props, overlay)
	g.edgeCount.Add(1)
	g.noteMutation()
	if overlay {
		g.maybeReseal(outKey, lo)
		g.maybeReseal(inKey, li)
	}
	return nil
}

// DeleteEdge removes the edge src→dst of type et from both directions.
// After SealCSR (overlay enabled) the removal tombstones the sealed images'
// entries (or retracts delta inserts) and may run concurrently with
// readers.
func (g *Graph) DeleteEdge(et catalog.EdgeTypeID, src, dst vector.VID) bool {
	if int(src) >= len(g.labelOf) || int(dst) >= len(g.labelOf) {
		return false
	}
	sl, dl := g.labelOf[src], g.labelOf[dst]
	outKey := AdjKey{Src: sl, Et: et, Dst: dl, Dir: catalog.Out}
	inKey := AdjKey{Src: dl, Et: et, Dst: sl, Dir: catalog.In}
	lo, li := g.family(outKey), g.family(inKey)
	overlay := g.overlayEnabled()
	okOut := lo.del(src, dst, overlay)
	okIn := li.del(dst, src, overlay)
	if okOut && okIn {
		g.edgeCount.Add(-1)
		g.noteMutation()
		if overlay {
			g.maybeReseal(outKey, lo)
			g.maybeReseal(inKey, li)
		}
		return true
	}
	return false
}

// family returns (creating on demand) the adjacency family for key.
func (g *Graph) family(key AdjKey) *AdjList {
	if l, ok := g.fams.Load().adj[key]; ok {
		return l
	}
	return g.addFamily(key)
}

// addFamily publishes a copy of the family directory extended with key.
// The maps inside a published famTable are immutable, so the copy (plus a
// fresh slice for the one famIdx bucket that grows) is what makes the rare
// sealed-phase family creation safe under concurrent readers.
//
//geslint:seal family creation publishes the copied directory atomically
func (g *Graph) addFamily(key AdjKey) *AdjList {
	g.famMu.Lock()
	defer g.famMu.Unlock()
	old := g.fams.Load()
	if l, ok := old.adj[key]; ok {
		return l
	}
	l := newAdjList(g.cat.EdgeTypeProps(key.Et))
	nt := &famTable{
		adj:    make(map[AdjKey]*AdjList, len(old.adj)+1),
		famIdx: make(map[famKey][]famEntry, len(old.famIdx)+1),
	}
	for k, v := range old.adj {
		nt.adj[k] = v
	}
	for k, v := range old.famIdx {
		nt.famIdx[k] = v
	}
	nt.adj[key] = l
	fk := famKey{src: key.Src, et: key.Et, dir: key.Dir}
	bucket := append([]famEntry(nil), nt.famIdx[fk]...)
	nt.famIdx[fk] = append(bucket, famEntry{dst: key.Dst, list: l})
	g.fams.Store(nt)
	return l
}

// LabelOf implements View.
func (g *Graph) LabelOf(v vector.VID) catalog.LabelID { return g.labelOf[v] }

// ExtID implements View.
func (g *Graph) ExtID(v vector.VID) int64 { return g.extOf[v] }

// VertexByExt implements View.
func (g *Graph) VertexByExt(label catalog.LabelID, ext int64) (vector.VID, bool) {
	if int(label) >= len(g.tables) || g.tables[label] == nil {
		return vector.NilVID, false
	}
	vid, ok := g.tables[label].byExt[ext]
	return vid, ok
}

// Prop implements View.
func (g *Graph) Prop(v vector.VID, p catalog.PropID) vector.Value {
	return g.tables[g.labelOf[v]].get(g.rowOf[v], p)
}

// SetProp overwrites a vertex property in the base store. It is part of the
// single-writer bulk path; transactional updates go through overlays.
func (g *Graph) SetProp(v vector.VID, p catalog.PropID, val vector.Value) {
	g.tables[g.labelOf[v]].set(g.rowOf[v], p, val)
	g.noteMutation()
}

// fillSegment populates a Segment (with optional edge props) for src in l.
// A sealed family serves the sorted CSR run (loaded once, so neighbors and
// properties always come from the same image), merged with the image's
// delta overlay when one is live; otherwise the live slot layout is used.
func fillSegment(l *AdjList, src vector.VID, withProps bool) (Segment, bool) {
	if c := l.snap.Load(); c != nil {
		if c.delta.isEmpty() {
			return c.segment(src, withProps)
		}
		return c.mergedSegment(src, withProps)
	}
	ns := l.neighbors(src)
	if len(ns) == 0 {
		return Segment{}, false
	}
	seg := Segment{VIDs: ns}
	if withProps {
		for p, k := range l.propKinds {
			switch k {
			case vector.KindInt64, vector.KindDate:
				seg.PropI64 = append(seg.PropI64, l.edgePropI64(src, p))
				seg.PropF64 = append(seg.PropF64, nil)
				seg.PropStr = append(seg.PropStr, nil)
			case vector.KindFloat64:
				seg.PropI64 = append(seg.PropI64, nil)
				seg.PropF64 = append(seg.PropF64, l.edgePropF64(src, p))
				seg.PropStr = append(seg.PropStr, nil)
			case vector.KindString:
				seg.PropI64 = append(seg.PropI64, nil)
				seg.PropF64 = append(seg.PropF64, nil)
				seg.PropStr = append(seg.PropStr, l.edgePropStr(src, p))
			}
		}
	}
	return seg, true
}

// Neighbors implements View.
func (g *Graph) Neighbors(buf []Segment, src vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID, withProps bool) []Segment {
	if dir == catalog.Both {
		buf = g.Neighbors(buf, src, et, catalog.Out, dstLabel, withProps)
		return g.Neighbors(buf, src, et, catalog.In, dstLabel, withProps)
	}
	srcLabel := g.labelOf[src]
	ft := g.fams.Load()
	if dstLabel != AnyLabel {
		if l, ok := ft.adj[AdjKey{Src: srcLabel, Et: et, Dst: dstLabel, Dir: dir}]; ok {
			if seg, ok := fillSegment(l, src, withProps); ok {
				buf = append(buf, seg)
			}
		}
		return buf
	}
	for _, fe := range ft.famIdx[famKey{src: srcLabel, et: et, dir: dir}] {
		if seg, ok := fillSegment(fe.list, src, withProps); ok {
			buf = append(buf, seg)
		}
	}
	return buf
}

// Degree implements View.
func (g *Graph) Degree(src vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID) int {
	if dir == catalog.Both {
		return g.Degree(src, et, catalog.Out, dstLabel) + g.Degree(src, et, catalog.In, dstLabel)
	}
	srcLabel := g.labelOf[src]
	ft := g.fams.Load()
	if dstLabel != AnyLabel {
		if l, ok := ft.adj[AdjKey{Src: srcLabel, Et: et, Dst: dstLabel, Dir: dir}]; ok {
			return l.viewDegree(src)
		}
		return 0
	}
	n := 0
	for _, fe := range ft.famIdx[famKey{src: srcLabel, et: et, dir: dir}] {
		n += fe.list.viewDegree(src)
	}
	return n
}

// ScanLabel implements View.
func (g *Graph) ScanLabel(label catalog.LabelID) []vector.VID {
	if int(label) >= len(g.tables) || g.tables[label] == nil {
		return nil
	}
	return g.tables[label].vids
}

// NumVertices implements View.
func (g *Graph) NumVertices() int { return len(g.labelOf) }

// NumEdges returns the number of live directed edges in the base graph.
func (g *Graph) NumEdges() int { return int(g.edgeCount.Load()) }

// CountLabel returns how many vertices carry the given label.
func (g *Graph) CountLabel(label catalog.LabelID) int {
	if int(label) >= len(g.tables) || g.tables[label] == nil {
		return 0
	}
	return len(g.tables[label].vids)
}

// MemBytes returns the approximate resident size of the base graph,
// including topology, properties, the family indexes and any sealed CSR
// snapshots — the paper's "graph size" (Table 1).
func (g *Graph) MemBytes() int {
	n := len(g.labelOf)*2 + len(g.rowOf)*4 + len(g.extOf)*8
	for _, t := range g.tables {
		if t != nil {
			n += t.memBytes()
		}
	}
	ft := g.fams.Load()
	for _, l := range ft.adj {
		l.wmu.Lock()
		n += l.memBytes()
		l.wmu.Unlock()
		if c := l.snap.Load(); c != nil {
			n += c.memBytes() + c.delta.memBytes()
		}
	}
	// Family hash table: AdjKey (8 bytes) + pointer + bucket overhead per
	// entry.
	n += len(ft.adj) * (8 + 8 + 16)
	// AnyLabel family index: per key the famKey + slice header, per entry
	// one famEntry (label + pointer).
	n += len(ft.famIdx) * (8 + 24)
	for _, fes := range ft.famIdx {
		n += len(fes) * 16
	}
	return n
}

// DeadSlots reports adjacency entries abandoned by slot relocation across
// all families — the cost of the regrow-on-full update strategy.
func (g *Graph) DeadSlots() int {
	n := 0
	for _, l := range g.fams.Load().adj {
		l.wmu.Lock()
		n += l.deadSlots
		l.wmu.Unlock()
	}
	return n
}

// AdjSlotStats reports total adjacency entries and the dead ones among them
// across all families (exposed via the service's /stats endpoint).
func (g *Graph) AdjSlotStats() (slots, dead int) {
	for _, l := range g.fams.Load().adj {
		l.wmu.Lock()
		slots += len(l.arr)
		dead += l.deadSlots
		l.wmu.Unlock()
	}
	return slots, dead
}

// CompactAdjacency rebuilds every adjacency family whose dead fraction
// exceeds 25%, reclaiming regions abandoned by slot relocation. At
// bulk-load finish it runs before the first SealCSR as always; called as a
// maintenance pass after sealing, it also schedules the background reseal
// path for any family left without a published image (e.g. after
// overlay-disabled mutations), so a post-Compact read never falls back to
// the unsorted live layout for longer than one rebuild. Live-slot readers
// must not run concurrently. Returns the number of families rebuilt.
func (g *Graph) CompactAdjacency() int {
	n := 0
	for key, l := range g.fams.Load().adj {
		if l.Compact() {
			n++
		}
		if g.sealedPhase.Load() && !l.Sealed() {
			g.scheduleReseal(key, l)
		}
	}
	return n
}
