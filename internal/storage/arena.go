package storage

import (
	"sync"

	"ges/internal/core"
	"ges/internal/vector"
)

// Arena brackets the scratch memory of one query execution (§5, memory
// pool). The engine creates one arena per Run over the engine's shared Pool;
// operators draw every intermediate structure from it; and at query end the
// engine releases the whole arena back to the pool in one call — the
// paper's "allocate once, recycle per query" discipline. Service per-request
// engines share one server pool, so released arenas feed the next request.
//
// Two ownership scopes exist:
//
//   - Own* methods hand out query-lifetime structures (index vectors that
//     land in f-Tree nodes, f-Block columns, selection bitsets, lazy-segment
//     batches). The arena tracks them and Release returns them wholesale;
//     callers never put them back individually.
//   - Get*/Put* methods hand out transient scratch (batched source VIDs,
//     per-morsel shard buffers, boxed-value staging). The caller must put
//     the buffer back on every path — geslint R11 enforces this — and the
//     arena passes it straight through to the shared pool.
//
// A nil *Arena is valid and recycles nothing: every getter falls back to
// plain allocation and every release is a no-op, so operator code calls
// through unconditionally. The NoRecycle engine knob produces the same
// behavior with the arena present, for byte-identity ablations.
//
// Own* and Get*/Put* are safe for concurrent use by parallel morsel workers.
type Arena struct {
	pool      *Pool
	noRecycle bool

	mu      sync.Mutex
	ranges  [][]core.Range
	vals    [][]vector.Value
	vids    [][]vector.VID
	cols    []*vector.Column
	bits    []*vector.Bitset
	trees   []*core.FTree
	batches []*Batch
	blocks  []*core.FBlock
	chunks  []*core.Chunk
}

// NewArena returns an arena over pool. A nil pool or noRecycle=true yields
// an arena that allocates fresh memory and recycles nothing — the ablation
// reference behavior.
func NewArena(pool *Pool, noRecycle bool) *Arena {
	if pool == nil {
		noRecycle = true
	}
	return &Arena{pool: pool, noRecycle: noRecycle}
}

// recycling reports whether the arena actually pools memory.
func (a *Arena) recycling() bool { return a != nil && !a.noRecycle }

// OwnRanges returns a query-lifetime index vector of length n, zeroed.
func (a *Arena) OwnRanges(n int) []core.Range {
	if !a.recycling() {
		return make([]core.Range, n)
	}
	s := a.pool.GetRanges(n)[:n] // full capacity is zeroed on get
	a.mu.Lock()
	a.ranges = append(a.ranges, s)
	a.mu.Unlock()
	return s
}

// OwnVals returns a query-lifetime boxed-value buffer of length n, zeroed.
func (a *Arena) OwnVals(n int) []vector.Value {
	if !a.recycling() {
		return make([]vector.Value, n)
	}
	s := a.pool.GetVals(n)[:n]
	a.mu.Lock()
	a.vals = append(a.vals, s)
	a.mu.Unlock()
	return s
}

// OwnColumn returns a query-lifetime column (f-Block scratch).
func (a *Arena) OwnColumn(name string, kind vector.Kind) *vector.Column {
	if !a.recycling() {
		return vector.NewColumn(name, kind)
	}
	c := a.pool.GetColumn(name, kind)
	a.mu.Lock()
	a.cols = append(a.cols, c)
	a.mu.Unlock()
	return c
}

// OwnLazyVIDColumn returns a query-lifetime lazy VID column.
func (a *Arena) OwnLazyVIDColumn(name string) *vector.Column {
	if !a.recycling() {
		return vector.NewLazyVIDColumn(name)
	}
	c := a.pool.GetLazyVIDColumn(name)
	a.mu.Lock()
	a.cols = append(a.cols, c)
	a.mu.Unlock()
	return c
}

// OwnDictColumn returns a query-lifetime dictionary-encoded string column.
func (a *Arena) OwnDictColumn(name string, d *vector.Dict) *vector.Column {
	if !a.recycling() {
		return vector.NewDictColumn(name, d)
	}
	c := a.pool.GetDictColumn(name, d)
	a.mu.Lock()
	a.cols = append(a.cols, c)
	a.mu.Unlock()
	return c
}

// OwnBitset returns a query-lifetime n-bit selection vector.
func (a *Arena) OwnBitset(n int, valid bool) *vector.Bitset {
	if !a.recycling() {
		if valid {
			return vector.NewBitset(n)
		}
		return vector.NewBitsetEmpty(n)
	}
	b := a.pool.GetBitset(n, valid)
	a.mu.Lock()
	a.bits = append(a.bits, b)
	a.mu.Unlock()
	return b
}

// OwnFTree returns a query-lifetime root-only f-Tree over rootBlock,
// recycling a prior query's tree (node registry, selection-vector words)
// when one is pooled.
func (a *Arena) OwnFTree(rootBlock *core.FBlock) *core.FTree {
	if !a.recycling() {
		return core.NewFTree(rootBlock)
	}
	t := a.pool.GetFTree(rootBlock)
	a.mu.Lock()
	a.trees = append(a.trees, t)
	a.mu.Unlock()
	return t
}

// OwnFBlock returns an empty query-lifetime f-Block, recycling a retired
// block's column-pointer slice when one is pooled; the caller attaches
// columns via AddColumn (see Ctx.NewFBlock).
func (a *Arena) OwnFBlock() *core.FBlock {
	if !a.recycling() {
		return core.NewFBlock()
	}
	b := a.pool.GetFBlock()
	a.mu.Lock()
	a.blocks = append(a.blocks, b)
	a.mu.Unlock()
	return b
}

// OwnChunk returns a query-lifetime operator-result wrapper. Chunks flow
// between operators and die with the query (Result retains the flat block,
// never the chunk), so the one-per-operator wrapper allocation recycles too.
func (a *Arena) OwnChunk(ft *core.FTree, flat *core.FlatBlock) *core.Chunk {
	if !a.recycling() {
		return &core.Chunk{FT: ft, Flat: flat}
	}
	c := a.pool.GetChunk()
	c.FT, c.Flat = ft, flat
	a.mu.Lock()
	a.chunks = append(a.chunks, c)
	a.mu.Unlock()
	return c
}

// OwnBatch returns a query-lifetime adjacency batch. Lazy expansion retains
// run sub-slices of the batch inside f-Tree columns, so batches feeding lazy
// columns must live until query end — exactly the Own scope.
func (a *Arena) OwnBatch() *Batch {
	if !a.recycling() {
		return new(Batch)
	}
	b := a.pool.GetBatch()
	a.mu.Lock()
	a.batches = append(a.batches, b)
	a.mu.Unlock()
	return b
}

// GetVIDs returns transient VID scratch; the caller must PutVIDs it on
// every path (geslint R11).
func (a *Arena) GetVIDs(n int) []vector.VID {
	if !a.recycling() {
		return make([]vector.VID, 0, n)
	}
	return a.pool.GetVIDs(n)
}

// PutVIDs releases transient VID scratch.
func (a *Arena) PutVIDs(buf []vector.VID) {
	if a.recycling() {
		a.pool.PutVIDs(buf)
	}
}

// GetRanges returns transient index-vector scratch; the caller must
// PutRanges it on every path (geslint R11).
func (a *Arena) GetRanges(n int) []core.Range {
	if !a.recycling() {
		return make([]core.Range, 0, n)
	}
	return a.pool.GetRanges(n)
}

// PutRanges releases transient index-vector scratch.
func (a *Arena) PutRanges(buf []core.Range) {
	if a.recycling() {
		a.pool.PutRanges(buf)
	}
}

// GetVals returns transient boxed-value scratch of length n, zeroed; the
// caller must PutVals it on every path (geslint R11).
func (a *Arena) GetVals(n int) []vector.Value {
	if !a.recycling() {
		return make([]vector.Value, n)
	}
	return a.pool.GetVals(n)[:n]
}

// PutVals releases transient boxed-value scratch.
func (a *Arena) PutVals(buf []vector.Value) {
	if a.recycling() {
		a.pool.PutVals(buf)
	}
}

// GetBatch returns a transient adjacency batch for materializing paths
// (every value is copied out of the batch before the morsel ends); the
// caller must PutBatch it on every path (geslint R11). Lazy paths use
// OwnBatch instead.
func (a *Arena) GetBatch() *Batch {
	if !a.recycling() {
		return new(Batch)
	}
	return a.pool.GetBatch()
}

// PutBatch releases a transient adjacency batch.
func (a *Arena) PutBatch(b *Batch) {
	if a.recycling() {
		a.pool.PutBatch(b)
	}
}

// Release returns every Own*-scoped structure to the parent pool in one
// sweep — the query-end wholesale release. The engine calls it after the
// final result has been flattened into row values; nothing the caller
// receives aliases arena memory. Release is idempotent: a second call finds
// the ownership lists empty.
func (a *Arena) Release() {
	if !a.recycling() {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.ranges {
		a.pool.PutRanges(s)
	}
	clear(a.ranges)
	a.ranges = a.ranges[:0]
	for _, s := range a.vals {
		a.pool.PutVals(s)
	}
	clear(a.vals)
	a.vals = a.vals[:0]
	for _, s := range a.vids {
		a.pool.PutVIDs(s)
	}
	clear(a.vids)
	a.vids = a.vids[:0]
	for _, c := range a.cols {
		a.pool.PutColumn(c)
	}
	clear(a.cols)
	a.cols = a.cols[:0]
	for _, b := range a.bits {
		a.pool.PutBitset(b)
	}
	clear(a.bits)
	a.bits = a.bits[:0]
	for _, t := range a.trees {
		a.pool.PutFTree(t)
	}
	clear(a.trees)
	a.trees = a.trees[:0]
	for _, b := range a.batches {
		a.pool.PutBatch(b)
	}
	clear(a.batches)
	a.batches = a.batches[:0]
	for _, b := range a.blocks {
		a.pool.PutFBlock(b)
	}
	clear(a.blocks)
	a.blocks = a.blocks[:0]
	for _, c := range a.chunks {
		a.pool.PutChunk(c)
	}
	clear(a.chunks)
	a.chunks = a.chunks[:0]
}
