// Background reseal: when a family's delta overlay outgrows the reseal
// policy, its CSR image is rebuilt from the live arrays off the read path
// and swapped in atomically with a fresh empty delta. Readers never block —
// in-flight operations finish against the image they loaded; the published
// statistics snapshot is rebased (the resealed family's summary replaced,
// epoch bumped) rather than dropped, so the plan cache degrades to
// mildly-stale estimates instead of syntactic planning.
package storage

import (
	"sort"
	"time"

	"ges/internal/stats"
)

// maybeReseal schedules a background rebuild of one family once its delta
// crosses the reseal policy (at least resealMin entries and more than
// resealFrac of the sealed entry count).
func (g *Graph) maybeReseal(key AdjKey, l *AdjList) {
	c := l.snap.Load()
	if c == nil {
		return
	}
	n := int(c.delta.depth())
	if n < g.resealMin || float64(n) <= g.resealFrac*float64(len(c.neighbors)) {
		return
	}
	g.scheduleReseal(key, l)
}

// scheduleReseal claims the family's reseal flag and hands the rebuild to
// the injected executor; with none (or a saturated pool) it runs inline on
// the calling goroutine.
func (g *Graph) scheduleReseal(key AdjKey, l *AdjList) {
	if !l.resealing.CompareAndSwap(false, true) {
		return
	}
	task := func() { g.resealFamily(key, l) }
	if g.resealSubmit == nil || !g.resealSubmit(task) {
		task()
	}
}

// resealFamily rebuilds one family's sorted image (Seal excludes writers
// via wmu; readers keep the old image until the atomic swap) and rebases
// the statistics snapshot with the family's fresh degree summary.
func (g *Graph) resealFamily(key AdjKey, l *AdjList) {
	start := time.Now()
	l.Seal()
	l.resealing.Store(false)
	g.resealCount.Add(1)
	g.resealNanos.Add(int64(time.Since(start)))
	if c := l.snap.Load(); c != nil {
		g.rebaseStats(key, c)
	}
}

// rebaseStats republishes the statistics snapshot with one family's degree
// summary recomputed from its freshly sealed image, under a bumped epoch —
// the overlay-phase alternative to dropping the snapshot. No-op while no
// snapshot is published (bulk phase, or after overlay-disabled mutations).
//
//geslint:seal reseal publishes the rebased statistics snapshot under a fresh epoch
func (g *Graph) rebaseStats(key AdjKey, c *csr) {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	cur := g.statsSnap.Load()
	if cur == nil {
		return
	}
	var acc stats.FamilyAcc
	for v := 0; v+1 < len(c.offsets); v++ {
		acc.Add(int(c.offsets[v+1] - c.offsets[v]))
	}
	fk := stats.FamKey{Src: key.Src, Et: key.Et, Dst: key.Dst, Dir: key.Dir}
	g.statsSnap.Store(stats.Rebase(cur, g.statsEpoch.Add(1), fk, acc.Family()))
	g.statsStale.Store(0)
}

// OverlayFamilyStats describes one family's delta overlay for the /stats
// endpoint.
type OverlayFamilyStats struct {
	Key           AdjKey
	Sealed        bool
	SealedEntries int     // neighbor entries in the published image
	Inserts       int64   // live delta insert entries
	Tombstones    int64   // tombstoned sealed positions
	DeltaFraction float64 // overlay depth / sealed entries
}

// OverlayStats aggregates delta-overlay and reseal gauges across families.
type OverlayStats struct {
	Families         int // adjacency families
	Sealed           int // families with a published image
	WithDelta        int // sealed families with a non-empty delta
	Inserts          int64
	Tombstones       int64
	MaxDeltaFraction float64
	Reseals          int64         // background reseals completed
	ResealTime       time.Duration // total wall time spent resealing
	StatsStale       int64         // mutations since the last stats publication
	StatsEpoch       uint64
}

// deltaFraction is the overlay depth relative to the sealed entry count
// (against max(entries,1) so tiny families still report pressure).
func deltaFraction(depth int64, sealedEntries int) float64 {
	if sealedEntries < 1 {
		sealedEntries = 1
	}
	return float64(depth) / float64(sealedEntries)
}

// Overlay reports the aggregate overlay gauges. Safe under concurrent
// mutation — it reads only atomics.
func (g *Graph) Overlay() OverlayStats {
	o := OverlayStats{
		Reseals:    g.resealCount.Load(),
		ResealTime: time.Duration(g.resealNanos.Load()),
		StatsStale: g.statsStale.Load(),
		StatsEpoch: g.StatsEpoch(),
	}
	for _, l := range g.fams.Load().adj {
		o.Families++
		c := l.snap.Load()
		if c == nil {
			continue
		}
		o.Sealed++
		ins, tombs := c.delta.nIns.Load(), c.delta.nTombs.Load()
		if ins+tombs > 0 {
			o.WithDelta++
		}
		o.Inserts += ins
		o.Tombstones += tombs
		if f := deltaFraction(ins+tombs, len(c.neighbors)); f > o.MaxDeltaFraction {
			o.MaxDeltaFraction = f
		}
	}
	return o
}

// OverlayFamilies reports per-family overlay depth in deterministic key
// order. Safe under concurrent mutation.
func (g *Graph) OverlayFamilies() []OverlayFamilyStats {
	adj := g.fams.Load().adj
	out := make([]OverlayFamilyStats, 0, len(adj))
	for key, l := range adj {
		fs := OverlayFamilyStats{Key: key}
		if c := l.snap.Load(); c != nil {
			fs.Sealed = true
			fs.SealedEntries = len(c.neighbors)
			fs.Inserts = c.delta.nIns.Load()
			fs.Tombstones = c.delta.nTombs.Load()
			fs.DeltaFraction = deltaFraction(fs.Inserts+fs.Tombstones, fs.SealedEntries)
		}
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Et != b.Et {
			return a.Et < b.Et
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Dir < b.Dir
	})
	return out
}
