package storage

import (
	"fmt"
	"testing"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// TestRemoveKeepsEdgePropsAligned interleaves appends (forcing slot
// relocations) with removals and asserts the edge-property columns stay
// aligned with the adjacency array throughout: every surviving neighbor must
// carry the property value it was inserted with.
func TestRemoveKeepsEdgePropsAligned(t *testing.T) {
	g, person, city, livesIn := twoLabelGraph(t)
	p, _ := g.AddVertex(person, 1)
	const n = 40
	cities := make([]vector.VID, n)
	for i := 0; i < n; i++ {
		c, err := g.AddVertex(city, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		cities[i] = c
		// since == external id, so alignment is checkable per neighbor.
		if err := g.AddEdge(livesIn, p, c, vector.Date(int64(100+i))); err != nil {
			t.Fatal(err)
		}
		// Delete every third edge as we go, so removals hit slots both
		// before and after relocations.
		if i%3 == 2 {
			if !g.DeleteEdge(livesIn, p, cities[i-1]) {
				t.Fatalf("delete of %d failed", cities[i-1])
			}
		}
	}
	want := make(map[vector.VID]int64)
	for i, c := range cities {
		want[c] = int64(100 + i)
	}
	for i := 2; i < n; i += 3 {
		delete(want, cities[i-1])
	}
	seen := 0
	for _, seg := range g.Neighbors(nil, p, livesIn, catalog.Out, city, true) {
		for k, v := range seg.VIDs {
			wv, ok := want[v]
			if !ok {
				t.Fatalf("deleted neighbor %d still present", v)
			}
			if seg.PropI64[0][k] != wv {
				t.Fatalf("edge prop misaligned after remove: vid %d since %d want %d",
					v, seg.PropI64[0][k], wv)
			}
			seen++
		}
	}
	if seen != len(want) {
		t.Fatalf("neighbors = %d, want %d", seen, len(want))
	}
}

// TestCompactReclaimsDeadSlots drives enough relocations to cross the dead
// fraction threshold, compacts, and verifies (a) the dead count drops to
// zero, (b) topology and aligned edge properties survive byte-identically,
// and (c) further appends after compaction still work.
func TestCompactReclaimsDeadSlots(t *testing.T) {
	g, person, city, livesIn := twoLabelGraph(t)
	const fanout = 33 // past several slot doublings
	persons := make([]vector.VID, 8)
	for i := range persons {
		persons[i], _ = g.AddVertex(person, int64(i+1))
	}
	cities := make([]vector.VID, fanout)
	for i := range cities {
		cities[i], _ = g.AddVertex(city, int64(100+i))
	}
	for _, p := range persons {
		for i, c := range cities {
			if err := g.AddEdge(livesIn, p, c, vector.Date(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	slots, dead := g.AdjSlotStats()
	if dead == 0 {
		t.Fatal("expected dead slots after repeated doubling")
	}
	if slots == 0 {
		t.Fatal("expected live slot accounting")
	}
	if n := g.CompactAdjacency(); n == 0 {
		t.Fatalf("no family compacted (dead=%d of %d)", dead, slots)
	}
	if _, dead := g.AdjSlotStats(); dead != 0 {
		t.Fatalf("dead slots after compact = %d", dead)
	}
	for _, p := range persons {
		total := 0
		for _, seg := range g.Neighbors(nil, p, livesIn, catalog.Out, city, true) {
			for k, v := range seg.VIDs {
				if seg.PropI64[0][k] != int64(v-cities[0]) {
					t.Fatalf("edge prop misaligned after compact: vid %d since %d", v, seg.PropI64[0][k])
				}
				total++
			}
		}
		if total != fanout {
			t.Fatalf("neighbors after compact = %d, want %d", total, fanout)
		}
	}
	// The compacted layout must keep accepting appends.
	extra, _ := g.AddVertex(city, 999)
	if err := g.AddEdge(livesIn, persons[0], extra, vector.Date(999)); err != nil {
		t.Fatal(err)
	}
	if got := g.Degree(persons[0], livesIn, catalog.Out, city); got != fanout+1 {
		t.Fatalf("degree after post-compact append = %d", got)
	}
}

// gatherFixture builds a graph with enough persons to span several zones and
// two labels so cross-label gathers leave foreign rows untouched.
func gatherFixture(t *testing.T, n int) (*Graph, catalog.LabelID, catalog.LabelID) {
	t.Helper()
	cat := catalog.New()
	person, _ := cat.AddLabel("Person",
		catalog.PropDef{Name: "name", Kind: vector.KindString},
		catalog.PropDef{Name: "age", Kind: vector.KindInt64})
	city, _ := cat.AddLabel("City",
		catalog.PropDef{Name: "name", Kind: vector.KindString})
	g := NewGraph(cat)
	for i := 0; i < n; i++ {
		if _, err := g.AddVertex(person, int64(i+1),
			vector.String_(fmt.Sprintf("p%d", i%7)), vector.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := g.AddVertex(city, int64(i+1), vector.String_(fmt.Sprintf("c%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return g, person, city
}

// TestGatherPropsMatchesScalar compares the bulk gather against per-row Prop
// reads over a mixed-label VID column, for an int column and a
// dictionary-encoded string column.
func TestGatherPropsMatchesScalar(t *testing.T) {
	g, person, city := gatherFixture(t, 50)
	vids := append(append([]vector.VID{}, g.ScanLabel(city)...), g.ScanLabel(person)...)

	age := vector.NewColumn("age", vector.KindInt64)
	age.Grow(len(vids))
	g.GatherProps(vids, person, 1, nil, age)

	name := vector.NewDictColumn("name", g.PropDict(person, 0))
	name.Grow(len(vids))
	g.GatherProps(vids, person, 0, nil, name)

	for i, v := range vids {
		if g.LabelOf(v) != person {
			if age.Int64s()[i] != 0 || name.StringAt(i) != "" {
				t.Fatalf("row %d (foreign label) not left at typed zero", i)
			}
			continue
		}
		if want := g.Prop(v, 1).I; age.Int64s()[i] != want {
			t.Fatalf("age[%d] = %d, want %d", i, age.Int64s()[i], want)
		}
		if want := g.Prop(v, 0).S; name.StringAt(i) != want {
			t.Fatalf("name[%d] = %q, want %q", i, name.StringAt(i), want)
		}
	}

	// Selection-masked gather leaves cleared rows untouched.
	var sel vector.Bitset
	sel.Resize(len(vids), true)
	sel.Clear(len(vids) - 1)
	masked := vector.NewColumn("age", vector.KindInt64)
	masked.Grow(len(vids))
	g.GatherProps(vids, person, 1, &sel, masked)
	if masked.Int64s()[len(vids)-1] != 0 {
		t.Fatal("masked row was gathered")
	}
}

// TestGatherExtIDsMatchesScalar checks the external-ID bulk path.
func TestGatherExtIDsMatchesScalar(t *testing.T) {
	g, person, _ := gatherFixture(t, 20)
	vids := g.ScanLabel(person)
	out := make([]int64, len(vids))
	g.GatherExtIDs(vids, nil, out)
	for i, v := range vids {
		if out[i] != g.ExtID(v) {
			t.Fatalf("ext[%d] = %d, want %d", i, out[i], g.ExtID(v))
		}
	}
}

// TestShareScanColumn verifies the zero-copy tier engages exactly when the
// VID column is the label's scan order.
func TestShareScanColumn(t *testing.T) {
	g, person, _ := gatherFixture(t, 30)
	vids := append([]vector.VID{}, g.ScanLabel(person)...)
	if col := g.ShareScanColumn(person, 1, vids); col == nil {
		t.Fatal("scan-aligned share refused")
	}
	vids[0], vids[1] = vids[1], vids[0]
	if col := g.ShareScanColumn(person, 1, vids); col != nil {
		t.Fatal("permuted VIDs must not share")
	}
	if col := g.ShareScanColumn(person, 1, vids[:10]); col != nil {
		t.Fatal("prefix must not share")
	}
}

// TestPruneZones spans multiple zones with a monotone column and checks that
// zones outside the range are pruned and their candidate bits cleared.
func TestPruneZones(t *testing.T) {
	n := 3*vector.ZoneSize + 100
	g, person, _ := gatherFixture(t, n)
	vids := g.ScanLabel(person)
	var sel vector.Bitset
	sel.Resize(len(vids), true)
	// age == row index; [0, ZoneSize) satisfies only zone 0.
	pruned, total := g.PruneZones(vids, person, 1, 0, int64(vector.ZoneSize-1), &sel)
	if total != 4 {
		t.Fatalf("total zones = %d, want 4", total)
	}
	if pruned != 3 {
		t.Fatalf("pruned zones = %d, want 3", pruned)
	}
	for i := range vids {
		want := i < vector.ZoneSize
		if sel.Get(i) != want {
			t.Fatalf("sel[%d] = %v, want %v", i, sel.Get(i), want)
		}
	}
}
