package storage

import (
	"sort"
	"testing"
	"testing/quick"

	"ges/internal/catalog"
	"ges/internal/vector"
)

func twoLabelGraph(t *testing.T) (*Graph, catalog.LabelID, catalog.LabelID, catalog.EdgeTypeID) {
	t.Helper()
	cat := catalog.New()
	person, err := cat.AddLabel("Person",
		catalog.PropDef{Name: "name", Kind: vector.KindString},
		catalog.PropDef{Name: "age", Kind: vector.KindInt64})
	if err != nil {
		t.Fatal(err)
	}
	city, err := cat.AddLabel("City",
		catalog.PropDef{Name: "name", Kind: vector.KindString})
	if err != nil {
		t.Fatal(err)
	}
	livesIn, err := cat.AddEdgeType("LIVES_IN",
		catalog.PropDef{Name: "since", Kind: vector.KindDate})
	if err != nil {
		t.Fatal(err)
	}
	return NewGraph(cat), person, city, livesIn
}

func TestVertexRoundTrip(t *testing.T) {
	g, person, _, _ := twoLabelGraph(t)
	v, err := g.AddVertex(person, 42, vector.String_("alice"), vector.Int64(30))
	if err != nil {
		t.Fatal(err)
	}
	if g.LabelOf(v) != person {
		t.Fatalf("LabelOf = %d", g.LabelOf(v))
	}
	if g.ExtID(v) != 42 {
		t.Fatalf("ExtID = %d", g.ExtID(v))
	}
	if got, ok := g.VertexByExt(person, 42); !ok || got != v {
		t.Fatalf("VertexByExt = %d, %v", got, ok)
	}
	if got := g.Prop(v, 0); got.S != "alice" {
		t.Fatalf("Prop(name) = %v", got)
	}
	if got := g.Prop(v, 1); got.I != 30 {
		t.Fatalf("Prop(age) = %v", got)
	}
	if _, ok := g.VertexByExt(person, 43); ok {
		t.Fatal("phantom vertex")
	}
}

func TestDuplicateExternalID(t *testing.T) {
	g, person, _, _ := twoLabelGraph(t)
	if _, err := g.AddVertex(person, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddVertex(person, 1); err == nil {
		t.Fatal("duplicate external id must fail")
	}
}

func TestMissingPropsStoreTypedZeros(t *testing.T) {
	g, person, _, _ := twoLabelGraph(t)
	v, err := g.AddVertex(person, 1) // no props supplied
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Prop(v, 0); got.Kind != vector.KindString || got.S != "" {
		t.Fatalf("zero string prop = %#v", got)
	}
	if got := g.Prop(v, 1); got.Kind != vector.KindInt64 || got.I != 0 {
		t.Fatalf("zero int prop = %#v", got)
	}
}

func TestEdgesAndNeighbors(t *testing.T) {
	g, person, city, livesIn := twoLabelGraph(t)
	p1, _ := g.AddVertex(person, 1, vector.String_("a"), vector.Int64(1))
	p2, _ := g.AddVertex(person, 2, vector.String_("b"), vector.Int64(2))
	c1, _ := g.AddVertex(city, 100, vector.String_("rome"))
	c2, _ := g.AddVertex(city, 101, vector.String_("oslo"))

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(livesIn, p1, c1, vector.Date(10)))
	must(g.AddEdge(livesIn, p2, c1, vector.Date(20)))
	must(g.AddEdge(livesIn, p2, c2, vector.Date(30)))

	collect := func(src vector.VID, dir catalog.Direction) []vector.VID {
		var out []vector.VID
		for _, seg := range g.Neighbors(nil, src, livesIn, dir, AnyLabel, false) {
			out = append(out, seg.VIDs...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	if got := collect(p2, catalog.Out); len(got) != 2 || got[0] != c1 || got[1] != c2 {
		t.Fatalf("p2 out = %v", got)
	}
	if got := collect(c1, catalog.In); len(got) != 2 || got[0] != p1 || got[1] != p2 {
		t.Fatalf("c1 in = %v", got)
	}
	if g.Degree(p2, livesIn, catalog.Out, AnyLabel) != 2 {
		t.Fatal("degree p2")
	}
	if g.Degree(c1, livesIn, catalog.In, city) != 0 {
		t.Fatal("degree with wrong dst label should be 0")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}

	// Edge properties aligned with neighbors.
	segs := g.Neighbors(nil, p2, livesIn, catalog.Out, city, true)
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %d", len(segs))
	}
	for i, n := range segs[0].VIDs {
		since := segs[0].PropI64[0][i]
		want := int64(20)
		if n == c2 {
			want = 30
		}
		if since != want {
			t.Fatalf("edge prop for neighbor %d = %d, want %d", n, since, want)
		}
	}
}

func TestBothDirection(t *testing.T) {
	g, person, _, _ := twoLabelGraph(t)
	knows, _ := g.Catalog().AddEdgeType("KNOWS")
	p1, _ := g.AddVertex(person, 1)
	p2, _ := g.AddVertex(person, 2)
	if err := g.AddEdge(knows, p1, p2); err != nil {
		t.Fatal(err)
	}
	if got := g.Degree(p1, knows, catalog.Both, AnyLabel); got != 1 {
		t.Fatalf("both-degree p1 = %d (out edge only)", got)
	}
	if got := g.Degree(p2, knows, catalog.Both, AnyLabel); got != 1 {
		t.Fatalf("both-degree p2 = %d (in edge only)", got)
	}
}

func TestSlotRegrowthKeepsSegmentsValid(t *testing.T) {
	g, person, city, livesIn := twoLabelGraph(t)
	p, _ := g.AddVertex(person, 1)
	// Force many relocations of p's slot.
	const n = 100
	cities := make([]vector.VID, n)
	for i := 0; i < n; i++ {
		cities[i], _ = g.AddVertex(city, int64(1000+i))
	}
	// Hold a view from before the growth: it must keep old data.
	if err := g.AddEdge(livesIn, p, cities[0], vector.Date(0)); err != nil {
		t.Fatal(err)
	}
	early := g.Neighbors(nil, p, livesIn, catalog.Out, city, false)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(livesIn, p, cities[i], vector.Date(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if len(early) != 1 || len(early[0].VIDs) != 1 || early[0].VIDs[0] != cities[0] {
		t.Fatal("pre-growth segment view corrupted by relocation")
	}
	segs := g.Neighbors(nil, p, livesIn, catalog.Out, city, true)
	total := 0
	for _, s := range segs {
		total += len(s.VIDs)
		for i, v := range s.VIDs {
			// since == index of the city; verifies props moved with VIDs.
			if s.PropI64[0][i] != int64(v-cities[0]) {
				t.Fatalf("edge prop misaligned after regrowth: vid %d since %d", v, s.PropI64[0][i])
			}
		}
	}
	if total != n {
		t.Fatalf("neighbors after regrowth = %d, want %d", total, n)
	}
	if g.DeadSlots() == 0 {
		t.Fatal("regrowth should have abandoned slots")
	}
}

func TestDeleteEdge(t *testing.T) {
	g, person, city, livesIn := twoLabelGraph(t)
	p, _ := g.AddVertex(person, 1)
	c1, _ := g.AddVertex(city, 100)
	c2, _ := g.AddVertex(city, 101)
	_ = g.AddEdge(livesIn, p, c1, vector.Date(1))
	_ = g.AddEdge(livesIn, p, c2, vector.Date(2))
	if !g.DeleteEdge(livesIn, p, c1) {
		t.Fatal("delete existing edge failed")
	}
	if g.DeleteEdge(livesIn, p, c1) {
		t.Fatal("double delete should fail")
	}
	segs := g.Neighbors(nil, p, livesIn, catalog.Out, city, true)
	if len(segs) != 1 || len(segs[0].VIDs) != 1 || segs[0].VIDs[0] != c2 {
		t.Fatalf("neighbors after delete = %v", segs)
	}
	if segs[0].PropI64[0][0] != 2 {
		t.Fatal("edge prop not moved with compaction")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

// Property: adjacency round-trip — whatever set of edges we insert per
// source, Neighbors returns exactly that multiset, regardless of insertion
// interleaving (which exercises slot relocation).
func TestAdjacencyRoundTripProperty(t *testing.T) {
	f := func(edges []uint8) bool {
		g, person, city, livesIn := twoLabelGraph(t)
		var persons [4]vector.VID
		var cities [8]vector.VID
		for i := range persons {
			persons[i], _ = g.AddVertex(person, int64(i))
		}
		for i := range cities {
			cities[i], _ = g.AddVertex(city, int64(100+i))
		}
		want := make(map[vector.VID][]vector.VID)
		for _, e := range edges {
			src := persons[int(e)%4]
			dst := cities[int(e/4)%8]
			if err := g.AddEdge(livesIn, src, dst, vector.Date(int64(e))); err != nil {
				return false
			}
			want[src] = append(want[src], dst)
		}
		for _, src := range persons {
			var got []vector.VID
			for _, seg := range g.Neighbors(nil, src, livesIn, catalog.Out, city, false) {
				got = append(got, seg.VIDs...)
			}
			if len(got) != len(want[src]) {
				return false
			}
			sortVIDs(got)
			w := append([]vector.VID(nil), want[src]...)
			sortVIDs(w)
			for i := range w {
				if got[i] != w[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sortVIDs(v []vector.VID) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

func TestScanLabelAndCounts(t *testing.T) {
	g, person, city, _ := twoLabelGraph(t)
	for i := 0; i < 5; i++ {
		if _, err := g.AddVertex(person, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddVertex(city, 100); err != nil {
		t.Fatal(err)
	}
	if got := len(g.ScanLabel(person)); got != 5 {
		t.Fatalf("ScanLabel(person) = %d", got)
	}
	if g.CountLabel(city) != 1 || g.CountLabel(person) != 5 {
		t.Fatal("CountLabel wrong")
	}
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.MemBytes() <= 0 {
		t.Fatal("MemBytes should be positive")
	}
}

func TestPoolRoundTrip(t *testing.T) {
	p := NewPool()
	buf := p.GetVIDs(100)
	if cap(buf) < 100 {
		t.Fatalf("cap = %d", cap(buf))
	}
	buf = append(buf, 1, 2, 3)
	p.PutVIDs(buf)
	buf2 := p.GetVIDs(50)
	if len(buf2) != 0 {
		t.Fatal("pooled buffer not reset")
	}
	gets, puts := p.Stats()
	if gets != 2 || puts != 1 {
		t.Fatalf("stats = %d/%d", gets, puts)
	}
	// Oversized requests bypass the classes but still work.
	big := p.GetVIDs(1 << 22)
	if cap(big) < 1<<22 {
		t.Fatal("big alloc failed")
	}
	p.PutVIDs(big)
}
