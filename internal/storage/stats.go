package storage

import (
	"time"

	"ges/internal/catalog"
	"ges/internal/stats"
)

// sealStats derives the planner's statistics snapshot in one pass over the
// freshly sealed graph: label cardinalities from the property tables,
// per-family degree histograms from the adjacency slot descriptors, and
// per-column selectivity summaries rolled up from the zone maps and string
// dictionaries the gather path already maintains. Published behind the same
// atomic-pointer discipline as the CSR: any base mutation clears it, the
// next SealCSR rebuilds it under a bumped epoch.
//
//geslint:seal publishes the rebuilt statistics snapshot under a fresh epoch
func (g *Graph) sealStats() {
	start := time.Now()
	b := stats.NewBuilder(g.statsEpoch.Add(1))
	for label, t := range g.tables {
		if t == nil {
			continue
		}
		b.Label(catalog.LabelID(label), len(t.vids))
		for i, c := range t.cols {
			b.Column(
				stats.ColKey{Label: catalog.LabelID(label), Prop: t.defs[i].Name},
				stats.SummarizeColumn(c),
			)
		}
	}
	for key, l := range g.adj {
		fk := stats.FamKey{Src: key.Src, Et: key.Et, Dst: key.Dst, Dir: key.Dir}
		for i := range l.meta {
			b.AddDegree(fk, int(l.meta[i].len))
		}
	}
	g.statsSnap.Store(b.Finish(time.Since(start)))
}

// Stats returns the current statistics snapshot, or nil while invalidated
// (after any base mutation, before the next SealCSR).
func (g *Graph) Stats() *stats.Snapshot { return g.statsSnap.Load() }

// StatsEpoch returns the epoch of the current snapshot, or 0 while
// invalidated. The service folds it into plan-cache keys.
func (g *Graph) StatsEpoch() uint64 {
	if s := g.statsSnap.Load(); s != nil {
		return s.Epoch
	}
	return 0
}

// invalidateStats drops the published snapshot. Called from every
// base-graph mutation alongside the per-family CSR invalidation.
//
//geslint:seal base mutation clears the published statistics (publishes nil)
func (g *Graph) invalidateStats() { g.statsSnap.Store(nil) }
