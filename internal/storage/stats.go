package storage

import (
	"time"

	"ges/internal/catalog"
	"ges/internal/stats"
)

// sealStats derives the planner's statistics snapshot in one pass over the
// freshly sealed graph: label cardinalities from the property tables,
// per-family degree histograms from the adjacency slot descriptors, and
// per-column selectivity summaries rolled up from the zone maps and string
// dictionaries the gather path already maintains. Published behind the same
// atomic-pointer discipline as the CSR: bulk-phase (or overlay-disabled)
// mutations clear it and the next SealCSR rebuilds it under a bumped epoch,
// while overlay-phase mutations leave it published and background reseals
// rebase it family by family (reseal.go). Runs on the single-writer bulk
// path — it reads the live slot descriptors unlocked.
//
//geslint:seal publishes the rebuilt statistics snapshot under a fresh epoch
func (g *Graph) sealStats() {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	start := time.Now()
	b := stats.NewBuilder(g.statsEpoch.Add(1))
	for label, t := range g.tables {
		if t == nil {
			continue
		}
		b.Label(catalog.LabelID(label), len(t.vids))
		for i, c := range t.cols {
			b.Column(
				stats.ColKey{Label: catalog.LabelID(label), Prop: t.defs[i].Name},
				stats.SummarizeColumn(c),
			)
		}
	}
	for key, l := range g.fams.Load().adj {
		fk := stats.FamKey{Src: key.Src, Et: key.Et, Dst: key.Dst, Dir: key.Dir}
		for i := range l.meta {
			b.AddDegree(fk, int(l.meta[i].len))
		}
	}
	g.statsSnap.Store(b.Finish(time.Since(start)))
	g.statsStale.Store(0)
}

// Stats returns the current statistics snapshot, or nil while invalidated
// (after a bulk-phase or overlay-disabled mutation, before the next
// SealCSR). Overlay-phase mutations leave the snapshot published — mildly
// stale between reseals — so cost-based planning never degrades to the
// syntactic fallback under sustained writes.
func (g *Graph) Stats() *stats.Snapshot { return g.statsSnap.Load() }

// StatsEpoch returns the epoch of the current snapshot, or 0 while
// invalidated. The service folds it into plan-cache keys; background
// reseals bump it monotonically, so cached plans shaped for pre-reseal
// cardinalities retire on the next lookup.
func (g *Graph) StatsEpoch() uint64 {
	if s := g.statsSnap.Load(); s != nil {
		return s.Epoch
	}
	return 0
}

// noteMutation records a base mutation against the statistics snapshot.
// Before the first SealCSR, or with the overlay disabled, the snapshot is
// dropped wholesale (the pre-overlay behavior); overlay-phase mutations
// only bump the staleness gauge — the snapshot stays published and
// background reseals rebase the families that actually drift.
//
//geslint:seal bulk-phase mutation clears the published statistics (publishes nil)
func (g *Graph) noteMutation() {
	if !g.overlayEnabled() {
		g.statsSnap.Store(nil)
		return
	}
	g.statsStale.Add(1)
}
