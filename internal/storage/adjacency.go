// Package storage implements the GES graph storage layer (§5): adjacency
// lists held as an array-of-arrays (adjMeta indexing segments of a large
// adjArray), columnar vertex property tables, edge property arrays aligned
// with the adjacency array, dense internal vertex IDs with external-ID maps,
// and a size-classed memory pool supporting the copy-on-write transaction
// layer.
//
// The store is optimized for the read-dominant workloads the paper targets:
// Neighbors hands out (pointer,length) views of adjArray segments that the
// executor's pointer-based join consumes without copying. Topology updates
// use the paper's "allocate larger space once insertions take all slots"
// scheme: a full slot is relocated to the tail of adjArray with doubled
// capacity and the old region is marked dead.
package storage

import (
	"sync"
	"sync/atomic"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// AdjKey identifies one adjacency list family, exactly as in §5: the hash
// table key is the tuple (srcLabel, edgeLabel, dstLabel, direction).
type AdjKey struct {
	Src catalog.LabelID
	Et  catalog.EdgeTypeID
	Dst catalog.LabelID
	Dir catalog.Direction
}

// adjMeta is the per-vertex slot descriptor: where the vertex's neighbor
// segment lives in adjArray and how much of it is used.
type adjMeta struct {
	off uint32 // start index in arr
	len uint32 // used entries
	cap uint32 // allocated entries (len <= cap)
}

// AdjList is one adjacency family. meta is indexed by *global* VID (the
// paper's adjMeta of size |V|); arr is the shared neighbor array; per-edge
// property columns run parallel to arr.
//
// Lock order (checked by geslint rule R2): mutators hold wmu and publish
// delta-run replacements under the delta's map lock (adjDelta.mu); family
// creation holds Graph.famMu and reads the catalog's edge schemas
// (Catalog.mu is a leaf read lock no catalog path nests further). Neither
// inner lock ever nests with the other or back into an outer one.
//
//geslint:lockorder AdjList.wmu < adjDelta.mu
//geslint:lockorder Graph.famMu < Catalog.mu
type AdjList struct {
	meta []adjMeta
	arr  []vector.VID

	// Edge properties, aligned with arr. propKinds comes from the catalog
	// schema of the edge type; each present kind uses the matching slice.
	propKinds []vector.Kind
	propI64   [][]int64
	propF64   [][]float64
	propStr   [][]string

	deadSlots int // entries abandoned by slot relocation

	// wmu serializes every mutator of the family — insert/del, Compact,
	// and the background reseal's rebuild. Readers never take it: sealed
	// reads go through snap (plus its delta's own synchronization), and
	// live-slot reads only happen while the family is single-writer by
	// contract (bulk load, or the -no-overlay ablation).
	wmu sync.Mutex

	// resealing is the claim flag for the family's background reseal: set
	// by CompareAndSwap when a rebuild is scheduled, cleared when it
	// publishes, so at most one reseal per family is ever in flight.
	resealing atomic.Bool

	// snap is the sealed CSR image (csr.go), carrying its delta overlay;
	// nil while unsealed or after an overlay-disabled mutation invalidated
	// it. Readers load it once per operation so a concurrent re-seal can
	// never mix layouts within one Segment.
	snap atomic.Pointer[csr] //geslint:atomicptr
}

func newAdjList(propDefs []catalog.PropDef) *AdjList {
	a := &AdjList{}
	for _, p := range propDefs {
		a.propKinds = append(a.propKinds, p.Kind)
		a.propI64 = append(a.propI64, nil)
		a.propF64 = append(a.propF64, nil)
		a.propStr = append(a.propStr, nil)
	}
	return a
}

// ensure makes meta addressable for vid.
func (a *AdjList) ensure(vid vector.VID) {
	for int(vid) >= len(a.meta) {
		a.meta = append(a.meta, adjMeta{})
	}
}

// growProps extends every edge-property array to match len(a.arr) with one
// bulk zero-filled extension per column.
func (a *AdjList) growProps(n int) {
	for i, k := range a.propKinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			if d := n - len(a.propI64[i]); d > 0 {
				a.propI64[i] = append(a.propI64[i], make([]int64, d)...)
			}
		case vector.KindFloat64:
			if d := n - len(a.propF64[i]); d > 0 {
				a.propF64[i] = append(a.propF64[i], make([]float64, d)...)
			}
		case vector.KindString:
			if d := n - len(a.propStr[i]); d > 0 {
				a.propStr[i] = append(a.propStr[i], make([]string, d)...)
			}
		}
	}
}

// insert routes one edge append through the overlay policy. While a sealed
// image is published and the overlay is enabled, the mutation lands in both
// the live arrays (the canonical store the next reseal rebuilds from) and
// the image's delta, so readers keep the sealed fast paths; with the
// overlay disabled the image is invalidated wholesale (the pre-overlay
// behavior, kept as the -no-overlay ablation); unsealed families take the
// plain bulk path.
//
//geslint:seal overlay-disabled topology change invalidates the CSR snapshot (publishes nil)
func (a *AdjList) insert(src, dst vector.VID, props []vector.Value, overlay bool) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if c := a.snap.Load(); c != nil {
		if overlay {
			c.delta.insert(src, dst, props)
			a.append(src, dst, props)
			return
		}
		a.snap.Store(nil)
	}
	a.append(src, dst, props)
}

// del routes one edge removal through the overlay policy (see insert). The
// delta picks the occurrence to hide and reports its property tuple, and
// the live removal targets the matching tuple, keeping both sides' content
// in lockstep.
//
//geslint:seal overlay-disabled topology change invalidates the CSR snapshot (publishes nil)
func (a *AdjList) del(src, dst vector.VID, overlay bool) bool {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if c := a.snap.Load(); c != nil {
		if overlay {
			tuple, ok := c.delta.remove(c, src, dst)
			if !ok {
				return false
			}
			a.removeMatching(src, dst, tuple)
			return true
		}
		a.snap.Store(nil)
	}
	return a.remove(src, dst)
}

// append adds dst (with optional edge property values) to src's slot,
// relocating the slot with doubled capacity when full. Callers go through
// insert (or the single-writer bulk path) — append itself never touches
// the published snapshot.
func (a *AdjList) append(src, dst vector.VID, props []vector.Value) {
	a.ensure(src)
	m := &a.meta[src]
	if m.len == m.cap {
		// Relocate to tail with doubled capacity (min 4).
		newCap := m.cap * 2
		if newCap < 4 {
			newCap = 4
		}
		newOff := uint32(len(a.arr))
		a.arr = append(a.arr, make([]vector.VID, newCap)...)
		a.growProps(len(a.arr))
		copy(a.arr[newOff:], a.arr[m.off:m.off+m.len])
		for i, k := range a.propKinds {
			switch k {
			case vector.KindInt64, vector.KindDate:
				copy(a.propI64[i][newOff:], a.propI64[i][m.off:m.off+m.len])
			case vector.KindFloat64:
				copy(a.propF64[i][newOff:], a.propF64[i][m.off:m.off+m.len])
			case vector.KindString:
				copy(a.propStr[i][newOff:], a.propStr[i][m.off:m.off+m.len])
			}
		}
		a.deadSlots += int(m.cap)
		m.off, m.cap = newOff, newCap
	}
	pos := m.off + m.len
	a.arr[pos] = dst
	for i, k := range a.propKinds {
		var v vector.Value
		if i < len(props) {
			v = props[i]
		}
		switch k {
		case vector.KindInt64, vector.KindDate:
			a.propI64[i][pos] = v.I
		case vector.KindFloat64:
			a.propF64[i][pos] = v.F
		case vector.KindString:
			a.propStr[i][pos] = v.S
		}
	}
	m.len++
}

// compactDeadFraction is the dead-entry share of arr above which Compact
// actually rebuilds the family.
const compactDeadFraction = 0.25

// Compact rebuilds arr and the aligned edge-property columns when more than
// compactDeadFraction of the entries are dead regions abandoned by slot
// relocation. Slots keep their allocated capacity (the paper's doubled-slot
// headroom), they are just packed back to back, preserving within-slot
// entry order — the rebuild changes the layout, never the content, so a
// published CSR image (and its delta, whose positions reference the image,
// not arr) stays valid throughout. Live-slot readers must not run
// concurrently (outstanding views of the old array remain valid — the old
// memory is simply dropped); sealed readers are unaffected. Returns true
// on rebuild.
func (a *AdjList) Compact() bool {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if len(a.arr) == 0 || float64(a.deadSlots) <= compactDeadFraction*float64(len(a.arr)) {
		return false
	}
	liveCap := 0
	for i := range a.meta {
		liveCap += int(a.meta[i].cap)
	}
	newArr := make([]vector.VID, liveCap)
	newI64 := make([][]int64, len(a.propI64))
	newF64 := make([][]float64, len(a.propF64))
	newStr := make([][]string, len(a.propStr))
	for i, k := range a.propKinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			newI64[i] = make([]int64, liveCap)
		case vector.KindFloat64:
			newF64[i] = make([]float64, liveCap)
		case vector.KindString:
			newStr[i] = make([]string, liveCap)
		}
	}
	off := uint32(0)
	for i := range a.meta {
		m := &a.meta[i]
		copy(newArr[off:off+m.len], a.arr[m.off:m.off+m.len])
		for p, k := range a.propKinds {
			switch k {
			case vector.KindInt64, vector.KindDate:
				copy(newI64[p][off:off+m.len], a.propI64[p][m.off:m.off+m.len])
			case vector.KindFloat64:
				copy(newF64[p][off:off+m.len], a.propF64[p][m.off:m.off+m.len])
			case vector.KindString:
				copy(newStr[p][off:off+m.len], a.propStr[p][m.off:m.off+m.len])
			}
		}
		m.off = off
		off += m.cap
	}
	a.arr = newArr
	a.propI64, a.propF64, a.propStr = newI64, newF64, newStr
	a.deadSlots = 0
	return true
}

// remove deletes the first occurrence of dst in src's slot by shifting the
// last live entry into its place (compacting mark-for-deletion). Callers
// go through del (or the single-writer bulk path).
func (a *AdjList) remove(src, dst vector.VID) bool {
	if int(src) >= len(a.meta) {
		return false
	}
	m := &a.meta[src]
	for i := m.off; i < m.off+m.len; i++ {
		if a.arr[i] == dst {
			a.removeAt(m, int(i))
			return true
		}
	}
	return false
}

// removeAt deletes entry i of slot m by shifting the last live entry into
// its place.
func (a *AdjList) removeAt(m *adjMeta, i int) {
	last := int(m.off + m.len - 1)
	a.arr[i] = a.arr[last]
	for p, k := range a.propKinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			a.propI64[p][i] = a.propI64[p][last]
		case vector.KindFloat64:
			a.propF64[p][i] = a.propF64[p][last]
		case vector.KindString:
			a.propStr[p][i] = a.propStr[p][last]
		}
	}
	m.len--
}

// removeMatching deletes the occurrence of dst in src's slot whose property
// tuple equals want. The overlay may tombstone a different duplicate than
// the slot-order scan would pick, so matching on the tuple keeps the live
// multiset identical to the merged view. Falls back to the first
// occurrence when no tuple matches (only reachable if the two sides ever
// diverged).
func (a *AdjList) removeMatching(src, dst vector.VID, want []vector.Value) bool {
	if len(a.propKinds) == 0 {
		return a.remove(src, dst)
	}
	if int(src) >= len(a.meta) {
		return false
	}
	m := &a.meta[src]
	match, firstAny := -1, -1
	for i := m.off; i < m.off+m.len; i++ {
		if a.arr[i] != dst {
			continue
		}
		if firstAny < 0 {
			firstAny = int(i)
		}
		if a.propsEqualAt(int(i), want) {
			match = int(i)
			break
		}
	}
	if match < 0 {
		match = firstAny
	}
	if match < 0 {
		return false
	}
	a.removeAt(m, match)
	return true
}

// propsEqualAt reports whether entry i's property tuple equals want
// (schema-position-aligned Values).
func (a *AdjList) propsEqualAt(i int, want []vector.Value) bool {
	for p, k := range a.propKinds {
		var v vector.Value
		if p < len(want) {
			v = want[p]
		}
		switch k {
		case vector.KindInt64, vector.KindDate:
			if a.propI64[p][i] != v.I {
				return false
			}
		case vector.KindFloat64:
			if a.propF64[p][i] != v.F {
				return false
			}
		case vector.KindString:
			if a.propStr[p][i] != v.S {
				return false
			}
		}
	}
	return true
}

// neighbors returns the live segment of src's slot as a view into arr.
func (a *AdjList) neighbors(src vector.VID) []vector.VID {
	if int(src) >= len(a.meta) {
		return nil
	}
	m := a.meta[src]
	return a.arr[m.off : m.off+m.len : m.off+m.len]
}

// degree returns the number of live neighbors of src.
func (a *AdjList) degree(src vector.VID) int {
	if int(src) >= len(a.meta) {
		return 0
	}
	return int(a.meta[src].len)
}

// edgePropI64 returns the int64/date edge-property segment aligned with
// neighbors(src) for property index p.
func (a *AdjList) edgePropI64(src vector.VID, p int) []int64 {
	if int(src) >= len(a.meta) {
		return nil
	}
	m := a.meta[src]
	return a.propI64[p][m.off : m.off+m.len : m.off+m.len]
}

func (a *AdjList) edgePropF64(src vector.VID, p int) []float64 {
	if int(src) >= len(a.meta) {
		return nil
	}
	m := a.meta[src]
	return a.propF64[p][m.off : m.off+m.len : m.off+m.len]
}

func (a *AdjList) edgePropStr(src vector.VID, p int) []string {
	if int(src) >= len(a.meta) {
		return nil
	}
	m := a.meta[src]
	return a.propStr[p][m.off : m.off+m.len : m.off+m.len]
}

// memBytes returns the approximate resident size of the adjacency family.
func (a *AdjList) memBytes() int {
	n := len(a.meta)*12 + len(a.arr)*4
	for i, k := range a.propKinds {
		switch k {
		case vector.KindInt64, vector.KindDate:
			n += len(a.propI64[i]) * 8
		case vector.KindFloat64:
			n += len(a.propF64[i]) * 8
		case vector.KindString:
			n += len(a.propStr[i]) * 16
			for _, s := range a.propStr[i] {
				n += len(s)
			}
		}
	}
	return n
}

// edgeCount returns the number of live edges in the family.
func (a *AdjList) edgeCount() int {
	n := 0
	for i := range a.meta {
		n += int(a.meta[i].len)
	}
	return n
}
