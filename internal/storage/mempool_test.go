package storage

import (
	"math/rand"
	"sync"
	"testing"

	"ges/internal/vector"
)

// TestPoolGetAlwaysFreshLength is the demotion property test: through
// randomized Get/append/Put cycles — including buffers grown by append to
// capacities that fall between size classes — every GetVIDs must return a
// zero-length buffer whose capacity satisfies the request. A buffer parked in
// a class it cannot fully serve, or returned with stale length, fails here.
func TestPoolGetAlwaysFreshLength(t *testing.T) {
	p := NewPool()
	rng := rand.New(rand.NewSource(42))
	var held [][]vector.VID
	for step := 0; step < 20000; step++ {
		switch rng.Intn(3) {
		case 0, 1:
			n := rng.Intn(1 << uint(3+rng.Intn(13))) // spans all classes and beyond
			buf := p.GetVIDs(n)
			if len(buf) != 0 {
				t.Fatalf("step %d: GetVIDs(%d) returned stale length %d", step, n, len(buf))
			}
			if cap(buf) < n {
				t.Fatalf("step %d: GetVIDs(%d) returned capacity %d", step, n, cap(buf))
			}
			// Grow past the requested size so the eventual Put sees an
			// off-class capacity and must demote.
			grow := rng.Intn(2 * (n + 1))
			for k := 0; k < grow; k++ {
				buf = append(buf, vector.VID(k))
			}
			held = append(held, buf)
		case 2:
			if len(held) == 0 {
				continue
			}
			i := rng.Intn(len(held))
			buf := held[i]
			held[i] = held[len(held)-1]
			held = held[:len(held)-1]
			p.PutVIDs(buf)
		}
	}
	gets, puts := p.Stats()
	if gets == 0 || puts == 0 {
		t.Fatalf("property test exercised nothing: gets=%d puts=%d", gets, puts)
	}
}

// TestPoolOffClassDemotion pins the mempool.go demotion rule directly: a
// buffer whose capacity lies strictly between two classes must be parked in
// the lower class, so a subsequent Get from that class still gets its full
// capacity guarantee.
func TestPoolOffClassDemotion(t *testing.T) {
	p := NewPool()
	// cap 100 sits between class 3 (64) and class 4 (128).
	buf := make([]vector.VID, 77, 100)
	p.PutVIDs(buf)
	// A class-4 request (65..128) must NOT be served by the cap-100 buffer.
	got := p.GetVIDs(128)
	if len(got) != 0 {
		t.Fatalf("stale length %d", len(got))
	}
	if cap(got) < 128 {
		t.Fatalf("demotion violated: Get(128) returned capacity %d", cap(got))
	}
	// A class-3 request may reuse it; either way the contract holds.
	got = p.GetVIDs(64)
	if len(got) != 0 || cap(got) < 64 {
		t.Fatalf("class-3 get broken: len=%d cap=%d", len(got), cap(got))
	}
}

// TestPoolConcurrentUse hammers the pool from many goroutines — the shape the
// parallel expansion paths now produce — and relies on -race for detection.
func TestPoolConcurrentUse(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				n := rng.Intn(4096)
				buf := p.GetVIDs(n)
				if len(buf) != 0 || cap(buf) < n {
					panic("pool contract violated under concurrency")
				}
				for k := 0; k < n; k++ {
					buf = append(buf, vector.VID(k))
				}
				p.PutVIDs(buf)
			}
		}(int64(w))
	}
	wg.Wait()
}
