package storage

import (
	"ges/internal/catalog"
	"ges/internal/vector"
)

// This file is the batch side of the read path: instead of one
// View.Prop(v,p) interface call per row (one boxed Value each), operators
// hand the storage layer a whole VID column and receive a whole property
// column back. Three tiers, fastest first:
//
//  1. aligned share — the VID column is exactly the label's scan order, so
//     the gathered column IS the storage column: zero copies, and the
//     storage zone map rides along for filter skipping;
//  2. bulk gather — one tight loop over the raw backing slices, moving
//     8-byte scalars or 4-byte dictionary codes;
//  3. boxed fallback — per-row Get/Set for exotic kinds.

// ColumnSharer is the optional zero-copy tier of the gather path. Views that
// can prove vids is exactly the storage row order of label expose the
// backing column itself.
type ColumnSharer interface {
	// ShareScanColumn returns the storage column of (label,pid) when vids is
	// row-aligned with it, or nil. Callers must treat the result as
	// read-only (wrap with ShareAs).
	ShareScanColumn(label catalog.LabelID, pid catalog.PropID, vids []vector.VID) *vector.Column
}

// DictProvider exposes the dictionary of a string property column so
// gathered output columns can share it and move codes instead of strings.
type DictProvider interface {
	PropDict(label catalog.LabelID, pid catalog.PropID) *vector.Dict
}

// ZonePruner is the optional zone-map tier: clear selection bits of
// candidates whose storage zone cannot contain a value in [lo,hi] before any
// value is gathered.
type ZonePruner interface {
	// PruneZones returns how many zones were ruled out and how many zones
	// the column has. Views that cannot prune (e.g. snapshots with property
	// overlays) return (0, 0).
	PruneZones(vids []vector.VID, label catalog.LabelID, pid catalog.PropID, lo, hi int64, sel *vector.Bitset) (pruned, total int)
}

// propColumn resolves the storage column for (label, pid), nil when absent.
func (g *Graph) propColumn(label catalog.LabelID, pid catalog.PropID) *vector.Column {
	if int(label) >= len(g.tables) || g.tables[label] == nil {
		return nil
	}
	t := g.tables[label]
	if int(pid) >= len(t.cols) {
		return nil
	}
	return t.cols[pid]
}

// GatherProps implements View: for every selected row i whose vertex vids[i]
// carries the given label, the value of property pid is written to out[i];
// rows of other labels (or out-of-range VIDs, e.g. overlay-created vertices)
// are left untouched, so multi-label columns are filled by one pass per
// label. out must already have len(vids) rows (see Column.Grow).
func (g *Graph) GatherProps(vids []vector.VID, label catalog.LabelID, pid catalog.PropID, sel *vector.Bitset, out *vector.Column) {
	col := g.propColumn(label, pid)
	if col == nil {
		return
	}
	labelOf, rowOf := g.labelOf, g.rowOf
	nBase := vector.VID(len(labelOf))
	switch {
	case col.Kind == vector.KindInt64 || col.Kind == vector.KindDate:
		src, dst := col.Int64s(), out.Int64s()
		for i, v := range vids {
			if v >= nBase || labelOf[v] != label || (sel != nil && !sel.Get(i)) {
				continue
			}
			dst[i] = src[rowOf[v]]
		}
	case col.Kind == vector.KindFloat64:
		src, dst := col.Float64s(), out.Float64s()
		for i, v := range vids {
			if v >= nBase || labelOf[v] != label || (sel != nil && !sel.Get(i)) {
				continue
			}
			dst[i] = src[rowOf[v]]
		}
	case col.Kind == vector.KindString && col.DictEncoded() && out.Dict() == col.Dict():
		src, dst := col.Codes(), out.Codes()
		for i, v := range vids {
			if v >= nBase || labelOf[v] != label || (sel != nil && !sel.Get(i)) {
				continue
			}
			dst[i] = src[rowOf[v]]
		}
	case col.Kind == vector.KindBool:
		src, dst := col.Bools(), out.Bools()
		for i, v := range vids {
			if v >= nBase || labelOf[v] != label || (sel != nil && !sel.Get(i)) {
				continue
			}
			dst[i] = src[rowOf[v]]
		}
	default:
		for i, v := range vids {
			if v >= nBase || labelOf[v] != label || (sel != nil && !sel.Get(i)) {
				continue
			}
			out.Set(i, col.Get(int(rowOf[v])))
		}
	}
}

// GatherExtIDs implements View: the external identifier of every selected
// in-range vertex is written to out[i]; out must have len(vids) entries.
func (g *Graph) GatherExtIDs(vids []vector.VID, sel *vector.Bitset, out []int64) {
	extOf := g.extOf
	n := vector.VID(len(extOf))
	for i, v := range vids {
		if v >= n || (sel != nil && !sel.Get(i)) {
			continue
		}
		out[i] = extOf[v]
	}
}

// ShareScanColumn implements ColumnSharer: when vids is element-for-element
// the label's scan order (which is how NodeScan emits it), the storage
// column itself is the gather result.
func (g *Graph) ShareScanColumn(label catalog.LabelID, pid catalog.PropID, vids []vector.VID) *vector.Column {
	col := g.propColumn(label, pid)
	if col == nil {
		return nil
	}
	scan := g.tables[label].vids
	if len(vids) != len(scan) {
		return nil
	}
	for i, v := range vids {
		if v != scan[i] {
			return nil
		}
	}
	return col
}

// PropDict implements DictProvider.
func (g *Graph) PropDict(label catalog.LabelID, pid catalog.PropID) *vector.Dict {
	if col := g.propColumn(label, pid); col != nil {
		return col.Dict()
	}
	return nil
}

// PruneZones implements ZonePruner over the base graph's zone maps. Zone
// verdicts are computed lazily, once per touched zone.
func (g *Graph) PruneZones(vids []vector.VID, label catalog.LabelID, pid catalog.PropID, lo, hi int64, sel *vector.Bitset) (pruned, total int) {
	col := g.propColumn(label, pid)
	if col == nil {
		return 0, 0
	}
	zm := col.ZoneMap()
	if zm == nil || zm.Zones() == 0 {
		return 0, 0
	}
	total = zm.Zones()
	const (
		unknown = iota
		keep
		prune
	)
	verdicts := make([]uint8, total)
	labelOf, rowOf := g.labelOf, g.rowOf
	nBase := vector.VID(len(labelOf))
	for i, v := range vids {
		if v >= nBase || labelOf[v] != label || (sel != nil && !sel.Get(i)) {
			continue
		}
		z := int(rowOf[v]) >> vector.ZoneShift
		if verdicts[z] == unknown {
			if zm.OverlapsInt(z, lo, hi) {
				verdicts[z] = keep
			} else {
				verdicts[z] = prune
				pruned++
			}
		}
		if verdicts[z] == prune && sel != nil {
			sel.Clear(i)
		}
	}
	return pruned, total
}
