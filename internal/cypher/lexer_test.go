package cypher

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []tokenKind {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	out := make([]tokenKind, len(toks))
	for i, tok := range toks {
		out[i] = tok.kind
	}
	return out
}

func TestLexBasicQuery(t *testing.T) {
	toks, err := lex(`MATCH (p:Person)-[:KNOWS*1..2]->(f) WHERE p.age >= 21 RETURN f`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind == tkKeyword || tok.kind == tkIdent {
			texts = append(texts, tok.text)
		}
	}
	want := "MATCH,p,Person,KNOWS,f,WHERE,p,age,RETURN,f"
	if got := strings.Join(texts, ","); got != want {
		t.Fatalf("words = %s, want %s", got, want)
	}
}

func TestLexOperators(t *testing.T) {
	got := kinds(t, `<- -> - < <= > >= = <> != .. . * ( ) [ ] : , | + / %`)
	want := []tokenKind{
		tkArrowLeft, tkArrowRight, tkDash, tkLT, tkLE, tkGT, tkGE,
		tkEQ, tkNE, tkNE, tkDotDot, tkDot, tkStar, tkLParen, tkRParen,
		tkLBracket, tkRBracket, tkColon, tkComma, tkPipe, tkPlus, tkSlash,
		tkPercent, tkEOF,
	}
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLexStringsAndNumbers(t *testing.T) {
	toks, err := lex(`'single' "double" 'esc\'aped' 42 3.25`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "single" || toks[1].text != "double" || toks[2].text != "esc'aped" {
		t.Fatalf("strings = %q %q %q", toks[0].text, toks[1].text, toks[2].text)
	}
	if toks[3].kind != tkInt || toks[3].text != "42" {
		t.Fatalf("int token = %+v", toks[3])
	}
	if toks[4].kind != tkFloat || toks[4].text != "3.25" {
		t.Fatalf("float token = %+v", toks[4])
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks, err := lex("match Return wHeRe")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"MATCH", "RETURN", "WHERE"} {
		if toks[i].kind != tkKeyword || toks[i].text != want {
			t.Fatalf("token %d = %+v, want keyword %s", i, toks[i], want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a ! b", "€"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexIdentifiersWithUnderscores(t *testing.T) {
	toks, err := lex("HAS_CREATOR _private x1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tkIdent || toks[0].text != "HAS_CREATOR" {
		t.Fatalf("token = %+v", toks[0])
	}
	if toks[1].text != "_private" || toks[2].text != "x1" {
		t.Fatal("underscore/number identifiers broken")
	}
}
