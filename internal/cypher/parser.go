package cypher

import (
	"fmt"
	"strconv"

	"ges/internal/catalog"
)

// Parse turns a query string into an AST.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) next() token         { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool { return p.peek().kind == k }
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tkKeyword && t.text == kw
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("cypher: expected %s, got %s at %d", what, t, t.pos)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tkKeyword || t.text != kw {
		return fmt.Errorf("cypher: expected %s, got %s at %d", kw, t, t.pos)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	for {
		switch {
		case p.atKeyword("MATCH"):
			p.next()
			m, err := p.parseMatch()
			if err != nil {
				return nil, err
			}
			q.Matches = append(q.Matches, m)
		case p.atKeyword("WITH"):
			// Pass-through projection: WITH v1, v2 — a clause separator in
			// the supported subset; the binder keeps all variables live.
			p.next()
			for {
				if _, err := p.expect(tkIdent, "variable after WITH"); err != nil {
					return nil, err
				}
				if p.at(tkComma) {
					p.next()
					continue
				}
				break
			}
		case p.atKeyword("RETURN"):
			p.next()
			r, err := p.parseReturn()
			if err != nil {
				return nil, err
			}
			q.Return = r
			if !p.at(tkEOF) {
				t := p.peek()
				return nil, fmt.Errorf("cypher: trailing input %s at %d", t, t.pos)
			}
			if len(q.Matches) == 0 {
				return nil, fmt.Errorf("cypher: query needs at least one MATCH")
			}
			return q, nil
		default:
			t := p.peek()
			return nil, fmt.Errorf("cypher: expected MATCH, WITH or RETURN, got %s at %d", t, t.pos)
		}
	}
}

func (p *parser) parseMatch() (MatchClause, error) {
	var m MatchClause
	node, err := p.parseNode()
	if err != nil {
		return m, err
	}
	m.Nodes = append(m.Nodes, node)
	for p.at(tkDash) || p.at(tkArrowLeft) {
		rel, err := p.parseRel()
		if err != nil {
			return m, err
		}
		node, err := p.parseNode()
		if err != nil {
			return m, err
		}
		m.Rels = append(m.Rels, rel)
		m.Nodes = append(m.Nodes, node)
	}
	if p.atKeyword("WHERE") {
		p.next()
		w, err := p.parseExpr()
		if err != nil {
			return m, err
		}
		m.Where = w
	}
	return m, nil
}

func (p *parser) parseNode() (NodePat, error) {
	var n NodePat
	if _, err := p.expect(tkLParen, "'('"); err != nil {
		return n, err
	}
	if p.at(tkIdent) {
		n.Var = p.next().text
	}
	if p.at(tkColon) {
		p.next()
		t, err := p.expect(tkIdent, "label name")
		if err != nil {
			return n, err
		}
		n.Label = t.text
	}
	if _, err := p.expect(tkRParen, "')'"); err != nil {
		return n, err
	}
	if n.Var == "" {
		return n, fmt.Errorf("cypher: anonymous nodes are not supported; name the node")
	}
	return n, nil
}

// parseRel parses -[:TYPE]->, <-[:TYPE]-, -[:TYPE]-, with optional
// *min..max variable length.
func (p *parser) parseRel() (RelPat, error) {
	rel := RelPat{MinHops: 1, MaxHops: 1, Dir: catalog.Both}
	leftArrow := false
	if p.at(tkArrowLeft) {
		leftArrow = true
		p.next()
	} else if _, err := p.expect(tkDash, "'-'"); err != nil {
		return rel, err
	}
	if _, err := p.expect(tkLBracket, "'['"); err != nil {
		return rel, err
	}
	if p.at(tkIdent) { // optional relationship variable, ignored
		p.next()
	}
	if _, err := p.expect(tkColon, "':' before relationship type"); err != nil {
		return rel, err
	}
	t, err := p.expect(tkIdent, "relationship type")
	if err != nil {
		return rel, err
	}
	rel.Type = t.text
	if p.at(tkStar) {
		p.next()
		if p.at(tkInt) {
			v, _ := strconv.Atoi(p.next().text)
			rel.MinHops = v
			rel.MaxHops = v
			if p.at(tkDotDot) {
				p.next()
				t, err := p.expect(tkInt, "max hops")
				if err != nil {
					return rel, err
				}
				rel.MaxHops, _ = strconv.Atoi(t.text)
			}
		} else {
			rel.MinHops, rel.MaxHops = 1, 3 // bare '*' default bound
		}
	}
	if _, err := p.expect(tkRBracket, "']'"); err != nil {
		return rel, err
	}
	if leftArrow {
		if _, err := p.expect(tkDash, "'-' after ']'"); err != nil {
			return rel, err
		}
		rel.Dir = catalog.In
		return rel, nil
	}
	switch {
	case p.at(tkArrowRight):
		p.next()
		rel.Dir = catalog.Out
	case p.at(tkDash):
		p.next()
		rel.Dir = catalog.Both
	default:
		t := p.peek()
		return rel, fmt.Errorf("cypher: expected '->' or '-' after ']', got %s at %d", t, t.pos)
	}
	return rel, nil
}

func (p *parser) parseReturn() (ReturnClause, error) {
	r := ReturnClause{Skip: -1, Limit: -1}
	if p.atKeyword("DISTINCT") {
		p.next()
		r.Distinct = true
	}
	for {
		item, err := p.parseReturnItem()
		if err != nil {
			return r, err
		}
		r.Items = append(r.Items, item)
		if p.at(tkComma) {
			p.next()
			continue
		}
		break
	}
	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return r, err
		}
		for {
			e, err := p.parsePrimary()
			if err != nil {
				return r, err
			}
			item := OrderItem{Expr: e}
			if p.atKeyword("DESC") {
				p.next()
				item.Desc = true
			} else if p.atKeyword("ASC") {
				p.next()
			}
			r.OrderBy = append(r.OrderBy, item)
			if p.at(tkComma) {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("SKIP") {
		p.next()
		t, err := p.expect(tkInt, "skip count")
		if err != nil {
			return r, err
		}
		r.Skip, _ = strconv.Atoi(t.text)
	}
	if p.atKeyword("LIMIT") {
		p.next()
		t, err := p.expect(tkInt, "limit count")
		if err != nil {
			return r, err
		}
		r.Limit, _ = strconv.Atoi(t.text)
	}
	return r, nil
}

var aggKeywords = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
}

func (p *parser) parseReturnItem() (ReturnItem, error) {
	var item ReturnItem
	if p.peek().kind == tkKeyword {
		if agg, ok := aggKeywords[p.peek().text]; ok {
			p.next()
			item.Agg = agg
			if _, err := p.expect(tkLParen, "'('"); err != nil {
				return item, err
			}
			if p.at(tkStar) {
				if item.Agg != AggCount {
					return item, fmt.Errorf("cypher: only COUNT(*) may use '*'")
				}
				p.next()
			} else {
				if p.atKeyword("DISTINCT") {
					p.next()
					if item.Agg != AggCount {
						return item, fmt.Errorf("cypher: DISTINCT only supported inside COUNT")
					}
					item.Agg = AggCountDistinct
				}
				e, err := p.parsePrimary()
				if err != nil {
					return item, err
				}
				item.Expr = e
			}
			if _, err := p.expect(tkRParen, "')'"); err != nil {
				return item, err
			}
		}
	}
	if item.Agg == AggNone {
		e, err := p.parseAdditive()
		if err != nil {
			return item, err
		}
		item.Expr = e
	}
	if p.atKeyword("AS") {
		p.next()
		t, err := p.expect(tkIdent, "alias")
		if err != nil {
			return item, err
		}
		item.Alias = t.text
	}
	return item, nil
}

// Expression grammar: Or -> And -> Not -> Cmp -> Additive -> Mul -> Primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(tkEQ), p.at(tkNE), p.at(tkLT), p.at(tkLE), p.at(tkGT), p.at(tkGE):
		op := p.next().text
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Bin{Op: op, L: l, R: r}, nil
	case p.atKeyword("IN"):
		p.next()
		if _, err := p.expect(tkLBracket, "'['"); err != nil {
			return nil, err
		}
		var list []Lit
		for !p.at(tkRBracket) {
			lit, err := p.parseLit()
			if err != nil {
				return nil, err
			}
			list = append(list, lit)
			if p.at(tkComma) {
				p.next()
			}
		}
		p.next() // ]
		return InList{X: l, List: list}, nil
	case p.atKeyword("CONTAINS"):
		p.next()
		t, err := p.expect(tkString, "string after CONTAINS")
		if err != nil {
			return nil, err
		}
		return StrPred{Op: "CONTAINS", L: l, R: t.text}, nil
	case p.atKeyword("STARTS"), p.atKeyword("ENDS"):
		op := p.next().text
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		t, err := p.expect(tkString, "string pattern")
		if err != nil {
			return nil, err
		}
		return StrPred{Op: op, L: l, R: t.text}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(tkPlus) || p.at(tkDash) {
		op := "+"
		if p.next().kind == tkDash {
			op = "-"
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(tkStar) || p.at(tkSlash) {
		op := "*"
		if p.next().kind == tkSlash {
			op = "/"
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tkKeyword && t.text == "ID":
		p.next()
		if _, err := p.expect(tkLParen, "'(' after id"); err != nil {
			return nil, err
		}
		v, err := p.expect(tkIdent, "variable inside id()")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return IDRef{Var: v.text}, nil
	case t.kind == tkIdent:
		p.next()
		if p.at(tkDot) {
			p.next()
			prop, err := p.expect(tkIdent, "property name")
			if err != nil {
				return nil, err
			}
			return PropRef{Var: t.text, Prop: prop.text}, nil
		}
		return VarRef{Var: t.text}, nil
	case t.kind == tkLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return p.parseLit()
	}
}

func (p *parser) parseLit() (Lit, error) {
	t := p.next()
	switch t.kind {
	case tkInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Lit{}, fmt.Errorf("cypher: bad integer %q", t.text)
		}
		return Lit{Kind: LitInt, I: v}, nil
	case tkFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Lit{}, fmt.Errorf("cypher: bad float %q", t.text)
		}
		return Lit{Kind: LitFloat, F: v}, nil
	case tkString:
		return Lit{Kind: LitString, S: t.text}, nil
	case tkParam:
		k, err := strconv.Atoi(t.text)
		if err != nil || k < 1 {
			return Lit{}, fmt.Errorf("cypher: bad parameter $%s at %d", t.text, t.pos)
		}
		return Lit{Param: k}, nil
	case tkKeyword:
		if t.text == "TRUE" {
			return Lit{Kind: LitBool, B: true}, nil
		}
		if t.text == "FALSE" {
			return Lit{Kind: LitBool, B: false}, nil
		}
	}
	return Lit{}, fmt.Errorf("cypher: expected literal, got %s at %d", t, t.pos)
}
