package cypher

import (
	"testing"

	"ges/internal/testgraph"
)

// FuzzCompile asserts the frontend never panics: every input either
// compiles or returns an error. Run longer with:
//
//	go test -fuzz=FuzzCompile ./internal/cypher
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"MATCH (p:Person) RETURN id(p)",
		"MATCH (p:Person)-[:KNOWS*1..2]->(q) WHERE id(p) = 1 RETURN q.name AS n ORDER BY n DESC LIMIT 3",
		"MATCH (p:Person)<-[:LIKES]-(x) WHERE p.age >= 21 AND NOT p.name = 'x' RETURN COUNT(*)",
		"MATCH (a:Person)-[:KNOWS]-(b) WITH b MATCH (b)-[:KNOWS]->(c) RETURN DISTINCT id(c) SKIP 1 LIMIT 2",
		"MATCH (p:Person) WHERE p.name IN ['a','b'] OR p.name CONTAINS 'q' RETURN p.name",
		"MATCH (p:Person RETURN",
		"RETURN 1",
		"MATCH (p:Person) RETURN SUM(p.age) AS s, MIN(p.age), MAX(p.age), AVG(p.age), COUNT(DISTINCT p.name)",
		"MATCH (p:Person) WHERE (p.age + 1) * 2 / 3 - 4 > 0 RETURN id(p)",
		"MATCH (p:Person)-[k:KNOWS*]->(q) RETURN id(q)",
		"match (p:person) return id(p)",
		"MATCH (p:Person) WHERE p.name STARTS WITH 'a' RETURN p.name ENDS",
		"MATCH (🙂:Person) RETURN id(🙂)",
		"MATCH (p:Person) WHERE id(p) = 99999999999999999999 RETURN id(p)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := testgraph.New().Cat
	f.Fuzz(func(t *testing.T, src string) {
		// Must not panic; errors are fine.
		_, _ = Compile(src, cat)
	})
}
