package cypher

import (
	"fmt"
	"math"

	"ges/internal/catalog"
	"ges/internal/expr"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Compile parses and binds a Cypher query against a catalog, producing a
// physical plan for the GES engine (any variant) or the volcano engine.
// The plan is the syntactic one — anchored and oriented as written; use
// CompileWith to let the cost model shape it.
func Compile(src string, cat *catalog.Catalog) (plan.Plan, error) {
	c, err := CompileWith(src, cat, Options{})
	if err != nil {
		return nil, err
	}
	return c.Plan, nil
}

// Options configures compilation.
type Options struct {
	// Cost is the statistics-driven cost model; nil (or Engine.NoCost)
	// binds the syntactic plan exactly as written.
	Cost *plan.CostModel
	// Params carries the values for $k placeholders in the query text
	// (slot k = Params[k-1]), as produced by Normalize. The binder uses
	// them for selectivity estimation and id()-seek detection; the plan
	// skeleton keeps the slots, so it can be cached and re-bound per
	// request via Engine.Params.
	Params []vector.Value
}

// Compiled couples a physical plan with the binder's cardinality estimate.
type Compiled struct {
	Plan plan.Plan
	Est  plan.Estimate
}

// CompileWith parses and binds a query under the given options.
func CompileWith(src string, cat *catalog.Catalog, opts Options) (*Compiled, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return BindWith(q, cat, opts)
}

// binder carries binding state.
type binder struct {
	cat       *catalog.Catalog
	plan      plan.Plan
	bound     map[string]bool            // pattern variables bound so far
	labels    map[string]catalog.LabelID // var -> label (AnyLabel when free)
	projected map[string]bool            // canonical columns already projected

	cost   *plan.CostModel // nil = syntactic binding
	params []vector.Value  // $k slot values (may be empty)
	rows   float64         // running cardinality estimate (cost mode)
	anchor string          // first clause's chosen anchor variable
}

// Bind lowers a parsed query to the syntactic physical plan.
func Bind(q *Query, cat *catalog.Catalog) (plan.Plan, error) {
	c, err := BindWith(q, cat, Options{})
	if err != nil {
		return nil, err
	}
	return c.Plan, nil
}

// BindWith lowers a parsed query to a physical plan under the given
// options. With a cost model the binder picks the scan anchor, orients
// every Expand and orders the frontier by estimated cardinality; the
// chosen anchor also becomes the f-Tree root, minimizing de-factoring
// under the highest-fanout prefix. Without one it binds the pattern as
// written. Both shapes return identical results.
func BindWith(q *Query, cat *catalog.Catalog, opts Options) (*Compiled, error) {
	b := &binder{
		cat:       cat,
		bound:     map[string]bool{},
		labels:    map[string]catalog.LabelID{},
		projected: map[string]bool{},
		cost:      opts.Cost,
		params:    opts.Params,
		rows:      1,
	}
	for i := range q.Matches {
		if err := b.bindMatch(&q.Matches[i], i == 0); err != nil {
			return nil, err
		}
	}
	if err := b.bindReturn(&q.Return); err != nil {
		return nil, err
	}
	// Cyclic subpatterns with >= 2 edges constraining one new vertex bind as
	// Expand + ExpandInto chains; lower them to worst-case-optimal multiway
	// intersections (exec's NoWCOJ knob restores the classical chain).
	return &Compiled{
		Plan: plan.LowerWCOJ(b.plan),
		Est:  plan.Estimate{Rows: b.rows, CostBased: b.cost != nil, Anchor: b.anchor},
	}, nil
}

// bindMatch lowers one MATCH clause, dispatching on the planning mode.
func (b *binder) bindMatch(m *MatchClause, first bool) error {
	if b.cost != nil {
		return b.bindMatchCosted(m, first)
	}
	return b.bindMatchSyntactic(m, first)
}

func (b *binder) labelOf(n NodePat) (catalog.LabelID, error) {
	if n.Label == "" {
		if l, ok := b.labels[n.Var]; ok {
			return l, nil
		}
		return storage.AnyLabel, nil
	}
	l, ok := b.cat.Label(n.Label)
	if !ok {
		return 0, fmt.Errorf("cypher: unknown label %q", n.Label)
	}
	if prev, seen := b.labels[n.Var]; seen && prev != l && prev != storage.AnyLabel {
		return 0, fmt.Errorf("cypher: variable %q bound to conflicting labels", n.Var)
	}
	b.labels[n.Var] = l
	return l, nil
}

// bindMatchSyntactic lowers one MATCH clause exactly as written: the scan
// anchors on the first node, expansion follows syntax order and direction,
// and the WHERE filters at the end of the clause.
func (b *binder) bindMatchSyntactic(m *MatchClause, first bool) error {
	start := m.Nodes[0]
	startLabel, err := b.labelOf(start)
	if err != nil {
		return err
	}
	if !b.bound[start.Var] {
		if !first {
			return fmt.Errorf("cypher: MATCH must start from an already-bound variable (%q is new)", start.Var)
		}
		b.anchor = start.Var
		// Seek by id when the WHERE contains id(start) = <int>; else scan.
		if seek, rest, ok := b.extractIDSeek(m.Where, start.Var); ok {
			if startLabel == storage.AnyLabel {
				return fmt.Errorf("cypher: id() seek on %q requires a label", start.Var)
			}
			b.plan = append(b.plan, &op.NodeByIdSeek{Var: start.Var, Label: startLabel, ExtID: seek.ext, ExtParam: seek.slot})
			m.Where = rest
		} else {
			if startLabel == storage.AnyLabel {
				return fmt.Errorf("cypher: the first node %q needs a label (or an id() equality) to anchor the scan", start.Var)
			}
			b.plan = append(b.plan, &op.NodeScan{Var: start.Var, Label: startLabel})
		}
		b.bound[start.Var] = true
	}

	for i, rel := range m.Rels {
		from, to := m.Nodes[i], m.Nodes[i+1]
		if !b.bound[from.Var] {
			return fmt.Errorf("cypher: relationship source %q is unbound", from.Var)
		}
		et, ok := b.cat.EdgeType(rel.Type)
		if !ok {
			return fmt.Errorf("cypher: unknown relationship type %q", rel.Type)
		}
		toLabel, err := b.labelOf(to)
		if err != nil {
			return err
		}
		if b.bound[to.Var] {
			// Cyclic pattern edge: both endpoints are bound, so close the
			// cycle with an intersection-based semi-join instead of a
			// re-expand + hash join.
			if rel.MinHops != 1 || rel.MaxHops != 1 {
				return fmt.Errorf("cypher: cyclic var-length patterns (%q already bound) are not supported; rewrite with separate MATCH clauses and joins", to.Var)
			}
			fromLabel, err := b.labelOf(from)
			if err != nil {
				return err
			}
			b.plan = append(b.plan, &op.ExpandInto{
				From: from.Var, To: to.Var, Et: et, Dir: rel.Dir,
				DstLabel: toLabel, SrcLabel: fromLabel,
			})
			continue
		}
		if rel.MinHops == 1 && rel.MaxHops == 1 {
			b.plan = append(b.plan, &op.Expand{
				From: from.Var, To: to.Var, Et: et, Dir: rel.Dir, DstLabel: toLabel,
			})
		} else {
			b.plan = append(b.plan, &op.VarLengthExpand{
				From: from.Var, To: to.Var, Et: et, Dir: rel.Dir, DstLabel: toLabel,
				MinHops: rel.MinHops, MaxHops: rel.MaxHops, Distinct: true,
			})
		}
		b.bound[to.Var] = true
	}

	if m.Where != nil {
		if err := b.ensureProjections(m.Where); err != nil {
			return err
		}
		pred, err := b.toExpr(m.Where)
		if err != nil {
			return err
		}
		b.plan = append(b.plan, &op.Filter{Pred: pred})
	}
	return nil
}

// idSeek is an extracted `id(v) = <int>` conjunct: an inline external id,
// or a parameter slot when the literal was normalized out (slot > 0; the
// value, when available, still fills ext for estimation).
type idSeek struct {
	ext  int64
	slot int
}

// extractIDSeek finds a conjunct `id(v) = <int literal or int parameter>`
// (either side) and returns the seek plus the remaining predicate.
func (b *binder) extractIDSeek(e Expr, v string) (idSeek, Expr, bool) {
	switch n := e.(type) {
	case Bin:
		if n.Op == "AND" {
			if seek, rest, ok := b.extractIDSeek(n.L, v); ok {
				if rest == nil {
					return seek, n.R, true
				}
				return seek, Bin{Op: "AND", L: rest, R: n.R}, true
			}
			if seek, rest, ok := b.extractIDSeek(n.R, v); ok {
				if rest == nil {
					return seek, n.L, true
				}
				return seek, Bin{Op: "AND", L: n.L, R: rest}, true
			}
			return idSeek{}, nil, false
		}
		if n.Op != "=" {
			return idSeek{}, nil, false
		}
		if id, ok := n.L.(IDRef); ok && id.Var == v {
			if seek, ok := b.seekLit(n.R); ok {
				return seek, nil, true
			}
		}
		if id, ok := n.R.(IDRef); ok && id.Var == v {
			if seek, ok := b.seekLit(n.L); ok {
				return seek, nil, true
			}
		}
	}
	return idSeek{}, nil, false
}

// seekLit accepts an integer literal or an integer-valued parameter as the
// right-hand side of an id() seek.
func (b *binder) seekLit(e Expr) (idSeek, bool) {
	lit, ok := e.(Lit)
	if !ok {
		return idSeek{}, false
	}
	if lit.Param > 0 {
		if lit.Param <= len(b.params) {
			v := b.params[lit.Param-1]
			if v.Kind != vector.KindInt64 {
				return idSeek{}, false
			}
			return idSeek{ext: v.I, slot: lit.Param}, true
		}
		// No values supplied (skeleton-only compile): keep the slot, the
		// executor binds it per request.
		return idSeek{slot: lit.Param}, true
	}
	if lit.Kind != LitInt {
		return idSeek{}, false
	}
	return idSeek{ext: lit.I}, true
}

// canonical returns the engine column name of a simple reference.
func canonical(e Expr) (string, bool) {
	switch n := e.(type) {
	case PropRef:
		return n.Var + "." + n.Prop, true
	case IDRef:
		return "id(" + n.Var + ")", true
	}
	return "", false
}

// collectRefs appends every property/id reference in the expression.
func collectRefs(e Expr, dst []Expr) []Expr {
	switch n := e.(type) {
	case PropRef, IDRef:
		return append(dst, e)
	case Bin:
		return collectRefs(n.R, collectRefs(n.L, dst))
	case Not:
		return collectRefs(n.X, dst)
	case InList:
		return collectRefs(n.X, dst)
	case StrPred:
		return collectRefs(n.L, dst)
	}
	return dst
}

// ensureProjections emits ProjectProps for every reference not yet
// projected.
func (b *binder) ensureProjections(exprs ...Expr) error {
	var specs []op.ProjSpec
	for _, e := range exprs {
		if e == nil {
			continue
		}
		for _, ref := range collectRefs(e, nil) {
			name, _ := canonical(ref)
			if b.projected[name] {
				continue
			}
			switch r := ref.(type) {
			case PropRef:
				if !b.bound[r.Var] {
					return fmt.Errorf("cypher: unknown variable %q", r.Var)
				}
				specs = append(specs, op.ProjSpec{Var: r.Var, Prop: r.Prop, As: name})
			case IDRef:
				if !b.bound[r.Var] {
					return fmt.Errorf("cypher: unknown variable %q", r.Var)
				}
				specs = append(specs, op.ProjSpec{Var: r.Var, As: name, ExtID: true})
			}
			b.projected[name] = true
		}
	}
	if len(specs) > 0 {
		b.plan = append(b.plan, &op.ProjectProps{Specs: specs})
	}
	return nil
}

// toExpr lowers an AST expression to an engine expression over canonical
// column names.
func (b *binder) toExpr(e Expr) (expr.Expr, error) {
	switch n := e.(type) {
	case PropRef, IDRef:
		name, _ := canonical(n)
		return expr.C(name), nil
	case Lit:
		if n.Param > 0 {
			// Placeholder literal: the plan skeleton carries the slot;
			// plan.BindParams substitutes the request's value before
			// execution.
			return expr.Param{Idx: n.Param - 1}, nil
		}
		return expr.Lit{Val: litValue(n)}, nil
	case Bin:
		l, err := b.toExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := b.toExpr(n.R)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "=":
			return expr.Eq(l, r), nil
		case "<>":
			return expr.Ne(l, r), nil
		case "<":
			return expr.Lt(l, r), nil
		case "<=":
			return expr.Le(l, r), nil
		case ">":
			return expr.Gt(l, r), nil
		case ">=":
			return expr.Ge(l, r), nil
		case "AND":
			return expr.And{L: l, R: r}, nil
		case "OR":
			return expr.Or{L: l, R: r}, nil
		case "+":
			return expr.Arith{Op: expr.Add, L: l, R: r}, nil
		case "-":
			return expr.Arith{Op: expr.Sub, L: l, R: r}, nil
		case "*":
			return expr.Arith{Op: expr.Mul, L: l, R: r}, nil
		case "/":
			return expr.Arith{Op: expr.Div, L: l, R: r}, nil
		}
		return nil, fmt.Errorf("cypher: unsupported operator %q", n.Op)
	case Not:
		x, err := b.toExpr(n.X)
		if err != nil {
			return nil, err
		}
		return expr.Not{X: x}, nil
	case InList:
		x, err := b.toExpr(n.X)
		if err != nil {
			return nil, err
		}
		list := make([]vector.Value, len(n.List))
		for i, l := range n.List {
			list[i] = b.litValue(l)
		}
		return expr.In{X: x, List: list}, nil
	case StrPred:
		l, err := b.toExpr(n.L)
		if err != nil {
			return nil, err
		}
		var o expr.StrOp
		switch n.Op {
		case "CONTAINS":
			o = expr.Contains
		case "STARTS":
			o = expr.StartsWith
		case "ENDS":
			o = expr.EndsWith
		}
		return expr.StrPred{Op: o, L: l, R: n.R}, nil
	case VarRef:
		return nil, fmt.Errorf("cypher: bare variable %q cannot appear in expressions; use %s.<prop> or id(%s)", n.Var, n.Var, n.Var)
	}
	return nil, fmt.Errorf("cypher: unsupported expression %T", e)
}

func litValue(l Lit) vector.Value {
	switch l.Kind {
	case LitInt:
		return vector.Int64(l.I)
	case LitFloat:
		return vector.Float64(l.F)
	case LitString:
		return vector.String_(l.S)
	default:
		return vector.Bool(l.B)
	}
}

// litValue resolves a possibly-parameterized literal. IN-lists bake their
// values into the compiled plan, so hand-written $k inside them resolves at
// bind time (Normalize never parameterizes inside brackets, keeping cached
// skeletons value-free there).
func (b *binder) litValue(l Lit) vector.Value {
	if l.Param > 0 && l.Param <= len(b.params) {
		return b.params[l.Param-1]
	}
	return litValue(l)
}

// bindReturn lowers projection, aggregation, ordering and pagination.
func (b *binder) bindReturn(r *ReturnClause) error {
	if len(r.Items) == 0 {
		return fmt.Errorf("cypher: RETURN needs at least one item")
	}
	// Project every referenced attribute.
	var needed []Expr
	for _, it := range r.Items {
		if it.Expr != nil {
			needed = append(needed, it.Expr)
		}
	}
	for _, o := range r.OrderBy {
		if _, isVar := o.Expr.(VarRef); !isVar {
			needed = append(needed, o.Expr)
		}
	}
	if err := b.ensureProjections(needed...); err != nil {
		return err
	}

	hasAgg := false
	for _, it := range r.Items {
		if it.Agg != AggNone {
			hasAgg = true
		}
	}

	// outName: the column each return item occupies before renaming.
	outNames := make([]string, len(r.Items))
	var renFrom, renTo []string
	for i, it := range r.Items {
		name := it.Alias
		canon := ""
		if it.Expr != nil {
			if c, ok := canonical(it.Expr); ok {
				canon = c
			}
		}
		if name == "" {
			if canon == "" {
				name = fmt.Sprintf("expr%d", i)
			} else {
				name = canon
			}
		}
		switch {
		case it.Agg != AggNone:
			outNames[i] = name // aggregates emit the alias directly
		case canon != "":
			outNames[i] = canon
			if name != canon {
				renFrom = append(renFrom, canon)
				renTo = append(renTo, name)
			}
		default:
			// Computed item: materialize via ProjectExpr under the final
			// name.
			ce, err := b.toExpr(it.Expr)
			if err != nil {
				return err
			}
			b.plan = append(b.plan, &op.ProjectExpr{Expr: ce, As: name, Kind: vector.KindInt64})
			b.projected[name] = true
			outNames[i] = name
		}
	}

	// resolveOrderCol maps an ORDER BY expression to an output column name.
	resolveOrderCol := func(e Expr, afterRename bool) (string, error) {
		if v, ok := e.(VarRef); ok {
			// Alias reference.
			for i, it := range r.Items {
				if it.Alias == v.Var {
					if it.Agg != AggNone || afterRename {
						return v.Var, nil
					}
					return outNames[i], nil
				}
			}
			return "", fmt.Errorf("cypher: ORDER BY references unknown alias %q", v.Var)
		}
		if c, ok := canonical(e); ok {
			return c, nil
		}
		return "", fmt.Errorf("cypher: ORDER BY supports aliases, properties and id() only")
	}

	if hasAgg {
		var groupBy []string
		var aggs []op.AggSpec
		for i, it := range r.Items {
			if it.Agg == AggNone {
				groupBy = append(groupBy, outNames[i])
				continue
			}
			spec := op.AggSpec{As: outNames[i]}
			switch it.Agg {
			case AggCount:
				spec.Func = op.Count
			case AggCountDistinct:
				spec.Func = op.CountDistinct
			case AggSum:
				spec.Func = op.Sum
			case AggMin:
				spec.Func = op.Min
			case AggMax:
				spec.Func = op.Max
			case AggAvg:
				spec.Func = op.Avg
			}
			if it.Expr != nil {
				c, ok := canonical(it.Expr)
				if !ok {
					return fmt.Errorf("cypher: aggregate arguments must be properties or id()")
				}
				spec.Arg = c
			}
			aggs = append(aggs, spec)
		}
		b.plan = append(b.plan, &op.Aggregate{GroupBy: groupBy, Aggs: aggs})
	} else if r.Distinct {
		b.plan = append(b.plan, &op.Distinct{Cols: outNames})
	}

	if len(r.OrderBy) > 0 {
		keys := make([]op.SortKey, len(r.OrderBy))
		for i, o := range r.OrderBy {
			col, err := resolveOrderCol(o.Expr, false)
			if err != nil {
				return err
			}
			keys[i] = op.SortKey{Col: col, Desc: o.Desc}
		}
		ob := &op.OrderBy{Keys: keys, Cols: outNames}
		if r.Limit > 0 && r.Skip <= 0 {
			ob.Limit = r.Limit
		}
		b.plan = append(b.plan, ob)
		if r.Skip > 0 || (r.Limit > 0 && ob.Limit == 0) {
			b.plan = append(b.plan, pagination(r))
		}
	} else {
		b.plan = append(b.plan, &op.Defactor{Cols: outNames})
		if r.Skip >= 0 || r.Limit >= 0 {
			b.plan = append(b.plan, pagination(r))
		}
	}
	if len(renFrom) > 0 {
		b.plan = append(b.plan, &op.Rename{From: renFrom, To: renTo})
	}
	return nil
}

func pagination(r *ReturnClause) op.Operator {
	limit := r.Limit
	if limit < 0 {
		limit = math.MaxInt32
	}
	skip := r.Skip
	if skip < 0 {
		skip = 0
	}
	return &op.Limit{N: limit, Skip: skip}
}
