package cypher

import "ges/internal/catalog"

// Query is a parsed Cypher query: one or more MATCH clauses followed by a
// RETURN clause.
type Query struct {
	Matches []MatchClause
	Return  ReturnClause
}

// MatchClause is one MATCH ... [WHERE ...] segment. The pattern is a linear
// path: nodes alternating with relationships.
type MatchClause struct {
	Nodes []NodePat
	Rels  []RelPat // len(Rels) == len(Nodes)-1
	Where Expr     // nil when absent
}

// NodePat is a node pattern (var:Label).
type NodePat struct {
	Var   string
	Label string // empty = unlabeled
}

// RelPat is a relationship pattern with optional variable length.
type RelPat struct {
	Type    string
	Dir     catalog.Direction
	MinHops int // 1 for plain relationships
	MaxHops int
}

// ReturnClause carries projection, ordering and pagination.
type ReturnClause struct {
	Distinct bool
	Items    []ReturnItem
	OrderBy  []OrderItem
	Skip     int // -1 = absent
	Limit    int // -1 = absent
}

// AggKind classifies aggregate return items.
type AggKind uint8

// Aggregates supported in RETURN.
const (
	AggNone AggKind = iota
	AggCount
	AggCountDistinct
	AggSum
	AggMin
	AggMax
	AggAvg
)

// ReturnItem is one projection: an expression with an optional alias and
// optional aggregate wrapper (COUNT(x), SUM(x), ...; COUNT(*) has nil Expr).
type ReturnItem struct {
	Agg   AggKind
	Expr  Expr // nil only for COUNT(*)
	Alias string
}

// OrderItem is one ORDER BY key, referencing a return alias or a plain
// property/id expression.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a parsed scalar expression.
type Expr interface{ isExpr() }

// PropRef is var.prop.
type PropRef struct{ Var, Prop string }

// IDRef is id(var).
type IDRef struct{ Var string }

// Lit is a literal value. When Param > 0 the literal is a $k placeholder
// for slot Param (1-based: slot k reads params[k-1]) and the value fields
// are meaningless — the binder resolves the slot against the request's
// parameter vector.
type Lit struct {
	Kind  LitKind
	I     int64
	F     float64
	S     string
	B     bool
	Param int
}

// LitKind classifies literals.
type LitKind uint8

// Literal kinds.
const (
	LitInt LitKind = iota
	LitFloat
	LitString
	LitBool
)

// Bin is a binary operation (comparisons, AND/OR, arithmetic).
type Bin struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "+", "-", "*", "/"
	L, R Expr
}

// Not negates a boolean expression.
type Not struct{ X Expr }

// InList tests membership in a literal list.
type InList struct {
	X    Expr
	List []Lit
}

// StrPred is CONTAINS / STARTS WITH / ENDS WITH.
type StrPred struct {
	Op string // "CONTAINS", "STARTS", "ENDS"
	L  Expr
	R  string
}

// VarRef names a bare variable (only valid in WITH pass-throughs).
type VarRef struct{ Var string }

func (PropRef) isExpr() {}
func (IDRef) isExpr()   {}
func (Lit) isExpr()     {}
func (Bin) isExpr()     {}
func (Not) isExpr()     {}
func (InList) isExpr()  {}
func (StrPred) isExpr() {}
func (VarRef) isExpr()  {}
