package cypher_test

import (
	"reflect"
	"strings"
	"testing"

	"ges/internal/core"
	"ges/internal/cypher"
	"ges/internal/exec"
	"ges/internal/testgraph"
	"ges/internal/vector"
)

func runCypher(t *testing.T, f *testgraph.Fixture, mode exec.Mode, src string) *core.FlatBlock {
	t.Helper()
	p, err := cypher.Compile(src, f.Cat)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	res, err := exec.New(mode).Run(f.Graph, p)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return res.Block
}

func rowStrings(fb *core.FlatBlock) []string {
	out := make([]string, fb.NumRows())
	for i, row := range fb.Rows {
		var sb strings.Builder
		for _, v := range row {
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		out[i] = sb.String()
	}
	return out
}

// TestPaperQueryEndToEnd compiles and runs the paper's §4.3 example query
// text (adapted to the fixture's schema) and checks the exact top-2 result.
func TestPaperQueryEndToEnd(t *testing.T) {
	f := testgraph.New()
	src := `
		MATCH (p:Person)-[:KNOWS*1..2]->(fr) WHERE id(p) = 100
		WITH fr
		MATCH (fr)<-[:HAS_CREATOR]-(msg) WHERE msg.length > 125
		RETURN id(fr), id(msg), msg.length AS len
		ORDER BY len DESC, id(fr) ASC
		LIMIT 2`
	for _, mode := range []exec.Mode{exec.ModeFlat, exec.ModeFactorized, exec.ModeFused} {
		fb := runCypher(t, f, mode, src)
		if fb.NumRows() != 2 {
			t.Fatalf("%s: rows = %d\n%s", mode, fb.NumRows(), fb)
		}
		// Expected (see op tests): (106, 205, 150) then (105, 204, 140).
		if fb.Rows[0][0].I != 106 || fb.Rows[0][1].I != 205 || fb.Rows[0][2].I != 150 {
			t.Fatalf("%s: row0 = %v", mode, fb.Rows[0])
		}
		if fb.Rows[1][0].I != 105 || fb.Rows[1][1].I != 204 || fb.Rows[1][2].I != 140 {
			t.Fatalf("%s: row1 = %v", mode, fb.Rows[1])
		}
		if got := fb.Names[2]; got != "len" {
			t.Fatalf("alias not applied: %q", got)
		}
	}
}

func TestScanFilterProject(t *testing.T) {
	f := testgraph.New()
	fb := runCypher(t, f, exec.ModeFused, `
		MATCH (p:Person) WHERE p.firstName STARTS WITH 'A'
		RETURN id(p), p.firstName`)
	want := []string{"100|Ada|"}
	if got := rowStrings(fb); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAggregation(t *testing.T) {
	f := testgraph.New()
	fb := runCypher(t, f, exec.ModeFused, `
		MATCH (p:Person)<-[:HAS_CREATOR]-(m:Post)
		RETURN id(p) AS creator, COUNT(*) AS posts, MAX(m.length) AS longest
		ORDER BY posts DESC, creator ASC`)
	// Post creators: p1x1, p2x2, p4x1, p5x1, p6x1, p9x1.
	if fb.NumRows() != 6 {
		t.Fatalf("groups = %d\n%s", fb.NumRows(), fb)
	}
	if fb.Rows[0][0].I != 102 || fb.Rows[0][1].I != 2 {
		t.Fatalf("top group = %v", fb.Rows[0])
	}
	if !reflect.DeepEqual(fb.Names, []string{"creator", "posts", "longest"}) {
		t.Fatalf("names = %v", fb.Names)
	}
}

func TestDistinctAndSkipLimit(t *testing.T) {
	f := testgraph.New()
	fb := runCypher(t, f, exec.ModeFactorized, `
		MATCH (p:Person)-[:KNOWS]->(f)-[:KNOWS]->(g) WHERE id(p) = 100
		RETURN DISTINCT id(g)
		ORDER BY id(g) ASC
		SKIP 1 LIMIT 2`)
	want := []string{"104|", "105|"}
	if got := rowStrings(fb); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestIncomingAndBothDirections(t *testing.T) {
	f := testgraph.New()
	// Likers of post 200 (incoming LIKES).
	fb := runCypher(t, f, exec.ModeFused, `
		MATCH (m:Post)<-[:LIKES]-(who) WHERE id(m) = 200
		RETURN id(who) ORDER BY id(who) ASC`)
	want := []string{"100|", "107|"}
	if got := rowStrings(fb); !reflect.DeepEqual(got, want) {
		t.Fatalf("likers = %v, want %v", got, want)
	}
	// Undirected traversal finds p0's neighborhood both ways.
	fb2 := runCypher(t, f, exec.ModeFused, `
		MATCH (p:Person)-[:KNOWS]-(f) WHERE id(p) = 101
		RETURN DISTINCT id(f) ORDER BY id(f)`)
	if fb2.NumRows() != 2 { // p0 and p4 (symmetric edges, both directions)
		t.Fatalf("undirected neighbors:\n%s", fb2)
	}
}

func TestInAndBooleanOps(t *testing.T) {
	f := testgraph.New()
	fb := runCypher(t, f, exec.ModeFused, `
		MATCH (p:Person)
		WHERE p.firstName IN ['Ada', 'Eve'] AND NOT p.firstName = 'Eve'
		RETURN p.firstName`)
	if fb.NumRows() != 1 || fb.Rows[0][0].S != "Ada" {
		t.Fatalf("rows:\n%s", fb)
	}
}

func TestArithmeticReturn(t *testing.T) {
	f := testgraph.New()
	fb := runCypher(t, f, exec.ModeFused, `
		MATCH (m:Post) WHERE id(m) = 200
		RETURN m.length + 1 AS incremented`)
	if fb.NumRows() != 1 || fb.Rows[0][0].I != 101 {
		t.Fatalf("rows:\n%s", fb)
	}
	if fb.Names[0] != "incremented" {
		t.Fatalf("names = %v", fb.Names)
	}
}

func TestParseErrors(t *testing.T) {
	f := testgraph.New()
	cases := []struct {
		src  string
		frag string
	}{
		{"RETURN 1", "MATCH"},
		{"MATCH (p:Nope) RETURN id(p)", "unknown label"},
		{"MATCH (p:Person)-[:NOPE]->(q) RETURN id(p)", "unknown relationship"},
		{"MATCH (p:Person)-[:KNOWS*1..2]->(p) RETURN id(p)", "cyclic"},
		{"MATCH (p) RETURN id(p)", "needs a label"},
		{"MATCH (p:Person RETURN id(p)", "expected"},
		{"MATCH (p:Person) WHERE p.firstName = RETURN 1", "literal"},
		{"MATCH (p:Person) RETURN id(q)", "unknown variable"},
		{"MATCH (p:Person) RETURN id(p) ORDER BY nope", "unknown alias"},
	}
	for _, c := range cases {
		_, err := cypher.Compile(c.src, f.Cat)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.frag)
		}
	}
}

func TestCountDistinct(t *testing.T) {
	f := testgraph.New()
	fb := runCypher(t, f, exec.ModeFused, `
		MATCH (p:Person)-[:KNOWS*1..2]->(f)
		WHERE id(p) = 100
		RETURN COUNT(DISTINCT f.lastName) AS names`)
	if fb.NumRows() != 1 || fb.Rows[0][0].I != 1 {
		t.Fatalf("rows:\n%s", fb)
	}
}

func TestVarLengthDefaultBound(t *testing.T) {
	f := testgraph.New()
	fb := runCypher(t, f, exec.ModeFused, `
		MATCH (p:Person)-[:KNOWS*]->(f) WHERE id(p) = 100
		RETURN COUNT(*) AS reach`)
	if fb.NumRows() != 1 {
		t.Fatal("want one row")
	}
	// *1..3 default: p1..p9 minus p8,p9? p7/p8/p9 are 3 hops: reachable
	// within 3 hops: p1..p9 = 9.
	if fb.Rows[0][0].I != 9 {
		t.Fatalf("reach = %v", fb.Rows[0][0])
	}
}

// triangleFixture returns the shared fixture with a symmetric p1-p2 edge
// added, closing two KNOWS triangles ({p0,p1,p2} via p0's edges and
// {p1,p2,p4} via p4's).
func triangleFixture(t *testing.T) *testgraph.Fixture {
	t.Helper()
	f := testgraph.New()
	s := f.Schema
	for _, e := range [][2]int{{1, 2}} {
		a, b := f.Persons[e[0]], f.Persons[e[1]]
		if err := f.Graph.AddEdge(s.Knows, a, b, vector.Date(21000)); err != nil {
			t.Fatal(err)
		}
		if err := f.Graph.AddEdge(s.Knows, b, a, vector.Date(21000)); err != nil {
			t.Fatal(err)
		}
	}
	f.Graph.CompactAdjacency()
	f.Graph.SealCSR()
	return f
}

// TestCyclicPatternCompilesToExpandIntersect checks that a triangle pattern —
// whose closing relationship targets an already-bound variable — lowers to
// the multiway intersection operator and returns the right count in every
// mode, with and without the WCOJ lowering enabled.
func TestCyclicPatternCompilesToExpandIntersect(t *testing.T) {
	f := triangleFixture(t)
	src := `MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person)-[:KNOWS]->(a)
	        RETURN count(*) AS n`
	p, err := cypher.Compile(src, f.Cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "ExpandIntersect") {
		t.Fatalf("cyclic pattern did not lower to ExpandIntersect: %s", p)
	}
	for _, mode := range []exec.Mode{exec.ModeFlat, exec.ModeFactorized, exec.ModeFused} {
		fb := runCypher(t, f, mode, src)
		// Two triangles, six ordered traversals each.
		if fb.NumRows() != 1 || fb.Rows[0][0].I != 12 {
			t.Fatalf("mode %s: got %v, want one row with n=12", mode, fb.Rows)
		}
		// The NoWCOJ knob de-fuses inside the operator; the count must not
		// change.
		e := exec.New(mode)
		e.NoWCOJ = true
		res, err := e.Run(f.Graph, p)
		if err != nil {
			t.Fatalf("no-wcoj run: %v", err)
		}
		if res.Block.NumRows() != 1 || res.Block.Rows[0][0].I != 12 {
			t.Fatalf("mode %s no-wcoj: got %v", mode, res.Block.Rows)
		}
	}
}

// TestDiamondLowersToExpandIntersect pins the lowering for a two-closure
// diamond pattern and cross-checks the WCOJ plan against the de-fused
// execution path.
func TestDiamondLowersToExpandIntersect(t *testing.T) {
	f := triangleFixture(t)
	src := `MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(d:Person)
	        MATCH (a)-[:KNOWS]->(c:Person)-[:KNOWS]->(d)
	        RETURN count(*) AS n`
	p, err := cypher.Compile(src, f.Cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "ExpandIntersect") {
		t.Fatalf("diamond did not lower to ExpandIntersect: %s", p)
	}
	var want int64 = -1
	for _, mode := range []exec.Mode{exec.ModeFlat, exec.ModeFactorized, exec.ModeFused} {
		for _, noWCOJ := range []bool{false, true} {
			e := exec.New(mode)
			e.NoWCOJ = noWCOJ
			res, err := e.Run(f.Graph, p)
			if err != nil {
				t.Fatalf("mode %s no-wcoj=%v: %v", mode, noWCOJ, err)
			}
			got := res.Block.Rows[0][0].I
			if want < 0 {
				want = got
			}
			if got != want || got <= 0 {
				t.Fatalf("mode %s no-wcoj=%v: count = %d, want %d", mode, noWCOJ, got, want)
			}
		}
	}
}

// TestCyclicVarLengthRejected pins the binder's error for var-length
// relationships that close a cycle (bind.go): those cannot lower to the
// intersection operator and must be rejected with a rewrite hint.
func TestCyclicVarLengthRejected(t *testing.T) {
	f := testgraph.New()
	src := `MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS*1..2]->(a)
	        RETURN count(*) AS n`
	_, err := cypher.Compile(src, f.Cat)
	if err == nil {
		t.Fatal("cyclic var-length pattern compiled; want error")
	}
	const want = `cypher: cyclic var-length patterns ("a" already bound) are not supported; rewrite with separate MATCH clauses and joins`
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}

// TestCyclicVarLengthRewriteWorkaround exercises the rewrite the error
// message recommends: bind the closing endpoint under a fresh variable in a
// separate MATCH and equate the ids in WHERE.
func TestCyclicVarLengthRewriteWorkaround(t *testing.T) {
	f := triangleFixture(t)
	rewritten := `MATCH (a:Person)-[:KNOWS]->(b:Person)
	        MATCH (b)-[:KNOWS*1..1]->(c:Person)
	        WHERE id(c) = id(a)
	        RETURN count(*) AS n`
	// The single-hop form of the same cycle is supported directly; both must
	// count the mutual KNOWS pairs (no parallel edges in the fixture).
	direct := `MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(a)
	        RETURN count(*) AS n`
	for _, mode := range []exec.Mode{exec.ModeFlat, exec.ModeFactorized, exec.ModeFused} {
		got := runCypher(t, f, mode, rewritten)
		want := runCypher(t, f, mode, direct)
		if got.NumRows() != 1 || want.NumRows() != 1 {
			t.Fatalf("mode %s: rows = %d / %d", mode, got.NumRows(), want.NumRows())
		}
		if got.Rows[0][0].I != want.Rows[0][0].I || want.Rows[0][0].I <= 0 {
			t.Fatalf("mode %s: rewrite = %d, direct cycle = %d", mode, got.Rows[0][0].I, want.Rows[0][0].I)
		}
	}
}
