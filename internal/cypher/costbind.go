package cypher

import (
	"fmt"
	"math"

	"ges/internal/catalog"
	"ges/internal/op"
	"ges/internal/storage"
)

// bindMatchCosted lowers one MATCH clause with the cost model driving plan
// shape (DESIGN.md §10):
//
//   - anchor: among the clause's nodes (or, in continuing clauses, its
//     already-bound ones) the binder picks the start with the smallest
//     estimated cardinality — an id() seek anywhere in the pattern beats
//     any scan, and scans are weighted by label cardinality times the
//     selectivity of the node's own WHERE conjuncts. The anchor becomes
//     the f-Tree root, so the highest-selectivity prefix also minimizes
//     de-factoring.
//   - orientation: the frontier grows by whichever remaining relationship
//     yields the fewest estimated rows; traversing a relationship from its
//     written destination emits Dir.Reverse(), turning a badly-oriented
//     pattern into its cheap mirror image.
//   - pushdown: single-variable WHERE conjuncts filter as soon as their
//     variable binds instead of at clause end, so a selective predicate
//     prunes before fan-out. Results are identical either way — filters
//     are pure and conjunction commutes.
//
// Estimated cardinality accumulates in b.rows for the drift counters.
func (b *binder) bindMatchCosted(m *MatchClause, first bool) error {
	n := len(m.Nodes)
	labels := make([]catalog.LabelID, n)
	for i, nd := range m.Nodes {
		l, err := b.labelOf(nd)
		if err != nil {
			return err
		}
		labels[i] = l
	}
	// A later occurrence of a repeated variable may carry the explicit
	// label; re-resolve so every occurrence sees it.
	for i, nd := range m.Nodes {
		if labels[i] == storage.AnyLabel {
			if l, ok := b.labels[nd.Var]; ok {
				labels[i] = l
			}
		}
	}
	labelOfVar := map[string]catalog.LabelID{}
	for i, nd := range m.Nodes {
		if _, ok := labelOfVar[nd.Var]; !ok || labelOfVar[nd.Var] == storage.AnyLabel {
			labelOfVar[nd.Var] = labels[i]
		}
	}
	ets := make([]catalog.EdgeTypeID, len(m.Rels))
	for j, rel := range m.Rels {
		et, ok := b.cat.EdgeType(rel.Type)
		if !ok {
			return fmt.Errorf("cypher: unknown relationship type %q", rel.Type)
		}
		ets[j] = et
	}

	// Partition the WHERE into single-variable conjunct groups (pushed when
	// the variable binds) and a residual (filtered at clause end).
	perVar := map[string][]Expr{}
	var varOrder []string
	var residual []Expr
	for _, c := range conjuncts(m.Where, nil) {
		vars := refVars(c, nil)
		if len(vars) == 1 {
			v := vars[0]
			if len(perVar[v]) == 0 {
				varOrder = append(varOrder, v)
			}
			perVar[v] = append(perVar[v], c)
		} else {
			residual = append(residual, c)
		}
	}

	// varSel estimates the combined selectivity of a variable's pending
	// conjuncts.
	varSel := func(v string) float64 {
		s := 1.0
		for _, c := range perVar[v] {
			s *= b.conjSel(c, labelOfVar[v])
		}
		return s
	}
	// pushVar filters a newly bound variable's pending conjuncts.
	pushVar := func(v string) error {
		cs := perVar[v]
		if len(cs) == 0 {
			return nil
		}
		pred := andAll(cs)
		if err := b.ensureProjections(pred); err != nil {
			return err
		}
		e, err := b.toExpr(pred)
		if err != nil {
			return err
		}
		b.plan = append(b.plan, &op.Filter{Pred: e})
		b.rows *= varSel(v)
		delete(perVar, v)
		return nil
	}

	// Anchor. Continuing clauses start from whatever is already bound; a
	// first clause picks the cheapest node.
	anyBound := false
	for _, nd := range m.Nodes {
		if b.bound[nd.Var] {
			anyBound = true
			break
		}
	}
	if !anyBound {
		if !first {
			return fmt.Errorf("cypher: MATCH must start from an already-bound variable (%q is new)", m.Nodes[0].Var)
		}
		best, bestCost := -1, math.Inf(1)
		bestSeek, bestHasSeek := idSeek{}, false
		seen := map[string]bool{}
		for i, nd := range m.Nodes {
			if seen[nd.Var] {
				continue
			}
			seen[nd.Var] = true
			if labels[i] == storage.AnyLabel {
				continue // neither seek nor scan can anchor an unlabeled node
			}
			seek, _, hasSeek := b.seekFromConjs(nd.Var, perVar[nd.Var])
			cost := 1.0
			if !hasSeek {
				cost = b.cost.LabelCard(labels[i]) * varSel(nd.Var)
			}
			if cost < bestCost {
				best, bestCost = i, cost
				bestSeek, bestHasSeek = seek, hasSeek
			}
		}
		if best < 0 {
			return fmt.Errorf("cypher: the first node %q needs a label (or an id() equality) to anchor the scan", m.Nodes[0].Var)
		}
		v := m.Nodes[best].Var
		b.anchor = v
		if bestHasSeek {
			_, ci, _ := b.seekFromConjs(v, perVar[v])
			perVar[v] = append(append([]Expr{}, perVar[v][:ci]...), perVar[v][ci+1:]...)
			b.plan = append(b.plan, &op.NodeByIdSeek{Var: v, Label: labels[best], ExtID: bestSeek.ext, ExtParam: bestSeek.slot})
			b.rows = 1
		} else {
			b.plan = append(b.plan, &op.NodeScan{Var: v, Label: labels[best]})
			b.rows = b.cost.LabelCard(labels[best])
		}
		b.bound[v] = true
		if err := pushVar(v); err != nil {
			return err
		}
	}
	// Conjuncts on variables bound before this clause filter immediately,
	// before any fan-out (the syntactic binder would apply them at clause
	// end — same rows, more work).
	for _, v := range varOrder {
		if b.bound[v] && len(perVar[v]) > 0 {
			if err := pushVar(v); err != nil {
				return err
			}
		}
	}

	// Greedy frontier: emit whichever remaining relationship yields the
	// fewest estimated rows until the clause's path is consumed.
	done := make([]bool, len(m.Rels))
	for remaining := len(m.Rels); remaining > 0; remaining-- {
		bestJ := -1
		bestRows := math.Inf(1)
		bestRight := false // traverse right-to-left (reverse of written)
		for j, rel := range m.Rels {
			if done[j] {
				continue
			}
			lv, rv := m.Nodes[j].Var, m.Nodes[j+1].Var
			lb, rb := b.bound[lv], b.bound[rv]
			if !lb && !rb {
				continue
			}
			var est float64
			var fromRight bool
			switch {
			case lb && rb:
				// Closure: an intersection semi-join only narrows.
				f := b.fanout(labels[j], ets[j], rel, false, labels[j+1])
				factor := 1.0
				if card := b.cost.LabelCard(labels[j+1]); card > 0 {
					factor = math.Min(1, f/card)
				}
				est = b.rows * factor
			case lb:
				f := b.fanout(labels[j], ets[j], rel, false, labels[j+1])
				est = b.rows * f * varSel(rv)
			default:
				fromRight = true
				f := b.fanout(labels[j+1], ets[j], rel, true, labels[j])
				est = b.rows * f * varSel(lv)
			}
			if est < bestRows {
				bestJ, bestRows, bestRight = j, est, fromRight
			}
		}
		if bestJ < 0 {
			// A linear path with one bound node always has a frontier
			// relationship; defensive only.
			return fmt.Errorf("cypher: disconnected pattern in MATCH")
		}
		rel := m.Rels[bestJ]
		lv, rv := m.Nodes[bestJ].Var, m.Nodes[bestJ+1].Var
		varLen := rel.MinHops != 1 || rel.MaxHops != 1
		switch {
		case b.bound[lv] && b.bound[rv]:
			if varLen {
				return fmt.Errorf("cypher: cyclic var-length patterns (%q already bound) are not supported; rewrite with separate MATCH clauses and joins", rv)
			}
			b.plan = append(b.plan, &op.ExpandInto{
				From: lv, To: rv, Et: ets[bestJ], Dir: rel.Dir,
				DstLabel: labels[bestJ+1], SrcLabel: labels[bestJ],
			})
			b.rows = bestRows
		case bestRight:
			if varLen {
				// Distinct var-length pairs are symmetric, so the reversed
				// traversal enumerates the same set.
				b.plan = append(b.plan, &op.VarLengthExpand{
					From: rv, To: lv, Et: ets[bestJ], Dir: rel.Dir.Reverse(), DstLabel: labels[bestJ],
					MinHops: rel.MinHops, MaxHops: rel.MaxHops, Distinct: true,
				})
			} else {
				b.plan = append(b.plan, &op.Expand{
					From: rv, To: lv, Et: ets[bestJ], Dir: rel.Dir.Reverse(), DstLabel: labels[bestJ],
				})
			}
			b.bound[lv] = true
			b.rows = bestRows
			if err := pushVar(lv); err != nil {
				return err
			}
		default:
			if varLen {
				b.plan = append(b.plan, &op.VarLengthExpand{
					From: lv, To: rv, Et: ets[bestJ], Dir: rel.Dir, DstLabel: labels[bestJ+1],
					MinHops: rel.MinHops, MaxHops: rel.MaxHops, Distinct: true,
				})
			} else {
				b.plan = append(b.plan, &op.Expand{
					From: lv, To: rv, Et: ets[bestJ], Dir: rel.Dir, DstLabel: labels[bestJ+1],
				})
			}
			b.bound[rv] = true
			b.rows = bestRows
			if err := pushVar(rv); err != nil {
				return err
			}
		}
		done[bestJ] = true
	}

	// Residual: multi-variable conjuncts, plus any single-variable group
	// whose variable never bound (ensureProjections reports it, matching
	// the syntactic path's error).
	for _, v := range varOrder {
		if len(perVar[v]) > 0 {
			residual = append(residual, perVar[v]...)
			delete(perVar, v)
		}
	}
	if len(residual) > 0 {
		pred := andAll(residual)
		if err := b.ensureProjections(pred); err != nil {
			return err
		}
		e, err := b.toExpr(pred)
		if err != nil {
			return err
		}
		b.plan = append(b.plan, &op.Filter{Pred: e})
		for range residual {
			b.rows /= 3 // no cross-variable statistics; assume 1/3 each
		}
	}
	return nil
}

// fanout estimates the average neighbor count of one traversal step,
// raising it to the mean hop count for variable-length relationships.
func (b *binder) fanout(src catalog.LabelID, et catalog.EdgeTypeID, rel RelPat, reversed bool, dst catalog.LabelID) float64 {
	dir := rel.Dir
	if reversed {
		dir = dir.Reverse()
	}
	f := b.cost.FanOut(src, et, dir, dst)
	if rel.MinHops != 1 || rel.MaxHops != 1 {
		hops := float64(rel.MinHops+rel.MaxHops) / 2
		f = math.Min(math.Pow(f, hops), 1e15)
	}
	return f
}

// seekFromConjs finds an `id(v) = <int>` conjunct in a split conjunct list
// and returns the seek plus the conjunct's index.
func (b *binder) seekFromConjs(v string, conjs []Expr) (idSeek, int, bool) {
	for i, c := range conjs {
		bin, ok := c.(Bin)
		if !ok || bin.Op != "=" {
			continue
		}
		if id, ok := bin.L.(IDRef); ok && id.Var == v {
			if s, ok := b.seekLit(bin.R); ok {
				return s, i, true
			}
		}
		if id, ok := bin.R.(IDRef); ok && id.Var == v {
			if s, ok := b.seekLit(bin.L); ok {
				return s, i, true
			}
		}
	}
	return idSeek{}, -1, false
}

// conjSel estimates the selectivity of one conjunct over a variable with
// the given label, reading the column summaries through the cost model.
func (b *binder) conjSel(c Expr, label catalog.LabelID) float64 {
	switch n := c.(type) {
	case Bin:
		switch n.Op {
		case "AND":
			return b.conjSel(n.L, label) * b.conjSel(n.R, label)
		case "OR":
			return math.Min(1, b.conjSel(n.L, label)+b.conjSel(n.R, label))
		case "=", "<>":
			var eq float64
			if pr, _, ok := propCmp(n.L, n.R); ok {
				eq = b.cost.EqSel(label, pr.Prop)
			} else if _, ok := cmpIDLit(n.L, n.R); ok {
				eq = 1 / math.Max(1, b.cost.LabelCard(label))
			} else {
				return 1
			}
			if n.Op == "<>" {
				return 1 - eq
			}
			return eq
		case "<", "<=", ">", ">=":
			if pr, lit, ok := propCmp(n.L, n.R); ok {
				return b.cost.RangeSel(label, pr.Prop, n.Op, b.litValue(lit))
			}
			if pr, lit, ok := propCmp(n.R, n.L); ok {
				// literal OP prop — flip the operator.
				flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<="}
				return b.cost.RangeSel(label, pr.Prop, flip[n.Op], b.litValue(lit))
			}
			return 1
		}
	case InList:
		if pr, ok := n.X.(PropRef); ok {
			return b.cost.InSel(label, pr.Prop, len(n.List))
		}
	case StrPred:
		return b.cost.StrSel()
	case Not:
		return math.Max(1-b.conjSel(n.X, label), 0.05)
	}
	return 1
}

// propCmp matches `<prop> OP <literal>` operand pairs.
func propCmp(l, r Expr) (PropRef, Lit, bool) {
	pr, ok := l.(PropRef)
	if !ok {
		return PropRef{}, Lit{}, false
	}
	lit, ok := r.(Lit)
	if !ok {
		return PropRef{}, Lit{}, false
	}
	return pr, lit, true
}

// cmpIDLit matches `id(v) = <literal>` operand pairs in either order.
func cmpIDLit(l, r Expr) (IDRef, bool) {
	if id, ok := l.(IDRef); ok {
		if _, isLit := r.(Lit); isLit {
			return id, true
		}
	}
	if id, ok := r.(IDRef); ok {
		if _, isLit := l.(Lit); isLit {
			return id, true
		}
	}
	return IDRef{}, false
}

// conjuncts splits the AND tree of a WHERE expression.
func conjuncts(e Expr, dst []Expr) []Expr {
	if e == nil {
		return dst
	}
	if bin, ok := e.(Bin); ok && bin.Op == "AND" {
		return conjuncts(bin.R, conjuncts(bin.L, dst))
	}
	return append(dst, e)
}

// andAll rebuilds a conjunction from split conjuncts.
func andAll(cs []Expr) Expr {
	e := cs[0]
	for _, c := range cs[1:] {
		e = Bin{Op: "AND", L: e, R: c}
	}
	return e
}

// refVars returns the distinct variables referenced by an expression, in
// first-appearance order.
func refVars(e Expr, dst []string) []string {
	for _, ref := range collectRefs(e, nil) {
		var v string
		switch r := ref.(type) {
		case PropRef:
			v = r.Var
		case IDRef:
			v = r.Var
		}
		found := false
		for _, d := range dst {
			if d == v {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, v)
		}
	}
	return dst
}
