package cypher

import (
	"strconv"
	"strings"

	"ges/internal/vector"
)

// Normalize rewrites a query's parameterizable literals into $k
// placeholders and returns the normalized text plus the extracted values in
// slot order (slot k = params[k-1]). Literal-differing queries normalize to
// the same text, so the service's plan cache can serve one compiled
// skeleton for all of them and re-bind the values per request.
//
// The normalized text is a canonical token rendering (single spaces,
// uppercased keywords), which also folds whitespace and keyword-case
// variants of the same query onto one cache entry. It re-lexes to the same
// token stream, so cache misses compile from the normalized text directly.
//
// Literals that shape the plan rather than filter rows stay inline:
//   - SKIP / LIMIT counts (they parameterize operators structurally),
//   - anything inside [...] brackets — variable-length hop bounds and
//     IN-lists (the In evaluator bakes its list into the compiled plan),
//   - CONTAINS / STARTS WITH / ENDS WITH patterns (the StrPred node holds
//     a raw string, not an expression).
func Normalize(src string) (string, []vector.Value, error) {
	toks, err := lex(src)
	if err != nil {
		return "", nil, err
	}
	var (
		sb       strings.Builder
		params   []vector.Value
		brackets int
		prevKw   string // previous keyword token, "" after any other token
	)
	put := func(s string) {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(s)
	}
	for _, t := range toks {
		inline := brackets > 0 || prevKw == "SKIP" || prevKw == "LIMIT" ||
			prevKw == "CONTAINS" || prevKw == "WITH"
		switch t.kind {
		case tkEOF:
			continue
		case tkLBracket:
			brackets++
			put("[")
		case tkRBracket:
			brackets--
			put("]")
		case tkInt:
			if inline {
				put(t.text)
				break
			}
			v, perr := strconv.ParseInt(t.text, 10, 64)
			if perr != nil {
				put(t.text)
				break
			}
			params = append(params, vector.Int64(v))
			put("$" + strconv.Itoa(len(params)))
		case tkFloat:
			if inline {
				put(t.text)
				break
			}
			v, perr := strconv.ParseFloat(t.text, 64)
			if perr != nil {
				put(t.text)
				break
			}
			params = append(params, vector.Float64(v))
			put("$" + strconv.Itoa(len(params)))
		case tkString:
			if inline {
				put(quoteString(t.text))
				break
			}
			params = append(params, vector.String_(t.text))
			put("$" + strconv.Itoa(len(params)))
		case tkParam:
			// Already-parameterized text passes through untouched; mixing
			// explicit $k with extracted literals would renumber slots, so
			// the caller's own parameters win and nothing is extracted.
			return canonicalText(toks), nil, nil
		default:
			put(t.text)
		}
		if t.kind == tkKeyword {
			prevKw = t.text
		} else {
			prevKw = ""
		}
	}
	return sb.String(), params, nil
}

// canonicalText renders a token stream without extracting parameters.
func canonicalText(toks []token) string {
	var sb strings.Builder
	for _, t := range toks {
		if t.kind == tkEOF {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		switch t.kind {
		case tkString:
			sb.WriteString(quoteString(t.text))
		case tkParam:
			sb.WriteString("$" + t.text)
		default:
			sb.WriteString(t.text)
		}
	}
	return sb.String()
}

// quoteString renders a string literal so it re-lexes to the same value.
func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' || s[i] == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('\'')
	return sb.String()
}
