package cypher_test

import (
	"reflect"
	"testing"

	"ges/internal/cypher"
	"ges/internal/exec"
	"ges/internal/plan"
	"ges/internal/testgraph"
	"ges/internal/vector"
)

func TestNormalizeExtractsLiterals(t *testing.T) {
	norm, params, err := cypher.Normalize(
		`MATCH (p:Person) WHERE p.age > 30 AND p.name = 'Ann' RETURN id(p)`)
	if err != nil {
		t.Fatal(err)
	}
	want := `MATCH ( p : Person ) WHERE p . age > $1 AND p . name = $2 RETURN ID ( p )`
	if norm != want {
		t.Fatalf("normalized = %q, want %q", norm, want)
	}
	wantParams := []vector.Value{vector.Int64(30), vector.String_("Ann")}
	if !reflect.DeepEqual(params, wantParams) {
		t.Fatalf("params = %v, want %v", params, wantParams)
	}
}

func TestNormalizeFoldsWhitespaceAndKeywordCase(t *testing.T) {
	a, pa, err := cypher.Normalize("match (p:Person)  where p.age > 30\n\treturn id(p)")
	if err != nil {
		t.Fatal(err)
	}
	b, pb, err := cypher.Normalize("MATCH (p:Person) WHERE p.age > 99 RETURN id(p)")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("whitespace/case/literal variants split the cache key:\n%q\n%q", a, b)
	}
	if pa[0].I != 30 || pb[0].I != 99 {
		t.Fatalf("params = %v / %v", pa, pb)
	}
}

// TestNormalizeKeepsStructuralLiterals pins the inline rules: literals that
// shape the plan (SKIP/LIMIT counts, bracketed hop bounds and IN-lists,
// string-predicate patterns) must never become parameters.
func TestNormalizeKeepsStructuralLiterals(t *testing.T) {
	cases := []struct {
		src     string
		nparams int
	}{
		{`MATCH (p:Person) RETURN id(p) SKIP 2 LIMIT 5`, 0},
		{`MATCH (p:Person)-[:KNOWS*1..3]->(f) RETURN id(f)`, 0},
		{`MATCH (p:Person) WHERE p.age IN [30, 40] RETURN id(p)`, 0},
		{`MATCH (p:Person) WHERE p.name CONTAINS 'nn' RETURN id(p)`, 0},
		{`MATCH (p:Person) WHERE p.age = 30 RETURN id(p) LIMIT 5`, 1},
	}
	for _, c := range cases {
		norm, params, err := cypher.Normalize(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if len(params) != c.nparams {
			t.Fatalf("%s -> %q extracted %d params, want %d", c.src, norm, len(params), c.nparams)
		}
	}
}

func TestNormalizePassesThroughExplicitParams(t *testing.T) {
	norm, params, err := cypher.Normalize(`MATCH (p:Person) WHERE id(p) = $1 AND p.age > 30 RETURN id(p)`)
	if err != nil {
		t.Fatal(err)
	}
	if params != nil {
		t.Fatalf("explicit-$k text must not extract literals, got %v", params)
	}
	if norm != `MATCH ( p : Person ) WHERE ID ( p ) = $1 AND p . age > 30 RETURN ID ( p )` {
		t.Fatalf("canonical text = %q", norm)
	}
}

// TestNormalizeIdempotent: normalizing the normalized text is a fixpoint
// (the $k placeholders pass through, nothing further is extracted).
func TestNormalizeIdempotent(t *testing.T) {
	norm, _, err := cypher.Normalize(`MATCH (p:Person) WHERE p.age > 30 RETURN id(p)`)
	if err != nil {
		t.Fatal(err)
	}
	again, params, err := cypher.Normalize(norm)
	if err != nil {
		t.Fatal(err)
	}
	if again != norm || params != nil {
		t.Fatalf("not a fixpoint: %q -> %q (params %v)", norm, again, params)
	}
}

func TestNormalizeQuoteEscaping(t *testing.T) {
	norm, params, err := cypher.Normalize(`MATCH (p:Person) WHERE p.name IN ['O\'Brien'] RETURN id(p)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 0 {
		t.Fatalf("IN-list literal extracted: %v", params)
	}
	// The canonical text must re-lex to the same string value.
	if _, _, err := cypher.Normalize(norm); err != nil {
		t.Fatalf("canonical text does not re-lex: %q: %v", norm, err)
	}
}

// TestParamRoundTrip runs the paper's example query three ways — literal
// text, normalized text + re-bound params, and normalized text under the
// cost model — across all engine modes, and demands identical rows.
func TestParamRoundTrip(t *testing.T) {
	f := testgraph.New()
	src := `
		MATCH (p:Person)-[:KNOWS*1..2]->(fr) WHERE id(p) = 100
		WITH fr
		MATCH (fr)<-[:HAS_CREATOR]-(msg) WHERE msg.length > 125
		RETURN id(fr), id(msg), msg.length AS len
		ORDER BY len DESC, id(fr) ASC
		LIMIT 2`
	norm, params, err := cypher.Normalize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 2 { // id(p) literal and the length threshold
		t.Fatalf("extracted %d params (%v), want 2", len(params), params)
	}
	f.Graph.SealCSR()
	cm := plan.NewCostModel(f.Graph.Stats())

	for _, mode := range []exec.Mode{exec.ModeFlat, exec.ModeFactorized, exec.ModeFused} {
		want := rowStrings(runCypher(t, f, mode, src))
		for name, opts := range map[string]cypher.Options{
			"syntactic": {Params: params},
			"cost":      {Params: params, Cost: cm},
		} {
			c, err := cypher.CompileWith(norm, f.Cat, opts)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", mode, name, err)
			}
			eng := exec.New(mode)
			eng.Params = params
			res, err := eng.Run(f.Graph, c.Plan)
			if err != nil {
				t.Fatalf("%s/%s: run: %v", mode, name, err)
			}
			if got := rowStrings(res.Block); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s: rows diverge from literal text:\n%v\nwant %v", mode, name, got, want)
			}
		}
	}
}

// TestUnboundParamFails: executing a parameterized plan without binding the
// values must fail loudly, not silently match id 0.
func TestUnboundParamFails(t *testing.T) {
	f := testgraph.New()
	c, err := cypher.CompileWith(
		`MATCH ( p : Person ) WHERE p . age > $1 RETURN ID ( p )`, f.Cat,
		cypher.Options{Params: []vector.Value{vector.Int64(30)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.New(exec.ModeFused).Run(f.Graph, c.Plan); err == nil {
		t.Fatal("running with unbound $1 must error")
	}
}
