// Package cypher implements the frontend layer of GES's composable
// architecture (§2.1, Figure 1): a lexer, parser and binder for a practical
// subset of the Cypher query language, compiling declarative pattern queries
// into the engine's physical plans. The subset covers the shapes interactive
// graph queries take in the paper — linear MATCH paths with variable-length
// relationships, property predicates, projection with aliases, aggregation,
// ORDER BY / SKIP / LIMIT — e.g. the running example of §4.3:
//
//	MATCH (p:PERSON)-[:KNOWS*1..2]->(f) WHERE id(p) = 0
//	MATCH (f)<-[:HAS_CREATOR]-(msg) WHERE msg.len > 125
//	RETURN id(f), id(msg), msg.len
//	ORDER BY msg.len DESC, id(f) ASC LIMIT 2
package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkInt
	tkFloat
	tkString
	tkLParen
	tkRParen
	tkLBracket
	tkRBracket
	tkColon
	tkComma
	tkDot
	tkDotDot
	tkStar
	tkPipe
	tkDash
	tkArrowRight // ->
	tkArrowLeft  // <-
	tkLT
	tkLE
	tkGT
	tkGE
	tkEQ
	tkNE
	tkPlus
	tkSlash
	tkPercent
	tkParam // $k placeholder; text is the decimal slot number k >= 1
)

var keywords = map[string]bool{
	"MATCH": true, "WHERE": true, "RETURN": true, "ORDER": true, "BY": true,
	"LIMIT": true, "SKIP": true, "ASC": true, "DESC": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "AS": true, "DISTINCT": true,
	"CONTAINS": true, "STARTS": true, "ENDS": true, "WITH": true, "TRUE": true,
	"FALSE": true, "COUNT": true, "SUM": true, "MIN": true, "MAX": true,
	"AVG": true, "ID": true,
}

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tkEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes a query string.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	n := len(src)
	emit := func(k tokenKind, s string, pos int) {
		out = append(out, token{kind: k, text: s, pos: pos})
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			emit(tkLParen, "(", i)
			i++
		case c == ')':
			emit(tkRParen, ")", i)
			i++
		case c == '[':
			emit(tkLBracket, "[", i)
			i++
		case c == ']':
			emit(tkRBracket, "]", i)
			i++
		case c == ':':
			emit(tkColon, ":", i)
			i++
		case c == ',':
			emit(tkComma, ",", i)
			i++
		case c == '*':
			emit(tkStar, "*", i)
			i++
		case c == '|':
			emit(tkPipe, "|", i)
			i++
		case c == '+':
			emit(tkPlus, "+", i)
			i++
		case c == '/':
			emit(tkSlash, "/", i)
			i++
		case c == '%':
			emit(tkPercent, "%", i)
			i++
		case c == '.':
			if i+1 < n && src[i+1] == '.' {
				emit(tkDotDot, "..", i)
				i += 2
			} else {
				emit(tkDot, ".", i)
				i++
			}
		case c == '-':
			if i+1 < n && src[i+1] == '>' {
				emit(tkArrowRight, "->", i)
				i += 2
			} else {
				emit(tkDash, "-", i)
				i++
			}
		case c == '<':
			switch {
			case i+1 < n && src[i+1] == '-':
				emit(tkArrowLeft, "<-", i)
				i += 2
			case i+1 < n && src[i+1] == '=':
				emit(tkLE, "<=", i)
				i += 2
			case i+1 < n && src[i+1] == '>':
				emit(tkNE, "<>", i)
				i += 2
			default:
				emit(tkLT, "<", i)
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(tkGE, ">=", i)
				i += 2
			} else {
				emit(tkGT, ">", i)
				i++
			}
		case c == '=':
			emit(tkEQ, "=", i)
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				emit(tkNE, "!=", i)
				i += 2
			} else {
				return nil, fmt.Errorf("cypher: unexpected '!' at %d", i)
			}
		case c == '$':
			j := i + 1
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("cypher: expected parameter number after '$' at %d", i)
			}
			emit(tkParam, src[i+1:j], i)
			i = j
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != quote {
				if src[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("cypher: unterminated string at %d", i)
			}
			emit(tkString, sb.String(), i)
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < n && (src[j] >= '0' && src[j] <= '9') {
				j++
			}
			if j+1 < n && src[j] == '.' && src[j+1] >= '0' && src[j+1] <= '9' {
				isFloat = true
				j++
				for j < n && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			if isFloat {
				emit(tkFloat, src[i:j], i)
			} else {
				emit(tkInt, src[i:j], i)
			}
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			if keywords[strings.ToUpper(word)] {
				emit(tkKeyword, strings.ToUpper(word), i)
			} else {
				emit(tkIdent, word, i)
			}
			i = j
		default:
			return nil, fmt.Errorf("cypher: unexpected character %q at %d", c, i)
		}
	}
	emit(tkEOF, "", n)
	return out, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
