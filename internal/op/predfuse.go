package op

import (
	"ges/internal/expr"
	"ges/internal/vector"
)

// ExtIDProp is the pseudo-property name that VertexPropPred maps to a
// vertex's external identifier.
const ExtIDProp = "@id"

// VertexPred filters candidate neighbors during fused expansion
// (FilterPushDown, §5). Test reports whether v passes. Fork returns an
// instance safe for exclusive use by one worker goroutine: predicates that
// carry per-instance state (compiled expression bindings, scratch cursors)
// return a fresh copy, while stateless predicates return themselves. The
// morsel-parallel expansion paths fork once per morsel so predicate state
// is never shared across workers.
type VertexPred interface {
	Test(ctx *Ctx, v vector.VID) bool
	Fork() VertexPred
}

// PredFunc adapts a stateless, concurrency-safe function to VertexPred.
type PredFunc func(*Ctx, vector.VID) bool

// Test implements VertexPred.
func (f PredFunc) Test(ctx *Ctx, v vector.VID) bool { return f(ctx, v) }

// Fork implements VertexPred; the function is stateless, so the same value
// serves every worker.
func (f PredFunc) Fork() VertexPred { return f }

// VertexPropPred compiles a predicate expression into an Expand vertex
// predicate for the FilterPushDown fusion. propOf maps each column name
// appearing in pred to the vertex property it denotes (or ExtIDProp). The
// expression binds lazily on first call, when the execution context (and
// thus the catalog) is available.
func VertexPropPred(pred expr.Expr, propOf map[string]string) VertexPred {
	_ = propOf // column names are rewritten to property names by the planner
	return &propPred{pred: pred}
}

// propPred is the stateful property-predicate instance: the compiled getter
// closes over cur, so each instance serves exactly one goroutine (parallel
// expansion forks one instance per morsel).
type propPred struct {
	pred     expr.Expr
	compiled expr.Getter
	initErr  error
	cur      vector.VID

	// Batch evaluation state (predbatch.go): scratch gather columns,
	// decomposed conjunct kernels, and the per-batch selection vector.
	batch     *predBatch
	batchInit bool
}

// Test implements VertexPred.
func (p *propPred) Test(ctx *Ctx, v vector.VID) bool {
	if p.compiled == nil && p.initErr == nil {
		p.compiled, p.initErr = expr.Bind(p.pred, vertexBinding{ctx: ctx, cur: &p.cur})
	}
	if p.initErr != nil {
		// Surface binding failures as "reject everything"; the unfused
		// plan path reports the same error loudly, and tests cover it.
		return false
	}
	p.cur = v
	return p.compiled(0).AsBool()
}

// Fork implements VertexPred with a fresh, unbound instance.
func (p *propPred) Fork() VertexPred { return &propPred{pred: p.pred} }

// vertexBinding resolves predicate column names to property reads of the
// vertex currently pointed at by cur.
type vertexBinding struct {
	ctx *Ctx
	cur *vector.VID
}

// Bind implements expr.Binding. The map-based indirection happens at
// VertexPropPred construction: column names in the expression have already
// been rewritten to property names by the planner, so Bind receives property
// names (or ExtIDProp) directly. Fused predicates bound here evaluate during
// the expansion walk, one candidate vertex at a time — there is no batch to
// gather over, so the scalar View calls are deliberate.
//
//geslint:scalar-ok
func (b vertexBinding) Bind(name string) (expr.Getter, error) {
	if name == ExtIDProp {
		view, cur := b.ctx.View, b.cur
		return func(int) vector.Value {
			return vector.Int64(view.ExtID(*cur))
		}, nil
	}
	g, err := newPropGetter(b.ctx.View, name)
	if err != nil {
		return nil, err
	}
	cur := b.cur
	return func(int) vector.Value { return g.get(*cur) }, nil
}

// RewriteCols returns a copy of e with every column reference renamed
// through the mapping (identity when absent).
func RewriteCols(e expr.Expr, rename map[string]string) expr.Expr {
	switch n := e.(type) {
	case expr.Col:
		if to, ok := rename[n.Name]; ok {
			return expr.Col{Name: to}
		}
		return n
	case expr.Cmp:
		return expr.Cmp{Op: n.Op, L: RewriteCols(n.L, rename), R: RewriteCols(n.R, rename)}
	case expr.And:
		return expr.And{L: RewriteCols(n.L, rename), R: RewriteCols(n.R, rename)}
	case expr.Or:
		return expr.Or{L: RewriteCols(n.L, rename), R: RewriteCols(n.R, rename)}
	case expr.Not:
		return expr.Not{X: RewriteCols(n.X, rename)}
	case expr.Arith:
		return expr.Arith{Op: n.Op, L: RewriteCols(n.L, rename), R: RewriteCols(n.R, rename)}
	case expr.In:
		return expr.In{X: RewriteCols(n.X, rename), List: n.List}
	case expr.StrPred:
		return expr.StrPred{Op: n.Op, L: RewriteCols(n.L, rename), R: n.R}
	default:
		return e
	}
}
