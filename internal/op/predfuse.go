package op

import (
	"ges/internal/expr"
	"ges/internal/vector"
)

// ExtIDProp is the pseudo-property name that VertexPropPred maps to a
// vertex's external identifier.
const ExtIDProp = "@id"

// VertexPropPred compiles a predicate expression into an Expand vertex
// predicate for the FilterPushDown fusion. propOf maps each column name
// appearing in pred to the vertex property it denotes (or ExtIDProp). The
// expression binds lazily on first call, when the execution context (and
// thus the catalog) is available.
func VertexPropPred(pred expr.Expr, propOf map[string]string) func(*Ctx, vector.VID) bool {
	var (
		compiled expr.Getter
		initErr  error
		cur      vector.VID
	)
	return func(ctx *Ctx, v vector.VID) bool {
		if compiled == nil && initErr == nil {
			compiled, initErr = expr.Bind(pred, vertexBinding{ctx: ctx, cur: &cur})
		}
		if initErr != nil {
			// Surface binding failures as "reject everything"; the unfused
			// plan path reports the same error loudly, and tests cover it.
			return false
		}
		cur = v
		return compiled(0).AsBool()
	}

}

// vertexBinding resolves predicate column names to property reads of the
// vertex currently pointed at by cur.
type vertexBinding struct {
	ctx *Ctx
	cur *vector.VID
}

// Bind implements expr.Binding. The map-based indirection happens at
// VertexPropPred construction: column names in the expression have already
// been rewritten to property names by the planner, so Bind receives property
// names (or ExtIDProp) directly.
func (b vertexBinding) Bind(name string) (expr.Getter, error) {
	if name == ExtIDProp {
		view, cur := b.ctx.View, b.cur
		return func(int) vector.Value {
			return vector.Int64(view.ExtID(*cur))
		}, nil
	}
	g, err := newPropGetter(b.ctx.View, name)
	if err != nil {
		return nil, err
	}
	cur := b.cur
	return func(int) vector.Value { return g.get(*cur) }, nil
}

// RewriteCols returns a copy of e with every column reference renamed
// through the mapping (identity when absent).
func RewriteCols(e expr.Expr, rename map[string]string) expr.Expr {
	switch n := e.(type) {
	case expr.Col:
		if to, ok := rename[n.Name]; ok {
			return expr.Col{Name: to}
		}
		return n
	case expr.Cmp:
		return expr.Cmp{Op: n.Op, L: RewriteCols(n.L, rename), R: RewriteCols(n.R, rename)}
	case expr.And:
		return expr.And{L: RewriteCols(n.L, rename), R: RewriteCols(n.R, rename)}
	case expr.Or:
		return expr.Or{L: RewriteCols(n.L, rename), R: RewriteCols(n.R, rename)}
	case expr.Not:
		return expr.Not{X: RewriteCols(n.X, rename)}
	case expr.Arith:
		return expr.Arith{Op: n.Op, L: RewriteCols(n.L, rename), R: RewriteCols(n.R, rename)}
	case expr.In:
		return expr.In{X: RewriteCols(n.X, rename), List: n.List}
	case expr.StrPred:
		return expr.StrPred{Op: n.Op, L: RewriteCols(n.L, rename), R: n.R}
	default:
		return e
	}
}
