package op

import (
	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/sched"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Intra-query parallelism (§2.1, Runtime): the operators shard their parent
// rows into fixed-size morsels claimed off the shared worker pool
// (internal/sched), then merge the per-morsel outputs in morsel order —
// results are byte-identical to the sequential path regardless of worker
// count or scheduling. Stateful fused predicates are forked once per morsel
// so no predicate state crosses goroutines.
//
// Parallel execution engages when ctx.Parallel > 1 and the parent block is
// large enough to amortize the fork/join (parallelMinRows).

const (
	parallelMinRows = 512

	// expandMorselSize shards parent rows for the expansion, traversal, and
	// de-factoring operators, whose per-row work (neighbor lookups, BFS,
	// enumeration) is substantial.
	expandMorselSize = 256

	// filterMorselSize shards rows for cheap per-row work (predicate
	// evaluation, property gathers). It is a multiple of 64, so concurrent
	// morsels never write the same selection-vector word.
	filterMorselSize = 4096
)

// expandShard is one morsel's output for the lazy (pointer-join) path.
type expandShard struct {
	segs  [][]vector.VID // per-append storage-owned segments
	index []core.Range   // ranges local to this shard (0-based)
	rows  int            // total child rows produced
}

// parallelLazyExpand runs the pointer-based-join expansion across morsels.
// It returns the merged child column and index vector.
func parallelLazyExpand(ctx *Ctx, name string, parent *core.Node, fromCol *vector.Column,
	et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID) (*vector.Column, []core.Range) {

	n := parent.Block.NumRows()
	shards := make([]expandShard, sched.NumMorsels(n, expandMorselSize))
	// Each claimant reuses one pooled source-VID buffer across every morsel
	// it drains (worker-local scratch); shard index vectors are pooled per
	// morsel and released after the merge below.
	ctx.RunMorselsScratch(n, expandMorselSize,
		func() any { return ctx.Arena.GetVIDs(expandMorselSize) },
		func(sc any) { ctx.Arena.PutVIDs(sc.([]vector.VID)) },
		func(m sched.Morsel, sc any) {
			sh := &shards[m.Index]
			sh.index = ctx.Arena.GetRanges(m.End - m.Start)
			total := 0
			if !ctx.NoCSR {
				// One batched call per morsel. The Batch is query-lifetime
				// arena memory (never reset mid-query), so the run sub-slices
				// the shard retains stay valid through the merge and beyond —
				// the lazy column keeps referencing them (shared mode aliases
				// the immutable CSR array; owned mode keeps its pack buffer).
				b := ctx.Arena.OwnBatch()
				srcs := expandSrcs(parent, fromCol, m.Start, m.End, sc.([]vector.VID))
				ctx.View.NeighborsBatch(srcs, et, dir, dstLabel, false, b)
				for i := range b.Runs {
					start := total
					if r := b.Runs[i]; r.End > r.Start {
						sh.segs = append(sh.segs, b.VIDs[r.Start:r.End])
						total += int(r.End - r.Start)
					}
					sh.index = append(sh.index, core.Range{Start: int32(start), End: int32(total)})
				}
				sh.rows = total
				return
			}
			var segBuf []storage.Segment
			for i := m.Start; i < m.End; i++ {
				start := total
				if parent.Valid(i) {
					//geslint:scalar-ok
					segBuf = ctx.View.Neighbors(segBuf[:0], fromCol.VIDAt(i), et, dir, dstLabel, false)
					for _, seg := range segBuf {
						sh.segs = append(sh.segs, seg.VIDs)
						total += len(seg.VIDs)
					}
				}
				sh.index = append(sh.index, core.Range{Start: int32(start), End: int32(total)})
			}
			sh.rows = total
		})

	// Deterministic merge: append shard segments in morsel order, offsetting
	// ranges. The merged index lands in the f-Tree, so it is query-lifetime
	// arena memory; the per-shard vectors return to the pool here.
	toCol := ctx.Arena.OwnLazyVIDColumn(name)
	index := ctx.Arena.OwnRanges(n)[:0]
	offset := int32(0)
	for si := range shards {
		sh := &shards[si]
		for _, seg := range sh.segs {
			toCol.AppendSegment(seg)
		}
		for _, rg := range sh.index {
			index = append(index, core.Range{Start: rg.Start + offset, End: rg.End + offset})
		}
		offset += int32(sh.rows)
		ctx.Arena.PutRanges(sh.index)
		sh.index = nil
	}
	return toCol, index
}

// matShard is one morsel's output for the materializing/fused-predicate
// expansion path.
type matShard struct {
	toCol    *vector.Column
	propCols []*vector.Column
	index    []core.Range
}

// parallelMaterialExpand runs the materializing expansion (edge properties
// and/or fused predicates) across morsels and merges the shard outputs in
// morsel order.
func parallelMaterialExpand(ctx *Ctx, o *Expand, parent *core.Node, fromCol *vector.Column,
	epp edgePropPlan) (*core.FBlock, []core.Range) {

	n := parent.Block.NumRows()
	shards := make([]matShard, sched.NumMorsels(n, expandMorselSize))
	ctx.RunMorsels(n, expandMorselSize, func(m sched.Morsel) {
		sh := &shards[m.Index]
		pred := o.VertexPred
		if pred != nil {
			pred = pred.Fork()
		}
		// Shard columns feed the merged block below and die with the query;
		// expandRows draws its batch/source/value scratch from the arena
		// internally.
		sh.toCol = ctx.Arena.OwnColumn(o.To, vector.KindVID)
		sh.propCols = make([]*vector.Column, len(o.EdgeProps))
		for p, ep := range o.EdgeProps {
			sh.propCols[p] = ctx.Arena.OwnColumn(ep.As, epp.kind[p])
		}
		sh.index = o.expandRows(ctx, pred, parent, fromCol, epp, m.Start, m.End,
			sh.toCol, sh.propCols, ctx.Arena.GetRanges(m.End-m.Start))
	})

	toCol := ctx.Arena.OwnColumn(o.To, vector.KindVID)
	propCols := make([]*vector.Column, len(o.EdgeProps))
	for p, ep := range o.EdgeProps {
		propCols[p] = ctx.Arena.OwnColumn(ep.As, epp.kind[p])
	}
	index := ctx.Arena.OwnRanges(n)[:0]
	offset := int32(0)
	for si := range shards {
		sh := &shards[si]
		toCol.Extend(sh.toCol)
		for p := range propCols {
			propCols[p].Extend(sh.propCols[p])
		}
		for _, rg := range sh.index {
			index = append(index, core.Range{Start: rg.Start + offset, End: rg.End + offset})
		}
		offset += int32(sh.toCol.Len())
		ctx.Arena.PutRanges(sh.index)
		sh.index = nil
	}
	block := ctx.NewFBlock(toCol)
	for _, pc := range propCols {
		block.AddColumn(pc)
	}
	return block, index
}

// parallelFlatExpand runs the flat-path expansion across morsels of input
// rows, merging per-morsel row blocks in morsel order.
func parallelFlatExpand(ctx *Ctx, o *Expand, in *core.FlatBlock, fromIdx int,
	names []string, kinds []vector.Kind, epp edgePropPlan) (*core.FlatBlock, error) {

	n := len(in.Rows)
	shards := make([]*core.FlatBlock, sched.NumMorsels(n, expandMorselSize))
	ctx.RunMorsels(n, expandMorselSize, func(m sched.Morsel) {
		pred := o.VertexPred
		if pred != nil {
			pred = pred.Fork()
		}
		sh := core.NewFlatBlock(names, kinds)
		// expandFlatRows handles both the batched (one NeighborsBatch per
		// morsel) and the NoCSR scalar paths; errors cannot occur because the
		// row limit is checked once after the merge.
		//geslint:err-ok the row limit is enforced once after the merge; expandFlatRows has no other failure path
		_ = o.expandFlatRows(ctx, pred, in, fromIdx, epp, m.Start, m.End, names, sh)
		shards[m.Index] = sh
	})

	out := core.NewFlatBlock(names, kinds)
	for _, sh := range shards {
		out.Rows = append(out.Rows, sh.Rows...)
	}
	if ctx.MaxRows > 0 && out.NumRows() > ctx.MaxRows {
		return nil, errRowLimit("flat expand", out.NumRows(), ctx.MaxRows)
	}
	return out, nil
}

// traverseShard is one morsel's var-length output.
type traverseShard struct {
	perRow [][]vector.VID // reachable vertices per parent row in the shard
}

// parallelTraverse runs the bounded BFS/DFS of VarLengthExpand across
// morsels of source rows. Fused vertex predicates are forked per morsel, so
// predicate-carrying var-expands parallelize like plain ones.
func parallelTraverse(ctx *Ctx, o *VarLengthExpand, parent *core.Node, fromCol *vector.Column) (*vector.Column, []core.Range) {
	n := parent.Block.NumRows()
	shards := make([]traverseShard, sched.NumMorsels(n, expandMorselSize))
	ctx.RunMorsels(n, expandMorselSize, func(m sched.Morsel) {
		sh := &shards[m.Index]
		pred := o.VertexPred
		if pred != nil {
			pred = pred.Fork()
		}
		sh.perRow = make([][]vector.VID, m.End-m.Start)
		// The view is safe for concurrent reads; traversal scratch state is
		// local to each call.
		for i := m.Start; i < m.End; i++ {
			if !parent.Valid(i) {
				continue
			}
			row := i - m.Start
			o.traverse(ctx, pred, fromCol.VIDAt(i), func(v vector.VID) {
				sh.perRow[row] = append(sh.perRow[row], v)
			})
		}
	})

	toCol := ctx.Arena.OwnColumn(o.To, vector.KindVID)
	index := ctx.Arena.OwnRanges(n)[:0]
	total := int32(0)
	for _, sh := range shards {
		for _, vs := range sh.perRow {
			start := total
			for _, v := range vs {
				toCol.AppendVID(v)
				total++
			}
			index = append(index, core.Range{Start: start, End: total})
		}
	}
	return toCol, index
}

// DefactorNames materializes the named attributes (the full schema when
// names is nil) of every valid tuple, sharding root rows into morsels when
// the context allows parallel execution. Per-morsel blocks are concatenated
// in morsel order, so output is byte-identical to FTree.Defactor.
func DefactorNames(ctx *Ctx, ft *core.FTree, names []string) (*core.FlatBlock, error) {
	if names == nil {
		names = ft.Schema()
	}
	n := ft.Root.Block.NumRows()
	if ctx == nil || ctx.Parallel <= 1 || n < parallelMinRows {
		return ft.Defactor(names)
	}
	// Resolve once up front so per-morsel calls cannot fail.
	if _, err := ft.Resolve(names); err != nil {
		return nil, err
	}
	shards := make([]*core.FlatBlock, sched.NumMorsels(n, expandMorselSize))
	ctx.RunMorsels(n, expandMorselSize, func(m sched.Morsel) {
		//geslint:err-ok Resolve validated the name set above; DefactorRange cannot fail for a resolved schema
		fb, _ := ft.DefactorRange(names, m.Start, m.End)
		shards[m.Index] = fb
	})
	out := shards[0]
	for _, sh := range shards[1:] {
		out.Rows = append(out.Rows, sh.Rows...)
	}
	return out, nil
}

// DefactorAll materializes every attribute of the tree, in parallel when the
// context allows it.
func DefactorAll(ctx *Ctx, ft *core.FTree) (*core.FlatBlock, error) {
	return DefactorNames(ctx, ft, nil)
}

// parallelGather fills a column of n rows by evaluating get per row across
// morsels — the Projection property-gather port. get must be safe for
// concurrent calls on distinct rows (property reads through the storage
// view are).
func parallelGather(ctx *Ctx, name string, kind vector.Kind, n int, get func(i int) vector.Value) *vector.Column {
	// The staging buffer is transient: NewColumnFromValues copies every
	// value into typed storage, so the boxed rows return to the pool here.
	vals := ctx.Arena.GetVals(n)
	ctx.RunMorsels(n, filterMorselSize, func(m sched.Morsel) {
		for i := m.Start; i < m.End; i++ {
			vals[i] = get(i)
		}
	})
	col := vector.NewColumnFromValues(name, kind, vals)
	ctx.Arena.PutVals(vals)
	return col
}
