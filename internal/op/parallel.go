package op

import (
	"sync"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Intra-query parallelism (§2.1, Runtime): the expansion operators split
// their parent rows into morsels processed by worker goroutines, then merge
// the shard outputs deterministically — results are byte-identical to the
// sequential path regardless of worker count.
//
// Parallel execution engages when ctx.Parallel > 1 and the parent block is
// large enough to amortize the fork/join (parallelMinRows).

const parallelMinRows = 512

// shardBounds splits n rows into at most p near-equal contiguous shards.
func shardBounds(n, p int) [][2]int {
	if p > n {
		p = n
	}
	out := make([][2]int, 0, p)
	chunk := (n + p - 1) / p
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// expandShard is one worker's output for a row range.
type expandShard struct {
	segs  [][]vector.VID // lazy path: per-append segments
	index []core.Range   // ranges local to this shard (0-based)
	rows  int            // total child rows produced
}

// parallelLazyExpand runs the pointer-based-join expansion across workers.
// It returns the merged child column and index vector.
func parallelLazyExpand(ctx *Ctx, name string, parent *core.Node, fromCol *vector.Column,
	et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID) (*vector.Column, []core.Range) {

	n := parent.Block.NumRows()
	bounds := shardBounds(n, ctx.Parallel)
	shards := make([]expandShard, len(bounds))

	var wg sync.WaitGroup
	wg.Add(len(bounds))
	for si, b := range bounds {
		go func(si int, lo, hi int) {
			defer wg.Done()
			sh := &shards[si]
			sh.index = make([]core.Range, 0, hi-lo)
			var segBuf []storage.Segment
			total := 0
			for i := lo; i < hi; i++ {
				start := total
				if parent.Valid(i) {
					segBuf = ctx.View.Neighbors(segBuf[:0], fromCol.VIDAt(i), et, dir, dstLabel, false)
					for _, seg := range segBuf {
						sh.segs = append(sh.segs, seg.VIDs)
						total += len(seg.VIDs)
					}
				}
				sh.index = append(sh.index, core.Range{Start: int32(start), End: int32(total)})
			}
			sh.rows = total
		}(si, b[0], b[1])
	}
	wg.Wait()

	// Merge: append shard segments in order, offsetting ranges.
	toCol := vector.NewLazyVIDColumn(name)
	index := make([]core.Range, 0, n)
	offset := int32(0)
	for _, sh := range shards {
		for _, seg := range sh.segs {
			toCol.AppendSegment(seg)
		}
		for _, rg := range sh.index {
			index = append(index, core.Range{Start: rg.Start + offset, End: rg.End + offset})
		}
		offset += int32(sh.rows)
	}
	return toCol, index
}

// traverseShard is one worker's var-length output.
type traverseShard struct {
	perRow [][]vector.VID // reachable vertices per parent row in the shard
}

// parallelTraverse runs the bounded BFS/DFS of VarLengthExpand across
// workers, one morsel of source rows each.
func parallelTraverse(ctx *Ctx, o *VarLengthExpand, parent *core.Node, fromCol *vector.Column) (*vector.Column, []core.Range) {
	n := parent.Block.NumRows()
	bounds := shardBounds(n, ctx.Parallel)
	shards := make([]traverseShard, len(bounds))

	var wg sync.WaitGroup
	wg.Add(len(bounds))
	for si, b := range bounds {
		go func(si, lo, hi int) {
			defer wg.Done()
			sh := &shards[si]
			sh.perRow = make([][]vector.VID, hi-lo)
			// Each worker uses its own context view (the view itself is
			// safe for concurrent reads) and scratch state.
			for i := lo; i < hi; i++ {
				if !parent.Valid(i) {
					continue
				}
				row := i - lo
				o.traverse(ctx, fromCol.VIDAt(i), func(v vector.VID) {
					sh.perRow[row] = append(sh.perRow[row], v)
				})
			}
		}(si, b[0], b[1])
	}
	wg.Wait()

	toCol := vector.NewColumn(o.To, vector.KindVID)
	index := make([]core.Range, 0, n)
	total := int32(0)
	for _, sh := range shards {
		for _, vs := range sh.perRow {
			start := total
			for _, v := range vs {
				toCol.AppendVID(v)
				total++
			}
			index = append(index, core.Range{Start: start, End: total})
		}
	}
	return toCol, index
}
