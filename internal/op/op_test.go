package op_test

import (
	"reflect"
	"sort"
	"testing"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/testgraph"
)

var modes = []exec.Mode{exec.ModeFlat, exec.ModeFactorized, exec.ModeFused}

// run executes a plan in the given mode against the fixture.
func run(t *testing.T, f *testgraph.Fixture, mode exec.Mode, p plan.Plan) *core.FlatBlock {
	t.Helper()
	e := exec.New(mode)
	res, err := e.Run(f.Graph, p)
	if err != nil {
		t.Fatalf("mode %s: %v", mode, err)
	}
	return res.Block
}

// rowsAsStrings renders a block's rows sorted, for order-insensitive
// comparison.
func rowsAsStrings(fb *core.FlatBlock) []string {
	out := make([]string, fb.NumRows())
	for i, row := range fb.Rows {
		s := ""
		for _, v := range row {
			s += v.String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// assertModesAgree runs the plan under all three engine variants and checks
// the result multisets match — the paper's core correctness claim that
// factorization is lossless.
func assertModesAgree(t *testing.T, f *testgraph.Fixture, build func() plan.Plan) *core.FlatBlock {
	t.Helper()
	var ref *core.FlatBlock
	var refRows []string
	for _, m := range modes {
		fb := run(t, f, m, build())
		if ref == nil {
			ref, refRows = fb, rowsAsStrings(fb)
			continue
		}
		if got := rowsAsStrings(fb); !reflect.DeepEqual(got, refRows) {
			t.Fatalf("mode %s disagrees with %s:\n got %v\nwant %v", m, modes[0], got, refRows)
		}
	}
	return ref
}

func TestNodeByIdSeek(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	fb := run(t, f, exec.ModeFactorized, plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 103},
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "p", Prop: "firstName", As: "name"},
			{Var: "p", As: "p.id", ExtID: true},
		}},
	})
	if fb.NumRows() != 1 {
		t.Fatalf("rows = %d", fb.NumRows())
	}
	if fb.Rows[0][1].S != "Dan" || fb.Rows[0][2].I != 103 {
		t.Fatalf("row = %v", fb.Rows[0])
	}
	// Missing vertex yields an empty (not failed) result.
	fb = run(t, f, exec.ModeFactorized, plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 999},
	})
	if fb.NumRows() != 0 {
		t.Fatal("seek of unknown id must yield zero rows")
	}
}

func TestExpandOneHopAllModes(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
			&op.Defactor{Cols: []string{"f.id"}},
		}
	}
	fb := assertModesAgree(t, f, build)
	got := rowsAsStrings(fb)
	want := []string{"101|", "102|", "103|"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("friends of p0 = %v, want %v", got, want)
	}
}

func TestExpandUsesLazyColumn(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	e := exec.New(exec.ModeFactorized)
	ctx := &op.Ctx{View: f.Graph, Pool: e.Pool}
	ch, err := op.RunPlan(ctx, []op.Operator{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch.IsFlat() {
		t.Fatal("expand output should stay factorized")
	}
	_, col := ch.FT.FindColumn("f")
	if col == nil || !col.Lazy() {
		t.Fatal("plain expand must produce a lazy (pointer-based join) column")
	}
	// Edge-property expansion must materialize.
	ch2, err := op.RunPlan(ctx, []op.Operator{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person,
			EdgeProps: []op.EdgeProj{{Prop: "creationDate", As: "since"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, col2 := ch2.FT.FindColumn("f")
	if col2.Lazy() {
		t.Fatal("edge-prop expand cannot stay lazy")
	}
	if _, c := ch2.FT.FindColumn("since"); c == nil {
		t.Fatal("edge property column missing")
	}
}

func TestTwoHopExpandGrowsTree(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	e := exec.New(exec.ModeFactorized)
	ctx := &op.Ctx{View: f.Graph, Pool: e.Pool}
	ch, err := op.RunPlan(ctx, []op.Operator{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.Expand{From: "p", To: "f1", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.Expand{From: "f1", To: "f2", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch.FT.NumNodes() != 3 {
		t.Fatalf("tree has %d nodes, want 3 (each Expand adds one)", ch.FT.NumNodes())
	}
	// p0 -> {p1,p2,p3} -> their knows-neighbors (symmetric edges):
	// p1: p0,p4; p2: p0,p4,p5; p3: p0,p6 => 7 two-hop tuples.
	if got := ch.FT.CountTuples(); got != 7 {
		t.Fatalf("two-hop tuples = %d, want 7", got)
	}
}

func TestVarLengthExpandDistinct(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.VarLengthExpand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out,
				DstLabel: s.Person, MinHops: 1, MaxHops: 2, Distinct: true},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
			&op.Defactor{Cols: []string{"f.id"}},
		}
	}
	fb := assertModesAgree(t, f, build)
	got := rowsAsStrings(fb)
	want := []string{"101|", "102|", "103|", "104|", "105|", "106|"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("friends within 2 hops = %v, want %v", got, want)
	}
}

func TestVarLengthExpandMinHops(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	fb := run(t, f, exec.ModeFactorized, plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.VarLengthExpand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out,
			DstLabel: s.Person, MinHops: 2, MaxHops: 2, Distinct: true},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
		&op.Defactor{Cols: []string{"f.id"}},
	})
	got := rowsAsStrings(fb)
	want := []string{"104|", "105|", "106|"} // exactly-2-hop friends
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("exactly-2-hop = %v, want %v", got, want)
	}
}

// TestPaperExampleQuery reproduces the end-to-end query of §4.3 / Figure 8
// on the fixture: friends within 2 hops of p0, their messages with
// length > 125, top-2 by (length DESC, friend id ASC).
func TestPaperExampleQuery(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.VarLengthExpand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out,
				DstLabel: s.Person, MinHops: 1, MaxHops: 2, Distinct: true},
			&op.Expand{From: "f", To: "msg", Et: s.HasCreator, Dir: catalog.In,
				DstLabel: storage.AnyLabel},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "msg", Prop: "length", As: "msg.len"},
				{Var: "msg", As: "msg.id", ExtID: true},
				{Var: "f", As: "f.id", ExtID: true},
			}},
			&op.Filter{Pred: expr.Gt(expr.C("msg.len"), expr.LInt(125))},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "msg.len", Desc: true}, {Col: "f.id"}},
				Limit: 2,
				Cols:  []string{"f.id", "msg.id", "msg.len"},
			},
		}
	}
	fb := assertModesAgree(t, f, build)
	if fb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2\n%s", fb.NumRows(), fb)
	}
	// Expected: (p6=106, m5=205, 150), then (p5=105, m4=204, 140).
	want := [][3]int64{{106, 205, 150}, {105, 204, 140}}
	for i, w := range want {
		if fb.Rows[i][0].I != w[0] || fb.Rows[i][1].I != w[1] || fb.Rows[i][2].I != w[2] {
			t.Fatalf("row %d = %v, want %v", i, fb.Rows[i], w)
		}
	}
}

func TestFilterUpdatesSelectionVectorInPlace(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	e := exec.New(exec.ModeFactorized)
	ctx := &op.Ctx{View: f.Graph, Pool: e.Pool}
	ch, err := op.RunPlan(ctx, []op.Operator{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
		&op.Filter{Pred: expr.Ge(expr.C("f.id"), expr.LInt(102))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch.IsFlat() {
		t.Fatal("single-node filter must keep the chunk factorized")
	}
	n, _ := ch.FT.FindColumn("f.id")
	if n.Sel.Count() != 2 {
		t.Fatalf("valid rows after filter = %d, want 2", n.Sel.Count())
	}
	if got := ch.FT.CountTuples(); got != 2 {
		t.Fatalf("tuples = %d", got)
	}
}

func TestCrossNodeFilterDefactors(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	e := exec.New(exec.ModeFactorized)
	ctx := &op.Ctx{View: f.Graph, Pool: e.Pool}
	ch, err := op.RunPlan(ctx, []op.Operator{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.Expand{From: "f", To: "g", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "f", As: "f.id", ExtID: true},
			{Var: "g", As: "g.id", ExtID: true},
		}},
		// f.id and g.id live on different nodes: must de-factor.
		&op.Filter{Pred: expr.Lt(expr.C("f.id"), expr.C("g.id"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ch.IsFlat() {
		t.Fatal("cross-node filter must revert to flat execution")
	}
	for _, row := range ch.Flat.Rows {
		fi := row[ch.Flat.ColIndex("f.id")].I
		gi := row[ch.Flat.ColIndex("g.id")].I
		if fi >= gi {
			t.Fatalf("filter violated: f.id=%d g.id=%d", fi, gi)
		}
	}
}

func TestAggregateAllModes(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	// Count messages per 2-hop friend.
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.VarLengthExpand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out,
				DstLabel: s.Person, MinHops: 1, MaxHops: 2, Distinct: true},
			&op.Expand{From: "f", To: "msg", Et: s.HasCreator, Dir: catalog.In,
				DstLabel: storage.AnyLabel},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "f", As: "f.id", ExtID: true},
				{Var: "msg", Prop: "length", As: "msg.len"},
			}},
			&op.Aggregate{
				GroupBy: []string{"f.id"},
				Aggs: []op.AggSpec{
					{Func: op.Count, As: "cnt"},
					{Func: op.Sum, Arg: "msg.len", As: "totalLen"},
					{Func: op.Max, Arg: "msg.len", As: "maxLen"},
				},
			},
			&op.OrderBy{Keys: []op.SortKey{{Col: "f.id"}}},
		}
	}
	fb := assertModesAgree(t, f, build)
	// p1: m0(100)+c2(30); p2: m1(110)+m2(120); p4: m3(130)+c0(20);
	// p5: m4(140)+c1(25); p6: m5(150). p3 creates nothing -> absent.
	type rowT struct{ id, cnt, total, max int64 }
	want := []rowT{
		{101, 2, 130, 100},
		{102, 2, 230, 120},
		{104, 2, 150, 130},
		{105, 2, 165, 140},
		{106, 1, 150, 150},
	}
	if fb.NumRows() != len(want) {
		t.Fatalf("groups = %d, want %d\n%s", fb.NumRows(), len(want), fb)
	}
	for i, w := range want {
		r := fb.Rows[i]
		if r[0].I != w.id || r[1].I != w.cnt || r[2].I != w.total || r[3].I != w.max {
			t.Fatalf("group %d = %v, want %+v", i, r, w)
		}
	}
}

func TestAggregateAvgAndCountDistinct(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	fb := run(t, f, exec.ModeFused, plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", Prop: "lastName", As: "ln"}}},
		&op.Aggregate{GroupBy: nil, Aggs: []op.AggSpec{
			{Func: op.CountDistinct, Arg: "ln", As: "distinctNames"},
			{Func: op.Avg, Arg: "ln", As: "ignored"}, // avg over strings degrades to 0-sum; exercise no-crash
		}},
	})
	if fb.NumRows() != 1 || fb.Rows[0][0].I != 1 {
		t.Fatalf("count distinct lastName = %v", fb.Rows[0])
	}
}

func TestLimitAndSkip(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	full := run(t, f, exec.ModeFactorized, plan.Plan{
		&op.NodeScan{Var: "p", Label: s.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "p", As: "id", ExtID: true}}},
		&op.OrderBy{Keys: []op.SortKey{{Col: "id"}}},
		&op.Limit{N: 3, Skip: 2},
	})
	if full.NumRows() != 3 {
		t.Fatalf("rows = %d", full.NumRows())
	}
	for i, want := range []int64{102, 103, 104} {
		if full.Rows[i][1].I != want {
			t.Fatalf("row %d id = %d, want %d", i, full.Rows[i][1].I, want)
		}
	}
	// Factorized early-exit limit.
	lim := run(t, f, exec.ModeFactorized, plan.Plan{
		&op.NodeScan{Var: "p", Label: s.Person},
		&op.Limit{N: 4},
	})
	if lim.NumRows() != 4 {
		t.Fatalf("factorized limit rows = %d", lim.NumRows())
	}
}

func TestDistinct(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.Expand{From: "f", To: "g", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "g", As: "g.id", ExtID: true}}},
			&op.Distinct{Cols: []string{"g.id"}},
		}
	}
	fb := assertModesAgree(t, f, build)
	got := rowsAsStrings(fb)
	// 2-hop multiset {p0 x3, p4 x2, p5, p6} -> distinct {100,104,105,106}.
	want := []string{"100|", "104|", "105|", "106|"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distinct = %v, want %v", got, want)
	}
}

func TestHashJoinSemiAndAnti(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	// Friends of p0 who created at least one post (semi) / none (anti).
	mkPlan := func(jt op.JoinType) plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.VarLengthExpand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out,
				DstLabel: s.Person, MinHops: 1, MaxHops: 2, Distinct: true},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
			&op.HashJoin{
				Type:      jt,
				LeftKeys:  []string{"f.id"},
				RightKeys: []string{"creator.id"},
				Right: []op.Operator{
					&op.NodeScan{Var: "post", Label: s.Post},
					&op.Expand{From: "post", To: "creator", Et: s.HasCreator, Dir: catalog.Out, DstLabel: s.Person},
					&op.ProjectProps{Specs: []op.ProjSpec{{Var: "creator", As: "creator.id", ExtID: true}}},
					&op.Distinct{Cols: []string{"creator.id"}},
				},
			},
			&op.Defactor{Cols: []string{"f.id"}},
		}
	}
	semi := run(t, f, exec.ModeFactorized, mkPlan(op.LeftSemi))
	if got, want := rowsAsStrings(semi), []string{"101|", "102|", "104|", "105|", "106|"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("semi = %v, want %v", got, want)
	}
	anti := run(t, f, exec.ModeFactorized, mkPlan(op.LeftAnti))
	if got, want := rowsAsStrings(anti), []string{"103|"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("anti = %v, want %v", got, want)
	}
}

func TestHashJoinInnerAndOuter(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	mkPlan := func(jt op.JoinType) plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
			&op.HashJoin{
				Type:      jt,
				LeftKeys:  []string{"f.id"},
				RightKeys: []string{"liker.id"},
				Right: []op.Operator{
					&op.NodeScan{Var: "post", Label: s.Post},
					&op.Expand{From: "post", To: "liker", Et: s.Likes, Dir: catalog.In, DstLabel: s.Person},
					&op.ProjectProps{Specs: []op.ProjSpec{
						{Var: "liker", As: "liker.id", ExtID: true},
						{Var: "post", As: "post.id", ExtID: true},
					}},
					&op.Defactor{Cols: []string{"liker.id", "post.id"}},
				},
			},
			&op.Defactor{Cols: []string{"f.id", "post.id"}},
		}
	}
	inner := run(t, f, exec.ModeFactorized, mkPlan(op.Inner))
	// Friends of p0 = {101,102,103}; likers: 100->m0,m1; 101->m2; 107->m0.
	// Only 101 matches, liking post 202.
	if got, want := rowsAsStrings(inner), []string{"101|202|"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("inner = %v, want %v", got, want)
	}
	outer := run(t, f, exec.ModeFactorized, mkPlan(op.LeftOuter))
	if outer.NumRows() != 3 {
		t.Fatalf("outer rows = %d, want 3", outer.NumRows())
	}
}

func TestOrderByKeyOutsideOutputColumns(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	// Sort by length but only output ids: the key column must be fetched
	// for ordering, then dropped from the output schema.
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "m", Label: s.Post},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "m", As: "m.id", ExtID: true},
				{Var: "m", Prop: "length", As: "m.len"},
			}},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "m.len", Desc: true}},
				Limit: 3,
				Cols:  []string{"m.id"},
			},
		}
	}
	fb := assertModesAgree(t, f, build)
	if fb.NumCols() != 1 || fb.Names[0] != "m.id" {
		t.Fatalf("schema = %v", fb.Names)
	}
	// Posts have lengths 100..160 on ext ids 200..206; top-3 by length.
	want := []int64{206, 205, 204}
	for i, w := range want {
		if fb.Rows[i][0].I != w {
			t.Fatalf("row %d = %v, want %d", i, fb.Rows[i], w)
		}
	}
}

func TestRenameOperator(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	fb := run(t, f, exec.ModeFactorized, plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "p", Prop: "firstName", As: "fn"}}},
		&op.Rename{From: []string{"fn"}, To: []string{"name"}},
		&op.Defactor{Cols: []string{"name"}},
	})
	if fb.Names[0] != "name" || fb.Rows[0][0].S != "Ada" {
		t.Fatalf("rename failed: %v %v", fb.Names, fb.Rows)
	}
	// Flat-path rename.
	fb2 := run(t, f, exec.ModeFlat, plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "p", Prop: "firstName", As: "fn"}}},
		&op.Rename{From: []string{"fn"}, To: []string{"name"}},
	})
	if fb2.ColIndex("name") < 0 {
		t.Fatalf("flat rename failed: %v", fb2.Names)
	}
}

func TestOperatorErrorPaths(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	e := exec.New(exec.ModeFactorized)
	cases := []struct {
		name string
		p    plan.Plan
	}{
		{"expand unknown var", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.Expand{From: "ghost", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		}},
		{"expand unknown edge prop", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person,
				EdgeProps: []op.EdgeProj{{Prop: "ghost", As: "g"}}},
		}},
		{"project unknown prop", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "p", Prop: "ghost", As: "g"}}},
		}},
		{"filter unknown col", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.Filter{Pred: expr.Gt(expr.C("ghost"), expr.LInt(1))},
		}},
		{"orderby unknown key", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.OrderBy{Keys: []op.SortKey{{Col: "ghost"}}},
		}},
		{"aggregate unknown group", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.Aggregate{GroupBy: []string{"ghost"}, Aggs: []op.AggSpec{{Func: op.Count, As: "n"}}},
		}},
		{"sum without arg", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.Aggregate{Aggs: []op.AggSpec{{Func: op.Sum, As: "n"}}},
		}},
		{"join key arity", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.HashJoin{LeftKeys: []string{"a", "b"}, RightKeys: []string{"a"},
				Right: []op.Operator{&op.NodeScan{Var: "q", Label: s.Person}}},
		}},
		{"seek not source", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.NodeByIdSeek{Var: "q", Label: s.Person, ExtID: 101},
		}},
		{"defactor unknown col", plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 100},
			&op.Defactor{Cols: []string{"ghost"}},
		}},
	}
	for _, c := range cases {
		if _, err := e.Run(f.Graph, c.p); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
