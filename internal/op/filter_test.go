package op_test

import (
	"math/rand"
	"testing"

	"ges/internal/core"
	"ges/internal/expr"
	"ges/internal/op"
	"ges/internal/vector"
)

// TestVectorizedFilterMatchesClosure drives both filter evaluation paths —
// the vectorized tight loop and the compiled-expression fallback — over
// random columns and all comparison operators, in both operand orders.
func TestVectorizedFilterMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	ops := []expr.CmpOp{expr.LT, expr.LE, expr.GT, expr.GE, expr.EQ, expr.NE}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]int64, n)
		col := vector.NewColumn("x", vector.KindInt64)
		// A second string column forces the closure path when referenced.
		tag := vector.NewColumn("tag", vector.KindString)
		for i := range vals {
			vals[i] = int64(rng.Intn(20))
			col.AppendInt64(vals[i])
			tag.AppendString("t")
		}
		threshold := int64(rng.Intn(20))
		cmpOp := ops[rng.Intn(len(ops))]
		mirrored := rng.Intn(2) == 0

		build := func() *core.FTree {
			ft := core.NewFTree(core.NewFBlock(col.Clone(), tag.Clone()))
			for i := 0; i < n; i++ {
				if rng := i % 7; rng == 0 {
					ft.Root.Sel.Clear(i)
				}
			}
			return ft
		}

		var pred expr.Expr
		if mirrored {
			pred = expr.Cmp{Op: cmpOp, L: expr.LInt(threshold), R: expr.C("x")}
		} else {
			pred = expr.Cmp{Op: cmpOp, L: expr.C("x"), R: expr.LInt(threshold)}
		}
		// Vectorized path: single int column comparison.
		ftV := build()
		if _, err := (&op.Filter{Pred: pred, NoPrune: true}).Execute(&op.Ctx{}, &core.Chunk{FT: ftV}); err != nil {
			t.Fatal(err)
		}
		// Closure path: the same predicate AND a string predicate that is
		// always true, which defeats the fast-path pattern match.
		ftC := build()
		closurePred := expr.And{L: pred, R: expr.StrPred{Op: expr.Contains, L: expr.C("tag"), R: ""}}
		if _, err := (&op.Filter{Pred: closurePred, NoPrune: true}).Execute(&op.Ctx{}, &core.Chunk{FT: ftC}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if ftV.Root.Sel.Get(i) != ftC.Root.Sel.Get(i) {
				t.Fatalf("trial %d: op %v mirrored=%v row %d (val %d, threshold %d): vectorized=%v closure=%v",
					trial, cmpOp, mirrored, i, vals[i], threshold,
					ftV.Root.Sel.Get(i), ftC.Root.Sel.Get(i))
			}
		}
	}
}

// TestFilterLazyColumnFallsBack ensures lazy (pointer-based) VID columns
// bypass the vectorized path without breaking.
func TestFilterLazyColumnFallsBack(t *testing.T) {
	lazy := vector.NewLazyVIDColumn("v")
	lazy.AppendSegment([]vector.VID{1, 2, 3})
	ft := core.NewFTree(core.NewFBlock(lazy))
	_, err := (&op.Filter{Pred: expr.Gt(expr.C("v"), expr.LInt(1))}).Execute(&op.Ctx{}, &core.Chunk{FT: ft})
	if err != nil {
		t.Fatal(err)
	}
	if got := ft.Root.Sel.Count(); got != 2 {
		t.Fatalf("valid rows = %d, want 2", got)
	}
}
