package op

import (
	"fmt"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/vector"
)

// NodeByIdSeek locates a single vertex by external identifier and starts a
// fresh f-Tree whose root holds it — the first operator of every interactive
// query (§4.3, Figure 8(b)(i)).
type NodeByIdSeek struct {
	Var   string
	Label catalog.LabelID
	ExtID int64
	// ExtParam, when positive, names the parameter slot (1-based: slot k
	// reads params[k-1]) that supplies the external id. Cached plan
	// skeletons carry the slot; plan.BindParams copies the operator with
	// ExtID filled in before execution, so Execute only ever sees ExtID.
	ExtParam int
}

// Name implements Operator.
func (o *NodeByIdSeek) Name() string { return "NodeByIdSeek" }

// Execute implements Operator.
func (o *NodeByIdSeek) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if in != nil {
		return nil, fmt.Errorf("op: NodeByIdSeek must be a source operator")
	}
	col := ctx.Arena.OwnColumn(o.Var, vector.KindVID)
	if vid, ok := ctx.View.VertexByExt(o.Label, o.ExtID); ok {
		col.AppendVID(vid)
	}
	return ctx.FTChunk(ctx.NewFTree(col)), nil
}

// NodeScan starts a plan from every vertex of a label.
type NodeScan struct {
	Var   string
	Label catalog.LabelID
}

// Name implements Operator.
func (o *NodeScan) Name() string { return "NodeScan" }

// Execute implements Operator.
func (o *NodeScan) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if in != nil {
		return nil, fmt.Errorf("op: NodeScan must be a source operator")
	}
	vids := ctx.View.ScanLabel(o.Label)
	var col *vector.Column
	if ctx.NoGather {
		col = ctx.Arena.OwnColumn(o.Var, vector.KindVID)
		for _, v := range vids {
			col.AppendVID(v)
		}
	} else {
		// Batch path: expose the scan order zero-copy; filters narrow the
		// selection vector instead of rewriting the column.
		col = vector.ShareVIDs(o.Var, vids)
	}
	return ctx.FTChunk(ctx.NewFTree(col)), nil
}

// MultiSeek starts a plan from an explicit list of external identifiers
// (used by short-read and update lookups that address several vertices).
type MultiSeek struct {
	Var    string
	Label  catalog.LabelID
	ExtIDs []int64
}

// Name implements Operator.
func (o *MultiSeek) Name() string { return "MultiSeek" }

// Execute implements Operator.
func (o *MultiSeek) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if in != nil {
		return nil, fmt.Errorf("op: MultiSeek must be a source operator")
	}
	col := ctx.Arena.OwnColumn(o.Var, vector.KindVID)
	for _, ext := range o.ExtIDs {
		if vid, ok := ctx.View.VertexByExt(o.Label, ext); ok {
			col.AppendVID(vid)
		}
	}
	return ctx.FTChunk(ctx.NewFTree(col)), nil
}
