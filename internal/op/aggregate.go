package op

import (
	"fmt"
	"sort"

	"ges/internal/core"
	"ges/internal/vector"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	Count AggFunc = iota
	CountDistinct
	Sum
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	return [...]string{"count", "count-distinct", "sum", "min", "max", "avg"}[f]
}

// AggSpec is one aggregate: Func applied to column Arg (empty = count(*)),
// emitted as As.
type AggSpec struct {
	Func AggFunc
	Arg  string
	As   string
}

// Aggregate groups tuples and computes aggregates. Aggregation needs global
// state across whole tuples, so on the factorized path the chunk is
// de-factored into a flat block first — exactly the cost the
// AggregateProjectTop fusion (fused.go) exists to remove (§4.3).
type Aggregate struct {
	GroupBy []string
	Aggs    []AggSpec
}

// Name implements Operator.
func (o *Aggregate) Name() string { return "Aggregate" }

// Execute implements Operator.
func (o *Aggregate) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if in != nil && in.FT != nil {
		assertFTree(in.FT)
	}
	fb, err := ensureFlat(ctx, in)
	if err != nil {
		return nil, err
	}
	ctx.Observe(ctx.FlatChunk(fb))
	out, err := hashAggregate(fb, o.GroupBy, o.Aggs)
	if err != nil {
		return nil, err
	}
	return ctx.FlatChunk(out), nil
}

// aggState accumulates one group.
type aggState struct {
	groupVals []vector.Value
	count     []int64
	sumI      []int64
	sumF      []float64
	min       []vector.Value
	max       []vector.Value
	distinct  []map[string]struct{}
}

// newAggState allocates only the accumulator slices the aggregate specs
// actually use — COUNT-only groups (the common case) carry just the count
// slice.
func newAggState(groupVals []vector.Value, aggs []AggSpec) *aggState {
	s := &aggState{
		groupVals: append([]vector.Value(nil), groupVals...),
		count:     make([]int64, len(aggs)),
	}
	for _, a := range aggs {
		switch a.Func {
		case Sum, Avg:
			if s.sumI == nil {
				s.sumI = make([]int64, len(aggs))
				s.sumF = make([]float64, len(aggs))
			}
		case Min:
			if s.min == nil {
				s.min = make([]vector.Value, len(aggs))
			}
		case Max:
			if s.max == nil {
				s.max = make([]vector.Value, len(aggs))
			}
		case CountDistinct:
			if s.distinct == nil {
				s.distinct = make([]map[string]struct{}, len(aggs))
			}
		}
	}
	return s
}

// update folds one value (with multiplicity weight) into aggregate j.
func (s *aggState) update(j int, spec AggSpec, v vector.Value, weight int64) {
	switch spec.Func {
	case Count:
		s.count[j] += weight
	case CountDistinct:
		if s.distinct[j] == nil {
			s.distinct[j] = make(map[string]struct{})
		}
		s.distinct[j][v.String()] = struct{}{}
	case Sum, Avg:
		s.count[j] += weight
		if v.Kind == vector.KindFloat64 {
			s.sumF[j] += v.F * float64(weight)
		} else {
			s.sumI[j] += v.I * weight
		}
	case Min:
		if s.count[j] == 0 || vector.Compare(v, s.min[j]) < 0 {
			s.min[j] = v
		}
		s.count[j]++
	case Max:
		if s.count[j] == 0 || vector.Compare(v, s.max[j]) > 0 {
			s.max[j] = v
		}
		s.count[j]++
	}
}

// result emits the final value of aggregate j.
func (s *aggState) result(j int, spec AggSpec, argKind vector.Kind) vector.Value {
	switch spec.Func {
	case Count:
		return vector.Int64(s.count[j])
	case CountDistinct:
		return vector.Int64(int64(len(s.distinct[j])))
	case Sum:
		if argKind == vector.KindFloat64 {
			return vector.Float64(s.sumF[j])
		}
		return vector.Int64(s.sumI[j])
	case Avg:
		if s.count[j] == 0 {
			return vector.Float64(0)
		}
		total := s.sumF[j]
		if argKind != vector.KindFloat64 {
			total = float64(s.sumI[j])
		}
		return vector.Float64(total / float64(s.count[j]))
	case Min:
		return s.min[j]
	case Max:
		return s.max[j]
	}
	return vector.Value{}
}

// aggOutputKind returns the result kind of an aggregate over argKind.
func aggOutputKind(spec AggSpec, argKind vector.Kind) vector.Kind {
	switch spec.Func {
	case Count, CountDistinct:
		return vector.KindInt64
	case Avg:
		return vector.KindFloat64
	default:
		return argKind
	}
}

// hashAggregate is the shared flat-block grouping kernel. Groups are emitted
// in ascending group-key order for determinism.
func hashAggregate(fb *core.FlatBlock, groupBy []string, aggs []AggSpec) (*core.FlatBlock, error) {
	groupIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		if groupIdx[i] = fb.ColIndex(g); groupIdx[i] < 0 {
			return nil, errNoColumn("aggregate", g)
		}
	}
	argIdx := make([]int, len(aggs))
	argKind := make([]vector.Kind, len(aggs))
	for j, a := range aggs {
		if a.Arg == "" {
			if a.Func != Count {
				return nil, fmt.Errorf("op: aggregate %s requires an argument", a.Func)
			}
			argIdx[j] = -1
			argKind[j] = vector.KindInt64
			continue
		}
		if argIdx[j] = fb.ColIndex(a.Arg); argIdx[j] < 0 {
			return nil, errNoColumn("aggregate", a.Arg)
		}
		argKind[j] = fb.Kinds[argIdx[j]]
	}

	groups := make(map[string]*aggState)
	groupVals := make([]vector.Value, len(groupBy))
	for _, row := range fb.Rows {
		for i, gi := range groupIdx {
			groupVals[i] = row[gi]
		}
		key := rowKey(groupVals)
		st, ok := groups[key]
		if !ok {
			st = newAggState(groupVals, aggs)
			groups[key] = st
		}
		for j, a := range aggs {
			var v vector.Value
			if argIdx[j] >= 0 {
				v = row[argIdx[j]]
			}
			st.update(j, a, v, 1)
		}
	}
	groupKinds := make([]vector.Kind, len(groupBy))
	for i, gi := range groupIdx {
		groupKinds[i] = fb.Kinds[gi]
	}
	return emitAggregates(groupBy, groupKinds, aggs, argKind, groups)
}

// emitAggregates renders the group table.
func emitAggregates(groupBy []string, groupKinds []vector.Kind, aggs []AggSpec, argKind []vector.Kind, groups map[string]*aggState) (*core.FlatBlock, error) {
	names := append([]string(nil), groupBy...)
	kinds := make([]vector.Kind, 0, len(groupBy)+len(aggs))
	kinds = append(kinds, groupKinds...)
	for j, a := range aggs {
		names = append(names, a.As)
		kinds = append(kinds, aggOutputKind(a, argKind[j]))
	}
	out := core.NewFlatBlock(names, kinds)

	// Global aggregation (no GROUP BY) over empty input yields one row of
	// zero aggregates, per SQL/Cypher semantics.
	if len(groupBy) == 0 && len(groups) == 0 {
		groups[""] = newAggState(nil, aggs)
	}

	emit := func(st *aggState) {
		row := make([]vector.Value, 0, len(names))
		row = append(row, st.groupVals...)
		for j, a := range aggs {
			row = append(row, st.result(j, a, argKind[j]))
		}
		out.AppendOwned(row)
	}
	if len(groups) == 1 {
		for _, st := range groups {
			emit(st)
		}
		return out, nil
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(groups[k])
	}
	return out, nil
}

// HashAggregateBlock exposes the flat grouping kernel for alternative
// executors (volcano drains its child iterator into a block and reuses the
// same aggregation semantics, keeping results comparable).
func HashAggregateBlock(fb *core.FlatBlock, groupBy []string, aggs []AggSpec) (*core.FlatBlock, error) {
	return hashAggregate(fb, groupBy, aggs)
}
