package op_test

import (
	"reflect"
	"testing"

	"ges/internal/catalog"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/ldbc"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/txn"
	"ges/internal/vector"
)

// The §5 vectorized gather path must be a pure performance change: every
// fast tier (zero-copy column share, bulk gather, dictionary-code
// comparison, zone-map skipping, columnar top-k, code-keyed aggregation)
// produces byte-identical results to the scalar reference at every worker
// count. These tests pin that contract by diffing NoGather=true against the
// full fast path at 1/2/4/8 workers.

func midDate() int64 { return (ldbc.DayStart + ldbc.DayEnd) / 2 }

// runGatherPlan executes the plan with or without the gather path and
// returns the rows in result order (no sorting — ordering is part of the
// contract for the top-k plans).
func runGatherPlan(t *testing.T, ds *ldbc.Dataset, mode exec.Mode, workers int, scalar bool, p plan.Plan) []string {
	t.Helper()
	eng := exec.New(mode)
	eng.Parallel = workers
	eng.NoGather, eng.NoDictCmp, eng.NoZoneMap = scalar, scalar, scalar
	res, err := eng.Run(ds.Graph, p)
	if err != nil {
		t.Fatalf("workers=%d scalar=%v: %v", workers, scalar, err)
	}
	if !scalar && workers == 1 && res.Gathers == 0 {
		t.Fatalf("gather path never engaged for %v", p)
	}
	out := make([]string, res.Block.NumRows())
	for i, row := range res.Block.Rows {
		s := ""
		for _, v := range row {
			s += v.String() + "|"
		}
		out[i] = s
	}
	return out
}

// assertGatherAgreesScalar diffs the fast path against the scalar reference
// across worker counts.
func assertGatherAgreesScalar(t *testing.T, ds *ldbc.Dataset, mode exec.Mode, build func() plan.Plan) {
	t.Helper()
	want := runGatherPlan(t, ds, mode, 1, true, build())
	if len(want) == 0 {
		t.Fatal("reference plan produced no rows; test is vacuous")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := runGatherPlan(t, ds, mode, workers, false, build())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: gather path diverges from scalar (%d vs %d rows)",
				workers, len(got), len(want))
		}
	}
}

// TestGatherScanFilterProjectIdentical covers the shared-column tier feeding
// the dictionary-code string filter and the zone-mapped date filter.
func TestGatherScanFilterProjectIdentical(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	assertGatherAgreesScalar(t, ds, exec.ModeFactorized, func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "p", Prop: "gender", As: "p.gender"},
				{Var: "p", Prop: "creationDate", As: "p.creationDate"},
				{Var: "p", Prop: "firstName", As: "p.firstName"},
				{Var: "p", As: "p.id", ExtID: true},
			}},
			&op.Filter{Pred: expr.Eq(expr.C("p.gender"), expr.LStr("female"))},
			&op.Filter{Pred: expr.Ge(expr.C("p.creationDate"), expr.LDate(midDate()))},
			&op.Defactor{Cols: []string{"p.id", "p.firstName", "p.creationDate"}},
		}
	})
}

// TestGatherNeverInternedLiteralIdentical pins the dictionary miss semantics:
// equality against a string the store never saw matches nothing, inequality
// matches everything.
func TestGatherNeverInternedLiteralIdentical(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	assertGatherAgreesScalar(t, ds, exec.ModeFactorized, func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "p", Prop: "gender", As: "p.gender"},
				{Var: "p", As: "p.id", ExtID: true},
			}},
			&op.Filter{Pred: expr.Ne(expr.C("p.gender"), expr.LStr("no-such-gender"))},
			&op.Defactor{Cols: []string{"p.id"}},
		}
	})
}

// TestGatherFusedExpandIdentical covers the batch vertex-predicate engine:
// dict-code equality plus a zone-prunable date range inside a fused Expand.
func TestGatherFusedExpandIdentical(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	pred := expr.And{
		L: expr.Eq(expr.C("gender"), expr.LStr("male")),
		R: expr.Lt(expr.C("creationDate"), expr.LDate(midDate())),
	}
	assertGatherAgreesScalar(t, ds, exec.ModeFactorized, func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person,
				VertexPred: op.VertexPropPred(pred, nil)},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
			&op.Defactor{Cols: []string{"f.id"}},
		}
	})
}

// TestGatherTopKIdentical covers the columnar top-k: same retained set AND
// same emission order as the boxed enumeration heap.
func TestGatherTopKIdentical(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	assertGatherAgreesScalar(t, ds, exec.ModeFactorized, func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "p", Prop: "creationDate", As: "p.creationDate"},
				{Var: "p", Prop: "firstName", As: "p.firstName"},
				{Var: "p", As: "p.id", ExtID: true},
			}},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "p.creationDate", Desc: true}, {Col: "p.firstName"}, {Col: "p.id"}},
				Limit: 17,
				Cols:  []string{"p.id", "p.firstName", "p.creationDate"},
			},
		}
	})
}

// TestGatherAggregateIdentical covers the dictionary-code group-by key fast
// path of the fused aggregation.
func TestGatherAggregateIdentical(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	assertGatherAgreesScalar(t, ds, exec.ModeFactorized, func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "p", Prop: "browserUsed", As: "p.browserUsed"},
			}},
			&op.AggregateProjectTop{
				GroupBy: []string{"p.browserUsed"},
				Aggs:    []op.AggSpec{{Func: op.Count, As: "n"}},
				Keys:    []op.SortKey{{Col: "n", Desc: true}, {Col: "p.browserUsed"}},
				Limit:   10,
			},
		}
	})
}

// TestGatherOverlaySnapshotIdentical runs the filter/project plan against a
// transactional snapshot with committed overlays: the share and zone-map
// tiers shut off, the patched bulk gather takes over, and results must still
// match the scalar path row for row.
func TestGatherOverlaySnapshotIdentical(t *testing.T) {
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	m := txn.NewManager(ds.Graph)
	tx := m.Begin(ds.Persons[:2])
	// "Overlay" mints a fresh dict code; the bumped creationDate moves person
	// 1 across the filter threshold relative to nothing in particular — both
	// writes must show identically through either read path.
	if err := tx.SetProp(ds.Persons[0], h.PFirstName, vector.String_("Overlay")); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetProp(ds.Persons[1], h.PCreation, vector.Date(int64(ldbc.DayEnd+100))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "p", Prop: "firstName", As: "p.firstName"},
				{Var: "p", Prop: "creationDate", As: "p.creationDate"},
				{Var: "p", As: "p.id", ExtID: true},
			}},
			&op.Filter{Pred: expr.Ge(expr.C("p.creationDate"), expr.LDate(midDate()))},
			&op.Defactor{Cols: []string{"p.id", "p.firstName", "p.creationDate"}},
		}
	}
	run := func(scalar bool) []string {
		eng := exec.New(exec.ModeFactorized)
		eng.NoGather, eng.NoDictCmp, eng.NoZoneMap = scalar, scalar, scalar
		res, err := eng.Run(snap, build())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, res.Block.NumRows())
		for i, row := range res.Block.Rows {
			s := ""
			for _, v := range row {
				s += v.String() + "|"
			}
			out[i] = s
		}
		return out
	}
	want, got := run(true), run(false)
	if len(want) == 0 {
		t.Fatal("overlay plan produced no rows")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("overlay snapshot: gather path diverges from scalar")
	}
	// The overlaid creationDate pushed person 1 (ext id 2) past the
	// threshold; its row must surface with the overlay value through both
	// paths (equality above already proves "both", so check once).
	foundShadowed := false
	for _, r := range want {
		if r == "2|"+snap.Prop(ds.Persons[1], h.PFirstName).S+"|"+vector.Date(int64(ldbc.DayEnd+100)).String()+"|" {
			foundShadowed = true
			break
		}
	}
	if !foundShadowed {
		t.Fatal("overlaid row missing from filtered result")
	}
}
