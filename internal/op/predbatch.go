package op

import (
	"math"

	"ges/internal/core"
	"ges/internal/expr"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Batch evaluation of fused vertex predicates (§5): instead of one property
// read per (candidate, referenced column), the predicate gathers each
// referenced column once per neighbor segment and evaluates the conjuncts as
// tight kernels over the raw slices. Integer range conjuncts additionally
// consult the storage zone maps to drop whole 2048-row zones before any value
// moves, and dictionary-encoded string equality compares 4-byte codes. The
// per-row Test path remains the semantic reference; batch results are
// byte-identical.

// batchVertexPred is the optional batch face of VertexPred. TestBatch
// evaluates the predicate for all vids at once and returns a keep mask owned
// by the predicate (valid until the next call), or nil when the batch path is
// unavailable — callers then fall back to per-row Test.
type batchVertexPred interface {
	TestBatch(ctx *Ctx, vids []vector.VID) []bool
}

// batchPredMinRows is the candidate count below which per-row Test beats the
// batch setup cost.
const batchPredMinRows = 16

// testVertexBatch routes a candidate segment through the predicate's batch
// path when it has one; nil means "evaluate per row".
func testVertexBatch(ctx *Ctx, pred VertexPred, vids []vector.VID) []bool {
	if pred == nil {
		return nil
	}
	if bp, ok := pred.(batchVertexPred); ok {
		return bp.TestBatch(ctx, vids)
	}
	return nil
}

// conjKind classifies one top-level AND conjunct of a predicate.
type conjKind uint8

const (
	// conjFallback evaluates through the compiled expression closure bound
	// to the scratch block — correct for every expression shape.
	conjFallback conjKind = iota
	// conjIntCmp is column <op> integer/date literal: a range kernel over the
	// raw int64 slice, zone-prunable for everything but NE.
	conjIntCmp
	// conjStrEq is column =/<> string literal over a dict-encoded column:
	// one dictionary lookup, then a uint32 code-compare kernel.
	conjStrEq
	// conjStrIn is column IN (string literals) over a dict-encoded column.
	conjStrIn
)

// conjunct is one classified AND conjunct.
type conjunct struct {
	kind conjKind
	col  string
	op   expr.CmpOp

	threshold int64
	lo, hi    int64 // satisfying value range (conjIntCmp with prune)
	prune     bool
	never     bool // statically unsatisfiable (threshold at the int64 edge)

	litStr string
	list   []string

	eval expr.Getter // conjFallback
}

// predBatch is the per-instance batch plan: scratch columns keep stable
// pointers so compiled fallback getters stay valid across batches (Grow
// resizes in place).
type predBatch struct {
	cols    map[string]*vector.Column
	order   []string
	getters map[string]*propGetter // nil entry = ExtIDProp
	block   *core.FBlock
	conjs   []conjunct
	sel     vector.Bitset
	keep    []bool
}

// splitAnd flattens the top-level conjunction.
func splitAnd(e expr.Expr, dst []expr.Expr) []expr.Expr {
	if a, ok := e.(expr.And); ok {
		return append(splitAnd(a.L, dst), splitAnd(a.R, nil)...)
	}
	return append(dst, e)
}

// cmpRange derives the satisfying value range of col <op> t for zone pruning.
func cmpRange(op expr.CmpOp, t int64) (lo, hi int64, prune, never bool) {
	switch op {
	case expr.EQ:
		return t, t, true, false
	case expr.LT:
		if t == math.MinInt64 {
			return 0, 0, false, true
		}
		return math.MinInt64, t - 1, true, false
	case expr.LE:
		return math.MinInt64, t, true, false
	case expr.GT:
		if t == math.MaxInt64 {
			return 0, 0, false, true
		}
		return t + 1, math.MaxInt64, true, false
	case expr.GE:
		return t, math.MaxInt64, true, false
	default: // NE is the complement of a point — not a contiguous range.
		return 0, 0, false, false
	}
}

// buildBatch compiles the batch plan once per predicate instance; nil when
// any referenced name cannot be resolved (the scalar Test path then reports
// the same binding failure).
func (p *propPred) buildBatch(ctx *Ctx) *predBatch {
	b := &predBatch{
		cols:    make(map[string]*vector.Column),
		getters: make(map[string]*propGetter),
	}
	for _, name := range p.pred.Columns(nil) {
		if _, ok := b.cols[name]; ok {
			continue
		}
		var col *vector.Column
		if name == ExtIDProp {
			col = vector.NewColumn(name, vector.KindInt64)
			b.getters[name] = nil
		} else {
			g, err := newPropGetter(ctx.View, name)
			if err != nil {
				return nil
			}
			b.getters[name] = g
			col = g.newGatherOutput(ctx, name, g.labels, false)
		}
		b.cols[name] = col
		b.order = append(b.order, name)
	}
	scratch := make([]*vector.Column, 0, len(b.order))
	for _, n := range b.order {
		scratch = append(scratch, b.cols[n])
	}
	b.block = core.NewFBlock(scratch...)
	for _, c := range splitAnd(p.pred, nil) {
		cj, ok := b.classify(ctx, c)
		if !ok {
			return nil
		}
		b.conjs = append(b.conjs, cj)
	}
	return b
}

// classify maps one conjunct to its kernel, defaulting to the compiled
// closure.
func (b *predBatch) classify(ctx *Ctx, e expr.Expr) (conjunct, bool) {
	switch n := e.(type) {
	case expr.Cmp:
		colRef, okL := n.L.(expr.Col)
		lit, okR := n.R.(expr.Lit)
		op := n.Op
		if !okL || !okR {
			lit, okL = n.L.(expr.Lit)
			colRef, okR = n.R.(expr.Col)
			if !okL || !okR {
				return b.fallback(e)
			}
			op = mirror(op)
		}
		col := b.cols[colRef.Name]
		intLit := lit.Val.Kind == vector.KindInt64 || lit.Val.Kind == vector.KindDate
		switch {
		case (col.Kind == vector.KindInt64 || col.Kind == vector.KindDate) && intLit:
			cj := conjunct{kind: conjIntCmp, col: colRef.Name, op: op, threshold: lit.Val.I}
			cj.lo, cj.hi, cj.prune, cj.never = cmpRange(op, lit.Val.I)
			return cj, true
		case col.Kind == vector.KindString && col.DictEncoded() && !ctx.NoDictCmp &&
			lit.Val.Kind == vector.KindString && (op == expr.EQ || op == expr.NE):
			return conjunct{kind: conjStrEq, col: colRef.Name, op: op, litStr: lit.Val.S}, true
		}
		return b.fallback(e)
	case expr.In:
		if colRef, ok := n.X.(expr.Col); ok {
			col := b.cols[colRef.Name]
			if col.Kind == vector.KindString && col.DictEncoded() && !ctx.NoDictCmp {
				list := make([]string, 0, len(n.List))
				allStr := true
				for _, v := range n.List {
					if v.Kind != vector.KindString {
						allStr = false
						break
					}
					list = append(list, v.S)
				}
				if allStr {
					return conjunct{kind: conjStrIn, col: colRef.Name, list: list}, true
				}
			}
		}
		return b.fallback(e)
	default:
		return b.fallback(e)
	}
}

func (b *predBatch) fallback(e expr.Expr) (conjunct, bool) {
	get, err := expr.BindBlock(e, b.block)
	if err != nil {
		return conjunct{}, false
	}
	return conjunct{kind: conjFallback, eval: get}, true
}

// TestBatch implements batchVertexPred on the fused property predicate.
func (p *propPred) TestBatch(ctx *Ctx, vids []vector.VID) []bool {
	if ctx.NoGather || len(vids) < batchPredMinRows {
		return nil
	}
	if !p.batchInit {
		p.batchInit = true
		p.batch = p.buildBatch(ctx)
	}
	b := p.batch
	if b == nil {
		return nil
	}
	n := len(vids)
	b.sel.Resize(n, false)
	b.sel.SetAll()

	// Zone pruning first: every prunable range conjunct is ANDed at the top
	// level, so a candidate in a zone that cannot contain a satisfying value
	// is rejected before a single value is gathered.
	if !ctx.NoZoneMap {
		if zp, ok := ctx.View.(storage.ZonePruner); ok {
			for i := range b.conjs {
				c := &b.conjs[i]
				if c.kind != conjIntCmp || !c.prune {
					continue
				}
				g := b.getters[c.col]
				if g == nil {
					// External IDs carry no zone maps.
					continue
				}
				for _, lp := range g.labels {
					pruned, total := zp.PruneZones(vids, lp.label, lp.pid, c.lo, c.hi, &b.sel)
					ctx.Gather.ZonesPruned.Add(int64(pruned))
					ctx.Gather.ZonesTotal.Add(int64(total))
				}
			}
		}
	}

	// Gather every referenced column for the surviving candidates.
	for _, name := range b.order {
		col := b.cols[name]
		col.Grow(n)
		if g := b.getters[name]; g != nil {
			for _, lp := range g.labels {
				ctx.View.GatherProps(vids, lp.label, lp.pid, &b.sel, col)
			}
		} else {
			ctx.View.GatherExtIDs(vids, &b.sel, col.Int64s())
		}
	}
	ctx.Gather.Gathers.Add(1)

	// Conjunct kernels over the surviving selection.
	for i := range b.conjs {
		c := &b.conjs[i]
		switch c.kind {
		case conjIntCmp:
			if c.never {
				b.sel.ClearRange(0, n)
				continue
			}
			applyIntCmpSel(&b.sel, b.cols[c.col].Int64s(), c.op, c.threshold, n)
		case conjStrEq:
			col := b.cols[c.col]
			code, ok := col.Dict().Lookup(c.litStr)
			codes := col.Codes()
			switch {
			case c.op == expr.EQ && !ok:
				// The literal was never interned, so no stored value equals it.
				b.sel.ClearRange(0, n)
			case c.op == expr.EQ:
				for i := 0; i < n; i++ {
					if codes[i] != code && b.sel.Get(i) {
						b.sel.Clear(i)
					}
				}
			case !ok:
				// NE against a never-seen literal holds everywhere.
			default:
				for i := 0; i < n; i++ {
					if codes[i] == code && b.sel.Get(i) {
						b.sel.Clear(i)
					}
				}
			}
		case conjStrIn:
			col := b.cols[c.col]
			want := make([]uint32, 0, len(c.list))
			for _, s := range c.list {
				if code, ok := col.Dict().Lookup(s); ok {
					want = append(want, code)
				}
			}
			codes := col.Codes()
			for i := 0; i < n; i++ {
				if !b.sel.Get(i) {
					continue
				}
				hit := false
				for _, w := range want {
					if codes[i] == w {
						hit = true
						break
					}
				}
				if !hit {
					b.sel.Clear(i)
				}
			}
		default:
			for i := 0; i < n; i++ {
				if b.sel.Get(i) && !c.eval(i).AsBool() {
					b.sel.Clear(i)
				}
			}
		}
	}

	if cap(b.keep) < n {
		b.keep = make([]bool, n)
	}
	keep := b.keep[:n]
	for i := range keep {
		keep[i] = b.sel.Get(i)
	}
	return keep
}

// applyIntCmpSel clears selection bits of rows failing vals[i] <op> t.
func applyIntCmpSel(sel *vector.Bitset, vals []int64, op expr.CmpOp, t int64, n int) {
	switch op {
	case expr.LT:
		for i := 0; i < n; i++ {
			if vals[i] >= t && sel.Get(i) {
				sel.Clear(i)
			}
		}
	case expr.LE:
		for i := 0; i < n; i++ {
			if vals[i] > t && sel.Get(i) {
				sel.Clear(i)
			}
		}
	case expr.GT:
		for i := 0; i < n; i++ {
			if vals[i] <= t && sel.Get(i) {
				sel.Clear(i)
			}
		}
	case expr.GE:
		for i := 0; i < n; i++ {
			if vals[i] < t && sel.Get(i) {
				sel.Clear(i)
			}
		}
	case expr.EQ:
		for i := 0; i < n; i++ {
			if vals[i] != t && sel.Get(i) {
				sel.Clear(i)
			}
		}
	case expr.NE:
		for i := 0; i < n; i++ {
			if vals[i] == t && sel.Get(i) {
				sel.Clear(i)
			}
		}
	}
}
