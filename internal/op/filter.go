package op

import (
	"ges/internal/core"
	"ges/internal/expr"
	"ges/internal/sched"
	"ges/internal/vector"
)

// Filter evaluates a predicate. On the factorized path the disjoint schema
// partition property locates the single f-Tree node owning the predicate's
// attributes and the selection vector is updated in place — no data moves
// (§4.3, Filter). Predicates spanning several nodes force a de-factor.
type Filter struct {
	Pred expr.Expr
	// NoPrune disables upward selection-vector pruning (used by ablation
	// benchmarks; pruning is on by default).
	NoPrune bool
}

// Name implements Operator.
func (o *Filter) Name() string { return "Filter" }

// Execute implements Operator.
func (o *Filter) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if !in.IsFlat() {
		cols := o.Pred.Columns(nil)
		if node := in.FT.NodeOfColumns(cols); node != nil {
			if !vectorizedFilter(ctx, node, o.Pred) {
				get, err := expr.BindBlock(o.Pred, node.Block)
				if err != nil {
					return nil, err
				}
				applySelFilter(ctx, node, get)
			}
			if !o.NoPrune {
				in.FT.PruneUp(node)
			}
			assertFTree(in.FT)
			return in, nil
		}
		fb, err := ensureFlat(ctx, in)
		if err != nil {
			return nil, err
		}
		in = ctx.FlatChunk(fb)
	}
	get, err := expr.BindFlat(o.Pred, in.Flat)
	if err != nil {
		return nil, err
	}
	rows := in.Flat.Rows
	out := core.NewFlatBlock(in.Flat.Names, in.Flat.Kinds)
	if ctx.Parallel > 1 && len(rows) >= parallelMinRows {
		// Per-morsel keep lists, concatenated in morsel order — same row
		// order as the sequential loop. BindFlat getters are pure, so one
		// getter serves all morsels.
		shards := make([][][]vector.Value, sched.NumMorsels(len(rows), filterMorselSize))
		ctx.RunMorsels(len(rows), filterMorselSize, func(m sched.Morsel) {
			var keep [][]vector.Value
			for i := m.Start; i < m.End; i++ {
				if get(i).AsBool() {
					keep = append(keep, rows[i])
				}
			}
			shards[m.Index] = keep
		})
		for _, sh := range shards {
			out.Rows = append(out.Rows, sh...)
		}
		return ctx.FlatChunk(out), nil
	}
	for i, row := range rows {
		if get(i).AsBool() {
			out.AppendOwned(row)
		}
	}
	return ctx.FlatChunk(out), nil
}

// applySelFilter clears the selection bit of every selected row failing the
// compiled predicate, sharding rows into word-aligned morsels when the
// context allows parallel execution. Compiled getters read block state by
// row index only, so one getter serves all morsels; filterMorselSize is a
// multiple of 64, so concurrent morsels never write the same selection-vector
// word.
func applySelFilter(ctx *Ctx, node *core.Node, get expr.Getter) {
	n := node.Block.NumRows()
	apply := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if node.Sel.Get(i) && !get(i).AsBool() {
				node.Sel.Clear(i)
			}
		}
	}
	if ctx.Parallel > 1 && n >= parallelMinRows {
		ctx.RunMorsels(n, filterMorselSize, func(m sched.Morsel) { apply(m.Start, m.End) })
		return
	}
	apply(0, n)
}

// Defactor explicitly converts a factorized chunk into a flat block holding
// the named columns (all columns when Cols is nil). Plans insert it ahead of
// blocking logic; it is a no-op on already-flat chunks unless Cols narrows
// the schema.
type Defactor struct {
	Cols []string
}

// Name implements Operator.
func (o *Defactor) Name() string { return "Defactor" }

// Execute implements Operator.
func (o *Defactor) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if in.IsFlat() {
		if o.Cols == nil {
			return in, nil
		}
		fb, err := in.Flat.Project(o.Cols)
		if err != nil {
			return nil, err
		}
		return ctx.FlatChunk(fb), nil
	}
	fb, err := DefactorNames(ctx, in.FT, o.Cols)
	if err != nil {
		return nil, err
	}
	return ctx.FlatChunk(fb), nil
}

// vectorizedFilter is the §5 vectorization fast path: single-column
// comparisons against integer/date literals run as a tight loop over the
// contiguous column slice — the pattern modern compilers auto-vectorize —
// instead of through the compiled expression closure. Large blocks shard the
// loop into word-aligned morsels. It reports whether it handled the
// predicate.
func vectorizedFilter(ctx *Ctx, node *core.Node, pred expr.Expr) bool {
	cmp, ok := pred.(expr.Cmp)
	if !ok {
		return false
	}
	colRef, okL := cmp.L.(expr.Col)
	lit, okR := cmp.R.(expr.Lit)
	op := cmp.Op
	if !okL || !okR {
		// Try the mirrored form: literal <op> column.
		lit, okL = cmp.L.(expr.Lit)
		colRef, okR = cmp.R.(expr.Col)
		if !okL || !okR {
			return false
		}
		op = mirror(op)
	}
	col := node.Block.ColumnByName(colRef.Name)
	if col == nil || col.Lazy() {
		return false
	}
	if col.Kind == vector.KindString {
		return dictStringFilter(ctx, node, col, lit, op)
	}
	if col.Kind != vector.KindInt64 && col.Kind != vector.KindDate {
		return false
	}
	if lit.Val.Kind != vector.KindInt64 && lit.Val.Kind != vector.KindDate {
		return false
	}
	vals := col.Int64s()
	threshold := lit.Val.I
	sel := node.Sel
	var apply func(lo, hi int)
	switch op {
	case expr.LT:
		apply = func(lo, hi int) {
			for i, v := range vals[lo:hi] {
				if v >= threshold {
					sel.Clear(lo + i)
				}
			}
		}
	case expr.LE:
		apply = func(lo, hi int) {
			for i, v := range vals[lo:hi] {
				if v > threshold {
					sel.Clear(lo + i)
				}
			}
		}
	case expr.GT:
		apply = func(lo, hi int) {
			for i, v := range vals[lo:hi] {
				if v <= threshold {
					sel.Clear(lo + i)
				}
			}
		}
	case expr.GE:
		apply = func(lo, hi int) {
			for i, v := range vals[lo:hi] {
				if v < threshold {
					sel.Clear(lo + i)
				}
			}
		}
	case expr.EQ:
		apply = func(lo, hi int) {
			for i, v := range vals[lo:hi] {
				if v != threshold {
					sel.Clear(lo + i)
				}
			}
		}
	case expr.NE:
		apply = func(lo, hi int) {
			for i, v := range vals[lo:hi] {
				if v == threshold {
					sel.Clear(lo + i)
				}
			}
		}
	default:
		return false
	}
	// Zone-map skipping (§5): columns shared from storage carry the per-zone
	// min/max summaries, so zones that cannot contain a match are dropped
	// with one word-ranged selection clear, and zones entirely inside the
	// range are not scanned at all. Zone boundaries are multiples of 2048,
	// so parallel zone morsels never share a selection word.
	if zm := col.ZoneMap(); zm != nil && !ctx.NoZoneMap && zm.Rows() == len(vals) {
		if lo, hi, prunable, never := cmpRange(op, threshold); never {
			sel.ClearRange(0, len(vals))
			return true
		} else if prunable {
			zones := zm.Zones()
			ctx.Gather.ZonesTotal.Add(int64(zones))
			scanZone := func(z int) {
				zlo := z << vector.ZoneShift
				zhi := zlo + vector.ZoneSize
				if zhi > len(vals) {
					zhi = len(vals)
				}
				switch {
				case !zm.OverlapsInt(z, lo, hi):
					sel.ClearRange(zlo, zhi)
					ctx.Gather.ZonesPruned.Add(1)
				case zm.ContainedInt(z, lo, hi):
					// Every row in the zone satisfies the predicate.
				default:
					apply(zlo, zhi)
				}
			}
			if ctx.Parallel > 1 && len(vals) >= parallelMinRows {
				ctx.RunMorsels(zones, 8, func(m sched.Morsel) {
					for z := m.Start; z < m.End; z++ {
						scanZone(z)
					}
				})
			} else {
				for z := 0; z < zones; z++ {
					scanZone(z)
				}
			}
			return true
		}
	}
	if ctx.Parallel > 1 && len(vals) >= parallelMinRows {
		ctx.RunMorsels(len(vals), filterMorselSize, func(m sched.Morsel) { apply(m.Start, m.End) })
	} else {
		apply(0, len(vals))
	}
	return true
}

// dictStringFilter runs string equality over a dictionary-encoded column as
// a uint32 code-compare kernel: one dictionary lookup replaces the per-row
// string comparison. Non-equality string operators fall back.
func dictStringFilter(ctx *Ctx, node *core.Node, col *vector.Column, lit expr.Lit, op expr.CmpOp) bool {
	if !col.DictEncoded() || ctx.NoDictCmp || lit.Val.Kind != vector.KindString {
		return false
	}
	if op != expr.EQ && op != expr.NE {
		return false
	}
	sel := node.Sel
	codes := col.Codes()
	code, ok := col.Dict().Lookup(lit.Val.S)
	if !ok {
		// The literal was never interned: EQ matches nothing, NE everything.
		if op == expr.EQ {
			sel.ClearRange(0, len(codes))
		}
		return true
	}
	var apply func(lo, hi int)
	if op == expr.EQ {
		apply = func(lo, hi int) {
			for i, c := range codes[lo:hi] {
				if c != code {
					sel.Clear(lo + i)
				}
			}
		}
	} else {
		apply = func(lo, hi int) {
			for i, c := range codes[lo:hi] {
				if c == code {
					sel.Clear(lo + i)
				}
			}
		}
	}
	if ctx.Parallel > 1 && len(codes) >= parallelMinRows {
		ctx.RunMorsels(len(codes), filterMorselSize, func(m sched.Morsel) { apply(m.Start, m.End) })
	} else {
		apply(0, len(codes))
	}
	return true
}

// mirror flips a comparison for the literal-first form.
func mirror(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}
