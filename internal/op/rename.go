package op

import (
	"ges/internal/core"
)

// Rename relabels columns (From[i] becomes To[i]). The frontend uses it to
// apply RETURN aliases after execution runs on canonical column names. It is
// metadata-only: no data moves in either representation.
type Rename struct {
	From []string
	To   []string
}

// Name implements Operator.
func (o *Rename) Name() string { return "Rename" }

// Execute implements Operator.
func (o *Rename) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	lookup := func(name string) (string, bool) {
		for i, f := range o.From {
			if f == name {
				return o.To[i], true
			}
		}
		return "", false
	}
	if in.IsFlat() {
		names := append([]string(nil), in.Flat.Names...)
		for i, n := range names {
			if to, ok := lookup(n); ok {
				names[i] = to
			}
		}
		out := core.NewFlatBlock(names, in.Flat.Kinds)
		out.Rows = in.Flat.Rows
		return ctx.FlatChunk(out), nil
	}
	for _, node := range in.FT.Nodes() {
		for _, c := range node.Block.Columns() {
			if to, ok := lookup(c.Name); ok {
				c.Name = to
			}
		}
	}
	return in, nil
}
