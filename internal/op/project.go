package op

import (
	"fmt"

	"ges/internal/core"
	"ges/internal/expr"
	"ges/internal/sched"
	"ges/internal/vector"
)

// ProjSpec projects one attribute of a bound vertex variable: either a
// vertex property or the vertex's external identifier (ExtID).
type ProjSpec struct {
	Var   string
	Prop  string // ignored when ExtID
	As    string
	ExtID bool
}

// ProjectProps fetches vertex properties (or external IDs) and appends them
// as new columns. On the factorized path the column lands on the f-Tree node
// owning the variable — columnar storage makes this a straight append
// (§4.3, Projection) — and lazy neighbor columns are read through their
// segment views without being materialized.
//
// The per-row View.ExtID / propGetter.get calls below are the scalar
// fallback the NoGather ablation knob selects (and the per-row half of
// parallelGather morsels); the batch path takes over in gatherColumn.
//
//geslint:scalar-ok
type ProjectProps struct {
	Specs []ProjSpec
}

// Name implements Operator.
func (o *ProjectProps) Name() string { return "Project" }

// Execute implements Operator.
func (o *ProjectProps) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if in.IsFlat() {
		return o.executeFlat(ctx, in.Flat)
	}
	ft := in.FT
	for _, spec := range o.Specs {
		node, col, err := vidColumn(ft, spec.Var)
		if err != nil {
			return nil, err
		}
		// Batch gather first (§5): the whole column is filled by bulk copies
		// from storage (or shared zero-copy when the VID column is the scan
		// order). The scalar per-row path below remains the fallback and the
		// semantic reference — both produce byte-identical columns.
		if spec.ExtID {
			if out := gatherExtIDColumn(ctx, col, spec.As); out != nil {
				node.Block.AddColumn(out)
				continue
			}
		} else {
			g, err := newPropGetter(ctx.View, spec.Prop)
			if err != nil {
				return nil, err
			}
			if out := g.gatherColumn(ctx, col, spec.As); out != nil {
				node.Block.AddColumn(out)
				continue
			}
		}
		// Property reads through the storage view are concurrency-safe, so
		// large columns gather across morsels (workers fill disjoint slices
		// of one pre-sized buffer — output order is positional).
		parallel := ctx.Parallel > 1 && col.Len() >= parallelMinRows
		var out *vector.Column
		if spec.ExtID {
			if parallel {
				out = parallelGather(ctx, spec.As, vector.KindInt64, col.Len(), func(i int) vector.Value {
					return vector.Int64(ctx.View.ExtID(col.VIDAt(i)))
				})
			} else {
				out = ctx.Arena.OwnColumn(spec.As, vector.KindInt64)
				col.EachVID(func(_ int, v vector.VID) {
					out.AppendInt64(ctx.View.ExtID(v))
				})
			}
		} else {
			g, err := newPropGetter(ctx.View, spec.Prop)
			if err != nil {
				return nil, err
			}
			if parallel {
				out = parallelGather(ctx, spec.As, g.kind, col.Len(), func(i int) vector.Value {
					return g.get(col.VIDAt(i))
				})
			} else {
				out = ctx.Arena.OwnColumn(spec.As, g.kind)
				col.EachVID(func(_ int, v vector.VID) {
					out.Append(g.get(v))
				})
			}
		}
		node.Block.AddColumn(out)
	}
	assertFTree(in.FT)
	return in, nil
}

func (o *ProjectProps) executeFlat(ctx *Ctx, in *core.FlatBlock) (*core.Chunk, error) {
	names := append([]string(nil), in.Names...)
	kinds := append([]vector.Kind(nil), in.Kinds...)
	type colPlan struct {
		varIdx int
		extID  bool
		g      *propGetter
	}
	plans := make([]colPlan, len(o.Specs))
	for i, spec := range o.Specs {
		vi := in.ColIndex(spec.Var)
		if vi < 0 {
			return nil, errNoColumn("project", spec.Var)
		}
		p := colPlan{varIdx: vi, extID: spec.ExtID}
		if spec.ExtID {
			kinds = append(kinds, vector.KindInt64)
		} else {
			g, err := newPropGetter(ctx.View, spec.Prop)
			if err != nil {
				return nil, err
			}
			p.g = g
			kinds = append(kinds, g.kind)
		}
		names = append(names, spec.As)
		plans[i] = p
	}
	out := core.NewFlatBlock(names, kinds)
	out.Rows = in.Rows
	// Flat pipelines are linear and each operator owns its input, so the
	// projection extends rows in place instead of re-copying the table.
	// Each row is a distinct slice, so morsels over disjoint row ranges
	// never share state.
	extend := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := out.Rows[i]
			for _, p := range plans {
				v := row[p.varIdx].AsVID()
				if p.extID {
					row = append(row, vector.Int64(ctx.View.ExtID(v)))
				} else {
					row = append(row, p.g.get(v))
				}
			}
			out.Rows[i] = row
		}
	}
	if ctx.Parallel > 1 && len(out.Rows) >= parallelMinRows {
		ctx.RunMorsels(len(out.Rows), filterMorselSize, func(m sched.Morsel) { extend(m.Start, m.End) })
	} else {
		extend(0, len(out.Rows))
	}
	return ctx.FlatChunk(out), nil
}

// ProjectExpr appends one computed column. On the factorized path the
// expression must be confined to a single f-Tree node; otherwise the chunk
// is de-factored first.
type ProjectExpr struct {
	Expr expr.Expr
	As   string
	Kind vector.Kind
}

// Name implements Operator.
func (o *ProjectExpr) Name() string { return "ProjectExpr" }

// Execute implements Operator.
func (o *ProjectExpr) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if !in.IsFlat() {
		cols := o.Expr.Columns(nil)
		if node := in.FT.NodeOfColumns(cols); node != nil {
			get, err := expr.BindBlock(o.Expr, node.Block)
			if err != nil {
				return nil, err
			}
			n := node.Block.NumRows()
			var out *vector.Column
			if ctx.Parallel > 1 && n >= parallelMinRows {
				out = parallelGather(ctx, o.As, o.Kind, n, func(i int) vector.Value {
					return coerce(get(i), o.Kind)
				})
			} else {
				out = ctx.Arena.OwnColumn(o.As, o.Kind)
				for i := 0; i < n; i++ {
					out.Append(coerce(get(i), o.Kind))
				}
			}
			node.Block.AddColumn(out)
			assertFTree(in.FT)
			return in, nil
		}
		fb, err := ensureFlat(ctx, in)
		if err != nil {
			return nil, err
		}
		in = ctx.FlatChunk(fb)
	}
	get, err := expr.BindFlat(o.Expr, in.Flat)
	if err != nil {
		return nil, err
	}
	out := core.NewFlatBlock(
		append(append([]string(nil), in.Flat.Names...), o.As),
		append(append([]vector.Kind(nil), in.Flat.Kinds...), o.Kind),
	)
	for i, row := range in.Flat.Rows {
		nr := make([]vector.Value, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, coerce(get(i), o.Kind))
		out.AppendOwned(nr)
	}
	return ctx.FlatChunk(out), nil
}

func coerce(v vector.Value, k vector.Kind) vector.Value {
	if v.Kind == k {
		return v
	}
	switch k {
	case vector.KindFloat64:
		if v.Kind != vector.KindString {
			return vector.Float64(float64(v.I))
		}
	case vector.KindInt64, vector.KindDate, vector.KindBool:
		if v.Kind == vector.KindFloat64 {
			return vector.Value{Kind: k, I: int64(v.F)}
		}
		return vector.Value{Kind: k, I: v.I, S: v.S}
	}
	return v
}

// errIfNotVID asserts a flat value is a VID (defensive helper shared by flat
// operator paths).
func errIfNotVID(v vector.Value, where string) error {
	if v.Kind != vector.KindVID {
		return fmt.Errorf("op: %s: expected vid value, got %s", where, v.Kind)
	}
	return nil
}
