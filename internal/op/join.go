package op

import (
	"fmt"

	"ges/internal/core"
	"ges/internal/vector"
)

// RunPlan executes a linear operator chain from scratch and returns its
// final chunk. The executor package wraps this with per-operator timing; the
// plain version serves sub-plans (hash-join build sides) and tests.
func RunPlan(ctx *Ctx, plan []Operator) (*core.Chunk, error) {
	var ch *core.Chunk
	var err error
	for _, o := range plan {
		ch, err = o.Execute(ctx, ch)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", o.Name(), err)
		}
		ctx.Observe(ch)
	}
	return ch, nil
}

// JoinType selects hash-join semantics.
type JoinType uint8

// Join types.
const (
	Inner JoinType = iota
	LeftSemi
	LeftAnti
	LeftOuter
)

func (t JoinType) String() string {
	return [...]string{"inner", "left-semi", "left-anti", "left-outer"}[t]
}

// HashJoin joins the incoming chunk with the result of an independently
// executed right-hand sub-plan. Joins correlate tuples across factorization
// branches — cyclic query shapes — so both sides are materialized flat, the
// case where "GES's executor reverts to the traditional flat-block-based
// execution" (§4.3, Applicability and Trade-offs).
type HashJoin struct {
	Right     []Operator
	LeftKeys  []string
	RightKeys []string
	Type      JoinType
}

// Name implements Operator.
func (o *HashJoin) Name() string { return "HashJoin" }

// Execute implements Operator.
func (o *HashJoin) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if len(o.LeftKeys) != len(o.RightKeys) {
		return nil, fmt.Errorf("op: hash join key arity mismatch (%d vs %d)", len(o.LeftKeys), len(o.RightKeys))
	}
	left, err := ensureFlat(ctx, in)
	if err != nil {
		return nil, err
	}
	rightChunk, err := RunPlan(ctx, o.Right)
	if err != nil {
		return nil, fmt.Errorf("hash join right side: %w", err)
	}
	right, err := ensureFlat(ctx, rightChunk)
	if err != nil {
		return nil, err
	}

	lIdx, err := colIndices(left, o.LeftKeys, "hash-join left")
	if err != nil {
		return nil, err
	}
	rIdx, err := colIndices(right, o.RightKeys, "hash-join right")
	if err != nil {
		return nil, err
	}

	// Build on the right side.
	table := make(map[string][]int, right.NumRows())
	keyBuf := make([]vector.Value, len(rIdx))
	for i, row := range right.Rows {
		for k, ri := range rIdx {
			keyBuf[k] = row[ri]
		}
		key := rowKey(keyBuf)
		table[key] = append(table[key], i)
	}

	switch o.Type {
	case LeftSemi, LeftAnti:
		out := core.NewFlatBlock(left.Names, left.Kinds)
		for _, row := range left.Rows {
			for k, li := range lIdx {
				keyBuf[k] = row[li]
			}
			_, hit := table[rowKey(keyBuf)]
			if hit == (o.Type == LeftSemi) {
				out.AppendOwned(row)
			}
		}
		return ctx.FlatChunk(out), nil
	}

	names := append(append([]string(nil), left.Names...), right.Names...)
	kinds := append(append([]vector.Kind(nil), left.Kinds...), right.Kinds...)
	out := core.NewFlatBlock(names, kinds)
	nullRight := make([]vector.Value, right.NumCols())
	for i, k := range right.Kinds {
		nullRight[i] = vector.Value{Kind: k}
	}
	for _, row := range left.Rows {
		for k, li := range lIdx {
			keyBuf[k] = row[li]
		}
		matches := table[rowKey(keyBuf)]
		if len(matches) == 0 {
			if o.Type == LeftOuter {
				nr := append(append([]vector.Value(nil), row...), nullRight...)
				out.AppendOwned(nr)
			}
			continue
		}
		for _, ri := range matches {
			nr := append(append([]vector.Value(nil), row...), right.Rows[ri]...)
			out.AppendOwned(nr)
			if ctx.MaxRows > 0 && out.NumRows() > ctx.MaxRows {
				return nil, fmt.Errorf("op: hash join exceeded row limit %d", ctx.MaxRows)
			}
		}
	}
	return ctx.FlatChunk(out), nil
}

func colIndices(fb *core.FlatBlock, names []string, where string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		if out[i] = fb.ColIndex(n); out[i] < 0 {
			return nil, errNoColumn(where, n)
		}
	}
	return out, nil
}
