// Package op implements the GES physical operators (§4.3) in both execution
// styles the paper contrasts:
//
//   - the factorized path, where operators grow / annotate a shared f-Tree
//     (Expand adds nodes, Projection appends columns, Filter updates
//     selection vectors) and de-factor only when forced, and
//   - the flat path, where every operator consumes and produces fully
//     materialized row blocks — the classical engine the paper's baseline
//     GES variant (and most graph databases) use.
//
// The executor picks the path per chunk: a factorized chunk runs the
// factorized implementation until an operator with cross-node blocking logic
// de-factors it, after which everything downstream runs block-based.
package op

import (
	"fmt"
	"sync/atomic"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/sched"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Ctx carries the per-query execution environment: the storage view the
// query reads (base graph or transaction snapshot), the shared memory pool,
// and instrumentation sinks.
type Ctx struct {
	View storage.View
	Pool *storage.Pool

	// Arena brackets this query's scratch memory (§5, memory pool):
	// query-lifetime structures (index vectors, f-Block columns, lazy
	// batches) come from Own* and are released wholesale when the engine
	// ends the query; transient morsel scratch cycles through Get*/Put*.
	// A nil arena is valid and allocates fresh memory everywhere — the
	// NoRecycle ablation reference — so operators call through it
	// unconditionally.
	Arena *storage.Arena

	// PeakMem records the largest chunk observed between operators; the
	// executor samples it after every operator (Table 2).
	PeakMem int

	// Rows limits defensive materialization: a de-factor producing more than
	// MaxRows rows aborts the query instead of exhausting memory. Zero means
	// no limit.
	MaxRows int

	// Parallel is the intra-query parallelism degree (§2.1, Runtime): the
	// expansion, filter, projection and de-factoring operators shard large
	// parent blocks into morsels claimed by up to this many workers. Values
	// <= 1 run sequentially.
	Parallel int

	// Sched is the worker pool morsels are scheduled on; nil uses the
	// process-wide scheduler. Intra-query morsels and inter-query tasks
	// draw from the same budget.
	Sched *sched.Scheduler

	// Vectorized-gather ablation knobs (§5, Vectorization). NoGather forces
	// the scalar per-row property path everywhere, NoDictCmp disables
	// dictionary-code string comparisons, and NoZoneMap disables zone-map
	// filter skipping. All three paths produce byte-identical results; the
	// knobs exist so benchmarks can attribute the speedup.
	NoGather  bool
	NoDictCmp bool
	NoZoneMap bool

	// CSR ablation knobs. NoCSR forces every expansion back onto the
	// scalar per-source Neighbors path (per-row family map lookups instead
	// of the batched prefix-sum kernel), and NoIntersect makes ExpandInto
	// close cyclic edges with hash-set membership instead of
	// merge/galloping intersection of sorted adjacency runs. Results are
	// byte-identical either way; the knobs exist so benchmarks can
	// attribute the speedup.
	NoCSR       bool
	NoIntersect bool

	// NoWCOJ makes ExpandIntersect run its de-fused classical plan (Expand
	// along side 0, then per-side ExpandInto closures — de-factoring to a
	// flat hash join when the closure endpoints land on sibling branches)
	// instead of the worst-case-optimal k-way intersection. Results are
	// identical; the knob exists so benchmarks can attribute the speedup.
	NoWCOJ bool

	// Gather counts batch-gather activity. Counters are atomic because fused
	// predicates batch inside parallel morsels.
	Gather GatherStats
}

// GatherStats instruments the vectorized gather path of one query execution.
type GatherStats struct {
	// Gathers counts batch property/ext-ID gathers (each replacing one
	// interface call per row).
	Gathers atomic.Int64
	// SharedCols counts zero-copy aligned column shares (tier 1).
	SharedCols atomic.Int64
	// ZonesPruned / ZonesTotal count zone-map outcomes: zones ruled out
	// entirely versus zones considered.
	ZonesPruned atomic.Int64
	ZonesTotal  atomic.Int64
}

// RunMorsels shards [0,n) into size-row morsels executed on the shared
// worker pool with up to Parallel claimants (the caller participates; see
// sched.Scheduler.RunMorsels for the determinism contract).
func (c *Ctx) RunMorsels(n, size int, fn func(m sched.Morsel)) {
	s := c.Sched
	if s == nil {
		s = sched.Global()
	}
	s.RunMorsels(c.Parallel, n, size, fn)
}

// RunMorselsScratch is RunMorsels with claimant-local scratch reused across
// every morsel a worker claims (see sched.Scheduler.RunMorselsScratch).
func (c *Ctx) RunMorselsScratch(n, size int, mk func() any, done func(any), fn func(m sched.Morsel, scratch any)) {
	s := c.Sched
	if s == nil {
		s = sched.Global()
	}
	s.RunMorselsScratch(c.Parallel, n, size, mk, done, fn)
}

// NewFTree returns the query's root f-Tree over a block of the given
// columns, drawn from the arena so repeated executions reuse node and
// selection-vector storage (§5, pre-allocated reusable f-Trees).
func (c *Ctx) NewFTree(cols ...*vector.Column) *core.FTree {
	return c.Arena.OwnFTree(c.NewFBlock(cols...))
}

// NewFBlock returns a query-lifetime f-Block over cols, drawn from the arena
// so the block struct and its column-pointer slice recycle across queries.
// Columns attach one at a time — the variadic slice never escapes, so
// call sites keep it on the stack. Blocks that must outlive the query —
// cached-plan predicate scratch — use core.NewFBlock directly.
func (c *Ctx) NewFBlock(cols ...*vector.Column) *core.FBlock {
	b := c.Arena.OwnFBlock()
	for _, col := range cols {
		b.AddColumn(col)
	}
	return b
}

// FTChunk wraps a factorized result in a query-lifetime chunk. Chunks flow
// between operators and die with the query (exec retains only the final flat
// block), so the wrapper recycles through the arena.
func (c *Ctx) FTChunk(ft *core.FTree) *core.Chunk {
	return c.Arena.OwnChunk(ft, nil)
}

// FlatChunk wraps a flat result in a query-lifetime chunk.
func (c *Ctx) FlatChunk(fb *core.FlatBlock) *core.Chunk {
	return c.Arena.OwnChunk(nil, fb)
}

// Observe folds a chunk's size into the peak-memory statistic.
func (c *Ctx) Observe(ch *core.Chunk) {
	if ch == nil {
		return
	}
	if m := ch.MemBytes(); m > c.PeakMem {
		c.PeakMem = m
	}
}

// Operator is one step of a physical plan. Execute receives the chunk
// produced by the upstream operator (nil for source operators) and returns
// the chunk for the downstream one.
type Operator interface {
	Name() string
	Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error)
}

// assertFTree verifies the factorized-representation invariants at an
// operator block boundary in debug builds (-tags gesassert). AssertEnabled
// is a constant, so release builds compile the call away.
func assertFTree(ft *core.FTree) {
	if core.AssertEnabled {
		core.CheckFTree(ft)
	}
}

// errNoColumn standardizes missing-attribute errors.
func errNoColumn(op, col string) error {
	return fmt.Errorf("op: %s: no column %q in input", op, col)
}

// errRowLimit standardizes MaxRows violations.
func errRowLimit(op string, rows, limit int) error {
	return fmt.Errorf("op: %s exceeded row limit: %d > %d", op, rows, limit)
}

// propGetter resolves a property name across every label that defines it,
// returning a per-vertex accessor. Mixed-label columns (e.g. LDBC Message =
// Post ∪ Comment) resolve the property ID per row through the vertex label.
type propGetter struct {
	name   string
	kind   vector.Kind
	pids   []int32 // per label; -1 when the label lacks the property
	labels []labelPid
	view   storage.View
}

// labelPid is one (label, property) resolution of a property name — the unit
// the batch gather path iterates (one GatherProps pass per defining label).
type labelPid struct {
	label catalog.LabelID
	pid   catalog.PropID
}

func newPropGetter(view storage.View, name string) (*propGetter, error) {
	cat := view.Catalog()
	g := &propGetter{name: name, view: view, pids: make([]int32, cat.NumLabels()),
		labels: make([]labelPid, 0, cat.NumLabels())}
	found := false
	for l := 0; l < cat.NumLabels(); l++ {
		pid, kind, ok := cat.PropIndex(catalog.LabelID(l), name)
		if !ok {
			g.pids[l] = -1
			continue
		}
		if found && kind != g.kind {
			return nil, fmt.Errorf("op: property %q has conflicting kinds across labels", name)
		}
		g.pids[l] = int32(pid)
		g.labels = append(g.labels, labelPid{label: catalog.LabelID(l), pid: pid})
		g.kind = kind
		found = true
	}
	if !found {
		return nil, fmt.Errorf("op: property %q not defined by any label", name)
	}
	return g, nil
}

// get returns the property value of vertex v (typed zero when v's label
// lacks the property). This per-row interface call is the NoGather reference
// path of the §5 ablation — the batch gather must match it bit for bit — so
// the scalar lookups in this file are deliberate.
//
//geslint:scalar-ok
func (g *propGetter) get(v vector.VID) vector.Value {
	pid := g.pids[g.view.LabelOf(v)]
	if pid < 0 {
		return vector.Value{Kind: g.kind}
	}
	return g.view.Prop(v, catalog.PropID(pid))
}

// ensureFlat returns the chunk's flat block, de-factoring the full tree when
// necessary. Operators without a factorized implementation call this —
// the paper's "ultimate solution".
func ensureFlat(ctx *Ctx, in *core.Chunk) (*core.FlatBlock, error) {
	if in.Flat != nil {
		return in.Flat, nil
	}
	if in.FT == nil {
		return nil, fmt.Errorf("op: empty chunk")
	}
	fb, err := DefactorAll(ctx, in.FT)
	if err != nil {
		return nil, err
	}
	if ctx.MaxRows > 0 && fb.NumRows() > ctx.MaxRows {
		return nil, fmt.Errorf("op: de-factoring produced %d rows, over limit %d", fb.NumRows(), ctx.MaxRows)
	}
	return fb, nil
}

// vidColumn locates the f-Tree node and VID column for a variable name.
func vidColumn(ft *core.FTree, name string) (*core.Node, *vector.Column, error) {
	n, c := ft.FindColumn(name)
	if c == nil {
		return nil, nil, errNoColumn("expand", name)
	}
	if c.Kind != vector.KindVID {
		return nil, nil, fmt.Errorf("op: column %q is %s, want vid", name, c.Kind)
	}
	return n, c, nil
}

// NewPropReader returns a per-vertex property accessor and its kind,
// resolved across all labels defining the property. Alternative executors
// (volcano) use it to interpret ProjectProps specs.
func NewPropReader(view storage.View, prop string) (func(vector.VID) vector.Value, vector.Kind, error) {
	g, err := newPropGetter(view, prop)
	if err != nil {
		return nil, vector.KindInvalid, err
	}
	return g.get, g.kind, nil
}
