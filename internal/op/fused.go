package op

import (
	"sort"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/vector"
)

// This file implements the operator fusions of §4.3 (Operator Fusion):
//
//   - SeekExpand (the paper's VertexExpand fusion): NodeByIdSeek + Expand in
//     one step — the neighbor set of the start vertex becomes the f-Tree
//     root directly.
//   - AggregateProjectTop: Aggregation + Projection + Top-K fused so the
//     aggregate consumes the constant-delay enumeration (or a weighted
//     single-node factorized pass) and the top-k heap bounds the output —
//     the full flat relation is never materialized.
//
// FilterPushDown fusion lives on Expand itself (VertexPred / EdgePropPred).

// SeekExpand fuses NodeByIdSeek with the first Expand: it resolves the start
// vertex and immediately produces its neighbor set as the root f-Block,
// skipping the single-row intermediate node.
type SeekExpand struct {
	Label catalog.LabelID
	ExtID int64

	To       string
	Et       catalog.EdgeTypeID
	Dir      catalog.Direction
	DstLabel catalog.LabelID
}

// Name implements Operator.
func (o *SeekExpand) Name() string { return "SeekExpand(fused)" }

// Execute implements Operator.
func (o *SeekExpand) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	col := ctx.Arena.OwnLazyVIDColumn(o.To)
	if src, ok := ctx.View.VertexByExt(o.Label, o.ExtID); ok {
		if !ctx.NoCSR {
			// The lazy column retains a view of the batch's VID run, so the
			// batch is query-lifetime (Own scope), not morsel scratch.
			b := ctx.Arena.OwnBatch()
			srcs := append(ctx.Arena.GetVIDs(1), src)
			ctx.View.NeighborsBatch(srcs, o.Et, o.Dir, o.DstLabel, false, b)
			ctx.Arena.PutVIDs(srcs)
			if run := b.Run(0); len(run) > 0 {
				col.AppendSegment(run)
			}
		} else {
			//geslint:scalar-ok
			for _, seg := range ctx.View.Neighbors(nil, src, o.Et, o.Dir, o.DstLabel, false) {
				col.AppendSegment(seg.VIDs)
			}
		}
	}
	return ctx.FTChunk(ctx.NewFTree(col)), nil
}

// AggregateProjectTop is the paper's flagship fusion: Aggregate → Project →
// Top-K collapsed into one operator. Two factorized strategies apply:
//
//  1. When every group-by column and aggregate argument lives on a single
//     f-Tree node, aggregation runs as a *weighted* pass over that node's
//     rows, where each row is weighted by the number of valid full tuples it
//     participates in (computed by one up/down sweep over the tree) — no
//     tuple is ever enumerated.
//  2. Otherwise the constant-delay enumeration streams the needed columns
//     straight into the aggregation hash table.
//
// Either way the result feeds a bounded top-k heap, so peak memory is the
// group table plus the heap — compare Table 2's IC5 collapse from hundreds
// of megabytes to under 2 KB.
type AggregateProjectTop struct {
	GroupBy []string
	Aggs    []AggSpec
	Keys    []SortKey
	Limit   int
}

// Name implements Operator.
func (o *AggregateProjectTop) Name() string { return "AggregateProjectTop(fused)" }

// Execute implements Operator.
func (o *AggregateProjectTop) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	var grouped *core.FlatBlock
	var err error
	switch {
	case in.IsFlat():
		grouped, err = hashAggregate(in.Flat, o.GroupBy, o.Aggs)
	default:
		grouped, err = o.factorizedAggregate(ctx, in.FT)
	}
	if err != nil {
		return nil, err
	}
	if len(o.Keys) == 0 {
		return ctx.FlatChunk(grouped), nil
	}
	keyIdx, err := keyIndices(grouped.Names, o.Keys)
	if err != nil {
		return nil, err
	}
	out := core.NewFlatBlock(grouped.Names, grouped.Kinds)
	if o.Limit == 1 {
		// Degenerate top-k: a strict-less max scan replays exactly the
		// comparison sequence of a size-1 heap (first row seeds, later rows
		// replace only when strictly less), without the heap machinery.
		if len(grouped.Rows) > 0 {
			best := grouped.Rows[0]
			for _, row := range grouped.Rows[1:] {
				if rowLess(row, best, keyIdx) {
					best = row
				}
			}
			out.Rows = [][]vector.Value{append([]vector.Value(nil), best...)}
		}
	} else if o.Limit > 0 {
		h := newTopK(o.Limit, keyIdx)
		for _, row := range grouped.Rows {
			h.offer(row)
		}
		out.Rows = h.sorted()
	} else {
		out.Rows = append([][]vector.Value(nil), grouped.Rows...)
		sort.SliceStable(out.Rows, func(a, b int) bool {
			return rowLess(out.Rows[a], out.Rows[b], keyIdx)
		})
	}
	return ctx.FlatChunk(out), nil
}

// factorizedAggregate aggregates a tree without materializing it.
func (o *AggregateProjectTop) factorizedAggregate(ctx *Ctx, ft *core.FTree) (*core.FlatBlock, error) {
	needed := append([]string(nil), o.GroupBy...)
	for _, a := range o.Aggs {
		if a.Arg != "" {
			needed = append(needed, a.Arg)
		}
	}
	if node := ft.NodeOfColumns(needed); node != nil {
		return o.weightedAggregate(ctx, ft, node)
	}
	return o.streamingAggregate(ft, needed)
}

// weightedAggregate runs strategy 1: single-node aggregation weighted by
// full-tuple participation counts.
func (o *AggregateProjectTop) weightedAggregate(ctx *Ctx, ft *core.FTree, node *core.Node) (*core.FlatBlock, error) {
	// Single-node trees (plain scans) need no weight sweep: every selected
	// row is exactly one tuple. The batch path skips the per-node weight
	// slices; w == nil means "selection vector is the weight".
	var w []int64
	if ctx.NoGather || len(ft.Nodes()) > 1 {
		w = tupleWeights(ft)[node.ID()]
	}
	block := node.Block

	groupCols := make([]*vector.Column, len(o.GroupBy))
	groupKinds := make([]vector.Kind, len(o.GroupBy))
	for i, g := range o.GroupBy {
		c := block.ColumnByName(g)
		if c == nil {
			return nil, errNoColumn("fused-aggregate", g)
		}
		groupCols[i] = c
		groupKinds[i] = c.Kind
	}
	argCols := make([]*vector.Column, len(o.Aggs))
	argKind := make([]vector.Kind, len(o.Aggs))
	for j, a := range o.Aggs {
		if a.Arg == "" {
			argKind[j] = vector.KindInt64
			continue
		}
		c := block.ColumnByName(a.Arg)
		if c == nil {
			return nil, errNoColumn("fused-aggregate", a.Arg)
		}
		argCols[j] = c
		argKind[j] = c.Kind
	}

	groups := make(map[string]*aggState)
	groupVals := make([]vector.Value, len(o.GroupBy))
	// Vectorized key path (§5): a single integer/date or dict-encoded string
	// group column keys the hash table by its raw 8-byte value / 4-byte code,
	// so the per-row string key is built only once per distinct group. The
	// same aggState instances land in the rowKey-keyed map, so emission (and
	// its deterministic ordering) is unchanged.
	var fastKey func(i int) int64
	if len(groupCols) == 1 && !ctx.NoGather {
		switch c := groupCols[0]; {
		case c.Lazy():
		case c.Kind == vector.KindInt64 || c.Kind == vector.KindDate:
			vals := c.Int64s()
			fastKey = func(i int) int64 { return vals[i] }
		case c.Kind == vector.KindString && c.DictEncoded():
			codes := c.Codes()
			fastKey = func(i int) int64 { return int64(codes[i]) }
		}
	}
	var byCode map[int64]*aggState
	if fastKey != nil {
		byCode = make(map[int64]*aggState)
	}
	for i := 0; i < block.NumRows(); i++ {
		wi := int64(1)
		if w != nil {
			if wi = w[i]; wi == 0 {
				continue
			}
		} else if !node.Sel.Get(i) {
			continue
		}
		var st *aggState
		if fastKey != nil {
			code := fastKey(i)
			var ok bool
			if st, ok = byCode[code]; !ok {
				groupVals[0] = groupCols[0].Get(i)
				st = newAggState(groupVals, o.Aggs)
				byCode[code] = st
				groups[rowKey(groupVals)] = st
			}
		} else {
			for gi, gc := range groupCols {
				groupVals[gi] = gc.Get(i)
			}
			key := rowKey(groupVals)
			var ok bool
			if st, ok = groups[key]; !ok {
				st = newAggState(groupVals, o.Aggs)
				groups[key] = st
			}
		}
		for j, a := range o.Aggs {
			var v vector.Value
			if argCols[j] != nil {
				v = argCols[j].Get(i)
			}
			st.update(j, a, v, wi)
		}
	}
	return emitAggregates(o.GroupBy, groupKinds, o.Aggs, argKind, groups)
}

// streamingAggregate runs strategy 2: enumerate only the needed columns
// directly into the group table.
func (o *AggregateProjectTop) streamingAggregate(ft *core.FTree, needed []string) (*core.FlatBlock, error) {
	// Deduplicate the needed column list, preserving order.
	seen := make(map[string]int)
	var cols []string
	for _, c := range needed {
		if _, ok := seen[c]; !ok {
			seen[c] = len(cols)
			cols = append(cols, c)
		}
	}
	refs, err := ft.Resolve(cols)
	if err != nil {
		return nil, err
	}
	kinds := make([]vector.Kind, len(refs))
	for i, r := range refs {
		kinds[i] = ft.Nodes()[r.Node].Block.Column(r.Col).Kind
	}

	groupIdx := make([]int, len(o.GroupBy))
	for i, g := range o.GroupBy {
		groupIdx[i] = seen[g]
	}
	argIdx := make([]int, len(o.Aggs))
	argKind := make([]vector.Kind, len(o.Aggs))
	for j, a := range o.Aggs {
		if a.Arg == "" {
			argIdx[j] = -1
			argKind[j] = vector.KindInt64
			continue
		}
		argIdx[j] = seen[a.Arg]
		argKind[j] = kinds[seen[a.Arg]]
	}

	groups := make(map[string]*aggState)
	groupVals := make([]vector.Value, len(o.GroupBy))
	ft.Enumerate(refs, func(row []vector.Value) bool {
		for i, gi := range groupIdx {
			groupVals[i] = row[gi]
		}
		key := rowKey(groupVals)
		st, ok := groups[key]
		if !ok {
			st = newAggState(groupVals, o.Aggs)
			groups[key] = st
		}
		for j, a := range o.Aggs {
			var v vector.Value
			if argIdx[j] >= 0 {
				v = row[argIdx[j]]
			}
			st.update(j, a, v, 1)
		}
		return true
	})

	groupKinds := make([]vector.Kind, len(o.GroupBy))
	for i := range o.GroupBy {
		groupKinds[i] = kinds[groupIdx[i]]
	}
	return emitAggregates(o.GroupBy, groupKinds, o.Aggs, argKind, groups)
}

// tupleWeights computes, for every f-Tree row, the number of valid full
// tuples of R_FT that the row participates in. One bottom-up ("down") pass
// computes subtree counts and one top-down ("up") pass distributes the
// context of the rest of the tree; weight = down × up.
func tupleWeights(ft *core.FTree) [][]int64 {
	nodes := ft.Nodes()
	n := len(nodes)
	down := make([][]int64, n)
	// Bottom-up: children have larger IDs than parents (preorder append).
	for i := n - 1; i >= 0; i-- {
		nd := nodes[i]
		rows := nd.Block.NumRows()
		d := make([]int64, rows)
		for r := 0; r < rows; r++ {
			if !nd.Sel.Get(r) {
				continue
			}
			prod := int64(1)
			for _, c := range nd.Children {
				rg := c.Index[r]
				sum := int64(0)
				for j := rg.Start; j < rg.End; j++ {
					sum += down[c.ID()][j]
				}
				prod *= sum
				if prod == 0 {
					break
				}
			}
			d[r] = prod
		}
		down[i] = d
	}
	up := make([][]int64, n)
	for i := range up {
		up[i] = make([]int64, nodes[i].Block.NumRows())
	}
	for r := range up[0] {
		if nodes[0].Sel.Get(r) {
			up[0][r] = 1
		}
	}
	// Top-down in preorder: parents are processed before children.
	for _, nd := range nodes {
		if len(nd.Children) == 0 {
			continue
		}
		rows := nd.Block.NumRows()
		// Per-row sibling sums.
		sums := make([][]int64, len(nd.Children))
		for ci, c := range nd.Children {
			s := make([]int64, rows)
			for r := 0; r < rows; r++ {
				rg := c.Index[r]
				var sum int64
				for j := rg.Start; j < rg.End; j++ {
					sum += down[c.ID()][j]
				}
				s[r] = sum
			}
			sums[ci] = s
		}
		for ci, c := range nd.Children {
			for r := 0; r < rows; r++ {
				// Only valid parent rows extend tuples downward: up[u][i]
				// may be positive for rows the selection vector has since
				// invalidated, and those must not propagate.
				if up[nd.ID()][r] == 0 || !nd.Sel.Get(r) {
					continue
				}
				prodOthers := up[nd.ID()][r]
				for cj := range nd.Children {
					if cj != ci {
						prodOthers *= sums[cj][r]
					}
					if prodOthers == 0 {
						break
					}
				}
				if prodOthers == 0 {
					continue
				}
				rg := c.Index[r]
				for j := rg.Start; j < rg.End; j++ {
					up[c.ID()][j] = prodOthers
				}
			}
		}
	}
	w := make([][]int64, n)
	for i := range w {
		rows := nodes[i].Block.NumRows()
		wi := make([]int64, rows)
		for r := 0; r < rows; r++ {
			wi[r] = down[i][r] * up[i][r]
		}
		w[i] = wi
	}
	return w
}
