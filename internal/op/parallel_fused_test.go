package op_test

import (
	"reflect"
	"testing"

	"ges/internal/catalog"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/ldbc"
	"ges/internal/op"
	"ges/internal/plan"
)

// midID returns a person-ID threshold selecting roughly half the persons
// (person external IDs are 1..P).
func midID(ds *ldbc.Dataset) int64 {
	return int64(ds.Stats().Persons / 2)
}

// runPlanAt executes the plan at the given parallelism degree.
func runPlanAt(t *testing.T, ds *ldbc.Dataset, mode exec.Mode, workers int, p plan.Plan) []string {
	t.Helper()
	eng := exec.New(mode)
	eng.Parallel = workers
	res, err := eng.Run(ds.Graph, p)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return rowsAsStrings(res.Block)
}

// TestParallelFusedExpandDeterministic asserts the tentpole determinism
// contract on the materializing expansion path: a fused-predicate Expand
// (FilterPushDown) over a block large enough to shard into morsels produces
// byte-identical output at every worker count. Stateful predicate instances
// are forked per morsel, so this also races predicate state under -race.
func TestParallelFusedExpandDeterministic(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	pred := func() op.VertexPred {
		return op.VertexPropPred(expr.Le(expr.C(op.ExtIDProp), expr.LInt(midID(ds))), nil)
	}
	buildPlan := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			// ~800 f rows cross the morsel threshold; the predicate keeps
			// roughly half the neighbors, so merge offsets are exercised.
			&op.Expand{From: "f", To: "g", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person,
				VertexPred: pred()},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "g", As: "g.id", ExtID: true}}},
			&op.Defactor{Cols: []string{"g.id"}},
		}
	}
	var want []string
	for _, workers := range []int{1, 2, 8} {
		got := runPlanAt(t, ds, exec.ModeFactorized, workers, buildPlan())
		if want == nil {
			if len(got) == 0 {
				t.Fatal("fused expand produced no rows; predicate threshold broken")
			}
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: fused expand diverges from sequential", workers)
		}
	}
}

// TestParallelVarExpandPredicateAgrees covers the former sequential fallback:
// a VarLengthExpand carrying a fused VertexPred must take the parallel path
// and agree with sequential execution at Parallel=8.
func TestParallelVarExpandPredicateAgrees(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	buildPlan := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.VarLengthExpand{From: "f", To: "g", Et: h.Knows, Dir: catalog.Out,
				DstLabel: h.Person, MinHops: 1, MaxHops: 2, Distinct: true,
				VertexPred: op.VertexPropPred(expr.Le(expr.C(op.ExtIDProp), expr.LInt(midID(ds))), nil)},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "g", As: "g.id", ExtID: true}}},
			&op.Defactor{Cols: []string{"g.id"}},
		}
	}
	want := runPlanAt(t, ds, exec.ModeFactorized, 1, buildPlan())
	if len(want) == 0 {
		t.Fatal("predicate var-expand produced no rows")
	}
	got := runPlanAt(t, ds, exec.ModeFactorized, 8, buildPlan())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Parallel=8 var-expand with VertexPred diverges: %d vs %d rows", len(got), len(want))
	}
}

// TestParallelFlatExpandDeterministic exercises the flat-path expansion port
// (ModeFlat materializes between operators): fused predicate plus edge
// properties across morsels of input rows.
func TestParallelFlatExpandDeterministic(t *testing.T) {
	ds, err := driver.SharedDataset(0.1)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	buildPlan := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			// The flat second expansion sees ~1600 input rows — over the
			// morsel threshold — with a fused predicate and an edge-property
			// projection.
			&op.Expand{From: "f", To: "g", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person,
				VertexPred: op.VertexPropPred(expr.Le(expr.C(op.ExtIDProp), expr.LInt(midID(ds))), nil),
				EdgeProps:  []op.EdgeProj{{Prop: "creationDate", As: "since"}}},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "g", As: "g.id", ExtID: true}}},
			&op.Defactor{Cols: []string{"g.id", "since"}},
		}
	}
	want := runPlanAt(t, ds, exec.ModeFlat, 1, buildPlan())
	if len(want) == 0 {
		t.Fatal("flat fused expand produced no rows")
	}
	for _, workers := range []int{2, 8} {
		got := runPlanAt(t, ds, exec.ModeFlat, workers, buildPlan())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: flat expand diverges from sequential", workers)
		}
	}
}

// TestParallelFilterProjectDefactorDeterministic covers the remaining ported
// operators in one plan: a morsel-parallel Projection gather, a word-aligned
// parallel selection-vector Filter (vectorized int64 fast path), and the
// morsel-parallel DefactorAll enumeration.
func TestParallelFilterProjectDefactorDeterministic(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	buildPlan := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "f", As: "f.id", ExtID: true},
				{Var: "f", Prop: "firstName", As: "f.firstName"},
			}},
			&op.Filter{Pred: expr.Le(expr.C("f.id"), expr.LInt(midID(ds)))},
			&op.Defactor{},
		}
	}
	want := runPlanAt(t, ds, exec.ModeFactorized, 1, buildPlan())
	if len(want) == 0 {
		t.Fatal("filter kept no rows")
	}
	for _, workers := range []int{2, 8} {
		got := runPlanAt(t, ds, exec.ModeFactorized, workers, buildPlan())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: filter/project/defactor pipeline diverges", workers)
		}
	}
}
