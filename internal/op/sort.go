package op

import (
	"container/heap"
	"sort"
	"strconv"
	"strings"

	"ges/internal/core"
	"ges/internal/vector"
)

// SortKey is one ORDER BY key.
type SortKey struct {
	Col  string
	Desc bool
}

// OrderBy is a blocking operator: ordering is defined over whole tuples, so
// when the sort keys span f-Tree nodes the chunk must be de-factored
// (§4.3, Order-By). The crucial optimization — used heavily by the paper's
// long-running queries — is that with a Limit the de-factoring enumerates
// tuples with constant delay *directly into a bounded top-k heap*, never
// materializing the full flat relation (Figure 8(b)(vi)).
type OrderBy struct {
	Keys  []SortKey
	Limit int      // 0 = sort everything
	Cols  []string // output columns; nil = full schema
}

// Name implements Operator.
func (o *OrderBy) Name() string { return "OrderBy" }

// Execute implements Operator.
func (o *OrderBy) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	var fb *core.FlatBlock
	if in.IsFlat() {
		fb = in.Flat
		if o.Cols != nil {
			// Sort first over the full rows, then project, so keys not in
			// Cols still apply? Keys must be within Cols for projection;
			// sort happens below on fb, project after.
			var err error
			if fb, err = projectKeepingKeys(fb, o.Cols, o.Keys); err != nil {
				return nil, err
			}
		}
	} else {
		cols := o.Cols
		if cols == nil {
			cols = in.FT.Schema()
		} else {
			cols = mergeKeyCols(cols, o.Keys)
		}
		keyIdx, err := keyIndices(cols, o.Keys)
		if err != nil {
			return nil, err
		}
		refs, err := in.FT.Resolve(cols)
		if err != nil {
			return nil, err
		}
		kinds := make([]vector.Kind, len(refs))
		for i, r := range refs {
			kinds[i] = in.FT.Nodes()[r.Node].Block.Column(r.Col).Kind
		}
		if o.Limit > 0 {
			// Vectorized Top-K (§5): a single-node tree keeps row *indices*
			// in the heap and compares sort keys directly against the
			// gathered columns — rejected rows are never boxed or copied.
			if out := columnarTopK(ctx, in.FT, refs, cols, kinds, keyIdx, o.Limit); out != nil {
				return o.projectOut(ctx, out)
			}
			// Constant-delay enumeration into a bounded heap.
			h := newTopK(o.Limit, keyIdx)
			in.FT.Enumerate(refs, func(row []vector.Value) bool {
				h.offer(row)
				return true
			})
			out := core.NewFlatBlock(append([]string(nil), cols...), kinds)
			out.Rows = h.sorted()
			return o.projectOut(ctx, out)
		}
		fb = core.NewFlatBlock(append([]string(nil), cols...), kinds)
		in.FT.Enumerate(refs, func(row []vector.Value) bool {
			fb.Append(row)
			return true
		})
	}
	keyIdx, err := keyIndices(fb.Names, o.Keys)
	if err != nil {
		return nil, err
	}
	if o.Limit > 0 && fb.NumRows() > o.Limit {
		h := newTopK(o.Limit, keyIdx)
		for _, row := range fb.Rows {
			h.offer(row)
		}
		out := core.NewFlatBlock(fb.Names, fb.Kinds)
		out.Rows = h.sorted()
		return o.projectOut(ctx, out)
	}
	sorted := core.NewFlatBlock(fb.Names, fb.Kinds)
	sorted.Rows = append([][]vector.Value(nil), fb.Rows...)
	sort.SliceStable(sorted.Rows, func(a, b int) bool {
		return rowLess(sorted.Rows[a], sorted.Rows[b], keyIdx)
	})
	return o.projectOut(ctx, sorted)
}

// projectOut narrows to o.Cols when set.
func (o *OrderBy) projectOut(ctx *Ctx, fb *core.FlatBlock) (*core.Chunk, error) {
	if o.Cols == nil {
		return ctx.FlatChunk(fb), nil
	}
	out, err := fb.Project(o.Cols)
	if err != nil {
		return nil, err
	}
	return ctx.FlatChunk(out), nil
}

func mergeKeyCols(cols []string, keys []SortKey) []string {
	out := append([]string(nil), cols...)
	for _, k := range keys {
		found := false
		for _, c := range out {
			if c == k.Col {
				found = true
				break
			}
		}
		if !found {
			out = append(out, k.Col)
		}
	}
	return out
}

func projectKeepingKeys(fb *core.FlatBlock, cols []string, keys []SortKey) (*core.FlatBlock, error) {
	return fb.Project(mergeKeyCols(cols, keys))
}

// keyIdx pairs a column position with its direction.
type keyIdx struct {
	pos  int
	desc bool
}

func keyIndices(names []string, keys []SortKey) ([]keyIdx, error) {
	out := make([]keyIdx, len(keys))
	for i, k := range keys {
		pos := -1
		for j, n := range names {
			if n == k.Col {
				pos = j
				break
			}
		}
		if pos < 0 {
			return nil, errNoColumn("order-by", k.Col)
		}
		out[i] = keyIdx{pos: pos, desc: k.Desc}
	}
	return out, nil
}

// rowLess orders rows by the key list.
func rowLess(a, b []vector.Value, keys []keyIdx) bool {
	for _, k := range keys {
		c := vector.Compare(a[k.pos], b[k.pos])
		if c == 0 {
			continue
		}
		if k.desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// topK is a bounded max-heap keeping the K smallest rows under the key
// order (the heap root is the current worst retained row).
type topK struct {
	k    int
	keys []keyIdx
	rows [][]vector.Value
}

func newTopK(k int, keys []keyIdx) *topK { return &topK{k: k, keys: keys} }

func (h *topK) Len() int           { return len(h.rows) }
func (h *topK) Less(i, j int) bool { return rowLess(h.rows[j], h.rows[i], h.keys) }
func (h *topK) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *topK) Push(x any)         { h.rows = append(h.rows, x.([]vector.Value)) }
func (h *topK) Pop() any {
	last := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return last
}

// offer considers one row (copying it only if retained).
func (h *topK) offer(row []vector.Value) {
	if len(h.rows) < h.k {
		heap.Push(h, append([]vector.Value(nil), row...))
		return
	}
	if rowLess(row, h.rows[0], h.keys) {
		h.rows[0] = append([]vector.Value(nil), row...)
		heap.Fix(h, 0)
	}
}

// sorted drains the heap into ascending key order.
func (h *topK) sorted() [][]vector.Value {
	out := make([][]vector.Value, len(h.rows))
	for i := len(h.rows) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).([]vector.Value)
	}
	return out
}

// columnarTopK is the vectorized Top-K fast path over a single-node tree.
// The heap replays exactly the comparison sequence of the enumeration path
// (same rows offered in the same order, compared by the same semantics as
// vector.Compare), so its output is byte-identical; only the boxing of
// rejected rows is gone.
func columnarTopK(ctx *Ctx, ft *core.FTree, refs []core.ColRef, cols []string, kinds []vector.Kind, keys []keyIdx, limit int) *core.FlatBlock {
	if ctx.NoGather || len(ft.Nodes()) != 1 {
		return nil
	}
	node := ft.Nodes()[0]
	colAt := make([]*vector.Column, len(refs))
	for i, r := range refs {
		colAt[i] = node.Block.Column(r.Col)
	}
	cmps := make([]func(a, b int) int, len(keys))
	for ki, k := range keys {
		if cmps[ki] = columnComparator(colAt[k.pos]); cmps[ki] == nil {
			return nil
		}
	}
	h := &idxTopK{k: limit, keys: keys, cmps: cmps}
	for i, n := 0, node.Block.NumRows(); i < n; i++ {
		if node.Sel.Get(i) {
			h.offer(i)
		}
	}
	out := core.NewFlatBlock(append([]string(nil), cols...), kinds)
	for _, ri := range h.sortedIdx() {
		row := make([]vector.Value, len(colAt))
		for j, c := range colAt {
			row[j] = c.Get(ri)
		}
		out.AppendOwned(row)
	}
	return out
}

// columnComparator returns a row-index comparator matching vector.Compare on
// same-kind values, reading the column storage directly (dict strings
// resolve lazily — codes are not order-preserving).
func columnComparator(c *vector.Column) func(a, b int) int {
	switch c.Kind {
	case vector.KindInt64, vector.KindDate:
		vals := c.Int64s()
		return func(a, b int) int { return cmpI64(vals[a], vals[b]) }
	case vector.KindFloat64:
		vals := c.Float64s()
		return func(a, b int) int {
			switch {
			case vals[a] < vals[b]:
				return -1
			case vals[a] > vals[b]:
				return 1
			default:
				return 0
			}
		}
	case vector.KindVID:
		return func(a, b int) int { return cmpI64(int64(c.VIDAt(a)), int64(c.VIDAt(b))) }
	case vector.KindString:
		return func(a, b int) int {
			sa, sb := c.StringAt(a), c.StringAt(b)
			switch {
			case sa < sb:
				return -1
			case sa > sb:
				return 1
			default:
				return 0
			}
		}
	case vector.KindBool:
		vals := c.Bools()
		return func(a, b int) int {
			var ia, ib int64
			if vals[a] {
				ia = 1
			}
			if vals[b] {
				ib = 1
			}
			return cmpI64(ia, ib)
		}
	default:
		return nil
	}
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// idxTopK is topK over row indices with columnar key comparators. The heap
// mechanics are identical to topK, so retained rows and output order match
// the boxed heap exactly.
type idxTopK struct {
	k    int
	keys []keyIdx
	cmps []func(a, b int) int
	idx  []int
}

// idxLess orders row a before row b under the key list.
func (h *idxTopK) idxLess(a, b int) bool {
	for ki, k := range h.keys {
		c := h.cmps[ki](a, b)
		if c == 0 {
			continue
		}
		if k.desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

func (h *idxTopK) Len() int           { return len(h.idx) }
func (h *idxTopK) Less(i, j int) bool { return h.idxLess(h.idx[j], h.idx[i]) }
func (h *idxTopK) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *idxTopK) Push(x any)         { h.idx = append(h.idx, x.(int)) }
func (h *idxTopK) Pop() any {
	last := h.idx[len(h.idx)-1]
	h.idx = h.idx[:len(h.idx)-1]
	return last
}

// offer considers one row index.
func (h *idxTopK) offer(i int) {
	if len(h.idx) < h.k {
		heap.Push(h, i)
		return
	}
	if h.idxLess(i, h.idx[0]) {
		h.idx[0] = i
		heap.Fix(h, 0)
	}
}

// sortedIdx drains the heap into ascending key order.
func (h *idxTopK) sortedIdx() []int {
	out := make([]int, len(h.idx))
	for i := len(h.idx) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(int)
	}
	return out
}

// MemBytes reports the retained heap size (used by the fused operator's
// memory accounting).
func (h *topK) MemBytes() int {
	n := 48
	for _, row := range h.rows {
		n += 24
		for _, v := range row {
			n += v.Kind.Width() + len(v.S)
		}
	}
	return n
}

// Limit truncates to the first N tuples (after an optional Skip). On a
// factorized chunk it enumerates at most Skip+N tuples — constant-delay
// early exit — rather than de-factoring everything.
type Limit struct {
	N    int
	Skip int
}

// Name implements Operator.
func (o *Limit) Name() string { return "Limit" }

// Execute implements Operator.
func (o *Limit) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if in.IsFlat() {
		fb := in.Flat
		lo := o.Skip
		if lo > fb.NumRows() {
			lo = fb.NumRows()
		}
		hi := lo + o.N
		if hi > fb.NumRows() {
			hi = fb.NumRows()
		}
		out := core.NewFlatBlock(fb.Names, fb.Kinds)
		out.Rows = fb.Rows[lo:hi]
		return ctx.FlatChunk(out), nil
	}
	cols := in.FT.Schema()
	refs, err := in.FT.Resolve(cols)
	if err != nil {
		return nil, err
	}
	kinds := make([]vector.Kind, len(refs))
	for i, r := range refs {
		kinds[i] = in.FT.Nodes()[r.Node].Block.Column(r.Col).Kind
	}
	out := core.NewFlatBlock(cols, kinds)
	seen := 0
	in.FT.Enumerate(refs, func(row []vector.Value) bool {
		seen++
		if seen <= o.Skip {
			return true
		}
		out.Append(row)
		return out.NumRows() < o.N
	})
	return ctx.FlatChunk(out), nil
}

// Distinct removes duplicate tuples over the named columns (all columns when
// nil). It requires global cross-tuple state, so it is a de-factoring
// operator.
type Distinct struct {
	Cols []string
}

// Name implements Operator.
func (o *Distinct) Name() string { return "Distinct" }

// Execute implements Operator.
func (o *Distinct) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	var fb *core.FlatBlock
	var err error
	if in.IsFlat() {
		fb = in.Flat
		if o.Cols != nil {
			if fb, err = fb.Project(o.Cols); err != nil {
				return nil, err
			}
		}
	} else {
		d := &Defactor{Cols: o.Cols}
		ch, err := d.Execute(ctx, in)
		if err != nil {
			return nil, err
		}
		fb = ch.Flat
	}
	out := core.NewFlatBlock(fb.Names, fb.Kinds)
	seen := make(map[string]struct{}, fb.NumRows())
	for _, row := range fb.Rows {
		k := rowKey(row)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.AppendOwned(row)
	}
	return ctx.FlatChunk(out), nil
}

// rowKey builds a collision-safe hash key for a tuple using length-prefixed
// value encodings.
func rowKey(row []vector.Value) string {
	var sb strings.Builder
	for _, v := range row {
		s := v.String()
		sb.WriteString(strconv.Itoa(len(s)))
		sb.WriteByte(':')
		sb.WriteString(s)
	}
	return sb.String()
}
