package op_test

import (
	"reflect"
	"testing"

	"ges/internal/catalog"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/ldbc/queries"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
)

// TestParallelExpandDeterministic asserts the §2.1 intra-query parallelism
// contract: expansion results are byte-identical across worker counts, both
// for single-hop (lazy pointer-join) and var-length traversal, on a dataset
// large enough to cross the morsel threshold.
func TestParallelExpandDeterministic(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	buildPlan := func() plan.Plan {
		return plan.Plan{
			// NodeScan yields all persons; the first expansion yields ~800
			// rows, crossing the 512-row morsel threshold for both the
			// lazy Expand and the VarLengthExpand.
			&op.NodeScan{Var: "p", Label: h.Person},
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.VarLengthExpand{From: "f", To: "g", Et: h.Knows, Dir: catalog.Out,
				DstLabel: h.Person, MinHops: 1, MaxHops: 1, Distinct: true},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "g", As: "g.id", ExtID: true}}},
			&op.Aggregate{GroupBy: nil, Aggs: []op.AggSpec{
				{Func: op.Count, As: "n"},
				{Func: op.Sum, Arg: "g.id", As: "sum"},
			}},
		}
	}
	var want []string
	for _, workers := range []int{1, 4} {
		eng := exec.New(exec.ModeFactorized)
		eng.Parallel = workers
		res, err := eng.Run(ds.Graph, buildPlan())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := rowsAsStrings(res.Block)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverges: %v vs %v", workers, got, want)
		}
	}
}

// TestParallelWorkloadQueriesAgree runs the heavier IC queries with
// parallelism enabled and compares against sequential execution.
func TestParallelWorkloadQueriesAgree(t *testing.T) {
	ds, err := driver.SharedDataset(0.1)
	if err != nil {
		t.Fatal(err)
	}
	seq := queries.NewRunner(ds, exec.ModeFactorized, nil)
	parEngine := exec.New(exec.ModeFactorized)
	parEngine.Parallel = 4
	par := queries.NewRunnerWith(ds, parEngine, nil)

	for _, name := range []string{"IC2", "IC5", "IC6", "IC9", "IC12"} {
		q, errq := queries.ByName(name)
		if errq != nil {
			t.Fatal(errq)
		}
		pgA := ds.NewParamGen(55)
		pgB := ds.NewParamGen(55)
		for trial := 0; trial < 5; trial++ {
			a, _, err := seq.Execute(q, q.GenParams(ds, pgA))
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := par.Execute(q, q.GenParams(ds, pgB))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rowsAsStrings(a), rowsAsStrings(b)) {
				t.Fatalf("%s trial %d: parallel diverges", name, trial)
			}
		}
	}
}

func TestShardBoundsViaBehavior(t *testing.T) {
	// Degenerate sizes: empty scan and tiny blocks must not break parallel
	// mode (they fall below the threshold, but exercise the guard).
	f := newEmptyPersonGraph(t)
	eng := exec.New(exec.ModeFactorized)
	eng.Parallel = 8
	res, err := eng.Run(f, plan.Plan{
		&op.NodeScan{Var: "p", Label: 0},
		&op.Expand{From: "p", To: "f", Et: 0, Dir: catalog.Out, DstLabel: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Block.NumRows() != 0 {
		t.Fatal("phantom rows")
	}
}

func newEmptyPersonGraph(t *testing.T) *storage.Graph {
	t.Helper()
	cat := catalogNew(t)
	return storage.NewGraph(cat)
}

func catalogNew(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.AddLabel("Person"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddEdgeType("KNOWS"); err != nil {
		t.Fatal(err)
	}
	return c
}
