package op

import (
	"ges/internal/storage"
	"ges/internal/vector"
)

// Vectorized property gather (§5, Vectorization): instead of one
// View.Prop(v, p) interface call (and one boxed Value) per row, operators
// hand the storage layer a whole VID column and receive a whole property
// column back. Projection attaches the gathered column outright; fused
// predicates gather into reusable scratch columns and evaluate tight kernels
// over the raw slices. Every batch path falls back to the scalar per-row
// path (returning nil) when the context disables gathering, so the scalar
// implementation remains the semantic reference.

// materializedVIDs returns the VID slice of col, copying lazy segments into
// buf when needed (batch gathers index vids randomly).
func materializedVIDs(col *vector.Column, buf []vector.VID) []vector.VID {
	if !col.Lazy() {
		return col.VIDs()
	}
	buf = buf[:0]
	col.EachVID(func(_ int, v vector.VID) { buf = append(buf, v) })
	return buf
}

// newGatherOutput returns the output column shape for a batch gather over
// the given defining labels: single-label string properties share the
// storage dictionary so the gather moves 4-byte codes; everything else is a
// plain typed column. own draws the column from the query arena —
// Projection's f-Block-bound outputs use that — while predicate scratch
// passes own=false because cached plans keep their batch columns (and the
// compiled getters bound to them) alive across queries, beyond any arena.
func (g *propGetter) newGatherOutput(ctx *Ctx, as string, labels []labelPid, own bool) *vector.Column {
	if g.kind == vector.KindString && len(labels) == 1 {
		if dp, ok := ctx.View.(storage.DictProvider); ok {
			if d := dp.PropDict(labels[0].label, labels[0].pid); d != nil {
				if own {
					return ctx.Arena.OwnDictColumn(as, d)
				}
				return vector.NewDictColumn(as, d)
			}
		}
	}
	if own {
		return ctx.Arena.OwnColumn(as, g.kind)
	}
	return vector.NewColumn(as, g.kind)
}

// presentLabels narrows g's defining labels to those a vertex in vids
// actually carries. Schema names like creationDate are defined on several
// labels, but a scan or typed expansion produces a single-label column —
// narrowing restores the dictionary-code and zero-copy tiers for them.
func (g *propGetter) presentLabels(ctx *Ctx, vids []vector.VID) []labelPid {
	if len(g.labels) <= 1 {
		return g.labels
	}
	seen := make([]bool, len(g.labels))
	n := 0
	for _, v := range vids {
		l := ctx.View.LabelOf(v)
		for i, lp := range g.labels {
			if lp.label == l && !seen[i] {
				seen[i] = true
				n++
			}
		}
		if n == len(g.labels) {
			break
		}
	}
	out := make([]labelPid, 0, n)
	for i, lp := range g.labels {
		if seen[i] {
			out = append(out, lp)
		}
	}
	return out
}

// gatherColumn builds the property column of g for every row of vidCol in one
// batch. Tier 1 shares the storage column zero-copy when vidCol is exactly
// the label's scan order; tier 2 bulk-gathers into a fresh column (one pass
// per defining label, so mixed-label variables work). Returns nil when batch
// gathering is disabled; the caller then runs the scalar path.
func (g *propGetter) gatherColumn(ctx *Ctx, vidCol *vector.Column, as string) *vector.Column {
	if ctx.NoGather || len(g.labels) == 0 {
		return nil
	}
	// Lazy columns materialize into arena scratch; non-lazy columns return
	// their own storage, so only buf (never vids) goes back to the pool.
	var buf []vector.VID
	if vidCol.Lazy() {
		buf = ctx.Arena.GetVIDs(vidCol.Len())
		defer ctx.Arena.PutVIDs(buf)
	}
	vids := materializedVIDs(vidCol, buf)
	// A scan-ordered VID column matches at most one label's scan order, so
	// probing every defining label is cheap (length mismatches reject in O(1)).
	if sc, ok := ctx.View.(storage.ColumnSharer); ok {
		for _, lp := range g.labels {
			if col := sc.ShareScanColumn(lp.label, lp.pid, vids); col != nil {
				ctx.Gather.Gathers.Add(1)
				ctx.Gather.SharedCols.Add(1)
				return col.ShareAs(as)
			}
		}
	}
	labels := g.presentLabels(ctx, vids)
	out := g.newGatherOutput(ctx, as, labels, true)
	out.Grow(len(vids))
	for _, lp := range labels {
		ctx.View.GatherProps(vids, lp.label, lp.pid, nil, out)
	}
	ctx.Gather.Gathers.Add(1)
	return out
}

// gatherExtIDColumn batch-resolves external identifiers. Returns nil when
// gathering is disabled.
func gatherExtIDColumn(ctx *Ctx, vidCol *vector.Column, as string) *vector.Column {
	if ctx.NoGather {
		return nil
	}
	var buf []vector.VID
	if vidCol.Lazy() {
		buf = ctx.Arena.GetVIDs(vidCol.Len())
		defer ctx.Arena.PutVIDs(buf)
	}
	vids := materializedVIDs(vidCol, buf)
	out := ctx.Arena.OwnColumn(as, vector.KindInt64)
	out.Grow(len(vids))
	ctx.View.GatherExtIDs(vids, nil, out.Int64s())
	ctx.Gather.Gathers.Add(1)
	return out
}
