package op_test

import (
	"fmt"
	"reflect"
	"testing"

	"ges/internal/catalog"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/testgraph"
	"ges/internal/vector"
	"ges/internal/volcano"
)

// triangleFixture is the standard fixture plus two extra symmetric KNOWS
// edges that create triangles: p0-p1-p2 and p2-p4-p5.
func triangleFixture(t *testing.T) *testgraph.Fixture {
	t.Helper()
	f := testgraph.New()
	s := f.Schema
	for _, e := range [][2]int{{1, 2}, {4, 5}} {
		a, b := f.Persons[e[0]], f.Persons[e[1]]
		if err := f.Graph.AddEdge(s.Knows, a, b, vector.Date(21000)); err != nil {
			t.Fatal(err)
		}
		if err := f.Graph.AddEdge(s.Knows, b, a, vector.Date(21000)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// bruteTriangles enumerates (a,b,c) ext-ID triples with a→b→c→a over KNOWS
// by scalar adjacency walks — the reference the operator must reproduce.
func bruteTriangles(f *testgraph.Fixture) []string {
	s := f.Schema
	g := f.Graph
	adj := func(v vector.VID) []vector.VID {
		var out []vector.VID
		for _, seg := range g.Neighbors(nil, v, s.Knows, catalog.Out, s.Person, false) {
			out = append(out, seg.VIDs...)
		}
		return out
	}
	has := func(v, w vector.VID) bool {
		for _, x := range adj(v) {
			if x == w {
				return true
			}
		}
		return false
	}
	var rows []string
	for _, a := range f.Persons {
		for _, b := range adj(a) {
			for _, c := range adj(b) {
				if has(c, a) {
					rows = append(rows, fmt.Sprintf("%d|%d|%d|", g.ExtID(a), g.ExtID(b), g.ExtID(c)))
				}
			}
		}
	}
	return sortedCopy(rows)
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func trianglePlan(s *testgraph.Schema) plan.Plan {
	return plan.Plan{
		&op.NodeScan{Var: "a", Label: s.Person},
		&op.Expand{From: "a", To: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.Expand{From: "b", To: "c", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.ExpandInto{From: "c", To: "a", Et: s.Knows, Dir: catalog.Out,
			DstLabel: s.Person, SrcLabel: s.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "a", As: "a.id", ExtID: true},
			{Var: "b", As: "b.id", ExtID: true},
			{Var: "c", As: "c.id", ExtID: true},
		}},
		&op.Defactor{Cols: []string{"a.id", "b.id", "c.id"}},
	}
}

// TestExpandIntoTriangles checks the semi-join against brute force across
// every engine mode × worker count × ablation-knob combination, sealed and
// unsealed — all must produce the identical multiset.
func TestExpandIntoTriangles(t *testing.T) {
	for _, sealed := range []bool{false, true} {
		f := triangleFixture(t)
		if sealed {
			f.Graph.CompactAdjacency()
			f.Graph.SealCSR()
		}
		want := bruteTriangles(f)
		if len(want) == 0 {
			t.Fatal("fixture has no triangles; test is vacuous")
		}
		for _, mode := range modes {
			for _, workers := range []int{1, 2, 4, 8} {
				for _, noCSR := range []bool{false, true} {
					for _, noIntersect := range []bool{false, true} {
						e := exec.New(mode)
						e.Parallel = workers
						e.NoCSR, e.NoIntersect = noCSR, noIntersect
						res, err := e.Run(f.Graph, trianglePlan(f.Schema))
						if err != nil {
							t.Fatalf("sealed=%v %s w=%d nocsr=%v noint=%v: %v",
								sealed, mode, workers, noCSR, noIntersect, err)
						}
						if got := rowsAsStrings(res.Block); !reflect.DeepEqual(got, want) {
							t.Fatalf("sealed=%v %s w=%d nocsr=%v noint=%v:\n got %v\nwant %v",
								sealed, mode, workers, noCSR, noIntersect, got, want)
						}
					}
				}
			}
		}
		// Volcano engine interprets the same plan.
		res, err := volcano.New().Run(f.Graph, trianglePlan(f.Schema))
		if err != nil {
			t.Fatalf("volcano: %v", err)
		}
		if got := rowsAsStrings(res.Block); !reflect.DeepEqual(got, want) {
			t.Fatalf("volcano disagrees:\n got %v\nwant %v", got, want)
		}
	}
}

// TestExpandIntoReversedProbe exercises the shallow-side=To orientation: the
// cycle closes c→a where a sits above c in the tree, so the operator probes
// a's reversed (In) adjacency against the SrcLabel family.
func TestExpandIntoReversedProbe(t *testing.T) {
	f := triangleFixture(t)
	s := f.Schema
	// Make the pattern non-vacuous: p4 created m3 and likes it; p2 created
	// m1, m2 and likes m1.
	if err := f.Graph.AddEdge(s.Likes, f.Persons[4], f.Posts[3], vector.Date(21500)); err != nil {
		t.Fatal(err)
	}
	if err := f.Graph.AddEdge(s.Likes, f.Persons[2], f.Posts[1], vector.Date(21501)); err != nil {
		t.Fatal(err)
	}
	f.Graph.CompactAdjacency()
	f.Graph.SealCSR()
	// HAS_CREATOR is asymmetric (message→person), so direction matters:
	// a post's creator who likes the post = (m)-[:HAS_CREATOR]->(p) with
	// (p)-[:LIKES]->(m) closing the cycle.
	build := plan.Plan{
		&op.NodeScan{Var: "p", Label: s.Person},
		&op.Expand{From: "p", To: "m", Et: s.Likes, Dir: catalog.Out, DstLabel: s.Post},
		&op.ExpandInto{From: "m", To: "p", Et: s.HasCreator, Dir: catalog.Out,
			DstLabel: s.Person, SrcLabel: s.Post},
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "p", As: "p.id", ExtID: true},
			{Var: "m", As: "m.id", ExtID: true},
		}},
		&op.Defactor{Cols: []string{"p.id", "m.id"}},
	}
	// Brute force: likes edges whose target's creator is the liker.
	g := f.Graph
	var want []string
	for _, p := range f.Persons {
		for _, seg := range g.Neighbors(nil, p, s.Likes, catalog.Out, s.Post, false) {
			for _, m := range seg.VIDs {
				for _, cs := range g.Neighbors(nil, m, s.HasCreator, catalog.Out, s.Person, false) {
					for _, c := range cs.VIDs {
						if c == p {
							want = append(want, fmt.Sprintf("%d|%d|", g.ExtID(p), g.ExtID(m)))
						}
					}
				}
			}
		}
	}
	want = sortedCopy(want)
	if len(want) == 0 {
		t.Fatal("reversed-probe pattern has no matches; test is vacuous")
	}
	for _, mode := range modes {
		fb := run(t, f, mode, build)
		if got := rowsAsStrings(fb); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s:\n got %v\nwant %v", mode, got, want)
		}
	}
}

// TestExpandIntoSiblingFallback puts From and To on sibling f-Tree nodes,
// where the semi-join cannot run as a selection filter and must de-factor.
func TestExpandIntoSiblingFallback(t *testing.T) {
	f := triangleFixture(t)
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "a", Label: s.Person},
			&op.Expand{From: "a", To: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.Expand{From: "a", To: "c", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ExpandInto{From: "b", To: "c", Et: s.Knows, Dir: catalog.Out,
				DstLabel: s.Person, SrcLabel: s.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "a", As: "a.id", ExtID: true},
				{Var: "b", As: "b.id", ExtID: true},
				{Var: "c", As: "c.id", ExtID: true},
			}},
			&op.Defactor{Cols: []string{"a.id", "b.id", "c.id"}},
		}
	}
	fb := assertModesAgree(t, f, build)
	want := bruteTriangles(f)
	if got := rowsAsStrings(fb); !reflect.DeepEqual(got, want) {
		t.Fatalf("sibling fallback:\n got %v\nwant %v", got, want)
	}
}

// TestExpandIntoParallelDeterministic closes triangles over the LDBC knows
// graph — large enough to cross the morsel threshold — and checks the count
// is byte-identical across worker counts and ablation knobs.
func TestExpandIntoParallelDeterministic(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	buildPlan := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "a", Label: h.Person},
			&op.Expand{From: "a", To: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.Expand{From: "b", To: "c", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.ExpandInto{From: "c", To: "a", Et: h.Knows, Dir: catalog.Out,
				DstLabel: h.Person, SrcLabel: h.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "c", As: "c.id", ExtID: true}}},
			&op.Aggregate{Aggs: []op.AggSpec{
				{Func: op.Count, As: "n"},
				{Func: op.Sum, Arg: "c.id", As: "sum"},
			}},
		}
	}
	var want []string
	for _, workers := range []int{1, 2, 4, 8} {
		for _, noCSR := range []bool{false, true} {
			for _, noIntersect := range []bool{false, true} {
				eng := exec.New(exec.ModeFactorized)
				eng.Parallel = workers
				eng.NoCSR, eng.NoIntersect = noCSR, noIntersect
				res, err := eng.Run(ds.Graph, buildPlan())
				if err != nil {
					t.Fatalf("workers=%d nocsr=%v noint=%v: %v", workers, noCSR, noIntersect, err)
				}
				got := rowsAsStrings(res.Block)
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d nocsr=%v noint=%v diverges: %v vs %v",
						workers, noCSR, noIntersect, got, want)
				}
			}
		}
	}
}

// TestExpandIntoEmptyInput: a scan of a label with no cyclic edges prunes to
// zero rows without error.
func TestExpandIntoNoMatches(t *testing.T) {
	f := testgraph.New() // no triangles in the base fixture
	s := f.Schema
	fb := run(t, f, exec.ModeFactorized, trianglePlan(s))
	if fb.NumRows() != 0 {
		t.Fatalf("base fixture has no triangles, got %d rows", fb.NumRows())
	}
}
