package op

import (
	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/storage"
	"ges/internal/vector"
)

// VarLengthExpand extends each source vertex to all vertices reachable over
// between MinHops and MaxHops edges of one type — the KNOWS*1..2 pattern of
// the paper's running example (§4.3). With Distinct (the LDBC-typical
// semantics) each reachable vertex appears once per source, and the source
// itself is excluded; without it every distinct path contributes one row.
type VarLengthExpand struct {
	From, To string
	Et       catalog.EdgeTypeID
	Dir      catalog.Direction
	DstLabel catalog.LabelID
	MinHops  int
	MaxHops  int
	Distinct bool

	// VertexPred, when set, filters emitted vertices (fused filter); the
	// traversal itself still passes through unfiltered vertices.
	VertexPred VertexPred
}

// Name implements Operator.
func (o *VarLengthExpand) Name() string { return "VarLengthExpand" }

// Execute implements Operator.
func (o *VarLengthExpand) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if in.IsFlat() {
		return o.executeFlat(ctx, in.Flat)
	}
	ft := in.FT
	parent, fromCol, err := vidColumn(ft, o.From)
	if err != nil {
		return nil, err
	}
	// Morsel-parallel traversal for large frontiers. Fused predicates are
	// forked per morsel (see VertexPred.Fork), so predicate-carrying
	// var-expands take the parallel path too.
	if ctx.Parallel > 1 && parent.Block.NumRows() >= parallelMinRows {
		toCol, index := parallelTraverse(ctx, o, parent, fromCol)
		ft.AddChild(parent, ctx.NewFBlock(toCol), index)
		assertFTree(ft)
		return ctx.FTChunk(ft), nil
	}
	toCol := ctx.Arena.OwnColumn(o.To, vector.KindVID)
	index := ctx.Arena.OwnRanges(parent.Block.NumRows())
	total := 0
	for i := 0; i < parent.Block.NumRows(); i++ {
		start := total
		if parent.Valid(i) {
			o.traverse(ctx, o.VertexPred, fromCol.VIDAt(i), func(v vector.VID) {
				toCol.AppendVID(v)
				total++
			})
		}
		index[i] = core.Range{Start: int32(start), End: int32(total)}
	}
	ft.AddChild(parent, ctx.NewFBlock(toCol), index)
	assertFTree(ft)
	return ctx.FTChunk(ft), nil
}

func (o *VarLengthExpand) executeFlat(ctx *Ctx, in *core.FlatBlock) (*core.Chunk, error) {
	fromIdx := in.ColIndex(o.From)
	if fromIdx < 0 {
		return nil, errNoColumn("var-expand", o.From)
	}
	names := append(append([]string(nil), in.Names...), o.To)
	kinds := append(append([]vector.Kind(nil), in.Kinds...), vector.KindVID)
	out := core.NewFlatBlock(names, kinds)
	for _, row := range in.Rows {
		o.traverse(ctx, o.VertexPred, row[fromIdx].AsVID(), func(v vector.VID) {
			nr := make([]vector.Value, 0, len(names))
			nr = append(nr, row...)
			nr = append(nr, vector.VIDValue(v))
			out.AppendOwned(nr)
		})
	}
	return ctx.FlatChunk(out), nil
}

// traverse runs the bounded BFS (distinct) or DFS path walk (non-distinct)
// from src, emitting qualifying vertices. pred is the (possibly forked)
// vertex predicate instance to apply; parallel morsels each pass their own
// fork so no predicate state is shared across workers.
func (o *VarLengthExpand) traverse(ctx *Ctx, pred VertexPred, src vector.VID, emit func(vector.VID)) {
	maybeEmit := func(v vector.VID) {
		if pred == nil || pred.Test(ctx, v) {
			emit(v)
		}
	}
	if o.Distinct {
		seen := map[vector.VID]int{src: 0}
		// Frontier buffers and the per-level batch are transient scratch,
		// returned to the pool when the BFS finishes (values are copied into
		// the emit sink, never retained).
		frontier := append(ctx.Arena.GetVIDs(8), src)
		var segBuf []storage.Segment
		b := ctx.Arena.GetBatch()
		visit := func(v vector.VID, depth int, next []vector.VID) []vector.VID {
			if _, ok := seen[v]; ok {
				return next
			}
			seen[v] = depth
			next = append(next, v)
			if depth >= o.MinHops {
				maybeEmit(v)
			}
			return next
		}
		for depth := 1; depth <= o.MaxHops && len(frontier) > 0; depth++ {
			next := ctx.Arena.GetVIDs(len(frontier))
			if !ctx.NoCSR {
				// One batched call per BFS level: run i holds frontier[i]'s
				// neighbors in the same order the scalar loop sees them.
				ctx.View.NeighborsBatch(frontier, o.Et, o.Dir, o.DstLabel, false, b)
				for i := range b.Runs {
					r := b.Runs[i]
					for _, v := range b.VIDs[r.Start:r.End] {
						next = visit(v, depth, next)
					}
				}
				ctx.Arena.PutVIDs(frontier)
				frontier = next
				continue
			}
			for _, u := range frontier {
				//geslint:scalar-ok
				segBuf = ctx.View.Neighbors(segBuf[:0], u, o.Et, o.Dir, o.DstLabel, false)
				for _, seg := range segBuf {
					for _, v := range seg.VIDs {
						next = visit(v, depth, next)
					}
				}
			}
			ctx.Arena.PutVIDs(frontier)
			frontier = next
		}
		ctx.Arena.PutVIDs(frontier)
		ctx.Arena.PutBatch(b)
		return
	}
	// Path semantics: depth-first enumeration of all paths up to MaxHops
	// without revisiting a vertex on the current path (Cypher trail
	// semantics for relationships approximated at vertex granularity).
	onPath := map[vector.VID]bool{src: true}
	var dfs func(u vector.VID, depth int)
	var segBuf []storage.Segment
	dfs = func(u vector.VID, depth int) {
		if depth == o.MaxHops {
			return
		}
		// Path enumeration recurses per vertex; a one-src "batch" would only
		// add overhead, so the scalar lookup is deliberate.
		//geslint:scalar-ok
		segBuf = ctx.View.Neighbors(segBuf[:0], u, o.Et, o.Dir, o.DstLabel, false)
		// Copy: recursion below reuses segBuf.
		var level []vector.VID
		for _, seg := range segBuf {
			level = append(level, seg.VIDs...)
		}
		for _, v := range level {
			if onPath[v] {
				continue
			}
			if depth+1 >= o.MinHops {
				maybeEmit(v)
			}
			onPath[v] = true
			dfs(v, depth+1)
			delete(onPath, v)
		}
	}
	dfs(src, 0)
}

// Traverse exposes the bounded traversal for alternative executors (the
// volcano comparison engine interprets the same plan structs).
func (o *VarLengthExpand) Traverse(ctx *Ctx, src vector.VID, emit func(vector.VID)) {
	o.traverse(ctx, o.VertexPred, src, emit)
}
