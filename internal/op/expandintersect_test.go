package op_test

import (
	"fmt"
	"reflect"
	"testing"

	"ges/internal/catalog"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/testgraph"
	"ges/internal/txn"
	"ges/internal/vector"
	"ges/internal/volcano"
)

// cyclicFixture is the triangle fixture plus extra symmetric KNOWS edges so
// diamonds, 4-cycles, and 4-cliques all have matches: the clique {1,2,4,5}
// plus spokes 0-1 and 3-4.
func cyclicFixture(t *testing.T) *testgraph.Fixture {
	t.Helper()
	f := triangleFixture(t)
	s := f.Schema
	for _, e := range [][2]int{{1, 4}, {1, 5}, {2, 4}, {2, 5}, {0, 1}, {3, 4}} {
		a, b := f.Persons[e[0]], f.Persons[e[1]]
		if err := f.Graph.AddEdge(s.Knows, a, b, vector.Date(21100)); err != nil {
			t.Fatal(err)
		}
		if err := f.Graph.AddEdge(s.Knows, b, a, vector.Date(21100)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// knowsAdj / knowsHas are scalar reference walks over KNOWS.
func knowsAdj(f *testgraph.Fixture, v vector.VID) []vector.VID {
	s := f.Schema
	var out []vector.VID
	for _, seg := range f.Graph.Neighbors(nil, v, s.Knows, catalog.Out, s.Person, false) {
		out = append(out, seg.VIDs...)
	}
	return out
}

func knowsHas(f *testgraph.Fixture, v, w vector.VID) bool {
	for _, x := range knowsAdj(f, v) {
		if x == w {
			return true
		}
	}
	return false
}

// wcojTrianglePlan lists directed triangles a→b→c→a through one
// ExpandIntersect: c is the intersection of b's out- and a's in-adjacency.
func wcojTrianglePlan(s *testgraph.Schema) plan.Plan {
	return plan.Plan{
		&op.NodeScan{Var: "a", Label: s.Person},
		&op.Expand{From: "a", To: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.ExpandIntersect{To: "c", Sides: []op.IntersectSide{
			{Var: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
			{Var: "a", Et: s.Knows, Dir: catalog.In, DstLabel: s.Person, SrcLabel: s.Person},
		}},
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "a", As: "a.id", ExtID: true},
			{Var: "b", As: "b.id", ExtID: true},
			{Var: "c", As: "c.id", ExtID: true},
		}},
		&op.Defactor{Cols: []string{"a.id", "b.id", "c.id"}},
	}
}

// diamondPlans returns the WCOJ diamond plan (a→b, b→d, then c as the
// intersection of a's out- and d's in-adjacency) and the classical reference
// plan the binder would emit without lowering — Expand a→c on a sibling
// branch, then an ExpandInto that must de-factor into the flat hash join.
func diamondPlans(s *testgraph.Schema) (wcoj, flat plan.Plan) {
	tail := plan.Plan{
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "a", As: "a.id", ExtID: true},
			{Var: "b", As: "b.id", ExtID: true},
			{Var: "c", As: "c.id", ExtID: true},
			{Var: "d", As: "d.id", ExtID: true},
		}},
		&op.Defactor{Cols: []string{"a.id", "b.id", "c.id", "d.id"}},
	}
	head := plan.Plan{
		&op.NodeScan{Var: "a", Label: s.Person},
		&op.Expand{From: "a", To: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.Expand{From: "b", To: "d", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
	}
	wcoj = append(append(plan.Plan{}, head...), &op.ExpandIntersect{To: "c", Sides: []op.IntersectSide{
		{Var: "a", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
		{Var: "d", Et: s.Knows, Dir: catalog.In, DstLabel: s.Person, SrcLabel: s.Person},
	}})
	wcoj = append(wcoj, tail...)
	flat = append(append(plan.Plan{}, head...),
		&op.Expand{From: "a", To: "c", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
		&op.ExpandInto{From: "c", To: "d", Et: s.Knows, Dir: catalog.Out,
			DstLabel: s.Person, SrcLabel: s.Person})
	flat = append(flat, tail...)
	return wcoj, flat
}

// bruteDiamonds enumerates (a,b,c,d) with a→b→d, a→c→d, by scalar walks.
func bruteDiamonds(f *testgraph.Fixture) []string {
	g := f.Graph
	var rows []string
	for _, a := range f.Persons {
		for _, b := range knowsAdj(f, a) {
			for _, d := range knowsAdj(f, b) {
				for _, c := range knowsAdj(f, a) {
					if knowsHas(f, c, d) {
						rows = append(rows, fmt.Sprintf("%d|%d|%d|%d|",
							g.ExtID(a), g.ExtID(b), g.ExtID(c), g.ExtID(d)))
					}
				}
			}
		}
	}
	return sortedCopy(rows)
}

// sweepKnobs runs the plan across modes × workers × every ablation knob and
// checks all results equal want (order-insensitive); it also runs the
// volcano engine for parity.
func sweepKnobs(t *testing.T, view storage.View, build func() plan.Plan, want []string, label string) {
	t.Helper()
	for _, mode := range modes {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, noCSR := range []bool{false, true} {
				for _, noIntersect := range []bool{false, true} {
					for _, noWCOJ := range []bool{false, true} {
						e := exec.New(mode)
						e.Parallel = workers
						e.NoCSR, e.NoIntersect, e.NoWCOJ = noCSR, noIntersect, noWCOJ
						res, err := e.Run(view, build())
						if err != nil {
							t.Fatalf("%s %s w=%d nocsr=%v noint=%v nowcoj=%v: %v",
								label, mode, workers, noCSR, noIntersect, noWCOJ, err)
						}
						if got := rowsAsStrings(res.Block); !reflect.DeepEqual(got, want) {
							t.Fatalf("%s %s w=%d nocsr=%v noint=%v nowcoj=%v:\n got %v\nwant %v",
								label, mode, workers, noCSR, noIntersect, noWCOJ, got, want)
						}
					}
				}
			}
		}
	}
	res, err := volcano.New().Run(view, build())
	if err != nil {
		t.Fatalf("%s volcano: %v", label, err)
	}
	if got := rowsAsStrings(res.Block); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s volcano disagrees:\n got %v\nwant %v", label, got, want)
	}
}

// TestExpandIntersectTriangle checks the 2-way intersection against brute
// force, sealed and unsealed, across every mode × worker × knob combination.
func TestExpandIntersectTriangle(t *testing.T) {
	for _, sealed := range []bool{false, true} {
		f := cyclicFixture(t)
		if sealed {
			f.Graph.CompactAdjacency()
			f.Graph.SealCSR()
		}
		want := bruteTriangles(f)
		if len(want) == 0 {
			t.Fatal("fixture has no triangles; test is vacuous")
		}
		sweepKnobs(t, f.Graph, func() plan.Plan { return wcojTrianglePlan(f.Schema) },
			want, fmt.Sprintf("sealed=%v", sealed))
	}
}

// TestExpandIntersectDiamond checks the diamond against brute force and
// against the explicit flat-hash-join reference plan.
func TestExpandIntersectDiamond(t *testing.T) {
	for _, sealed := range []bool{false, true} {
		f := cyclicFixture(t)
		if sealed {
			f.Graph.CompactAdjacency()
			f.Graph.SealCSR()
		}
		want := bruteDiamonds(f)
		if len(want) == 0 {
			t.Fatal("fixture has no diamonds; test is vacuous")
		}
		wcoj, flat := diamondPlans(f.Schema)
		sweepKnobs(t, f.Graph, func() plan.Plan { return wcoj },
			want, fmt.Sprintf("wcoj sealed=%v", sealed))
		// The hand-built classical chain (sibling Expand + de-factoring
		// ExpandInto) must produce the same multiset.
		for _, mode := range modes {
			fb := run(t, f, mode, flat)
			if got := rowsAsStrings(fb); !reflect.DeepEqual(got, want) {
				t.Fatalf("flat reference %s sealed=%v:\n got %v\nwant %v", mode, sealed, got, want)
			}
		}
	}
}

// TestExpandIntersectThreeWay lists 4-cliques a→b, {c,d} via 2-way then
// 3-way intersections — the k>2 leapfrog path.
func TestExpandIntersectThreeWay(t *testing.T) {
	f := cyclicFixture(t)
	f.Graph.CompactAdjacency()
	f.Graph.SealCSR()
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "a", Label: s.Person},
			&op.Expand{From: "a", To: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ExpandIntersect{To: "c", Sides: []op.IntersectSide{
				{Var: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
				{Var: "a", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
			}},
			&op.ExpandIntersect{To: "d", Sides: []op.IntersectSide{
				{Var: "c", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
				{Var: "a", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
				{Var: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
			}},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "a", As: "a.id", ExtID: true},
				{Var: "b", As: "b.id", ExtID: true},
				{Var: "c", As: "c.id", ExtID: true},
				{Var: "d", As: "d.id", ExtID: true},
			}},
			&op.Defactor{Cols: []string{"a.id", "b.id", "c.id", "d.id"}},
		}
	}
	g := f.Graph
	var want []string
	for _, a := range f.Persons {
		for _, b := range knowsAdj(f, a) {
			for _, c := range knowsAdj(f, b) {
				if !knowsHas(f, a, c) {
					continue
				}
				for _, d := range knowsAdj(f, c) {
					if knowsHas(f, a, d) && knowsHas(f, b, d) {
						want = append(want, fmt.Sprintf("%d|%d|%d|%d|",
							g.ExtID(a), g.ExtID(b), g.ExtID(c), g.ExtID(d)))
					}
				}
			}
		}
	}
	want = sortedCopy(want)
	if len(want) == 0 {
		t.Fatal("fixture has no 4-cliques; test is vacuous")
	}
	sweepKnobs(t, f.Graph, build, want, "clique")
}

// TestExpandIntersectSiblingFallback binds both sides on sibling branches,
// where no single node owns all side vertices and the operator must
// de-factor and intersect flat.
func TestExpandIntersectSiblingFallback(t *testing.T) {
	f := cyclicFixture(t)
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "a", Label: s.Person},
			&op.Expand{From: "a", To: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.Expand{From: "a", To: "c", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ExpandIntersect{To: "d", Sides: []op.IntersectSide{
				{Var: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
				{Var: "c", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
			}},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "a", As: "a.id", ExtID: true},
				{Var: "b", As: "b.id", ExtID: true},
				{Var: "c", As: "c.id", ExtID: true},
				{Var: "d", As: "d.id", ExtID: true},
			}},
			&op.Defactor{Cols: []string{"a.id", "b.id", "c.id", "d.id"}},
		}
	}
	g := f.Graph
	var want []string
	for _, a := range f.Persons {
		for _, b := range knowsAdj(f, a) {
			for _, c := range knowsAdj(f, a) {
				for _, d := range knowsAdj(f, b) {
					if knowsHas(f, c, d) {
						want = append(want, fmt.Sprintf("%d|%d|%d|%d|",
							g.ExtID(a), g.ExtID(b), g.ExtID(c), g.ExtID(d)))
					}
				}
			}
		}
	}
	want = sortedCopy(want)
	if len(want) == 0 {
		t.Fatal("no sibling matches; test is vacuous")
	}
	sweepKnobs(t, f.Graph, build, want, "sibling")
}

// TestExpandIntersectAnyLabel intersects LIKES adjacencies fanning out to
// AnyLabel (Post ∪ Comment) — a multi-family lookup whose batches are never
// Sorted, forcing the hash fallback even on a sealed graph.
func TestExpandIntersectAnyLabel(t *testing.T) {
	f := cyclicFixture(t)
	s := f.Schema
	// Shared likes: persons 1 and 2 both like post 1 and comment 0.
	for _, e := range []struct {
		p int
		m vector.VID
	}{{1, f.Posts[1]}, {2, f.Posts[1]}, {1, f.Comments[0]}, {2, f.Comments[0]}, {4, f.Posts[2]}} {
		if err := f.Graph.AddEdge(s.Likes, f.Persons[e.p], e.m, vector.Date(21200)); err != nil {
			t.Fatal(err)
		}
	}
	f.Graph.CompactAdjacency()
	f.Graph.SealCSR()
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "a", Label: s.Person},
			&op.Expand{From: "a", To: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ExpandIntersect{To: "m", Sides: []op.IntersectSide{
				{Var: "a", Et: s.Likes, Dir: catalog.Out, DstLabel: storage.AnyLabel, SrcLabel: s.Person},
				{Var: "b", Et: s.Likes, Dir: catalog.Out, DstLabel: storage.AnyLabel, SrcLabel: s.Person},
			}},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "a", As: "a.id", ExtID: true},
				{Var: "b", As: "b.id", ExtID: true},
				{Var: "m", As: "m.id", ExtID: true},
			}},
			&op.Defactor{Cols: []string{"a.id", "b.id", "m.id"}},
		}
	}
	g := f.Graph
	likesAdj := func(v vector.VID) []vector.VID {
		var out []vector.VID
		for _, seg := range g.Neighbors(nil, v, s.Likes, catalog.Out, storage.AnyLabel, false) {
			out = append(out, seg.VIDs...)
		}
		return out
	}
	var want []string
	for _, a := range f.Persons {
		for _, b := range knowsAdj(f, a) {
			for _, m := range likesAdj(a) {
				for _, bm := range likesAdj(b) {
					if bm == m {
						want = append(want, fmt.Sprintf("%d|%d|%d|", g.ExtID(a), g.ExtID(b), g.ExtID(m)))
						break
					}
				}
			}
		}
	}
	want = sortedCopy(want)
	if len(want) == 0 {
		t.Fatal("no shared likes; test is vacuous")
	}
	sweepKnobs(t, f.Graph, build, want, "anylabel")
}

// TestExpandIntersectOverlay runs the triangle intersection through a
// transaction snapshot whose committed overlay adds new closing edges —
// overlay segments are unsorted, so sealed-CSR runs and overlay runs mix in
// one query and every path must still agree.
func TestExpandIntersectOverlay(t *testing.T) {
	f := cyclicFixture(t)
	s := f.Schema
	f.Graph.CompactAdjacency()
	f.Graph.SealCSR()
	m := txn.NewManager(f.Graph)
	tx := m.Begin([]vector.VID{f.Persons[6], f.Persons[7], f.Persons[8]})
	// A brand-new triangle 6→7→8→6, symmetric, entirely in the overlay.
	for _, e := range [][2]int{{6, 7}, {7, 8}, {8, 6}} {
		a, b := f.Persons[e[0]], f.Persons[e[1]]
		if err := tx.AddEdge(s.Knows, a, b, vector.Date(21300)); err != nil {
			t.Fatal(err)
		}
		if err := tx.AddEdge(s.Knows, b, a, vector.Date(21300)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	// Brute force through the snapshot view.
	adj := func(v vector.VID) []vector.VID {
		var out []vector.VID
		for _, seg := range snap.Neighbors(nil, v, s.Knows, catalog.Out, s.Person, false) {
			out = append(out, seg.VIDs...)
		}
		return out
	}
	has := func(v, w vector.VID) bool {
		for _, x := range adj(v) {
			if x == w {
				return true
			}
		}
		return false
	}
	var want []string
	for _, a := range f.Persons {
		for _, b := range adj(a) {
			for _, c := range adj(b) {
				if has(c, a) {
					want = append(want, fmt.Sprintf("%d|%d|%d|",
						f.Graph.ExtID(a), f.Graph.ExtID(b), f.Graph.ExtID(c)))
				}
			}
		}
	}
	want = sortedCopy(want)
	base := bruteTriangles(f)
	if len(want) <= len(base) {
		t.Fatal("overlay added no triangles; test is vacuous")
	}
	sweepKnobs(t, snap, func() plan.Plan { return wcojTrianglePlan(s) }, want, "overlay")
}

// TestExpandIntersectZeroRows feeds the operator a 0-row block (a seek of a
// nonexistent id): every path must return zero rows without error.
func TestExpandIntersectZeroRows(t *testing.T) {
	f := cyclicFixture(t)
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "a", Label: s.Person, ExtID: 999999},
			&op.Expand{From: "a", To: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ExpandIntersect{To: "c", Sides: []op.IntersectSide{
				{Var: "b", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
				{Var: "a", Et: s.Knows, Dir: catalog.In, DstLabel: s.Person, SrcLabel: s.Person},
			}},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "c", As: "c.id", ExtID: true}}},
			&op.Defactor{Cols: []string{"c.id"}},
		}
	}
	sweepKnobs(t, f.Graph, build, []string{}, "zero-rows")
}

// TestExpandIntersectEmptyIntersection uses a pattern with candidates but no
// survivors: the fresh fixture has no symmetric closures beyond what
// triangles need, so intersecting against an untouched person's adjacency is
// empty.
func TestExpandIntersectEmptyIntersection(t *testing.T) {
	f := testgraph.New() // base fixture: no triangles at all
	s := f.Schema
	fb := run(t, f, exec.ModeFactorized, wcojTrianglePlan(s))
	if fb.NumRows() != 0 {
		t.Fatalf("base fixture has no triangles, got %d rows", fb.NumRows())
	}
}

// TestExpandIntersectTooFewSides pins the arity validation.
func TestExpandIntersectTooFewSides(t *testing.T) {
	f := cyclicFixture(t)
	s := f.Schema
	p := plan.Plan{
		&op.NodeScan{Var: "a", Label: s.Person},
		&op.ExpandIntersect{To: "c", Sides: []op.IntersectSide{
			{Var: "a", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person, SrcLabel: s.Person},
		}},
	}
	if _, err := exec.New(exec.ModeFactorized).Run(f.Graph, p); err == nil {
		t.Fatal("single-side ExpandIntersect did not error")
	}
}

// TestExpandIntersectParallelDeterministic intersects over the LDBC knows
// graph — large enough to cross the morsel threshold — and checks results
// are identical across worker counts and every ablation knob.
func TestExpandIntersectParallelDeterministic(t *testing.T) {
	ds, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.H
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "a", Label: h.Person},
			&op.Expand{From: "a", To: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.Expand{From: "b", To: "d", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.ExpandIntersect{To: "c", Sides: []op.IntersectSide{
				{Var: "a", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, SrcLabel: h.Person},
				{Var: "d", Et: h.Knows, Dir: catalog.In, DstLabel: h.Person, SrcLabel: h.Person},
			}},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "c", As: "c.id", ExtID: true}}},
			&op.Aggregate{Aggs: []op.AggSpec{
				{Func: op.Count, As: "n"},
				{Func: op.Sum, Arg: "c.id", As: "sum"},
			}},
		}
	}
	var want []string
	for _, workers := range []int{1, 2, 4, 8} {
		for _, noCSR := range []bool{false, true} {
			for _, noIntersect := range []bool{false, true} {
				for _, noWCOJ := range []bool{false, true} {
					eng := exec.New(exec.ModeFactorized)
					eng.Parallel = workers
					eng.NoCSR, eng.NoIntersect, eng.NoWCOJ = noCSR, noIntersect, noWCOJ
					res, err := eng.Run(ds.Graph, build())
					if err != nil {
						t.Fatalf("workers=%d nocsr=%v noint=%v nowcoj=%v: %v",
							workers, noCSR, noIntersect, noWCOJ, err)
					}
					got := rowsAsStrings(res.Block)
					if want == nil {
						want = got
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("workers=%d nocsr=%v noint=%v nowcoj=%v diverges: %v vs %v",
							workers, noCSR, noIntersect, noWCOJ, got, want)
					}
				}
			}
		}
	}
	if want[0] == "0|0|" {
		t.Fatal("LDBC diamond count is zero; test is vacuous")
	}
}
