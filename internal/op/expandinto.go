// ExpandInto closes cyclic pattern edges by filtering selection vectors in
// place; geslint R3 sanctions this file's Sel writes by name (see
// cmd/geslint/rules.go) rather than through a blanket file directive.
package op

import (
	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/sched"
	"ges/internal/storage"
	"ges/internal/vector"
)

// ExpandInto closes a cyclic pattern edge between two variables that are
// both already bound in the f-Tree — the triangle-closing step of
// (a)-[]->(b)-[]->(c), (c)-[]->(a). Instead of expanding to a new node and
// hash-joining it back against the bound variable (the classical plan), it
// checks edge existence directly against the adjacency index and clears the
// selection bits of tuples whose closing edge is missing — a semi-join, so
// no new f-Tree node and no intermediate materialization.
//
// When the adjacency run is CSR-sorted the membership probes run as a
// merge/galloping intersection with a monotone cursor; otherwise (or with
// ctx.NoIntersect) a per-source hash set answers the probes. Results are
// byte-identical either way.
//
// The probe side is chosen from the tree shape: candidates iterate on the
// deeper of the two nodes, and the adjacency of the shallower node's vertex
// is loaded once per owner row. When the shallow side is To, the probe runs
// over the reversed direction, so SrcLabel (the label bound to From) names
// the destination-label family of the reversed lookup.
type ExpandInto struct {
	From, To string
	Et       catalog.EdgeTypeID
	Dir      catalog.Direction
	// DstLabel is the label bound to To; SrcLabel the label bound to From.
	// Either may be storage.AnyLabel.
	DstLabel catalog.LabelID
	SrcLabel catalog.LabelID
}

// Name implements Operator.
func (o *ExpandInto) Name() string { return "ExpandInto" }

// Execute implements Operator.
func (o *ExpandInto) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if in.IsFlat() {
		return o.executeFlat(ctx, in.Flat)
	}
	ft := in.FT
	nf, fromCol, err := vidColumn(ft, o.From)
	if err != nil {
		return nil, err
	}
	nt, toCol, err := vidColumn(ft, o.To)
	if err != nil {
		return nil, err
	}

	// Pick the deep (candidate) and shallow (probe) sides. Every tuple pairs
	// a deep row with exactly one shallow row — its ancestor along the index
	// vectors — so the edge check is a per-row predicate on the deep node.
	var deep, shallow *core.Node
	var deepCol, shallowCol *vector.Column
	probe := adjProbe{ctx: ctx, et: o.Et, intersect: !ctx.NoIntersect}
	switch {
	case ancestorOf(nt, nf): // covers nf == nt: probe From's adjacency
		deep, deepCol = nf, fromCol
		shallow, shallowCol = nt, toCol
		probe.dir, probe.dstLabel = reverseDir(o.Dir), o.SrcLabel
	case ancestorOf(nf, nt):
		deep, deepCol = nt, toCol
		shallow, shallowCol = nf, fromCol
		probe.dir, probe.dstLabel = o.Dir, o.DstLabel
	default:
		// Siblings: neither row determines the other, so the semi-join is
		// not expressible as a selection on one node — de-factor and filter
		// flat (the paper's "ultimate solution" fallback).
		fb, err := ensureFlat(ctx, in)
		if err != nil {
			return nil, err
		}
		return o.executeFlat(ctx, fb)
	}
	if nf == nt {
		// Both variables on one node: row i pairs fromCol[i] with toCol[i].
		shallowCol = fromCol
		deepCol = toCol
		probe.dir, probe.dstLabel = o.Dir, o.DstLabel
	}
	owner := ownerMap(deep, shallow)

	n := deep.Block.NumRows()
	apply := func(lo, hi int, p *adjProbe) {
		for i := lo; i < hi; i++ {
			if !deep.Sel.Get(i) {
				continue
			}
			p.load(shallowCol.VIDAt(int(owner[i])))
			if !p.contains(deepCol.VIDAt(i)) {
				deep.Sel.Clear(i)
			}
		}
	}
	if ctx.Parallel > 1 && n >= parallelMinRows {
		// filterMorselSize is a multiple of 64, so concurrent morsels never
		// write the same selection word; each morsel owns its probe state.
		ctx.RunMorsels(n, filterMorselSize, func(m sched.Morsel) {
			p := adjProbe{ctx: ctx, et: probe.et, dir: probe.dir, dstLabel: probe.dstLabel, intersect: probe.intersect}
			apply(m.Start, m.End, &p)
		})
	} else {
		apply(0, n, &probe)
	}
	ft.PruneUp(deep)
	assertFTree(ft)
	return ctx.FTChunk(ft), nil
}

// executeFlat filters materialized rows by closing-edge existence.
func (o *ExpandInto) executeFlat(ctx *Ctx, in *core.FlatBlock) (*core.Chunk, error) {
	fi := in.ColIndex(o.From)
	if fi < 0 {
		return nil, errNoColumn("expand-into", o.From)
	}
	ti := in.ColIndex(o.To)
	if ti < 0 {
		return nil, errNoColumn("expand-into", o.To)
	}
	out := core.NewFlatBlock(in.Names, in.Kinds)
	p := adjProbe{ctx: ctx, et: o.Et, dir: o.Dir, dstLabel: o.DstLabel, intersect: !ctx.NoIntersect}
	for _, row := range in.Rows {
		p.load(row[fi].AsVID())
		if p.contains(row[ti].AsVID()) {
			out.AppendOwned(row)
		}
	}
	return ctx.FlatChunk(out), nil
}

// ancestorOf reports whether a is d or an ancestor of d.
func ancestorOf(a, d *core.Node) bool {
	for n := d; n != nil; n = n.Parent {
		if n == a {
			return true
		}
	}
	return false
}

// reverseDir flips Out and In; Both stays Both.
func reverseDir(d catalog.Direction) catalog.Direction {
	switch d {
	case catalog.Out:
		return catalog.In
	case catalog.In:
		return catalog.Out
	default:
		return d
	}
}

// ownerMap returns, for every deep-node row, the shallow-node (ancestor) row
// it extends, composed by inverting the index vectors along the parent
// chain. deep == shallow yields the identity.
func ownerMap(deep, shallow *core.Node) []int32 {
	owner := make([]int32, deep.Block.NumRows())
	for i := range owner {
		owner[i] = int32(i)
	}
	for n := deep; n != shallow; n = n.Parent {
		inv := make([]int32, n.Block.NumRows())
		for pi, rg := range n.Index {
			for j := rg.Start; j < rg.End; j++ {
				inv[j] = int32(pi)
			}
		}
		for d, r := range owner {
			owner[d] = inv[r]
		}
	}
	return owner
}

// adjProbe answers edge-membership queries against one source vertex's
// adjacency, caching the loaded run across consecutive probes of the same
// source (owner rows repeat along the deep node). Sorted single-family runs
// answer through a galloping search with a monotone cursor — consecutive
// candidates from a CSR-sorted child run advance the cursor instead of
// restarting, so a whole run intersects in a single merge pass. Unsorted
// runs, multi-family lookups, and ctx.NoIntersect fall back to a hash set.
type adjProbe struct {
	ctx       *Ctx
	et        catalog.EdgeTypeID
	dir       catalog.Direction
	dstLabel  catalog.LabelID
	intersect bool

	src    vector.VID
	loaded bool
	segs   []storage.Segment
	sorted bool // true: cur answers probes over the single sorted run
	cur    vector.RunCursor
	set    map[vector.VID]struct{}
}

// load points the probe at src's adjacency (no-op when already loaded).
func (p *adjProbe) load(src vector.VID) {
	if p.loaded && src == p.src {
		return
	}
	p.src, p.loaded = src, true
	p.sorted, p.set = false, nil
	p.segs = p.segs[:0]
	if src == vector.NilVID {
		return
	}
	// One run per owner row, reused across all its deep rows; batching
	// whole-column lookups would load runs for owners that pruning already
	// skipped.
	//geslint:scalar-ok
	p.segs = p.ctx.View.Neighbors(p.segs, src, p.et, p.dir, p.dstLabel, false)
	if p.intersect && len(p.segs) == 1 && p.segs[0].Sorted {
		p.sorted = true
		p.cur.Reset(p.segs[0].VIDs)
		return
	}
	n := 0
	for _, s := range p.segs {
		n += len(s.VIDs)
	}
	if n == 0 {
		return
	}
	p.set = make(map[vector.VID]struct{}, n)
	for _, s := range p.segs {
		for _, v := range s.VIDs {
			p.set[v] = struct{}{}
		}
	}
}

// contains reports whether v is in the loaded adjacency.
func (p *adjProbe) contains(v vector.VID) bool {
	if p.sorted {
		return p.cur.Contains(v)
	}
	_, ok := p.set[v]
	return ok
}
