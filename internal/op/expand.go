package op

import (
	"fmt"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/storage"
	"ges/internal/vector"
)

// EdgeProj projects one edge property onto the expansion output.
type EdgeProj struct {
	Prop string // edge-property name in the edge type's schema
	As   string // output column name
}

// Expand is the paper's dominant operator (§3.1, §4.3): it extends the
// vertices bound to From along one edge type to their neighbors, bound to
// To.
//
// On the factorized path each execution adds exactly one f-Tree node under
// From's node: neighbor IDs land in a new f-Block and the per-parent row
// ranges form the index vector of the new edge. When no edge properties or
// fused predicates are requested, the neighbor column stays *lazy* — it
// records (pointer,length) references into the storage adjacency array, the
// pointer-based join of §5.
//
// VertexPred / EdgePropPred implement the FilterPushDown (ExpandFilter)
// fusion: predicates are applied while expanding so rejected neighbors are
// never materialized at all.
type Expand struct {
	From, To string
	Et       catalog.EdgeTypeID
	Dir      catalog.Direction
	DstLabel catalog.LabelID

	EdgeProps []EdgeProj

	// VertexPred filters candidate neighbors by their own vertex data.
	VertexPred VertexPred
	// EdgePropPred filters candidates by the projected edge-property values
	// (ordered per EdgeProps).
	EdgePropPred func(props []vector.Value) bool

	// NoLazy disables the pointer-based join (lazy neighbor segments) and
	// forces materialized neighbor IDs — the ablation knob for §5's
	// pointer-based-join claim.
	NoLazy bool
}

// Name implements Operator.
func (o *Expand) Name() string {
	if o.VertexPred != nil || o.EdgePropPred != nil {
		return "Expand(fused-filter)"
	}
	return "Expand"
}

// edgePropPlan resolves the requested edge properties against the catalog.
type edgePropPlan struct {
	idx  []int // position in the edge type's property schema
	kind []vector.Kind
}

func (o *Expand) resolveEdgeProps(cat *catalog.Catalog) (edgePropPlan, error) {
	var p edgePropPlan
	for _, ep := range o.EdgeProps {
		pid, kind, ok := cat.EdgePropIndex(o.Et, ep.Prop)
		if !ok {
			return p, fmt.Errorf("op: edge type %s has no property %q", cat.EdgeTypeName(o.Et), ep.Prop)
		}
		p.idx = append(p.idx, int(pid))
		p.kind = append(p.kind, kind)
	}
	return p, nil
}

// Execute implements Operator.
func (o *Expand) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	epp, err := o.resolveEdgeProps(ctx.View.Catalog())
	if err != nil {
		return nil, err
	}
	if in.IsFlat() {
		return o.executeFlat(ctx, in.Flat, epp)
	}
	return o.executeFactorized(ctx, in.FT, epp)
}

func (o *Expand) executeFactorized(ctx *Ctx, ft *core.FTree, epp edgePropPlan) (*core.Chunk, error) {
	parent, fromCol, err := vidColumn(ft, o.From)
	if err != nil {
		return nil, err
	}
	lazyOK := !o.NoLazy && len(o.EdgeProps) == 0 && o.VertexPred == nil && o.EdgePropPred == nil

	// The index vector lands in the new f-Tree node, so it is query-lifetime
	// arena memory, released wholesale when the engine ends the query.
	index := ctx.Arena.OwnRanges(parent.Block.NumRows())
	var segBuf []storage.Segment

	if lazyOK {
		if ctx.Parallel > 1 && parent.Block.NumRows() >= parallelMinRows {
			toCol, pidx := parallelLazyExpand(ctx, o.To, parent, fromCol, o.Et, o.Dir, o.DstLabel)
			ft.AddChild(parent, ctx.NewFBlock(toCol), pidx)
			assertFTree(ft)
			return ctx.FTChunk(ft), nil
		}
		toCol := ctx.Arena.OwnLazyVIDColumn(o.To)
		if !ctx.NoCSR {
			// Batched kernel: one NeighborsBatch call resolves every parent
			// row (prefix-sum lookups on a sealed CSR, no per-row family
			// map probes); each non-empty run appends as one lazy segment.
			// The lazy column retains run sub-slices of the batch, so the
			// batch is query-lifetime (OwnBatch), not morsel scratch.
			b := ctx.Arena.OwnBatch()
			srcs := expandSrcs(parent, fromCol, 0, parent.Block.NumRows(),
				ctx.Arena.GetVIDs(parent.Block.NumRows()))
			ctx.View.NeighborsBatch(srcs, o.Et, o.Dir, o.DstLabel, false, b)
			ctx.Arena.PutVIDs(srcs)
			total := 0
			for i, r := range b.Runs {
				start := total
				if r.End > r.Start {
					_, total = toCol.AppendSegment(b.VIDs[r.Start:r.End])
				}
				index[i] = core.Range{Start: int32(start), End: int32(total)}
			}
			ft.AddChild(parent, ctx.NewFBlock(toCol), index)
			assertFTree(ft)
			return ctx.FTChunk(ft), nil
		}
		// NoCSR reference path: scalar per-source lookups, byte-identical
		// to the batched kernel.
		total := 0
		for i := 0; i < parent.Block.NumRows(); i++ {
			if !parent.Valid(i) {
				index[i] = core.Range{Start: int32(total), End: int32(total)}
				continue
			}
			src := fromCol.VIDAt(i)
			//geslint:scalar-ok
			segBuf = ctx.View.Neighbors(segBuf[:0], src, o.Et, o.Dir, o.DstLabel, false)
			start := total
			for _, seg := range segBuf {
				_, total = toCol.AppendSegment(seg.VIDs)
			}
			if len(segBuf) == 0 {
				index[i] = core.Range{Start: int32(start), End: int32(start)}
			} else {
				index[i] = core.Range{Start: int32(start), End: int32(total)}
			}
		}
		ft.AddChild(parent, ctx.NewFBlock(toCol), index)
		assertFTree(ft)
		return ctx.FTChunk(ft), nil
	}

	// Materializing path: edge properties or fused predicates requested.
	if ctx.Parallel > 1 && parent.Block.NumRows() >= parallelMinRows {
		block, pidx := parallelMaterialExpand(ctx, o, parent, fromCol, epp)
		ft.AddChild(parent, block, pidx)
		assertFTree(ft)
		return ctx.FTChunk(ft), nil
	}
	toCol := ctx.Arena.OwnColumn(o.To, vector.KindVID)
	propCols := make([]*vector.Column, len(o.EdgeProps))
	for i, ep := range o.EdgeProps {
		propCols[i] = ctx.Arena.OwnColumn(ep.As, epp.kind[i])
	}
	index = o.expandRows(ctx, o.VertexPred, parent, fromCol, epp, 0, parent.Block.NumRows(), toCol, propCols, index[:0])
	block := ctx.NewFBlock(toCol)
	for _, pc := range propCols {
		block.AddColumn(pc)
	}
	ft.AddChild(parent, block, index)
	assertFTree(ft)
	return ctx.FTChunk(ft), nil
}

// expandSrcs builds a batched neighbor request for parent rows [lo,hi) into
// buf (typically pooled VID scratch; the caller releases it after the batch
// call returns): the From VID per valid row, NilVID (an empty run) for
// invalid rows, so the returned runs stay aligned with the row range.
func expandSrcs(parent *core.Node, fromCol *vector.Column, lo, hi int, buf []vector.VID) []vector.VID {
	srcs := buf[:0]
	for i := lo; i < hi; i++ {
		if parent.Valid(i) {
			srcs = append(srcs, fromCol.VIDAt(i))
		} else {
			srcs = append(srcs, vector.NilVID)
		}
	}
	return srcs
}

// expandRows runs the materializing expansion for parent rows [lo,hi),
// appending neighbors to toCol/propCols and one range per parent row to
// index (ranges are relative to toCol's state at entry). It is the single
// implementation behind both the sequential path and each parallel morsel,
// which keeps parallel output byte-identical to sequential execution.
//
// Candidates come from one batched NeighborsBatch call per invocation (one
// prefix-sum pass on a sealed CSR); ctx.NoCSR falls back to scalar
// per-source lookups. Both paths feed identical candidate sequences to the
// predicate/property logic below.
func (o *Expand) expandRows(ctx *Ctx, pred VertexPred, parent *core.Node, fromCol *vector.Column,
	epp edgePropPlan, lo, hi int, toCol *vector.Column, propCols []*vector.Column, index []core.Range) []core.Range {

	withProps := len(o.EdgeProps) > 0
	var propVals []vector.Value
	if withProps {
		propVals = ctx.Arena.GetVals(len(o.EdgeProps))
		defer ctx.Arena.PutVals(propVals)
	}
	total := toCol.Len()

	if !ctx.NoCSR {
		// Materializing path: every value is copied out of the batch before
		// this call returns, so the batch is transient scratch.
		b := ctx.Arena.GetBatch()
		defer ctx.Arena.PutBatch(b)
		srcs := expandSrcs(parent, fromCol, lo, hi, ctx.Arena.GetVIDs(hi-lo))
		ctx.View.NeighborsBatch(srcs, o.Et, o.Dir, o.DstLabel, withProps, b)
		ctx.Arena.PutVIDs(srcs)
		for ri := range b.Runs {
			start := total
			r := b.Runs[ri]
			cands := b.VIDs[r.Start:r.End]
			// Large runs evaluate the fused predicate in one batch
			// (zone-map skip + gather + kernels, predbatch.go); the keep
			// mask is indexed by run position. Small runs and predicates
			// without a batch path test per row.
			keep := testVertexBatch(ctx, pred, cands)
			for k, v := range cands {
				if pred != nil {
					if keep != nil {
						if !keep[k] {
							continue
						}
					} else if !pred.Test(ctx, v) {
						continue
					}
				}
				for p := range o.EdgeProps {
					propVals[p] = batchPropValue(b, epp, p, int(r.Start)+k)
				}
				if o.EdgePropPred != nil && !o.EdgePropPred(propVals) {
					continue
				}
				toCol.AppendVID(v)
				for p, pc := range propCols {
					pc.Append(propVals[p])
				}
				total++
			}
			index = append(index, core.Range{Start: int32(start), End: int32(total)})
		}
		return index
	}

	var segBuf []storage.Segment
	for i := lo; i < hi; i++ {
		start := total
		if !parent.Valid(i) {
			index = append(index, core.Range{Start: int32(start), End: int32(start)})
			continue
		}
		src := fromCol.VIDAt(i)
		//geslint:scalar-ok
		segBuf = ctx.View.Neighbors(segBuf[:0], src, o.Et, o.Dir, o.DstLabel, withProps)
		for _, seg := range segBuf {
			keep := testVertexBatch(ctx, pred, seg.VIDs)
			for k, v := range seg.VIDs {
				if pred != nil {
					if keep != nil {
						if !keep[k] {
							continue
						}
					} else if !pred.Test(ctx, v) {
						continue
					}
				}
				for p := range o.EdgeProps {
					propVals[p] = segPropValue(seg, epp, p, k)
				}
				if o.EdgePropPred != nil && !o.EdgePropPred(propVals) {
					continue
				}
				toCol.AppendVID(v)
				for p, pc := range propCols {
					pc.Append(propVals[p])
				}
				total++
			}
		}
		index = append(index, core.Range{Start: int32(start), End: int32(total)})
	}
	return index
}

// segPropValue extracts edge property p (plan position) for neighbor k of a
// segment.
func segPropValue(seg storage.Segment, epp edgePropPlan, p, k int) vector.Value {
	si := epp.idx[p]
	switch epp.kind[p] {
	case vector.KindInt64:
		return vector.Int64(seg.PropI64[si][k])
	case vector.KindDate:
		return vector.Date(seg.PropI64[si][k])
	case vector.KindFloat64:
		return vector.Float64(seg.PropF64[si][k])
	case vector.KindString:
		return vector.String_(seg.PropStr[si][k])
	default:
		return vector.Value{}
	}
}

// batchPropValue extracts edge property p (plan position) for the neighbor
// at absolute batch index k.
func batchPropValue(b *storage.Batch, epp edgePropPlan, p, k int) vector.Value {
	si := epp.idx[p]
	switch epp.kind[p] {
	case vector.KindInt64:
		return vector.Int64(b.PropI64[si][k])
	case vector.KindDate:
		return vector.Date(b.PropI64[si][k])
	case vector.KindFloat64:
		return vector.Float64(b.PropF64[si][k])
	case vector.KindString:
		return vector.String_(b.PropStr[si][k])
	default:
		return vector.Value{}
	}
}

func (o *Expand) executeFlat(ctx *Ctx, in *core.FlatBlock, epp edgePropPlan) (*core.Chunk, error) {
	fromIdx := in.ColIndex(o.From)
	if fromIdx < 0 {
		return nil, errNoColumn("expand", o.From)
	}
	names := append(append([]string(nil), in.Names...), o.To)
	kinds := append(append([]vector.Kind(nil), in.Kinds...), vector.KindVID)
	for i, ep := range o.EdgeProps {
		names = append(names, ep.As)
		kinds = append(kinds, epp.kind[i])
	}
	if ctx.Parallel > 1 && len(in.Rows) >= parallelMinRows {
		fb, err := parallelFlatExpand(ctx, o, in, fromIdx, names, kinds, epp)
		if err != nil {
			return nil, err
		}
		return ctx.FlatChunk(fb), nil
	}
	out := core.NewFlatBlock(names, kinds)
	if err := o.expandFlatRows(ctx, o.VertexPred, in, fromIdx, epp, 0, len(in.Rows), names, out); err != nil {
		return nil, err
	}
	if ctx.MaxRows > 0 && out.NumRows() > ctx.MaxRows {
		return nil, errRowLimit("flat expand", out.NumRows(), ctx.MaxRows)
	}
	return ctx.FlatChunk(out), nil
}

// expandFlatRows expands input rows [lo,hi) into out — the single flat-path
// implementation behind the sequential path and each parallel morsel.
// Candidates come from one batched neighbor call per invocation; ctx.NoCSR
// falls back to scalar per-source lookups.
func (o *Expand) expandFlatRows(ctx *Ctx, pred VertexPred, in *core.FlatBlock, fromIdx int,
	epp edgePropPlan, lo, hi int, names []string, out *core.FlatBlock) error {

	withProps := len(o.EdgeProps) > 0
	var propVals []vector.Value
	if withProps {
		propVals = ctx.Arena.GetVals(len(o.EdgeProps))
		defer ctx.Arena.PutVals(propVals)
	}
	emit := func(row []vector.Value, v vector.VID) {
		// The output row escapes into the result block, so it is never
		// pooled.
		nr := make([]vector.Value, 0, len(names))
		nr = append(nr, row...)
		nr = append(nr, vector.VIDValue(v))
		nr = append(nr, propVals...)
		out.AppendOwned(nr)
	}

	if !ctx.NoCSR {
		srcs := ctx.Arena.GetVIDs(hi - lo)
		for i := lo; i < hi; i++ {
			srcs = append(srcs, in.Rows[i][fromIdx].AsVID())
		}
		b := ctx.Arena.GetBatch()
		defer ctx.Arena.PutBatch(b)
		ctx.View.NeighborsBatch(srcs, o.Et, o.Dir, o.DstLabel, withProps, b)
		ctx.Arena.PutVIDs(srcs)
		for ri := range b.Runs {
			row := in.Rows[lo+ri]
			r := b.Runs[ri]
			cands := b.VIDs[r.Start:r.End]
			keep := testVertexBatch(ctx, pred, cands)
			for k, v := range cands {
				if pred != nil {
					if keep != nil {
						if !keep[k] {
							continue
						}
					} else if !pred.Test(ctx, v) {
						continue
					}
				}
				for p := range o.EdgeProps {
					propVals[p] = batchPropValue(b, epp, p, int(r.Start)+k)
				}
				if o.EdgePropPred != nil && !o.EdgePropPred(propVals) {
					continue
				}
				emit(row, v)
			}
		}
		return nil
	}

	var segBuf []storage.Segment
	for ri := lo; ri < hi; ri++ {
		row := in.Rows[ri]
		src := row[fromIdx].AsVID()
		//geslint:scalar-ok
		segBuf = ctx.View.Neighbors(segBuf[:0], src, o.Et, o.Dir, o.DstLabel, withProps)
		for _, seg := range segBuf {
			keep := testVertexBatch(ctx, pred, seg.VIDs)
			for k, v := range seg.VIDs {
				if pred != nil {
					if keep != nil {
						if !keep[k] {
							continue
						}
					} else if !pred.Test(ctx, v) {
						continue
					}
				}
				for p := range o.EdgeProps {
					propVals[p] = segPropValue(seg, epp, p, k)
				}
				if o.EdgePropPred != nil && !o.EdgePropPred(propVals) {
					continue
				}
				emit(row, v)
			}
		}
	}
	return nil
}
