package op_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/exec"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/testgraph"
	"ges/internal/vector"
)

// randomAggTree builds a random f-Tree whose every block carries one int64
// column, mirroring the shapes Expand produces (disjoint, ordered child
// ranges).
func randomAggTree(rng *rand.Rand) *core.FTree {
	col := func(name string, rows int) *vector.Column {
		c := vector.NewColumn(name, vector.KindInt64)
		for i := 0; i < rows; i++ {
			c.AppendInt64(int64(rng.Intn(5))) // few distinct values => real groups
		}
		return c
	}
	rootRows := 1 + rng.Intn(3)
	ft := core.NewFTree(core.NewFBlock(col("c0", rootRows)))
	nodes := []*core.Node{ft.Root}
	nNodes := 2 + rng.Intn(3)
	for id := 1; id < nNodes; id++ {
		parent := nodes[rng.Intn(len(nodes))]
		pRows := parent.Block.NumRows()
		index := make([]core.Range, pRows)
		total := int32(0)
		for i := 0; i < pRows; i++ {
			span := int32(rng.Intn(4))
			index[i] = core.Range{Start: total, End: total + span}
			total += span
		}
		child := ft.AddChild(parent, core.NewFBlock(col(fmt.Sprintf("c%d", id), int(total))), index)
		nodes = append(nodes, child)
	}
	for _, n := range ft.Nodes() {
		for r := 0; r < n.Block.NumRows(); r++ {
			if rng.Intn(5) == 0 {
				n.Sel.Clear(r)
			}
		}
	}
	return ft
}

// TestWeightedAggregationMatchesFlat is the correctness property behind the
// AggregateProjectTop fusion: for random trees, the weighted single-node
// factorized aggregation must agree exactly with de-factoring followed by
// flat hash aggregation — for every aggregate function.
func TestWeightedAggregationMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 300; trial++ {
		ft := randomAggTree(rng)
		// Pick a node to aggregate on: group by its column, aggregate it too.
		nodes := ft.Nodes()
		target := nodes[rng.Intn(len(nodes))]
		colName := target.Block.Column(0).Name

		aggs := []op.AggSpec{
			{Func: op.Count, As: "cnt"},
			{Func: op.Sum, Arg: colName, As: "sum"},
			{Func: op.Min, Arg: colName, As: "min"},
			{Func: op.Max, Arg: colName, As: "max"},
			{Func: op.Avg, Arg: colName, As: "avg"},
			{Func: op.CountDistinct, Arg: colName, As: "cd"},
		}

		// Reference: full de-factor + flat hash aggregation.
		flat, err := ft.DefactorAll()
		if err != nil {
			t.Fatal(err)
		}
		want, err := op.HashAggregateBlock(flat, []string{colName}, aggs)
		if err != nil {
			t.Fatal(err)
		}

		// Fused: the weighted factorized path (single-node condition holds
		// by construction).
		fused := &op.AggregateProjectTop{GroupBy: []string{colName}, Aggs: aggs}
		got, err := fused.Execute(&op.Ctx{}, &core.Chunk{FT: ft})
		if err != nil {
			t.Fatal(err)
		}

		if !sameTable(got.Flat, want) {
			t.Fatalf("trial %d: weighted aggregation diverges\n got: %s\nwant: %s\ntree:\n%s",
				trial, got.Flat, want, ft)
		}
	}
}

// TestStreamingAggregationMatchesFlat covers the cross-node (streaming)
// fused path with group-by and argument on different nodes.
func TestStreamingAggregationMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	for trial := 0; trial < 200; trial++ {
		ft := randomAggTree(rng)
		nodes := ft.Nodes()
		if len(nodes) < 2 {
			continue
		}
		groupCol := nodes[0].Block.Column(0).Name
		argCol := nodes[len(nodes)-1].Block.Column(0).Name
		if groupCol == argCol {
			continue
		}
		aggs := []op.AggSpec{
			{Func: op.Count, As: "cnt"},
			{Func: op.Sum, Arg: argCol, As: "sum"},
		}
		flat, err := ft.DefactorAll()
		if err != nil {
			t.Fatal(err)
		}
		want, err := op.HashAggregateBlock(flat, []string{groupCol}, aggs)
		if err != nil {
			t.Fatal(err)
		}
		fused := &op.AggregateProjectTop{GroupBy: []string{groupCol}, Aggs: aggs}
		got, err := fused.Execute(&op.Ctx{}, &core.Chunk{FT: ft})
		if err != nil {
			t.Fatal(err)
		}
		if !sameTable(got.Flat, want) {
			t.Fatalf("trial %d: streaming aggregation diverges\n got: %s\nwant: %s", trial, got.Flat, want)
		}
	}
}

func sameTable(a, b *core.FlatBlock) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	return reflect.DeepEqual(rowsAsStrings(a), rowsAsStrings(b))
}

// TestSeekExpandMatchesSeekPlusExpand validates the VertexExpand fusion
// directly on the fixture, including the missing-vertex edge case.
func TestSeekExpandMatchesSeekPlusExpand(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	for _, ext := range []int64{100, 102, 104, 999} {
		fusedGot := run(t, f, exec.ModeFactorized, plan.Plan{
			&op.SeekExpand{Label: s.Person, ExtID: ext, To: "f", Et: s.Knows,
				Dir: catalog.Out, DstLabel: s.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
			&op.Defactor{Cols: []string{"f.id"}},
		})
		plainGot := run(t, f, exec.ModeFactorized, plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: ext},
			&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
			&op.Defactor{Cols: []string{"f.id"}},
		})
		if !reflect.DeepEqual(rowsAsStrings(fusedGot), rowsAsStrings(plainGot)) {
			t.Fatalf("ext %d: fused %v != plain %v", ext, rowsAsStrings(fusedGot), rowsAsStrings(plainGot))
		}
	}
}
