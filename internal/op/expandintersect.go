package op

import (
	"fmt"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/sched"
	"ges/internal/storage"
	"ges/internal/vector"
)

// IntersectSide is one bound input of an ExpandIntersect: the produced
// vertex must be reachable from Var along Et in direction Dir. Dir points
// from Var toward the produced vertex, so DstLabel names the label bound to
// the *new* variable and SrcLabel the label bound to Var (either may be
// storage.AnyLabel).
type IntersectSide struct {
	Var      string
	Et       catalog.EdgeTypeID
	Dir      catalog.Direction
	DstLabel catalog.LabelID
	SrcLabel catalog.LabelID
}

// ExpandIntersect produces a new vertex variable as the k-way intersection
// of bound variables' adjacencies — the worst-case-optimal (Leapfrog
// Triejoin / EmptyHeaded) counterpart of Expand + ExpandInto chains for
// cyclic subpatterns with two or more closing edges. Where the classical
// plan expands all of side 0's neighbors and then semi-joins (or worse,
// de-factors and hash-joins) each remaining edge, this operator intersects
// the k sorted CSR runs per owner row and materializes only the survivors,
// so diamonds, 4-cycles, and cliques never touch the flat blowup.
//
// Sides[0] is the base: its adjacency enumeration order (with multiplicity)
// defines the output, so results are byte-identical to the de-fused
// Expand(Sides[0]) + ExpandInto(Sides[1:]) reference — which is exactly
// what executeReference runs under ctx.NoWCOJ. Sorted runs intersect by
// leapfrog/galloping (storage.Intersector), unsealed or overlay segments
// fall back to per-source hash sets, byte-identical either way.
//
// The new f-Tree child hangs under the deepest side owner — the LCA-closed
// placement: every other side owner must be an ancestor of it so each deep
// row determines one source vertex per side. Sides on sibling branches fall
// back to de-factored flat execution, like ExpandInto.
type ExpandIntersect struct {
	To    string
	Sides []IntersectSide
}

// Name implements Operator.
func (o *ExpandIntersect) Name() string { return "ExpandIntersect" }

// Execute implements Operator.
func (o *ExpandIntersect) Execute(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	if len(o.Sides) < 2 {
		return nil, fmt.Errorf("op: expand-intersect needs >= 2 sides, got %d", len(o.Sides))
	}
	if ctx.NoWCOJ {
		return o.executeReference(ctx, in)
	}
	if in.IsFlat() {
		return o.executeFlat(ctx, in.Flat)
	}
	ft := in.FT
	nodes := make([]*core.Node, len(o.Sides))
	cols := make([]*vector.Column, len(o.Sides))
	for i, s := range o.Sides {
		n, c, err := vidColumn(ft, s.Var)
		if err != nil {
			return nil, err
		}
		nodes[i], cols[i] = n, c
	}

	// The child hangs under the deepest side owner; all other owners must
	// lie on its root path so every deep row fixes one vertex per side.
	deep := nodes[0]
	for _, n := range nodes[1:] {
		switch {
		case ancestorOf(deep, n):
			deep = n
		case ancestorOf(n, deep):
			// n is already an ancestor: nothing to do.
		default:
			// Sibling owners: no single node determines all sides — de-factor
			// and intersect flat (the paper's "ultimate solution" fallback).
			fb, err := ensureFlat(ctx, in)
			if err != nil {
				return nil, err
			}
			return o.executeFlat(ctx, fb)
		}
	}
	owners := make([][]int32, len(o.Sides))
	for i := range nodes {
		owners[i] = ownerMap(deep, nodes[i])
	}

	n := deep.Block.NumRows()
	if ctx.Parallel > 1 && n >= parallelMinRows {
		toCol, index := o.parallelIntersect(ctx, deep, cols, owners)
		ft.AddChild(deep, ctx.NewFBlock(toCol), index)
		assertFTree(ft)
		return ctx.FTChunk(ft), nil
	}
	toCol := ctx.Arena.OwnColumn(o.To, vector.KindVID)
	index := o.intersectRows(ctx, deep, cols, owners, 0, n, toCol, ctx.Arena.OwnRanges(n)[:0])
	ft.AddChild(deep, ctx.NewFBlock(toCol), index)
	assertFTree(ft)
	return ctx.FTChunk(ft), nil
}

// sideSrcs builds side si's source column for deep rows [lo,hi) in buf
// (capacity at least hi-lo, typically arena scratch): the side vertex of
// each valid row, NilVID (an empty run) otherwise.
func sideSrcs(deep *core.Node, col *vector.Column, owner []int32, lo, hi int, buf []vector.VID) []vector.VID {
	srcs := buf[:hi-lo]
	for i := lo; i < hi; i++ {
		if deep.Valid(i) {
			srcs[i-lo] = col.VIDAt(int(owner[i]))
		} else {
			srcs[i-lo] = vector.NilVID
		}
	}
	return srcs
}

// fillSide resolves one side's adjacency for a source column: the batched
// CSR kernel, or the scalar reference path under ctx.NoCSR. Both fill runs
// aligned with srcs and are byte-identical.
func fillSide(ctx *Ctx, s IntersectSide, srcs []vector.VID, out *storage.Batch) {
	if ctx.NoCSR {
		storage.AppendNeighborsBatch(ctx.View, srcs, s.Et, s.Dir, s.DstLabel, false, out)
		return
	}
	ctx.View.NeighborsBatch(srcs, s.Et, s.Dir, s.DstLabel, false, out)
}

// intersectRows intersects deep rows [lo,hi), appending survivors to toCol
// and one range per row to index (ranges relative to toCol's state at
// entry). It is the single implementation behind the sequential path and
// each parallel morsel, so parallel output is byte-identical by
// construction.
func (o *ExpandIntersect) intersectRows(ctx *Ctx, deep *core.Node, cols []*vector.Column,
	owners [][]int32, lo, hi int, toCol *vector.Column, index []core.Range) []core.Range {

	// Side batches and source buffers are morsel-transient: the survivors are
	// copied into toCol before this call returns, so everything cycles back
	// through the arena here.
	base := ctx.Arena.GetBatch()
	defer ctx.Arena.PutBatch(base)
	srcs0 := sideSrcs(deep, cols[0], owners[0], lo, hi, ctx.Arena.GetVIDs(hi-lo))
	defer ctx.Arena.PutVIDs(srcs0)
	fillSide(ctx, o.Sides[0], srcs0, base)
	probes := make([]*storage.Batch, len(o.Sides)-1)
	probeSrcs := make([][]vector.VID, len(o.Sides)-1)
	defer func() {
		for p := range probes {
			ctx.Arena.PutBatch(probes[p])
			ctx.Arena.PutVIDs(probeSrcs[p])
		}
	}()
	for p := range probes {
		probeSrcs[p] = sideSrcs(deep, cols[p+1], owners[p+1], lo, hi, ctx.Arena.GetVIDs(hi-lo))
		probes[p] = ctx.Arena.GetBatch()
		fillSide(ctx, o.Sides[p+1], probeSrcs[p], probes[p])
	}
	var x storage.Intersector
	x.Reset(base, probes, probeSrcs, !ctx.NoIntersect)
	return probeLoop(&x, hi-lo, toCol, index)
}

// probeLoop is the ExpandIntersect inner loop: one Intersector reduction
// per deep row, survivors appended to toCol and one range per row to index
// (ranges relative to toCol's state at entry). Split out of intersectRows
// so the hot loop is a checkable kernel, separate from the per-morsel batch
// fills and Intersector setup that legitimately allocate.
//
//geslint:kernel
func probeLoop(x *storage.Intersector, n int, toCol *vector.Column, index []core.Range) []core.Range {
	total := toCol.Len()
	var buf []vector.VID
	for i := 0; i < n; i++ {
		start := total
		buf = x.Row(buf[:0], i)
		for _, v := range buf {
			toCol.AppendVID(v)
		}
		total += len(buf)
		//geslint:alloc-ok callers pre-size index to the morsel row count; append rarely grows
		index = append(index, core.Range{Start: int32(start), End: int32(total)})
	}
	return index
}

// parallelIntersect shards deep rows into morsels, each with its own side
// batches and intersector, and merges shard outputs in morsel order.
func (o *ExpandIntersect) parallelIntersect(ctx *Ctx, deep *core.Node, cols []*vector.Column,
	owners [][]int32) (*vector.Column, []core.Range) {

	n := deep.Block.NumRows()
	shards := make([]matShard, sched.NumMorsels(n, expandMorselSize))
	ctx.RunMorsels(n, expandMorselSize, func(m sched.Morsel) {
		sh := &shards[m.Index]
		sh.toCol = ctx.Arena.OwnColumn(o.To, vector.KindVID)
		sh.index = o.intersectRows(ctx, deep, cols, owners, m.Start, m.End,
			sh.toCol, ctx.Arena.GetRanges(m.End-m.Start))
	})

	toCol := ctx.Arena.OwnColumn(o.To, vector.KindVID)
	index := ctx.Arena.OwnRanges(n)[:0]
	offset := int32(0)
	for si := range shards {
		sh := &shards[si]
		toCol.Extend(sh.toCol)
		for _, rg := range sh.index {
			index = append(index, core.Range{Start: rg.Start + offset, End: rg.End + offset})
		}
		offset += int32(sh.toCol.Len())
		ctx.Arena.PutRanges(sh.index)
		sh.index = nil
	}
	return toCol, index
}

// executeFlat intersects over materialized rows, appending one output row
// per survivor.
func (o *ExpandIntersect) executeFlat(ctx *Ctx, in *core.FlatBlock) (*core.Chunk, error) {
	idxs := make([]int, len(o.Sides))
	for i, s := range o.Sides {
		idxs[i] = in.ColIndex(s.Var)
		if idxs[i] < 0 {
			return nil, errNoColumn("expand-intersect", s.Var)
		}
	}
	names := append(append([]string(nil), in.Names...), o.To)
	kinds := append(append([]vector.Kind(nil), in.Kinds...), vector.KindVID)

	emitRows := func(lo, hi int, out *core.FlatBlock) {
		base := ctx.Arena.GetBatch()
		defer ctx.Arena.PutBatch(base)
		probes := make([]*storage.Batch, len(o.Sides)-1)
		probeSrcs := make([][]vector.VID, len(o.Sides)-1)
		srcsOf := func(si int) []vector.VID {
			srcs := ctx.Arena.GetVIDs(hi - lo)[:hi-lo]
			for i := lo; i < hi; i++ {
				srcs[i-lo] = in.Rows[i][idxs[si]].AsVID()
			}
			return srcs
		}
		srcs0 := srcsOf(0)
		defer ctx.Arena.PutVIDs(srcs0)
		fillSide(ctx, o.Sides[0], srcs0, base)
		defer func() {
			for p := range probes {
				ctx.Arena.PutBatch(probes[p])
				ctx.Arena.PutVIDs(probeSrcs[p])
			}
		}()
		for p := range probes {
			probeSrcs[p] = srcsOf(p + 1)
			probes[p] = ctx.Arena.GetBatch()
			fillSide(ctx, o.Sides[p+1], probeSrcs[p], probes[p])
		}
		var x storage.Intersector
		x.Reset(base, probes, probeSrcs, !ctx.NoIntersect)
		var buf []vector.VID
		for i := 0; i < hi-lo; i++ {
			buf = x.Row(buf[:0], i)
			for _, v := range buf {
				nr := make([]vector.Value, 0, len(names))
				nr = append(nr, in.Rows[lo+i]...)
				nr = append(nr, vector.VIDValue(v))
				out.AppendOwned(nr)
			}
		}
	}

	n := len(in.Rows)
	out := core.NewFlatBlock(names, kinds)
	if ctx.Parallel > 1 && n >= parallelMinRows {
		shards := make([]*core.FlatBlock, sched.NumMorsels(n, expandMorselSize))
		ctx.RunMorsels(n, expandMorselSize, func(m sched.Morsel) {
			sh := core.NewFlatBlock(names, kinds)
			emitRows(m.Start, m.End, sh)
			shards[m.Index] = sh
		})
		for _, sh := range shards {
			out.Rows = append(out.Rows, sh.Rows...)
		}
	} else {
		emitRows(0, n, out)
	}
	if ctx.MaxRows > 0 && out.NumRows() > ctx.MaxRows {
		return nil, errRowLimit("flat expand-intersect", out.NumRows(), ctx.MaxRows)
	}
	return ctx.FlatChunk(out), nil
}

// executeReference runs the de-fused classical plan — Expand along side 0,
// then one ExpandInto closure per remaining side — in place of the
// intersection. This is the ctx.NoWCOJ ablation baseline: it reproduces the
// exact operator chain the planner would emit without WCOJ lowering
// (including the de-factored flat fallback when a closure's endpoints land
// on sibling branches), and its final results are byte-identical to the
// intersection paths.
func (o *ExpandIntersect) executeReference(ctx *Ctx, in *core.Chunk) (*core.Chunk, error) {
	s0 := o.Sides[0]
	ops := []Operator{
		&Expand{From: s0.Var, To: o.To, Et: s0.Et, Dir: s0.Dir, DstLabel: s0.DstLabel},
	}
	for _, s := range o.Sides[1:] {
		ops = append(ops, &ExpandInto{From: s.Var, To: o.To, Et: s.Et, Dir: s.Dir,
			DstLabel: s.DstLabel, SrcLabel: s.SrcLabel})
	}
	ch := in
	for _, sub := range ops {
		var err error
		ch, err = sub.Execute(ctx, ch)
		if err != nil {
			return nil, err
		}
		ctx.Observe(ch)
	}
	return ch, nil
}
