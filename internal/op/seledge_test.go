package op_test

import (
	"testing"

	"ges/internal/catalog"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/testgraph"
	"ges/internal/vector"
)

// These tests pin down the selection-vector edge cases the runtime assertion
// layer (-tags gesassert) and geslint's R3 rule guard: an all-cleared
// selection, zone-map pruning clearing every zone at once, and a genuinely
// empty (0-row) f-Block — each flowing through Expand, Projection and
// Aggregate without panics and with identical results across engine modes.

// TestEmptySelectionFlowsThroughPlan clears every root selection bit with an
// unsatisfiable predicate and pushes the all-cleared tree through Expand and
// Projection. Downstream operators must treat the block as logically empty
// even though its columns still hold rows.
func TestEmptySelectionFlowsThroughPlan(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: s.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "p", Prop: "creationDate", As: "cd"}}},
			// No person predates day 0: the filter clears the whole selection
			// vector but leaves the 10-row block in place.
			&op.Filter{Pred: expr.Lt(expr.C("cd"), expr.LDate(0))},
			&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
		}
	}
	fb := assertModesAgree(t, f, build)
	if fb.NumRows() != 0 {
		t.Fatalf("all-cleared selection produced %d rows, want 0", fb.NumRows())
	}
	// A global aggregate over the empty stream must still emit its single
	// group row, with count 0, in every mode.
	withAgg := func() plan.Plan {
		return append(build(), &op.Aggregate{Aggs: []op.AggSpec{{Func: op.Count, As: "n"}}})
	}
	agg := assertModesAgree(t, f, withAgg)
	if agg.NumRows() != 1 || agg.Rows[0][0].I != 0 {
		t.Fatalf("global count over empty selection = %v, want one row of 0", agg.Rows)
	}
}

// bigPersonGraph builds a Person-only graph large enough to span several
// zone-map zones: n persons with creationDate = i, plus knows edges i→i+1
// among the first 100 so expansion over the graph is non-trivial.
func bigPersonGraph(t *testing.T, n int) (*storage.Graph, *testgraph.Schema) {
	t.Helper()
	cat := catalog.New()
	s := testgraph.NewSchema(cat)
	g := storage.NewGraph(cat)
	vids := make([]vector.VID, n)
	for i := 0; i < n; i++ {
		v, err := g.AddVertex(s.Person, int64(i),
			vector.String_("fn"), vector.String_("ln"), vector.Date(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		vids[i] = v
	}
	for i := 0; i+1 < 100; i++ {
		if err := g.AddEdge(s.Knows, vids[i], vids[i+1], vector.Date(0)); err != nil {
			t.Fatal(err)
		}
	}
	return g, s
}

// TestZoneMapPrunesAllZones drives an unsatisfiable range predicate through
// the zone-mapped filter fast path: every zone is ruled out by its min/max
// summary, the selection vector is cleared in word-ranged sweeps, and the
// all-cleared block must then expand and aggregate to zero — matching the
// NoZoneMap ablation bit for bit.
func TestZoneMapPrunesAllZones(t *testing.T) {
	const n = 3*vector.ZoneSize + 123 // several full zones plus a ragged tail
	g, s := bigPersonGraph(t, n)
	build := func(threshold int64) plan.Plan {
		return plan.Plan{
			&op.NodeScan{Var: "p", Label: s.Person},
			// Scan-ordered VIDs share the storage column zero-copy, so the
			// projected column carries the storage zone map into the filter.
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "p", Prop: "creationDate", As: "cd"}}},
			&op.Filter{Pred: expr.Lt(expr.C("cd"), expr.LDate(threshold))},
			&op.Expand{From: "p", To: "f", Et: s.Knows, Dir: catalog.Out, DstLabel: s.Person},
			&op.Aggregate{Aggs: []op.AggSpec{{Func: op.Count, As: "n"}}},
		}
	}
	count := func(e *exec.Engine, threshold int64) (int64, *exec.Result) {
		t.Helper()
		res, err := e.Run(g, build(threshold))
		if err != nil {
			t.Fatal(err)
		}
		if res.Block.NumRows() != 1 {
			t.Fatalf("aggregate emitted %d rows, want 1", res.Block.NumRows())
		}
		return res.Block.Rows[0][0].I, res
	}

	// creationDate is never negative: every zone's [min,max] misses the
	// predicate range, so all zones prune and nothing survives.
	e := exec.New(exec.ModeFactorized)
	got, res := count(e, 0)
	if got != 0 {
		t.Fatalf("count after all-zone prune = %d, want 0", got)
	}
	if res.ZonesTotal == 0 {
		t.Fatal("filter did not take the zone-map path (ZonesTotal = 0)")
	}
	if res.ZonesPruned != res.ZonesTotal {
		t.Fatalf("pruned %d of %d zones, want all", res.ZonesPruned, res.ZonesTotal)
	}

	// The ablated engine must agree without consulting any zones.
	off := exec.New(exec.ModeFactorized)
	off.NoZoneMap = true
	gotOff, resOff := count(off, 0)
	if gotOff != 0 || resOff.ZonesTotal != 0 {
		t.Fatalf("NoZoneMap run: count=%d zonesTotal=%d, want 0 and 0", gotOff, resOff.ZonesTotal)
	}

	// A mid-range threshold prunes a proper subset of zones; both paths and
	// the parallel runtime must agree on the surviving count.
	const mid = int64(vector.ZoneSize + 50) // knows edges exist only below row 100
	want, _ := count(off, mid)
	if want == 0 {
		t.Fatal("mid-range threshold should keep some edges")
	}
	gotMid, resMid := count(exec.New(exec.ModeFactorized), mid)
	if gotMid != want {
		t.Fatalf("zone-mapped count = %d, ablation = %d", gotMid, want)
	}
	if resMid.ZonesPruned == 0 || resMid.ZonesPruned >= resMid.ZonesTotal {
		t.Fatalf("mid-range prune = %d of %d zones, want a proper nonzero subset",
			resMid.ZonesPruned, resMid.ZonesTotal)
	}
	par := exec.New(exec.ModeFactorized)
	par.Parallel = 4
	if gotPar, _ := count(par, mid); gotPar != want {
		t.Fatalf("parallel zone-mapped count = %d, want %d", gotPar, want)
	}
}

// TestZeroRowFBlockThroughOperators starts from a vertex with no outgoing
// likes, producing a genuinely 0-row child f-Block (not merely a cleared
// selection), and keeps operating on it: a second Expand, property
// projection, and a global Aggregate must all pass through without panics.
func TestZeroRowFBlockThroughOperators(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	build := func() plan.Plan {
		return plan.Plan{
			// p3 (ext 103) likes nothing, so the "m" block has zero rows.
			&op.NodeByIdSeek{Var: "p", Label: s.Person, ExtID: 103},
			&op.Expand{From: "p", To: "m", Et: s.Likes, Dir: catalog.Out, DstLabel: s.Post},
			&op.Expand{From: "m", To: "a", Et: s.HasCreator, Dir: catalog.Out, DstLabel: s.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "a", Prop: "firstName", As: "an"}}},
		}
	}
	fb := assertModesAgree(t, f, build)
	if fb.NumRows() != 0 {
		t.Fatalf("0-row f-Block produced %d rows, want 0", fb.NumRows())
	}
	withAgg := func() plan.Plan {
		return append(build(), &op.Aggregate{Aggs: []op.AggSpec{{Func: op.Count, As: "n"}}})
	}
	agg := assertModesAgree(t, f, withAgg)
	if agg.NumRows() != 1 || agg.Rows[0][0].I != 0 {
		t.Fatalf("global count over 0-row f-Block = %v, want one row of 0", agg.Rows)
	}
}
