package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"ges/internal/plan"
)

// DefaultPlanCacheSize bounds the service plan cache when no explicit size is
// configured.
const DefaultPlanCacheSize = 128

// planKey identifies a cached compiled plan: the exact query text plus the
// catalog schema version it was bound against. A schema change bumps the
// version, so stale plans simply stop being hit and age out of the LRU.
type planKey struct {
	query   string
	catalog uint64
}

// planCache is a bounded LRU of compiled (unfused) plans, letting repeated
// POST /query requests skip the lex/parse/bind pipeline. Cached plans are
// shared across concurrent requests: operators hold no per-execution state,
// and the fusion rewrite (plan.Fuse) runs per execution on a copy, creating
// fresh fused predicate instances.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	byKey map[planKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type planEntry struct {
	key planKey
	p   plan.Plan
}

// newPlanCache returns a cache bounded to capacity entries (values < 1 use
// DefaultPlanCacheSize).
func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = DefaultPlanCacheSize
	}
	return &planCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[planKey]*list.Element, capacity),
	}
}

// get returns the cached plan for key, promoting it to most recently used.
func (c *planCache) get(key planKey) (plan.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*planEntry).p, true
}

// put inserts (or refreshes) a compiled plan, evicting the least recently
// used entry when over capacity.
func (c *planCache) put(key planKey, p plan.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planEntry).p = p
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&planEntry{key: key, p: p})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*planEntry).key)
	}
}

// counters returns the lifetime hit/miss counts.
func (c *planCache) counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// size returns the current entry count.
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// capacity returns the configured bound.
func (c *planCache) capacity() int { return c.cap }
