package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"ges/internal/plan"
)

// DefaultPlanCacheSize bounds the service plan cache when no explicit size is
// configured.
const DefaultPlanCacheSize = 128

// planKey identifies a cached compiled plan: the normalized query text
// (literals replaced by $k placeholders, so literal-differing requests
// share one entry), the catalog schema version it was bound against, the
// statistics epoch that shaped it, and the parameter-kind fingerprint. A
// schema change or a re-seal (Compact + SealCSR publishes fresh
// cardinalities under a new epoch) makes stale plans stop being hit and
// age out of the LRU; the kind fingerprint keeps a request whose literal
// kinds differ (e.g. a string where the cached plan seeks an integer id)
// from reusing a skeleton shaped for other types.
type planKey struct {
	query   string
	catalog uint64
	stats   uint64
	kinds   string
}

// planCache is a bounded LRU of compiled (unfused) plans, letting repeated
// POST /query requests skip the lex/parse/bind pipeline. Cached plans are
// shared across concurrent requests: operators hold no per-execution state,
// and the fusion rewrite (plan.Fuse) runs per execution on a copy, creating
// fresh fused predicate instances.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	byKey map[planKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type planEntry struct {
	key planKey
	p   plan.Plan
	est plan.Estimate
}

// newPlanCache returns a cache bounded to capacity entries (values < 1 use
// DefaultPlanCacheSize).
func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = DefaultPlanCacheSize
	}
	return &planCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[planKey]*list.Element, capacity),
	}
}

// get returns the cached plan skeleton and its estimate for key, promoting
// the entry to most recently used.
func (c *planCache) get(key planKey) (plan.Plan, plan.Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return nil, plan.Estimate{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	e := el.Value.(*planEntry)
	return e.p, e.est, true
}

// put inserts (or refreshes) a compiled plan, evicting the least recently
// used entry when over capacity.
func (c *planCache) put(key planKey, p plan.Plan, est plan.Estimate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*planEntry)
		e.p, e.est = p, est
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&planEntry{key: key, p: p, est: est})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*planEntry).key)
	}
}

// counters returns the lifetime hit/miss counts.
func (c *planCache) counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// size returns the current entry count.
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// capacity returns the configured bound.
func (c *planCache) capacity() int { return c.cap }
