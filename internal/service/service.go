// Package service implements the Graph Engine Service's HTTP layer: a small
// JSON API over the engine, serving ad-hoc Cypher queries, named LDBC
// workload queries, and dataset statistics. cmd/gesd wires it to a listener.
package service

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"ges/internal/core"
	"ges/internal/cypher"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
	"ges/internal/vector"
)

// Server serves one dataset through one engine.
type Server struct {
	ds     *ldbc.Dataset
	runner *queries.Runner
	engine *exec.Engine
	// now is injectable for deterministic tests.
	now func() time.Time
}

// New wires a server for a dataset in the given engine mode.
func New(ds *ldbc.Dataset, mode exec.Mode) *Server {
	return &Server{
		ds:     ds,
		runner: queries.NewRunner(ds, mode, nil),
		engine: exec.New(mode),
		now:    time.Now,
	}
}

// Mux returns the HTTP handler.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /ldbc", s.handleLDBC)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	Query string `json:"query"`
}

// Result is the JSON result table.
type Result struct {
	Columns []string       `json:"columns"`
	Rows    [][]any        `json:"rows"`
	Stats   map[string]any `json:"stats"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := cypher.Compile(req.Query, s.ds.H.Cat)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	start := s.now()
	res, err := s.engine.Run(s.runner.Mgr.Snapshot(), p)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, toResult(res.Block, map[string]any{
		"durationMs":            float64(s.now().Sub(start).Microseconds()) / 1000,
		"peakIntermediateBytes": res.PeakMem,
	}))
}

// LDBCRequest is the body of POST /ldbc. Params may be omitted to draw
// parameters from the curated pools.
type LDBCRequest struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params"`
}

func (s *Server) handleLDBC(w http.ResponseWriter, r *http.Request) {
	var req LDBCRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := queries.ByName(strings.ToUpper(req.Name))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	params, err := s.bindParams(q, req.Params)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	start := s.now()
	fb, _, err := s.runner.Execute(q, params)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, toResult(fb, map[string]any{
		"durationMs": float64(s.now().Sub(start).Microseconds()) / 1000,
		"params":     renderParams(params),
	}))
}

func (s *Server) bindParams(q *queries.Query, raw map[string]any) (queries.Params, error) {
	if raw == nil {
		pg := s.ds.NewParamGen(s.now().UnixNano())
		return q.GenParams(s.ds, pg), nil
	}
	params := make(queries.Params, len(raw))
	for k, v := range raw {
		switch x := v.(type) {
		case float64:
			if strings.Contains(strings.ToLower(k), "date") {
				params[k] = vector.Date(int64(x))
			} else {
				params[k] = vector.Int64(int64(x))
			}
		case string:
			params[k] = vector.String_(x)
		case bool:
			params[k] = vector.Bool(x)
		default:
			return nil, fmt.Errorf("parameter %q has unsupported type %T", k, v)
		}
	}
	return params, nil
}

func renderParams(p queries.Params) map[string]any {
	out := make(map[string]any, len(p))
	for k, v := range p {
		out[k] = v.String()
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ds.Stats()
	overlays, version := s.runner.Mgr.Stats()
	writeJSON(w, map[string]any{
		"simSF":           st.SF,
		"persons":         st.Persons,
		"vertices":        st.Vertices,
		"edges":           st.Edges,
		"bytes":           st.Bytes,
		"overlayVertices": overlays,
		"commitVersion":   version,
	})
}

func toResult(fb *core.FlatBlock, stats map[string]any) Result {
	resp := Result{Columns: []string{}, Rows: [][]any{}, Stats: stats}
	if fb == nil {
		return resp
	}
	resp.Columns = fb.Names
	for _, row := range fb.Rows {
		r := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case vector.KindInt64, vector.KindDate, vector.KindVID:
				r[j] = v.I
			case vector.KindFloat64:
				r[j] = v.F
			case vector.KindString:
				r[j] = v.S
			case vector.KindBool:
				r[j] = v.I != 0
			}
		}
		resp.Rows = append(resp.Rows, r)
	}
	return resp
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("service: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
