// Package service implements the Graph Engine Service's HTTP layer: a small
// JSON API over the engine, serving ad-hoc Cypher queries, named LDBC
// workload queries, and dataset statistics. cmd/gesd wires it to a listener.
package service

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"ges/internal/core"
	"ges/internal/cypher"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Server serves one dataset. Each request runs through its own engine value
// (engines carry per-run mutable state such as stats collection, so sharing
// one across concurrent requests would race); the memory pool and the
// compiled-plan cache are the shared, concurrency-safe pieces.
type Server struct {
	ds       *ldbc.Dataset
	runner   *queries.Runner
	mode     exec.Mode
	pool     *storage.Pool
	parallel int
	cache    *planCache
	// now is injectable for deterministic tests.
	now func() time.Time
}

// Options tunes a server beyond the engine mode.
type Options struct {
	// Parallel is the intra-query parallelism degree given to each
	// request's engine (<= 1 = sequential).
	Parallel int
	// PlanCacheSize bounds the compiled-plan LRU; values < 1 use
	// DefaultPlanCacheSize.
	PlanCacheSize int
}

// New wires a server for a dataset in the given engine mode with default
// options.
func New(ds *ldbc.Dataset, mode exec.Mode) *Server {
	return NewWith(ds, mode, Options{})
}

// NewWith wires a server with explicit options.
func NewWith(ds *ldbc.Dataset, mode exec.Mode, opts Options) *Server {
	return &Server{
		ds:       ds,
		runner:   queries.NewRunner(ds, mode, nil),
		mode:     mode,
		pool:     storage.NewPool(),
		parallel: opts.Parallel,
		cache:    newPlanCache(opts.PlanCacheSize),
		now:      time.Now,
	}
}

// newEngine returns a fresh per-request engine sharing the server's pool.
func (s *Server) newEngine() *exec.Engine {
	return &exec.Engine{Mode: s.mode, Pool: s.pool, Parallel: s.parallel}
}

// Mux returns the HTTP handler.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /ldbc", s.handleLDBC)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	Query string `json:"query"`
}

// Result is the JSON result table.
type Result struct {
	Columns []string       `json:"columns"`
	Rows    [][]any        `json:"rows"`
	Stats   map[string]any `json:"stats"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// The cache keys on (query text, catalog version): a hit skips the
	// lex/parse/bind pipeline entirely, and schema changes invalidate by
	// version mismatch.
	key := planKey{query: req.Query, catalog: s.ds.H.Cat.Version()}
	p, ok := s.cache.get(key)
	if !ok {
		var err error
		p, err = cypher.Compile(req.Query, s.ds.H.Cat)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		s.cache.put(key, p)
	}
	start := s.now()
	res, err := s.newEngine().Run(s.runner.Mgr.Snapshot(), p)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, toResult(res.Block, map[string]any{
		"durationMs":            float64(s.now().Sub(start).Microseconds()) / 1000,
		"peakIntermediateBytes": res.PeakMem,
	}))
}

// LDBCRequest is the body of POST /ldbc. Params may be omitted to draw
// parameters from the curated pools.
type LDBCRequest struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params"`
}

func (s *Server) handleLDBC(w http.ResponseWriter, r *http.Request) {
	var req LDBCRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := queries.ByName(strings.ToUpper(req.Name))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	params, err := s.bindParams(q, req.Params)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	start := s.now()
	fb, _, err := s.runner.Execute(q, params)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, toResult(fb, map[string]any{
		"durationMs": float64(s.now().Sub(start).Microseconds()) / 1000,
		"params":     renderParams(params),
	}))
}

func (s *Server) bindParams(q *queries.Query, raw map[string]any) (queries.Params, error) {
	if raw == nil {
		pg := s.ds.NewParamGen(s.now().UnixNano())
		return q.GenParams(s.ds, pg), nil
	}
	params := make(queries.Params, len(raw))
	for k, v := range raw {
		switch x := v.(type) {
		case float64:
			if strings.Contains(strings.ToLower(k), "date") {
				params[k] = vector.Date(int64(x))
			} else {
				params[k] = vector.Int64(int64(x))
			}
		case string:
			params[k] = vector.String_(x)
		case bool:
			params[k] = vector.Bool(x)
		default:
			return nil, fmt.Errorf("parameter %q has unsupported type %T", k, v)
		}
	}
	return params, nil
}

func renderParams(p queries.Params) map[string]any {
	out := make(map[string]any, len(p))
	for k, v := range p {
		out[k] = v.String()
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ds.Stats()
	overlays, version := s.runner.Mgr.Stats()
	hits, misses := s.cache.counters()
	slots, dead := s.ds.Graph.AdjSlotStats()
	writeJSON(w, map[string]any{
		"simSF":           st.SF,
		"persons":         st.Persons,
		"vertices":        st.Vertices,
		"edges":           st.Edges,
		"bytes":           st.Bytes,
		"overlayVertices": overlays,
		"commitVersion":   version,
		"adjacency": map[string]any{
			"slots":     slots,
			"deadSlots": dead,
		},
		"planCache": map[string]any{
			"hits":     hits,
			"misses":   misses,
			"size":     s.cache.size(),
			"capacity": s.cache.capacity(),
		},
	})
}

func toResult(fb *core.FlatBlock, stats map[string]any) Result {
	resp := Result{Columns: []string{}, Rows: [][]any{}, Stats: stats}
	if fb == nil {
		return resp
	}
	resp.Columns = fb.Names
	for _, row := range fb.Rows {
		r := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case vector.KindInt64, vector.KindDate, vector.KindVID:
				r[j] = v.I
			case vector.KindFloat64:
				r[j] = v.F
			case vector.KindString:
				r[j] = v.S
			case vector.KindBool:
				r[j] = v.I != 0
			}
		}
		resp.Rows = append(resp.Rows, r)
	}
	return resp
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("service: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
