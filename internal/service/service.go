// Package service implements the Graph Engine Service's HTTP layer: a small
// JSON API over the engine, serving ad-hoc Cypher queries, named LDBC
// workload queries, and dataset statistics. cmd/gesd wires it to a listener.
package service

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"ges/internal/core"
	"ges/internal/cypher"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Server serves one dataset. Each request runs through its own engine value
// (engines carry per-run mutable state such as stats collection, so sharing
// one across concurrent requests would race); the memory pool and the
// compiled-plan cache are the shared, concurrency-safe pieces.
type Server struct {
	ds       *ldbc.Dataset
	runner   *queries.Runner
	mode     exec.Mode
	pool     *storage.Pool
	parallel int
	cache     *planCache
	noCost    bool
	noRecycle bool
	// now is injectable for deterministic tests.
	now func() time.Time

	// Estimator drift: totals over cost-based /query executions. estRows is
	// the planner's pattern-cardinality estimate; actRows counts the rows
	// each query actually returned. Aggregating queries return fewer rows
	// than the pattern produced, so this is a coarse drift signal, not a
	// per-query q-error.
	estQueries atomic.Uint64
	estRows    atomic.Uint64
	actRows    atomic.Uint64
}

// Options tunes a server beyond the engine mode.
type Options struct {
	// Parallel is the intra-query parallelism degree given to each
	// request's engine (<= 1 = sequential).
	Parallel int
	// PlanCacheSize bounds the compiled-plan LRU; values < 1 use
	// DefaultPlanCacheSize.
	PlanCacheSize int
	// NoCost disables cost-based planning for /query: plans bind in
	// syntactic order, as written. Mirrors gesbench -no-cost.
	NoCost bool
	// NoRecycle disables executor memory recycling: every request's engine
	// allocates fresh instead of drawing from the shared pool. Mirrors
	// gesbench -no-recycle; the ablation knob for the §5 memory pool.
	NoRecycle bool
}

// New wires a server for a dataset in the given engine mode with default
// options.
func New(ds *ldbc.Dataset, mode exec.Mode) *Server {
	return NewWith(ds, mode, Options{})
}

// NewWith wires a server with explicit options.
func NewWith(ds *ldbc.Dataset, mode exec.Mode, opts Options) *Server {
	return &Server{
		ds:       ds,
		runner:   queries.NewRunner(ds, mode, nil),
		mode:     mode,
		pool:     storage.NewPool(),
		parallel: opts.Parallel,
		cache:     newPlanCache(opts.PlanCacheSize),
		noCost:    opts.NoCost,
		noRecycle: opts.NoRecycle,
		now:       time.Now,
	}
}

// newEngine returns a fresh per-request engine sharing the server's pool, so
// arenas released at end-of-request recycle into the next request.
func (s *Server) newEngine() *exec.Engine {
	return &exec.Engine{Mode: s.mode, Pool: s.pool, Parallel: s.parallel, NoRecycle: s.noRecycle}
}

// Mux returns the HTTP handler.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /ldbc", s.handleLDBC)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	Query string `json:"query"`
}

// Result is the JSON result table.
type Result struct {
	Columns []string       `json:"columns"`
	Rows    [][]any        `json:"rows"`
	Stats   map[string]any `json:"stats"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Literals are normalized into $k placeholders so literal-differing
	// requests share one plan skeleton; the cache keys on the normalized
	// text plus the catalog version, the statistics epoch and the parameter
	// kind fingerprint. A hit skips the lex/parse/bind pipeline and only
	// re-binds the literal values; schema changes and statistics re-seals
	// invalidate by key mismatch.
	norm, params, err := cypher.Normalize(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key := planKey{
		query:   norm,
		catalog: s.ds.H.Cat.Version(),
		stats:   s.ds.Graph.StatsEpoch(),
		kinds:   paramKinds(params),
	}
	p, est, ok := s.cache.get(key)
	if !ok {
		var cm *plan.CostModel
		if !s.noCost {
			cm = plan.NewCostModel(s.ds.Graph.Stats())
		}
		c, err := cypher.CompileWith(norm, s.ds.H.Cat, cypher.Options{Cost: cm, Params: params})
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		p, est = c.Plan, c.Est
		s.cache.put(key, p, est)
	}
	eng := s.newEngine()
	eng.Params = params
	start := s.now()
	res, err := eng.Run(s.runner.Mgr.Snapshot(), p)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	reqStats := map[string]any{
		"durationMs":            float64(s.now().Sub(start).Microseconds()) / 1000,
		"peakIntermediateBytes": res.PeakMem,
	}
	if est.CostBased {
		s.estQueries.Add(1)
		s.estRows.Add(uint64(est.Rows + 0.5))
		if res.Block != nil {
			s.actRows.Add(uint64(len(res.Block.Rows)))
		}
		reqStats["estimatedRows"] = est.Rows
		reqStats["anchor"] = est.Anchor
	}
	writeJSON(w, toResult(res.Block, reqStats))
}

// paramKinds fingerprints the extracted literal kinds so a query whose
// literals re-lex to different types cannot reuse a plan skeleton shaped
// for other kinds (e.g. an id() seek compiled against an integer).
func paramKinds(params []vector.Value) string {
	if len(params) == 0 {
		return ""
	}
	b := make([]byte, len(params))
	for i, p := range params {
		b[i] = byte('0' + int(p.Kind))
	}
	return string(b)
}

// LDBCRequest is the body of POST /ldbc. Params may be omitted to draw
// parameters from the curated pools.
type LDBCRequest struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params"`
}

func (s *Server) handleLDBC(w http.ResponseWriter, r *http.Request) {
	var req LDBCRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := queries.ByName(strings.ToUpper(req.Name))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	params, err := s.bindParams(q, req.Params)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	start := s.now()
	fb, _, err := s.runner.Execute(q, params)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, toResult(fb, map[string]any{
		"durationMs": float64(s.now().Sub(start).Microseconds()) / 1000,
		"params":     renderParams(params),
	}))
}

func (s *Server) bindParams(q *queries.Query, raw map[string]any) (queries.Params, error) {
	if raw == nil {
		pg := s.ds.NewParamGen(s.now().UnixNano())
		return q.GenParams(s.ds, pg), nil
	}
	params := make(queries.Params, len(raw))
	for k, v := range raw {
		switch x := v.(type) {
		case float64:
			if strings.Contains(strings.ToLower(k), "date") {
				params[k] = vector.Date(int64(x))
			} else {
				params[k] = vector.Int64(int64(x))
			}
		case string:
			params[k] = vector.String_(x)
		case bool:
			params[k] = vector.Bool(x)
		default:
			return nil, fmt.Errorf("parameter %q has unsupported type %T", k, v)
		}
	}
	return params, nil
}

func renderParams(p queries.Params) map[string]any {
	out := make(map[string]any, len(p))
	for k, v := range p {
		out[k] = v.String()
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ds.Stats()
	overlays, version := s.runner.Mgr.Stats()
	hits, misses := s.cache.counters()
	slots, dead := s.ds.Graph.AdjSlotStats()
	writeJSON(w, map[string]any{
		"simSF":           st.SF,
		"persons":         st.Persons,
		"vertices":        st.Vertices,
		"edges":           st.Edges,
		"bytes":           st.Bytes,
		"overlayVertices": overlays,
		"commitVersion":   version,
		"adjacency": map[string]any{
			"slots":     slots,
			"deadSlots": dead,
		},
		"planCache": map[string]any{
			"hits":     hits,
			"misses":   misses,
			"size":     s.cache.size(),
			"capacity": s.cache.capacity(),
		},
		"statistics": s.statsSection(),
		"overlay":    s.overlaySection(),
		"memory":     s.memorySection(),
		"planner": map[string]any{
			"costBased":     !s.noCost,
			"estQueries":    s.estQueries.Load(),
			"estimatedRows": s.estRows.Load(),
			"actualRows":    s.actRows.Load(),
		},
	})
}

// overlaySection renders the delta-overlay and background-reseal gauges:
// aggregate depth and reseal counters, stats-epoch staleness, and per-family
// overlay state in deterministic key order.
func (s *Server) overlaySection() map[string]any {
	g := s.ds.Graph
	cat := s.ds.H.Cat
	ov := g.Overlay()
	fams := make([]map[string]any, 0, ov.Families)
	for _, f := range g.OverlayFamilies() {
		fams = append(fams, map[string]any{
			"src":           cat.LabelName(f.Key.Src),
			"type":          cat.EdgeTypeName(f.Key.Et),
			"dst":           cat.LabelName(f.Key.Dst),
			"dir":           f.Key.Dir.String(),
			"sealed":        f.Sealed,
			"sealedEntries": f.SealedEntries,
			"inserts":       f.Inserts,
			"tombstones":    f.Tombstones,
			"deltaFraction": f.DeltaFraction,
		})
	}
	return map[string]any{
		"families":         ov.Families,
		"sealed":           ov.Sealed,
		"withDelta":        ov.WithDelta,
		"inserts":          ov.Inserts,
		"tombstones":       ov.Tombstones,
		"maxDeltaFraction": ov.MaxDeltaFraction,
		"reseals":          ov.Reseals,
		"resealMs":         float64(ov.ResealTime.Microseconds()) / 1000,
		"statsEpoch":       ov.StatsEpoch,
		"statsStaleOps":    ov.StatsStale,
		"perFamily":        fams,
	}
}

// memorySection renders the executor recycling gauges: aggregate and
// per-class pool hit rates, live checked-out buffer bytes, per-object-pool
// counters, and the process GC totals the recycling exists to relieve.
func (s *Server) memorySection() map[string]any {
	st := s.pool.DetailedStats()
	classes := make([]map[string]any, 0, len(st.Classes))
	for _, c := range st.Classes {
		hr := 0.0
		if c.Gets > 0 {
			hr = float64(c.Hits) / float64(c.Gets)
		}
		classes = append(classes, map[string]any{
			"cap":     c.Cap,
			"gets":    c.Gets,
			"hits":    c.Hits,
			"puts":    c.Puts,
			"hitRate": hr,
		})
	}
	obj := func(o storage.ObjStat) map[string]any {
		return map[string]any{"gets": o.Gets, "hits": o.Hits, "puts": o.Puts}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]any{
		"recycling":      !s.noRecycle,
		"poolGets":       st.Gets,
		"poolPuts":       st.Puts,
		"poolHitRate":    st.HitRate(),
		"liveArenaBytes": st.LiveBytes,
		"classes":        classes,
		"objects": map[string]any{
			"columns": obj(st.Columns),
			"bitsets": obj(st.Bitsets),
			"ftrees":  obj(st.Trees),
			"batches": obj(st.Batches),
			"fblocks": obj(st.Blocks),
			"chunks":  obj(st.Chunks),
			"arenas":  obj(st.Arenas),
		},
		"gc": map[string]any{
			"cycles":          ms.NumGC,
			"pauseTotalMs":    float64(ms.PauseTotalNs) / 1e6,
			"heapAllocBytes":  ms.HeapAlloc,
			"totalAllocBytes": ms.TotalAlloc,
		},
	}
}

// statsSection renders the planner's statistics snapshot: build cost, label
// cardinalities and per-family degree summaries in deterministic key order.
func (s *Server) statsSection() map[string]any {
	snap := s.ds.Graph.Stats()
	if snap == nil {
		return map[string]any{"present": false}
	}
	cat := s.ds.H.Cat
	labels := make(map[string]int, len(snap.Labels))
	for l, card := range snap.Labels {
		labels[cat.LabelName(l)] = card
	}
	fams := make([]map[string]any, 0, len(snap.Families))
	for _, k := range snap.FamKeys() {
		f := snap.Families[k]
		dst := "*"
		if k.Dst != storage.AnyLabel {
			dst = cat.LabelName(k.Dst)
		}
		fams = append(fams, map[string]any{
			"src":       cat.LabelName(k.Src),
			"type":      cat.EdgeTypeName(k.Et),
			"dst":       dst,
			"dir":       k.Dir.String(),
			"edges":     f.Edges,
			"sources":   f.Sources,
			"maxDegree": f.MaxDegree,
			"p50Degree": f.Hist.Quantile(0.5),
			"p90Degree": f.Hist.Quantile(0.9),
		})
	}
	return map[string]any{
		"present":  true,
		"epoch":    snap.Epoch,
		"buildMs":  float64(snap.Build.Microseconds()) / 1000,
		"vertices": snap.Vertices,
		"edges":    snap.Edges,
		"columns":  len(snap.Columns),
		"labels":   labels,
		"families": fams,
	}
}

func toResult(fb *core.FlatBlock, stats map[string]any) Result {
	resp := Result{Columns: []string{}, Rows: [][]any{}, Stats: stats}
	if fb == nil {
		return resp
	}
	resp.Columns = fb.Names
	for _, row := range fb.Rows {
		r := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case vector.KindInt64, vector.KindDate, vector.KindVID:
				r[j] = v.I
			case vector.KindFloat64:
				r[j] = v.F
			case vector.KindString:
				r[j] = v.S
			case vector.KindBool:
				r[j] = v.I != 0
			}
		}
		resp.Rows = append(resp.Rows, r)
	}
	return resp
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("service: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
