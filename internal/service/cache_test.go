package service_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/service"
)

func testServerWith(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.03, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := service.NewWith(ds, exec.ModeFused, opts)
	ts := httptest.NewServer(srv.Mux())
	t.Cleanup(ts.Close)
	return ts
}

func getStats(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func planCacheStats(t *testing.T, ts *httptest.Server) (hits, misses, size, capacity int) {
	t.Helper()
	st := getStats(t, ts)
	pc, ok := st["planCache"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no planCache section: %v", st)
	}
	return int(pc["hits"].(float64)), int(pc["misses"].(float64)),
		int(pc["size"].(float64)), int(pc["capacity"].(float64))
}

const countFriendsQuery = `MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1
                           RETURN COUNT(*) AS friends`

// TestPlanCacheHitCounter asserts that repeated POST /query bodies hit the
// compiled-plan cache and that /stats exposes the counters.
func TestPlanCacheHitCounter(t *testing.T) {
	ts := testServerWith(t, service.Options{})
	var first map[string]any
	for i := 0; i < 4; i++ {
		resp, out := post(t, ts, "/query", service.QueryRequest{Query: countFriendsQuery})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %v", i, resp.StatusCode, out)
		}
		if first == nil {
			first = out
		} else if !reflect.DeepEqual(out["rows"], first["rows"]) {
			t.Fatalf("cached plan changed the result: %v vs %v", out["rows"], first["rows"])
		}
	}
	hits, misses, size, capacity := planCacheStats(t, ts)
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (one compile)", misses)
	}
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
	if size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
	if capacity != service.DefaultPlanCacheSize {
		t.Fatalf("capacity = %d, want default %d", capacity, service.DefaultPlanCacheSize)
	}
}

// TestPlanCacheEviction bounds the cache: with capacity 2, a third distinct
// query evicts the least recently used entry and the size never exceeds the
// bound. The queries differ structurally (not just in literals — those
// normalize onto one entry).
func TestPlanCacheEviction(t *testing.T) {
	ts := testServerWith(t, service.Options{PlanCacheSize: 2})
	shapes := []string{
		`MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1 RETURN COUNT(*) AS friends`,
		`MATCH (p:Person) RETURN COUNT(*) AS persons`,
		`MATCH (p:Person)-[:KNOWS]->(f)-[:KNOWS]->(g) WHERE id(p) = 1 RETURN COUNT(*) AS fof`,
	}
	queryFor := func(id int) string { return shapes[id-1] }
	for id := 1; id <= 3; id++ {
		resp, out := post(t, ts, "/query", service.QueryRequest{Query: queryFor(id)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %v", id, resp.StatusCode, out)
		}
	}
	_, misses, size, capacity := planCacheStats(t, ts)
	if capacity != 2 {
		t.Fatalf("capacity = %d, want 2", capacity)
	}
	if size != 2 {
		t.Fatalf("size = %d, want 2 (bounded by capacity)", size)
	}
	if misses != 3 {
		t.Fatalf("misses = %d, want 3", misses)
	}
	// Query 1 was evicted (LRU): re-running it must miss, while query 3 hits.
	post(t, ts, "/query", service.QueryRequest{Query: queryFor(3)})
	post(t, ts, "/query", service.QueryRequest{Query: queryFor(1)})
	hits, misses, size, _ := planCacheStats(t, ts)
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (only the re-run of query 3)", hits)
	}
	if misses != 4 {
		t.Fatalf("misses = %d, want 4 (query 1 was evicted)", misses)
	}
	if size != 2 {
		t.Fatalf("size = %d after re-insertions, want 2", size)
	}
}

// TestPlanCacheParameterized asserts that queries differing only in literal
// values normalize onto one cached skeleton (one miss, then hits) while each
// execution re-binds its own literals and returns its own answer.
func TestPlanCacheParameterized(t *testing.T) {
	ts := testServerWith(t, service.Options{})
	for i, id := range []int{1, 2, 3, 7} {
		q := fmt.Sprintf(
			`MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = %d RETURN id(p) AS who, COUNT(*) AS friends`, id)
		resp, out := post(t, ts, "/query", service.QueryRequest{Query: q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %v", id, resp.StatusCode, out)
		}
		rows := out["rows"].([]any)
		if len(rows) != 1 {
			t.Fatalf("query %d: %d rows, want 1", id, len(rows))
		}
		if who := int(rows[0].([]any)[0].(float64)); who != id {
			t.Fatalf("query %d returned who = %d: cached plan did not re-bind the literal", id, who)
		}
		hits, misses, size, _ := planCacheStats(t, ts)
		if misses != 1 || hits != i || size != 1 {
			t.Fatalf("after query %d: hits/misses/size = %d/%d/%d, want %d/1/1 (literal-differing queries must share one entry)",
				id, hits, misses, size, i)
		}
	}
}

// TestPlanCacheStatsEpochInvalidation re-seals the graph and asserts the
// cached skeleton stops being hit: the statistics epoch is part of the key,
// so plans shaped for stale cardinalities age out instead of being reused.
func TestPlanCacheStatsEpochInvalidation(t *testing.T) {
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.03, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := service.NewWith(ds, exec.ModeFused, service.Options{})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		resp, out := post(t, ts, "/query", service.QueryRequest{Query: countFriendsQuery})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %v", resp.StatusCode, out)
		}
	}
	hits, misses, _, _ := planCacheStats(t, ts)
	if hits != 1 || misses != 1 {
		t.Fatalf("before re-seal: hits/misses = %d/%d, want 1/1", hits, misses)
	}
	epoch := ds.Graph.StatsEpoch()
	ds.Graph.SealCSR() // rebuilds statistics under a bumped epoch
	if got := ds.Graph.StatsEpoch(); got <= epoch {
		t.Fatalf("StatsEpoch after re-seal = %d, want > %d", got, epoch)
	}
	resp, out := post(t, ts, "/query", service.QueryRequest{Query: countFriendsQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if _, misses, _, _ = planCacheStats(t, ts); misses != 2 {
		t.Fatalf("misses after re-seal = %d, want 2 (stale-epoch plan must not be reused)", misses)
	}
}

// TestConcurrentQueries fires parallel /query and /ldbc requests at one
// server. Each request gets its own engine value, so this passes under -race;
// with a shared engine the per-run state would collide.
func TestConcurrentQueries(t *testing.T) {
	ts := testServerWith(t, service.Options{Parallel: 2})
	queries := []string{
		countFriendsQuery,
		`MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 2 RETURN COUNT(*) AS friends`,
		`MATCH (p:Person)-[:KNOWS]->(f)-[:KNOWS]->(g) WHERE id(p) = 1 RETURN COUNT(*) AS fof`,
	}
	// Sequential reference results.
	want := make([]any, len(queries))
	for i, q := range queries {
		resp, out := post(t, ts, "/query", service.QueryRequest{Query: q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %d: status %d: %v", i, resp.StatusCode, out)
		}
		want[i] = out["rows"]
	}
	// Raw posts below: the shared post helper touches testing.T, which must
	// stay on the test goroutine.
	rawPost := func(q string) (int, map[string]any, error) {
		raw, _ := json.Marshal(service.QueryRequest{Query: q})
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(raw)))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, out, nil
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				qi := (w + i) % len(queries)
				code, out, err := rawPost(queries[qi])
				if err != nil || code != http.StatusOK {
					errs <- fmt.Sprintf("worker %d: status %d err %v: %v", w, code, err, out)
					return
				}
				if !reflect.DeepEqual(out["rows"], want[qi]) {
					errs <- fmt.Sprintf("worker %d query %d: rows %v, want %v", w, qi, out["rows"], want[qi])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
