package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/service"
	"ges/internal/vector"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.03, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(ds, exec.ModeFused)
	ts := httptest.NewServer(srv.Mux())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, out := post(t, ts, "/query", service.QueryRequest{
		Query: `MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1
		        RETURN COUNT(*) AS friends`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	cols := out["columns"].([]any)
	if len(cols) != 1 || cols[0] != "friends" {
		t.Fatalf("columns = %v", cols)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	stats := out["stats"].(map[string]any)
	if _, ok := stats["peakIntermediateBytes"]; !ok {
		t.Fatalf("stats = %v", stats)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := testServer(t)
	// Parse error.
	resp, out := post(t, ts, "/query", service.QueryRequest{Query: "MATCH bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status = %d: %v", resp.StatusCode, out)
	}
	if !strings.Contains(out["error"].(string), "cypher") {
		t.Fatalf("error = %v", out["error"])
	}
	// Malformed JSON body.
	r2, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status = %d", r2.StatusCode)
	}
}

func TestLDBCEndpointWithExplicitParams(t *testing.T) {
	ts := testServer(t)
	resp, out := post(t, ts, "/ldbc", service.LDBCRequest{
		Name:   "is1",
		Params: map[string]any{"personId": 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("IS1 rows = %v", rows)
	}
}

func TestLDBCEndpointAutoParams(t *testing.T) {
	ts := testServer(t)
	resp, out := post(t, ts, "/ldbc", service.LDBCRequest{Name: "IC9"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	stats := out["stats"].(map[string]any)
	if _, ok := stats["params"]; !ok {
		t.Fatal("auto-drawn params not echoed")
	}
}

func TestLDBCEndpointUpdateAndStats(t *testing.T) {
	ts := testServer(t)
	resp, out := post(t, ts, "/ldbc", service.LDBCRequest{Name: "IU8"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("IU8 status = %d: %v", resp.StatusCode, out)
	}
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["commitVersion"].(float64) < 1 {
		t.Fatalf("update did not commit: %v", st)
	}
}

func TestLDBCEndpointUnknownQuery(t *testing.T) {
	ts := testServer(t)
	resp, _ := post(t, ts, "/ldbc", service.LDBCRequest{Name: "IC99"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestLDBCEndpointBadParamType(t *testing.T) {
	ts := testServer(t)
	resp, _ := post(t, ts, "/ldbc", service.LDBCRequest{
		Name:   "IS1",
		Params: map[string]any{"personId": []any{1, 2}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestStatsEndpointOverlaySection(t *testing.T) {
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.03, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Inline reseals keep the counters deterministic under `go test`.
	ds.Graph.SetResealSubmit(nil)
	srv := service.New(ds, exec.ModeFused)
	ts := httptest.NewServer(srv.Mux())
	t.Cleanup(ts.Close)

	getOverlay := func() map[string]any {
		t.Helper()
		r, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var st map[string]any
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		ov, ok := st["overlay"].(map[string]any)
		if !ok {
			t.Fatalf("no overlay section in /stats: %v", st)
		}
		return ov
	}

	// Freshly sealed: every family has an image, no delta, no reseals yet.
	ov := getOverlay()
	if ov["families"].(float64) <= 0 || ov["sealed"] != ov["families"] {
		t.Fatalf("sealed/families = %v/%v", ov["sealed"], ov["families"])
	}
	if ov["withDelta"].(float64) != 0 || ov["reseals"].(float64) != 0 {
		t.Fatalf("fresh overlay not empty: %v", ov)
	}
	if ov["statsEpoch"].(float64) < 1 {
		t.Fatalf("statsEpoch = %v", ov["statsEpoch"])
	}
	fams := ov["perFamily"].([]any)
	if len(fams) == 0 {
		t.Fatal("perFamily empty")
	}
	f0 := fams[0].(map[string]any)
	for _, k := range []string{"src", "type", "dst", "dir", "sealed", "sealedEntries", "inserts", "tombstones", "deltaFraction"} {
		if _, ok := f0[k]; !ok {
			t.Fatalf("perFamily missing %q: %v", k, f0)
		}
	}

	// Overlay mutations surface as delta depth and staleness; a forced
	// reseal advances the counters and the stats epoch.
	epoch := ov["statsEpoch"].(float64)
	h := ds.Graph
	if err := h.AddEdge(ds.H.Knows, ds.Persons[0], ds.Persons[1], vector.Date(1)); err != nil {
		t.Fatal(err)
	}
	ov = getOverlay()
	if ov["withDelta"].(float64) == 0 || ov["inserts"].(float64) == 0 {
		t.Fatalf("overlay insert not visible: %v", ov)
	}
	if ov["statsStaleOps"].(float64) == 0 {
		t.Fatalf("staleness counter not bumped: %v", ov)
	}
	if ov["maxDeltaFraction"].(float64) <= 0 {
		t.Fatalf("maxDeltaFraction = %v", ov["maxDeltaFraction"])
	}

	h.SetResealPolicy(1e-9, 1)
	if err := h.AddEdge(ds.H.Knows, ds.Persons[1], ds.Persons[2], vector.Date(2)); err != nil {
		t.Fatal(err)
	}
	ov = getOverlay()
	if ov["reseals"].(float64) == 0 {
		t.Fatalf("reseal counter did not advance: %v", ov)
	}
	if ov["statsEpoch"].(float64) <= epoch {
		t.Fatalf("reseal did not bump the stats epoch: %v <= %v", ov["statsEpoch"], epoch)
	}
}

func TestStatsEndpointMemorySection(t *testing.T) {
	ts := testServer(t)

	getMemory := func() map[string]any {
		t.Helper()
		r, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var st map[string]any
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		mem, ok := st["memory"].(map[string]any)
		if !ok {
			t.Fatalf("no memory section in /stats: %v", st)
		}
		return mem
	}

	// Shape first: the gauges exist even before any query traffic.
	mem := getMemory()
	if mem["recycling"] != true {
		t.Fatalf("recycling = %v, want true by default", mem["recycling"])
	}
	for _, k := range []string{"poolGets", "poolPuts", "poolHitRate", "liveArenaBytes", "classes", "objects", "gc"} {
		if _, ok := mem[k]; !ok {
			t.Fatalf("memory section missing %q: %v", k, mem)
		}
	}
	gc := mem["gc"].(map[string]any)
	for _, k := range []string{"cycles", "pauseTotalMs", "heapAllocBytes", "totalAllocBytes"} {
		if _, ok := gc[k]; !ok {
			t.Fatalf("gc section missing %q: %v", k, gc)
		}
	}

	// Query traffic draws arenas and buffers from the shared server pool, so
	// the counters move and every checked-out buffer comes back.
	for i := 0; i < 3; i++ {
		resp, out := post(t, ts, "/query", service.QueryRequest{
			Query: `MATCH (p:Person)-[:KNOWS]->(f)-[:KNOWS]->(g) RETURN COUNT(*) AS n`,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %v", resp.StatusCode, out)
		}
	}
	mem = getMemory()
	if mem["poolGets"].(float64) <= 0 {
		t.Fatalf("poolGets = %v after query traffic", mem["poolGets"])
	}
	objects := mem["objects"].(map[string]any)
	arenas := objects["arenas"].(map[string]any)
	if arenas["gets"].(float64) < 3 || arenas["puts"].(float64) < arenas["gets"].(float64) {
		t.Fatalf("arena counters did not bracket requests: %v", arenas)
	}
	if mem["liveArenaBytes"].(float64) != 0 {
		t.Fatalf("liveArenaBytes = %v after release, want 0", mem["liveArenaBytes"])
	}
	// The repeated identical query recycles its predecessor's buffers.
	if mem["poolHitRate"].(float64) <= 0 {
		t.Fatalf("poolHitRate = %v after repeated queries", mem["poolHitRate"])
	}
}
