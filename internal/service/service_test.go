package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/service"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.03, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(ds, exec.ModeFused)
	ts := httptest.NewServer(srv.Mux())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, out := post(t, ts, "/query", service.QueryRequest{
		Query: `MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1
		        RETURN COUNT(*) AS friends`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	cols := out["columns"].([]any)
	if len(cols) != 1 || cols[0] != "friends" {
		t.Fatalf("columns = %v", cols)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	stats := out["stats"].(map[string]any)
	if _, ok := stats["peakIntermediateBytes"]; !ok {
		t.Fatalf("stats = %v", stats)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := testServer(t)
	// Parse error.
	resp, out := post(t, ts, "/query", service.QueryRequest{Query: "MATCH bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status = %d: %v", resp.StatusCode, out)
	}
	if !strings.Contains(out["error"].(string), "cypher") {
		t.Fatalf("error = %v", out["error"])
	}
	// Malformed JSON body.
	r2, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status = %d", r2.StatusCode)
	}
}

func TestLDBCEndpointWithExplicitParams(t *testing.T) {
	ts := testServer(t)
	resp, out := post(t, ts, "/ldbc", service.LDBCRequest{
		Name:   "is1",
		Params: map[string]any{"personId": 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("IS1 rows = %v", rows)
	}
}

func TestLDBCEndpointAutoParams(t *testing.T) {
	ts := testServer(t)
	resp, out := post(t, ts, "/ldbc", service.LDBCRequest{Name: "IC9"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	stats := out["stats"].(map[string]any)
	if _, ok := stats["params"]; !ok {
		t.Fatal("auto-drawn params not echoed")
	}
}

func TestLDBCEndpointUpdateAndStats(t *testing.T) {
	ts := testServer(t)
	resp, out := post(t, ts, "/ldbc", service.LDBCRequest{Name: "IU8"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("IU8 status = %d: %v", resp.StatusCode, out)
	}
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["commitVersion"].(float64) < 1 {
		t.Fatalf("update did not commit: %v", st)
	}
}

func TestLDBCEndpointUnknownQuery(t *testing.T) {
	ts := testServer(t)
	resp, _ := post(t, ts, "/ldbc", service.LDBCRequest{Name: "IC99"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestLDBCEndpointBadParamType(t *testing.T) {
	ts := testServer(t)
	resp, _ := post(t, ts, "/ldbc", service.LDBCRequest{
		Name:   "IS1",
		Params: map[string]any{"personId": []any{1, 2}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
