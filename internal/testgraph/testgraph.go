// Package testgraph builds a tiny, hand-checkable label property graph used
// by tests across packages: a miniature social network with persons, knows
// edges, posts, comments and likes, mirroring the shape (though not the
// scale) of the paper's LDBC workload.
package testgraph

import (
	"ges/internal/catalog"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Schema bundles the IDs tests need.
type Schema struct {
	Person, Post, Comment, Forum, Tag catalog.LabelID

	Knows, HasCreator, Likes, ReplyOf, ContainerOf, HasTag, HasMember catalog.EdgeTypeID

	// Person property IDs.
	PFirstName, PLastName, PCreation catalog.PropID
	// Message (post/comment share layout) property IDs.
	MContent, MLength, MCreation catalog.PropID
	// Forum property IDs.
	FTitle catalog.PropID
	// Tag property IDs.
	TName catalog.PropID
}

// NewSchema registers the test schema on a fresh catalog.
func NewSchema(cat *catalog.Catalog) *Schema {
	s := &Schema{}
	s.Person = catalog.Must(cat.AddLabel("Person",
		catalog.PropDef{Name: "firstName", Kind: vector.KindString},
		catalog.PropDef{Name: "lastName", Kind: vector.KindString},
		catalog.PropDef{Name: "creationDate", Kind: vector.KindDate},
	))
	s.Post = catalog.Must(cat.AddLabel("Post",
		catalog.PropDef{Name: "content", Kind: vector.KindString},
		catalog.PropDef{Name: "length", Kind: vector.KindInt64},
		catalog.PropDef{Name: "creationDate", Kind: vector.KindDate},
	))
	s.Comment = catalog.Must(cat.AddLabel("Comment",
		catalog.PropDef{Name: "content", Kind: vector.KindString},
		catalog.PropDef{Name: "length", Kind: vector.KindInt64},
		catalog.PropDef{Name: "creationDate", Kind: vector.KindDate},
	))
	s.Forum = catalog.Must(cat.AddLabel("Forum",
		catalog.PropDef{Name: "title", Kind: vector.KindString},
	))
	s.Tag = catalog.Must(cat.AddLabel("Tag",
		catalog.PropDef{Name: "name", Kind: vector.KindString},
	))
	s.PFirstName, s.PLastName, s.PCreation = 0, 1, 2
	s.MContent, s.MLength, s.MCreation = 0, 1, 2
	s.FTitle, s.TName = 0, 0

	s.Knows = catalog.Must(cat.AddEdgeType("KNOWS",
		catalog.PropDef{Name: "creationDate", Kind: vector.KindDate}))
	s.HasCreator = catalog.Must(cat.AddEdgeType("HAS_CREATOR"))
	s.Likes = catalog.Must(cat.AddEdgeType("LIKES",
		catalog.PropDef{Name: "creationDate", Kind: vector.KindDate}))
	s.ReplyOf = catalog.Must(cat.AddEdgeType("REPLY_OF"))
	s.ContainerOf = catalog.Must(cat.AddEdgeType("CONTAINER_OF"))
	s.HasTag = catalog.Must(cat.AddEdgeType("HAS_TAG"))
	s.HasMember = catalog.Must(cat.AddEdgeType("HAS_MEMBER",
		catalog.PropDef{Name: "joinDate", Kind: vector.KindDate}))
	return s
}

// Fixture is the built test graph plus handles to its content.
type Fixture struct {
	Cat    *catalog.Catalog
	Schema *Schema
	Graph  *storage.Graph

	Persons  []vector.VID // ext IDs 100..109
	Posts    []vector.VID // ext IDs 200..206
	Comments []vector.VID // ext IDs 300..304
}

// New builds the fixture:
//
//	persons p0..p9 (ext 100..109), knows edges forming a known topology:
//	  p0-p1, p0-p2, p0-p3, p1-p4, p2-p4, p2-p5, p3-p6, p4-p7, p5-p8, p6-p9
//	(knows is symmetric: both directions inserted)
//	posts  m0..m6 (ext 200..206) created by p1,p2,p2,p4,p5,p6,p9
//	comments c0..c4 (ext 300..304) created by p4,p5,p1,p7,p8; c_i replies to
//	post m_{i%3}
//	likes: p0 likes m0,m1; p1 likes m2; p7 likes m0
func New() *Fixture {
	cat := catalog.New()
	s := NewSchema(cat)
	g := storage.NewGraph(cat)
	f := &Fixture{Cat: cat, Schema: s, Graph: g}

	firstNames := []string{"Ada", "Bob", "Cyn", "Dan", "Eve", "Fay", "Gus", "Hal", "Ivy", "Joe"}
	for i := 0; i < 10; i++ {
		v, err := g.AddVertex(s.Person, int64(100+i),
			vector.String_(firstNames[i]),
			vector.String_("Smith"),
			vector.Date(int64(19000+i)),
		)
		if err != nil {
			panic(err)
		}
		f.Persons = append(f.Persons, v)
	}
	knows := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 4}, {2, 5}, {3, 6}, {4, 7}, {5, 8}, {6, 9}}
	for i, e := range knows {
		d := vector.Date(int64(19500 + i))
		must(g.AddEdge(s.Knows, f.Persons[e[0]], f.Persons[e[1]], d))
		must(g.AddEdge(s.Knows, f.Persons[e[1]], f.Persons[e[0]], d))
	}
	postCreators := []int{1, 2, 2, 4, 5, 6, 9}
	for i, c := range postCreators {
		v, err := g.AddVertex(s.Post, int64(200+i),
			vector.String_("post-content"),
			vector.Int64(int64(100+10*i)), // lengths 100,110,...,160
			vector.Date(int64(19800+i)),
		)
		if err != nil {
			panic(err)
		}
		f.Posts = append(f.Posts, v)
		must(g.AddEdge(s.HasCreator, v, f.Persons[c]))
	}
	commentCreators := []int{4, 5, 1, 7, 8}
	for i, c := range commentCreators {
		v, err := g.AddVertex(s.Comment, int64(300+i),
			vector.String_("comment-content"),
			vector.Int64(int64(20+5*i)), // lengths 20,25,30,35,40
			vector.Date(int64(19900+i)),
		)
		if err != nil {
			panic(err)
		}
		f.Comments = append(f.Comments, v)
		must(g.AddEdge(s.HasCreator, v, f.Persons[c]))
		must(g.AddEdge(s.ReplyOf, v, f.Posts[i%3]))
	}
	likes := [][2]int{{0, 0}, {0, 1}, {1, 2}, {7, 0}}
	for i, e := range likes {
		must(g.AddEdge(s.Likes, f.Persons[e[0]], f.Posts[e[1]], vector.Date(int64(19950+i))))
	}
	return f
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
