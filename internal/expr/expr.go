// Package expr provides the small typed expression language used by Filter
// and Projection operators: column references, literals, comparisons,
// boolean connectives, arithmetic, IN-lists and string predicates.
//
// Expressions evaluate two ways, matching the executor's two data paths:
// compiled against an f-Block they become per-row closures running over the
// block's contiguous columns (the factorized, vectorized path), and compiled
// against a flat-block schema they evaluate over materialized tuple rows
// (the block-based fallback path).
package expr

import (
	"fmt"
	"strings"

	"ges/internal/core"
	"ges/internal/vector"
)

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Expr is a node of an expression tree.
type Expr interface {
	fmt.Stringer
	// Columns appends the names of all referenced columns to dst.
	Columns(dst []string) []string
}

// Col references an attribute by name.
type Col struct{ Name string }

func (c Col) String() string                { return c.Name }
func (c Col) Columns(dst []string) []string { return append(dst, c.Name) }

// Lit is a constant.
type Lit struct{ Val vector.Value }

func (l Lit) String() string                { return l.Val.String() }
func (l Lit) Columns(dst []string) []string { return dst }

// Param is a placeholder for the Idx-th element of a per-execution
// parameter vector (the $k literals the service's parameterized plan cache
// normalizes out of query text). Cached plan skeletons carry Params;
// SubstParams replaces them with Lits before the plan executes, so the
// compiled evaluators and the vectorized filter fast paths only ever see
// constants.
type Param struct{ Idx int }

func (p Param) String() string                { return fmt.Sprintf("$%d", p.Idx) }
func (p Param) Columns(dst []string) []string { return dst }

// SubstParams returns e with every Param replaced by the matching literal.
// Nodes without parameters are returned as-is, so shared plan skeletons are
// never mutated.
func SubstParams(e Expr, params []vector.Value) Expr {
	switch n := e.(type) {
	case Param:
		if n.Idx >= 0 && n.Idx < len(params) {
			return Lit{Val: params[n.Idx]}
		}
		return n
	case Cmp:
		return Cmp{Op: n.Op, L: SubstParams(n.L, params), R: SubstParams(n.R, params)}
	case And:
		return And{L: SubstParams(n.L, params), R: SubstParams(n.R, params)}
	case Or:
		return Or{L: SubstParams(n.L, params), R: SubstParams(n.R, params)}
	case Not:
		return Not{X: SubstParams(n.X, params)}
	case Arith:
		return Arith{Op: n.Op, L: SubstParams(n.L, params), R: SubstParams(n.R, params)}
	case In:
		return In{X: SubstParams(n.X, params), List: n.List}
	case StrPred:
		return StrPred{Op: n.Op, L: SubstParams(n.L, params), R: n.R}
	default:
		return e
	}
}

// HasParams reports whether e contains any Param node.
func HasParams(e Expr) bool {
	switch n := e.(type) {
	case Param:
		return true
	case Cmp:
		return HasParams(n.L) || HasParams(n.R)
	case And:
		return HasParams(n.L) || HasParams(n.R)
	case Or:
		return HasParams(n.L) || HasParams(n.R)
	case Not:
		return HasParams(n.X)
	case Arith:
		return HasParams(n.L) || HasParams(n.R)
	case In:
		return HasParams(n.X)
	case StrPred:
		return HasParams(n.L)
	default:
		return false
	}
}

// Cmp compares two sub-expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (c Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }
func (c Cmp) Columns(dst []string) []string {
	return c.R.Columns(c.L.Columns(dst))
}

// And is logical conjunction.
type And struct{ L, R Expr }

func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }
func (a And) Columns(dst []string) []string {
	return a.R.Columns(a.L.Columns(dst))
}

// Or is logical disjunction.
type Or struct{ L, R Expr }

func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }
func (o Or) Columns(dst []string) []string {
	return o.R.Columns(o.L.Columns(dst))
}

// Not negates a boolean sub-expression.
type Not struct{ X Expr }

func (n Not) String() string                { return fmt.Sprintf("(NOT %s)", n.X) }
func (n Not) Columns(dst []string) []string { return n.X.Columns(dst) }

// Arith combines two numeric sub-expressions.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

func (a Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }
func (a Arith) Columns(dst []string) []string {
	return a.R.Columns(a.L.Columns(dst))
}

// In tests membership of X in a literal list.
type In struct {
	X    Expr
	List []vector.Value
}

func (i In) String() string {
	parts := make([]string, len(i.List))
	for j, v := range i.List {
		parts[j] = v.String()
	}
	return fmt.Sprintf("(%s IN [%s])", i.X, strings.Join(parts, ","))
}
func (i In) Columns(dst []string) []string { return i.X.Columns(dst) }

// StrOp is a string predicate operator.
type StrOp uint8

// String predicate operators.
const (
	Contains StrOp = iota
	StartsWith
	EndsWith
)

// StrPred applies a string predicate to L with literal pattern R.
type StrPred struct {
	Op StrOp
	L  Expr
	R  string
}

func (s StrPred) String() string {
	name := [...]string{"CONTAINS", "STARTS WITH", "ENDS WITH"}[s.Op]
	return fmt.Sprintf("(%s %s %q)", s.L, name, s.R)
}
func (s StrPred) Columns(dst []string) []string { return s.L.Columns(dst) }

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

// Getter produces the value of one expression for row i of some bound data
// source.
type Getter func(i int) vector.Value

// Binding resolves column names to per-row getters.
type Binding interface {
	// Bind returns a getter for the named column, or an error when the
	// column is not present in the bound source.
	Bind(name string) (Getter, error)
}

// blockBinding binds names to columns of an f-Block.
type blockBinding struct{ b *core.FBlock }

func (bb blockBinding) Bind(name string) (Getter, error) {
	c := bb.b.ColumnByName(name)
	if c == nil {
		return nil, fmt.Errorf("expr: column %q not in block schema %v", name, bb.b.Schema())
	}
	return c.Get, nil
}

// flatBinding binds names to column positions of a FlatBlock.
type flatBinding struct{ f *core.FlatBlock }

func (fb flatBinding) Bind(name string) (Getter, error) {
	j := fb.f.ColIndex(name)
	if j < 0 {
		return nil, fmt.Errorf("expr: column %q not in flat schema %v", name, fb.f.Names)
	}
	rows := fb.f
	return func(i int) vector.Value { return rows.Rows[i][j] }, nil
}

// Bind compiles e against an arbitrary binding (used by the fused
// expand-filter predicate, which binds column names to vertex property
// reads).
func Bind(e Expr, b Binding) (Getter, error) { return compile(e, b) }

// BindBlock compiles e against an f-Block.
func BindBlock(e Expr, b *core.FBlock) (Getter, error) {
	return compile(e, blockBinding{b})
}

// BindFlat compiles e against a FlatBlock.
func BindFlat(e Expr, f *core.FlatBlock) (Getter, error) {
	return compile(e, flatBinding{f})
}

func compile(e Expr, bind Binding) (Getter, error) {
	switch n := e.(type) {
	case Col:
		return bind.Bind(n.Name)
	case Lit:
		v := n.Val
		return func(int) vector.Value { return v }, nil
	case Cmp:
		l, err := compile(n.L, bind)
		if err != nil {
			return nil, err
		}
		r, err := compile(n.R, bind)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(i int) vector.Value {
			c := vector.Compare(l(i), r(i))
			var ok bool
			switch op {
			case EQ:
				ok = c == 0
			case NE:
				ok = c != 0
			case LT:
				ok = c < 0
			case LE:
				ok = c <= 0
			case GT:
				ok = c > 0
			case GE:
				ok = c >= 0
			}
			return vector.Bool(ok)
		}, nil
	case And:
		l, err := compile(n.L, bind)
		if err != nil {
			return nil, err
		}
		r, err := compile(n.R, bind)
		if err != nil {
			return nil, err
		}
		return func(i int) vector.Value {
			if !l(i).AsBool() {
				return vector.Bool(false)
			}
			return vector.Bool(r(i).AsBool())
		}, nil
	case Or:
		l, err := compile(n.L, bind)
		if err != nil {
			return nil, err
		}
		r, err := compile(n.R, bind)
		if err != nil {
			return nil, err
		}
		return func(i int) vector.Value {
			if l(i).AsBool() {
				return vector.Bool(true)
			}
			return vector.Bool(r(i).AsBool())
		}, nil
	case Not:
		x, err := compile(n.X, bind)
		if err != nil {
			return nil, err
		}
		return func(i int) vector.Value { return vector.Bool(!x(i).AsBool()) }, nil
	case Arith:
		l, err := compile(n.L, bind)
		if err != nil {
			return nil, err
		}
		r, err := compile(n.R, bind)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(i int) vector.Value { return evalArith(op, l(i), r(i)) }, nil
	case In:
		x, err := compile(n.X, bind)
		if err != nil {
			return nil, err
		}
		list := n.List
		return func(i int) vector.Value {
			v := x(i)
			for _, item := range list {
				if vector.Equal(v, item) {
					return vector.Bool(true)
				}
			}
			return vector.Bool(false)
		}, nil
	case StrPred:
		l, err := compile(n.L, bind)
		if err != nil {
			return nil, err
		}
		op, pat := n.Op, n.R
		return func(i int) vector.Value {
			s := l(i).S
			var ok bool
			switch op {
			case Contains:
				ok = strings.Contains(s, pat)
			case StartsWith:
				ok = strings.HasPrefix(s, pat)
			case EndsWith:
				ok = strings.HasSuffix(s, pat)
			}
			return vector.Bool(ok)
		}, nil
	case Param:
		return nil, fmt.Errorf("expr: unbound parameter $%d — plans with parameters must pass through SubstParams before execution", n.Idx)
	default:
		return nil, fmt.Errorf("expr: unsupported expression %T", e)
	}
}

func evalArith(op ArithOp, a, b vector.Value) vector.Value {
	if a.Kind == vector.KindFloat64 || b.Kind == vector.KindFloat64 {
		af, bf := asFloat(a), asFloat(b)
		switch op {
		case Add:
			return vector.Float64(af + bf)
		case Sub:
			return vector.Float64(af - bf)
		case Mul:
			return vector.Float64(af * bf)
		case Div:
			if bf == 0 {
				return vector.Float64(0)
			}
			return vector.Float64(af / bf)
		}
	}
	switch op {
	case Add:
		return vector.Int64(a.I + b.I)
	case Sub:
		return vector.Int64(a.I - b.I)
	case Mul:
		return vector.Int64(a.I * b.I)
	case Div:
		if b.I == 0 {
			return vector.Int64(0)
		}
		return vector.Int64(a.I / b.I)
	}
	return vector.Value{}
}

func asFloat(v vector.Value) float64 {
	if v.Kind == vector.KindFloat64 {
		return v.F
	}
	return float64(v.I)
}

// ---------------------------------------------------------------------------
// Convenience constructors
// ---------------------------------------------------------------------------

// C returns a column reference.
func C(name string) Expr { return Col{Name: name} }

// LInt returns an int64 literal.
func LInt(v int64) Expr { return Lit{Val: vector.Int64(v)} }

// LStr returns a string literal.
func LStr(v string) Expr { return Lit{Val: vector.String_(v)} }

// LDate returns a date literal (days since epoch).
func LDate(days int64) Expr { return Lit{Val: vector.Date(days)} }

// Gt builds l > r.
func Gt(l, r Expr) Expr { return Cmp{Op: GT, L: l, R: r} }

// Ge builds l >= r.
func Ge(l, r Expr) Expr { return Cmp{Op: GE, L: l, R: r} }

// Lt builds l < r.
func Lt(l, r Expr) Expr { return Cmp{Op: LT, L: l, R: r} }

// Le builds l <= r.
func Le(l, r Expr) Expr { return Cmp{Op: LE, L: l, R: r} }

// Eq builds l = r.
func Eq(l, r Expr) Expr { return Cmp{Op: EQ, L: l, R: r} }

// Ne builds l <> r.
func Ne(l, r Expr) Expr { return Cmp{Op: NE, L: l, R: r} }
