package expr_test

import (
	"strings"
	"testing"
	"testing/quick"

	"ges/internal/core"
	"ges/internal/expr"
	"ges/internal/vector"
)

// block builds a one-node block with int64 column "a" and string column "s".
func block(av []int64, sv []string) *core.FBlock {
	a := vector.NewColumn("a", vector.KindInt64)
	for _, v := range av {
		a.AppendInt64(v)
	}
	s := vector.NewColumn("s", vector.KindString)
	for _, v := range sv {
		s.AppendString(v)
	}
	return core.NewFBlock(a, s)
}

func TestComparisonsOnBlock(t *testing.T) {
	b := block([]int64{1, 5, 10}, []string{"x", "y", "z"})
	cases := []struct {
		e    expr.Expr
		want []bool
	}{
		{expr.Gt(expr.C("a"), expr.LInt(4)), []bool{false, true, true}},
		{expr.Ge(expr.C("a"), expr.LInt(5)), []bool{false, true, true}},
		{expr.Lt(expr.C("a"), expr.LInt(5)), []bool{true, false, false}},
		{expr.Le(expr.C("a"), expr.LInt(5)), []bool{true, true, false}},
		{expr.Eq(expr.C("a"), expr.LInt(5)), []bool{false, true, false}},
		{expr.Ne(expr.C("a"), expr.LInt(5)), []bool{true, false, true}},
		{expr.Eq(expr.C("s"), expr.LStr("y")), []bool{false, true, false}},
		{expr.And{L: expr.Gt(expr.C("a"), expr.LInt(1)), R: expr.Lt(expr.C("a"), expr.LInt(10))},
			[]bool{false, true, false}},
		{expr.Or{L: expr.Eq(expr.C("a"), expr.LInt(1)), R: expr.Eq(expr.C("a"), expr.LInt(10))},
			[]bool{true, false, true}},
		{expr.Not{X: expr.Eq(expr.C("a"), expr.LInt(1))}, []bool{false, true, true}},
		{expr.In{X: expr.C("a"), List: []vector.Value{vector.Int64(1), vector.Int64(10)}},
			[]bool{true, false, true}},
		{expr.StrPred{Op: expr.Contains, L: expr.C("s"), R: "y"}, []bool{false, true, false}},
		{expr.StrPred{Op: expr.StartsWith, L: expr.C("s"), R: "z"}, []bool{false, false, true}},
		{expr.StrPred{Op: expr.EndsWith, L: expr.C("s"), R: "x"}, []bool{true, false, false}},
	}
	for _, c := range cases {
		get, err := expr.BindBlock(c.e, b)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		for i, want := range c.want {
			if got := get(i).AsBool(); got != want {
				t.Errorf("%s at row %d = %v, want %v", c.e, i, got, want)
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	b := block([]int64{6}, []string{""})
	cases := []struct {
		op   expr.ArithOp
		r    expr.Expr
		want int64
	}{
		{expr.Add, expr.LInt(4), 10},
		{expr.Sub, expr.LInt(4), 2},
		{expr.Mul, expr.LInt(4), 24},
		{expr.Div, expr.LInt(3), 2},
		{expr.Div, expr.LInt(0), 0}, // guarded division
	}
	for _, c := range cases {
		get, err := expr.BindBlock(expr.Arith{Op: c.op, L: expr.C("a"), R: c.r}, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := get(0).I; got != c.want {
			t.Errorf("6 %s %s = %d, want %d", c.op, c.r, got, c.want)
		}
	}
	// Mixed float arithmetic promotes.
	get, err := expr.BindBlock(expr.Arith{Op: expr.Add, L: expr.C("a"), R: expr.Lit{Val: vector.Float64(0.5)}}, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := get(0); got.Kind != vector.KindFloat64 || got.F != 6.5 {
		t.Fatalf("6 + 0.5 = %v", got)
	}
}

func TestBindFlat(t *testing.T) {
	fb := core.NewFlatBlock([]string{"a"}, []vector.Kind{vector.KindInt64})
	fb.AppendOwned([]vector.Value{vector.Int64(7)})
	get, err := expr.BindFlat(expr.Gt(expr.C("a"), expr.LInt(3)), fb)
	if err != nil {
		t.Fatal(err)
	}
	if !get(0).AsBool() {
		t.Fatal("7 > 3 must hold")
	}
}

func TestBindUnknownColumn(t *testing.T) {
	b := block([]int64{1}, []string{""})
	if _, err := expr.BindBlock(expr.C("ghost"), b); err == nil {
		t.Fatal("unknown column must fail to bind")
	}
	fb := core.NewFlatBlock(nil, nil)
	if _, err := expr.BindFlat(expr.C("ghost"), fb); err == nil {
		t.Fatal("unknown flat column must fail to bind")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := expr.And{
		L: expr.Gt(expr.C("x"), expr.C("y")),
		R: expr.In{X: expr.C("z"), List: nil},
	}
	got := e.Columns(nil)
	want := "x,y,z"
	if strings.Join(got, ",") != want {
		t.Fatalf("Columns = %v, want %s", got, want)
	}
}

func TestStringRendering(t *testing.T) {
	e := expr.And{
		L: expr.Gt(expr.C("a"), expr.LInt(3)),
		R: expr.StrPred{Op: expr.Contains, L: expr.C("s"), R: "q"},
	}
	s := e.String()
	for _, frag := range []string{"a", ">", "3", "AND", "CONTAINS"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

// Property: comparison evaluation agrees with direct integer comparison.
func TestComparisonProperty(t *testing.T) {
	f := func(vals []int64, threshold int64) bool {
		if len(vals) == 0 {
			return true
		}
		col := vector.NewColumn("a", vector.KindInt64)
		for _, v := range vals {
			col.AppendInt64(v)
		}
		b := core.NewFBlock(col)
		get, err := expr.BindBlock(expr.Le(expr.C("a"), expr.LInt(threshold)), b)
		if err != nil {
			return false
		}
		for i, v := range vals {
			if get(i).AsBool() != (v <= threshold) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
