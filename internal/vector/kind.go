// Package vector provides the low-level columnar building blocks of the GES
// executor: typed scalar values, typed columns stored in contiguous slices,
// lazy adjacency-reference columns used by the pointer-based join, and the
// bitset selection vectors attached to every f-Tree node.
//
// Everything in this package is deliberately allocation-conscious: columns
// are plain slices, selection vectors are word-packed bitsets, and adjacency
// references hold (pointer,length) pairs into storage-owned memory rather
// than copies, mirroring the cache-efficiency goals of the paper (§3.2, §5).
package vector

import "fmt"

// Kind identifies the runtime type of a Value or Column.
type Kind uint8

// The supported scalar kinds. KindVID is a dense internal vertex identifier
// (uint32); KindDate is a day-granularity date stored as days since epoch.
const (
	KindInvalid Kind = iota
	KindInt64
	KindVID
	KindFloat64
	KindString
	KindBool
	KindDate
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "int64"
	case KindVID:
		return "vid"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(k))
	}
}

// Width returns the in-memory width in bytes of one fixed-size element of
// this kind. Strings report the slice-header size; their payload is counted
// separately by memory accounting.
func (k Kind) Width() int {
	switch k {
	case KindInt64, KindFloat64, KindDate:
		return 8
	case KindVID:
		return 4
	case KindString:
		return 16
	case KindBool:
		return 1
	default:
		return 0
	}
}

// VID is a dense internal vertex identifier. External (user-visible) 64-bit
// identifiers are mapped to dense VIDs by the storage layer so adjacency
// arrays and intermediate columns stay compact (§5, Graph Storage).
type VID uint32

// NilVID is the sentinel for "no vertex".
const NilVID VID = ^VID(0)
