package vector

import (
	"testing"
	"testing/quick"
)

func TestColumnScalarRoundTrip(t *testing.T) {
	cases := []struct {
		kind Kind
		vals []Value
	}{
		{KindInt64, []Value{Int64(1), Int64(-7), Int64(1 << 40)}},
		{KindFloat64, []Value{Float64(0.5), Float64(-2.25)}},
		{KindString, []Value{String_("a"), String_(""), String_("hello")}},
		{KindBool, []Value{Bool(true), Bool(false)}},
		{KindDate, []Value{Date(0), Date(20000)}},
		{KindVID, []Value{VIDValue(0), VIDValue(12345)}},
	}
	for _, c := range cases {
		col := NewColumn("c", c.kind)
		for _, v := range c.vals {
			col.Append(v)
		}
		if col.Len() != len(c.vals) {
			t.Fatalf("%s: Len = %d, want %d", c.kind, col.Len(), len(c.vals))
		}
		for i, v := range c.vals {
			if got := col.Get(i); !Equal(got, v) {
				t.Fatalf("%s: Get(%d) = %v, want %v", c.kind, i, got, v)
			}
		}
	}
}

func TestLazyColumnSegments(t *testing.T) {
	col := NewLazyVIDColumn("n")
	segA := []VID{1, 2, 3}
	segB := []VID{7}
	segC := []VID{9, 10}
	s, e := col.AppendSegment(segA)
	if s != 0 || e != 3 {
		t.Fatalf("segment A range [%d,%d), want [0,3)", s, e)
	}
	s, e = col.AppendSegment(segB)
	if s != 3 || e != 4 {
		t.Fatalf("segment B range [%d,%d), want [3,4)", s, e)
	}
	col.AppendSegment(segC)
	if col.Len() != 6 {
		t.Fatalf("Len = %d, want 6", col.Len())
	}
	want := []VID{1, 2, 3, 7, 9, 10}
	for i, w := range want {
		if got := col.VIDAt(i); got != w {
			t.Fatalf("VIDAt(%d) = %d, want %d", i, got, w)
		}
	}
	var walked []VID
	col.EachVID(func(i int, v VID) {
		if i != len(walked) {
			t.Fatalf("EachVID index %d out of order", i)
		}
		walked = append(walked, v)
	})
	for i, w := range want {
		if walked[i] != w {
			t.Fatalf("EachVID walk mismatch at %d", i)
		}
	}
}

func TestLazyColumnMemAccounting(t *testing.T) {
	lazy := NewLazyVIDColumn("n")
	seg := make([]VID, 10000)
	lazy.AppendSegment(seg)
	lazyBytes := lazy.MemBytes()

	lazy.Materialize()
	if lazy.Lazy() {
		t.Fatal("column still lazy after Materialize")
	}
	matBytes := lazy.MemBytes()
	if lazyBytes >= matBytes {
		t.Fatalf("lazy column (%dB) should be far cheaper than materialized (%dB)", lazyBytes, matBytes)
	}
	if matBytes < 10000*4 {
		t.Fatalf("materialized accounting %dB below payload size", matBytes)
	}
	// Pointer-based join accounting: lazy cost is per segment, not per row.
	if lazyBytes > 200 {
		t.Fatalf("lazy accounting %dB too large for a single segment header", lazyBytes)
	}
}

func TestColumnMaterializePreservesValues(t *testing.T) {
	f := func(segLens []uint8) bool {
		col := NewLazyVIDColumn("n")
		var want []VID
		next := VID(0)
		for _, l := range segLens {
			n := int(l % 9)
			seg := make([]VID, n)
			for i := range seg {
				seg[i] = next
				next++
			}
			if n > 0 {
				col.AppendSegment(seg)
			}
			want = append(want, seg...)
		}
		col.Materialize()
		if col.Len() != len(want) {
			return false
		}
		for i, w := range want {
			if col.VIDAt(i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnReset(t *testing.T) {
	col := NewColumn("x", KindInt64)
	for i := 0; i < 100; i++ {
		col.AppendInt64(int64(i))
	}
	col.Reset()
	if col.Len() != 0 {
		t.Fatalf("Len after Reset = %d", col.Len())
	}
	col.AppendInt64(42)
	if got := col.Int64At(0); got != 42 {
		t.Fatalf("value after reuse = %d", got)
	}
}

func TestColumnClone(t *testing.T) {
	col := NewColumn("s", KindString)
	col.AppendString("a")
	col.AppendString("b")
	cl := col.Clone()
	cl.AppendString("c")
	if col.Len() != 2 || cl.Len() != 3 {
		t.Fatalf("clone aliases original: orig=%d clone=%d", col.Len(), cl.Len())
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int64(1), Int64(2), -1},
		{Int64(2), Int64(2), 0},
		{Int64(3), Int64(2), 1},
		{Float64(1.5), Float64(2.5), -1},
		{String_("abc"), String_("abd"), -1},
		{Bool(false), Bool(true), -1},
		{Date(10), Date(20), -1},
		{Int64(5), Date(6), -1}, // int-like cross compare
		{VIDValue(4), Int64(4), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int64(-3), "-3"},
		{Float64(1.5), "1.5"},
		{String_("x"), "x"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{VIDValue(9), "v9"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindWidth(t *testing.T) {
	if KindInt64.Width() != 8 || KindVID.Width() != 4 || KindBool.Width() != 1 {
		t.Fatal("kind widths changed; memory accounting depends on them")
	}
}
