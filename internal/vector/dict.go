package vector

import (
	"sync"
	"sync/atomic"
)

// Dict is an append-only string dictionary backing dictionary-encoded
// columns: each distinct string is assigned a dense uint32 code in first-seen
// order, so gathers move 4-byte codes and equality predicates compare codes
// instead of string payloads. Codes are NOT order-preserving — range
// comparisons and sorts must resolve through Str.
//
// Interning takes a mutex (bulk load is single-writer; transactional overlay
// patches are rare), while Str is lock-free via an atomically published slice
// snapshot so the hot code→string resolution path never contends.
type Dict struct {
	mu    sync.Mutex
	byStr map[string]uint32
	strs  atomic.Pointer[[]string]
}

// NewDict returns a dictionary with the empty string pre-interned as code 0,
// so zero-filled code slots (Column.Grow, missing properties) resolve to the
// same typed-zero "" the scalar path produces.
func NewDict() *Dict {
	d := &Dict{byStr: map[string]uint32{"": 0}}
	zero := []string{""}
	d.strs.Store(&zero)
	return d
}

// Intern returns the code for s, assigning the next code on first sight.
func (d *Dict) Intern(s string) uint32 {
	d.mu.Lock()
	code, ok := d.byStr[s]
	if !ok {
		cur := *d.strs.Load()
		code = uint32(len(cur))
		d.byStr[s] = code
		// Publish a fresh snapshot: readers may hold the old slice, so never
		// append in place past a published length.
		next := make([]string, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = s
		d.strs.Store(&next)
	}
	d.mu.Unlock()
	return code
}

// Lookup returns the code for s without interning. ok is false when s has
// never been seen — for an equality predicate that means no row can match.
func (d *Dict) Lookup(s string) (code uint32, ok bool) {
	d.mu.Lock()
	code, ok = d.byStr[s]
	d.mu.Unlock()
	return code, ok
}

// Str resolves a code to its string. Lock-free.
func (d *Dict) Str(code uint32) string {
	return (*d.strs.Load())[code]
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int { return len(*d.strs.Load()) }

// MemBytes returns the accounted memory of the dictionary payload (string
// headers + bytes + map overhead).
func (d *Dict) MemBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 64
	for s := range d.byStr {
		n += 2*16 + 2*len(s) + 8 // slice entry + map entry
	}
	return n
}
