package vector

// ZoneSize is the number of rows covered by one zone-map entry. 2048 is a
// multiple of the 64-bit Bitset word so zone-aligned selection clears stay
// word-aligned, and small enough that a zone is a few cache lines of values.
const ZoneSize = 1 << ZoneShift

// ZoneShift converts a row index to its zone: zone = row >> ZoneShift.
const ZoneShift = 11

// ZoneMap holds per-zone min/max summaries for an int64/date/float64 column,
// rebuilt incrementally on append and widened (never narrowed) on in-place
// updates. A filter with range [lo,hi] can skip every zone whose [min,max]
// does not intersect it — before any value is gathered.
type ZoneMap struct {
	isFloat bool
	n       int // rows covered
	minI    []int64
	maxI    []int64
	minF    []float64
	maxF    []float64
}

// NewZoneMap returns an empty zone map for int64/date (isFloat=false) or
// float64 (isFloat=true) values.
func NewZoneMap(isFloat bool) *ZoneMap { return &ZoneMap{isFloat: isFloat} }

// Zones returns the number of zones currently covered.
func (z *ZoneMap) Zones() int { return (z.n + ZoneSize - 1) / ZoneSize }

// Rows returns the number of rows covered.
func (z *ZoneMap) Rows() int { return z.n }

// AppendInt64 folds one appended int64/date value into the tail zone.
func (z *ZoneMap) AppendInt64(v int64) {
	if z.n&(ZoneSize-1) == 0 {
		z.minI = append(z.minI, v)
		z.maxI = append(z.maxI, v)
	} else {
		last := len(z.minI) - 1
		if v < z.minI[last] {
			z.minI[last] = v
		}
		if v > z.maxI[last] {
			z.maxI[last] = v
		}
	}
	z.n++
}

// AppendFloat64 folds one appended float64 value into the tail zone.
func (z *ZoneMap) AppendFloat64(v float64) {
	if z.n&(ZoneSize-1) == 0 {
		z.minF = append(z.minF, v)
		z.maxF = append(z.maxF, v)
	} else {
		last := len(z.minF) - 1
		if v < z.minF[last] {
			z.minF[last] = v
		}
		if v > z.maxF[last] {
			z.maxF[last] = v
		}
	}
	z.n++
}

// WidenInt64 widens the zone containing row to admit v after an in-place
// update. The old value is not removed — zone bounds are conservative, which
// is safe: pruning only skips zones that cannot contain a match.
func (z *ZoneMap) WidenInt64(row int, v int64) {
	zi := row >> ZoneShift
	if zi >= len(z.minI) {
		return
	}
	if v < z.minI[zi] {
		z.minI[zi] = v
	}
	if v > z.maxI[zi] {
		z.maxI[zi] = v
	}
}

// WidenFloat64 widens the zone containing row to admit v.
func (z *ZoneMap) WidenFloat64(row int, v float64) {
	zi := row >> ZoneShift
	if zi >= len(z.minF) {
		return
	}
	if v < z.minF[zi] {
		z.minF[zi] = v
	}
	if v > z.maxF[zi] {
		z.maxF[zi] = v
	}
}

// IntBounds returns the [min,max] summary of zone zi for int64/date columns.
func (z *ZoneMap) IntBounds(zi int) (lo, hi int64) { return z.minI[zi], z.maxI[zi] }

// FloatBounds returns the [min,max] summary of zone zi for float64 columns.
func (z *ZoneMap) FloatBounds(zi int) (lo, hi float64) { return z.minF[zi], z.maxF[zi] }

// OverlapsInt reports whether zone zi can contain a value in [lo, hi].
func (z *ZoneMap) OverlapsInt(zi int, lo, hi int64) bool {
	return z.maxI[zi] >= lo && z.minI[zi] <= hi
}

// OverlapsFloat reports whether zone zi can contain a value in [lo, hi].
func (z *ZoneMap) OverlapsFloat(zi int, lo, hi float64) bool {
	return z.maxF[zi] >= lo && z.minF[zi] <= hi
}

// ContainedInt reports whether every value of zone zi is inside [lo, hi] —
// the filter can keep the whole zone without scanning it. Only exact for
// fully appended zones with no widened updates, but always conservative.
func (z *ZoneMap) ContainedInt(zi int, lo, hi int64) bool {
	return z.minI[zi] >= lo && z.maxI[zi] <= hi
}

// Clone returns a deep copy.
func (z *ZoneMap) Clone() *ZoneMap {
	return &ZoneMap{
		isFloat: z.isFloat,
		n:       z.n,
		minI:    append([]int64(nil), z.minI...),
		maxI:    append([]int64(nil), z.maxI...),
		minF:    append([]float64(nil), z.minF...),
		maxF:    append([]float64(nil), z.maxF...),
	}
}

// Reset discards all zone summaries.
func (z *ZoneMap) Reset() {
	z.n = 0
	z.minI, z.maxI = z.minI[:0], z.maxI[:0]
	z.minF, z.maxF = z.minF[:0], z.maxF[:0]
}

// MemBytes returns the accounted memory of the zone summaries.
func (z *ZoneMap) MemBytes() int {
	return 48 + (len(z.minI)+len(z.maxI))*8 + (len(z.minF)+len(z.maxF))*8
}
