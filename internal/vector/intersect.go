// Sorted-run intersection kernel shared by the cyclic-join operators
// (op.ExpandInto, op.ExpandIntersect) and the storage batch helper. A sealed
// CSR adjacency family stores each vertex's neighbors as one ascending run of
// VIDs, so edge-membership probes and k-way candidate intersections reduce to
// merge passes with galloping (exponential-then-binary) seeks — the Leapfrog
// Triejoin primitive specialized to two levels (source, neighbor).
package vector

// Gallop returns the smallest index >= lo with run[idx] >= v: exponential
// steps from lo, then binary search within the bracketed window. run must be
// sorted ascending from lo on. Cost is O(log d) in the distance d advanced,
// so a monotone sweep over the whole run totals O(n) comparisons.
//
//geslint:kernel
func Gallop(run []VID, lo int, v VID) int {
	if lo >= len(run) || run[lo] >= v {
		return lo
	}
	i, step := lo, 1
	for i+step < len(run) && run[i+step] < v {
		i += step
		step <<= 1
	}
	hi := i + step
	if hi > len(run) {
		hi = len(run)
	}
	l, h := i+1, hi
	for l < h {
		mid := int(uint(l+h) >> 1)
		if run[mid] < v {
			l = mid + 1
		} else {
			h = mid
		}
	}
	return l
}

// RunCursor answers membership probes against one sorted run with a monotone
// cursor: consecutive ascending probes advance the cursor by galloping
// instead of restarting, so probing a whole sorted candidate sequence against
// the run costs one merge pass. A probe below the previous one resets the
// cursor (correct, just slower), so callers may feed unsorted candidates.
//
//geslint:snapshot-owner morsel-scoped probe cursor over a shared sorted run; dropped with the expand state at morsel end
type RunCursor struct {
	run  []VID
	pos  int
	last VID
}

// Reset points the cursor at a new run.
//
//geslint:kernel
func (c *RunCursor) Reset(run []VID) {
	c.run, c.pos, c.last = run, 0, 0
}

// Contains reports whether v is in the run.
//
//geslint:kernel
func (c *RunCursor) Contains(v VID) bool {
	if v < c.last {
		c.pos = 0
	}
	c.last = v
	c.pos = Gallop(c.run, c.pos, v)
	return c.pos < len(c.run) && c.run[c.pos] == v
}

// IntersectSorted appends to dst every element of base that is present in
// all probe runs, preserving base's order and multiplicity (duplicates in
// base emit duplicates; duplicates in probes do not). base and every probe
// must be sorted ascending. The walk leapfrogs: each probe gallops from its
// own cursor to the current base value, and when a probe overshoots to w > v
// the base cursor gallops forward to w instead of stepping — the
// worst-case-optimal seek pattern, O(k · min-run · log(max-run/min-run)).
//
//geslint:kernel
func IntersectSorted(dst, base []VID, probes [][]VID) []VID {
	if len(base) == 0 {
		return dst
	}
	for _, p := range probes {
		if len(p) == 0 {
			return dst
		}
	}
	//geslint:alloc-ok k-probe cursor array, k bounded by pattern arity; one small alloc amortized over the whole run walk
	pos := make([]int, len(probes))
	for i := 0; i < len(base); {
		v := base[i]
		ok := true
		for pi, p := range probes {
			j := Gallop(p, pos[pi], v)
			pos[pi] = j
			if j >= len(p) {
				// Probe exhausted: nothing larger can intersect.
				return dst
			}
			if p[j] != v {
				// Overshoot: skip base ahead to the probe's value.
				i = Gallop(base, i+1, p[j])
				ok = false
				break
			}
		}
		if ok {
			//geslint:alloc-ok append into the caller-owned dst buffer; capacity stabilizes after the first rows
			dst = append(dst, v)
			i++
		}
	}
	return dst
}
