package vector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	if got := b.Count(); got != 130 {
		t.Fatalf("fresh bitset Count = %d, want 130 (all valid)", got)
	}
	b.Clear(0)
	b.Clear(64)
	b.Clear(129)
	if got := b.Count(); got != 127 {
		t.Fatalf("Count after 3 clears = %d, want 127", got)
	}
	if b.Get(0) || b.Get(64) || b.Get(129) {
		t.Fatal("cleared bits still read as set")
	}
	b.Set(64)
	if !b.Get(64) {
		t.Fatal("Set(64) did not stick")
	}
}

func TestBitsetEmptyAndSetAll(t *testing.T) {
	b := NewBitsetEmpty(77)
	if b.Any() {
		t.Fatal("empty bitset reports Any")
	}
	b.SetAll()
	if b.Count() != 77 {
		t.Fatalf("Count after SetAll = %d, want 77", b.Count())
	}
	b.ClearAll()
	if b.Count() != 0 {
		t.Fatalf("Count after ClearAll = %d, want 0", b.Count())
	}
}

func TestBitsetNextSet(t *testing.T) {
	b := NewBitsetEmpty(200)
	for _, i := range []int{3, 64, 65, 130, 199} {
		b.Set(i)
	}
	var got []int
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		got = append(got, i)
	}
	want := []int{3, 64, 65, 130, 199}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	if b.NextSet(200) != -1 {
		t.Fatal("NextSet past end should be -1")
	}
}

func TestBitsetAnyInRange(t *testing.T) {
	b := NewBitsetEmpty(256)
	b.Set(100)
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{0, 100, false},
		{0, 101, true},
		{100, 101, true},
		{101, 256, false},
		{64, 128, true},
		{0, 0, false},
		{100, 100, false},
	}
	for _, c := range cases {
		if got := b.AnyInRange(c.lo, c.hi); got != c.want {
			t.Errorf("AnyInRange(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestBitsetAppendResize(t *testing.T) {
	b := NewBitsetEmpty(0)
	for i := 0; i < 100; i++ {
		b.Append(i%3 == 0)
	}
	if b.Len() != 100 {
		t.Fatalf("Len after appends = %d", b.Len())
	}
	want := 0
	for i := 0; i < 100; i++ {
		if i%3 == 0 {
			want++
		}
		if b.Get(i) != (i%3 == 0) {
			t.Fatalf("bit %d wrong after Append", i)
		}
	}
	if b.Count() != want {
		t.Fatalf("Count = %d, want %d", b.Count(), want)
	}
	b.Resize(150, true)
	if b.Count() != want+50 {
		t.Fatalf("Count after Resize(valid) = %d, want %d", b.Count(), want+50)
	}
	b.Resize(10, false)
	if b.Len() != 10 {
		t.Fatalf("Len after shrink = %d", b.Len())
	}
}

// Property: Count equals a naive per-bit count after arbitrary operations.
func TestBitsetCountProperty(t *testing.T) {
	f := func(n uint8, ops []uint16) bool {
		size := int(n) + 1
		b := NewBitsetEmpty(size)
		ref := make([]bool, size)
		for _, o := range ops {
			i := int(o) % size
			switch (o / 256) % 3 {
			case 0:
				b.Set(i)
				ref[i] = true
			case 1:
				b.Clear(i)
				ref[i] = false
			case 2:
				b.SetTo(i, o%2 == 0)
				ref[i] = o%2 == 0
			}
		}
		want := 0
		for i, v := range ref {
			if v != b.Get(i) {
				return false
			}
			if v {
				want++
			}
		}
		return b.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextSet visits exactly the set bits in order.
func TestBitsetNextSetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		size := 1 + rng.Intn(300)
		b := NewBitsetEmpty(size)
		var want []int
		for i := 0; i < size; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
				want = append(want, i)
			}
		}
		var got []int
		for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d set bits, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: walk mismatch at %d", trial, i)
			}
		}
	}
}

func TestBitsetAnd(t *testing.T) {
	a := NewBitsetEmpty(128)
	b := NewBitsetEmpty(128)
	for i := 0; i < 128; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 128; i += 3 {
		b.Set(i)
	}
	a.And(b)
	for i := 0; i < 128; i++ {
		want := i%2 == 0 && i%3 == 0
		if a.Get(i) != want {
			t.Fatalf("And: bit %d = %v, want %v", i, a.Get(i), want)
		}
	}
}

func TestBitsetCountInRange(t *testing.T) {
	b := NewBitsetEmpty(100)
	for i := 10; i < 20; i++ {
		b.Set(i)
	}
	if got := b.CountInRange(0, 100); got != 10 {
		t.Fatalf("CountInRange full = %d", got)
	}
	if got := b.CountInRange(15, 18); got != 3 {
		t.Fatalf("CountInRange(15,18) = %d", got)
	}
	if got := b.CountInRange(20, 30); got != 0 {
		t.Fatalf("CountInRange(20,30) = %d", got)
	}
}
