package vector

import (
	"fmt"
	"sync"
	"testing"
)

// TestDictEmptyStringIsCodeZero pins the typed-zero invariant the gather
// path relies on: Column.Grow zero-fills code slots, and code 0 must resolve
// to "" — the same value the scalar path returns for missing properties.
func TestDictEmptyStringIsCodeZero(t *testing.T) {
	d := NewDict()
	if code, ok := d.Lookup(""); !ok || code != 0 {
		t.Fatalf(`Lookup("") = (%d, %v), want (0, true)`, code, ok)
	}
	if d.Str(0) != "" {
		t.Fatalf(`Str(0) = %q, want ""`, d.Str(0))
	}
	if c := d.Intern("a"); c != 1 {
		t.Fatalf("first real string got code %d, want 1", c)
	}
	if c := d.Intern(""); c != 0 {
		t.Fatalf(`re-interning "" returned %d, want 0`, c)
	}

	col := NewDictColumn("s", d)
	col.Grow(3)
	for i := 0; i < 3; i++ {
		if col.StringAt(i) != "" {
			t.Fatalf(`zero-filled row %d = %q, want ""`, i, col.StringAt(i))
		}
	}
	col.SetString(1, "b")
	if col.StringAt(1) != "b" || col.StringAt(0) != "" {
		t.Fatal("SetString broke neighbors")
	}
}

// TestDictConcurrentReaders races lock-free Str/Len against interning.
func TestDictConcurrentReaders(t *testing.T) {
	d := NewDict()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			d.Intern(fmt.Sprintf("s%d", i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			n := d.Len()
			for c := 0; c < n; c++ {
				_ = d.Str(uint32(c))
			}
		}
	}()
	wg.Wait()
	if d.Len() != 501 { // "" + 500 interned
		t.Fatalf("Len = %d, want 501", d.Len())
	}
}

// TestSharedColumnPanicsOnMutation pins the zero-copy share contract:
// operators must never write through a column shared from storage.
func TestSharedColumnPanicsOnMutation(t *testing.T) {
	c := NewColumn("age", KindInt64)
	c.AppendInt64(7)
	sh := c.ShareAs("p.age")
	if sh.Int64s()[0] != 7 {
		t.Fatal("shared column lost data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a shared column did not panic")
		}
	}()
	sh.AppendInt64(8)
}

// TestZoneMapBounds covers append folding, widening, and the three pruning
// verdicts (disjoint, overlapping, contained).
func TestZoneMapBounds(t *testing.T) {
	z := NewZoneMap(false)
	for i := 0; i < 2*ZoneSize; i++ {
		z.AppendInt64(int64(i))
	}
	if z.Zones() != 2 || z.Rows() != 2*ZoneSize {
		t.Fatalf("zones=%d rows=%d", z.Zones(), z.Rows())
	}
	if lo, hi := z.IntBounds(0); lo != 0 || hi != ZoneSize-1 {
		t.Fatalf("zone 0 bounds [%d,%d]", lo, hi)
	}
	if z.OverlapsInt(1, 0, int64(ZoneSize-1)) {
		t.Fatal("disjoint zone reported overlap")
	}
	if !z.OverlapsInt(0, int64(ZoneSize-10), int64(ZoneSize+10)) {
		t.Fatal("overlapping zone reported disjoint")
	}
	if !z.ContainedInt(0, 0, int64(ZoneSize)) {
		t.Fatal("contained zone not detected")
	}
	if z.ContainedInt(0, 1, int64(ZoneSize)) {
		t.Fatal("partially covered zone reported contained")
	}
	// In-place updates widen, never narrow.
	z.WidenInt64(0, -5)
	if lo, _ := z.IntBounds(0); lo != -5 {
		t.Fatalf("widen failed: lo=%d", lo)
	}
	if z.OverlapsInt(0, -100, -6) {
		t.Fatal("widened zone over-reports")
	}
}
