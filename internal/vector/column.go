package vector

import "fmt"

// Column is a typed, contiguous column of singletons — one column of an
// f-Block (§4.2). Exactly one backing slice is in use, selected by Kind.
//
// A VID column may additionally be *lazy*: instead of holding materialized
// vertex IDs it holds (pointer,length) references into storage-owned
// adjacency arrays. This is the paper's pointer-based join (§5): Expand
// appends one segment per source vertex and neighbor IDs are only copied if
// someone actually needs random access or de-factoring forces it.
//
// A string column may be *dictionary-encoded*: rows are uint32 codes into a
// Dict and the str slice is unused. Storage property columns are always
// dict-encoded; gathered intermediate columns share the storage dict so a
// gather moves 4-byte codes and code→string resolution is deferred to output
// serialization or order-sensitive comparisons.
//
//geslint:snapshot-owner columns carry zero-copy shared segments and scan views by design; they hand off to the consuming f-Block within the same morsel
//
// A column may be *shared*: a zero-copy view of a storage-owned column
// produced by an aligned gather. Shared columns are read-only — mutating
// entry points panic — and account no payload memory, mirroring lazy
// columns.
type Column struct {
	Name string
	Kind Kind

	i64 []int64
	f64 []float64
	str []string
	bl  []bool
	vid []VID

	// Dictionary encoding (KindString only).
	codes []uint32
	dict  *Dict

	// Optional per-zone min/max summaries (int64/date/float64 columns).
	zm *ZoneMap

	// Read-only view of storage-owned memory (aligned gather fast path).
	shared bool

	// Lazy segmented representation (KindVID only).
	lazy   bool
	segs   [][]VID // storage-owned; never mutated through the column
	segOff []int   // segOff[i] = logical offset of segs[i]; ascending
	segLen int     // total logical length of all segments
}

// NewColumn returns an empty column of the given kind.
func NewColumn(name string, kind Kind) *Column {
	return &Column{Name: name, Kind: kind}
}

// NewLazyVIDColumn returns an empty lazy VID column for pointer-based joins.
func NewLazyVIDColumn(name string) *Column {
	return &Column{Name: name, Kind: KindVID, lazy: true}
}

// NewDictColumn returns an empty dictionary-encoded string column whose codes
// reference d. Gathered string columns use the dict of the storage column
// they gather from, so codes can be bulk-copied without resolution.
func NewDictColumn(name string, d *Dict) *Column {
	return &Column{Name: name, Kind: KindString, dict: d}
}

// ShareVIDs wraps an existing VID slice as a read-only column without
// copying. Scans use it to expose the storage vid order zero-copy;
// downstream operators narrow via selection vectors, never by mutating the
// scan column, so the share is safe.
func ShareVIDs(name string, vids []VID) *Column {
	return &Column{Name: name, Kind: KindVID, vid: vids, shared: true}
}

// Lazy reports whether the column is in the lazy segmented representation.
func (c *Column) Lazy() bool { return c.lazy }

// DictEncoded reports whether the column stores uint32 dictionary codes.
func (c *Column) DictEncoded() bool { return c.dict != nil }

// Dict returns the dictionary of a dict-encoded column (nil otherwise).
func (c *Column) Dict() *Dict { return c.dict }

// Codes exposes the raw code slice of a dict-encoded column.
func (c *Column) Codes() []uint32 { return c.codes }

// Shared reports whether the column is a read-only view of storage memory.
func (c *Column) Shared() bool { return c.shared }

// ZoneMap returns the column's zone map, or nil.
func (c *Column) ZoneMap() *ZoneMap { return c.zm }

// EnableDict switches an empty string column to dictionary encoding with a
// fresh dictionary.
func (c *Column) EnableDict() {
	if c.Kind != KindString || c.Len() != 0 {
		panic(fmt.Sprintf("vector: EnableDict on non-empty or non-string column %q", c.Name))
	}
	c.dict = NewDict()
}

// EnableZoneMap attaches an empty zone map to an empty int64/date/float64
// column; subsequent appends maintain it incrementally.
func (c *Column) EnableZoneMap() {
	if c.Len() != 0 {
		panic(fmt.Sprintf("vector: EnableZoneMap on non-empty column %q", c.Name))
	}
	switch c.Kind {
	case KindInt64, KindDate:
		c.zm = NewZoneMap(false)
	case KindFloat64:
		c.zm = NewZoneMap(true)
	default:
		panic(fmt.Sprintf("vector: EnableZoneMap on column %q of kind %v", c.Name, c.Kind))
	}
}

// ShareAs returns a read-only zero-copy view of the column under a new name
// — the aligned-gather fast path, where a NodeScan-ordered block can adopt
// the storage column (codes, dict and zone map included) outright.
func (c *Column) ShareAs(name string) *Column {
	return &Column{
		Name: name, Kind: c.Kind,
		i64: c.i64, f64: c.f64, str: c.str, bl: c.bl, vid: c.vid,
		codes: c.codes, dict: c.dict, zm: c.zm,
		shared: true,
	}
}

// Len returns the logical number of rows.
func (c *Column) Len() int {
	if c.lazy {
		return c.segLen
	}
	switch c.Kind {
	case KindInt64, KindDate:
		return len(c.i64)
	case KindVID:
		return len(c.vid)
	case KindFloat64:
		return len(c.f64)
	case KindString:
		if c.dict != nil {
			return len(c.codes)
		}
		return len(c.str)
	case KindBool:
		return len(c.bl)
	default:
		return 0
	}
}

// AppendSegment appends a storage-owned adjacency segment to a lazy column
// and returns the logical [start,end) range the segment now occupies.
func (c *Column) AppendSegment(seg []VID) (start, end int) {
	if !c.lazy {
		panic("vector: AppendSegment on a non-lazy column")
	}
	start = c.segLen
	c.segs = append(c.segs, seg)
	c.segOff = append(c.segOff, start)
	c.segLen += len(seg)
	return start, c.segLen
}

// Materialize converts a lazy column into a materialized VID column by
// copying every segment. It is a no-op on already-materialized columns.
func (c *Column) Materialize() {
	if !c.lazy {
		return
	}
	out := make([]VID, 0, c.segLen)
	for _, s := range c.segs {
		out = append(out, s...)
	}
	c.vid = out
	c.lazy = false
	c.segs, c.segOff, c.segLen = nil, nil, 0
}

// segAt locates the segment containing logical row i via binary search.
func (c *Column) segAt(i int) (seg []VID, local int) {
	lo, hi := 0, len(c.segOff)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.segOff[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return c.segs[lo], i - c.segOff[lo]
}

// VIDAt returns the VID at row i; the column must be of KindVID.
func (c *Column) VIDAt(i int) VID {
	if c.lazy {
		seg, local := c.segAt(i)
		return seg[local]
	}
	return c.vid[i]
}

// Int64At returns the int64 at row i for KindInt64/KindDate columns.
func (c *Column) Int64At(i int) int64 { return c.i64[i] }

// Float64At returns the float64 at row i.
func (c *Column) Float64At(i int) float64 { return c.f64[i] }

// StringAt returns the string at row i, resolving dictionary codes.
func (c *Column) StringAt(i int) string {
	if c.dict != nil {
		return c.dict.Str(c.codes[i])
	}
	return c.str[i]
}

// BoolAt returns the bool at row i.
func (c *Column) BoolAt(i int) bool { return c.bl[i] }

// Get returns the boxed value at row i.
func (c *Column) Get(i int) Value {
	switch c.Kind {
	case KindInt64:
		return Int64(c.i64[i])
	case KindDate:
		return Date(c.i64[i])
	case KindVID:
		return VIDValue(c.VIDAt(i))
	case KindFloat64:
		return Float64(c.f64[i])
	case KindString:
		return String_(c.StringAt(i))
	case KindBool:
		return Bool(c.bl[i])
	default:
		return Value{}
	}
}

// mutCheck panics when the column is a read-only shared view.
func (c *Column) mutCheck() {
	if c.shared {
		//geslint:alloc-ok message formatting on the panic path only; the hot path is one branch
		panic(fmt.Sprintf("vector: mutation of shared column %q", c.Name))
	}
}

// Append appends a boxed value; its kind must match the column kind (date
// and int64 interconvert).
func (c *Column) Append(v Value) {
	c.mutCheck()
	switch c.Kind {
	case KindInt64, KindDate:
		c.i64 = append(c.i64, v.I)
		if c.zm != nil {
			c.zm.AppendInt64(v.I)
		}
	case KindVID:
		if c.lazy {
			panic("vector: scalar Append on a lazy column")
		}
		c.vid = append(c.vid, VID(v.I))
	case KindFloat64:
		c.f64 = append(c.f64, v.F)
		if c.zm != nil {
			c.zm.AppendFloat64(v.F)
		}
	case KindString:
		if c.dict != nil {
			c.codes = append(c.codes, c.dict.Intern(v.S))
		} else {
			c.str = append(c.str, v.S)
		}
	case KindBool:
		c.bl = append(c.bl, v.I != 0)
	default:
		panic(fmt.Sprintf("vector: Append on invalid column %q", c.Name))
	}
}

// Set overwrites row i in place; the kind contract matches Append. Zone maps
// are widened (never narrowed) so pruning stays conservative and correct.
func (c *Column) Set(i int, v Value) {
	c.mutCheck()
	switch c.Kind {
	case KindInt64, KindDate:
		c.i64[i] = v.I
		if c.zm != nil {
			c.zm.WidenInt64(i, v.I)
		}
	case KindVID:
		c.vid[i] = VID(v.I)
	case KindFloat64:
		c.f64[i] = v.F
		if c.zm != nil {
			c.zm.WidenFloat64(i, v.F)
		}
	case KindString:
		if c.dict != nil {
			c.codes[i] = c.dict.Intern(v.S)
		} else {
			c.str[i] = v.S
		}
	case KindBool:
		c.bl[i] = v.I != 0
	default:
		panic(fmt.Sprintf("vector: Set on invalid column %q", c.Name))
	}
}

// SetString overwrites row i of a string column, interning dict codes.
func (c *Column) SetString(i int, s string) {
	c.mutCheck()
	if c.dict != nil {
		c.codes[i] = c.dict.Intern(s)
		return
	}
	c.str[i] = s
}

// AppendInt64 appends a raw int64 (KindInt64/KindDate).
func (c *Column) AppendInt64(v int64) {
	c.mutCheck()
	c.i64 = append(c.i64, v)
	if c.zm != nil {
		c.zm.AppendInt64(v)
	}
}

// AppendVID appends a materialized VID.
func (c *Column) AppendVID(v VID) {
	c.mutCheck()
	//geslint:alloc-ok column storage doubles amortized; O(1) per appended row across the batch
	c.vid = append(c.vid, v)
}

// AppendFloat64 appends a raw float64.
func (c *Column) AppendFloat64(v float64) {
	c.mutCheck()
	c.f64 = append(c.f64, v)
	if c.zm != nil {
		c.zm.AppendFloat64(v)
	}
}

// AppendString appends a raw string, interning dict codes.
func (c *Column) AppendString(v string) {
	c.mutCheck()
	if c.dict != nil {
		c.codes = append(c.codes, c.dict.Intern(v))
		return
	}
	c.str = append(c.str, v)
}

// AppendBool appends a raw bool.
func (c *Column) AppendBool(v bool) {
	c.mutCheck()
	c.bl = append(c.bl, v)
}

// growZeroed resizes s to n elements, zeroing every slot (stale rows from a
// recycled scratch column must not leak into unselected gather rows).
func growZeroed[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// Grow resizes the column to n zero-valued rows, reusing capacity — the
// output shape of a batch gather, which then writes selected rows in place.
func (c *Column) Grow(n int) {
	c.mutCheck()
	switch c.Kind {
	case KindInt64, KindDate:
		c.i64 = growZeroed(c.i64, n)
	case KindVID:
		if c.lazy {
			panic("vector: Grow on a lazy column")
		}
		c.vid = growZeroed(c.vid, n)
	case KindFloat64:
		c.f64 = growZeroed(c.f64, n)
	case KindString:
		if c.dict != nil {
			c.codes = growZeroed(c.codes, n)
		} else {
			c.str = growZeroed(c.str, n)
		}
	case KindBool:
		c.bl = growZeroed(c.bl, n)
	default:
		panic(fmt.Sprintf("vector: Grow on invalid column %q", c.Name))
	}
}

// Int64s exposes the raw backing slice of an int64/date column for
// vectorized loops.
func (c *Column) Int64s() []int64 { return c.i64 }

// Float64s exposes the raw float64 backing slice.
func (c *Column) Float64s() []float64 { return c.f64 }

// Strings exposes the raw string backing slice; it panics for dict-encoded
// columns (use Codes/StringAt, or decode explicitly).
func (c *Column) Strings() []string {
	if c.dict != nil {
		panic(fmt.Sprintf("vector: Strings on dict-encoded column %q", c.Name))
	}
	return c.str
}

// Bools exposes the raw bool backing slice.
func (c *Column) Bools() []bool { return c.bl }

// VIDs exposes the raw materialized VID slice; it panics for lazy columns
// (callers must Materialize first or iterate via VIDAt/EachVID).
func (c *Column) VIDs() []VID {
	if c.lazy {
		panic("vector: VIDs on a lazy column")
	}
	return c.vid
}

// EachVID calls fn for every logical row of a VID column in order without
// materializing lazy segments.
func (c *Column) EachVID(fn func(i int, v VID)) {
	if c.lazy {
		i := 0
		for _, seg := range c.segs {
			for _, v := range seg {
				fn(i, v)
				i++
			}
		}
		return
	}
	for i, v := range c.vid {
		fn(i, v)
	}
}

// decodeDict materializes a dict-encoded column into plain strings — the
// slow path when columns with different dictionaries must be merged.
func (c *Column) decodeDict() {
	if c.dict == nil {
		return
	}
	c.str = make([]string, len(c.codes))
	for i, code := range c.codes {
		c.str[i] = c.dict.Str(code)
	}
	c.codes, c.dict = nil, nil
}

// Extend appends every row of src (same kind) to c. It backs the
// deterministic morsel-order merge of the parallel operators: each worker
// fills a private column and the coordinator extends the output shard by
// shard. Lazy columns are not supported — the lazy expansion path merges
// segments directly. Dict-encoded shards sharing one dictionary merge by
// code; mismatched dictionaries fall back to decoded strings.
func (c *Column) Extend(src *Column) {
	c.mutCheck()
	if c.lazy || src.lazy {
		panic("vector: Extend on a lazy column")
	}
	if c.Kind == KindString {
		switch {
		case c.Len() == 0 && src.dict != nil && c.dict == nil:
			c.dict = src.dict // adopt: shards gathered from one storage column
		case c.dict != src.dict:
			c.decodeDict()
			for i, n := 0, src.Len(); i < n; i++ {
				c.str = append(c.str, src.StringAt(i))
			}
			return
		}
		if c.dict != nil {
			c.codes = append(c.codes, src.codes...)
			return
		}
	}
	c.i64 = append(c.i64, src.i64...)
	c.f64 = append(c.f64, src.f64...)
	c.str = append(c.str, src.str...)
	c.bl = append(c.bl, src.bl...)
	c.vid = append(c.vid, src.vid...)
}

// NewColumnFromValues builds a column of the given kind from boxed values —
// the merge step of parallel property gathers, where workers fill disjoint
// slices of a pre-sized value buffer.
func NewColumnFromValues(name string, kind Kind, vals []Value) *Column {
	c := NewColumn(name, kind)
	switch kind {
	case KindInt64, KindDate:
		c.i64 = make([]int64, len(vals))
		for i, v := range vals {
			c.i64[i] = v.I
		}
	case KindVID:
		c.vid = make([]VID, len(vals))
		for i, v := range vals {
			c.vid[i] = VID(v.I)
		}
	case KindFloat64:
		c.f64 = make([]float64, len(vals))
		for i, v := range vals {
			c.f64[i] = v.F
		}
	case KindString:
		c.str = make([]string, len(vals))
		for i, v := range vals {
			c.str[i] = v.S
		}
	case KindBool:
		c.bl = make([]bool, len(vals))
		for i, v := range vals {
			c.bl[i] = v.I != 0
		}
	default:
		panic(fmt.Sprintf("vector: NewColumnFromValues with invalid kind for %q", name))
	}
	return c
}

// Reset truncates the column to zero rows, retaining capacity. This backs
// the paper's pre-allocated, reusable f-Trees (§5, Vectorization). A shared
// column detaches from its storage backing instead of truncating it.
func (c *Column) Reset() {
	if c.shared {
		*c = Column{Name: c.Name, Kind: c.Kind}
		return
	}
	c.i64 = c.i64[:0]
	c.f64 = c.f64[:0]
	c.str = c.str[:0]
	c.bl = c.bl[:0]
	c.vid = c.vid[:0]
	c.codes = c.codes[:0]
	if c.zm != nil {
		c.zm.Reset()
	}
	c.segs = c.segs[:0]
	c.segOff = c.segOff[:0]
	c.segLen = 0
}

// Reinit retargets a recycled column to a fresh identity, truncating every
// backing slice but retaining capacity. It is the pooled counterpart of
// NewColumn (§5, memory pool): Reset preserves Name/Kind for within-query
// reuse, Reinit additionally clears the lazy/dict/shared/zone-map state a
// previous owner may have left behind, and drops pointer-bearing slots
// (string headers, lazy segment references) so a pooled column never pins a
// prior query's storage snapshot alive.
func (c *Column) Reinit(name string, kind Kind) {
	if c.shared {
		*c = Column{}
	}
	c.Name, c.Kind = name, kind
	c.lazy = false
	c.dict = nil
	c.zm = nil
	c.i64 = c.i64[:0]
	c.f64 = c.f64[:0]
	c.bl = c.bl[:0]
	c.vid = c.vid[:0]
	c.codes = c.codes[:0]
	clear(c.str[:cap(c.str)])
	c.str = c.str[:0]
	clear(c.segs[:cap(c.segs)])
	c.segs = c.segs[:0]
	c.segOff = c.segOff[:0]
	c.segLen = 0
}

// ReinitLazyVID retargets a recycled column as an empty lazy VID column —
// the pooled counterpart of NewLazyVIDColumn.
func (c *Column) ReinitLazyVID(name string) {
	c.Reinit(name, KindVID)
	c.lazy = true
}

// ReinitDict retargets a recycled column as an empty dictionary-encoded
// string column over d — the pooled counterpart of NewDictColumn.
func (c *Column) ReinitDict(name string, d *Dict) {
	c.Reinit(name, KindString)
	c.dict = d
}

// MemBytes returns the accounted intermediate-result memory of the column.
// Lazy and shared columns account only their headers — the payload belongs
// to graph storage, which is precisely the saving of pointer-based joins and
// aligned gathers. Dict columns account 4 bytes per row; the dictionary
// payload is accounted once by its owning storage table.
func (c *Column) MemBytes() int {
	const base = 64
	if c.lazy {
		return base + len(c.segs)*24 + len(c.segOff)*8
	}
	if c.shared {
		return base
	}
	switch c.Kind {
	case KindInt64, KindDate:
		return base + len(c.i64)*8
	case KindVID:
		return base + len(c.vid)*4
	case KindFloat64:
		return base + len(c.f64)*8
	case KindString:
		if c.dict != nil {
			return base + len(c.codes)*4
		}
		n := base + len(c.str)*16
		for _, s := range c.str {
			n += len(s)
		}
		return n
	case KindBool:
		return base + len(c.bl)
	default:
		return base
	}
}

// Clone returns a deep copy of the column (lazy columns stay lazy; segment
// payloads are shared with storage, as they are storage-owned; dictionaries
// are shared, being append-only; a clone of a shared column owns its copy).
func (c *Column) Clone() *Column {
	out := &Column{Name: c.Name, Kind: c.Kind, lazy: c.lazy, segLen: c.segLen, dict: c.dict}
	out.i64 = append([]int64(nil), c.i64...)
	out.f64 = append([]float64(nil), c.f64...)
	out.str = append([]string(nil), c.str...)
	out.bl = append([]bool(nil), c.bl...)
	out.vid = append([]VID(nil), c.vid...)
	out.codes = append([]uint32(nil), c.codes...)
	if c.zm != nil {
		out.zm = c.zm.Clone()
	}
	out.segs = append([][]VID(nil), c.segs...)
	out.segOff = append([]int(nil), c.segOff...)
	return out
}
