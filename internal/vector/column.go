package vector

import "fmt"

// Column is a typed, contiguous column of singletons — one column of an
// f-Block (§4.2). Exactly one backing slice is in use, selected by Kind.
//
// A VID column may additionally be *lazy*: instead of holding materialized
// vertex IDs it holds (pointer,length) references into storage-owned
// adjacency arrays. This is the paper's pointer-based join (§5): Expand
// appends one segment per source vertex and neighbor IDs are only copied if
// someone actually needs random access or de-factoring forces it.
type Column struct {
	Name string
	Kind Kind

	i64 []int64
	f64 []float64
	str []string
	bl  []bool
	vid []VID

	// Lazy segmented representation (KindVID only).
	lazy   bool
	segs   [][]VID // storage-owned; never mutated through the column
	segOff []int   // segOff[i] = logical offset of segs[i]; ascending
	segLen int     // total logical length of all segments
}

// NewColumn returns an empty column of the given kind.
func NewColumn(name string, kind Kind) *Column {
	return &Column{Name: name, Kind: kind}
}

// NewLazyVIDColumn returns an empty lazy VID column for pointer-based joins.
func NewLazyVIDColumn(name string) *Column {
	return &Column{Name: name, Kind: KindVID, lazy: true}
}

// Lazy reports whether the column is in the lazy segmented representation.
func (c *Column) Lazy() bool { return c.lazy }

// Len returns the logical number of rows.
func (c *Column) Len() int {
	if c.lazy {
		return c.segLen
	}
	switch c.Kind {
	case KindInt64, KindDate:
		return len(c.i64)
	case KindVID:
		return len(c.vid)
	case KindFloat64:
		return len(c.f64)
	case KindString:
		return len(c.str)
	case KindBool:
		return len(c.bl)
	default:
		return 0
	}
}

// AppendSegment appends a storage-owned adjacency segment to a lazy column
// and returns the logical [start,end) range the segment now occupies.
func (c *Column) AppendSegment(seg []VID) (start, end int) {
	if !c.lazy {
		panic("vector: AppendSegment on a non-lazy column")
	}
	start = c.segLen
	c.segs = append(c.segs, seg)
	c.segOff = append(c.segOff, start)
	c.segLen += len(seg)
	return start, c.segLen
}

// Materialize converts a lazy column into a materialized VID column by
// copying every segment. It is a no-op on already-materialized columns.
func (c *Column) Materialize() {
	if !c.lazy {
		return
	}
	out := make([]VID, 0, c.segLen)
	for _, s := range c.segs {
		out = append(out, s...)
	}
	c.vid = out
	c.lazy = false
	c.segs, c.segOff, c.segLen = nil, nil, 0
}

// segAt locates the segment containing logical row i via binary search.
func (c *Column) segAt(i int) (seg []VID, local int) {
	lo, hi := 0, len(c.segOff)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.segOff[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return c.segs[lo], i - c.segOff[lo]
}

// VIDAt returns the VID at row i; the column must be of KindVID.
func (c *Column) VIDAt(i int) VID {
	if c.lazy {
		seg, local := c.segAt(i)
		return seg[local]
	}
	return c.vid[i]
}

// Int64At returns the int64 at row i for KindInt64/KindDate columns.
func (c *Column) Int64At(i int) int64 { return c.i64[i] }

// Float64At returns the float64 at row i.
func (c *Column) Float64At(i int) float64 { return c.f64[i] }

// StringAt returns the string at row i.
func (c *Column) StringAt(i int) string { return c.str[i] }

// BoolAt returns the bool at row i.
func (c *Column) BoolAt(i int) bool { return c.bl[i] }

// Get returns the boxed value at row i.
func (c *Column) Get(i int) Value {
	switch c.Kind {
	case KindInt64:
		return Int64(c.i64[i])
	case KindDate:
		return Date(c.i64[i])
	case KindVID:
		return VIDValue(c.VIDAt(i))
	case KindFloat64:
		return Float64(c.f64[i])
	case KindString:
		return String_(c.str[i])
	case KindBool:
		return Bool(c.bl[i])
	default:
		return Value{}
	}
}

// Append appends a boxed value; its kind must match the column kind (date
// and int64 interconvert).
func (c *Column) Append(v Value) {
	switch c.Kind {
	case KindInt64, KindDate:
		c.i64 = append(c.i64, v.I)
	case KindVID:
		if c.lazy {
			panic("vector: scalar Append on a lazy column")
		}
		c.vid = append(c.vid, VID(v.I))
	case KindFloat64:
		c.f64 = append(c.f64, v.F)
	case KindString:
		c.str = append(c.str, v.S)
	case KindBool:
		c.bl = append(c.bl, v.I != 0)
	default:
		panic(fmt.Sprintf("vector: Append on invalid column %q", c.Name))
	}
}

// AppendInt64 appends a raw int64 (KindInt64/KindDate).
func (c *Column) AppendInt64(v int64) { c.i64 = append(c.i64, v) }

// AppendVID appends a materialized VID.
func (c *Column) AppendVID(v VID) { c.vid = append(c.vid, v) }

// AppendFloat64 appends a raw float64.
func (c *Column) AppendFloat64(v float64) { c.f64 = append(c.f64, v) }

// AppendString appends a raw string.
func (c *Column) AppendString(v string) { c.str = append(c.str, v) }

// AppendBool appends a raw bool.
func (c *Column) AppendBool(v bool) { c.bl = append(c.bl, v) }

// Int64s exposes the raw backing slice of an int64/date column for
// vectorized loops.
func (c *Column) Int64s() []int64 { return c.i64 }

// Float64s exposes the raw float64 backing slice.
func (c *Column) Float64s() []float64 { return c.f64 }

// Strings exposes the raw string backing slice.
func (c *Column) Strings() []string { return c.str }

// Bools exposes the raw bool backing slice.
func (c *Column) Bools() []bool { return c.bl }

// VIDs exposes the raw materialized VID slice; it panics for lazy columns
// (callers must Materialize first or iterate via VIDAt/EachVID).
func (c *Column) VIDs() []VID {
	if c.lazy {
		panic("vector: VIDs on a lazy column")
	}
	return c.vid
}

// EachVID calls fn for every logical row of a VID column in order without
// materializing lazy segments.
func (c *Column) EachVID(fn func(i int, v VID)) {
	if c.lazy {
		i := 0
		for _, seg := range c.segs {
			for _, v := range seg {
				fn(i, v)
				i++
			}
		}
		return
	}
	for i, v := range c.vid {
		fn(i, v)
	}
}

// Extend appends every row of src (same kind) to c. It backs the
// deterministic morsel-order merge of the parallel operators: each worker
// fills a private column and the coordinator extends the output shard by
// shard. Lazy columns are not supported — the lazy expansion path merges
// segments directly.
func (c *Column) Extend(src *Column) {
	if c.lazy || src.lazy {
		panic("vector: Extend on a lazy column")
	}
	c.i64 = append(c.i64, src.i64...)
	c.f64 = append(c.f64, src.f64...)
	c.str = append(c.str, src.str...)
	c.bl = append(c.bl, src.bl...)
	c.vid = append(c.vid, src.vid...)
}

// NewColumnFromValues builds a column of the given kind from boxed values —
// the merge step of parallel property gathers, where workers fill disjoint
// slices of a pre-sized value buffer.
func NewColumnFromValues(name string, kind Kind, vals []Value) *Column {
	c := NewColumn(name, kind)
	switch kind {
	case KindInt64, KindDate:
		c.i64 = make([]int64, len(vals))
		for i, v := range vals {
			c.i64[i] = v.I
		}
	case KindVID:
		c.vid = make([]VID, len(vals))
		for i, v := range vals {
			c.vid[i] = VID(v.I)
		}
	case KindFloat64:
		c.f64 = make([]float64, len(vals))
		for i, v := range vals {
			c.f64[i] = v.F
		}
	case KindString:
		c.str = make([]string, len(vals))
		for i, v := range vals {
			c.str[i] = v.S
		}
	case KindBool:
		c.bl = make([]bool, len(vals))
		for i, v := range vals {
			c.bl[i] = v.I != 0
		}
	default:
		panic(fmt.Sprintf("vector: NewColumnFromValues with invalid kind for %q", name))
	}
	return c
}

// Reset truncates the column to zero rows, retaining capacity. This backs
// the paper's pre-allocated, reusable f-Trees (§5, Vectorization).
func (c *Column) Reset() {
	c.i64 = c.i64[:0]
	c.f64 = c.f64[:0]
	c.str = c.str[:0]
	c.bl = c.bl[:0]
	c.vid = c.vid[:0]
	c.segs = c.segs[:0]
	c.segOff = c.segOff[:0]
	c.segLen = 0
}

// MemBytes returns the accounted intermediate-result memory of the column.
// Lazy columns account only their segment headers and offsets — the payload
// belongs to graph storage, which is precisely the saving of pointer-based
// joins.
func (c *Column) MemBytes() int {
	const base = 64
	if c.lazy {
		return base + len(c.segs)*24 + len(c.segOff)*8
	}
	switch c.Kind {
	case KindInt64, KindDate:
		return base + len(c.i64)*8
	case KindVID:
		return base + len(c.vid)*4
	case KindFloat64:
		return base + len(c.f64)*8
	case KindString:
		n := base + len(c.str)*16
		for _, s := range c.str {
			n += len(s)
		}
		return n
	case KindBool:
		return base + len(c.bl)
	default:
		return base
	}
}

// Clone returns a deep copy of the column (lazy columns stay lazy; segment
// payloads are shared with storage, as they are storage-owned).
func (c *Column) Clone() *Column {
	out := &Column{Name: c.Name, Kind: c.Kind, lazy: c.lazy, segLen: c.segLen}
	out.i64 = append([]int64(nil), c.i64...)
	out.f64 = append([]float64(nil), c.f64...)
	out.str = append([]string(nil), c.str...)
	out.bl = append([]bool(nil), c.bl...)
	out.vid = append([]VID(nil), c.vid...)
	out.segs = append([][]VID(nil), c.segs...)
	out.segOff = append([]int(nil), c.segOff...)
	return out
}
