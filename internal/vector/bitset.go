package vector

import "math/bits"

// Bitset is a word-packed validity bitmap used as the selection vector S of
// every f-Tree node (§4.2). Index i is valid when bit i is set.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset of n bits, all set (all rows valid), matching
// the paper's convention that freshly produced f-Block rows are valid.
func NewBitset(n int) *Bitset {
	b := &Bitset{words: make([]uint64, (n+63)/64), n: n}
	b.SetAll()
	return b
}

// NewBitsetEmpty returns a bitset of n bits, all clear.
func NewBitsetEmpty(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// SetTo sets bit i to v.
func (b *Bitset) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// SetAll sets every bit in [0, Len()).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll clears every bit.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim zeroes the bits beyond n in the last word so Count stays exact.
func (b *Bitset) trim() {
	if rem := uint(b.n) & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AnyInRange reports whether any bit in [lo, hi) is set.
func (b *Bitset) AnyInRange(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	if wLo == wHi {
		mask := rangeMask(uint(lo)&63, uint(hi-1)&63+1)
		return b.words[wLo]&mask != 0
	}
	if b.words[wLo]&^((1<<(uint(lo)&63))-1) != 0 {
		return true
	}
	for w := wLo + 1; w < wHi; w++ {
		if b.words[w] != 0 {
			return true
		}
	}
	return b.words[wHi]&rangeMask(0, uint(hi-1)&63+1) != 0
}

// CountInRange returns the number of set bits in [lo, hi).
func (b *Bitset) CountInRange(lo, hi int) int {
	c := 0
	for i := lo; i < hi; i++ { // ranges are short (per-parent fan-out)
		if b.Get(i) {
			c++
		}
	}
	return c
}

func rangeMask(lo, hi uint) uint64 {
	// bits [lo, hi) set, hi <= 64, hi > lo.
	if hi >= 64 {
		return ^uint64(0) &^ ((1 << lo) - 1)
	}
	return ((1 << hi) - 1) &^ ((1 << lo) - 1)
}

// ClearRange clears every bit in [lo, hi) word-at-a-time — how a zone-map
// prune drops a whole 2048-row zone from the selection vector.
func (b *Bitset) ClearRange(lo, hi int) {
	if lo >= hi {
		return
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	if wLo == wHi {
		b.words[wLo] &^= rangeMask(uint(lo)&63, uint(hi-1)&63+1)
		return
	}
	b.words[wLo] &^= ^uint64(0) &^ ((1 << (uint(lo) & 63)) - 1)
	for w := wLo + 1; w < wHi; w++ {
		b.words[w] = 0
	}
	b.words[wHi] &^= rangeMask(0, uint(hi-1)&63+1)
}

// And intersects b with other in place. Both must have the same length.
func (b *Bitset) And(other *Bitset) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (b *Bitset) NextSet(i int) int {
	if i >= b.n {
		return -1
	}
	w := i >> 6
	word := b.words[w] &^ ((1 << (uint(i) & 63)) - 1)
	for {
		if word != 0 {
			idx := w<<6 + bits.TrailingZeros64(word)
			if idx >= b.n {
				return -1
			}
			return idx
		}
		w++
		if w >= len(b.words) {
			return -1
		}
		word = b.words[w]
	}
}

// Clone returns a deep copy of the bitset.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// Append extends the bitset by one bit with the given value.
func (b *Bitset) Append(v bool) {
	if b.n&63 == 0 {
		b.words = append(b.words, 0)
	}
	b.n++
	b.SetTo(b.n-1, v)
}

// Resize grows (or shrinks) the bitset to n bits; newly added bits are set
// when valid is true.
func (b *Bitset) Resize(n int, valid bool) {
	old := b.n
	need := (n + 63) / 64
	for len(b.words) < need {
		b.words = append(b.words, 0)
	}
	b.words = b.words[:need]
	b.n = n
	if n > old && valid {
		for i := old; i < n; i++ {
			b.Set(i)
		}
	}
	b.trim()
}

// Reinit resizes the bitset to n bits with every bit set (valid=true) or
// clear, retaining word capacity — the recycling counterpart of NewBitset /
// NewBitsetEmpty for pooled selection vectors (§5, memory pool).
func (b *Bitset) Reinit(n int, valid bool) {
	need := (n + 63) / 64
	if cap(b.words) < need {
		b.words = make([]uint64, need)
	} else {
		b.words = b.words[:need]
	}
	b.n = n
	if valid {
		b.SetAll()
	} else {
		b.ClearAll()
	}
}

// MemBytes returns the accounted memory of the bitset.
func (b *Bitset) MemBytes() int { return len(b.words)*8 + 16 }
