package vector

import (
	"fmt"
	"strconv"
)

// Value is a small tagged union holding one scalar. It is the row-oriented
// currency of the flat-block fallback path; the factorized path never boxes
// values, it works directly on columns.
type Value struct {
	Kind Kind
	I    int64   // KindInt64, KindVID (widened), KindDate, KindBool (0/1)
	F    float64 // KindFloat64
	S    string  // KindString
}

// Int64 returns a Value of KindInt64.
func Int64(v int64) Value { return Value{Kind: KindInt64, I: v} }

// VIDValue returns a Value of KindVID.
func VIDValue(v VID) Value { return Value{Kind: KindVID, I: int64(v)} }

// Float64 returns a Value of KindFloat64.
func Float64(v float64) Value { return Value{Kind: KindFloat64, F: v} }

// String_ returns a Value of KindString. The trailing underscore avoids
// colliding with the String method required by fmt.Stringer.
func String_(v string) Value { return Value{Kind: KindString, S: v} }

// Bool returns a Value of KindBool.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// Date returns a Value of KindDate storing days since the Unix epoch.
func Date(days int64) Value { return Value{Kind: KindDate, I: days} }

// AsVID returns the value as a VID; it panics if the kind is not KindVID.
func (v Value) AsVID() VID {
	if v.Kind != KindVID {
		panic(fmt.Sprintf("vector: AsVID on %s value", v.Kind))
	}
	return VID(v.I)
}

// AsBool reports the boolean interpretation of a KindBool value.
func (v Value) AsBool() bool { return v.Kind == KindBool && v.I != 0 }

// IsZero reports whether v is the zero (invalid) Value.
func (v Value) IsZero() bool { return v.Kind == KindInvalid }

// String renders the value for debugging and result printing.
func (v Value) String() string {
	switch v.Kind {
	case KindInt64, KindDate:
		return strconv.FormatInt(v.I, 10)
	case KindVID:
		return "v" + strconv.FormatInt(v.I, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// MemBytes returns the accounted size of the value: the struct itself plus
// string payload.
func (v Value) MemBytes() int {
	const structSize = 40 // kind + padding + I + F + string header
	return structSize + len(v.S)
}

// Compare orders two values of the same kind: -1, 0 or +1. Values of
// different kinds order by kind, which gives a stable (if arbitrary) total
// order; the planner only ever compares same-kind values.
func Compare(a, b Value) int {
	if a.Kind != b.Kind {
		// Allow int64/date/vid/bool cross-compare through I.
		if isIntLike(a.Kind) && isIntLike(b.Kind) {
			return cmpInt(a.I, b.I)
		}
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindInt64, KindVID, KindBool, KindDate:
		return cmpInt(a.I, b.I)
	case KindFloat64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		default:
			return 0
		}
	case KindString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

func isIntLike(k Kind) bool {
	return k == KindInt64 || k == KindVID || k == KindBool || k == KindDate
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
