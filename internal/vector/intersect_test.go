package vector

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// naiveIntersect is the reference: linear membership scans, base order and
// multiplicity preserved.
func naiveIntersect(base []VID, probes [][]VID) []VID {
	out := []VID{}
	for _, v := range base {
		ok := true
		for _, p := range probes {
			found := false
			for _, w := range p {
				if w == v {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

func TestGallop(t *testing.T) {
	run := []VID{2, 4, 4, 8, 16, 32}
	cases := []struct {
		lo   int
		v    VID
		want int
	}{
		{0, 1, 0}, {0, 2, 0}, {0, 3, 1}, {0, 4, 1}, {0, 5, 3},
		{2, 4, 2}, {3, 4, 3}, {0, 16, 4}, {0, 33, 6}, {6, 1, 6},
		{4, 32, 5}, {0, 32, 5},
	}
	for _, c := range cases {
		if got := Gallop(run, c.lo, c.v); got != c.want {
			t.Errorf("Gallop(run, %d, %d) = %d, want %d", c.lo, c.v, got, c.want)
		}
	}
	if got := Gallop(nil, 0, 1); got != 0 {
		t.Errorf("Gallop(nil, 0, 1) = %d, want 0", got)
	}
}

func TestRunCursor(t *testing.T) {
	var c RunCursor
	c.Reset([]VID{3, 5, 9, 9, 12})
	// Ascending probes advance the cursor monotonically.
	probes := []struct {
		v    VID
		want bool
	}{{1, false}, {3, true}, {4, false}, {5, true}, {9, true}, {10, false}, {12, true}, {13, false}}
	for _, p := range probes {
		if got := c.Contains(p.v); got != p.want {
			t.Errorf("Contains(%d) = %v, want %v", p.v, got, p.want)
		}
	}
	// A regressing probe resets the cursor and still answers correctly.
	if !c.Contains(3) {
		t.Error("Contains(3) after regression = false, want true")
	}
	if c.Contains(4) {
		t.Error("Contains(4) after regression = true, want false")
	}
	c.Reset(nil)
	if c.Contains(3) {
		t.Error("Contains on empty run = true, want false")
	}
}

func TestIntersectSortedBasic(t *testing.T) {
	cases := []struct {
		base   []VID
		probes [][]VID
	}{
		{nil, [][]VID{{1, 2}}},
		{[]VID{1, 2}, [][]VID{nil}},
		{[]VID{1, 2, 3}, [][]VID{{2, 3, 4}}},
		{[]VID{1, 2, 3}, [][]VID{{2, 3, 4}, {3, 5}}},
		{[]VID{1, 5, 9}, [][]VID{{2, 6, 10}}},
		// Duplicates in base are preserved; duplicates in probes are not.
		{[]VID{2, 2, 3}, [][]VID{{2, 3}}},
		{[]VID{2, 3}, [][]VID{{2, 2, 3, 3}}},
		// Probe overshoot skips the base far ahead.
		{[]VID{1, 2, 3, 4, 5, 6, 7, 100}, [][]VID{{100}, {1, 100}}},
		// Base exhausts first.
		{[]VID{1, 2}, [][]VID{{1, 2, 3, 4, 5}}},
	}
	for _, c := range cases {
		got := IntersectSorted(nil, c.base, c.probes)
		want := naiveIntersect(c.base, c.probes)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("IntersectSorted(%v, %v) = %v, want %v", c.base, c.probes, got, want)
		}
	}
}

func TestIntersectSortedAppendsToDst(t *testing.T) {
	dst := []VID{7}
	got := IntersectSorted(dst, []VID{1, 2}, [][]VID{{2}})
	if !reflect.DeepEqual(got, []VID{7, 2}) {
		t.Errorf("got %v, want [7 2]", got)
	}
}

func TestIntersectSortedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sortedRandom := func(n, span int) []VID {
		run := make([]VID, n)
		for i := range run {
			run[i] = VID(rng.Intn(span))
		}
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
		return run
	}
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(3)
		base := sortedRandom(rng.Intn(40), 60)
		probes := make([][]VID, k)
		for i := range probes {
			probes[i] = sortedRandom(rng.Intn(40), 60)
		}
		got := IntersectSorted(nil, base, probes)
		want := naiveIntersect(base, probes)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: base=%v probes=%v: got %v, want %v", trial, base, probes, got, want)
		}
	}
}
