package core

import (
	"reflect"
	"testing"

	"ges/internal/vector"
)

// figure7Tree builds the exact f-Tree of the paper's Example 4.2 / Figure 7:
//
//	root r: pId = [p1, p2]
//	child u: (comId, comLen) = [(c1,6),(c2,9),(c3,5),(c4,7)], rows 2,4 invalid
//	         index I(r,u): p1 -> [0,2), p2 -> [2,4)
//	child v: (postId, postLen) = [(m1,140),(m2,123),(m3,120)]
//	         index I(r,v): p1 -> [0,1), p2 -> [1,3)
func figure7Tree() *FTree {
	pid := vector.NewColumn("pId", vector.KindInt64)
	pid.AppendInt64(1)
	pid.AppendInt64(2)
	ft := NewFTree(NewFBlock(pid))

	comID := vector.NewColumn("comId", vector.KindInt64)
	comLen := vector.NewColumn("comLen", vector.KindInt64)
	for _, row := range [][2]int64{{1, 6}, {2, 9}, {3, 5}, {4, 7}} {
		comID.AppendInt64(row[0])
		comLen.AppendInt64(row[1])
	}
	u := ft.AddChild(ft.Root, NewFBlock(comID, comLen), []Range{{0, 2}, {2, 4}})
	u.Sel.Clear(1) // c2 invalid
	u.Sel.Clear(3) // c4 invalid

	postID := vector.NewColumn("postId", vector.KindInt64)
	postLen := vector.NewColumn("postLen", vector.KindInt64)
	for _, row := range [][2]int64{{1, 140}, {2, 123}, {3, 120}} {
		postID.AppendInt64(row[0])
		postLen.AppendInt64(row[1])
	}
	ft.AddChild(ft.Root, NewFBlock(postID, postLen), []Range{{0, 1}, {1, 3}})
	return ft
}

func TestFigure7CountTuples(t *testing.T) {
	ft := figure7Tree()
	// Example 4.2: R_FT encodes exactly 3 valid tuples.
	if got := ft.CountTuples(); got != 3 {
		t.Fatalf("CountTuples = %d, want 3 (paper Example 4.2)", got)
	}
}

func TestFigure7Enumerate(t *testing.T) {
	ft := figure7Tree()
	fb, err := ft.Defactor([]string{"pId", "comId", "comLen", "postId", "postLen"})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{
		{1, 1, 6, 1, 140},
		{2, 3, 5, 2, 123},
		{2, 3, 5, 3, 120},
	}
	if fb.NumRows() != len(want) {
		t.Fatalf("defactor produced %d rows, want %d\n%s", fb.NumRows(), len(want), fb)
	}
	for i, w := range want {
		for j, val := range w {
			if fb.Rows[i][j].I != val {
				t.Fatalf("row %d col %d = %v, want %d", i, j, fb.Rows[i][j], val)
			}
		}
	}
}

func TestFigure7DisjointSchemaPartition(t *testing.T) {
	ft := figure7Tree()
	// Example 4.3: node schemas are pairwise disjoint and cover the full
	// relation schema.
	want := []string{"pId", "comId", "comLen", "postId", "postLen"}
	if got := ft.Schema(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Schema = %v, want %v", got, want)
	}
	seen := map[string]int{}
	for _, n := range ft.Nodes() {
		for _, s := range n.Block.Schema() {
			seen[s]++
		}
	}
	for s, c := range seen {
		if c != 1 {
			t.Fatalf("attribute %q owned by %d nodes, want exactly 1", s, c)
		}
	}
}

func TestFindColumnAndNodeOfColumns(t *testing.T) {
	ft := figure7Tree()
	n, c := ft.FindColumn("comLen")
	if c == nil || n == ft.Root {
		t.Fatal("comLen should resolve to a non-root node")
	}
	if ft.NodeOfColumns([]string{"comId", "comLen"}) == nil {
		t.Fatal("comId+comLen live on one node")
	}
	if ft.NodeOfColumns([]string{"comId", "postId"}) != nil {
		t.Fatal("comId+postId span nodes; NodeOfColumns must return nil")
	}
	if ft.NodeOfColumns([]string{"nope"}) != nil {
		t.Fatal("unknown column must return nil")
	}
}

func TestEnumerateEarlyExit(t *testing.T) {
	ft := figure7Tree()
	refs, err := ft.Resolve([]string{"pId"})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	ft.Enumerate(refs, func(row []vector.Value) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early-exit enumeration visited %d tuples, want 2", count)
	}
}

func TestEmptyTreeAndEmptyRanges(t *testing.T) {
	// Root with zero rows.
	empty := vector.NewColumn("x", vector.KindInt64)
	ft := NewFTree(NewFBlock(empty))
	if got := ft.CountTuples(); got != 0 {
		t.Fatalf("empty tree CountTuples = %d", got)
	}
	fb, err := ft.DefactorAll()
	if err != nil || fb.NumRows() != 0 {
		t.Fatalf("empty tree defactor: rows=%d err=%v", fb.NumRows(), err)
	}

	// Root row with an empty child range yields no tuples for that row.
	x := vector.NewColumn("x", vector.KindInt64)
	x.AppendInt64(1)
	x.AppendInt64(2)
	ft2 := NewFTree(NewFBlock(x))
	y := vector.NewColumn("y", vector.KindInt64)
	y.AppendInt64(10)
	ft2.AddChild(ft2.Root, NewFBlock(y), []Range{{0, 1}, {1, 1}})
	if got := ft2.CountTuples(); got != 1 {
		t.Fatalf("CountTuples with empty range = %d, want 1", got)
	}
	fb2, _ := ft2.DefactorAll()
	if fb2.NumRows() != 1 || fb2.Rows[0][0].I != 1 {
		t.Fatalf("defactor with empty range wrong: %s", fb2)
	}
}

func TestPruneUp(t *testing.T) {
	ft := figure7Tree()
	u := ft.Root.Children[0]
	// Invalidate every comment row; p1 and p2 both lose all u-extensions.
	u.Sel.ClearAll()
	ft.PruneUp(u)
	if ft.Root.Sel.Get(0) || ft.Root.Sel.Get(1) {
		t.Fatal("PruneUp should invalidate root rows with no valid child")
	}
	if got := ft.CountTuples(); got != 0 {
		t.Fatalf("CountTuples after prune = %d", got)
	}
}

func TestCountTuplesMatchesEnumerate(t *testing.T) {
	ft := figure7Tree()
	refs, _ := ft.Resolve(ft.Schema())
	n := 0
	ft.Enumerate(refs, func([]vector.Value) bool { n++; return true })
	if int64(n) != ft.CountTuples() {
		t.Fatalf("Enumerate count %d != CountTuples %d", n, ft.CountTuples())
	}
}

func TestMemBytesShrinksVsFlat(t *testing.T) {
	// Figure 5's point: one parent value shared by k children is stored
	// once factorized, k times flat.
	const k = 10000
	a := vector.NewColumn("a", vector.KindInt64)
	a.AppendInt64(7)
	ft := NewFTree(NewFBlock(a))
	b := vector.NewColumn("b", vector.KindInt64)
	for i := 0; i < k; i++ {
		b.AppendInt64(int64(i))
	}
	ft.AddChild(ft.Root, NewFBlock(b), []Range{{0, k}})

	flat, err := ft.DefactorAll()
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumRows() != k {
		t.Fatalf("flat rows = %d", flat.NumRows())
	}
	if ft.MemBytes() >= flat.MemBytes() {
		t.Fatalf("factorized %dB not smaller than flat %dB", ft.MemBytes(), flat.MemBytes())
	}
}

func TestAddChildIndexLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddChild with wrong index length must panic")
		}
	}()
	a := vector.NewColumn("a", vector.KindInt64)
	a.AppendInt64(1)
	ft := NewFTree(NewFBlock(a))
	b := vector.NewColumn("b", vector.KindInt64)
	ft.AddChild(ft.Root, NewFBlock(b), []Range{{0, 0}, {0, 0}})
}
