package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ges/internal/vector"
)

// randomTree builds a random f-Tree: random topology, random row counts,
// random selection vectors, and index vectors that partition each child's
// rows into consecutive (possibly empty) per-parent ranges — the invariant
// Expand maintains.
func randomTree(rng *rand.Rand) *FTree {
	nNodes := 1 + rng.Intn(5)
	colID := 0
	makeBlock := func(rows int) *FBlock {
		nCols := 1 + rng.Intn(2)
		cols := make([]*vector.Column, nCols)
		for c := 0; c < nCols; c++ {
			col := vector.NewColumn(fmt.Sprintf("c%d", colID), vector.KindInt64)
			colID++
			for r := 0; r < rows; r++ {
				col.AppendInt64(int64(rng.Intn(50)))
			}
			cols[c] = col
		}
		return NewFBlock(cols...)
	}
	rootRows := 1 + rng.Intn(4)
	ft := NewFTree(makeBlock(rootRows))
	nodes := []*Node{ft.Root}
	for len(ft.Nodes()) < nNodes {
		parent := nodes[rng.Intn(len(nodes))]
		pRows := parent.Block.NumRows()
		// Partition child rows into consecutive ranges per parent row.
		index := make([]Range, pRows)
		total := int32(0)
		for i := 0; i < pRows; i++ {
			span := int32(rng.Intn(4)) // may be 0 (no extension)
			index[i] = Range{Start: total, End: total + span}
			total += span
		}
		child := ft.AddChild(parent, makeBlock(int(total)), index)
		nodes = append(nodes, child)
	}
	// Random selection vectors.
	for _, n := range ft.Nodes() {
		for r := 0; r < n.Block.NumRows(); r++ {
			if rng.Intn(4) == 0 {
				n.Sel.Clear(r)
			}
		}
	}
	return ft
}

// bruteForce materializes R_FT directly from equations (1) and (2) of the
// paper by naive recursion, independent of the enumerator's logic.
func bruteForce(ft *FTree) [][]vector.Value {
	var rec func(n *Node, row int) [][]vector.Value
	rec = func(n *Node, row int) [][]vector.Value {
		if !n.Sel.Get(row) {
			return nil
		}
		result := [][]vector.Value{n.Block.Tuple(row)}
		for _, c := range n.Children {
			rg := c.Index[row]
			var childTuples [][]vector.Value
			for j := rg.Start; j < rg.End; j++ {
				childTuples = append(childTuples, rec(c, int(j))...)
			}
			if len(childTuples) == 0 {
				return nil // empty factor annihilates the product
			}
			var product [][]vector.Value
			for _, left := range result {
				for _, right := range childTuples {
					row := append(append([]vector.Value(nil), left...), right...)
					product = append(product, row)
				}
			}
			result = product
		}
		return result
	}
	var out [][]vector.Value
	for r := 0; r < ft.Root.Block.NumRows(); r++ {
		out = append(out, rec(ft.Root, r)...)
	}
	// The recursion assembles columns in tree preorder; the tree's schema
	// (and the enumerator) use node-registry order. Permute to match.
	var preorder []string
	var walk func(n *Node)
	walk = func(n *Node) {
		preorder = append(preorder, n.Block.Schema()...)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(ft.Root)
	schema := ft.Schema()
	perm := make([]int, len(schema))
	for i, name := range schema {
		for j, p := range preorder {
			if p == name {
				perm[i] = j
				break
			}
		}
	}
	for i, row := range out {
		nr := make([]vector.Value, len(perm))
		for k, j := range perm {
			nr[k] = row[j]
		}
		out[i] = nr
	}
	return out
}

func tupleKey(row []vector.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

func sortedKeys(rows [][]vector.Value) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = tupleKey(r)
	}
	sort.Strings(keys)
	return keys
}

// The central invariant of the paper's data structure: enumeration of the
// factorized representation is lossless — it yields exactly the relation a
// naive expansion of Union/Cartesian-product semantics defines.
func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		ft := randomTree(rng)
		want := bruteForce(ft)

		fb, err := ft.DefactorAll()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got, wantN := int64(fb.NumRows()), int64(len(want)); got != wantN {
			t.Fatalf("trial %d: enumerated %d tuples, brute force %d\n%s", trial, got, wantN, ft)
		}
		if got := ft.CountTuples(); got != int64(len(want)) {
			t.Fatalf("trial %d: CountTuples = %d, brute force %d", trial, got, len(want))
		}
		gotKeys := sortedKeys(fb.Rows)
		wantKeys := sortedKeys(want)
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("trial %d: tuple multiset mismatch at %d:\n got %q\nwant %q", trial, i, gotKeys[i], wantKeys[i])
			}
		}
	}
}

// Projection through Enumerate must agree with projecting the brute-force
// relation (bag semantics).
func TestEnumerateProjectionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		ft := randomTree(rng)
		schema := ft.Schema()
		// Project a random non-empty subset of attributes.
		var proj []string
		for _, s := range schema {
			if rng.Intn(2) == 0 {
				proj = append(proj, s)
			}
		}
		if len(proj) == 0 {
			proj = schema[:1]
		}
		fb, err := ft.Defactor(proj)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force, then project.
		full := bruteForce(ft)
		pos := make([]int, len(proj))
		for i, p := range proj {
			for j, s := range schema {
				if s == p {
					pos[i] = j
					break
				}
			}
		}
		want := make([][]vector.Value, len(full))
		for i, row := range full {
			pr := make([]vector.Value, len(pos))
			for k, j := range pos {
				pr[k] = row[j]
			}
			want[i] = pr
		}
		gotKeys := sortedKeys(fb.Rows)
		wantKeys := sortedKeys(want)
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("trial %d: projected cardinality %d, want %d", trial, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("trial %d: projected multiset mismatch at %d", trial, i)
			}
		}
	}
}

// Enumeration delay sanity: the enumerator allocates nothing per tuple
// beyond the shared row buffer (constant-delay in practice).
func TestEnumerateReusesRowBuffer(t *testing.T) {
	ft := figure7Tree()
	refs, _ := ft.Resolve(ft.Schema())
	var first []vector.Value
	calls := 0
	ft.Enumerate(refs, func(row []vector.Value) bool {
		if calls == 0 {
			first = row
		} else if &row[0] != &first[0] {
			t.Fatal("enumerator must reuse one row buffer")
		}
		calls++
		return true
	})
	if calls != 3 {
		t.Fatalf("visited %d tuples, want 3", calls)
	}
}
