package core

import (
	"fmt"
	"strings"

	"ges/internal/vector"
)

// FlatBlock is the row-oriented fallback representation (§4.2, Flat-Block):
// each row is one fully materialized tuple. Blocking operators whose
// attributes span several f-Tree nodes de-factor into a FlatBlock and
// continue with traditional block-based execution.
type FlatBlock struct {
	Names []string
	Kinds []vector.Kind
	Rows  [][]vector.Value
}

// NewFlatBlock returns an empty flat block with the given schema.
func NewFlatBlock(names []string, kinds []vector.Kind) *FlatBlock {
	if len(names) != len(kinds) {
		panic("core: FlatBlock schema name/kind length mismatch")
	}
	return &FlatBlock{Names: names, Kinds: kinds}
}

// NumRows returns the number of tuples.
func (f *FlatBlock) NumRows() int { return len(f.Rows) }

// NumCols returns the arity.
func (f *FlatBlock) NumCols() int { return len(f.Names) }

// ColIndex resolves an attribute name to its column position, or -1.
func (f *FlatBlock) ColIndex(name string) int {
	for i, n := range f.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Append adds one tuple. The row is copied so callers may reuse their
// buffer.
func (f *FlatBlock) Append(row []vector.Value) {
	f.Rows = append(f.Rows, append([]vector.Value(nil), row...))
}

// AppendOwned adds one tuple without copying; the caller yields ownership.
func (f *FlatBlock) AppendOwned(row []vector.Value) {
	f.Rows = append(f.Rows, row)
}

// MemBytes returns the accounted memory of the flat representation. Each
// value is charged its kind's fixed width plus string payload, plus the
// per-row slice overhead — the honest cost of a materialized tuple table,
// comparable with FTree.MemBytes.
func (f *FlatBlock) MemBytes() int {
	n := 48 + len(f.Rows)*24
	for _, row := range f.Rows {
		for _, v := range row {
			n += v.Kind.Width() + len(v.S)
		}
	}
	return n
}

// Project returns a new FlatBlock containing only the named columns, in
// order.
func (f *FlatBlock) Project(names []string) (*FlatBlock, error) {
	idx := make([]int, len(names))
	kinds := make([]vector.Kind, len(names))
	for i, name := range names {
		j := f.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("core: project: no column %q in flat block", name)
		}
		idx[i] = j
		kinds[i] = f.Kinds[j]
	}
	out := NewFlatBlock(append([]string(nil), names...), kinds)
	out.Rows = make([][]vector.Value, 0, len(f.Rows))
	for _, row := range f.Rows {
		nr := make([]vector.Value, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// String renders schema and a few rows for debugging.
func (f *FlatBlock) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FlatBlock{%s}x%d", strings.Join(f.Names, ","), f.NumRows())
	limit := f.NumRows()
	if limit > 5 {
		limit = 5
	}
	for i := 0; i < limit; i++ {
		sb.WriteString("\n  ")
		for j, v := range f.Rows[i] {
			if j > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}
