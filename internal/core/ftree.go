package core

import (
	"fmt"
	"strings"

	"ges/internal/vector"
)

// Range is one entry of an index vector: the half-open child-row interval
// [Start, End) that belongs to a single parent row. An empty interval
// (Start == End) means the parent row has no extension in the child.
type Range struct {
	Start, End int32
}

// Empty reports whether the range covers no rows.
func (r Range) Empty() bool { return r.Start >= r.End }

// Len returns the number of rows in the range.
func (r Range) Len() int { return int(r.End - r.Start) }

// Node is one node of an f-Tree (§4.2): an f-Block, a selection vector over
// its rows, and — unless it is the root — the index vector of the edge from
// its parent, mapping every parent row to a contiguous range of this node's
// rows (the Cartesian-product relationship).
type Node struct {
	Block *FBlock
	Sel   *vector.Bitset

	Parent   *Node
	Children []*Node

	// Index is the index vector I(parent,this): Index[i] is the row range
	// of this node belonging to parent row i. nil for the root.
	Index []Range

	id int // position in the tree's preorder registry
}

// ID returns the node's stable identifier within its tree.
func (n *Node) ID() int { return n.id }

// Valid reports whether row i of the node passes its selection vector.
func (n *Node) Valid(i int) bool { return n.Sel.Get(i) }

// ChildRange returns the row range of child rows for parent row i.
func (n *Node) ChildRange(i int) Range {
	return n.Index[i]
}

// FTree is the practical factorization tree of §4.2. It owns a preorder
// registry of its nodes (parents before children) which both the operators
// and the constant-delay enumerator walk.
type FTree struct {
	Root  *Node
	nodes []*Node

	// spare holds Node structs retired by Reset; AddChild reuses them —
	// including their selection-vector word capacity — so a recycled tree
	// regrows without re-allocating per-node state (§5, pre-allocated
	// reusable f-Trees).
	spare []*Node
}

// NewFTree creates a tree whose root holds the given block; all root rows
// start valid.
func NewFTree(rootBlock *FBlock) *FTree {
	root := &Node{Block: rootBlock, Sel: vector.NewBitset(rootBlock.NumRows())}
	return &FTree{Root: root, nodes: []*Node{root}}
}

// AddChild attaches a new node under parent with its block and the index
// vector of the connecting edge. len(index) must equal the parent block's
// cardinality. Each Expand adds one node this way, progressively growing the
// tree (§4.3, Expand).
func (t *FTree) AddChild(parent *Node, block *FBlock, index []Range) *Node {
	if len(index) != parent.Block.NumRows() {
		panic(fmt.Sprintf("core: index vector length %d != parent cardinality %d",
			len(index), parent.Block.NumRows()))
	}
	var n *Node
	if k := len(t.spare); k > 0 {
		n = t.spare[k-1]
		t.spare[k-1] = nil
		t.spare = t.spare[:k-1]
		n.Sel.Reinit(block.NumRows(), true)
		n.Block, n.Parent, n.Index = block, parent, index
	} else {
		n = &Node{
			Block:  block,
			Sel:    vector.NewBitset(block.NumRows()),
			Parent: parent,
			Index:  index,
		}
	}
	n.id = len(t.nodes)
	parent.Children = append(parent.Children, n)
	t.nodes = append(t.nodes, n)
	return n
}

// Reset re-roots the tree over rootBlock, retiring every non-root node into
// the spare list for AddChild to reuse. Block and index-vector references are
// dropped (their memory belongs to the query arena, not the tree); selection
// bitsets stay attached to the retired nodes so their word storage is
// recycled. A root-only tree over rootBlock with all rows valid remains —
// the state NewFTree would produce, minus the allocations.
func (t *FTree) Reset(rootBlock *FBlock) {
	for _, n := range t.nodes[1:] {
		n.Block, n.Parent, n.Index = nil, nil, nil
		n.Children = n.Children[:0]
		t.spare = append(t.spare, n)
	}
	clear(t.nodes[1:])
	t.nodes = t.nodes[:1]
	root := t.nodes[0]
	root.Block = rootBlock
	root.Children = root.Children[:0]
	root.Index = nil
	root.Sel.Reinit(rootBlock.NumRows(), true)
	t.Root = root
}

// Nodes returns the preorder node registry (parents precede children).
func (t *FTree) Nodes() []*Node { return t.nodes }

// NumNodes returns the number of nodes.
func (t *FTree) NumNodes() int { return len(t.nodes) }

// FindColumn locates the unique node and column holding attribute name. The
// disjoint-schema-partition property guarantees at most one owner.
func (t *FTree) FindColumn(name string) (*Node, *vector.Column) {
	for _, n := range t.nodes {
		if c := n.Block.ColumnByName(name); c != nil {
			return n, c
		}
	}
	return nil, nil
}

// Schema returns the union of all node schemas — S(R_FT).
func (t *FTree) Schema() []string {
	var out []string
	for _, n := range t.nodes {
		out = append(out, n.Block.Schema()...)
	}
	return out
}

// NodeOfColumns returns the single node owning every name in names, or nil
// when the names span multiple nodes. Order-By / Group-By use this to decide
// between factorized handling and de-factoring (§4.3).
func (t *FTree) NodeOfColumns(names []string) *Node {
	var owner *Node
	for _, name := range names {
		n, c := t.FindColumn(name)
		if c == nil {
			return nil
		}
		if owner == nil {
			owner = n
		} else if owner != n {
			return nil
		}
	}
	return owner
}

// CountTuples returns the number of valid tuples encoded by the tree — the
// cardinality of R_FT — without enumerating them. It runs one bottom-up
// pass: count(u,i) = Π_c Σ_{j ∈ I(u,c)[i], valid j} count(c,j).
func (t *FTree) CountTuples() int64 {
	memo := make([][]int64, len(t.nodes))
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		rows := n.Block.NumRows()
		cnt := make([]int64, rows)
		for r := 0; r < rows; r++ {
			if !n.Sel.Get(r) {
				continue
			}
			prod := int64(1)
			for _, c := range n.Children {
				sum := int64(0)
				rg := c.Index[r]
				for j := rg.Start; j < rg.End; j++ {
					sum += memo[c.id][j]
				}
				prod *= sum
				if prod == 0 {
					break
				}
			}
			cnt[r] = prod
		}
		memo[n.id] = cnt
	}
	total := int64(0)
	for r := 0; r < t.Root.Block.NumRows(); r++ {
		total += memo[0][r]
	}
	return total
}

// PruneUp clears the selection bit of every row (bottom-up from the given
// node) whose child ranges retain no valid row, so upstream operators skip
// dead subtrees early. It is an optimization; enumeration is correct without
// it.
func (t *FTree) PruneUp(from *Node) {
	for n := from; n != nil && n.Parent != nil; n = n.Parent {
		p := n.Parent
		changed := false
		for i := 0; i < p.Block.NumRows(); i++ {
			if !p.Sel.Get(i) {
				continue
			}
			rg := n.Index[i]
			hasValid := false
			for j := rg.Start; j < rg.End; j++ {
				if n.Sel.Get(int(j)) {
					hasValid = true
					break
				}
			}
			if !hasValid {
				p.Sel.Clear(i)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// MemBytes returns the accounted intermediate-result memory of the tree:
// blocks, selection vectors and index vectors. This is the quantity Table 2
// of the paper reports.
func (t *FTree) MemBytes() int {
	n := 64
	for _, nd := range t.nodes {
		n += nd.Block.MemBytes()
		n += nd.Sel.MemBytes()
		n += len(nd.Index) * 8
		n += 96 // node struct overhead
	}
	return n
}

// String renders the tree structure for debugging.
func (t *FTree) String() string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&sb, "%s valid=%d/%d\n", n.Block, n.Sel.Count(), n.Block.NumRows())
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return sb.String()
}
