package core

import (
	"strings"
	"testing"

	"ges/internal/vector"
)

func intCol(name string, vals ...int64) *vector.Column {
	c := vector.NewColumn(name, vector.KindInt64)
	for _, v := range vals {
		c.AppendInt64(v)
	}
	return c
}

func TestFBlockBasics(t *testing.T) {
	b := NewFBlock(intCol("a", 1, 2, 3), intCol("b", 4, 5, 6))
	if b.NumRows() != 3 || b.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", b.NumRows(), b.NumCols())
	}
	if got := b.Schema(); strings.Join(got, ",") != "a,b" {
		t.Fatalf("schema = %v", got)
	}
	if b.ColumnByName("b") == nil || b.ColumnByName("z") != nil {
		t.Fatal("ColumnByName broken")
	}
	tup := b.Tuple(1)
	if len(tup) != 2 || tup[0].I != 2 || tup[1].I != 5 {
		t.Fatalf("Tuple(1) = %v", tup)
	}
	if !strings.Contains(b.String(), "FBlock{a,b}x3") {
		t.Fatalf("String = %q", b.String())
	}
}

func TestFBlockCardinalityPanics(t *testing.T) {
	assertPanics(t, "NewFBlock mismatch", func() {
		NewFBlock(intCol("a", 1, 2), intCol("b", 1))
	})
	assertPanics(t, "AddColumn mismatch", func() {
		b := NewFBlock(intCol("a", 1, 2))
		b.AddColumn(intCol("b", 1))
	})
}

func assertPanics(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestFBlockReset(t *testing.T) {
	b := NewFBlock(intCol("a", 1, 2, 3))
	b.Reset()
	if b.NumRows() != 0 {
		t.Fatalf("rows after Reset = %d", b.NumRows())
	}
	b.Column(0).AppendInt64(9)
	if b.Tuple(0)[0].I != 9 {
		t.Fatal("block unusable after Reset")
	}
}

func TestFlatBlockProject(t *testing.T) {
	fb := NewFlatBlock([]string{"x", "y", "z"},
		[]vector.Kind{vector.KindInt64, vector.KindString, vector.KindInt64})
	fb.Append([]vector.Value{vector.Int64(1), vector.String_("a"), vector.Int64(10)})
	fb.Append([]vector.Value{vector.Int64(2), vector.String_("b"), vector.Int64(20)})

	p, err := fb.Project([]string{"z", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Rows[0][0].I != 10 || p.Rows[0][1].I != 1 {
		t.Fatalf("projected = %s", p)
	}
	if _, err := fb.Project([]string{"ghost"}); err == nil {
		t.Fatal("projecting a missing column must fail")
	}
}

func TestFlatBlockAppendCopies(t *testing.T) {
	fb := NewFlatBlock([]string{"x"}, []vector.Kind{vector.KindInt64})
	row := []vector.Value{vector.Int64(1)}
	fb.Append(row)
	row[0] = vector.Int64(99)
	if fb.Rows[0][0].I != 1 {
		t.Fatal("Append must copy the caller's buffer")
	}
}

func TestFlatBlockMemBytesCountsPayload(t *testing.T) {
	small := NewFlatBlock([]string{"s"}, []vector.Kind{vector.KindString})
	small.AppendOwned([]vector.Value{vector.String_("ab")})
	big := NewFlatBlock([]string{"s"}, []vector.Kind{vector.KindString})
	big.AppendOwned([]vector.Value{vector.String_(strings.Repeat("x", 10_000))})
	if big.MemBytes() <= small.MemBytes()+9000 {
		t.Fatalf("string payload not accounted: %d vs %d", small.MemBytes(), big.MemBytes())
	}
}

func TestFlatBlockSchemaMismatchPanics(t *testing.T) {
	assertPanics(t, "NewFlatBlock", func() {
		NewFlatBlock([]string{"a"}, nil)
	})
}

func TestChunkMemBytes(t *testing.T) {
	ft := figure7Tree()
	flat, _ := ft.DefactorAll()
	c := &Chunk{FT: ft, Flat: flat}
	if c.MemBytes() != ft.MemBytes()+flat.MemBytes() {
		t.Fatal("chunk memory must sum both representations")
	}
	if (&Chunk{Flat: flat}).IsFlat() != true || (&Chunk{FT: ft}).IsFlat() != false {
		t.Fatal("IsFlat wrong")
	}
}
