//go:build !gesassert

package core

// AssertEnabled reports whether the debug-build runtime assertion layer is
// compiled in (-tags gesassert). In release builds it is a false constant,
// so guarded CheckFTree calls compile away entirely.
const AssertEnabled = false

// CheckFTree is a no-op in release builds; see assert_on.go.
func CheckFTree(*FTree) {}
