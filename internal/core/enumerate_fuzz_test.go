package core

import (
	"math/rand"
	"testing"

	"ges/internal/vector"
)

// randomTreeSeeded builds one random (contiguous, in-bounds) tree from a
// fixed seed — shared by the invariant tests.
func randomTreeSeeded(seed int64) *FTree {
	return randomTree(rand.New(rand.NewSource(seed)))
}

// fuzzTree decodes an arbitrary byte string into a small, well-formed f-Tree:
// node count, per-parent extension widths, and selection bits are all drawn
// from the input, while contiguity and bounds hold by construction (the same
// guarantees Expand provides; Invariants re-checks them below). Returns nil
// when the input is too short to drive the decoder.
func fuzzTree(data []byte) *FTree {
	if len(data) < 4 {
		return nil
	}
	pos := 0
	next := func() int {
		b := data[pos%len(data)]
		pos++
		return int(b)
	}

	colID := 0
	val := int64(0)
	makeBlock := func(rows int) *FBlock {
		col := vector.NewColumn(string(rune('a'+colID%26))+string(rune('0'+colID/26)), vector.KindInt64)
		colID++
		for r := 0; r < rows; r++ {
			col.AppendInt64(val)
			val++
		}
		return NewFBlock(col)
	}

	nNodes := 1 + next()%4
	rootRows := 1 + next()%6
	ft := NewFTree(makeBlock(rootRows))
	for len(ft.Nodes()) < nNodes {
		parent := ft.Nodes()[next()%len(ft.Nodes())]
		pRows := parent.Block.NumRows()
		index := make([]Range, pRows)
		total := int32(0)
		for i := 0; i < pRows; i++ {
			span := int32(next() % 4) // 0 = no extension for this parent row
			index[i] = Range{Start: total, End: total + span}
			total += span
		}
		ft.AddChild(parent, makeBlock(int(total)), index)
	}
	for _, n := range ft.Nodes() {
		for r := 0; r < n.Block.NumRows(); r++ {
			if next()%4 == 0 {
				n.Sel.Clear(r)
			}
		}
	}
	return ft
}

// FuzzEnumerate drives random f-Tree shapes — index vectors and selection
// patterns decoded from fuzz input — through the constant-delay enumerator
// and cross-checks DefactorAll against the naive recursive expansion
// (bruteForce), CountTuples, the structural invariants, and the
// range-splitting property morsel-parallel de-factoring relies on.
//
// Run `go test -fuzz=FuzzEnumerate ./internal/core` to explore beyond the
// seed corpus.
func FuzzEnumerate(f *testing.F) {
	// Seeds mirroring the shapes of the existing ftree tests: the figure-7
	// two-child tree, a chain, a zero-extension tree, wide fan-out, and a
	// few byte strings exercising selection-clearing paths.
	f.Add([]byte{2, 1, 0, 2, 2, 3, 1, 0, 0, 0})          // root + two children (figure-7 shape)
	f.Add([]byte{3, 1, 0, 1, 1, 1, 2, 1, 1, 1, 1, 0})    // three-node chain
	f.Add([]byte{1, 5, 9, 9})                            // root only
	f.Add([]byte{2, 3, 0, 0, 0, 0})                      // child with all-empty ranges
	f.Add([]byte{3, 5, 0, 3, 3, 3, 3, 3, 0, 1, 1, 1, 1}) // wide fan-out
	f.Add([]byte{2, 4, 0, 2, 0, 2, 0, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 0, 0, 4}) // heavy selection clearing
	f.Fuzz(func(t *testing.T, data []byte) {
		ft := fuzzTree(data)
		if ft == nil {
			return
		}
		// The decoder must only build trees satisfying the representation
		// invariants (same contract as the operators).
		if err := ft.Invariants(); err != nil {
			t.Fatalf("decoder built an invalid tree: %v\n%s", err, ft)
		}
		want := bruteForce(ft)
		fb, err := ft.DefactorAll()
		if err != nil {
			t.Fatal(err)
		}
		if fb.NumRows() != len(want) {
			t.Fatalf("DefactorAll produced %d tuples, naive enumeration %d\n%s", fb.NumRows(), len(want), ft)
		}
		if got := ft.CountTuples(); got != int64(len(want)) {
			t.Fatalf("CountTuples = %d, naive enumeration %d", got, len(want))
		}
		gotKeys, wantKeys := sortedKeys(fb.Rows), sortedKeys(want)
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("tuple multiset mismatch at %d:\n got %q\nwant %q", i, gotKeys[i], wantKeys[i])
			}
		}
		// Splitting the root range and concatenating must reproduce the full
		// enumeration exactly, in order (EnumerateRange contract).
		mid := ft.Root.Block.NumRows() / 2
		lo, err := ft.DefactorRange(ft.Schema(), 0, mid)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := ft.DefactorRange(ft.Schema(), mid, ft.Root.Block.NumRows())
		if err != nil {
			t.Fatal(err)
		}
		if lo.NumRows()+hi.NumRows() != fb.NumRows() {
			t.Fatalf("range split %d+%d != full %d", lo.NumRows(), hi.NumRows(), fb.NumRows())
		}
		both := append(append([][]vector.Value{}, lo.Rows...), hi.Rows...)
		for i := range both {
			if tupleKey(both[i]) != tupleKey(fb.Rows[i]) {
				t.Fatalf("range-split enumeration diverges at tuple %d", i)
			}
		}
	})
}
