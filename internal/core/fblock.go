// Package core implements the paper's primary contribution (§4): the
// factorized intermediate-result representation of the GES query executor.
//
// An f-Block is a cache-friendly column-oriented block storing the Union of
// tuples over its schema. An f-Tree arranges f-Blocks into a rooted tree
// whose edges encode Cartesian-product relationships via index vectors, with
// a selection vector per node marking valid rows. Together they factorize a
// relation: the relation's schema is partitioned disjointly across the tree
// nodes (disjoint schema partition property), redundancy is eliminated, and
// the encoded tuples can be enumerated with constant delay (Lemma 4.4) into
// a row-oriented flat-block when a blocking operator demands it.
package core

import (
	"fmt"
	"strings"

	"ges/internal/vector"
)

// FBlock is a set of equal-cardinality typed columns — the Union of tuples
// over its schema (§4.2, "f-Block").
type FBlock struct {
	cols []*vector.Column
}

// NewFBlock returns an f-Block over the given columns; all columns must
// share one cardinality.
func NewFBlock(cols ...*vector.Column) *FBlock {
	b := &FBlock{cols: cols}
	b.mustAligned()
	return b
}

func (b *FBlock) mustAligned() {
	if len(b.cols) == 0 {
		return
	}
	n := b.cols[0].Len()
	for _, c := range b.cols[1:] {
		if c.Len() != n {
			panic(fmt.Sprintf("core: f-Block cardinality mismatch: %q has %d rows, %q has %d",
				b.cols[0].Name, n, c.Name, c.Len()))
		}
	}
}

// NumRows returns the block cardinality N.
func (b *FBlock) NumRows() int {
	if len(b.cols) == 0 {
		return 0
	}
	return b.cols[0].Len()
}

// NumCols returns the number of columns.
func (b *FBlock) NumCols() int { return len(b.cols) }

// Columns returns the backing column slice (shared; do not mutate length).
func (b *FBlock) Columns() []*vector.Column { return b.cols }

// Column returns the i-th column.
func (b *FBlock) Column(i int) *vector.Column { return b.cols[i] }

// ColumnByName returns the column with the given name, or nil.
func (b *FBlock) ColumnByName(name string) *vector.Column {
	for _, c := range b.cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// AddColumn appends a column to the block; Projection uses this to attach
// fetched property columns (§4.3). The column must match the cardinality of
// the block unless the block is empty.
func (b *FBlock) AddColumn(c *vector.Column) {
	if len(b.cols) > 0 && c.Len() != b.NumRows() {
		panic(fmt.Sprintf("core: AddColumn %q with %d rows onto block of %d", c.Name, c.Len(), b.NumRows()))
	}
	b.cols = append(b.cols, c)
}

// Schema returns the attribute names covered by this block.
func (b *FBlock) Schema() []string {
	out := make([]string, len(b.cols))
	for i, c := range b.cols {
		out[i] = c.Name
	}
	return out
}

// Tuple materializes the i-th tuple of the block (F_B^[i] in the paper).
func (b *FBlock) Tuple(i int) []vector.Value {
	t := make([]vector.Value, len(b.cols))
	for j, c := range b.cols {
		t[j] = c.Get(i)
	}
	return t
}

// Reset truncates all columns to zero rows, retaining capacity, so a
// pre-allocated block can be reused across batches (§5, Vectorization).
func (b *FBlock) Reset() {
	for _, c := range b.cols {
		c.Reset()
	}
}

// Reinit re-points a recycled block at a new column set, retaining the
// column-pointer slice's capacity (§5, memory pool). The cols argument is
// copied, not retained, so variadic callers keep their argument on the stack.
func (b *FBlock) Reinit(cols []*vector.Column) {
	b.cols = append(b.cols[:0], cols...)
	b.mustAligned()
}

// Drop clears the block's column references (releasing them for collection or
// reuse) and truncates it, readying the block for pooling.
func (b *FBlock) Drop() {
	clear(b.cols)
	b.cols = b.cols[:0]
}

// MemBytes returns the accounted intermediate-result memory of the block.
func (b *FBlock) MemBytes() int {
	n := 48
	for _, c := range b.cols {
		n += c.MemBytes()
	}
	return n
}

// String renders the schema and cardinality for debugging.
func (b *FBlock) String() string {
	return fmt.Sprintf("FBlock{%s}x%d", strings.Join(b.Schema(), ","), b.NumRows())
}
