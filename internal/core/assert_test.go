package core

import (
	"strings"
	"testing"

	"ges/internal/vector"
)

func TestInvariantsAcceptsWellFormedTrees(t *testing.T) {
	if err := figure7Tree().Invariants(); err != nil {
		t.Fatalf("figure-7 tree should satisfy all invariants: %v", err)
	}
	// Zero-row root.
	empty := NewFTree(NewFBlock(vector.NewColumn("x", vector.KindInt64)))
	if err := empty.Invariants(); err != nil {
		t.Fatalf("empty tree should satisfy all invariants: %v", err)
	}
	// Zero-row child under a populated root (every range empty).
	ft := NewFTree(NewFBlock(intCol("a", 1, 2)))
	ft.AddChild(ft.Root, NewFBlock(vector.NewColumn("b", vector.KindInt64)),
		[]Range{{0, 0}, {0, 0}})
	if err := ft.Invariants(); err != nil {
		t.Fatalf("zero-row child should satisfy all invariants: %v", err)
	}
}

func TestInvariantsCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		mut  func() *FTree
		want string
	}{
		{
			name: "cardinality mismatch (I1)",
			mut: func() *FTree {
				ft := NewFTree(NewFBlock(intCol("a", 1, 2)))
				// Append behind the block's back, bypassing AddColumn's check —
				// exactly the mutation rule R4 forbids statically.
				ft.Root.Block.Column(0).AppendInt64(3)
				return ft
			},
			want: "rows, block has",
		},
		{
			name: "selection bounds (I2)",
			mut: func() *FTree {
				ft := NewFTree(NewFBlock(intCol("a", 1, 2)))
				ft.Root.Sel = vector.NewBitset(5)
				return ft
			},
			want: "selection vector covers",
		},
		{
			name: "non-contiguous index (I3)",
			mut: func() *FTree {
				ft := NewFTree(NewFBlock(intCol("a", 1, 2)))
				ft.AddChild(ft.Root, NewFBlock(intCol("b", 10, 20, 30)),
					[]Range{{0, 1}, {2, 3}}) // gap: row 1 unowned
				return ft
			},
			want: "not contiguous",
		},
		{
			name: "inverted range (I3)",
			mut: func() *FTree {
				ft := NewFTree(NewFBlock(intCol("a", 1)))
				ft.AddChild(ft.Root, NewFBlock(intCol("b", 10)), []Range{{1, 0}})
				return ft
			},
			want: "inverted",
		},
		{
			name: "index out of child bounds (I3)",
			mut: func() *FTree {
				ft := NewFTree(NewFBlock(intCol("a", 1)))
				ft.AddChild(ft.Root, NewFBlock(intCol("b", 10)), []Range{{0, 4}})
				return ft
			},
			want: "exceeds child cardinality",
		},
		{
			name: "index undercovers child (I3)",
			mut: func() *FTree {
				ft := NewFTree(NewFBlock(intCol("a", 1)))
				ft.AddChild(ft.Root, NewFBlock(intCol("b", 10, 20)), []Range{{0, 1}})
				return ft
			},
			want: "covers 1 child rows",
		},
		{
			name: "duplicate attribute (I4)",
			mut: func() *FTree {
				ft := NewFTree(NewFBlock(intCol("a", 1)))
				ft.AddChild(ft.Root, NewFBlock(intCol("a", 10)), []Range{{0, 1}})
				return ft
			},
			want: "partition not disjoint",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.mut().Invariants()
			if err == nil {
				t.Fatalf("Invariants accepted a tree violating %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Invariants error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestInvariantsAcceptRandomTrees(t *testing.T) {
	// The shared random-tree generator builds contiguous index vectors by
	// construction; all of them must pass the checker.
	for trial := 0; trial < 100; trial++ {
		ft := randomTreeSeeded(int64(trial))
		if err := ft.Invariants(); err != nil {
			t.Fatalf("trial %d: random tree rejected: %v", trial, err)
		}
	}
}
