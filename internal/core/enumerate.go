package core

import (
	"fmt"
	"sync"

	"ges/internal/vector"
)

// ColRef addresses one projected attribute inside an f-Tree: the owning
// node's ID and the column's position within that node's block.
type ColRef struct {
	Node int
	Col  int
}

// proj pairs a projected column with its slot in the enumeration row buffer.
type proj struct {
	col    *vector.Column
	bufPos int
}

// enumScratch is the reusable per-call state of EnumerateRange: the
// per-node projection plan, one backing array split into the parent-index /
// cursor / end stacks, and the row buffer handed to the callback.
type enumScratch struct {
	projs [][]proj
	idx   []int
	buf   []vector.Value
}

var enumPool = sync.Pool{New: func() any { return new(enumScratch) }}

// grow sizes the scratch for an n-node tree projecting cols attributes and
// returns the individual views, full-length-capped so appends cannot bleed
// between the three stacks.
func (sc *enumScratch) grow(n, cols int) (projs [][]proj, parentIdx, cur, end []int, buf []vector.Value) {
	if cap(sc.projs) < n {
		sc.projs = make([][]proj, n)
	}
	projs = sc.projs[:n]
	for i := range projs {
		projs[i] = projs[i][:0]
	}
	if cap(sc.idx) < 3*n {
		sc.idx = make([]int, 3*n)
	}
	idx := sc.idx[:3*n]
	clear(idx)
	parentIdx, cur, end = idx[:n:n], idx[n:2*n:2*n], idx[2*n:]
	if cap(sc.buf) < cols {
		sc.buf = make([]vector.Value, cols)
	}
	buf = sc.buf[:cols]
	return
}

// release drops every column and value reference the scratch picked up — so
// a pooled scratch never pins graph or intermediate memory — and returns it
// to the pool.
func (sc *enumScratch) release() {
	for i := range sc.projs {
		clear(sc.projs[i])
		sc.projs[i] = sc.projs[i][:0]
	}
	clear(sc.buf[:cap(sc.buf)])
	enumPool.Put(sc)
}

// Resolve maps attribute names to ColRefs, failing on unknown names.
func (t *FTree) Resolve(names []string) ([]ColRef, error) {
	refs := make([]ColRef, len(names))
	for i, name := range names {
		n, c := t.FindColumn(name)
		if c == nil {
			return nil, fmt.Errorf("core: no column %q in f-tree (schema %v)", name, t.Schema())
		}
		col := -1
		for j, cc := range n.Block.Columns() {
			if cc == c {
				col = j
				break
			}
		}
		refs[i] = ColRef{Node: n.id, Col: col}
	}
	return refs, nil
}

// Enumerate walks every valid tuple of the relation factorized by the tree
// (R_FT) and calls fn with a reusable row buffer holding the projected
// attributes; fn must copy the buffer if it retains it, and may return false
// to stop enumeration early. The walk is the constant-delay enumeration of
// Lemma 4.4 realized as a preorder backtracking loop: each node's row
// iterator ranges over the index-vector interval selected by its parent's
// current row, so the work per emitted tuple is O(|schema|).
func (t *FTree) Enumerate(refs []ColRef, fn func(row []vector.Value) bool) {
	t.EnumerateRange(refs, 0, t.Root.Block.NumRows(), fn)
}

// EnumerateRange is Enumerate restricted to root rows [lo,hi). Tuples are
// produced in the same order Enumerate would produce them, so enumerating
// consecutive ranges and concatenating yields exactly the full enumeration —
// the property the morsel-parallel de-factoring relies on.
func (t *FTree) EnumerateRange(refs []ColRef, lo, hi int, fn func(row []vector.Value) bool) {
	n := len(t.nodes)
	if n == 0 || t.Root.Block.NumRows() == 0 || lo >= hi {
		return
	}
	// The walk's per-call scratch (cursor stacks, projection plan, row
	// buffer) cycles through a package pool so steady-state enumeration —
	// one call per aggregate or de-factor morsel — allocates nothing. The
	// pool (not the tree) carries the scratch because parallel de-factoring
	// enumerates disjoint ranges of one tree concurrently.
	sc := enumPool.Get().(*enumScratch)
	defer sc.release()
	projs, parentIdx, cur, end, buf := sc.grow(n, len(refs))
	for pos, r := range refs {
		projs[r.Node] = append(projs[r.Node], proj{col: t.nodes[r.Node].Block.Column(r.Col), bufPos: pos})
	}
	sc.projs = projs // retain any inner-slice growth for reuse
	for i := 1; i < n; i++ {
		parentIdx[i] = t.nodes[i].Parent.id
	}

	cur[0], end[0] = lo, hi
	d := 0
	for d >= 0 {
		// Advance node d's iterator to its next valid row.
		node := t.nodes[d]
		r := -1
		if cur[d] < end[d] {
			if s := node.Sel.NextSet(cur[d]); s >= 0 && s < end[d] {
				r = s
			}
		}
		if r < 0 {
			// Exhausted: backtrack and advance the parent level.
			d--
			if d >= 0 {
				cur[d]++
			}
			continue
		}
		cur[d] = r
		for _, p := range projs[d] {
			buf[p.bufPos] = p.col.Get(r)
		}
		if d == n-1 {
			if !fn(buf) {
				return
			}
			cur[d]++
			continue
		}
		// Descend: initialize the next node's iterator from its parent's
		// current row.
		d++
		rg := t.nodes[d].Index[cur[parentIdx[d]]]
		cur[d], end[d] = int(rg.Start), int(rg.End)
	}
}

// Defactor materializes the named attributes of every valid tuple into a
// row-oriented FlatBlock — the "ultimate solution" the executor reverts to
// for complex blocking logic (§4.2, Flat-Block).
func (t *FTree) Defactor(names []string) (*FlatBlock, error) {
	return t.DefactorRange(names, 0, t.Root.Block.NumRows())
}

// DefactorRange materializes the named attributes of every valid tuple whose
// root row falls in [lo,hi). Concatenating the blocks of consecutive ranges
// reproduces Defactor exactly (see EnumerateRange) — the building block of
// morsel-parallel de-factoring.
func (t *FTree) DefactorRange(names []string, lo, hi int) (*FlatBlock, error) {
	refs, err := t.Resolve(names)
	if err != nil {
		return nil, err
	}
	kinds := make([]vector.Kind, len(refs))
	for i, r := range refs {
		kinds[i] = t.nodes[r.Node].Block.Column(r.Col).Kind
	}
	out := NewFlatBlock(append([]string(nil), names...), kinds)
	t.EnumerateRange(refs, lo, hi, func(row []vector.Value) bool {
		out.Append(row)
		return true
	})
	return out, nil
}

// DefactorAll materializes every attribute of the tree in preorder schema
// order.
func (t *FTree) DefactorAll() (*FlatBlock, error) {
	return t.Defactor(t.Schema())
}

// Chunk is the intermediate-result currency flowing between operators: it
// holds either a factorized tree or a flat block. Operators prefer the
// factorized branch; the first operator needing global cross-node state
// de-factors, and all downstream operators run block-based — the paper's
// "seamlessly reverts to block-based execution" (§4).
type Chunk struct {
	FT   *FTree
	Flat *FlatBlock
}

// IsFlat reports whether the chunk is in the flat representation.
func (c *Chunk) IsFlat() bool { return c.Flat != nil }

// MemBytes returns the accounted memory of whichever representation the
// chunk holds; the executor samples this after every operator to report the
// peak intermediate size (Table 2).
func (c *Chunk) MemBytes() int {
	n := 0
	if c.FT != nil {
		n += c.FT.MemBytes()
	}
	if c.Flat != nil {
		n += c.Flat.MemBytes()
	}
	return n
}
