//go:build gesassert

package core

// AssertEnabled reports whether the debug-build runtime assertion layer is
// compiled in (-tags gesassert). Operators guard CheckFTree calls with it so
// release builds pay nothing.
const AssertEnabled = true

// CheckFTree panics if the tree violates any representation invariant
// (see Invariants). Operators call it at block boundaries under the
// gesassert build tag; the CI lane `go test -tags gesassert -race ./...`
// runs the whole suite with it armed.
func CheckFTree(t *FTree) {
	if err := t.Invariants(); err != nil {
		panic("core: f-tree invariant violation: " + err.Error())
	}
}
