package core

import "fmt"

// Representation invariants of the factorized intermediate result. The
// operators in internal/op maintain these implicitly; geslint (cmd/geslint)
// enforces the coding discipline statically, and debug builds
// (-tags gesassert) verify the data structures themselves at operator block
// boundaries via CheckFTree.
//
// The invariants are exactly the properties §4.2 relies on:
//
//  I1 (cardinality)  — every column of an f-Block has the block cardinality.
//  I2 (sel bounds)   — each node's selection vector covers exactly its
//                      block's rows.
//  I3 (index shape)  — a non-root node's index vector has one entry per
//                      parent row; entries are well-formed (Start <= End),
//                      in child-row bounds, monotone, and contiguous:
//                      Index[0].Start == 0, Index[i].End == Index[i+1].Start,
//                      and the last End equals the child cardinality.
//                      Constant-delay enumeration (Lemma 4.4) depends on it.
//  I4 (partition)    — attribute names are owned by exactly one node
//                      (disjoint schema partition).
//  I5 (registry)     — the node registry is preorder-consistent: parents
//                      precede children and IDs match registry positions.

// Invariants checks I1–I5 on the tree and returns the first violation found,
// or nil. It is always compiled (the fuzzers and tests use it directly);
// CheckFTree is the build-tag-gated panicking wrapper operators call.
func (t *FTree) Invariants() error {
	if t.Root == nil || len(t.nodes) == 0 {
		return fmt.Errorf("f-tree has no root")
	}
	if t.nodes[0] != t.Root {
		return fmt.Errorf("registry[0] is not the root")
	}
	seen := make(map[string]int, 8)
	for pos, n := range t.nodes {
		// I5: registry consistency.
		if n.id != pos {
			return fmt.Errorf("node at registry position %d has id %d", pos, n.id)
		}
		if pos == 0 {
			if n.Parent != nil || n.Index != nil {
				return fmt.Errorf("root node has a parent or an index vector")
			}
		} else {
			if n.Parent == nil {
				return fmt.Errorf("non-root node %d has no parent", pos)
			}
			if n.Parent.id >= pos {
				return fmt.Errorf("node %d precedes its parent %d in the registry (preorder violated)", pos, n.Parent.id)
			}
		}
		// I1: one cardinality per block.
		rows := n.Block.NumRows()
		for _, c := range n.Block.Columns() {
			if c.Len() != rows {
				return fmt.Errorf("node %d: column %q has %d rows, block has %d", pos, c.Name, c.Len(), rows)
			}
		}
		// I2: selection-vector bounds.
		if n.Sel == nil {
			return fmt.Errorf("node %d has no selection vector", pos)
		}
		if n.Sel.Len() != rows {
			return fmt.Errorf("node %d: selection vector covers %d rows, block has %d", pos, n.Sel.Len(), rows)
		}
		// I3: index-vector shape.
		if pos > 0 {
			if err := checkIndexVector(n, rows); err != nil {
				return fmt.Errorf("node %d: %w", pos, err)
			}
		}
		// I4: disjoint schema partition.
		for _, name := range n.Block.Schema() {
			if owner, dup := seen[name]; dup {
				return fmt.Errorf("attribute %q owned by nodes %d and %d (schema partition not disjoint)", name, owner, pos)
			}
			seen[name] = pos
		}
	}
	return nil
}

// checkIndexVector verifies I3 for one non-root node whose block holds rows
// child rows.
func checkIndexVector(n *Node, rows int) error {
	if len(n.Index) != n.Parent.Block.NumRows() {
		return fmt.Errorf("index vector has %d entries, parent has %d rows", len(n.Index), n.Parent.Block.NumRows())
	}
	prevEnd := int32(0)
	for i, rg := range n.Index {
		if rg.Start > rg.End {
			return fmt.Errorf("index[%d] = [%d,%d) is inverted", i, rg.Start, rg.End)
		}
		if rg.Start != prevEnd {
			return fmt.Errorf("index[%d] starts at %d, want %d (index vector not contiguous)", i, rg.Start, prevEnd)
		}
		if int(rg.End) > rows {
			return fmt.Errorf("index[%d] = [%d,%d) exceeds child cardinality %d", i, rg.Start, rg.End, rows)
		}
		prevEnd = rg.End
	}
	if len(n.Index) > 0 && int(prevEnd) != rows {
		return fmt.Errorf("index vector covers %d child rows, block has %d", prevEnd, rows)
	}
	if len(n.Index) == 0 && rows != 0 {
		return fmt.Errorf("empty index vector over a %d-row block", rows)
	}
	return nil
}
