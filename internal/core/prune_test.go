package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPruneUpPreservesRelation: pruning only clears parent rows whose every
// child extension is invalid, so the encoded relation must be unchanged —
// for random trees, random selection patterns, and pruning from every node.
func TestPruneUpPreservesRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(1717))
	for trial := 0; trial < 200; trial++ {
		ft := randomTree(rng)
		before, err := ft.DefactorAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ft.Nodes() {
			ft.PruneUp(n)
		}
		after, err := ft.DefactorAll()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedKeys(before.Rows), sortedKeys(after.Rows)) {
			t.Fatalf("trial %d: PruneUp changed the relation\nbefore %v\nafter %v",
				trial, sortedKeys(before.Rows), sortedKeys(after.Rows))
		}
		if got := ft.CountTuples(); got != int64(after.NumRows()) {
			t.Fatalf("trial %d: CountTuples %d != rows %d after prune", trial, got, after.NumRows())
		}
	}
}

// TestPruneUpActuallyPrunes: on a chain where all leaves die, every ancestor
// row must be invalidated.
func TestPruneUpActuallyPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		ft := randomTree(rng)
		nodes := ft.Nodes()
		leaf := nodes[len(nodes)-1]
		if len(leaf.Children) > 0 {
			continue
		}
		leaf.Sel.ClearAll()
		ft.PruneUp(leaf)
		// Any parent row whose entire range pointed into the dead leaf must
		// now be invalid.
		if p := leaf.Parent; p != nil {
			for i := 0; i < p.Block.NumRows(); i++ {
				if p.Sel.Get(i) && !leaf.Index[i].Empty() {
					t.Fatalf("trial %d: parent row %d survived with only dead children", trial, i)
				}
			}
		}
	}
}
