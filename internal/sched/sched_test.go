package sched_test

import (
	"sync/atomic"
	"testing"

	"ges/internal/sched"
)

func TestRunMorselsCoversEveryRowOnce(t *testing.T) {
	s := sched.New(4)
	defer s.Close()
	for _, n := range []int{0, 1, 63, 64, 255, 256, 1000, 4097} {
		seen := make([]int32, n)
		s.RunMorsels(8, n, 256, func(m sched.Morsel) {
			if m.Start < 0 || m.End > n || m.Start > m.End {
				t.Errorf("n=%d: bad morsel %+v", n, m)
			}
			for i := m.Start; i < m.End; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: row %d covered %d times", n, i, c)
			}
		}
	}
}

func TestRunMorselsDeterministicMergeOrder(t *testing.T) {
	s := sched.New(8)
	defer s.Close()
	const n, size = 10000, 64
	nm := sched.NumMorsels(n, size)
	shards := make([][]int, nm)
	s.RunMorsels(8, n, size, func(m sched.Morsel) {
		for i := m.Start; i < m.End; i++ {
			shards[m.Index] = append(shards[m.Index], i)
		}
	})
	// Concatenating shards in index order must reproduce 0..n-1 exactly.
	want := 0
	for _, sh := range shards {
		for _, v := range sh {
			if v != want {
				t.Fatalf("merge order broken: got %d want %d", v, want)
			}
			want++
		}
	}
	if want != n {
		t.Fatalf("merged %d rows, want %d", want, n)
	}
}

func TestRunMorselsSequentialFallback(t *testing.T) {
	s := sched.New(2)
	defer s.Close()
	order := []int(nil)
	// parallel=1 must run inline, in order, on the calling goroutine.
	s.RunMorsels(1, 500, 100, func(m sched.Morsel) {
		order = append(order, m.Index)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential fallback out of order: %v", order)
		}
	}
}

func TestRunMorselsPanicPropagates(t *testing.T) {
	s := sched.New(4)
	defer s.Close()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate to the caller")
		}
	}()
	s.RunMorsels(4, 10000, 64, func(m sched.Morsel) {
		if m.Index == 7 {
			panic("boom")
		}
	})
}

func TestGroupBoundsInFlight(t *testing.T) {
	s := sched.New(8)
	defer s.Close()
	g := s.NewGroup(3)
	var inFlight, peak, total atomic.Int64
	for i := 0; i < 200; i++ {
		g.Go(func() {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			total.Add(1)
			inFlight.Add(-1)
		})
	}
	g.Wait()
	if total.Load() != 200 {
		t.Fatalf("ran %d tasks, want 200", total.Load())
	}
	if peak.Load() > 3 {
		t.Fatalf("in-flight peak %d exceeds group limit 3", peak.Load())
	}
}

func TestIntraQueryParallelismUnderInterQueryLoad(t *testing.T) {
	// Morsel loops must finish even when every pool worker is occupied by
	// long-running group tasks: the caller participates, so saturation
	// degrades parallelism rather than deadlocking.
	s := sched.New(2)
	defer s.Close()
	g := s.NewGroup(2)
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		g.Go(func() { <-release })
	}
	var rows atomic.Int64
	s.RunMorsels(4, 5000, 64, func(m sched.Morsel) {
		rows.Add(int64(m.End - m.Start))
	})
	close(release)
	g.Wait()
	if rows.Load() != 5000 {
		t.Fatalf("covered %d rows, want 5000", rows.Load())
	}
}
