// Package sched implements the process-wide morsel-driven worker runtime
// (§2.1, Runtime). One bounded pool of workers serves every source of
// parallelism in the process: intra-query operators shard their parent
// f-Block rows into fixed-size morsels claimed off a shared counter, and
// inter-query drivers (the service layer, the benchmark driver) submit whole
// queries through bounded Groups. Both draw from the same worker budget, so
// a saturated service degrades intra-query fan-out gracefully instead of
// over-subscribing the machine with uncoordinated per-operator goroutines.
//
// Determinism contract: RunMorsels invokes fn once per morsel with a stable
// Morsel.Index. Callers confine writes to morsel-indexed state and merge
// shard outputs in index order, which reproduces sequential output exactly —
// results are byte-identical regardless of worker count or scheduling order.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselSize is the parent-row shard size operators use when they
// have no better estimate. It is a multiple of 64 so morsel boundaries fall
// on selection-vector word boundaries: concurrent morsels never touch the
// same bitset word.
const DefaultMorselSize = 256

// Morsel is one contiguous shard of rows.
type Morsel struct {
	// Index is the morsel's position in the sequence; merge per-morsel
	// outputs in this order to reproduce sequential results.
	Index int
	// Start and End delimit the half-open row range [Start, End).
	Start, End int
}

// NumMorsels returns the number of morsels covering n rows at the given
// size (ceil division; size <= 0 uses DefaultMorselSize).
func NumMorsels(n, size int) int {
	if size <= 0 {
		size = DefaultMorselSize
	}
	return (n + size - 1) / size
}

// Scheduler owns a fixed set of worker goroutines draining one task queue.
type Scheduler struct {
	workers int
	tasks   chan func()
	close   sync.Once
}

// New starts a scheduler with the given worker count; values < 1 default to
// GOMAXPROCS.
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{workers: workers, tasks: make(chan func(), 4*workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range s.tasks {
				t()
			}
		}()
	}
	return s
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Close stops the workers once queued tasks drain. Only private schedulers
// (tests) call it; the global scheduler lives for the process.
func (s *Scheduler) Close() { s.close.Do(func() { close(s.tasks) }) }

// Submit enqueues one task on the pool without blocking; false means the
// queue is saturated and the caller should run the task itself. Background
// maintenance (the storage layer's family reseals) rides on this so it
// never stalls a mutating caller.
func (s *Scheduler) Submit(t func()) bool { return s.trySubmit(t) }

// trySubmit enqueues t unless the queue is full.
func (s *Scheduler) trySubmit(t func()) bool {
	select {
	case s.tasks <- t:
		return true
	default:
		return false
	}
}

var (
	globalMu sync.Mutex
	global   *Scheduler
)

// Global returns the shared process-wide scheduler, starting it on first
// use with GOMAXPROCS workers.
func Global() *Scheduler {
	globalMu.Lock()
	defer globalMu.Unlock()
	if global == nil {
		global = New(0)
	}
	return global
}

// RunMorsels shards [0,n) into size-row morsels and executes fn once per
// morsel, using up to parallel concurrent claimants: the calling goroutine
// plus helpers drawn from the worker pool. Claimants pull morsels off a
// shared atomic counter (the classic morsel-driven loop), so work balances
// across skewed shards. The caller always participates and helper submission
// never blocks — when the pool is saturated by other queries the loop simply
// runs with fewer claimants, guaranteeing progress without deadlock or
// goroutine fan-out beyond the budget.
//
// fn runs concurrently with itself; it must confine writes to state indexed
// by Morsel.Index (or to non-overlapping row ranges). A panic in fn is
// re-raised on the calling goroutine after all claimants stop.
func (s *Scheduler) RunMorsels(parallel, n, size int, fn func(Morsel)) {
	if n <= 0 {
		return
	}
	if size <= 0 {
		size = DefaultMorselSize
	}
	nm := (n + size - 1) / size
	if parallel > nm {
		parallel = nm
	}
	if parallel <= 1 {
		for i := 0; i < nm; i++ {
			fn(morselAt(i, size, n))
		}
		return
	}

	// Completion is tracked by counting finished morsels, not helper
	// goroutines: a helper queued behind long-running pool tasks may never
	// start, and the caller must not wait on it once every morsel is done.
	var (
		next, done atomic.Int64
		closeOnce  sync.Once
		pmu        sync.Mutex
		pval       any
		pseen      bool

		gmu    sync.Mutex
		active int
		sealed bool
	)
	doneCh := make(chan struct{})
	idleCh := make(chan struct{})
	finish := func(k int64) {
		if done.Add(k) >= int64(nm) {
			closeOnce.Do(func() { close(doneCh) })
		}
	}
	claim := func() {
		// Entry gate (see runMorselsPerClaimant): on the panic path doneCh
		// can close while another claimant is still inside fn, so the caller
		// must be able to wait out every registered claimant before it
		// releases (and the engine recycles) the query arena fn draws from.
		gmu.Lock()
		if sealed {
			gmu.Unlock()
			return
		}
		active++
		gmu.Unlock()
		defer func() {
			gmu.Lock()
			active--
			last := sealed && active == 0
			gmu.Unlock()
			if last {
				close(idleCh)
			}
		}()
		defer func() {
			if r := recover(); r != nil {
				pmu.Lock()
				if !pseen {
					pseen, pval = true, r
				}
				pmu.Unlock()
				// Stop further claims and account for the panicked morsel
				// plus everything left unclaimed, so the caller wakes.
				old := next.Swap(int64(nm))
				if old > int64(nm) {
					old = int64(nm)
				}
				finish(int64(nm) - old + 1)
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= nm {
				return
			}
			fn(morselAt(i, size, n))
			finish(1)
		}
	}

	for h := 0; h < parallel-1; h++ {
		if !s.trySubmit(claim) {
			break // pool saturated; the caller's loop below still drains everything
		}
	}
	claim()
	<-doneCh
	gmu.Lock()
	sealed = true
	idle := active == 0
	gmu.Unlock()
	if !idle {
		<-idleCh
	}
	if pseen {
		panic(pval)
	}
}

// RunMorselsScratch is RunMorsels with claimant-local scratch: every
// claimant (the caller and each helper that starts) calls mk once before its
// claim loop, passes the value to fn for every morsel it claims, and runs
// done on it when its loop ends — so worker buffers are allocated once per
// claimant and reused across all the morsels that claimant drains, instead
// of once per morsel (§5, memory pool). fn owns scratch exclusively for the
// duration of one morsel; done (nil allowed) typically returns pooled
// buffers to the query arena. done runs even when fn panics.
//
// The determinism contract of RunMorsels carries over unchanged: fn still
// runs once per morsel with a stable Morsel.Index, and scratch must never
// leak state between morsels that affects output.
func (s *Scheduler) RunMorselsScratch(parallel, n, size int, mk func() any, done func(any), fn func(Morsel, any)) {
	if n <= 0 {
		return
	}
	release := func(sc any) {
		if done != nil {
			done(sc)
		}
	}
	if size <= 0 {
		size = DefaultMorselSize
	}
	if nm := (n + size - 1) / size; parallel > nm {
		parallel = nm
	}
	if parallel <= 1 {
		sc := mk()
		defer release(sc)
		s.RunMorsels(1, n, size, func(m Morsel) { fn(m, sc) })
		return
	}
	s.runMorselsPerClaimant(parallel, n, size, mk, release, fn)
}

// runMorselsPerClaimant mirrors RunMorsels' claim loop but brackets each
// claimant with mk/release.
//
// The barrier is two-phase. doneCh closes when every morsel has run, but a
// claimant's release — and a late-queued helper's whole mk/release bracket —
// can still be in flight at that instant, and both typically touch the query
// arena. So after doneCh the caller seals the claimant gate and waits for
// every registered claimant to exit; helpers that reach the gate after
// sealing return without ever calling mk. Only then may the caller release
// the arena (the engine recycles it into the next query, so a straggler
// touching it would corrupt that query's scratch).
func (s *Scheduler) runMorselsPerClaimant(parallel, n, size int, mk func() any, release func(any), fn func(Morsel, any)) {
	nm := (n + size - 1) / size
	var (
		next, done atomic.Int64
		closeOnce  sync.Once
		pmu        sync.Mutex
		pval       any
		pseen      bool

		gmu    sync.Mutex
		active int
		sealed bool
	)
	doneCh := make(chan struct{})
	idleCh := make(chan struct{})
	finish := func(k int64) {
		if done.Add(k) >= int64(nm) {
			closeOnce.Do(func() { close(doneCh) })
		}
	}
	claim := func() {
		gmu.Lock()
		if sealed {
			gmu.Unlock()
			return
		}
		active++
		gmu.Unlock()
		defer func() {
			gmu.Lock()
			active--
			last := sealed && active == 0
			gmu.Unlock()
			if last {
				close(idleCh)
			}
		}()
		sc := mk()
		defer release(sc)
		defer func() {
			if r := recover(); r != nil {
				pmu.Lock()
				if !pseen {
					pseen, pval = true, r
				}
				pmu.Unlock()
				old := next.Swap(int64(nm))
				if old > int64(nm) {
					old = int64(nm)
				}
				finish(int64(nm) - old + 1)
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= nm {
				return
			}
			fn(morselAt(i, size, n), sc)
			finish(1)
		}
	}
	for h := 0; h < parallel-1; h++ {
		if !s.trySubmit(claim) {
			break
		}
	}
	claim()
	<-doneCh
	gmu.Lock()
	sealed = true
	idle := active == 0
	gmu.Unlock()
	if !idle {
		<-idleCh
	}
	if pseen {
		panic(pval)
	}
}

// morselAt returns morsel i of the [0,n) sharding.
func morselAt(i, size, n int) Morsel {
	lo := i * size
	hi := lo + size
	if hi > n {
		hi = n
	}
	return Morsel{Index: i, Start: lo, End: hi}
}

// Group schedules whole-task units (typically one query each) on the shared
// pool with a bounded in-flight limit — the inter-query half of the worker
// budget. The service layer and benchmark driver use it for closed-loop
// admission control.
type Group struct {
	s   *Scheduler
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewGroup returns a group bounded to limit in-flight tasks (minimum 1).
func (s *Scheduler) NewGroup(limit int) *Group {
	if limit < 1 {
		limit = 1
	}
	return &Group{s: s, sem: make(chan struct{}, limit)}
}

// Go submits one task, blocking while the group is at its in-flight limit
// (closed-loop admission). If the pool queue is saturated the task runs on
// the calling goroutine instead — backpressure surfaces as caller latency,
// never as deadlock. Do not call Go from inside a pool task.
func (g *Group) Go(task func()) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	run := func() {
		defer func() { g.wg.Done(); <-g.sem }()
		task()
	}
	if !g.s.trySubmit(run) {
		run()
	}
}

// Wait blocks until every task submitted so far has finished.
func (g *Group) Wait() { g.wg.Wait() }
