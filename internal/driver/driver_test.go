package driver_test

import (
	"math/rand"
	"testing"
	"time"

	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
)

func testDataset(t testing.TB) *ldbc.Dataset {
	t.Helper()
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRecorderStatistics(t *testing.T) {
	r := driver.NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Record("Q", queries.IC, time.Duration(i)*time.Millisecond)
	}
	if got := r.Count("Q"); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if got := r.Avg("Q"); got != 50500*time.Microsecond {
		t.Fatalf("avg = %v", got)
	}
	if got := r.Percentile("Q", 0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := r.Percentile("Q", 0.5); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.Total("Q"); got != 5050*time.Millisecond {
		t.Fatalf("total = %v", got)
	}
	if got := r.KindCount(queries.IC); got != 100 {
		t.Fatalf("kind count = %d", got)
	}
	if r.Percentile("missing", 0.99) != 0 || r.Avg("missing") != 0 {
		t.Fatal("missing query should report zeros")
	}
}

func TestMixRespectsFrequencies(t *testing.T) {
	mix := driver.NewMix(nil)
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[mix.Draw(rng).Name]++
	}
	// Every query must appear, and the highest-frequency short reads must
	// dominate the lowest-frequency updates.
	if len(counts) != len(queries.All()) {
		t.Fatalf("mix covered %d of %d queries", len(counts), len(queries.All()))
	}
	if counts["IS1"] < counts["IU1"] {
		t.Fatalf("frequency ordering violated: IS1=%d IU1=%d", counts["IS1"], counts["IU1"])
	}
	// Rough proportionality check for one pair (freq 95 vs 2).
	if counts["IS1"] < 10*counts["IU1"] {
		t.Fatalf("IS1/IU1 ratio too small: %d/%d", counts["IS1"], counts["IU1"])
	}
}

func TestRunClosedLoop(t *testing.T) {
	ds := testDataset(t)
	r := queries.NewRunner(ds, exec.ModeFused, nil)
	res := driver.Run(r, driver.Options{Workers: 4, Ops: 300, Seed: 3})
	if res.Failed != 0 {
		t.Fatalf("%d queries failed", res.Failed)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	total := 0
	for _, k := range []queries.Kind{queries.IC, queries.IS, queries.IU} {
		total += res.Recorder.KindCount(k)
	}
	if total != 300 {
		t.Fatalf("recorded %d ops, want 300", total)
	}
}

func TestRunTraceBuckets(t *testing.T) {
	ds := testDataset(t)
	r := queries.NewRunner(ds, exec.ModeFused, nil)
	trace := driver.RunTrace(r, 2, 400*time.Millisecond, 100*time.Millisecond, 7)
	if len(trace) != 4 {
		t.Fatalf("buckets = %d", len(trace))
	}
	total := 0
	for _, p := range trace {
		if p.Overall != p.IC+p.IS+p.IU {
			t.Fatalf("bucket inconsistency: %+v", p)
		}
		total += p.Overall
	}
	if total == 0 {
		t.Fatal("trace recorded nothing")
	}
}

func TestMeasureQueryBreakdown(t *testing.T) {
	ds := testDataset(t)
	r := queries.NewRunner(ds, exec.ModeFlat, nil)
	q, _ := queries.ByName("IC9")
	st, err := driver.MeasureQuery(r, q, 5, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 5 || st.Avg <= 0 || st.Total < st.Avg {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.ByOp) == 0 {
		t.Fatal("no operator breakdown collected")
	}
	if _, ok := st.ByOp["VarLengthExpand"]; !ok {
		t.Fatalf("breakdown misses VarLengthExpand: %v", st.ByOp)
	}
	if st.AvgMem <= 0 || st.MaxMem < st.AvgMem {
		t.Fatalf("memory stats = %d/%d", st.AvgMem, st.MaxMem)
	}
}

func TestSharedDatasetMemoized(t *testing.T) {
	a, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := driver.SharedDataset(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset not memoized")
	}
}

// TestFactorizedBeatsFlat_Shape asserts the headline performance ordering
// the paper reports for the expansion-heavy queries at a size where it is
// stable: on IC9, flat must be slower and must allocate more peak
// intermediate memory than the factorized variants.
func TestFactorizedBeatsFlat_Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short")
	}
	ds, err := driver.SharedDataset(0.3)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := queries.ByName("IC9")
	flat := queries.NewRunner(ds, exec.ModeFlat, nil)
	fact := queries.NewRunner(ds, exec.ModeFactorized, nil)
	stFlat, err := driver.MeasureQuery(flat, q, 15, 11, false)
	if err != nil {
		t.Fatal(err)
	}
	stFact, err := driver.MeasureQuery(fact, q, 15, 11, false)
	if err != nil {
		t.Fatal(err)
	}
	if stFact.Avg >= stFlat.Avg {
		t.Errorf("factorized IC9 (%v) not faster than flat (%v)", stFact.Avg, stFlat.Avg)
	}
	if stFact.AvgMem >= stFlat.AvgMem {
		t.Errorf("factorized IC9 peak mem (%d) not below flat (%d)", stFact.AvgMem, stFlat.AvgMem)
	}
}

// TestFusionCollapsesIC5Memory asserts Table 2's flagship row: fused IC5
// peak memory collapses versus both flat and factorized-only execution.
func TestFusionCollapsesIC5Memory(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short")
	}
	ds, err := driver.SharedDataset(0.3)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := queries.ByName("IC5")
	mem := map[exec.Mode]int{}
	for _, mode := range []exec.Mode{exec.ModeFlat, exec.ModeFactorized, exec.ModeFused} {
		r := queries.NewRunner(ds, mode, nil)
		st, err := driver.MeasureQuery(r, q, 10, 13, false)
		if err != nil {
			t.Fatal(err)
		}
		mem[mode] = st.AvgMem
	}
	if mem[exec.ModeFused] >= mem[exec.ModeFlat]/2 {
		t.Errorf("fusion did not collapse IC5 memory: flat=%d fused=%d", mem[exec.ModeFlat], mem[exec.ModeFused])
	}
}
