// Package driver is the in-process stand-in for the LDBC SNB benchmark
// driver (§2.2): it draws queries from the frequency-weighted workload mix,
// fires them at the system under test from a configurable number of
// closed-loop workers, records per-query latencies and audit counters, and
// computes throughput — locally, without the network hop the paper also
// excludes from its execution analysis.
package driver

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
)

// Recorder accumulates latencies per query, thread-safely.
type Recorder struct {
	mu     sync.Mutex
	byName map[string][]time.Duration
	kinds  map[queries.Kind]int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		byName: make(map[string][]time.Duration),
		kinds:  make(map[queries.Kind]int),
	}
}

// Record logs one completed query.
func (r *Recorder) Record(name string, kind queries.Kind, d time.Duration) {
	r.mu.Lock()
	r.byName[name] = append(r.byName[name], d)
	r.kinds[kind]++
	r.mu.Unlock()
}

// Count returns the number of recorded completions for a query name.
func (r *Recorder) Count(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byName[name])
}

// KindCount returns completions per workload class.
func (r *Recorder) KindCount(k queries.Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kinds[k]
}

// Avg returns the mean latency of a query.
func (r *Recorder) Avg(name string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds := r.byName[name]
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Total returns the summed latency of a query (Figure 2's "total time").
func (r *Recorder) Total(name string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum time.Duration
	for _, d := range r.byName[name] {
		sum += d
	}
	return sum
}

// Percentile returns the p-quantile (0 < p <= 1) latency of a query.
func (r *Recorder) Percentile(name string, p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds := append([]time.Duration(nil), r.byName[name]...)
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(p*float64(len(ds))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}

// Names returns the recorded query names, sorted.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Mix draws queries according to their SNB-style relative frequencies.
type Mix struct {
	qs  []*queries.Query
	cum []int
	sum int
}

// NewMix builds a weighted mix over the given queries (all 29 when nil).
func NewMix(qs []*queries.Query) *Mix {
	if qs == nil {
		qs = queries.All()
	}
	m := &Mix{qs: qs}
	for _, q := range qs {
		m.sum += q.Freq
		m.cum = append(m.cum, m.sum)
	}
	return m
}

// Draw picks the next query.
func (m *Mix) Draw(rng *rand.Rand) *queries.Query {
	x := rng.Intn(m.sum)
	i := sort.SearchInts(m.cum, x+1)
	return m.qs[i]
}

// RunResult summarizes one benchmark run.
type RunResult struct {
	Total      int
	Failed     int
	Elapsed    time.Duration
	Throughput float64 // queries per second
	Recorder   *Recorder
	// Delayed counts queries slower than the audit threshold — the stand-in
	// for the benchmark's delayed-query (TCR validity) audit.
	Delayed        int
	AuditThreshold time.Duration
}

// Options configures a benchmark run.
type Options struct {
	Workers int
	Ops     int // total operations (closed loop)
	Seed    int64
	Audit   time.Duration // delayed-query threshold; 0 = 100ms
	Mix     *Mix          // nil = full 29-query mix
}

// Run fires Ops queries from Workers closed-loop workers against the
// runner and reports throughput and latency statistics.
func Run(r *queries.Runner, opts Options) RunResult {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Audit == 0 {
		opts.Audit = 100 * time.Millisecond
	}
	mix := opts.Mix
	if mix == nil {
		mix = NewMix(nil)
	}
	rec := NewRecorder()
	var (
		mu      sync.Mutex
		delayed int
		failed  int
	)
	var remaining = int64(opts.Ops)
	var remMu sync.Mutex
	take := func() bool {
		remMu.Lock()
		defer remMu.Unlock()
		if remaining <= 0 {
			return false
		}
		remaining--
		return true
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		// Driver workers simulate independent clients, outside the engine's
		// scheduler budget by design.
		//geslint:go-ok
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			pg := r.DS.NewParamGen(opts.Seed + int64(w)*104729)
			for take() {
				q := mix.Draw(rng)
				params := q.GenParams(r.DS, pg)
				t0 := time.Now()
				_, _, err := r.Execute(q, params)
				d := time.Since(t0)
				rec.Record(q.Name, q.Kind, d)
				mu.Lock()
				if err != nil {
					failed++
				}
				if d > opts.Audit {
					delayed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return RunResult{
		Total:          opts.Ops,
		Failed:         failed,
		Elapsed:        elapsed,
		Throughput:     float64(opts.Ops) / elapsed.Seconds(),
		Recorder:       rec,
		Delayed:        delayed,
		AuditThreshold: opts.Audit,
	}
}

// TracePoint is one bucket of the throughput trace (Figure 14).
type TracePoint struct {
	At      time.Duration
	IC      int
	IS      int
	IU      int
	Overall int
}

// RunTrace runs the mix for the given duration and returns the throughput
// trace in fixed buckets.
func RunTrace(r *queries.Runner, workers int, total time.Duration, bucket time.Duration, seed int64) []TracePoint {
	if workers < 1 {
		workers = 1
	}
	nBuckets := int(total / bucket)
	if nBuckets < 1 {
		nBuckets = 1
	}
	type cell struct{ ic, is, iu int }
	cells := make([]cell, nBuckets)
	var mu sync.Mutex
	mix := NewMix(nil)
	start := time.Now()
	deadline := start.Add(total)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// Mixed-workload clients model external load, not engine work.
		//geslint:go-ok
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*6151))
			pg := r.DS.NewParamGen(seed + int64(w)*92821)
			for time.Now().Before(deadline) {
				q := mix.Draw(rng)
				params := q.GenParams(r.DS, pg)
				if _, _, err := r.Execute(q, params); err != nil {
					continue
				}
				b := int(time.Since(start) / bucket)
				if b >= nBuckets {
					break
				}
				mu.Lock()
				switch q.Kind {
				case queries.IC:
					cells[b].ic++
				case queries.IS:
					cells[b].is++
				case queries.IU:
					cells[b].iu++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	out := make([]TracePoint, nBuckets)
	for i, c := range cells {
		out[i] = TracePoint{
			At:      time.Duration(i+1) * bucket,
			IC:      c.ic,
			IS:      c.is,
			IU:      c.iu,
			Overall: c.ic + c.is + c.iu,
		}
	}
	return out
}

// QueryStats summarizes repeated executions of one query (Figures 2/11/12,
// Table 2).
type QueryStats struct {
	Name   string
	Runs   int
	Avg    time.Duration
	Total  time.Duration
	P50    time.Duration
	P99    time.Duration
	P999   time.Duration
	AvgMem int
	MaxMem int
	ByOp   map[string]time.Duration
}

// MeasureQuery runs one query `runs` times with fresh parameters and
// returns aggregate statistics. collectStats additionally gathers the
// per-operator breakdown and peak-memory accounting.
func MeasureQuery(r *queries.Runner, q *queries.Query, runs int, seed int64, collectStats bool) (QueryStats, error) {
	pg := r.DS.NewParamGen(seed)
	rec := NewRecorder()
	stats := QueryStats{Name: q.Name, Runs: runs, ByOp: make(map[string]time.Duration)}
	if ge, ok := r.Engine.(*exec.Engine); ok {
		prev := ge.CollectStats
		ge.CollectStats = collectStats
		defer func() { ge.CollectStats = prev }()
	}

	var memSum int
	for i := 0; i < runs; i++ {
		params := q.GenParams(r.DS, pg)
		t0 := time.Now()
		_, res, err := r.Execute(q, params)
		if err != nil {
			return stats, err
		}
		d := time.Since(t0)
		rec.Record(q.Name, q.Kind, d)
		if res != nil {
			memSum += res.PeakMem
			if res.PeakMem > stats.MaxMem {
				stats.MaxMem = res.PeakMem
			}
			for _, os := range res.OpStats {
				stats.ByOp[os.Name] += os.Duration
			}
		}
	}
	stats.Avg = rec.Avg(q.Name)
	stats.Total = rec.Total(q.Name)
	stats.P50 = rec.Percentile(q.Name, 0.50)
	stats.P99 = rec.Percentile(q.Name, 0.99)
	stats.P999 = rec.Percentile(q.Name, 0.999)
	if runs > 0 {
		stats.AvgMem = memSum / runs
	}
	return stats, nil
}

// ModeName renders an engine mode using the paper's variant names.
func ModeName(m exec.Mode) string { return m.String() }

// DatasetFor memoizes generated datasets per scale factor so benchmarks and
// experiments do not regenerate them repeatedly.
var (
	dsCacheMu sync.Mutex
	dsCache   = map[float64]*ldbc.Dataset{}
)

// SharedDataset returns a cached dataset for the scale factor (seed 1).
func SharedDataset(sf float64) (*ldbc.Dataset, error) {
	dsCacheMu.Lock()
	defer dsCacheMu.Unlock()
	if ds, ok := dsCache[sf]; ok {
		return ds, nil
	}
	ds, err := ldbc.Generate(ldbc.Config{SF: sf, Seed: 1})
	if err != nil {
		return nil, err
	}
	dsCache[sf] = ds
	return ds, nil
}
