// The "csr" experiment measures the sealed CSR adjacency snapshots and the
// operators built on them: the batched neighbor kernel (View.NeighborsBatch)
// against the per-source scalar reference — in isolation and inside an
// IC-style multi-hop count — and intersection-based cyclic-join closure
// (ExpandInto) against both its hash-probe fallback and the pre-ExpandInto
// formulation (expand the closing edge, de-factor, flat equality join). A
// worker-count cross-check proves every variant returns the identical result.
// It emits the machine-readable BENCH_csr.json artifact when Config.JSONPath
// is set.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"ges/internal/catalog"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/ldbc"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
)

func init() {
	register(Experiment{"csr", "CSR snapshots: batched expand and intersection joins vs scalar/hash", csrExp})
}

// CSRVariant is one ablation point of the CSR/intersection ladder.
type CSRVariant struct {
	Name        string
	NoCSR       bool
	NoIntersect bool
}

// CSRVariants lists the knob ladder, baseline first: per-source scalar
// adjacency with hash probes, then the batched CSR kernel still hash-probing,
// then the full galloping intersection over sorted runs.
var CSRVariants = []CSRVariant{
	{Name: "scalar+hash", NoCSR: true, NoIntersect: true},
	{Name: "csr+hash", NoCSR: false, NoIntersect: true},
	{Name: "csr+intersect", NoCSR: false, NoIntersect: false},
}

// Engine builds an engine with the variant's knobs applied.
func (v CSRVariant) Engine(mode exec.Mode, workers int) *exec.Engine {
	e := exec.New(mode)
	e.Parallel = workers
	e.NoCSR, e.NoIntersect = v.NoCSR, v.NoIntersect
	return e
}

// CSRExpandPlan is the batched-expand workload: an IC-style full-scan
// two-hop KNOWS count. The fused count aggregates from run cardinalities
// without materializing tuples, so the measurement isolates the adjacency
// read path (one NeighborsBatch per morsel vs one Neighbors call per source).
func CSRExpandPlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	return plan.Plan{
		&op.NodeScan{Var: "p", Label: h.Person},
		&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.Expand{From: "f", To: "g", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.AggregateProjectTop{
			Aggs:  []op.AggSpec{{Func: op.Count, As: "n"}},
			Keys:  []op.SortKey{{Col: "n"}},
			Limit: 1,
		},
	}
}

// CSRTrianglePlan is the cyclic-join workload: directed KNOWS triangles
// closed by ExpandInto as a selection on the factorized tree. The Sum over
// the closing variable makes silent result divergence visible in the
// cross-check.
func CSRTrianglePlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	return plan.Plan{
		&op.NodeScan{Var: "a", Label: h.Person},
		&op.Expand{From: "a", To: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.Expand{From: "b", To: "c", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.ExpandInto{From: "c", To: "a", Et: h.Knows, Dir: catalog.Out,
			DstLabel: h.Person, SrcLabel: h.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "c", As: "c.id", ExtID: true}}},
		&op.Aggregate{Aggs: []op.AggSpec{
			{Func: op.Count, As: "n"},
			{Func: op.Sum, Arg: "c.id", As: "sum"},
		}},
	}
}

// CSRTriangleJoinPlan is the same triangle in the pre-ExpandInto shape the
// planner had to emit before cyclic edges could close in place: expand the
// closing edge to a fresh variable, de-factor the whole three-hop result,
// and keep the rows where the join ends meet. The cross-check requires its
// aggregates to match CSRTrianglePlan's exactly.
func CSRTriangleJoinPlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	return plan.Plan{
		&op.NodeScan{Var: "a", Label: h.Person},
		&op.Expand{From: "a", To: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.Expand{From: "b", To: "c", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.Expand{From: "c", To: "a2", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "a", As: "a.id", ExtID: true},
			{Var: "a2", As: "a2.id", ExtID: true},
			{Var: "c", As: "c.id", ExtID: true},
		}},
		// The predicate spans two f-Tree nodes, forcing the de-factor — the
		// flat-join cost ExpandInto exists to avoid.
		&op.Filter{Pred: expr.Eq(expr.C("a.id"), expr.C("a2.id"))},
		&op.Aggregate{Aggs: []op.AggSpec{
			{Func: op.Count, As: "n"},
			{Func: op.Sum, Arg: "c.id", As: "sum"},
		}},
	}
}

// kernelSink keeps the micro-benchmark loops observable.
var kernelSink int

// expandKernelMicro isolates the adjacency read path: loading the full KNOWS
// adjacency of every person through per-source Neighbors calls (one family
// lookup per source) vs one NeighborsBatch call (one family lookup, one
// prefix-sum pass). Engine machinery is excluded from both sides.
func expandKernelMicro(ds *ldbc.Dataset) (scalar, batch testing.BenchmarkResult) {
	h, g := ds.H, ds.Graph
	vids := g.ScanLabel(h.Person)
	scalar = testing.Benchmark(func(b *testing.B) {
		var segs []storage.Segment
		for i := 0; i < b.N; i++ {
			total := 0
			for _, v := range vids {
				segs = g.Neighbors(segs[:0], v, h.Knows, catalog.Out, h.Person, false)
				for _, s := range segs {
					total += len(s.VIDs)
				}
			}
			kernelSink = total
		}
	})
	batch = testing.Benchmark(func(b *testing.B) {
		var bt storage.Batch
		for i := 0; i < b.N; i++ {
			g.NeighborsBatch(vids, h.Knows, catalog.Out, h.Person, false, &bt)
			total := 0
			for j := range bt.Runs {
				total += len(bt.Run(j))
			}
			kernelSink = total
		}
	})
	return scalar, batch
}

// csrVariantPoint is one measured point in BENCH_csr.json.
type csrVariantPoint struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"nsPerOp"`
	Speedup float64 `json:"speedup"` // vs the ladder's first (baseline) point
}

// csrReport is the schema of BENCH_csr.json.
type csrReport struct {
	SimSF          float64 `json:"simSF"`
	SealedFamilies int     `json:"sealedFamilies"`
	// Kernel compares just the adjacency read path (per-source Neighbors vs
	// one NeighborsBatch over every person), without engine machinery.
	Kernel struct {
		ScalarNsPerOp float64 `json:"scalarNsPerOp"`
		BatchNsPerOp  float64 `json:"batchNsPerOp"`
		Speedup       float64 `json:"speedup"`
	} `json:"kernel"`
	// Expand compares the IC-style two-hop count with the batched kernel
	// off/on.
	Expand struct {
		ScalarNsPerOp float64 `json:"scalarNsPerOp"`
		BatchNsPerOp  float64 `json:"batchNsPerOp"`
		Speedup       float64 `json:"speedup"`
	} `json:"expand"`
	// Triangle sweeps the closure ladder: the pre-ExpandInto flat join, then
	// ExpandInto under each knob combination.
	Triangle struct {
		Count    int64             `json:"count"`
		Variants []csrVariantPoint `json:"variants"`
		Speedup  float64           `json:"speedup"` // csr+intersect vs hashjoin-flat
	} `json:"triangle"`
	// CrossCheck is true when every plan shape × worker count × knob
	// combination returned the identical aggregate row.
	CrossCheck bool `json:"crossCheck"`
}

// csrWorkerSweep is the worker sweep for the determinism cross-check.
var csrWorkerSweep = []int{1, 2, 4, 8}

func csrExp(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	ds, err := driver.SharedDataset(sf)
	if err != nil {
		return err
	}
	report := csrReport{SimSF: sf}
	report.SealedFamilies = ds.Graph.SealCSR()
	fmt.Fprintf(w, "sealed %d adjacency families, simSF=%.4g\n", report.SealedFamilies, sf)

	// --- determinism cross-check: plan shapes × workers × knobs agree ---
	var wantRows string
	check := func(label string, p plan.Plan, eng *exec.Engine) error {
		res, err := eng.Run(ds.Graph, p)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		got := fmt.Sprint(res.Block.Rows)
		if wantRows == "" {
			wantRows = got
			report.Triangle.Count = res.Block.Rows[0][0].I
		} else if got != wantRows {
			return fmt.Errorf("%s diverges: %s != %s", label, got, wantRows)
		}
		return nil
	}
	for _, workers := range csrWorkerSweep {
		for _, v := range CSRVariants {
			label := fmt.Sprintf("%s workers=%d", v.Name, workers)
			if err := check(label, CSRTrianglePlan(ds), v.Engine(exec.ModeFactorized, workers)); err != nil {
				return err
			}
		}
	}
	for _, workers := range []int{1, 4} {
		label := fmt.Sprintf("hashjoin-flat workers=%d", workers)
		if err := check(label, CSRTriangleJoinPlan(ds), CSRVariants[0].Engine(exec.ModeFactorized, workers)); err != nil {
			return err
		}
	}
	report.CrossCheck = true
	fmt.Fprintf(w, "cross-check: %d directed triangles, identical across workers %v, all knobs, and the flat-join shape\n",
		report.Triangle.Count, csrWorkerSweep)

	// --- adjacency kernel in isolation ---
	sr, br := expandKernelMicro(ds)
	report.Kernel.ScalarNsPerOp = float64(sr.NsPerOp())
	report.Kernel.BatchNsPerOp = float64(br.NsPerOp())
	if report.Kernel.BatchNsPerOp > 0 {
		report.Kernel.Speedup = report.Kernel.ScalarNsPerOp / report.Kernel.BatchNsPerOp
	}
	fmt.Fprintf(w, "adjacency kernel (all persons, KNOWS): scalar %.0f ns/op, batch %.0f ns/op (%.2fx)\n",
		report.Kernel.ScalarNsPerOp, report.Kernel.BatchNsPerOp, report.Kernel.Speedup)

	// --- batched expand inside an IC-style two-hop count ---
	timeRun := func(eng *exec.Engine, build func() plan.Plan) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ds.Graph, build()); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}
	expandPlan := func() plan.Plan { return CSRExpandPlan(ds) }
	report.Expand.ScalarNsPerOp = timeRun(CSRVariants[0].Engine(exec.ModeFactorized, 1), expandPlan)
	report.Expand.BatchNsPerOp = timeRun(CSRVariants[1].Engine(exec.ModeFactorized, 1), expandPlan)
	if report.Expand.BatchNsPerOp > 0 {
		report.Expand.Speedup = report.Expand.ScalarNsPerOp / report.Expand.BatchNsPerOp
	}
	fmt.Fprintf(w, "two-hop expand count: scalar %.0f ns/op, batched %.0f ns/op (%.2fx)\n",
		report.Expand.ScalarNsPerOp, report.Expand.BatchNsPerOp, report.Expand.Speedup)

	// --- triangle-closure ladder ---
	fmt.Fprintf(w, "%-15s %14s %9s\n", "variant", "ns/op", "speedup")
	ladder := []struct {
		name   string
		build  func() plan.Plan
		engine *exec.Engine
	}{
		{"hashjoin-flat", func() plan.Plan { return CSRTriangleJoinPlan(ds) }, CSRVariants[0].Engine(exec.ModeFactorized, 1)},
		{"scalar+hash", func() plan.Plan { return CSRTrianglePlan(ds) }, CSRVariants[0].Engine(exec.ModeFactorized, 1)},
		{"csr+hash", func() plan.Plan { return CSRTrianglePlan(ds) }, CSRVariants[1].Engine(exec.ModeFactorized, 1)},
		{"csr+intersect", func() plan.Plan { return CSRTrianglePlan(ds) }, CSRVariants[2].Engine(exec.ModeFactorized, 1)},
	}
	var baseNs float64
	for _, step := range ladder {
		ns := timeRun(step.engine, step.build)
		if baseNs == 0 {
			baseNs = ns
		}
		p := csrVariantPoint{Name: step.name, NsPerOp: ns}
		if ns > 0 {
			p.Speedup = baseNs / ns
		}
		report.Triangle.Variants = append(report.Triangle.Variants, p)
		fmt.Fprintf(w, "%-15s %14.0f %8.2fx\n", p.Name, p.NsPerOp, p.Speedup)
	}
	report.Triangle.Speedup = report.Triangle.Variants[len(report.Triangle.Variants)-1].Speedup
	fmt.Fprintf(w, "triangle closure: intersection path %.2fx over the flat hash join\n", report.Triangle.Speedup)

	if cfg.JSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", cfg.JSONPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}
