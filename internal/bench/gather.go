// The "gather" experiment measures the §5 vectorized property read path:
// batch column gathers, dictionary-code string comparisons, and zone-map
// skipping, ablated knob by knob against the scalar per-row reference. It
// emits the machine-readable BENCH_gather.json artifact when Config.JSONPath
// is set.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/ldbc"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/vector"
)

func init() {
	register(Experiment{"gather", "Vectorized gather: scalar vs batch vs dict-code vs zone-map", gatherExp})
}

// GatherVariant is one ablation point of the gather path.
type GatherVariant struct {
	Name      string
	NoGather  bool
	NoDictCmp bool
	NoZoneMap bool
}

// GatherVariants lists the ablation ladder, scalar first. Each step enables
// one more §5 mechanism on top of the previous.
var GatherVariants = []GatherVariant{
	{Name: "scalar", NoGather: true, NoDictCmp: true, NoZoneMap: true},
	{Name: "gather", NoGather: false, NoDictCmp: true, NoZoneMap: true},
	{Name: "gather+dict", NoGather: false, NoDictCmp: false, NoZoneMap: true},
	{Name: "gather+zonemap", NoGather: false, NoDictCmp: false, NoZoneMap: false},
}

// Engine builds an engine with the variant's knobs applied.
func (v GatherVariant) Engine(mode exec.Mode, workers int) *exec.Engine {
	e := exec.New(mode)
	e.Parallel = workers
	e.NoGather, e.NoDictCmp, e.NoZoneMap = v.NoGather, v.NoDictCmp, v.NoZoneMap
	return e
}

// GatherScanPlan is the canonical gather workload: a string-equality
// fused-filter scan over the comment table (the dataset's largest
// string-bearing label) with a date range behind it, aggregated without
// materialization so the measurement isolates the read path. Scalar
// execution reads two properties per comment through boxed per-row calls;
// the gathered path shares both storage columns zero-copy and compares
// 4-byte dictionary codes.
func GatherScanPlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	return plan.Plan{
		&op.NodeScan{Var: "c", Label: h.Comment},
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "c", Prop: "browserUsed", As: "c.browserUsed"},
			{Var: "c", Prop: "creationDate", As: "c.creationDate"},
		}},
		&op.Filter{Pred: expr.Eq(expr.C("c.browserUsed"), expr.LStr("Chrome"))},
		&op.Filter{Pred: expr.Ge(expr.C("c.creationDate"), expr.LDate((ldbc.DayStart+ldbc.DayEnd)/2))},
		&op.AggregateProjectTop{
			GroupBy: []string{"c.browserUsed"},
			Aggs:    []op.AggSpec{{Func: op.Count, As: "n"}},
			Keys:    []op.SortKey{{Col: "n", Desc: true}},
			Limit:   1,
		},
	}
}

// GatherHorizonPlan filters past the stored date horizon: every zone's
// max is below the threshold, so the zone-mapped variant proves emptiness
// from the summaries alone and skips every zone without touching a value —
// the classic zone-map win on time-horizon predicates.
func GatherHorizonPlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	return plan.Plan{
		&op.NodeScan{Var: "c", Label: h.Comment},
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "c", Prop: "creationDate", As: "c.creationDate"},
		}},
		&op.Filter{Pred: expr.Gt(expr.C("c.creationDate"), expr.LDate(ldbc.DayEnd))},
		&op.AggregateProjectTop{
			Aggs:  []op.AggSpec{{Func: op.Count, As: "n"}},
			Keys:  []op.SortKey{{Col: "n"}},
			Limit: 1,
		},
	}
}

// readPathSink keeps the micro-benchmark loops observable.
var readPathSink *vector.Column

// readPathMicro isolates the property materialization the gather path
// replaces: building the browserUsed and creationDate columns for the
// comment scan. The scalar side is the per-row reference (fresh columns, one
// View.Prop call and Append per row); the batch side is the zero-copy tier
// (ShareScanColumn + ShareAs). Engine machinery is excluded from both, so
// the two numbers compare only the read paths.
func readPathMicro(ds *ldbc.Dataset) (scalar, batch testing.BenchmarkResult) {
	h, g := ds.H, ds.Graph
	vids := g.ScanLabel(h.Comment)
	scalar = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			browser := vector.NewColumn("c.browserUsed", vector.KindString)
			created := vector.NewColumn("c.creationDate", vector.KindDate)
			for _, v := range vids {
				browser.Append(g.Prop(v, h.MBrowser))
				created.Append(g.Prop(v, h.MCreation))
			}
			readPathSink = browser
		}
	})
	batch = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			browser := g.ShareScanColumn(h.Comment, h.MBrowser, vids).ShareAs("c.browserUsed")
			g.ShareScanColumn(h.Comment, h.MCreation, vids).ShareAs("c.creationDate")
			//geslint:retain-ok benchmark sink defeating dead-code elimination; the graph is never resealed mid-run
			readPathSink = browser
		}
	})
	return scalar, batch
}

// gatherVariantPoint is one measured ablation point in BENCH_gather.json.
type gatherVariantPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	Speedup     float64 `json:"speedup"` // vs scalar
	AllocRatio  float64 `json:"allocRatio"`
}

// gatherReport is the schema of BENCH_gather.json.
type gatherReport struct {
	SimSF    float64              `json:"simSF"`
	Rows     int                  `json:"rows"`
	Workload string               `json:"workload"`
	Variants []gatherVariantPoint `json:"variants"`
	Counters struct {
		Gathers     int64 `json:"gathers"`
		SharedCols  int64 `json:"sharedCols"`
		ZonesPruned int64 `json:"zonesPruned"`
		ZonesTotal  int64 `json:"zonesTotal"`
	} `json:"counters"`
	Horizon struct {
		ZonesPruned int64 `json:"zonesPruned"`
		ZonesTotal  int64 `json:"zonesTotal"`
	} `json:"horizonScan"`
	// ReadPath compares just the property materialization (per-row Prop +
	// Append vs zero-copy column share), without engine machinery.
	ReadPath struct {
		ScalarNsPerOp     float64 `json:"scalarNsPerOp"`
		ScalarAllocsPerOp int64   `json:"scalarAllocsPerOp"`
		GatherNsPerOp     float64 `json:"gatherNsPerOp"`
		GatherAllocsPerOp int64   `json:"gatherAllocsPerOp"`
		Speedup           float64 `json:"speedup"`
		AllocRatio        float64 `json:"allocRatio"`
	} `json:"readPath"`
}

func gatherExp(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	ds, err := driver.SharedDataset(sf)
	if err != nil {
		return err
	}
	report := gatherReport{
		SimSF:    sf,
		Rows:     len(ds.Comments),
		Workload: "Comment scan: browserUsed = 'Chrome' AND creationDate >= mid, count",
	}

	// Cross-check first: every variant must agree with the scalar reference.
	var wantRows string
	for _, v := range GatherVariants {
		res, err := v.Engine(exec.ModeFactorized, 1).Run(ds.Graph, GatherScanPlan(ds))
		if err != nil {
			return fmt.Errorf("%s: %w", v.Name, err)
		}
		got := fmt.Sprint(res.Block.Rows)
		if wantRows == "" {
			wantRows = got
		} else if got != wantRows {
			return fmt.Errorf("%s: result diverges from scalar: %s != %s", v.Name, got, wantRows)
		}
	}

	fmt.Fprintf(w, "string-equality fused-filter scan, simSF=%.4g, %d comments\n", sf, report.Rows)
	fmt.Fprintf(w, "%-15s %12s %11s %12s %9s %11s\n", "variant", "ns/op", "allocs/op", "B/op", "speedup", "alloc-ratio")
	var scalarNs float64
	var scalarAllocs int64
	for _, v := range GatherVariants {
		eng := v.Engine(exec.ModeFactorized, 1)
		// Every op in the plan is pure configuration, so the plan is built
		// once outside the timer and the loop measures execution alone.
		p0 := GatherScanPlan(ds)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ds.Graph, p0); err != nil {
					b.Fatal(err)
				}
			}
		})
		p := gatherVariantPoint{
			Name:        v.Name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if v.Name == "scalar" {
			scalarNs, scalarAllocs = p.NsPerOp, p.AllocsPerOp
		}
		if p.NsPerOp > 0 {
			p.Speedup = scalarNs / p.NsPerOp
		}
		if p.AllocsPerOp > 0 {
			p.AllocRatio = float64(scalarAllocs) / float64(p.AllocsPerOp)
		}
		report.Variants = append(report.Variants, p)
		fmt.Fprintf(w, "%-15s %12.0f %11d %12d %8.2fx %10.1fx\n",
			p.Name, p.NsPerOp, p.AllocsPerOp, p.BytesPerOp, p.Speedup, p.AllocRatio)
	}

	// Counters from one fully enabled run.
	full := GatherVariants[len(GatherVariants)-1].Engine(exec.ModeFactorized, 1)
	res, err := full.Run(ds.Graph, GatherScanPlan(ds))
	if err != nil {
		return err
	}
	report.Counters.Gathers = res.Gathers
	report.Counters.SharedCols = res.SharedCols
	report.Counters.ZonesPruned = res.ZonesPruned
	report.Counters.ZonesTotal = res.ZonesTotal
	fmt.Fprintf(w, "gathers=%d sharedCols=%d zones pruned/total=%d/%d\n",
		res.Gathers, res.SharedCols, res.ZonesPruned, res.ZonesTotal)

	// Horizon scan: the zone maps prove the result empty without scanning.
	hres, err := full.Run(ds.Graph, GatherHorizonPlan(ds))
	if err != nil {
		return err
	}
	report.Horizon.ZonesPruned = hres.ZonesPruned
	report.Horizon.ZonesTotal = hres.ZonesTotal
	fmt.Fprintf(w, "horizon scan (creationDate > %d): zones pruned/total=%d/%d\n",
		ldbc.DayEnd, hres.ZonesPruned, hres.ZonesTotal)

	// Read-path micro: the per-row reference vs the zero-copy gather tier.
	sr, gr := readPathMicro(ds)
	report.ReadPath.ScalarNsPerOp = float64(sr.NsPerOp())
	report.ReadPath.ScalarAllocsPerOp = sr.AllocsPerOp()
	report.ReadPath.GatherNsPerOp = float64(gr.NsPerOp())
	report.ReadPath.GatherAllocsPerOp = gr.AllocsPerOp()
	if gr.NsPerOp() > 0 {
		report.ReadPath.Speedup = float64(sr.NsPerOp()) / float64(gr.NsPerOp())
	}
	if gr.AllocsPerOp() > 0 {
		report.ReadPath.AllocRatio = float64(sr.AllocsPerOp()) / float64(gr.AllocsPerOp())
	}
	fmt.Fprintf(w, "read path (2 property columns, %d rows): scalar %d allocs/op, gather %d allocs/op (%.1fx fewer), %.2fx faster\n",
		report.Rows, report.ReadPath.ScalarAllocsPerOp, report.ReadPath.GatherAllocsPerOp,
		report.ReadPath.AllocRatio, report.ReadPath.Speedup)

	if cfg.JSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", cfg.JSONPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}
