// The "wcoj" experiment measures the worst-case-optimal multiway expansion
// (op.ExpandIntersect) on cyclic patterns — triangle, diamond, 4-cycle and
// 4-clique over LDBC KNOWS — against the classical binary-join plan the
// NoWCOJ knob de-fuses to (Expand the candidate set, then close each edge
// with ExpandInto). A ladder separates the leapfrog intersection over sorted
// CSR runs from its hash-set fallback, and a worker-count cross-check proves
// every knob combination returns the identical aggregate. It emits the
// machine-readable BENCH_wcoj.json artifact when Config.JSONPath is set.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"ges/internal/catalog"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/op"
	"ges/internal/plan"
)

func init() {
	register(Experiment{"wcoj", "WCOJ: multiway intersection expansion vs binary joins on cyclic patterns", wcojExp})
}

// WCOJVariant is one ablation point of the multiway-join ladder.
type WCOJVariant struct {
	Name        string
	NoWCOJ      bool
	NoIntersect bool
}

// WCOJVariants lists the knob ladder, baseline first: the de-fused classical
// plan (expand + per-edge ExpandInto), then the multiway operator probing
// hash sets, then the full leapfrog intersection over sorted CSR runs.
var WCOJVariants = []WCOJVariant{
	{Name: "no-wcoj", NoWCOJ: true},
	{Name: "wcoj+hash", NoIntersect: true},
	{Name: "wcoj"},
}

// Engine builds an engine with the variant's knobs applied.
func (v WCOJVariant) Engine(mode exec.Mode, workers int) *exec.Engine {
	e := exec.New(mode)
	e.Parallel = workers
	e.NoWCOJ, e.NoIntersect = v.NoWCOJ, v.NoIntersect
	return e
}

// wcojAgg closes every pattern plan with the same divergence-sensitive
// aggregate: the match count plus a Sum over the intersected variable's
// external id, so a single wrong vertex anywhere shows in the cross-check.
func wcojAgg(newVar string) []op.Operator {
	return []op.Operator{
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: newVar, As: "v.id", ExtID: true}}},
		&op.Aggregate{Aggs: []op.AggSpec{
			{Func: op.Count, As: "n"},
			{Func: op.Sum, Arg: "v.id", As: "sum"},
		}},
	}
}

// WCOJTrianglePlan counts directed KNOWS triangles a→b→c→a: c is the
// intersection of b's out-neighbors and a's in-neighbors.
func WCOJTrianglePlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	return append(plan.Plan{
		&op.NodeScan{Var: "a", Label: h.Person},
		&op.Expand{From: "a", To: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.ExpandIntersect{To: "c", Sides: []op.IntersectSide{
			{Var: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, SrcLabel: h.Person},
			{Var: "a", Et: h.Knows, Dir: catalog.In, DstLabel: h.Person, SrcLabel: h.Person},
		}},
	}, wcojAgg("c")...)
}

// WCOJDiamondPlan counts diamonds a→b→d, a→c→d: after materializing the two
// independent hops, c is the intersection of a's out- and d's in-neighbors.
func WCOJDiamondPlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	return append(plan.Plan{
		&op.NodeScan{Var: "a", Label: h.Person},
		&op.Expand{From: "a", To: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.Expand{From: "b", To: "d", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.ExpandIntersect{To: "c", Sides: []op.IntersectSide{
			{Var: "a", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, SrcLabel: h.Person},
			{Var: "d", Et: h.Knows, Dir: catalog.In, DstLabel: h.Person, SrcLabel: h.Person},
		}},
	}, wcojAgg("c")...)
}

// WCOJFourCyclePlan counts directed 4-cycles a→b→c→d→a: d intersects c's
// out-neighbors with a's in-neighbors.
func WCOJFourCyclePlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	return append(plan.Plan{
		&op.NodeScan{Var: "a", Label: h.Person},
		&op.Expand{From: "a", To: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.Expand{From: "b", To: "c", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.ExpandIntersect{To: "d", Sides: []op.IntersectSide{
			{Var: "c", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, SrcLabel: h.Person},
			{Var: "a", Et: h.Knows, Dir: catalog.In, DstLabel: h.Person, SrcLabel: h.Person},
		}},
	}, wcojAgg("d")...)
}

// WCOJFourCliquePlan counts directed 4-cliques (all six edges oriented by
// discovery order): two stacked intersections, the second three-way.
func WCOJFourCliquePlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	return append(plan.Plan{
		&op.NodeScan{Var: "a", Label: h.Person},
		&op.Expand{From: "a", To: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.ExpandIntersect{To: "c", Sides: []op.IntersectSide{
			{Var: "a", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, SrcLabel: h.Person},
			{Var: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, SrcLabel: h.Person},
		}},
		&op.ExpandIntersect{To: "d", Sides: []op.IntersectSide{
			{Var: "a", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, SrcLabel: h.Person},
			{Var: "b", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, SrcLabel: h.Person},
			{Var: "c", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, SrcLabel: h.Person},
		}},
	}, wcojAgg("d")...)
}

// WCOJPatterns enumerates the experiment's cyclic workloads.
var WCOJPatterns = []struct {
	Name  string
	Build func(ds *ldbc.Dataset) plan.Plan
}{
	{"triangle", WCOJTrianglePlan},
	{"diamond", WCOJDiamondPlan},
	{"4-cycle", WCOJFourCyclePlan},
	{"4-clique", WCOJFourCliquePlan},
}

// wcojVariantPoint is one measured point in BENCH_wcoj.json.
type wcojVariantPoint struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"nsPerOp"`
	Speedup float64 `json:"speedup"` // vs the ladder's no-wcoj baseline
}

// wcojPattern is one cyclic pattern's section of BENCH_wcoj.json.
type wcojPattern struct {
	Name     string             `json:"name"`
	Count    int64              `json:"count"`
	Variants []wcojVariantPoint `json:"variants"`
	Speedup  float64            `json:"speedup"` // full wcoj vs no-wcoj
}

// wcojReport is the schema of BENCH_wcoj.json.
type wcojReport struct {
	SimSF          float64       `json:"simSF"`
	SealedFamilies int           `json:"sealedFamilies"`
	Patterns       []wcojPattern `json:"patterns"`
	// CrossCheck is true when every pattern × knob × worker count returned
	// the identical aggregate row.
	CrossCheck bool `json:"crossCheck"`
}

// wcojWorkerSweep is the worker sweep for the determinism cross-check.
var wcojWorkerSweep = []int{1, 2, 4, 8}

// WCOJCrossCheck runs every pattern under every knob × worker combination
// and fails on any aggregate divergence. Counts per pattern are returned in
// WCOJPatterns order. Shared by the experiment and the test suite.
func WCOJCrossCheck(ds *ldbc.Dataset) ([]int64, error) {
	counts := make([]int64, len(WCOJPatterns))
	for pi, pat := range WCOJPatterns {
		var want string
		for _, workers := range wcojWorkerSweep {
			for _, v := range WCOJVariants {
				res, err := v.Engine(exec.ModeFactorized, workers).Run(ds.Graph, pat.Build(ds))
				if err != nil {
					return nil, fmt.Errorf("%s %s workers=%d: %w", pat.Name, v.Name, workers, err)
				}
				got := fmt.Sprint(res.Block.Rows)
				if want == "" {
					want = got
					counts[pi] = res.Block.Rows[0][0].I
				} else if got != want {
					return nil, fmt.Errorf("%s %s workers=%d diverges: %s != %s", pat.Name, v.Name, workers, got, want)
				}
			}
		}
	}
	return counts, nil
}

func wcojExp(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	ds, err := driver.SharedDataset(sf)
	if err != nil {
		return err
	}
	report := wcojReport{SimSF: sf}
	report.SealedFamilies = ds.Graph.SealCSR()
	fmt.Fprintf(w, "sealed %d adjacency families, simSF=%.4g\n", report.SealedFamilies, sf)

	counts, err := WCOJCrossCheck(ds)
	if err != nil {
		return err
	}
	report.CrossCheck = true
	fmt.Fprintf(w, "cross-check: identical aggregates across workers %v and all knobs\n", wcojWorkerSweep)

	timeRun := func(eng *exec.Engine, build func(*ldbc.Dataset) plan.Plan) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ds.Graph, build(ds)); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}

	for pi, pat := range WCOJPatterns {
		rp := wcojPattern{Name: pat.Name, Count: counts[pi]}
		fmt.Fprintf(w, "--- %s (%d matches) ---\n", pat.Name, rp.Count)
		fmt.Fprintf(w, "%-12s %14s %9s\n", "variant", "ns/op", "speedup")
		var baseNs float64
		for _, v := range WCOJVariants {
			ns := timeRun(v.Engine(exec.ModeFactorized, 1), pat.Build)
			if baseNs == 0 {
				baseNs = ns
			}
			p := wcojVariantPoint{Name: v.Name, NsPerOp: ns}
			if ns > 0 {
				p.Speedup = baseNs / ns
			}
			rp.Variants = append(rp.Variants, p)
			fmt.Fprintf(w, "%-12s %14.0f %8.2fx\n", p.Name, p.NsPerOp, p.Speedup)
		}
		rp.Speedup = rp.Variants[len(rp.Variants)-1].Speedup
		report.Patterns = append(report.Patterns, rp)
	}

	if cfg.JSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", cfg.JSONPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}
