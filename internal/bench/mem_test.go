package bench_test

import (
	"testing"

	"ges/internal/bench"
	"ges/internal/driver"
	"ges/internal/exec"
)

// BenchmarkMemRecycle is the CI guard for the executor recycling path: the
// canonical fused-expand workload with arenas on. Run with -benchmem; the
// allocs/op budget is asserted by TestMemRecycleAllocBudget below, so a
// regression that starts allocating per row fails the suite, not just the
// benchmark artifact.
func BenchmarkMemRecycle(b *testing.B) {
	ds, err := driver.SharedDataset(0.03)
	if err != nil {
		b.Fatal(err)
	}
	eng := bench.MemVariants[1].Engine(exec.ModeFused, 1)
	p := bench.MemExpandPlan(ds)
	if _, err := eng.Run(ds.Graph, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ds.Graph, p); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMemIdentityViews is the full byte-identity sweep of the recycling
// ablation: NoRecycle x engine mode x 1/2/4/8 workers x base and
// delta-overlay transaction views. Run under -race in CI, it is the proof
// that recycling is invisible in results.
func TestMemIdentityViews(t *testing.T) {
	ds, err := driver.SharedDataset(0.03)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []exec.Mode{exec.ModeFlat, exec.ModeFactorized, exec.ModeFused} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			if err := bench.CheckMemIdentity(ds, mode); err != nil {
				t.Errorf("base view: %v", err)
			}
			if err := bench.CheckMemIdentityOverlay(0.03, 7, mode); err != nil {
				t.Errorf("overlay view: %v", err)
			}
		})
	}
}

// TestMemRecycleAllocBudget is the soak half of the recycling acceptance: a
// steady stream of fused-expand queries through one recycling engine must
// (a) return byte-identical results to the fresh-allocation baseline and
// (b) allocate at least 5x fewer times per query than it.
func TestMemRecycleAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc soak skipped in -short")
	}
	ds, err := driver.SharedDataset(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.CheckMemIdentity(ds, exec.ModeFused); err != nil {
		t.Fatal(err)
	}
	allocs := func(noRecycle bool) float64 {
		v := bench.MemVariants[1]
		if noRecycle {
			v = bench.MemVariants[0]
		}
		eng := v.Engine(exec.ModeFused, 1)
		p := bench.MemExpandPlan(ds)
		if _, err := eng.Run(ds.Graph, p); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := eng.Run(ds.Graph, p); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := allocs(true)
	recycled := allocs(false)
	t.Logf("allocs/op: no-recycle %.0f, recycle %.0f (%.1fx)", base, recycled, base/recycled)
	if recycled*5 > base {
		t.Fatalf("recycling saves too little: no-recycle %.0f allocs/op vs recycle %.0f (want >= 5x reduction)",
			base, recycled)
	}
}
