// The "planner" experiment measures cost-based planning (DESIGN.md §10,
// anchored on the statistics snapshot built at SealCSR time) against
// the syntactic binder the NoCost knob de-optimizes to. The ladder queries
// are adversarially written: the left end of each pattern is the expensive
// side, so binding as written scans a large label and filters late, while
// the cost model re-anchors at the selective end and reverses every Expand.
// A second section measures the parameterized plan cache: literal-differing
// requests normalize onto one cached skeleton (re-binding values per
// request) versus compiling each request from scratch. Worker-count
// cross-checks — on the base graph and on a transaction-overlay snapshot —
// prove both planning modes return byte-identical results. Emits
// BENCH_planner.json when Config.JSONPath is set.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"ges/internal/cypher"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
	"ges/internal/plan"
	"ges/internal/service"
	"ges/internal/storage"
)

func init() {
	register(Experiment{"planner", "Planner: cost-based anchor/orientation vs syntactic plans + parameterized plan cache", plannerExp})
}

// PlannerQuery is one adversarially-phrased ladder query: %d marks where a
// literal is injected, so the cache section can generate literal-differing
// instances of the same skeleton.
type PlannerQuery struct {
	Name string
	Text string // fmt template with one %d verb
}

// PlannerQueries is the ladder. Each query is written so the syntactic
// binder anchors at the expensive left end; SUM over the far variable's
// external id makes any planning divergence visible in the cross-check.
var PlannerQueries = []PlannerQuery{
	// Anchor: as written, scan every Person and expand KNOWS before the
	// id(b) filter; the cost model seeks b and expands in reverse.
	{"anchor-seek", `MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE id(b) = %d RETURN COUNT(*) AS n, SUM(id(a)) AS s`},
	// Direction: as written, scan every Comment (the largest label) and
	// expand HAS_CREATOR before the Person-side predicate; the cost model
	// anchors on the filtered Person scan and reverses the expansion.
	{"reverse-dir", `MATCH (c:Comment)-[:HAS_CREATOR]->(p:Person) WHERE id(p) = %d RETURN COUNT(*) AS n, SUM(id(c)) AS s`},
	// Two hops between the written anchor and the selective end.
	{"anchor-2hop", `MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE id(c) = %d RETURN COUNT(*) AS n, SUM(id(a)) AS s`},
}

// plannerPersonID is the external id the ladder seeks (person external ids
// start at 1 in the simulated datasets).
const plannerPersonID = 1

// plannerCompile compiles one ladder query in both planning modes.
func plannerCompile(ds *ldbc.Dataset, cm *plan.CostModel, pq PlannerQuery, id int) (cost, syntactic *cypher.Compiled, err error) {
	text := fmt.Sprintf(pq.Text, id)
	if cost, err = cypher.CompileWith(text, ds.H.Cat, cypher.Options{Cost: cm}); err != nil {
		return nil, nil, fmt.Errorf("%s (cost): %w", pq.Name, err)
	}
	if syntactic, err = cypher.CompileWith(text, ds.H.Cat, cypher.Options{}); err != nil {
		return nil, nil, fmt.Errorf("%s (syntactic): %w", pq.Name, err)
	}
	return cost, syntactic, nil
}

// PlannerCrossCheck runs every ladder query in both planning modes across
// the worker sweep on the given view and fails on any result divergence.
// Returns the reference result row rendering per query, in PlannerQueries
// order. Shared by the experiment and the test suite.
func PlannerCrossCheck(ds *ldbc.Dataset, view storage.View, cm *plan.CostModel) ([]string, error) {
	refs := make([]string, len(PlannerQueries))
	for qi, pq := range PlannerQueries {
		cost, syntactic, err := plannerCompile(ds, cm, pq, plannerPersonID)
		if err != nil {
			return nil, err
		}
		variants := []struct {
			name string
			p    plan.Plan
		}{{"cost", cost.Plan}, {"syntactic", syntactic.Plan}}
		var want string
		for _, workers := range wcojWorkerSweep {
			for _, v := range variants {
				eng := exec.New(exec.ModeFused)
				eng.Parallel = workers
				res, err := eng.Run(view, v.p)
				if err != nil {
					return nil, fmt.Errorf("%s %s workers=%d: %w", pq.Name, v.name, workers, err)
				}
				got := fmt.Sprint(res.Block.Rows)
				if want == "" {
					want = got
				} else if got != want {
					return nil, fmt.Errorf("%s %s workers=%d diverges: %s != %s",
						pq.Name, v.name, workers, got, want)
				}
			}
		}
		refs[qi] = want
	}
	return refs, nil
}

// PlannerOverlayView commits a few IU update transactions through a runner
// and returns the resulting overlay snapshot, so cross-checks also cover
// the merged base+delta read path.
func PlannerOverlayView(ds *ldbc.Dataset, seed int64) (storage.View, error) {
	r := queries.NewRunner(ds, exec.ModeFused, nil)
	pg := ds.NewParamGen(seed)
	for _, q := range queries.All() {
		if q.Kind != queries.IU {
			continue
		}
		if _, _, err := r.Execute(q, q.GenParams(ds, pg)); err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
	}
	return r.Mgr.Snapshot(), nil
}

// plannerQueryPoint is one ladder row of BENCH_planner.json.
type plannerQueryPoint struct {
	Name        string  `json:"name"`
	Anchor      string  `json:"anchor"`  // cost-chosen anchor variable
	EstRows     float64 `json:"estRows"` // binder's pattern-cardinality estimate
	SyntacticNs float64 `json:"syntacticNs"`
	CostNs      float64 `json:"costNs"`
	Speedup     float64 `json:"speedup"` // syntactic / cost
}

// plannerCachePoint is the parameterized-cache section of BENCH_planner.json.
type plannerCachePoint struct {
	Requests    int     `json:"requests"` // literal-differing service requests
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	FlatMisses  bool    `json:"flatMisses"` // misses stayed at 1 across all requests
	UncachedQPS float64 `json:"uncachedQPS"`
	CachedQPS   float64 `json:"cachedQPS"`
	Speedup     float64 `json:"speedup"`
}

// plannerReport is the schema of BENCH_planner.json.
type plannerReport struct {
	SimSF        float64             `json:"simSF"`
	NoCost       bool                `json:"noCost"`
	StatsEpoch   uint64              `json:"statsEpoch"`
	StatsBuildMs float64             `json:"statsBuildMs"`
	CrossCheck   bool                `json:"crossCheck"` // base + overlay, workers 1/2/4/8
	Queries      []plannerQueryPoint `json:"queries"`
	Cache        plannerCachePoint   `json:"cache"`
}

func plannerExp(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	ds, err := driver.SharedDataset(sf)
	if err != nil {
		return err
	}
	ds.Graph.SealCSR() // publishes the statistics snapshot the model reads
	cm := plan.NewCostModel(ds.Graph.Stats())
	if cfg.NoCost {
		cm = nil
		fmt.Fprintln(w, "NoCost: the 'cost' column below binds syntactically (de-optimized)")
	}
	report := plannerReport{SimSF: sf, NoCost: cfg.NoCost}
	if snap := ds.Graph.Stats(); snap != nil {
		report.StatsEpoch = snap.Epoch
		report.StatsBuildMs = float64(snap.Build.Microseconds()) / 1000
		fmt.Fprintf(w, "statistics: epoch %d, %d labels, %d families, %d columns, built in %.3fms\n",
			snap.Epoch, len(snap.Labels), len(snap.Families), len(snap.Columns), report.StatsBuildMs)
	}

	if _, err := PlannerCrossCheck(ds, ds.Graph, cm); err != nil {
		return err
	}
	overlay, err := PlannerOverlayView(ds, cfg.Seed)
	if err != nil {
		return err
	}
	if _, err := PlannerCrossCheck(ds, overlay, cm); err != nil {
		return err
	}
	report.CrossCheck = true
	fmt.Fprintf(w, "cross-check: identical results, cost vs syntactic, workers %v, base and overlay views\n",
		wcojWorkerSweep)

	timePlan := func(p plan.Plan) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.New(exec.ModeFused).Run(ds.Graph, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}

	fmt.Fprintf(w, "%-12s %-8s %12s %14s %14s %9s\n", "query", "anchor", "estRows", "syntactic", "cost", "speedup")
	for _, pq := range PlannerQueries {
		cost, syntactic, err := plannerCompile(ds, cm, pq, plannerPersonID)
		if err != nil {
			return err
		}
		p := plannerQueryPoint{
			Name:        pq.Name,
			Anchor:      cost.Est.Anchor,
			EstRows:     cost.Est.Rows,
			SyntacticNs: timePlan(syntactic.Plan),
			CostNs:      timePlan(cost.Plan),
		}
		if p.CostNs > 0 {
			p.Speedup = p.SyntacticNs / p.CostNs
		}
		report.Queries = append(report.Queries, p)
		fmt.Fprintf(w, "%-12s %-8s %12.1f %12.0fns %12.0fns %8.1fx\n",
			pq.Name, p.Anchor, p.EstRows, p.SyntacticNs, p.CostNs, p.Speedup)
	}

	cache, err := plannerCacheSection(w, ds, cm, cfg)
	if err != nil {
		return err
	}
	report.Cache = cache

	if cfg.JSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", cfg.JSONPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}

// plannerCacheSection measures the parameterized plan cache two ways: the
// library path (compile-per-request vs normalize+re-bind on a cached
// skeleton) for QPS, and the service path (literal-differing POST /query
// bodies against one server) for the flat-miss-count property.
func plannerCacheSection(w io.Writer, ds *ldbc.Dataset, cm *plan.CostModel, cfg Config) (plannerCachePoint, error) {
	var out plannerCachePoint
	pq := PlannerQueries[0]
	nIDs := 16 // cycle through this many literal-differing instances

	// Uncached: every request runs the full lex/parse/bind pipeline.
	uncached := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			text := fmt.Sprintf(pq.Text, i%nIDs+1)
			c, err := cypher.CompileWith(text, ds.H.Cat, cypher.Options{Cost: cm})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.New(exec.ModeFused).Run(ds.Graph, c.Plan); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Cached: one compiled skeleton from the normalized text; each request
	// only normalizes its literals out and re-binds them via Engine.Params.
	norm, params, err := cypher.Normalize(fmt.Sprintf(pq.Text, 1))
	if err != nil {
		return out, err
	}
	skeleton, err := cypher.CompileWith(norm, ds.H.Cat, cypher.Options{Cost: cm, Params: params})
	if err != nil {
		return out, err
	}
	cached := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, params, err := cypher.Normalize(fmt.Sprintf(pq.Text, i%nIDs+1))
			if err != nil {
				b.Fatal(err)
			}
			eng := exec.New(exec.ModeFused)
			eng.Params = params
			if _, err := eng.Run(ds.Graph, skeleton.Plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	out.UncachedQPS = 1e9 / float64(uncached.NsPerOp())
	out.CachedQPS = 1e9 / float64(cached.NsPerOp())
	if out.UncachedQPS > 0 {
		out.Speedup = out.CachedQPS / out.UncachedQPS
	}

	// Service path: literal-differing requests against one server must
	// produce exactly one miss (the first compile) and hits thereafter.
	srv := service.NewWith(ds, exec.ModeFused, service.Options{NoCost: cfg.NoCost})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()
	out.Requests = nIDs
	for i := 0; i < nIDs; i++ {
		body := fmt.Sprintf(`{"query":%q}`, fmt.Sprintf(pq.Text, i+1))
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			return out, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return out, fmt.Errorf("planner cache: request %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		return out, err
	}
	var st struct {
		PlanCache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"planCache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return out, err
	}
	out.Hits, out.Misses = st.PlanCache.Hits, st.PlanCache.Misses
	out.FlatMisses = out.Misses == 1 && out.Hits == uint64(nIDs-1)
	fmt.Fprintf(w, "plan cache: %d literal-differing requests -> %d miss / %d hits (flat=%v)\n",
		out.Requests, out.Misses, out.Hits, out.FlatMisses)
	fmt.Fprintf(w, "plan cache QPS: uncached %.0f, cached %.0f (%.2fx)\n",
		out.UncachedQPS, out.CachedQPS, out.Speedup)
	return out, nil
}
