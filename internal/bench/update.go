// The "update" experiment measures the delta-overlay CSR under the paper's
// sustained-IU regime (§2.3): reader workers stream batched KNOWS expansions
// while a writer continuously inserts and deletes edges. With the overlay on,
// readers stay lock-free on the sealed images and mutations land in per-image
// deltas drained by background reseals; the -no-overlay ablation restores
// invalidate-on-mutation, where correctness under concurrent writes requires
// the harness to serialize readers and the writer behind a RWMutex and reads
// degrade to the unsorted live-slot fallback. A quiesced full reseal after
// each overlay run must reproduce the overlay reads byte-for-byte. Emits the
// BENCH_update.json artifact when Config.JSONPath is set.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"ges/internal/catalog"
	"ges/internal/ldbc"
	"ges/internal/storage"
	"ges/internal/vector"
)

func init() {
	register(Experiment{"update", "read throughput under sustained IU writes: delta overlay vs -no-overlay", updateExp})
}

// updateWorkerSweep is the reader worker ladder.
var updateWorkerSweep = []int{1, 2, 4, 8}

// updateChunk is the batch granularity of one reader expansion call.
const updateChunk = 256

// Writer pacing: the IU stream is sustained but bounded (an open-loop writer
// on a small host would measure scheduler starvation, not the read path) —
// updateWriteBatch ops every updateWritePause (the pause is best-effort on loaded hosts; the applied rate is reported).
const (
	updateWriteBatch = 200
	updateWritePause = time.Millisecond
)

// writerPair is one (src,dst) the writer toggles. Writer pairs are disjoint
// from the generated edge set and always carry the same deterministic prop,
// so every occurrence of a pair is tuple-identical — the regime where overlay
// reads are byte-identical to a reseal (see internal/storage/delta.go).
type writerPair struct {
	src, dst vector.VID
	present  bool
}

// updateProp derives a pair's creationDate deterministically from its
// endpoints.
func updateProp(src, dst vector.VID) vector.Value {
	return vector.Date(int64(ldbc.DayStart) + (int64(src)*31+int64(dst)*17)%int64(ldbc.DayEnd-ldbc.DayStart))
}

// buildWriterPairs draws candidate person pairs absent from the generated
// KNOWS edge set.
func buildWriterPairs(ds *ldbc.Dataset, n int, seed int64) []*writerPair {
	g, h := ds.Graph, ds.H
	existing := make(map[[2]vector.VID]bool)
	var b storage.Batch
	g.NeighborsBatch(ds.Persons, h.Knows, catalog.Out, h.Person, false, &b)
	for i, src := range ds.Persons {
		for _, dst := range b.Run(i) {
			existing[[2]vector.VID{src, dst}] = true
		}
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]*writerPair, 0, n)
	taken := make(map[[2]vector.VID]bool)
	for len(pairs) < n {
		src := ds.Persons[rng.Intn(len(ds.Persons))]
		dst := ds.Persons[rng.Intn(len(ds.Persons))]
		k := [2]vector.VID{src, dst}
		if src == dst || existing[k] || taken[k] {
			continue
		}
		taken[k] = true
		pairs = append(pairs, &writerPair{src: src, dst: dst})
	}
	return pairs
}

// updateRun is one measured point: `workers` readers batch-expanding KNOWS
// while one writer toggles pairs for `dur`. lock is non-nil in -no-overlay
// mode, where the harness must serialize readers against the writer.
func updateRun(ds *ldbc.Dataset, workers int, dur time.Duration, lock *sync.RWMutex, seed int64) (readSrcs, writes int64) {
	g, h := ds.Graph, ds.H
	pairs := buildWriterPairs(ds, 4*len(ds.Persons), seed)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var totalReads, totalWrites atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Readers simulate independent clients, outside the engine's
		// scheduler budget by design (same rationale as the driver's mix
		// workers).
		//geslint:go-ok
		go func(w int) {
			defer wg.Done()
			var b storage.Batch
			n := int64(0)
			at := (w * 13) % len(ds.Persons)
			for !stop.Load() {
				hi := at + updateChunk
				if hi > len(ds.Persons) {
					hi = len(ds.Persons)
					at = 0
				}
				chunk := ds.Persons[at:hi]
				at = hi % len(ds.Persons)
				if lock != nil {
					lock.RLock()
				}
				g.NeighborsBatch(chunk, h.Knows, catalog.Out, h.Person, true, &b)
				if lock != nil {
					lock.RUnlock()
				}
				n += int64(len(chunk))
			}
			totalReads.Add(n)
		}(w)
	}
	wg.Add(1)
	// The writer is the sustained IU stream, likewise an external client.
	//geslint:go-ok
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 104729))
		n := int64(0)
		for !stop.Load() {
			for i := 0; i < updateWriteBatch; i++ {
				p := pairs[rng.Intn(len(pairs))]
				if lock != nil {
					lock.Lock()
				}
				if p.present {
					if g.DeleteEdge(h.Knows, p.src, p.dst) {
						n++
					}
				} else if g.AddEdge(h.Knows, p.src, p.dst, updateProp(p.src, p.dst)) == nil {
					n++
				}
				if lock != nil {
					lock.Unlock()
				}
				p.present = !p.present
			}
			time.Sleep(updateWritePause)
		}
		totalWrites.Add(n)
	}()

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return totalReads.Load(), totalWrites.Load()
}

// captureExpand snapshots every person's batched KNOWS expansion as one
// comparable value.
func captureExpand(ds *ldbc.Dataset) [][]vector.VID {
	var b storage.Batch
	ds.Graph.NeighborsBatch(ds.Persons, ds.H.Knows, catalog.Out, ds.H.Person, false, &b)
	out := make([][]vector.VID, len(b.Runs))
	for i := range b.Runs {
		out[i] = append([]vector.VID(nil), b.Run(i)...)
	}
	return out
}

// updatePoint is one worker-count row of BENCH_update.json.
type updatePoint struct {
	Workers            int     `json:"workers"`
	OverlayReadsPerSec float64 `json:"overlayReadsPerSec"` // sources expanded per second, all readers
	OverlayWritesSec   float64 `json:"overlayWritesPerSec"`
	NoOverlayReadsSec  float64 `json:"noOverlayReadsPerSec"`
	NoOverlayWritesSec float64 `json:"noOverlayWritesPerSec"`
	Speedup            float64 `json:"speedup"` // overlay / no-overlay reader throughput
}

// updateReport is the schema of BENCH_update.json.
type updateReport struct {
	SimSF      float64       `json:"simSF"`
	DurationMs float64       `json:"durationMs"` // per measured point
	Points     []updatePoint `json:"points"`
	MinSpeedup float64       `json:"minSpeedup"`
	// Reseal counters from the last (widest) overlay run.
	Reseals          int64   `json:"reseals"`
	ResealMs         float64 `json:"resealMs"`
	MaxDeltaFraction float64 `json:"maxDeltaFraction"`
	StatsEpoch       uint64  `json:"statsEpoch"`
	// CrossCheck is true when overlay reads after the writer quiesced were
	// byte-identical to a full reseal, at every worker count.
	CrossCheck bool `json:"crossCheck"`
}

func updateExp(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	dur := 2 * cfg.TraceBucket
	if dur <= 0 {
		dur = 400 * time.Millisecond
	}
	report := updateReport{SimSF: sf, DurationMs: ms(dur), CrossCheck: true}
	fmt.Fprintf(w, "mixed read/write KNOWS workload, simSF=%.4g, %v per point, 1 writer, chunk=%d\n",
		sf, dur, updateChunk)
	fmt.Fprintf(w, "%-8s %16s %16s %16s %16s %9s\n",
		"readers", "overlay reads/s", "overlay wr/s", "no-ovl reads/s", "no-ovl wr/s", "speedup")

	for _, workers := range updateWorkerSweep {
		pt := updatePoint{Workers: workers}

		if !cfg.NoOverlay {
			// Fresh private dataset per point: the workload mutates it, so the
			// shared cache must never see it.
			ds, err := ldbc.Generate(ldbc.Config{SF: sf, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			if cfg.ResealFraction > 0 {
				ds.Graph.SetResealPolicy(cfg.ResealFraction, 0)
			}
			r, wr := updateRun(ds, workers, dur, nil, cfg.Seed+int64(workers))
			pt.OverlayReadsPerSec = float64(r) / dur.Seconds()
			pt.OverlayWritesSec = float64(wr) / dur.Seconds()
			ov := ds.Graph.Overlay()
			report.Reseals = ov.Reseals
			report.ResealMs = ms(ov.ResealTime)
			report.MaxDeltaFraction = ov.MaxDeltaFraction
			report.StatsEpoch = ov.StatsEpoch

			// Quiesced cross-check: overlay reads vs a full reseal.
			before := captureExpand(ds)
			ds.Graph.CompactAdjacency()
			ds.Graph.SealCSR()
			if !reflect.DeepEqual(before, captureExpand(ds)) {
				report.CrossCheck = false
				return fmt.Errorf("update: overlay reads diverge from the quiesced reseal at %d workers", workers)
			}
		}

		// -no-overlay ablation: invalidate-on-mutation, RWMutex-serialized.
		ds, err := ldbc.Generate(ldbc.Config{SF: sf, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		ds.Graph.SetOverlayDisabled(true)
		var mu sync.RWMutex
		r, wr := updateRun(ds, workers, dur, &mu, cfg.Seed+int64(workers))
		pt.NoOverlayReadsSec = float64(r) / dur.Seconds()
		pt.NoOverlayWritesSec = float64(wr) / dur.Seconds()

		if pt.NoOverlayReadsSec > 0 {
			pt.Speedup = pt.OverlayReadsPerSec / pt.NoOverlayReadsSec
		}
		if report.MinSpeedup == 0 || pt.Speedup < report.MinSpeedup {
			report.MinSpeedup = pt.Speedup
		}
		report.Points = append(report.Points, pt)
		fmt.Fprintf(w, "%-8d %16.0f %16.0f %16.0f %16.0f %8.1fx\n",
			workers, pt.OverlayReadsPerSec, pt.OverlayWritesSec,
			pt.NoOverlayReadsSec, pt.NoOverlayWritesSec, pt.Speedup)
	}

	if !cfg.NoOverlay {
		fmt.Fprintf(w, "cross-check: overlay reads byte-identical to the quiesced reseal at workers %v\n", updateWorkerSweep)
		fmt.Fprintf(w, "reseals: %d (%.1fms total), peak delta fraction %.4f, stats epoch %d\n",
			report.Reseals, report.ResealMs, report.MaxDeltaFraction, report.StatsEpoch)
		fmt.Fprintf(w, "min reader-throughput speedup over -no-overlay: %.1fx\n", report.MinSpeedup)
	}

	if cfg.JSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", cfg.JSONPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}
